
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline.cc" "tests/CMakeFiles/fp_tests.dir/test_baseline.cc.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_baseline.cc.o.d"
  "/root/repo/tests/test_collective.cc" "tests/CMakeFiles/fp_tests.dir/test_collective.cc.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_collective.cc.o.d"
  "/root/repo/tests/test_dynamic.cc" "tests/CMakeFiles/fp_tests.dir/test_dynamic.cc.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_dynamic.cc.o.d"
  "/root/repo/tests/test_exp.cc" "tests/CMakeFiles/fp_tests.dir/test_exp.cc.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_exp.cc.o.d"
  "/root/repo/tests/test_flowpulse.cc" "tests/CMakeFiles/fp_tests.dir/test_flowpulse.cc.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_flowpulse.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/fp_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_net.cc" "tests/CMakeFiles/fp_tests.dir/test_net.cc.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_net.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/fp_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/fp_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/fp_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_three_level.cc" "tests/CMakeFiles/fp_tests.dir/test_three_level.cc.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_three_level.cc.o.d"
  "/root/repo/tests/test_transport.cc" "tests/CMakeFiles/fp_tests.dir/test_transport.cc.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/fp_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/fp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/flowpulse/CMakeFiles/fp_flowpulse.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/fp_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/fp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
