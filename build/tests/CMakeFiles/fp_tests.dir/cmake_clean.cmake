file(REMOVE_RECURSE
  "CMakeFiles/fp_tests.dir/test_baseline.cc.o"
  "CMakeFiles/fp_tests.dir/test_baseline.cc.o.d"
  "CMakeFiles/fp_tests.dir/test_collective.cc.o"
  "CMakeFiles/fp_tests.dir/test_collective.cc.o.d"
  "CMakeFiles/fp_tests.dir/test_dynamic.cc.o"
  "CMakeFiles/fp_tests.dir/test_dynamic.cc.o.d"
  "CMakeFiles/fp_tests.dir/test_exp.cc.o"
  "CMakeFiles/fp_tests.dir/test_exp.cc.o.d"
  "CMakeFiles/fp_tests.dir/test_flowpulse.cc.o"
  "CMakeFiles/fp_tests.dir/test_flowpulse.cc.o.d"
  "CMakeFiles/fp_tests.dir/test_integration.cc.o"
  "CMakeFiles/fp_tests.dir/test_integration.cc.o.d"
  "CMakeFiles/fp_tests.dir/test_net.cc.o"
  "CMakeFiles/fp_tests.dir/test_net.cc.o.d"
  "CMakeFiles/fp_tests.dir/test_properties.cc.o"
  "CMakeFiles/fp_tests.dir/test_properties.cc.o.d"
  "CMakeFiles/fp_tests.dir/test_report.cc.o"
  "CMakeFiles/fp_tests.dir/test_report.cc.o.d"
  "CMakeFiles/fp_tests.dir/test_sim.cc.o"
  "CMakeFiles/fp_tests.dir/test_sim.cc.o.d"
  "CMakeFiles/fp_tests.dir/test_three_level.cc.o"
  "CMakeFiles/fp_tests.dir/test_three_level.cc.o.d"
  "CMakeFiles/fp_tests.dir/test_transport.cc.o"
  "CMakeFiles/fp_tests.dir/test_transport.cc.o.d"
  "fp_tests"
  "fp_tests.pdb"
  "fp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
