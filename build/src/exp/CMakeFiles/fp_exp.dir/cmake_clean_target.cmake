file(REMOVE_RECURSE
  "libfp_exp.a"
)
