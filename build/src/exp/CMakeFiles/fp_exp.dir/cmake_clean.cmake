file(REMOVE_RECURSE
  "CMakeFiles/fp_exp.dir/metrics.cc.o"
  "CMakeFiles/fp_exp.dir/metrics.cc.o.d"
  "CMakeFiles/fp_exp.dir/report.cc.o"
  "CMakeFiles/fp_exp.dir/report.cc.o.d"
  "CMakeFiles/fp_exp.dir/scenario.cc.o"
  "CMakeFiles/fp_exp.dir/scenario.cc.o.d"
  "libfp_exp.a"
  "libfp_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
