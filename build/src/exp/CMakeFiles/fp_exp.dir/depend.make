# Empty dependencies file for fp_exp.
# This may be replaced when dependencies are built.
