# Empty dependencies file for fp_flowpulse.
# This may be replaced when dependencies are built.
