# Empty compiler generated dependencies file for fp_flowpulse.
# This may be replaced when dependencies are built.
