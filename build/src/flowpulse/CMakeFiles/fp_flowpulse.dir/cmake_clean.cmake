file(REMOVE_RECURSE
  "CMakeFiles/fp_flowpulse.dir/analytical_model.cc.o"
  "CMakeFiles/fp_flowpulse.dir/analytical_model.cc.o.d"
  "CMakeFiles/fp_flowpulse.dir/detector.cc.o"
  "CMakeFiles/fp_flowpulse.dir/detector.cc.o.d"
  "CMakeFiles/fp_flowpulse.dir/learned_model.cc.o"
  "CMakeFiles/fp_flowpulse.dir/learned_model.cc.o.d"
  "CMakeFiles/fp_flowpulse.dir/monitor.cc.o"
  "CMakeFiles/fp_flowpulse.dir/monitor.cc.o.d"
  "CMakeFiles/fp_flowpulse.dir/system.cc.o"
  "CMakeFiles/fp_flowpulse.dir/system.cc.o.d"
  "CMakeFiles/fp_flowpulse.dir/three_level_system.cc.o"
  "CMakeFiles/fp_flowpulse.dir/three_level_system.cc.o.d"
  "libfp_flowpulse.a"
  "libfp_flowpulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_flowpulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
