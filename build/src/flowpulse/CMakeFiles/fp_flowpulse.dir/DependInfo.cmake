
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowpulse/analytical_model.cc" "src/flowpulse/CMakeFiles/fp_flowpulse.dir/analytical_model.cc.o" "gcc" "src/flowpulse/CMakeFiles/fp_flowpulse.dir/analytical_model.cc.o.d"
  "/root/repo/src/flowpulse/detector.cc" "src/flowpulse/CMakeFiles/fp_flowpulse.dir/detector.cc.o" "gcc" "src/flowpulse/CMakeFiles/fp_flowpulse.dir/detector.cc.o.d"
  "/root/repo/src/flowpulse/learned_model.cc" "src/flowpulse/CMakeFiles/fp_flowpulse.dir/learned_model.cc.o" "gcc" "src/flowpulse/CMakeFiles/fp_flowpulse.dir/learned_model.cc.o.d"
  "/root/repo/src/flowpulse/monitor.cc" "src/flowpulse/CMakeFiles/fp_flowpulse.dir/monitor.cc.o" "gcc" "src/flowpulse/CMakeFiles/fp_flowpulse.dir/monitor.cc.o.d"
  "/root/repo/src/flowpulse/system.cc" "src/flowpulse/CMakeFiles/fp_flowpulse.dir/system.cc.o" "gcc" "src/flowpulse/CMakeFiles/fp_flowpulse.dir/system.cc.o.d"
  "/root/repo/src/flowpulse/three_level_system.cc" "src/flowpulse/CMakeFiles/fp_flowpulse.dir/three_level_system.cc.o" "gcc" "src/flowpulse/CMakeFiles/fp_flowpulse.dir/three_level_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collective/CMakeFiles/fp_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/fp_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
