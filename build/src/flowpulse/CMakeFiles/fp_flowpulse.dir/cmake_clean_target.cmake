file(REMOVE_RECURSE
  "libfp_flowpulse.a"
)
