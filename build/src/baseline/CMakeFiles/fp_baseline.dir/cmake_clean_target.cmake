file(REMOVE_RECURSE
  "libfp_baseline.a"
)
