# Empty dependencies file for fp_baseline.
# This may be replaced when dependencies are built.
