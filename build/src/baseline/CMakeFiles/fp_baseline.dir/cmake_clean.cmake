file(REMOVE_RECURSE
  "CMakeFiles/fp_baseline.dir/pingmesh.cc.o"
  "CMakeFiles/fp_baseline.dir/pingmesh.cc.o.d"
  "CMakeFiles/fp_baseline.dir/spatial_symmetry.cc.o"
  "CMakeFiles/fp_baseline.dir/spatial_symmetry.cc.o.d"
  "libfp_baseline.a"
  "libfp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
