file(REMOVE_RECURSE
  "CMakeFiles/fp_transport.dir/transport.cc.o"
  "CMakeFiles/fp_transport.dir/transport.cc.o.d"
  "libfp_transport.a"
  "libfp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
