file(REMOVE_RECURSE
  "libfp_transport.a"
)
