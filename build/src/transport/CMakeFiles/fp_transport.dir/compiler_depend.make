# Empty compiler generated dependencies file for fp_transport.
# This may be replaced when dependencies are built.
