# Empty compiler generated dependencies file for fp_net.
# This may be replaced when dependencies are built.
