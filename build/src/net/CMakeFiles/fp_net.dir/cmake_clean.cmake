file(REMOVE_RECURSE
  "CMakeFiles/fp_net.dir/egress_port.cc.o"
  "CMakeFiles/fp_net.dir/egress_port.cc.o.d"
  "CMakeFiles/fp_net.dir/fat_tree.cc.o"
  "CMakeFiles/fp_net.dir/fat_tree.cc.o.d"
  "CMakeFiles/fp_net.dir/routing.cc.o"
  "CMakeFiles/fp_net.dir/routing.cc.o.d"
  "CMakeFiles/fp_net.dir/switch.cc.o"
  "CMakeFiles/fp_net.dir/switch.cc.o.d"
  "CMakeFiles/fp_net.dir/three_level.cc.o"
  "CMakeFiles/fp_net.dir/three_level.cc.o.d"
  "libfp_net.a"
  "libfp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
