
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/egress_port.cc" "src/net/CMakeFiles/fp_net.dir/egress_port.cc.o" "gcc" "src/net/CMakeFiles/fp_net.dir/egress_port.cc.o.d"
  "/root/repo/src/net/fat_tree.cc" "src/net/CMakeFiles/fp_net.dir/fat_tree.cc.o" "gcc" "src/net/CMakeFiles/fp_net.dir/fat_tree.cc.o.d"
  "/root/repo/src/net/routing.cc" "src/net/CMakeFiles/fp_net.dir/routing.cc.o" "gcc" "src/net/CMakeFiles/fp_net.dir/routing.cc.o.d"
  "/root/repo/src/net/switch.cc" "src/net/CMakeFiles/fp_net.dir/switch.cc.o" "gcc" "src/net/CMakeFiles/fp_net.dir/switch.cc.o.d"
  "/root/repo/src/net/three_level.cc" "src/net/CMakeFiles/fp_net.dir/three_level.cc.o" "gcc" "src/net/CMakeFiles/fp_net.dir/three_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
