file(REMOVE_RECURSE
  "libfp_net.a"
)
