file(REMOVE_RECURSE
  "CMakeFiles/fp_sim.dir/event_queue.cc.o"
  "CMakeFiles/fp_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/fp_sim.dir/rng.cc.o"
  "CMakeFiles/fp_sim.dir/rng.cc.o.d"
  "CMakeFiles/fp_sim.dir/simulator.cc.o"
  "CMakeFiles/fp_sim.dir/simulator.cc.o.d"
  "libfp_sim.a"
  "libfp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
