# Empty compiler generated dependencies file for fp_collective.
# This may be replaced when dependencies are built.
