file(REMOVE_RECURSE
  "libfp_collective.a"
)
