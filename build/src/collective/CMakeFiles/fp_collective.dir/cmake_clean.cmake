file(REMOVE_RECURSE
  "CMakeFiles/fp_collective.dir/demand_matrix.cc.o"
  "CMakeFiles/fp_collective.dir/demand_matrix.cc.o.d"
  "CMakeFiles/fp_collective.dir/runner.cc.o"
  "CMakeFiles/fp_collective.dir/runner.cc.o.d"
  "CMakeFiles/fp_collective.dir/schedule.cc.o"
  "CMakeFiles/fp_collective.dir/schedule.cc.o.d"
  "libfp_collective.a"
  "libfp_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
