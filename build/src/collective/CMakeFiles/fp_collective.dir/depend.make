# Empty dependencies file for fp_collective.
# This may be replaced when dependencies are built.
