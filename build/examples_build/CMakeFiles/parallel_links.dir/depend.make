# Empty dependencies file for parallel_links.
# This may be replaced when dependencies are built.
