file(REMOVE_RECURSE
  "../examples/parallel_links"
  "../examples/parallel_links.pdb"
  "CMakeFiles/parallel_links.dir/parallel_links.cpp.o"
  "CMakeFiles/parallel_links.dir/parallel_links.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
