file(REMOVE_RECURSE
  "../examples/flowpulse_cli"
  "../examples/flowpulse_cli.pdb"
  "CMakeFiles/flowpulse_cli.dir/flowpulse_cli.cpp.o"
  "CMakeFiles/flowpulse_cli.dir/flowpulse_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowpulse_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
