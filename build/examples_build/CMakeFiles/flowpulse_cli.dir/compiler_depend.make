# Empty compiler generated dependencies file for flowpulse_cli.
# This may be replaced when dependencies are built.
