file(REMOVE_RECURSE
  "../examples/silent_fault_hunt"
  "../examples/silent_fault_hunt.pdb"
  "CMakeFiles/silent_fault_hunt.dir/silent_fault_hunt.cpp.o"
  "CMakeFiles/silent_fault_hunt.dir/silent_fault_hunt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silent_fault_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
