# Empty dependencies file for silent_fault_hunt.
# This may be replaced when dependencies are built.
