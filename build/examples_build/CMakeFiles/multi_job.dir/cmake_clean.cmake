file(REMOVE_RECURSE
  "../examples/multi_job"
  "../examples/multi_job.pdb"
  "CMakeFiles/multi_job.dir/multi_job.cpp.o"
  "CMakeFiles/multi_job.dir/multi_job.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
