# Empty dependencies file for fig5a_roc.
# This may be replaced when dependencies are built.
