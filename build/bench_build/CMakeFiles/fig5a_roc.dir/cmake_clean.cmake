file(REMOVE_RECURSE
  "../bench/fig5a_roc"
  "../bench/fig5a_roc.pdb"
  "CMakeFiles/fig5a_roc.dir/fig5a_roc.cc.o"
  "CMakeFiles/fig5a_roc.dir/fig5a_roc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
