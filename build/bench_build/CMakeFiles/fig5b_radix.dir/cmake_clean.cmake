file(REMOVE_RECURSE
  "../bench/fig5b_radix"
  "../bench/fig5b_radix.pdb"
  "CMakeFiles/fig5b_radix.dir/fig5b_radix.cc.o"
  "CMakeFiles/fig5b_radix.dir/fig5b_radix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_radix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
