
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5b_radix.cc" "bench_build/CMakeFiles/fig5b_radix.dir/fig5b_radix.cc.o" "gcc" "bench_build/CMakeFiles/fig5b_radix.dir/fig5b_radix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/fp_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/fp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/flowpulse/CMakeFiles/fp_flowpulse.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/fp_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/fp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
