# Empty compiler generated dependencies file for fig5b_radix.
# This may be replaced when dependencies are built.
