file(REMOVE_RECURSE
  "../bench/localization"
  "../bench/localization.pdb"
  "CMakeFiles/localization.dir/localization.cc.o"
  "CMakeFiles/localization.dir/localization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
