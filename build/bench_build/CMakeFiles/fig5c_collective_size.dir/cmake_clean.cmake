file(REMOVE_RECURSE
  "../bench/fig5c_collective_size"
  "../bench/fig5c_collective_size.pdb"
  "CMakeFiles/fig5c_collective_size.dir/fig5c_collective_size.cc.o"
  "CMakeFiles/fig5c_collective_size.dir/fig5c_collective_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_collective_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
