# Empty dependencies file for fig5c_collective_size.
# This may be replaced when dependencies are built.
