# Empty compiler generated dependencies file for fig3_learning_rebaseline.
# This may be replaced when dependencies are built.
