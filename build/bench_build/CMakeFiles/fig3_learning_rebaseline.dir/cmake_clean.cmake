file(REMOVE_RECURSE
  "../bench/fig3_learning_rebaseline"
  "../bench/fig3_learning_rebaseline.pdb"
  "CMakeFiles/fig3_learning_rebaseline.dir/fig3_learning_rebaseline.cc.o"
  "CMakeFiles/fig3_learning_rebaseline.dir/fig3_learning_rebaseline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_learning_rebaseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
