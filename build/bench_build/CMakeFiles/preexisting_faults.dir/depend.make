# Empty dependencies file for preexisting_faults.
# This may be replaced when dependencies are built.
