file(REMOVE_RECURSE
  "../bench/preexisting_faults"
  "../bench/preexisting_faults.pdb"
  "CMakeFiles/preexisting_faults.dir/preexisting_faults.cc.o"
  "CMakeFiles/preexisting_faults.dir/preexisting_faults.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preexisting_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
