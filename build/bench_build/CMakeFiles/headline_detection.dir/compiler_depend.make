# Empty compiler generated dependencies file for headline_detection.
# This may be replaced when dependencies are built.
