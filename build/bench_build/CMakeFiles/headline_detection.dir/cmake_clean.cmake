file(REMOVE_RECURSE
  "../bench/headline_detection"
  "../bench/headline_detection.pdb"
  "CMakeFiles/headline_detection.dir/headline_detection.cc.o"
  "CMakeFiles/headline_detection.dir/headline_detection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
