file(REMOVE_RECURSE
  "../bench/ablation_spray"
  "../bench/ablation_spray.pdb"
  "CMakeFiles/ablation_spray.dir/ablation_spray.cc.o"
  "CMakeFiles/ablation_spray.dir/ablation_spray.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
