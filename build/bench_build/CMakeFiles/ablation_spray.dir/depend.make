# Empty dependencies file for ablation_spray.
# This may be replaced when dependencies are built.
