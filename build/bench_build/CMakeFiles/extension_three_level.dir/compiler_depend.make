# Empty compiler generated dependencies file for extension_three_level.
# This may be replaced when dependencies are built.
