# Empty dependencies file for extension_three_level.
# This may be replaced when dependencies are built.
