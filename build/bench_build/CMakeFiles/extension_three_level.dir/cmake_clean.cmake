file(REMOVE_RECURSE
  "../bench/extension_three_level"
  "../bench/extension_three_level.pdb"
  "CMakeFiles/extension_three_level.dir/extension_three_level.cc.o"
  "CMakeFiles/extension_three_level.dir/extension_three_level.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_three_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
