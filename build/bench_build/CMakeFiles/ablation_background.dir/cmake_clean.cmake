file(REMOVE_RECURSE
  "../bench/ablation_background"
  "../bench/ablation_background.pdb"
  "CMakeFiles/ablation_background.dir/ablation_background.cc.o"
  "CMakeFiles/ablation_background.dir/ablation_background.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
