file(REMOVE_RECURSE
  "../bench/detection_latency"
  "../bench/detection_latency.pdb"
  "CMakeFiles/detection_latency.dir/detection_latency.cc.o"
  "CMakeFiles/detection_latency.dir/detection_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
