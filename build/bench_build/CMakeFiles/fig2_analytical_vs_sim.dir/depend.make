# Empty dependencies file for fig2_analytical_vs_sim.
# This may be replaced when dependencies are built.
