file(REMOVE_RECURSE
  "../bench/fig2_analytical_vs_sim"
  "../bench/fig2_analytical_vs_sim.pdb"
  "CMakeFiles/fig2_analytical_vs_sim.dir/fig2_analytical_vs_sim.cc.o"
  "CMakeFiles/fig2_analytical_vs_sim.dir/fig2_analytical_vs_sim.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_analytical_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
