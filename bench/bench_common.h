#pragma once

// Shared helpers for the figure-reproduction benches. Every bench prints a
// table whose rows mirror the corresponding figure/claim in the paper (see
// DESIGN.md experiment index and EXPERIMENTS.md for paper-vs-measured).
//
// Scale knobs (environment):
//   FLOWPULSE_TRIALS — seeded repetitions per configuration point
//   FLOWPULSE_SCALE  — multiplier on collective bytes (e.g. 4 for more
//                      per-port packets → tighter detection statistics)
//   FLOWPULSE_JOBS   — worker threads for trial sweeps (default:
//                      hardware_concurrency); every bench routes its seeded
//                      repetitions through exp::run_trials_parallel /
//                      exp::parallel_indexed, whose output is bit-identical
//                      to a serial run regardless of the job count

#include <cstdint>
#include <iostream>
#include <string>

#include "exp/metrics.h"
#include "exp/scenario.h"
#include "exp/table.h"
#include "exp/trials.h"

namespace flowpulse::bench {

/// The paper's §6 experimental setup: non-blocking 2-level fat tree with
/// 32 leaves × 16 spines, one host per leaf, a 31-stage Ring-AllReduce
/// (reduce-scatter ring) across all nodes, lossless fabric, 5 µs RTO floor,
/// analytical load model, 1% detection threshold.
/// Default collective: ~46 MiB, deliberately non-round so per-port packet
/// counts do not divide evenly by the spine count — real gradient sizes
/// are not round, and the remainder packets give the clean runs a small,
/// honest quantization noise floor (~0.1-0.4%) instead of an exact zero.
constexpr std::uint64_t kDefaultCollectiveBytes = 48'000'000;

inline exp::ScenarioConfig paper_setup(std::uint64_t collective_bytes = kDefaultCollectiveBytes,
                                       std::uint32_t iterations = 3) {
  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{32, 16, 1, 1};
  cfg.collective = collective::CollectiveKind::kRingReduceScatter;
  cfg.collective_bytes = core::Bytes{
      static_cast<std::uint64_t>(static_cast<double>(collective_bytes) * exp::env_scale())};
  cfg.iterations = iterations;
  cfg.max_jitter = sim::Time::microseconds(1);
  cfg.flowpulse.threshold = 0.01;
  return cfg;
}

/// A silent random-drop fault on one leaf↔spine link, active for the whole
/// run — the paper's fault-injection shape: "we configure a single
/// leaf-spine link to drop packets at a set rate". A failing cable corrupts
/// both directions, so both see the drop rate; the downlink direction
/// starves the local leaf's ingress port, the uplink direction starves the
/// ring successor's.
inline exp::NewFault silent_drop(double rate, net::LeafId leaf = net::LeafId{12},
                                 net::UplinkIndex u = net::UplinkIndex{5}) {
  exp::NewFault f;
  f.leaf = leaf;
  f.uplink = u;
  f.where = exp::NewFault::Where::kBoth;
  f.spec = net::FaultSpec::random_drop(rate);
  return f;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "=== " << title << " ===\n" << paper_ref << "\n\n";
}

/// The benches' trial runner: exp::run_trials_parallel under the
/// FLOWPULSE_JOBS knob. Deterministic — the samples are bit-identical to
/// exp::run_trials whatever the job count, so figures never depend on the
/// machine they were produced on.
[[nodiscard]] inline std::vector<exp::TrialSamples> run_trials(const exp::ScenarioConfig& config,
                                                               std::uint32_t n,
                                                               std::uint32_t skip = 0) {
  return exp::run_trials_parallel(config, n, skip);
}

}  // namespace flowpulse::bench
