// FIG5B — "FPR/FNR for different switch radixes with drop rate 0.8% per
// link. Higher radixes are more challenging."
//
// Radix r builds a non-blocking 2-level tree with r/2 spines and r leaves
// (the paper's default radix-32 = 16 spines x 32 leaves). A higher radix
// spreads each flow over more lanes, so (i) the faulty link's relative
// deviation shrinks toward p(1 - 1/s) and (ii) fewer packets cross each
// port, adding sampling noise — both make 0.8% drops harder to catch.
//
// We report FPR/FNR at the paper's fixed 1% threshold, at 0.5% (below the
// injected rate, where the radix trend is visible), and at a calibrated
// threshold (2x the measured clean noise floor per network, §6: "the
// threshold is set empirically in a given network when calibrating").
// EXPERIMENTS.md discusses one honest divergence: retransmitted packets are
// re-sprayed over all s lanes, so the faulty port's deviation is
// p(1 - 1/s), slightly *smaller* at low radix — a transport-level effect
// the paper's account of Fig. 5(b) does not model.
#include "bench_common.h"

using namespace flowpulse;

int main() {
  bench::print_header("FIG5B: FPR/FNR vs switch radix at 0.8% drop rate",
                      "Paper Fig. 5(b): radix 32 cannot detect 0.8%, radix 16 works well.");

  const std::uint32_t trials = exp::env_trials(2);
  const double drop = 0.008;

  exp::Table table({"radix", "spines x leaves", "pkts/port", "noise floor", "FNR@1%",
                    "FNR@0.5%", "calibrated th", "FPR@cal", "FNR@cal"});
  for (const std::uint32_t radix : {8u, 16u, 32u, 64u}) {
    const std::uint32_t spines = radix / 2;
    const std::uint32_t leaves = radix;
    exp::ScenarioConfig cfg = bench::paper_setup();
    cfg.fabric.shape = net::TopologyInfo{leaves, spines, 1, 1};
    // The collective size is held FIXED across radixes (the paper varies
    // only the network): each leaf still receives ~B bytes per iteration,
    // but a higher radix spreads them over more ports, so fewer packets
    // cross each port and the detection statistic gets noisier.

    const std::vector<exp::TrialSamples> clean = bench::run_trials(cfg, trials);
    const double floor = exp::noise_floor(clean);
    const double calibrated = 2.0 * floor;

    exp::ScenarioConfig faulty_cfg = cfg;
    faulty_cfg.new_faults.push_back(
        bench::silent_drop(drop, net::LeafId{leaves / 2}, net::UplinkIndex{spines / 2}));
    const std::vector<exp::TrialSamples> faulty = bench::run_trials(faulty_cfg, trials);

    const std::uint64_t pkts = cfg.collective_bytes.v() * (leaves - 1) / leaves / spines / 4096;
    table.row({std::to_string(radix),
               std::to_string(spines) + "x" + std::to_string(leaves),
               std::to_string(pkts), exp::pct(floor),
               exp::pct(exp::classify(faulty, 0.01).fnr()),
               exp::pct(exp::classify(faulty, 0.005).fnr()), exp::pct(calibrated),
               exp::pct(exp::classify(clean, calibrated).fpr()),
               exp::pct(exp::classify(faulty, calibrated).fnr())});
  }
  table.print();

  std::cout << "\nShape check vs paper: at the fixed 1% threshold a 0.8% drop is essentially\n"
               "undetectable at every radix (expected deviation p(1-1/s) < 1%); at\n"
               "sub-rate thresholds the per-port packet count falls with radix and the\n"
               "drop-sampling noise grows, degrading detection reliability — the paper's\n"
               "monotone-radix claim, modulo the retransmission re-spread effect\n"
               "discussed in EXPERIMENTS.md.\n";
  return 0;
}
