// ABL-BG — §5.1: "we prioritize the target flows in the network … This
// prioritization isolates the collective while maintaining the original
// load … background flows impose additional, unaccounted, load on the
// switch and naturally alter the packet spraying pattern."
//
// We run the measured collective alone, with a continuously-iterating
// untagged background job at LOWER priority (the paper's prescription),
// and with the background job at the SAME priority (no isolation). The
// monitors only ever count the tagged job; what the background can do is
// perturb its spraying. Prioritization must keep the noise floor at the
// solo level; same-priority sharing is allowed to inflate it.
#include "bench_common.h"

using namespace flowpulse;

int main() {
  bench::print_header("ABL-BG: background jobs vs the measured collective's symmetry",
                      "Paper §5.1: prioritization isolates the measured collective.");

  const std::uint32_t trials = exp::env_trials(2);
  const double drop = 0.02;

  struct Case {
    const char* name;
    std::uint64_t bg_bytes;
    net::Priority bg_prio;
  };
  exp::Table table({"background job", "noise floor", "FPR@1%", "FNR@1% (2% drop)"});
  for (const Case& c :
       {Case{"none (solo job)", 0, net::Priority::kBackground},
        Case{"heavy, LOWER priority (paper)", 16'000'000, net::Priority::kBackground},
        Case{"heavy, SAME priority (no isolation)", 16'000'000,
             net::Priority::kCollective}}) {
    exp::ScenarioConfig cfg = bench::paper_setup(24'000'000, 3);
    cfg.background.bytes = core::Bytes{c.bg_bytes};
    cfg.background.priority = c.bg_prio;

    const std::vector<exp::TrialSamples> clean = bench::run_trials(cfg, trials);

    exp::ScenarioConfig faulty_cfg = cfg;
    faulty_cfg.new_faults.push_back(bench::silent_drop(drop));
    const std::vector<exp::TrialSamples> faulty = bench::run_trials(faulty_cfg, trials);

    table.row({c.name, exp::pct(exp::noise_floor(clean)),
               exp::pct(exp::classify(clean, 0.01).fpr()),
               exp::pct(exp::classify(faulty, 0.01).fnr())});
  }
  table.print();

  std::cout << "\nShape check vs paper: with the measured collective prioritized, a heavy\n"
               "background job leaves the noise floor (and hence the 1% threshold) intact;\n"
               "at equal priority the background's queueing steers the spray and the\n"
               "model's even-split assumption erodes — the reason §5.1 prescribes\n"
               "prioritizing the measured collective.\n";
  return 0;
}
