// RECOVERY — the closed loop, quantified: a silent black hole appears
// mid-run; the ctrl::MitigationController debounces the alerts, quarantines
// the localized uplink (pushes it into RoutingState — APS reroutes at the
// next packet), re-baselines the analytical model with the link treated as
// a known fault, and verifies through probation. We report the three
// recovery milestones per seed, measured from fault onset:
//
//   detect   — first iteration whose deviation crossed the threshold
//   mitigate — the quarantine action
//   recover  — first post-settle iteration back under the threshold
//
// plus the fraction of post-onset iterations still above threshold with and
// without mitigation: without the controller, every iteration after onset
// stays hot forever; with it, only the detect→settle window does.
#include "bench_common.h"
#include "exp/report.h"

using namespace flowpulse;

int main() {
  bench::print_header("RECOVERY: detect -> quarantine -> re-baseline -> verify",
                      "Closes the paper's loop: localized silent faults become known "
                      "faults mid-run.");

  const std::uint32_t trials = exp::env_trials(3);
  const sim::Time onset = sim::Time::microseconds(600);

  auto setup = [&](bool mitigate) {
    exp::ScenarioConfig cfg = bench::paper_setup(24'000'000, 10);
    exp::NewFault f;
    f.leaf = net::LeafId{12};
    f.uplink = net::UplinkIndex{5};
    f.where = exp::NewFault::Where::kDownlink;
    f.spec = net::FaultSpec::black_hole(onset);
    cfg.new_faults.push_back(f);
    cfg.mitigation.enabled = mitigate;
    cfg.mitigation.debounce_iterations = 2;
    cfg.mitigation.settle_iterations = 1;
    cfg.mitigation.probation_iterations = 2;
    return cfg;
  };

  struct Row {
    std::uint64_t seed = 0;
    ctrl::RecoveryTimeline timeline{};
    std::size_t events = 0;
    bool right_link = false;
  };
  const std::vector<Row> rows = exp::parallel_indexed<Row>(trials, 0, [&](std::uint32_t t) {
    exp::ScenarioConfig cfg = setup(true);
    cfg.seed = exp::trial_seed(300, t);
    exp::Scenario s{cfg};
    const exp::ScenarioResult r = s.run();
    Row row;
    row.seed = cfg.seed;
    row.timeline = r.recovery;
    row.events = r.mitigation_events.size();
    for (const ctrl::MitigationEvent& e : r.mitigation_events) {
      if (e.kind == ctrl::MitigationEvent::Kind::kQuarantine && e.leaf == net::LeafId{12} && e.uplink == net::UplinkIndex{5}) {
        row.right_link = true;
      }
    }
    return row;
  });

  auto since_onset = [&](sim::Time t) {
    return t == sim::Time::max() ? std::string{"never"} : exp::fmt((t - onset).us(), 0) + " us";
  };
  exp::Table table({"seed", "t_detect", "t_mitigate", "t_recover", "events", "correct link"});
  for (const Row& row : rows) {
    table.row({std::to_string(row.seed), since_onset(row.timeline.first_alert),
               since_onset(row.timeline.first_quarantine), since_onset(row.timeline.recovered),
               std::to_string(row.events), row.right_link ? "yes" : "NO"});
  }
  table.print();

  // Aggregate view, through the same deterministic trial engine the other
  // benches use: how many post-onset iterations stay hot?
  auto hot_fraction = [&](bool mitigate) {
    const std::vector<exp::TrialSamples> samples =
        bench::run_trials(setup(mitigate), trials);
    std::uint32_t hot = 0, post_onset = 0;
    for (const exp::TrialSamples& s : samples) {
      for (std::size_t i = 0; i < s.dev.size(); ++i) {
        if (!s.truth[i] && s.dev[i] <= 0.01) continue;  // pre-onset, clean
        ++post_onset;
        if (s.dev[i] > 0.01) ++hot;
      }
    }
    return post_onset == 0 ? 0.0 : static_cast<double>(hot) / post_onset;
  };
  const double without = hot_fraction(false);
  const double with = hot_fraction(true);
  std::cout << "\nIterations above threshold after fault onset: " << exp::pct(without, 1)
            << " without mitigation, " << exp::pct(with, 1) << " with (the residue is the "
            << "detect + settle window; re-baselined iterations are clean).\n";

  // The control-plane audit trail of seed 0's run, as a report.
  exp::ScenarioConfig cfg = setup(true);
  cfg.seed = exp::trial_seed(300, 0);
  exp::Scenario s{cfg};
  const exp::ScenarioResult r = s.run();
  std::cout << "\nEvent log (seed " << cfg.seed << "):\n";
  exp::mitigation_table(r.mitigation_events).print();
  return 0;
}
