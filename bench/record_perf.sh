#!/usr/bin/env bash
# Refresh BENCH_perf.json at the repo root from the perf_micro events/sec +
# trials/sec suite, so successive PRs leave a machine-readable perf
# trajectory. The "history" block of an existing BENCH_perf.json (e.g. the
# recorded pre-optimization baseline) is carried over, never overwritten.
#
# Usage: bench/record_perf.sh [build-dir]      (default: <repo>/build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="$ROOT/BENCH_perf.json"

cmake --build "$BUILD" --target perf_micro -j >/dev/null

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
"$BUILD/bench/perf_micro" \
  --benchmark_filter='BM_EventQueueScheduleRun|BM_RingIterationSimulation|BM_TrialSweep' \
  --benchmark_out="$TMP" --benchmark_out_format=json \
  --benchmark_min_time=0.5

if command -v python3 >/dev/null 2>&1; then
  python3 - "$TMP" "$OUT" <<'PY'
import json, os, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

doc = {
    "note": ("Machine-readable perf trajectory; refresh with bench/record_perf.sh. "
             "'history' keeps earlier recordings (e.g. the pre-optimization seed "
             "baseline) for before/after comparison."),
    "suite": "perf_micro: events/sec (hot path) + trials/sec (parallel trial engine)",
    "context": raw.get("context", {}),
    "benchmarks": raw.get("benchmarks", []),
    "history": {},
}
if os.path.exists(out_path):
    try:
        with open(out_path) as f:
            doc["history"] = json.load(f).get("history", {})
    except (OSError, ValueError):
        pass
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
PY
else
  # No python3: keep the raw google-benchmark JSON (still machine-readable,
  # but the history block is not carried over).
  cp "$TMP" "$OUT"
fi

echo "wrote $OUT"
