#!/usr/bin/env bash
# Refresh BENCH_perf.json at the repo root from the perf_micro events/sec +
# trials/sec suite, so successive PRs leave a machine-readable perf
# trajectory. The "history" block of an existing BENCH_perf.json (e.g. the
# recorded pre-optimization baseline) is carried over, never overwritten.
#
# Honesty guard: refuses to record from a non-optimized build (empty or
# Debug CMAKE_BUILD_TYPE) — such numbers are meaningless for the trajectory
# and have polluted it before. Set FLOWPULSE_ALLOW_DEBUG_PERF=1 to override;
# the recording is then loudly tagged as untrusted. Every recording embeds
# the git SHA and build type it was measured from.
#
# Usage: bench/record_perf.sh [build-dir]      (default: <repo>/build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="$ROOT/BENCH_perf.json"

BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' "$BUILD/CMakeCache.txt" 2>/dev/null || true)"
case "${BUILD_TYPE:-}" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *)
    echo "record_perf.sh: build dir '$BUILD' has CMAKE_BUILD_TYPE='${BUILD_TYPE:-}' —" >&2
    echo "  perf numbers from a non-optimized build are not comparable and will" >&2
    echo "  NOT be recorded. Configure a release build first, e.g.:" >&2
    echo "    cmake -S \"$ROOT\" -B \"$ROOT/build-release\" -DCMAKE_BUILD_TYPE=Release" >&2
    echo "    bench/record_perf.sh \"$ROOT/build-release\"" >&2
    if [ "${FLOWPULSE_ALLOW_DEBUG_PERF:-0}" = "1" ]; then
      echo "  FLOWPULSE_ALLOW_DEBUG_PERF=1 set: recording anyway, tagged untrusted." >&2
    else
      exit 1
    fi
    ;;
esac

GIT_SHA="$(git -C "$ROOT" rev-parse HEAD 2>/dev/null || echo unknown)"
GIT_DIRTY=0
git -C "$ROOT" diff --quiet HEAD 2>/dev/null || GIT_DIRTY=1

cmake --build "$BUILD" --target perf_micro -j >/dev/null

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
"$BUILD/bench/perf_micro" \
  --benchmark_filter='BM_EventQueueScheduleRun|BM_RingIterationSimulation|BM_LanedEvents|BM_TrialSweep|BM_FidelityModeIterations|BM_DaemonIngestCounters' \
  --benchmark_out="$TMP" --benchmark_out_format=json \
  --benchmark_min_time=0.5

if command -v python3 >/dev/null 2>&1; then
  FP_BUILD_TYPE="${BUILD_TYPE:-}" FP_GIT_SHA="$GIT_SHA" FP_GIT_DIRTY="$GIT_DIRTY" \
  python3 - "$TMP" "$OUT" <<'PY'
import json, os, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

build_type = os.environ.get("FP_BUILD_TYPE", "")
trusted = build_type in ("Release", "RelWithDebInfo", "MinSizeRel")
doc = {
    "note": ("Machine-readable perf trajectory; refresh with bench/record_perf.sh. "
             "'history' keeps earlier recordings (e.g. the pre-optimization seed "
             "baseline) for before/after comparison."),
    "suite": ("perf_micro: events/sec (hot path) + trials/sec (parallel trial "
              "engine) + iterations/sec per fidelity mode (hybrid engine) + "
              "counter-ingest/sec (flowpulsed engine, sockets excluded)"),
    "build_type": build_type,
    "trusted": trusted,
    "git_sha": os.environ.get("FP_GIT_SHA", "unknown"),
    "git_dirty": os.environ.get("FP_GIT_DIRTY", "0") == "1",
    "context": raw.get("context", {}),
    "benchmarks": raw.get("benchmarks", []),
    "history": {},
}
if not trusted:
    doc["note"] = ("UNTRUSTED RECORDING (non-optimized build, "
                   "FLOWPULSE_ALLOW_DEBUG_PERF override). " + doc["note"])
if os.path.exists(out_path):
    try:
        with open(out_path) as f:
            doc["history"] = json.load(f).get("history", {})
    except (OSError, ValueError):
        pass
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
PY
else
  # No python3: keep the raw google-benchmark JSON (still machine-readable,
  # but the history block is not carried over).
  cp "$TMP" "$OUT"
fi

echo "wrote $OUT (build_type=${BUILD_TYPE:-unset}, sha=${GIT_SHA:0:12}, dirty=$GIT_DIRTY)"
