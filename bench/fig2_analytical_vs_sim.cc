// FIG2 — "Analytical prediction matches the simulation for a single flow."
//
// A single source→destination flow crosses the fat tree; we compare the
// analytical model's per-port byte prediction against the volumes the
// packet-level simulation actually delivers, across message sizes and with
// known pre-existing faults (which exercise the d/(s−f) redistribution).
// The paper's Fig. 2 shows close agreement; we report the worst per-port
// relative error.
#include "bench_common.h"
#include "flowpulse/analytical_model.h"

using namespace flowpulse;

namespace {

struct Point {
  std::uint64_t bytes;
  std::uint32_t preexisting;
};

double run_point(const Point& pt, double* out_port_pred, double* out_port_obs) {
  exp::ScenarioConfig cfg = bench::paper_setup(pt.bytes, 1);
  // Single flow: model it as a 2-rank "ring" (host 3 → host 20 and back);
  // we examine only the 3→20 direction at leaf 20.
  cfg.fabric.shape = net::TopologyInfo{32, 16, 1, 1};
  for (std::uint32_t i = 0; i < pt.preexisting; ++i) {
    cfg.preexisting.emplace_back(net::LeafId{20}, net::UplinkIndex{i});  // failed links at the dst leaf
  }
  cfg.collective = collective::CollectiveKind::kAllToAll;
  cfg.max_jitter = sim::Time::zero();

  // Build the scenario manually so we can send exactly one flow.
  exp::Scenario scenario{cfg};
  auto& sim = scenario.simulator();
  auto& fabric = scenario.fabric();
  auto& transports = scenario.transports();

  collective::DemandMatrix demand{fabric.num_hosts()};
  demand.add(net::HostId{3}, net::HostId{20}, core::Bytes{pt.bytes});
  const fp::AnalyticalModel model{fabric.info(), 4096, net::kHeaderBytes};
  const fp::PortLoadMap pred = model.predict(demand, fabric.routing());

  transport::MessageSpec spec;
  spec.dst = net::HostId{20};
  spec.bytes = core::Bytes{pt.bytes};
  spec.flow_id = net::flowid::make_collective(net::IterIndex{0});
  transports.at(net::HostId{3}).send_message(spec);
  sim.run();
  scenario.flowpulse().flush();

  const auto& history = scenario.flowpulse().monitor(net::LeafId{20}).history();
  double worst = -1.0;
  if (!history.empty()) {
    const fp::IterationRecord& rec = history.back();
    for (const net::UplinkIndex u :
         core::ids<net::UplinkIndex>(fabric.info().uplinks_per_leaf())) {
      const double p = pred.at(net::LeafId{20}, u).total;
      if (p <= 0.0) continue;
      const double dev = fp::relative_deviation(rec.bytes[u.v()], p);
      if (dev > worst) {
        worst = dev;
        *out_port_pred = p;
        *out_port_obs = rec.bytes[u.v()];
      }
    }
  }
  return worst < 0.0 ? 0.0 : worst;
}

}  // namespace

int main() {
  bench::print_header("FIG2: analytical prediction vs packet-level simulation (single flow)",
                      "Paper Fig. 2: predicted per-port load matches simulated load.");

  exp::Table table({"message size", "known faults @dst", "worst port |pred-sim|/pred",
                    "example pred B", "example sim B"});
  const std::vector<Point> points{Point{1ull << 20, 0},  Point{4ull << 20, 0},
                                  Point{16ull << 20, 0}, Point{64ull << 20, 0},
                                  Point{16ull << 20, 2}, Point{16ull << 20, 4},
                                  Point{64ull << 20, 4}};
  struct Row {
    double worst = 0.0, pred = 0.0, obs = 0.0;
  };
  // Each point is one self-contained Scenario; sweep them on the parallel
  // trial engine (FLOWPULSE_JOBS) and print in point order.
  const std::vector<Row> rows = exp::parallel_indexed<Row>(
      static_cast<std::uint32_t>(points.size()), 0, [&points](std::uint32_t i) {
        Row row;
        row.worst = run_point(points[i], &row.pred, &row.obs);
        return row;
      });
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.row({std::to_string(points[i].bytes >> 20) + " MiB",
               std::to_string(points[i].preexisting), exp::pct(rows[i].worst),
               exp::fmt(rows[i].pred, 0), exp::fmt(rows[i].obs, 0)});
  }
  table.print();
  std::cout << "\nShape check vs paper: agreement within packet quantization at every size;\n"
               "known faults redistribute load over the s-f surviving spines exactly.\n";
  return 0;
}
