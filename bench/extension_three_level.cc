// EXT-3LEVEL — paper §7 "Network Topology": "FlowPulse could extend to
// other topologies by deploying FlowPulse at both leaf and spine levels to
// monitor spine-leaf and core-spine links respectively."
//
// A 3-level Clos (pods of leaves + pod-spines, plus a partitioned core
// layer) runs a Ring-AllReduce across all pods. We inject silent faults at
// each tier and report what each tier's monitors see: a leaf↔spine fault
// shows its full drop rate at the leaf tier; a core↔spine fault shows its
// full rate at the spine tier but only a 1/K-diluted echo at the leaf tier
// — exactly why the paper proposes deploying monitors at both levels.
#include <memory>

#include "bench_common.h"
#include "collective/runner.h"
#include "flowpulse/three_level_system.h"
#include "net/three_level.h"
#include "transport/transport_layer.h"

using namespace flowpulse;

namespace {

struct Result {
  double leaf_dev = 0.0;
  double spine_dev = 0.0;
  std::string leaf_verdict, spine_verdict;
};

Result run_case(int fault_tier, double drop) {
  sim::Simulator sim{21};
  net::ThreeLevelConfig cfg;
  cfg.shape = net::ThreeLevelInfo{4, 4, 4, 1};  // 16 leaves, 16 pod-spines, 16 cores
  net::ThreeLevelFatTree net{sim, cfg};
  transport::TransportLayer transports{sim, net};
  fp::ThreeLevelFlowPulse fps{net, 0.01};

  collective::CollectiveConfig cc;
  for (const net::HostId h : core::ids<net::HostId>(net.num_hosts())) {
    cc.hosts.push_back(h);
  }
  cc.schedule = collective::ring_reduce_scatter(
      net.num_hosts(),
      core::Bytes{static_cast<std::uint64_t>(24'000'000 * exp::env_scale())});
  cc.iterations = 3;
  collective::CollectiveRunner runner{sim, transports, std::move(cc)};

  std::vector<net::HostId> hosts(net.num_hosts(), net::HostId{});
  for (const net::HostId h : core::ids<net::HostId>(net.num_hosts())) hosts[h.v()] = h;
  const auto demand = collective::DemandMatrix::from_schedule(runner.current_schedule(),
                                                              hosts, net.num_hosts());
  const fp::ThreeLevelAnalyticalModel model{net.info(), 4096, net::kHeaderBytes};
  fps.set_prediction(model.predict(demand, net.routing()));

  if (fault_tier == 1) {
    net.set_leaf_link_fault(net::LeafId{6}, /*spine=*/2, net::FaultSpec::random_drop(drop));
  } else if (fault_tier == 2) {
    net.set_core_link_fault(/*pod=*/1, /*spine=*/2, /*k=*/3,
                            net::FaultSpec::random_drop(drop));
  }

  runner.start();
  sim.run();
  fps.flush();

  Result r;
  for (const double d : fps.leaf_iteration_max_dev()) r.leaf_dev = std::max(r.leaf_dev, d);
  for (const double d : fps.spine_iteration_max_dev()) {
    r.spine_dev = std::max(r.spine_dev, d);
  }
  r.leaf_verdict = r.leaf_dev > 0.01 ? "FAULT" : "ok";
  r.spine_verdict = r.spine_dev > 0.01 ? "FAULT" : "ok";
  // Name the alerted link at the owning tier.
  for (const auto& dr : fps.faulty_leaf_results()) {
    for (const auto& a : dr.alerts) {
      if (a.observed < a.predicted) {
        r.leaf_verdict = "FAULT @ leaf " + std::to_string(dr.leaf.v()) + " / spine idx " +
                         std::to_string(a.uplink.v());
      }
    }
  }
  for (const auto& dr : fps.faulty_spine_results()) {
    for (const auto& a : dr.alerts) {
      if (a.observed < a.predicted) {
        r.spine_verdict = "FAULT @ podspine " + std::to_string(dr.leaf.v()) + " / core " +
                          std::to_string(a.uplink.v());
      }
    }
  }
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "EXT-3LEVEL: two-tier FlowPulse on a 3-level Clos (4 pods x 4 leaves x 4 spines)",
      "Paper §7: monitor spine-leaf links at leaves, core-spine links at pod spines.");

  exp::Table table({"injected fault", "leaf-tier max dev", "leaf-tier verdict",
                    "spine-tier max dev", "spine-tier verdict"});
  struct Case {
    const char* name;
    int tier;
    double drop;
  };
  for (const Case& c : {Case{"none (clean)", 0, 0.0},
                        Case{"leaf6 <-> podspine2, 4% drop", 1, 0.04},
                        Case{"pod1.spine2 <-> core3, 4% drop", 2, 0.04}}) {
    const Result r = run_case(c.tier, c.drop);
    table.row({c.name, exp::pct(r.leaf_dev), r.leaf_verdict, exp::pct(r.spine_dev),
               r.spine_verdict});
  }
  table.print();

  std::cout << "\nShape check vs paper: clean runs are quiet at both tiers; a leaf-link\n"
               "fault surfaces at the leaf tier with its full drop rate; a core-link\n"
               "fault surfaces at the spine tier while the leaf tier sees only the\n"
               "1/K-diluted echo — both tiers are needed to localize both link classes.\n";
  return 0;
}
