// PREEX — §6 "Effect of pre-existing faults": "FlowPulse detects new
// faults even when known faults already exist. As the model takes these
// faults into account, we observe perfect classification for new faults
// that drop >= 2.5% of packets or more."
//
// Known faults are disconnected links (removed from routing, per the
// paper); the analytical model redistributes demand over the surviving
// spines, so a degraded-but-known network must produce no false alarms,
// while a new silent fault on top of it stays detectable.
#include "bench_common.h"

using namespace flowpulse;

int main() {
  bench::print_header(
      "PREEX: detection with pre-existing (known, disconnected) faults",
      "Paper §6: perfect classification for new faults >= 2.5% drop despite known faults.");

  const std::uint32_t trials = exp::env_trials(2);
  const std::vector<std::uint32_t> preexisting_counts{0, 2, 4, 8};
  const std::vector<double> drops{0.015, 0.025, 0.040};

  std::vector<std::string> headers{"pre-existing", "noise floor", "FPR@1%"};
  for (const double d : drops) headers.push_back("FNR@drop " + exp::pct(d, 1));

  exp::Table table{headers};
  for (const std::uint32_t n : preexisting_counts) {
    exp::ScenarioConfig cfg = bench::paper_setup(24'000'000);
    // Scatter known disconnects across distinct (leaf, spine) pairs, away
    // from the new-fault site (leaf 12, spine 5).
    for (std::uint32_t i = 0; i < n; ++i) {
      cfg.preexisting.emplace_back((3 + 7 * i) % 32, (1 + 3 * i) % 16);
    }

    const std::vector<exp::TrialSamples> clean = bench::run_trials(cfg, trials);
    std::vector<std::string> row{std::to_string(n), exp::pct(exp::noise_floor(clean)),
                                 exp::pct(exp::classify(clean, 0.01).fpr())};
    for (const double d : drops) {
      exp::ScenarioConfig faulty_cfg = cfg;
      faulty_cfg.seed = cfg.seed + static_cast<std::uint64_t>(d * 1e4) + n;
      faulty_cfg.new_faults.push_back(bench::silent_drop(d));
      const std::vector<exp::TrialSamples> faulty = bench::run_trials(faulty_cfg, trials);
      row.push_back(exp::pct(exp::classify(faulty, 0.01).fnr()));
    }
    table.row(std::move(row));
  }
  table.print();

  std::cout << "\nShape check vs paper: pre-existing known faults add no false positives\n"
               "(the model redistributes over s-f spines), and new faults >= 2.5% stay\n"
               "perfectly classified at every pre-existing count.\n";
  return 0;
}
