// LOCAL — Fig. 4: "Faults can be localized by comparing data from two
// sending leaves. When traffic from a sender is received on one link, but
// not the other, the receiving switch infers a failure on the remote link
// to the sender."
//
// Two scenarios on an AlltoAll workload (every port carries every sender,
// the multi-sender precondition localization needs):
//   (a) local fault — the spine->leaf downlink itself drops: every
//       sender's share on that port shrinks -> verdict kLocalLink;
//   (b) remote fault — one sender leaf's uplink to the spine drops: only
//       that sender's share shrinks at every other leaf -> verdict
//       kRemoteLinks{sender}.
#include <map>

#include "bench_common.h"

using namespace flowpulse;

namespace {

struct LocalizationScore {
  std::uint32_t alerts = 0;
  std::uint32_t correct = 0;
  std::map<std::string, std::uint32_t> verdicts;
};

LocalizationScore run_case(bool remote, double drop) {
  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{8, 4, 1, 1};
  cfg.collective = collective::CollectiveKind::kAllToAll;
  cfg.collective_bytes = core::Bytes{256ull << 20};  // ~2.3 MiB per ordered pair
  cfg.iterations = 2;
  cfg.flowpulse.threshold = 0.01;

  const net::LeafId fault_leaf{1};
  const net::UplinkIndex fault_port{0};
  exp::NewFault f;
  f.leaf = fault_leaf;
  f.uplink = fault_port;
  f.where = remote ? exp::NewFault::Where::kUplink : exp::NewFault::Where::kDownlink;
  f.spec = net::FaultSpec::random_drop(drop);
  cfg.new_faults.push_back(f);

  exp::Scenario s{cfg};
  s.run();

  LocalizationScore score;
  for (const fp::DetectionResult& d : s.flowpulse().faulty_results()) {
    for (const fp::PortAlert& a : d.alerts) {
      if (a.observed >= a.predicted) continue;  // surplus ports: retx spill
      ++score.alerts;
      switch (a.localization.verdict) {
        case fp::Localization::Verdict::kLocalLink:
          ++score.verdicts["local"];
          if (!remote && d.leaf == fault_leaf && a.uplink == fault_port) ++score.correct;
          break;
        case fp::Localization::Verdict::kRemoteLinks:
          ++score.verdicts["remote"];
          if (remote && d.leaf != fault_leaf && a.uplink == fault_port &&
              a.localization.suspect_senders == std::vector<net::LeafId>{fault_leaf}) {
            ++score.correct;
          }
          break;
        case fp::Localization::Verdict::kUnknown:
          ++score.verdicts["unknown"];
          break;
      }
    }
  }
  return score;
}

}  // namespace

int main() {
  bench::print_header("LOCAL: fault localization — local vs remote link discrimination",
                      "Paper Fig. 4: per-sender comparison separates the two cases.");

  exp::Table table({"case", "drop", "deficit alerts", "correctly localized", "verdict mix"});
  for (const double drop : {0.03, 0.08}) {
    for (const bool remote : {false, true}) {
      const LocalizationScore score = run_case(remote, drop);
      std::string mix;
      for (const auto& [k, v] : score.verdicts) {
        mix += k + ":" + std::to_string(v) + " ";
      }
      table.row({remote ? "remote (sender uplink)" : "local (dst downlink)",
                 exp::pct(drop, 0), std::to_string(score.alerts),
                 std::to_string(score.correct), mix});
    }
  }
  table.print();

  std::cout << "\nShape check vs paper: downlink faults -> every sender short -> LOCAL;\n"
               "uplink faults -> one sender short at every receiver -> REMOTE{sender}.\n";
  return 0;
}
