// HEADLINE — abstract claim: "FlowPulse identifies a single faulty link
// with 1.5% corruption rate by checking temporal symmetry in a full
// two-level fat tree topology with 32 leaf switches while performing
// Ring-AllReduce on all nodes."
//
// Corrupted packets are dropped at the next switch (§7 Fault Types), so a
// 1.5% corruption rate is modeled as a 1.5% drop on the link. This bench
// runs a production-sized collective (256 MiB by default — the paper notes
// LLM AllReduces reach GBs) so the per-iteration statistic is sharp, and
// checks: zero false positives in the clean run, detection in every faulty
// iteration, and correct localization of the corrupting link.
#include "bench_common.h"

using namespace flowpulse;

int main() {
  bench::print_header("HEADLINE: 1.5% corrupting link in a 32-leaf fat tree, Ring-AllReduce",
                      "Paper abstract: single faulty link at 1.5% corruption detected.");

  const net::LeafId fault_leaf{12};
  const net::UplinkIndex fault_port{5};
  exp::ScenarioConfig cfg = bench::paper_setup(256ull << 20, 3);

  exp::Scenario clean{cfg};
  const exp::ScenarioResult clean_result = clean.run();

  exp::ScenarioConfig faulty_cfg = cfg;
  faulty_cfg.new_faults.push_back(bench::silent_drop(0.015, fault_leaf, fault_port));
  exp::Scenario faulty{faulty_cfg};
  const exp::ScenarioResult faulty_result = faulty.run();

  exp::Table table({"run", "iteration", "max deviation", "verdict @1%"});
  for (std::size_t i = 0; i < clean_result.per_iter_max_dev.size(); ++i) {
    table.row({"clean", std::to_string(i), exp::pct(clean_result.per_iter_max_dev[i]),
               clean_result.per_iter_max_dev[i] > 0.01 ? "FAULT (FP!)" : "ok"});
  }
  for (std::size_t i = 0; i < faulty_result.per_iter_max_dev.size(); ++i) {
    table.row({"1.5% corrupting link", std::to_string(i),
               exp::pct(faulty_result.per_iter_max_dev[i]),
               faulty_result.per_iter_max_dev[i] > 0.01 ? "FAULT" : "MISSED (FN!)"});
  }
  table.print();

  // Localization check: every alert must point at (leaf 12, port 5), local.
  std::uint32_t alerts = 0, located = 0;
  for (const fp::DetectionResult& d : faulty.flowpulse().faulty_results()) {
    for (const fp::PortAlert& a : d.alerts) {
      ++alerts;
      if (d.leaf == fault_leaf && a.uplink == fault_port &&
          a.localization.verdict == fp::Localization::Verdict::kLocalLink) {
        ++located;
      }
    }
  }
  std::cout << "\nalerts: " << alerts << ", correctly localized to the faulty local link: "
            << located << "\n";
  std::cout << "clean false positives: "
            << exp::classify({exp::samples_from(clean_result)}, 0.01).fp << "\n";
  std::cout << "\nShape check vs paper: detection in every faulty iteration at the 1%\n"
               "threshold with zero clean false positives, localized to the right link —\n"
               "no probes injected, no cross-switch coordination.\n";
  return 0;
}
