// ABL-BASELINE — the two strategies the paper argues against (§1, §3):
//
//  (a) Spatial symmetry ("non-leaf switches should have nearly equal
//      load"): we run a clean network with k pre-existing disconnected
//      links and count how many iterations the spatial check flags —
//      persistent false alarms, while FlowPulse stays quiet.
//  (b) Pingmesh-style probing: small end-to-end probes share the fabric
//      with the collective. We measure the bandwidth they inject and how
//      long until a probe happens to cross the gray link AND get dropped —
//      slow for low drop rates, and unable to name the faulty link under
//      APS (a probe's path is not controllable).
#include "baseline/counter_scraper.h"
#include "baseline/pingmesh.h"
#include "baseline/spatial_symmetry.h"
#include "bench_common.h"

using namespace flowpulse;

int main() {
  bench::print_header("ABL-BASELINE: spatial symmetry & Pingmesh probing vs FlowPulse",
                      "Paper §1/§3: why existing strategies miss silent faults in APS nets.");

  // --- (a) spatial symmetry under pre-existing faults -----------------------
  std::cout << "(a) spatial-symmetry detector on a HEALTHY network with known faults\n";
  exp::Table ta({"pre-existing links down", "spatial: flagged iters", "FlowPulse: flagged",
                 "spatial max dev"});
  for (const std::uint32_t n : {0u, 1u, 2u, 4u}) {
    exp::ScenarioConfig cfg = bench::paper_setup(16ull << 20);
    for (std::uint32_t i = 0; i < n; ++i) {
      cfg.preexisting.emplace_back(net::LeafId{(5 + 11 * i) % 32},
                                   net::UplinkIndex{(2 + 5 * i) % 16});
    }
    exp::Scenario s{cfg};
    const exp::ScenarioResult r = s.run();

    std::uint32_t spatial_flagged = 0, spatial_total = 0;
    double max_dev = 0.0;
    for (const net::LeafId l : core::ids<net::LeafId>(32)) {
      for (const fp::IterationRecord& rec : s.flowpulse().monitor(l).history()) {
        const auto res = baseline::spatial_symmetry_check(rec, 0.01);
        ++spatial_total;
        if (res.flagged) ++spatial_flagged;
        max_dev = std::max(max_dev, res.max_rel_dev);
      }
    }
    std::uint32_t fp_flagged = 0;
    for (const double dev : r.per_iter_max_dev) {
      if (dev > 0.01) ++fp_flagged;
    }
    ta.row({std::to_string(n),
            std::to_string(spatial_flagged) + "/" + std::to_string(spatial_total),
            std::to_string(fp_flagged) + "/" + std::to_string(r.per_iter_max_dev.size()),
            exp::pct(max_dev)});
  }
  ta.print();

  // --- (b) probing overhead & sensitivity -----------------------------------
  std::cout << "\n(b) Pingmesh-style probing against a 1.5% gray link\n";
  exp::Table tb({"probe interval", "probes sent", "probe bytes injected", "probe loss rate",
                 "first loss at", "FlowPulse first alert"});
  for (const std::int64_t interval_us : {100ll, 25ll}) {
    exp::ScenarioConfig cfg = bench::paper_setup(16ull << 20, 6);
    cfg.new_faults.push_back(bench::silent_drop(0.015));
    exp::Scenario s{cfg};

    baseline::PingmeshConfig pcfg;
    pcfg.interval = sim::Time::microseconds(interval_us);
    pcfg.probes_per_round = 2;
    baseline::PingmeshProber prober{s.simulator(), s.fabric(), s.transports(), pcfg};
    prober.start(sim::Time::milliseconds(5));

    const exp::ScenarioResult r = s.run();
    sim::Time first_alert = sim::Time::max();
    for (std::size_t i = 0; i < r.per_iter_max_dev.size(); ++i) {
      if (r.per_iter_max_dev[i] > 0.01 && i < r.iter_windows.size()) {
        first_alert = r.iter_windows[i].second;
        break;
      }
    }
    tb.row({std::to_string(interval_us) + " us", std::to_string(prober.probes_sent()),
            std::to_string(prober.bytes_injected().v()) + " B",
            exp::pct(prober.loss_rate(), 3),
            prober.first_loss_time() == sim::Time::max()
                ? "never"
                : exp::fmt(prober.first_loss_time().us(), 0) + " us",
            first_alert == sim::Time::max() ? "never"
                                            : exp::fmt(first_alert.us(), 0) + " us"});
  }
  tb.print();

  // --- (c) switch-counter polling vs silent faults ---------------------------
  std::cout << "\n(c) counter-polling telemetry against a 1.5% gray link\n";
  exp::Table tc({"fault visibility", "physical drops", "counter alarms",
                 "FlowPulse flagged iters"});
  for (const bool visible : {false, true}) {
    exp::ScenarioConfig cfg = bench::paper_setup(16ull << 20, 4);
    exp::NewFault f = bench::silent_drop(0.015);
    f.spec.visible_to_counters = visible;
    cfg.new_faults.push_back(f);
    exp::Scenario s{cfg};
    baseline::CounterScraper scraper{s.simulator(), s.fabric(), {}};
    scraper.start(sim::Time::milliseconds(5));
    const exp::ScenarioResult r = s.run();
    std::uint32_t flagged = 0;
    for (const double dev : r.per_iter_max_dev) {
      if (dev > 0.01) ++flagged;
    }
    tc.row({visible ? "counted (e.g. CRC errs)" : "SILENT (paper's target)",
            std::to_string(r.fabric_counters.dropped_packets.v()),
            std::to_string(scraper.alarms().size()),
            std::to_string(flagged) + "/" + std::to_string(r.per_iter_max_dev.size())});
  }
  tc.print();

  std::cout << "\nTakeaway: spatial symmetry false-alarms permanently once any link is down;\n"
               "probing injects traffic yet needs many rounds to hit a 1.5% gray link even\n"
               "once (and cannot name the link under APS); counter polling works only for\n"
               "faults the error counters register — silent drops leave it blind — while\n"
               "FlowPulse flags every case at the end of the first faulty iteration using\n"
               "only the training traffic itself.\n";
  return 0;
}
