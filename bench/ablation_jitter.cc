// ABL-JITTER — §4/§7 claim: temporal symmetry is robust to start-time
// jitter for ring collectives, because with one non-local sender and one
// non-local destination per leaf, spraying happens at the sender's leaf
// and the aggregated per-iteration volume is unchanged by timing.
//
// We sweep per-rank start jitter from 0 to 50 µs (several times the
// iteration's stage time) and report the clean noise floor and the FNR
// against a 1.5% drop — both should stay flat.
#include "bench_common.h"

using namespace flowpulse;

int main() {
  bench::print_header("ABL-JITTER: straggler jitter vs temporal symmetry",
                      "Paper §4: volume-over-iteration is jitter-resilient for rings.");

  const std::uint32_t trials = exp::env_trials(2);

  exp::Table table({"max jitter", "noise floor", "FPR@1%", "FNR@1% (1.5% drop)",
                    "mean iter time"});
  for (const std::int64_t jitter_us : {0ll, 2ll, 10ll, 25ll, 50ll}) {
    exp::ScenarioConfig cfg = bench::paper_setup(24'000'000);
    cfg.max_jitter = sim::Time::microseconds(jitter_us);

    const std::vector<exp::TrialSamples> clean = bench::run_trials(cfg, trials);

    exp::ScenarioConfig faulty_cfg = cfg;
    faulty_cfg.new_faults.push_back(bench::silent_drop(0.015));
    const std::vector<exp::TrialSamples> faulty = bench::run_trials(faulty_cfg, trials);

    // One representative run for the iteration-time column.
    exp::Scenario probe{cfg};
    const exp::ScenarioResult r = probe.run();
    double mean_us = 0.0;
    for (const auto& w : r.iter_windows) mean_us += (w.second - w.first).us();
    if (!r.iter_windows.empty()) mean_us /= static_cast<double>(r.iter_windows.size());

    table.row({std::to_string(jitter_us) + " us", exp::pct(exp::noise_floor(clean)),
               exp::pct(exp::classify(clean, 0.01).fpr()),
               exp::pct(exp::classify(faulty, 0.01).fnr()), exp::fmt(mean_us, 1) + " us"});
  }
  table.print();

  std::cout << "\nShape check vs paper: the noise floor and FNR stay flat as jitter grows —\n"
               "iteration completion stretches, but the per-port volume per iteration (the\n"
               "statistic FlowPulse checks) is unchanged.\n";
  return 0;
}
