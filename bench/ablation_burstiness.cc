// ABL-BURST — §7 "Fault Types": gray faults in practice are *bursty* (BER
// episodes, flapping optics), not independent coin flips. FlowPulse's
// statistic integrates volume over a whole iteration, so it should be
// insensitive to how the same average loss is distributed in time.
//
// We compare a uniform random-drop link against Gilbert–Elliott links of
// equal average rate but increasing burst length. Short bursts behave like
// uniform loss; long bursts concentrate the same average into rare
// episodes, so many iterations genuinely lose nothing — the per-iteration
// deviation is bimodal: near zero between episodes, huge within them.
#include <cmath>

#include "bench_common.h"

using namespace flowpulse;

int main() {
  bench::print_header("ABL-BURST: bursty vs uniform loss at equal average rate",
                      "Paper §7 Fault Types: gray faults manifest as (bursty) drops.");

  const std::uint32_t trials = exp::env_trials(2);
  const double avg_rate = 0.02;

  struct Case {
    std::string name;
    net::FaultSpec spec;
  };
  const std::vector<Case> cases{
      {"uniform 2% drops", net::FaultSpec::random_drop(avg_rate)},
      {"GE bursts ~10 pkts", net::FaultSpec::gilbert_elliott(avg_rate, 10.0)},
      {"GE bursts ~100 pkts", net::FaultSpec::gilbert_elliott(avg_rate, 100.0)},
      {"GE bursts ~1000 pkts", net::FaultSpec::gilbert_elliott(avg_rate, 1000.0)},
  };

  exp::Table table({"fault", "FNR@1% (vs configured)", "mean dev", "stddev of dev",
                    "max dev"});
  for (const Case& c : cases) {
    exp::ScenarioConfig cfg = bench::paper_setup(24'000'000, 4);
    exp::NewFault f;
    f.leaf = net::LeafId{12};
    f.uplink = net::UplinkIndex{5};
    f.where = exp::NewFault::Where::kBoth;
    f.spec = c.spec;
    cfg.new_faults.push_back(f);

    const std::vector<exp::TrialSamples> samples = bench::run_trials(cfg, trials);
    double sum = 0.0, sum2 = 0.0, max_dev = 0.0;
    std::uint32_t n = 0;
    for (const exp::TrialSamples& t : samples) {
      for (const double d : t.dev) {
        sum += d;
        sum2 += d * d;
        max_dev = std::max(max_dev, d);
        ++n;
      }
    }
    const double mean = n ? sum / n : 0.0;
    const double var = n ? sum2 / n - mean * mean : 0.0;
    table.row({c.name, exp::pct(exp::classify(samples, 0.01).fnr()), exp::pct(mean),
               exp::pct(var > 0 ? std::sqrt(var) : 0.0), exp::pct(max_dev)});
  }
  table.print();

  std::cout << "\nTakeaway: short bursts detect like uniform loss. Long bursts turn the SAME\n"
               "average rate into rare episodes: most iterations truly lose nothing (the\n"
               "naive 'FNR vs configured fault' soars), but iterations containing an\n"
               "episode deviate enormously (see max dev) and are flagged the moment they\n"
               "occur — per-iteration checking catches each episode with one-iteration\n"
               "latency, degenerating into the transient-fault regime of Fig. 3. Faults\n"
               "whose episodes are shorter and rarer than one iteration\'s traffic are the\n"
               "paper\'s acknowledged blind spot (\"faults that are too short ... are still\n"
               "undetectable\").\n";
  return 0;
}
