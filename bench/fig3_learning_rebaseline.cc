// FIG3 — "Learning-based prediction model update. FlowPulse learns an
// improved baseline after transient fault recovery."
//
// The learned model takes its baseline from the first training iterations.
// Here a transient gray fault is present during that learning window and
// heals afterwards: the model must recognize the more-even re-balanced
// load as a healed network (not a new fault), replace its baseline, and
// accept subsequent iterations — while still alerting on a genuinely new
// fault later in the run.
#include "bench_common.h"

using namespace flowpulse;

namespace {

const char* kind_name(fp::LearnedModel::Outcome::Kind k) {
  using Kind = fp::LearnedModel::Outcome::Kind;
  switch (k) {
    case Kind::kLearning:
      return "learning";
    case Kind::kOk:
      return "ok";
    case Kind::kAlert:
      return "ALERT";
    case Kind::kRebaseline:
      return "REBASELINE";
  }
  return "?";
}

}  // namespace

int main() {
  bench::print_header("FIG3: learned baseline update after transient fault recovery",
                      "Paper Fig. 3: after the transient fault heals, the learned model\n"
                      "replaces the poisoned baseline instead of alerting forever.");

  exp::ScenarioConfig cfg = bench::paper_setup(16ull << 20, 12);
  cfg.flowpulse.model = fp::ModelKind::kLearned;
  cfg.flowpulse.learned.learn_iterations = 3;
  cfg.flowpulse.learned.threshold = 0.01;

  const net::LeafId leaf{12};
  const net::UplinkIndex port{5};
  // Transient 6% gray fault during learning; heals around iteration 5.
  exp::NewFault transient = bench::silent_drop(0.06, leaf, port);
  transient.spec.end = sim::Time::microseconds(2200);
  cfg.new_faults.push_back(transient);
  // A genuinely new fault appears on another port near the end.
  exp::NewFault late = bench::silent_drop(0.05, leaf, net::UplinkIndex{9});
  late.spec.start = sim::Time::microseconds(4200);
  cfg.new_faults.push_back(late);

  exp::Scenario scenario{cfg};
  const exp::ScenarioResult result = scenario.run();

  exp::Table table({"iteration", "window", "port " + std::to_string(port.v()) + " bytes",
                    "port 9 bytes", "model outcome", "max dev"});
  const auto& history = scenario.flowpulse().monitor(leaf).history();
  for (const auto& lo : result.learned) {
    if (lo.leaf != leaf) continue;
    std::string window = "?";
    if (lo.iteration.v() < result.iter_windows.size()) {
      const auto& w = result.iter_windows[lo.iteration.v()];
      window = exp::fmt(w.first.us(), 0) + "-" + exp::fmt(w.second.us(), 0) + "us";
    }
    const fp::IterationRecord* rec = nullptr;
    for (const auto& r : history) {
      if (r.iteration == lo.iteration) rec = &r;
    }
    table.row({std::to_string(lo.iteration.v()), window,
               rec ? exp::fmt(rec->bytes[port.v()], 0) : "-",
               rec ? exp::fmt(rec->bytes[9], 0) : "-", kind_name(lo.outcome.kind),
               exp::pct(lo.outcome.max_rel_dev)});
  }
  table.print();

  std::cout << "\nShape check vs paper: fault-poisoned learning -> healed load re-balances\n"
               "evenly -> REBASELINE (not alert) -> new baseline accepts healthy iterations\n"
               "-> a genuinely new fault later still raises ALERT.\n";
  return 0;
}
