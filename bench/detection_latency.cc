// LATENCY — the paper's "rapid" claim, quantified: how long after a silent
// fault appears does each strategy raise its first alert?
//
//  * FlowPulse — flags at the end of the first iteration whose volume the
//    fault perturbed (its fundamental latency = one collective iteration).
//  * Pingmesh probing — must wait for a probe to (a) be scheduled, (b) get
//    sprayed onto the faulty link, (c) actually be dropped at rate p.
//  * Counter polling — never fires for silent faults (see ABL-BASELINE).
//
// The fault switches on mid-run at a fixed time; we report alert latency
// from onset across seeds.
#include "baseline/pingmesh.h"
#include "bench_common.h"

using namespace flowpulse;

int main() {
  bench::print_header("LATENCY: time from silent-fault onset to first alert",
                      "Paper: 'rapid, low-overhead detection' — quantified.");

  const std::uint32_t trials = exp::env_trials(3);
  const sim::Time onset = sim::Time::microseconds(900);

  exp::Table table({"drop rate", "seed", "FlowPulse alert after", "probe loss after",
                    "iteration length"});
  struct Row {
    std::uint64_t seed = 0;
    sim::Time alert = sim::Time::max();
    sim::Time probe_loss = sim::Time::max();
    double iter_us = 0.0;
  };
  for (const double drop : {0.02, 0.05}) {
    // Each trial is a self-contained Scenario + prober; run the seeds on the
    // parallel trial engine and emit the rows in seed order.
    const std::vector<Row> rows =
        exp::parallel_indexed<Row>(trials, 0, [&](std::uint32_t t) {
          exp::ScenarioConfig cfg = bench::paper_setup(24'000'000, 8);
          cfg.seed = exp::trial_seed(100, t);
          exp::NewFault f = bench::silent_drop(drop);
          f.spec.start = onset;
          cfg.new_faults.push_back(f);

          exp::Scenario s{cfg};
          baseline::PingmeshConfig pcfg;
          pcfg.interval = sim::Time::microseconds(50);
          pcfg.probes_per_round = 2;
          baseline::PingmeshProber prober{s.simulator(), s.fabric(), s.transports(), pcfg};
          prober.start(sim::Time::milliseconds(20));

          const exp::ScenarioResult r = s.run();
          Row row;
          row.seed = cfg.seed;
          for (std::size_t i = 0; i < r.per_iter_max_dev.size(); ++i) {
            if (r.per_iter_max_dev[i] > 0.01 && i < r.iter_windows.size() &&
                r.iter_windows[i].second >= onset) {
              row.alert = r.iter_windows[i].second;
              break;
            }
          }
          for (const auto& w : r.iter_windows) row.iter_us += (w.second - w.first).us();
          row.iter_us /= static_cast<double>(r.iter_windows.empty() ? 1 : r.iter_windows.size());
          row.probe_loss = prober.first_loss_time();
          return row;
        });
    for (const Row& row : rows) {
      table.row({exp::pct(drop, 0), std::to_string(row.seed),
                 row.alert == sim::Time::max() ? "never"
                                               : exp::fmt((row.alert - onset).us(), 0) + " us",
                 row.probe_loss == sim::Time::max() || row.probe_loss < onset
                     ? "not yet"
                     : exp::fmt((row.probe_loss - onset).us(), 0) + " us",
                 exp::fmt(row.iter_us, 0) + " us"});
    }
  }
  table.print();

  std::cout << "\nShape check vs paper: FlowPulse's alert lands at the end of the iteration\n"
               "in which the fault appeared (latency ~= one iteration, 'instantaneous' at\n"
               "the granularity training cares about), with zero injected traffic — and the\n"
               "alert NAMES the faulty link. At these drop rates a dense prober also sees a\n"
               "loss quickly, but under APS the lost probe identifies no link (its path was\n"
               "sprayed), its latency blows up at lower rates (see ABL-BASELINE at 1.5%),\n"
               "and the probe mesh itself costs bandwidth exactly when the fabric is busy.\n"
               "Counter polling never fires at all for silent faults.\n";
  return 0;
}
