// PERF — engineering microbenchmarks (google-benchmark): the substrate's
// raw speed and the in-switch cost of FlowPulse's own operations. The
// detector figures matter for deployability: the per-iteration check is a
// handful of compares per port, well within a switch control plane.
#include <benchmark/benchmark.h>

#include "collective/demand_matrix.h"
#include "collective/schedule.h"
#include "daemon/engine.h"
#include "daemon/protocol.h"
#include "exp/scenario.h"
#include "exp/trials.h"
#include "flowpulse/analytical_model.h"
#include "flowpulse/detector.h"
#include "flowpulse/fidelity.h"
#include "flowpulse/monitor.h"
#include "flowpulse/streaming_detector.h"
#include "net/fat_tree.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

using namespace flowpulse;

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    sim::Simulator sim;
    std::int64_t fired = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      sim.schedule_at(sim::Time::nanoseconds(i % 997), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1 << 14)->Arg(1 << 17);

void BM_RngU64(benchmark::State& state) {
  sim::Rng rng{42};
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngU64);

void BM_FabricPacketDelivery(benchmark::State& state) {
  // End-to-end packet cost through host→leaf→spine→leaf→host.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim{1};
    net::FatTreeConfig cfg;
    cfg.shape = net::TopologyInfo{8, 4, 1, 1};
    net::FatTree net{sim, cfg};
    int got = 0;
    net.host(net::HostId{7}).set_rx_handler([&](const net::Packet&) { ++got; });
    const int n = 4096;
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      net::Packet p;
      p.src = net::HostId{0};
      p.dst = net::HostId{7};
      p.size_bytes = core::Bytes{4160};
      net.host(net::HostId{0}).nic().enqueue(p);
    }
    sim.run();
    benchmark::DoNotOptimize(got);
    state.SetItemsProcessed(state.items_processed() + n);
  }
}
BENCHMARK(BM_FabricPacketDelivery)->Unit(benchmark::kMillisecond);

void BM_RingIterationSimulation(benchmark::State& state) {
  // Whole-stack cost of one training iteration at paper scale. The
  // events_per_second counter is the repo's headline simulation-throughput
  // number (see BENCH_perf.json / DESIGN.md "Performance").
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0)) << 20;
  std::uint64_t events_total = 0;
  for (auto _ : state) {
    exp::ScenarioConfig cfg;
    cfg.fabric.shape = net::TopologyInfo{32, 16, 1, 1};
    cfg.collective = collective::CollectiveKind::kRingReduceScatter;
    cfg.collective_bytes = core::Bytes{bytes};
    cfg.iterations = 1;
    exp::Scenario s{cfg};
    const exp::ScenarioResult r = s.run();
    benchmark::DoNotOptimize(r.events);
    events_total += r.events;
    state.counters["events"] = static_cast<double>(r.events);
  }
  state.counters["events_per_second"] =
      benchmark::Counter(static_cast<double>(events_total), benchmark::Counter::kIsRate);
  state.SetLabel(std::to_string(state.range(0)) + " MiB collective");
}
BENCHMARK(BM_RingIterationSimulation)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_LanedEvents(benchmark::State& state) {
  // Serial vs sharded-event-lane engine on the same deterministic faulted
  // scenario (both produce bit-identical reports — tests/test_lanes.cc).
  // Arg 0 runs the classic serial engine; Arg N >= 2 shards into N lanes
  // with one worker thread per lane. events_per_second(N) /
  // events_per_second(0) is the laned speedup on this machine — on a
  // single-core runner expect <= 1.0: the provenance merge and round
  // barrier are pure overhead without real parallelism (BENCH_perf.json
  // records both numbers and the core count for honest comparison).
  const std::int32_t lanes = static_cast<std::int32_t>(state.range(0));
  std::uint64_t events_total = 0;
  bool laned = false;
  for (auto _ : state) {
    exp::ScenarioConfig cfg;
    cfg.fabric.shape = net::TopologyInfo{16, 8, 1, 1};
    cfg.collective = collective::CollectiveKind::kRingReduceScatter;
    cfg.collective_bytes = core::Bytes{1ull << 20};
    cfg.iterations = 2;
    cfg.lanes = lanes;
    cfg.new_faults.push_back([] {
      exp::NewFault f;
      f.leaf = net::LeafId{3};
      f.uplink = net::UplinkIndex{1};
      f.where = exp::NewFault::Where::kDownlink;
      f.spec = net::FaultSpec::black_hole(sim::Time::microseconds(50));
      return f;
    }());
    exp::Scenario s{cfg};
    laned = s.laned();
    const exp::ScenarioResult r = s.run();
    benchmark::DoNotOptimize(r.events);
    events_total += r.events;
  }
  state.counters["events_per_second"] =
      benchmark::Counter(static_cast<double>(events_total), benchmark::Counter::kIsRate);
  state.counters["lanes"] = static_cast<double>(lanes);
  state.SetLabel(laned ? std::to_string(lanes) + " lanes" : "serial");
}
BENCHMARK(BM_LanedEvents)->Arg(0)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

// Trial-engine throughput: an 8-trial seeded sweep of a small fault
// scenario, serial vs the parallel engine (jobs = FLOWPULSE_JOBS /
// hardware_concurrency). Both runners produce bit-identical TrialSamples
// (asserted in tests/test_parallel_trials.cc); the ratio of these two
// benches is the trial-level speedup on this machine.
exp::ScenarioConfig trial_sweep_config() {
  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{8, 4, 1, 1};
  cfg.collective = collective::CollectiveKind::kRingReduceScatter;
  cfg.collective_bytes = core::Bytes{2ull << 20};
  cfg.iterations = 2;
  cfg.new_faults.push_back([] {
    exp::NewFault f;
    f.leaf = net::LeafId{3};
    f.uplink = net::UplinkIndex{1};
    f.where = exp::NewFault::Where::kBoth;
    f.spec = net::FaultSpec::random_drop(0.05);
    return f;
  }());
  return cfg;
}
constexpr std::uint32_t kSweepTrials = 8;

void BM_TrialSweepSerial(benchmark::State& state) {
  const exp::ScenarioConfig cfg = trial_sweep_config();
  std::uint64_t trials_total = 0;
  for (auto _ : state) {
    const auto samples = exp::run_trials(cfg, kSweepTrials);
    benchmark::DoNotOptimize(samples.data());
    trials_total += samples.size();
  }
  state.counters["trials_per_second"] =
      benchmark::Counter(static_cast<double>(trials_total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TrialSweepSerial)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_TrialSweepParallel(benchmark::State& state) {
  const exp::ScenarioConfig cfg = trial_sweep_config();
  const unsigned jobs = static_cast<unsigned>(state.range(0));
  std::uint64_t trials_total = 0;
  for (auto _ : state) {
    const auto samples = exp::run_trials_parallel(cfg, kSweepTrials, 0, jobs);
    benchmark::DoNotOptimize(samples.data());
    trials_total += samples.size();
  }
  state.counters["trials_per_second"] =
      benchmark::Counter(static_cast<double>(trials_total), benchmark::Counter::kIsRate);
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_TrialSweepParallel)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FidelityModeIterations(benchmark::State& state) {
  // End-to-end cost per training iteration under each fidelity mode on a
  // healthy-dominated multi-iteration run — the workload the hybrid engine
  // exists for. iterations_per_second(hybrid) / iterations_per_second(packet)
  // is the engine's end-to-end speedup; BENCH_perf.json tracks it.
  const auto mode = static_cast<fp::FidelityMode>(state.range(0));
  std::uint64_t iters_total = 0;
  std::uint64_t events_total = 0;
  for (auto _ : state) {
    exp::ScenarioConfig cfg;
    cfg.fabric.shape = net::TopologyInfo{8, 4, 1, 1};
    cfg.collective = collective::CollectiveKind::kRingReduceScatter;
    cfg.collective_bytes = core::Bytes{1ull << 20};
    cfg.iterations = 16;
    cfg.fidelity.mode = mode;
    exp::Scenario s{cfg};
    const exp::ScenarioResult r = s.run();
    benchmark::DoNotOptimize(r.events);
    iters_total += r.iterations_completed;
    events_total += r.events;
  }
  state.counters["iterations_per_second"] =
      benchmark::Counter(static_cast<double>(iters_total), benchmark::Counter::kIsRate);
  state.counters["events"] = static_cast<double>(
      state.iterations() ? events_total / state.iterations() : 0);
  state.SetLabel(fp::fidelity_mode_name(mode));
}
BENCHMARK(BM_FidelityModeIterations)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_StreamingDetectorObserve(benchmark::State& state) {
  // The O(1) streaming alternative to BM_DetectorEvaluate: judge + EWMA
  // fold of one 16-port iteration record, zero allocation.
  fp::StreamingDetector det{net::LeafId{5}, 16, 32, fp::StreamingConfig{}};
  fp::PortLoadMap pred{32, 16};
  for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(16)) {
    pred.add(net::LeafId{5}, u, net::LeafId{4}, 1.0e6);
  }
  det.seed(pred);
  fp::IterationRecord rec;
  rec.leaf = net::LeafId{5};
  rec.bytes.assign(16, 1.0e6);
  rec.by_src.assign(16, std::vector<double>(32, 0.0));
  for (auto& v : rec.by_src) v[4] = 1.0e6;
  std::uint32_t iter = 0;
  for (auto _ : state) {
    rec.iteration = net::IterIndex{iter++};
    benchmark::DoNotOptimize(det.observe(rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamingDetectorObserve);

void BM_AnalyticalPredict(benchmark::State& state) {
  const net::TopologyInfo info{32, 16, 1, 1};
  net::RoutingState routing{32, 16};
  routing.set_known_failed(net::LeafId{3}, net::UplinkIndex{7});
  const auto schedule = collective::ring_reduce_scatter(32, core::Bytes{64ull << 20});
  std::vector<net::HostId> hosts(32, net::HostId{});
  for (const net::HostId h : core::ids<net::HostId>(32)) hosts[h.v()] = h;
  const auto demand = collective::DemandMatrix::from_schedule(schedule, hosts, 32);
  const fp::AnalyticalModel model{info, 4096, core::Bytes{64}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(demand, routing));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyticalPredict);

void BM_MonitorRecord(benchmark::State& state) {
  // The per-packet cost a programmable switch pays: one filter + two adds.
  const net::TopologyInfo info{32, 16, 1, 1};
  fp::PortMonitor mon{net::LeafId{5}, info};
  net::Packet p;
  p.flow_id = net::flowid::make_collective(net::IterIndex{0});
  p.src = net::HostId{4};
  p.size_bytes = core::Bytes{4160};
  p.kind = net::PacketKind::kData;
  net::UplinkIndex u{0};
  for (auto _ : state) {
    mon.record(u, p);
    u = net::UplinkIndex{(u.v() + 1) % 16};
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonitorRecord);

// --------------------------------------------------------------------------
// Observability. BM_TraceOffOverhead runs in every build: in the default
// configuration the FP_TRACE call sites inside the fabric are preprocessed
// away, so its numbers must match BM_FabricPacketDelivery-style runs bit
// for bit (the trace_zero_cost_symbols test asserts the stronger property
// that the hot-path libraries reference no obs symbols at all). The
// FP_TRACE_ENABLED benches price the enabled-but-recording path and the
// offline exporters.
exp::ScenarioConfig trace_bench_config() {
  // A faulted iteration, so a live recorder has real drop/RTO events to
  // capture — identical simulation in the off and on benches.
  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{8, 4, 1, 1};
  cfg.collective = collective::CollectiveKind::kRingReduceScatter;
  cfg.collective_bytes = core::Bytes{2ull << 20};
  cfg.iterations = 1;
  cfg.new_faults.push_back([] {
    exp::NewFault f;
    f.leaf = net::LeafId{3};
    f.uplink = net::UplinkIndex{1};
    f.where = exp::NewFault::Where::kDownlink;
    f.spec = net::FaultSpec::random_drop(0.10);
    return f;
  }());
  return cfg;
}

void BM_TraceOffOverhead(benchmark::State& state) {
  // One traced-in-principle iteration with tracing not runtime-enabled —
  // the exact cost instrumented builds pay when the recorder is off.
  for (auto _ : state) {
    exp::Scenario s{trace_bench_config()};
    const exp::ScenarioResult r = s.run();
    benchmark::DoNotOptimize(r.events);
    state.counters["events"] = static_cast<double>(r.events);
  }
  state.SetLabel(FP_TRACE_ENABLED ? "trace compiled in (level off)" : "trace compiled out");
}
BENCHMARK(BM_TraceOffOverhead)->Unit(benchmark::kMillisecond)->UseRealTime();

#if FP_TRACE_ENABLED
void BM_TraceEmit(benchmark::State& state) {
  // The hot-path cost when recording: one level check + a bounded struct
  // copy into a preallocated ring slot.
  obs::FlightRecorder rec{obs::FlightRecorder::kDefaultCapacity};
  rec.set_level(obs::TraceLevel::kEvents);
  std::uint64_t n = 0;
  for (auto _ : state) {
    rec.emit(obs::EventKind::kPacketDrop, sim::Time::nanoseconds(static_cast<std::int64_t>(n)),
             "leaf3.up1", 3, 1, 4160, 0.0, "silent");
    ++n;
  }
  benchmark::DoNotOptimize(rec.total());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmit);

void BM_TracedIteration(benchmark::State& state) {
  // BM_TraceOffOverhead's scenario with the recorder live at level=events:
  // the delta is the full-system cost of always-on flight recording.
  std::uint64_t recorded_total = 0;
  for (auto _ : state) {
    exp::ScenarioConfig cfg = trace_bench_config();
    cfg.trace.level = obs::TraceLevel::kEvents;
    exp::Scenario s{cfg};
    const exp::ScenarioResult r = s.run();
    benchmark::DoNotOptimize(r.events);
    recorded_total += r.trace_events.size();
    state.counters["events"] = static_cast<double>(r.events);
  }
  state.counters["trace_events_recorded"] = static_cast<double>(recorded_total);
}
BENCHMARK(BM_TracedIteration)->Unit(benchmark::kMillisecond)->UseRealTime();

std::vector<obs::TraceEvent> bench_trace_window(std::size_t n) {
  obs::FlightRecorder rec{n};
  rec.set_level(obs::TraceLevel::kEvents);
  for (std::size_t i = 0; i < n; ++i) {
    const auto t = sim::Time::nanoseconds(static_cast<std::int64_t>(i * 337));
    switch (i % 4) {
      case 0:
        rec.emit(obs::EventKind::kPacketDrop, t, "spine1.down5", 4,
                 static_cast<std::uint32_t>(i % 8), 4160, 0.0, "silent");
        break;
      case 1:
        rec.emit(obs::EventKind::kPfcPause, t, "leaf3", static_cast<std::uint32_t>(i % 4), 0,
                 150000, 0.0, "xoff");
        break;
      case 2:
        rec.emit(obs::EventKind::kPfcResume, t, "leaf3", static_cast<std::uint32_t>(i % 4), 0,
                 90000, 0.0, "xon");
        break;
      default:
        rec.emit(obs::EventKind::kRtoFire, t, "", static_cast<std::uint32_t>(i % 32),
                 static_cast<std::uint32_t>(i), i, 0.0, "");
        break;
    }
  }
  return rec.snapshot();
}

void BM_ChromeExport(benchmark::State& state) {
  const auto window = bench_trace_window(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::chrome_trace_json(window));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChromeExport)->Arg(1 << 12);

void BM_TraceMetricsSummarize(benchmark::State& state) {
  // The counter/histogram registry reduction exp::report embeds.
  const auto window = bench_trace_window(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const obs::TraceMetrics m = obs::TraceMetrics::from_events(window);
    benchmark::DoNotOptimize(m.to_json());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceMetricsSummarize)->Arg(1 << 12);
#endif  // FP_TRACE_ENABLED

void BM_DetectorEvaluate(benchmark::State& state) {
  // The per-iteration cost: compare 16 ports against prediction.
  fp::PortLoadMap pred{32, 16};
  for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(16)) {
    pred.add(net::LeafId{5}, u, net::LeafId{4}, 1.0e6);
  }
  fp::Detector det{pred, 0.01};
  fp::IterationRecord rec;
  rec.leaf = net::LeafId{5};
  rec.iteration = net::IterIndex{1};
  rec.bytes.assign(16, 1.0e6);
  rec.by_src.assign(16, std::vector<double>(32, 0.0));
  for (auto& v : rec.by_src) v[4] = 1.0e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.evaluate(rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorEvaluate);

void BM_DaemonIngestCounters(benchmark::State& state) {
  // The flowpulsed hot path, sockets excluded: one COUNTERS frame through
  // the engine — decode, registration/ownership/dimension checks, streaming
  // detection, verdict fold, OK reply. The acceptance floor is 100k/s on
  // one core; this is the number record_perf.sh tracks.
  const net::TopologyInfo topo{32, 16, 1, 1};
  daemon::EngineConfig cfg;
  cfg.topo = topo;
  cfg.system.detector = fp::DetectorKind::kStreaming;
  daemon::DaemonEngine engine{cfg};
  daemon::Session session;

  daemon::Hello hello;
  hello.topo = topo;
  hello.first_leaf = net::LeafId{0};
  hello.leaf_count = topo.leaves;
  const auto hello_frame = daemon::encode_hello(hello);
  (void)engine.on_frame(session, {hello_frame.data() + 4, hello_frame.size() - 4});

  fp::PortLoadMap pred{topo.leaves, topo.uplinks_per_leaf()};
  for (std::uint32_t l = 0; l < topo.leaves; ++l) {
    for (std::uint32_t u = 0; u < topo.uplinks_per_leaf(); ++u) {
      pred.add(net::LeafId{l}, net::UplinkIndex{u}, net::LeafId{(l + 1) % topo.leaves}, 1.0e6);
    }
  }
  const auto pred_frame = daemon::encode_predict(pred);
  (void)engine.on_frame(session, {pred_frame.data() + 4, pred_frame.size() - 4});

  // Pre-encoded healthy frames (one per leaf × 8 iterations) so the loop
  // measures ingest, not encoding.
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint32_t it = 0; it < 8; ++it) {
    for (std::uint32_t l = 0; l < topo.leaves; ++l) {
      fp::IterationRecord rec;
      rec.leaf = net::LeafId{l};
      rec.iteration = net::IterIndex{it};
      rec.bytes.assign(topo.uplinks_per_leaf(), 1.0e6);
      rec.by_src.assign(topo.uplinks_per_leaf(), std::vector<double>(topo.leaves, 0.0));
      for (auto& v : rec.by_src) v[(l + 1) % topo.leaves] = 1.0e6;
      rec.packets = 64;
      frames.push_back(daemon::encode_counters(rec));
    }
  }

  std::size_t i = 0;
  for (auto _ : state) {
    const auto& frame = frames[i];
    i = (i + 1) % frames.size();
    const daemon::EngineReply reply =
        engine.on_frame(session, {frame.data() + 4, frame.size() - 4});
    benchmark::DoNotOptimize(reply.bytes.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["ingest/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DaemonIngestCounters);

}  // namespace

BENCHMARK_MAIN();
