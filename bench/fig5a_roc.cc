// FIG5A — "Residual Operating Curve (ROC) for different packet drop rates
// on a faulty link. A 1% threshold is a perfect classifier for drop rates
// >= 1.5%."
//
// For each injected drop rate we run seeded trials of the 31-stage ring on
// the 32x16 fabric and sweep the detection threshold over the recorded
// per-iteration deviations, reporting FPR (from clean trials) and FNR (from
// faulty trials) per (threshold, drop-rate) point.
//
// Statistics note (see EXPERIMENTS.md): detection sharpness is governed by
// the number of collective packets crossing the faulty port per iteration.
// The paper's production-sized collectives (100s of MB-GBs) make the 1.5%
// crossover exact; at this bench's default 32 MiB the same shape appears
// with softer edges; FLOWPULSE_SCALE=8 reproduces the hard crossover.
#include "bench_common.h"

using namespace flowpulse;

int main() {
  bench::print_header(
      "FIG5A: ROC — detection threshold sweep x faulty-link drop rate",
      "Paper Fig. 5(a): 1% threshold perfectly classifies drop rates >= 1.5%.");

  const std::uint32_t trials = exp::env_trials(3);
  const std::vector<double> drop_rates{0.005, 0.008, 0.010, 0.015, 0.020, 0.030};
  const std::vector<double> thresholds{0.0005, 0.001,  0.0025, 0.005,
                                       0.0075, 0.010,  0.015,  0.020};

  const exp::ScenarioConfig base = bench::paper_setup();

  // Clean trials give the FPR column (shared across drop rates).
  const std::vector<exp::TrialSamples> clean = bench::run_trials(base, trials);
  std::cout << "clean-trial noise floor: " << exp::pct(exp::noise_floor(clean)) << "  ("
            << trials << " trials x " << base.iterations << " iterations)\n\n";

  exp::Table table({"threshold", "FPR"});
  std::vector<std::vector<exp::TrialSamples>> faulty;
  std::vector<std::string> headers{"threshold", "FPR"};
  for (const double rate : drop_rates) {
    headers.push_back("FNR@drop " + exp::pct(rate, 1));
    exp::ScenarioConfig cfg = base;
    cfg.seed = base.seed + 1000 + static_cast<std::uint64_t>(rate * 1e5);
    cfg.new_faults.push_back(bench::silent_drop(rate));
    faulty.push_back(bench::run_trials(cfg, trials));
  }

  exp::Table roc{headers};
  for (const double th : thresholds) {
    std::vector<std::string> row{exp::pct(th, 2), exp::pct(exp::classify(clean, th).fpr())};
    for (const auto& samples : faulty) {
      row.push_back(exp::pct(exp::classify(samples, th).fnr()));
    }
    roc.row(std::move(row));
  }
  roc.print();

  std::cout << "\nShape check vs paper: FPR rises only once the threshold drops into the\n"
               "spray-quantization noise floor; FNR falls with drop rate, with drop rates\n"
               ">= ~1.5x the threshold reliably detected and < threshold undetectable.\n";
  return 0;
}
