// FIG5C — "FPR/FNR for different collective sizes with different faulty
// link drop rates. Smaller collectives are more noisy."
//
// The per-port detection statistic is a packet count; its relative
// sampling noise shrinks as the collective grows. We sweep collective size
// x drop rate and report FNR at the 1% threshold plus the clean FPR per
// size. The paper's takeaway — production-sized collectives (GBs) are far
// beyond what FlowPulse needs — appears here as FNR -> 0 with size.
#include "bench_common.h"

using namespace flowpulse;

int main() {
  bench::print_header("FIG5C: FPR/FNR vs collective size x drop rate",
                      "Paper Fig. 5(c): smaller collectives are noisier; large ones exact.");

  const std::uint32_t trials = exp::env_trials(2);
  const std::vector<std::uint64_t> sizes{4'000'000, 12'000'000, 24'000'000, 48'000'000,
                                         96'000'000};
  const std::vector<double> drops{0.010, 0.015, 0.025};

  std::vector<std::string> headers{"collective", "pkts/port/iter", "noise floor", "FPR@1%"};
  for (const double d : drops) headers.push_back("FNR@drop " + exp::pct(d, 1));

  exp::Table table{headers};
  for (const std::uint64_t size : sizes) {
    exp::ScenarioConfig cfg = bench::paper_setup(size);

    const std::vector<exp::TrialSamples> clean = bench::run_trials(cfg, trials);
    // Per-port packets per iteration: the ring delivers ~B bytes into each
    // leaf, spread over 16 ports of 4 KiB segments.
    const std::uint64_t pkts = cfg.collective_bytes.v() * 31 / 32 / 16 / 4096;

    std::vector<std::string> row{std::to_string(cfg.collective_bytes.v() / 1000000) + " MB",
                                 std::to_string(pkts),
                                 exp::pct(exp::noise_floor(clean)),
                                 exp::pct(exp::classify(clean, 0.01).fpr())};
    for (const double d : drops) {
      exp::ScenarioConfig faulty_cfg = cfg;
      faulty_cfg.seed = cfg.seed + static_cast<std::uint64_t>(d * 1e4);
      faulty_cfg.new_faults.push_back(bench::silent_drop(d));
      const std::vector<exp::TrialSamples> faulty = bench::run_trials(faulty_cfg, trials);
      row.push_back(exp::pct(exp::classify(faulty, 0.01).fnr()));
    }
    table.row(std::move(row));
  }
  table.print();

  std::cout << "\nShape check vs paper: small collectives are noisy — the 4 MB noise floor\n"
               "sits ABOVE the 1% threshold (false positives), and FNR for above-threshold\n"
               "rates falls with size (2.5% caught everywhere, 1.5% reliably from ~24 MB).\n"
               "At the exactly-at-threshold rate (1.0% drop -> deviation p(1-1/s) ~ 0.94%)\n"
               "detections are noise-assisted: larger collectives sharpen the classifier in\n"
               "BOTH directions, so sub-threshold rates converge to 'not detected' — the\n"
               "flip side of the paper's Fig. 5(c) monotonicity claim.\n";
  return 0;
}
