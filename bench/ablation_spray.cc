// ABL-SPRAY — design ablation (DESIGN.md decision 1): how the spraying
// policy shapes FlowPulse's signal.
//
//  * kAdaptive (least-loaded + per-destination round-robin ties) — the
//    paper's APS: near-deterministic balance, tiny noise floor.
//  * kRandom (uniform per-packet) — still symmetric in expectation but
//    adds multinomial sampling noise, inflating the noise floor and FNR.
//  * kFlowlet (Let-It-Flow-style) — flows re-route only at idle gaps; a
//    single long collective flow rarely pauses, so it behaves close to
//    ECMP for this workload.
//  * kEcmp (per-flow hash) — the classical datacenter baseline the paper
//    contrasts with: a flow pins to one path, so per-port loads are wildly
//    uneven and temporal-symmetry monitoring needs the learned baseline.
#include "bench_common.h"

using namespace flowpulse;

int main() {
  bench::print_header("ABL-SPRAY: spray policy vs detection quality",
                      "Ablation of the APS assumption (paper §2, §4).");

  const std::uint32_t trials = exp::env_trials(2);
  const double drop = 0.015;

  exp::Table table({"policy", "noise floor", "FPR@1%", "FNR@1% (1.5% drop)",
                    "FNR@cal (2x floor)"});
  struct Policy {
    net::SprayPolicy policy;
    const char* name;
  };
  for (const Policy& p : {Policy{net::SprayPolicy::kAdaptive, "adaptive APS"},
                          Policy{net::SprayPolicy::kRandom, "random spray"},
                          Policy{net::SprayPolicy::kFlowlet, "flowlet switching"},
                          Policy{net::SprayPolicy::kEcmp, "ECMP (per-flow)"}}) {
    exp::ScenarioConfig cfg = bench::paper_setup(24'000'000);
    cfg.fabric.spray = p.policy;

    const std::vector<exp::TrialSamples> clean = bench::run_trials(cfg, trials);
    const double floor = exp::noise_floor(clean);

    exp::ScenarioConfig faulty_cfg = cfg;
    faulty_cfg.new_faults.push_back(bench::silent_drop(drop));
    const std::vector<exp::TrialSamples> faulty = bench::run_trials(faulty_cfg, trials);

    table.row({p.name, exp::pct(floor), exp::pct(exp::classify(clean, 0.01).fpr()),
               exp::pct(exp::classify(faulty, 0.01).fnr()),
               exp::pct(exp::classify(faulty, 2.0 * floor).fnr())});
  }
  table.print();

  std::cout << "\nTakeaway: adaptive APS gives a sub-1% noise floor that makes the paper's\n"
               "1% threshold workable; random spray needs larger collectives for the same\n"
               "accuracy; ECMP breaks the even-split model entirely (its 'noise floor' is\n"
               "really model mismatch), confirming why FlowPulse targets APS fabrics.\n";
  return 0;
}
