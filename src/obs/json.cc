#include "obs/json.h"

#include <cstdio>

namespace flowpulse::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

std::string json_quote(std::string_view s) { return '"' + json_escape(s) + '"'; }

}  // namespace flowpulse::obs
