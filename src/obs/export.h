#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace flowpulse::obs {

/// Render events as a Chrome Trace Event Format JSON object — load the
/// file via chrome://tracing (or ui.perfetto.dev). Instant events render
/// as markers on one track per entity; PFC pause/resume pairs render as
/// duration slices, so a stuck pause is visually a bar that never ends.
/// Timestamps are microseconds of simulated time.
[[nodiscard]] std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Render events as a compact fixed-width text timeline (one line per
/// event, chronological) — the format flight-recorder dumps print to
/// stderr on audit failure.
[[nodiscard]] std::string text_timeline(const std::vector<TraceEvent>& events);

/// Entity label for an event: the recorded name when present, otherwise a
/// stable synthesized one ("leaf3.up1", "host4", "sim") from the indices.
[[nodiscard]] std::string entity_label(const TraceEvent& e);

}  // namespace flowpulse::obs
