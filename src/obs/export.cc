#include "obs/export.h"

#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>
#include <tuple>

#include "obs/json.h"

namespace flowpulse::obs {
namespace {

const char* category_of(EventKind k) {
  switch (k) {
    case EventKind::kPacketDrop:
    case EventKind::kPfcPause:
    case EventKind::kPfcResume:
      return "net";
    case EventKind::kRtoFire:
      return "transport";
    case EventKind::kDetectorFlag:
    case EventKind::kLocalization:
    case EventKind::kIteration:
      return "flowpulse";
    case EventKind::kMitigation:
      return "ctrl";
    case EventKind::kRunStart:
    case EventKind::kRunStop:
    case EventKind::kFidelity:
      return "sim";
  }
  return "obs";
}

void append_args(std::ostringstream& os, const TraceEvent& e) {
  os << "\"args\":{\"a\":" << e.a << ",\"b\":" << e.b << ",\"value\":" << e.value;
  if (e.dval != 0.0) {
    // JSON has no inf/nan literals; a detector flag on a predicted-silent
    // port carries dval = +inf. Quote non-finite values instead.
    os << ",\"dval\":";
    if (std::isfinite(e.dval)) {
      os << e.dval;
    } else {
      os << json_quote(e.dval > 0.0 ? "inf" : e.dval < 0.0 ? "-inf" : "nan");
    }
  }
  if (e.detail[0] != '\0') os << ",\"detail\":" << json_quote(e.detail);
  os << '}';
}

}  // namespace

std::string entity_label(const TraceEvent& e) {
  if (e.entity[0] != '\0') return std::string{e.entity};
  std::ostringstream os;
  switch (e.kind) {
    case EventKind::kRtoFire:
      os << "host" << e.a;
      break;
    case EventKind::kDetectorFlag:
    case EventKind::kLocalization:
    case EventKind::kMitigation:
      os << "leaf" << e.a << ".up" << e.b;
      break;
    case EventKind::kIteration:
      os << "leaf" << e.a;
      break;
    case EventKind::kRunStart:
    case EventKind::kRunStop:
    case EventKind::kFidelity:
      os << "sim";
      break;
    default:
      os << "e" << e.a << "." << e.b;
      break;
  }
  return os.str();
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << std::setprecision(15);

  // Stable track ids: one tid per entity label, in lexicographic order.
  std::map<std::string, int> tids;
  for (const TraceEvent& e : events) tids.emplace(entity_label(e), 0);
  int next_tid = 1;
  for (auto& [label, tid] : tids) tid = next_tid++;

  // Pair each PFC pause with the next resume on the same (entity, port,
  // class); an unpaired pause stretches to the end of the window — in the
  // viewer a pause that never resumed is a slice that never closes.
  core::Time window_end = core::Time::zero();
  for (const TraceEvent& e : events) {
    if (e.time > window_end) window_end = e.time;
  }
  std::map<std::tuple<std::string, std::uint32_t, std::uint32_t>, std::size_t> open_pause;
  std::vector<core::Time> pause_end(events.size(), core::Time::zero());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const auto key = std::make_tuple(entity_label(e), e.a, e.b);
    if (e.kind == EventKind::kPfcPause) {
      pause_end[i] = window_end;  // until proven resumed
      open_pause[key] = i;
    } else if (e.kind == EventKind::kPfcResume) {
      const auto it = open_pause.find(key);
      if (it != open_pause.end()) {
        pause_end[it->second] = e.time;
        open_pause.erase(it);
      }
    }
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const auto& [label, tid] : tids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":" << json_quote(label) << "}}";
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.kind == EventKind::kPfcResume) continue;  // folded into its pause
    const std::string label = entity_label(e);
    sep();
    os << "{\"name\":" << json_quote(event_kind_name(e.kind))
       << ",\"cat\":" << json_quote(category_of(e.kind)) << ",\"pid\":0,\"tid\":"
       << tids[label] << ",\"ts\":" << e.time.us() << ',';
    if (e.kind == EventKind::kPfcPause) {
      const double dur = (pause_end[i] - e.time).us();
      os << "\"ph\":\"X\",\"dur\":" << (dur < 0.0 ? 0.0 : dur) << ',';
    } else {
      os << "\"ph\":\"i\",\"s\":\"t\",";
    }
    append_args(os, e);
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string text_timeline(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  for (const TraceEvent& e : events) {
    os << std::setw(14) << e.time.us() << "us  " << std::left << std::setw(16)
       << entity_label(e) << ' ' << std::setw(14) << event_kind_name(e.kind) << std::right
       << " a=" << e.a << " b=" << e.b << " value=" << e.value;
    if (e.dval != 0.0) os << " dval=" << e.dval;
    if (e.detail[0] != '\0') os << ' ' << e.detail;
    os << '\n';
  }
  return os.str();
}

}  // namespace flowpulse::obs
