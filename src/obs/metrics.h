#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace flowpulse::obs {

/// Fixed-bucket log2 histogram over non-negative doubles. Bucket i holds
/// values in [2^(i-1), 2^i) (bucket 0 holds [0, 1)); values beyond the
/// last bucket clamp into it. Deterministic, allocation-free adds.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void add(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }
  /// Smallest bucket upper bound below which at least `q` (0..1] of the
  /// recorded values fall — a coarse quantile for operator tables.
  [[nodiscard]] double quantile_bound(double q) const;

  /// {"count":N,"min":..,"mean":..,"max":..,"p99":..}
  [[nodiscard]] std::string to_json() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// The counter/histogram registry a trace window reduces to: event-kind
/// counters plus the distributions a fabric operator actually graphs.
/// Built by replaying recorded events, so the hot path pays only the trace
/// emission itself and a disabled build pays nothing.
struct TraceMetrics {
  std::array<std::uint64_t, kNumEventKinds> by_kind{};

  Histogram drop_bytes;           ///< size of packets lost to faults
  Histogram pause_us;             ///< PFC pause durations (pause→resume)
  Histogram queue_bytes_at_pause; ///< ingress occupancy when XOFF tripped
  Histogram detector_rel_dev;     ///< deviation of flagged ports
  std::uint64_t retransmits = 0;  ///< RTO firings (kRtoFire)

  [[nodiscard]] std::uint64_t count(EventKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }

  /// Replay a chronological event window into a registry.
  [[nodiscard]] static TraceMetrics from_events(const std::vector<TraceEvent>& events);

  /// One JSON object (counters + histogram summaries), for exp::report.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace flowpulse::obs
