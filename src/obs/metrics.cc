#include "obs/metrics.h"

#include <cmath>
#include <map>
#include <sstream>
#include <tuple>

#include "obs/export.h"

namespace flowpulse::obs {

void Histogram::add(double v) {
  // The registry must swallow anything the trace carries: detector rel_dev
  // is +inf for a port predicted silent but carrying traffic, and
  // ilogb(inf) == INT_MAX would index far outside buckets_. Clamp into the
  // last bucket's floor, which also keeps the running sum (and the JSON
  // summary) finite.
  if (std::isnan(v) || v < 0.0) v = 0.0;
  const double ceiling = std::ldexp(1.0, kBuckets - 2);
  if (v >= ceiling) v = ceiling;
  int b = 0;
  if (v >= 1.0) b = std::ilogb(v) + 1;
  ++buckets_[static_cast<std::size_t>(b)];
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  sum_ += v;
  ++count_;
}

double Histogram::quantile_bound(double q) const {
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= target) {
      return i == 0 ? 1.0 : std::ldexp(1.0, i);
    }
  }
  return max_;
}

std::string Histogram::to_json() const {
  std::ostringstream os;
  os << "{\"count\":" << count_ << ",\"min\":" << min() << ",\"mean\":" << mean()
     << ",\"max\":" << max_ << ",\"p99\":" << quantile_bound(0.99) << "}";
  return os.str();
}

TraceMetrics TraceMetrics::from_events(const std::vector<TraceEvent>& events) {
  TraceMetrics m;
  // Open PFC pauses by (entity, port, class); see chrome_trace_json pairing.
  std::map<std::tuple<std::string, std::uint32_t, std::uint32_t>, core::Time> open_pause;
  for (const TraceEvent& e : events) {
    ++m.by_kind[static_cast<std::size_t>(e.kind)];
    switch (e.kind) {
      case EventKind::kPacketDrop:
        m.drop_bytes.add(static_cast<double>(e.value));
        break;
      case EventKind::kPfcPause:
        m.queue_bytes_at_pause.add(static_cast<double>(e.value));
        open_pause[std::make_tuple(entity_label(e), e.a, e.b)] = e.time;
        break;
      case EventKind::kPfcResume: {
        const auto it = open_pause.find(std::make_tuple(entity_label(e), e.a, e.b));
        if (it != open_pause.end()) {
          m.pause_us.add((e.time - it->second).us());
          open_pause.erase(it);
        }
        break;
      }
      case EventKind::kRtoFire:
        ++m.retransmits;
        break;
      case EventKind::kDetectorFlag:
        m.detector_rel_dev.add(e.dval);
        break;
      default:
        break;
    }
  }
  return m;
}

std::string TraceMetrics::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (int k = 0; k < kNumEventKinds; ++k) {
    if (k) os << ',';
    os << '"' << event_kind_name(static_cast<EventKind>(k))
       << "\":" << by_kind[static_cast<std::size_t>(k)];
  }
  os << "},\"retransmits\":" << retransmits
     << ",\"drop_bytes\":" << drop_bytes.to_json()
     << ",\"pause_us\":" << pause_us.to_json()
     << ",\"queue_bytes_at_pause\":" << queue_bytes_at_pause.to_json()
     << ",\"detector_rel_dev\":" << detector_rel_dev.to_json() << "}";
  return os.str();
}

}  // namespace flowpulse::obs
