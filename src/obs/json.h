#pragma once

#include <string>
#include <string_view>

namespace flowpulse::obs {

/// Escape `s` for inclusion inside a JSON string literal (RFC 8259):
/// quotes and backslashes are backslash-escaped, control characters become
/// \n \t \r \b \f or \u00XX. Every hand-rolled JSON emitter in this repo
/// (exp::report, the chrome-trace exporter) must route free-form strings —
/// event reasons, entity names, details — through this; only fixed enum
/// names and numbers may be written raw.
[[nodiscard]] std::string json_escape(std::string_view s);

/// `"` + json_escape(s) + `"` — the common whole-literal case.
[[nodiscard]] std::string json_quote(std::string_view s);

}  // namespace flowpulse::obs
