#pragma once

// Flight-recorder tracing (compile-time gated, runtime leveled).
//
// Configure with -DFLOWPULSE_TRACE=ON (the audit leg of
// tests/run_sanitized.sh builds with it) to compile typed, timestamped
// trace events into every runtime layer: packet drops, PFC pause/resume,
// RTO firings, detector flags, localization verdicts, and mitigation
// actions. In the default build the FP_TRACE macro expands to nothing —
// its arguments are discarded by the preprocessor, so hot paths reference
// no obs symbols and carry zero cost (asserted by the
// trace_zero_cost_symbols test).
//
// In a trace-enabled build, events flow into the sim::Simulator's
// installed obs::TraceSink. The stock sink is obs::FlightRecorder, a
// bounded ring buffer per simulation: cheap enough to leave always on,
// and when something goes wrong (a detector flag, a mitigation action, an
// audit invariant failure) the last N events are the causal window that
// explains it. exp::Scenario wires one up automatically when the runtime
// level is set (ScenarioConfig.trace or the FLOWPULSE_TRACE env var) and
// snapshots it on every flagged iteration. Exporters in obs/export.h
// render snapshots as chrome://tracing JSON or a text timeline.
//
// Everything in this header is header-only on purpose: instrumented
// layers (net, transport, flowpulse, ctrl) gain no link dependency.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/thread_safety.h"
#include "sim/time.h"

#if defined(FLOWPULSE_TRACE) && FLOWPULSE_TRACE
#define FP_TRACE_ENABLED 1
#else
#define FP_TRACE_ENABLED 0
#endif

namespace flowpulse::obs {

/// Runtime verbosity. kOff keeps even a trace-enabled build silent (the
/// emit path is one pointer test); kEvents records the failure-relevant
/// event kinds; kVerbose adds per-iteration and run-lifecycle markers.
enum class TraceLevel : std::uint8_t {
  kOff = 0,
  kEvents = 1,
  kVerbose = 2,
};

/// Typed trace events. One enumerator per cause the flight recorder can
/// explain; exporters key their naming and pairing rules off this.
enum class EventKind : std::uint8_t {
  kPacketDrop = 0,    ///< net: fault model ate a serialized packet
  kPfcPause = 1,      ///< net: ingress class crossed XOFF, upstream paused
  kPfcResume = 2,     ///< net: ingress class drained below XON
  kRtoFire = 3,       ///< transport: retransmission timer fired
  kDetectorFlag = 4,  ///< flowpulse: port deviation beyond threshold
  kLocalization = 5,  ///< flowpulse: verdict attached to a flagged port
  kMitigation = 6,    ///< ctrl: quarantine / restore / confirm action
  kIteration = 7,     ///< flowpulse: monitor finalized an iteration
  kRunStart = 8,      ///< sim: event loop entered
  kRunStop = 9,       ///< sim: event loop drained / stopped
  kFidelity = 10,     ///< sim: hybrid engine switched fidelity mode
};
constexpr int kNumEventKinds = 11;

/// Verbosity tier an event kind belongs to.
[[nodiscard]] constexpr TraceLevel level_of(EventKind k) {
  switch (k) {
    case EventKind::kIteration:
    case EventKind::kRunStart:
    case EventKind::kRunStop:
      return TraceLevel::kVerbose;
    default:
      return TraceLevel::kEvents;
  }
}

/// Stable lowercase name for exporters and tests.
[[nodiscard]] constexpr const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kPacketDrop:
      return "drop";
    case EventKind::kPfcPause:
      return "pfc_pause";
    case EventKind::kPfcResume:
      return "pfc_resume";
    case EventKind::kRtoFire:
      return "rto";
    case EventKind::kDetectorFlag:
      return "detector_flag";
    case EventKind::kLocalization:
      return "localization";
    case EventKind::kMitigation:
      return "mitigation";
    case EventKind::kIteration:
      return "iteration";
    case EventKind::kRunStart:
      return "run_start";
    case EventKind::kRunStop:
      return "run_stop";
    case EventKind::kFidelity:
      return "fidelity";
  }
  return "unknown";
}

/// One recorded event. Fixed-size POD — recording is a bounded copy into a
/// preallocated ring slot, never an allocation. The per-kind meaning of the
/// generic fields (the event taxonomy) is documented in DESIGN.md
/// "Observability"; `detail` must point at a string with static storage
/// duration (all call sites pass literals or enum-name tables).
struct TraceEvent {
  sim::Time time = sim::Time::zero();
  EventKind kind = EventKind::kPacketDrop;
  std::uint32_t a = 0;       ///< first entity index (leaf / host / in-port)
  std::uint32_t b = 0;       ///< second entity index (uplink / seq / class)
  std::uint64_t value = 0;   ///< bytes / msg id / iteration
  double dval = 0.0;         ///< deviation or other real-valued payload
  const char* detail = "";   ///< static string: reason / verdict / label
  char entity[24] = {};      ///< optional emitter name, bounded copy
};

/// Destination of emitted events. Implementations must make emit() cheap:
/// it sits on simulator hot paths whenever tracing is runtime-enabled.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Level filter, checked by FP_TRACE before building the event.
  [[nodiscard]] bool wants(EventKind k) const { return level_of(k) <= level_; }

  [[nodiscard]] TraceLevel level() const { return level_; }
  void set_level(TraceLevel level) { level_ = level; }

  void emit(EventKind kind, sim::Time t, const char* entity, std::uint32_t a,
            std::uint32_t b, std::uint64_t value, double dval, const char* detail) {
    TraceEvent e;
    e.time = t;
    e.kind = kind;
    e.a = a;
    e.b = b;
    e.value = value;
    e.dval = dval;
    e.detail = detail;
    for (std::size_t i = 0; i + 1 < sizeof(e.entity) && entity[i] != '\0'; ++i) {
      e.entity[i] = entity[i];
    }
    record(e);
  }

 protected:
  virtual void record(const TraceEvent& e) = 0;

 private:
  TraceLevel level_ = TraceLevel::kOff;
};

/// The bounded in-memory flight recorder: a ring buffer of the last
/// `capacity` events. Overflow silently overwrites the oldest event but is
/// observable (dropped()); recording never allocates after construction.
/// One per simulation — parallel trials each own theirs, so recording
/// stays as deterministic as the simulation feeding it.
class FlightRecorder final : public TraceSink {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Events ever emitted at an admitted level (recorded or overwritten).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Events lost to ring wrap-around.
  [[nodiscard]] std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::size_t size() const {
    return total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
  }

  /// Chronological copy of the retained window (oldest first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    const std::size_t start = total_ > ring_.size()
                                  ? static_cast<std::size_t>(total_ % ring_.size())
                                  : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  void clear() { total_ = 0; }

 protected:
  void record(const TraceEvent& e) override {
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = e;
    ++total_;
  }

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;
};

/// The cross-thread sink: a mutex-guarded ring for the cases where several
/// threads must legitimately share ONE recorder — today a harness watching
/// every worker of a parallel trial sweep, tomorrow the independently-
/// clocked event lanes of the sharded core (ROADMAP item 1). Sink
/// *registration* stays single-owner (install on a sim::Simulator before
/// its run starts, per set_trace()'s contract); what this class serializes
/// is emission. The per-simulation default is still FlightRecorder: one
/// lane, no lock, deterministic order. A shared ring is ordered by lock
/// acquisition, so only its counters — not its interleaving — are
/// deterministic; anything that feeds results must keep using per-lane
/// recorders. All shared state is FP_GUARDED_BY(mu_), so an unlocked
/// fast-path "optimization" is a compile error under -Werror=thread-safety.
class ConcurrentRecorder final : public TraceSink {
 public:
  explicit ConcurrentRecorder(std::size_t capacity = FlightRecorder::kDefaultCapacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  /// Events ever emitted at an admitted level (recorded or overwritten).
  [[nodiscard]] std::uint64_t total() const {
    const core::LockGuard lock{mu_};
    return total_;
  }
  [[nodiscard]] std::uint64_t dropped() const {
    const core::LockGuard lock{mu_};
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const {
    const core::LockGuard lock{mu_};
    return ring_.size();
  }

  /// Chronological-by-admission copy of the retained window (oldest first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    const core::LockGuard lock{mu_};
    const std::size_t n =
        total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
    const std::size_t start =
        total_ > ring_.size() ? static_cast<std::size_t>(total_ % ring_.size()) : 0;
    std::vector<TraceEvent> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
  }

  void clear() {
    const core::LockGuard lock{mu_};
    total_ = 0;
  }

 protected:
  void record(const TraceEvent& e) override {
    const core::LockGuard lock{mu_};
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = e;
    ++total_;
  }

 private:
  mutable core::Mutex mu_;
  std::vector<TraceEvent> ring_ FP_GUARDED_BY(mu_);
  std::uint64_t total_ FP_GUARDED_BY(mu_) = 0;
};

/// One automatic flight-recorder dump: the retained event window at the
/// moment something was flagged, plus why it was taken.
struct TraceDump {
  std::string reason;            ///< e.g. "detector-flag leaf3 iter2"
  sim::Time at = sim::Time::zero();
  std::uint32_t iteration = 0;
  std::uint64_t dropped = 0;     ///< ring overflow before the snapshot
  std::vector<TraceEvent> events;
};

/// Scenario-level tracing knobs (honored only in trace-enabled builds).
struct TraceConfig {
  /// kOff defers to the FLOWPULSE_TRACE environment variable (env_level()).
  TraceLevel level = TraceLevel::kOff;
  std::size_t capacity = FlightRecorder::kDefaultCapacity;
  bool dump_on_alert = true;   ///< snapshot on flagged / mitigated iterations
  std::uint32_t max_dumps = 8; ///< cap on automatic snapshots per run
};

/// Runtime opt-in for trace-enabled builds: FLOWPULSE_TRACE=1|on|events →
/// kEvents, 2|verbose → kVerbose, anything else → kOff.
[[nodiscard]] inline TraceLevel env_level() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup, before
  // any worker thread exists; nothing in the process calls setenv
  const char* s = std::getenv("FLOWPULSE_TRACE");
  if (s == nullptr) return TraceLevel::kOff;
  const std::string v{s};
  if (v == "1" || v == "on" || v == "events") return TraceLevel::kEvents;
  if (v == "2" || v == "verbose") return TraceLevel::kVerbose;
  return TraceLevel::kOff;
}

}  // namespace flowpulse::obs

// FP_TRACE(sim, kind, entity, a, b, value, dval, detail)
//
// `sim` is a sim::Simulator (or anything with trace()/now()); `kind` is a
// bare obs::EventKind enumerator name. In the default build the macro —
// arguments included — vanishes at preprocessing time, so disabled call
// sites cost nothing and pull in no obs symbols. In a trace-enabled build
// the cost is one pointer test when no sink is installed, plus a level
// check when one is.
#if FP_TRACE_ENABLED
#define FP_TRACE(sim_, kind_, entity_, a_, b_, value_, dval_, detail_)              \
  do {                                                                              \
    ::flowpulse::obs::TraceSink* fp_trace_sink_ = (sim_).trace();                   \
    if (fp_trace_sink_ != nullptr &&                                                \
        fp_trace_sink_->wants(::flowpulse::obs::EventKind::kind_)) {                \
      fp_trace_sink_->emit(::flowpulse::obs::EventKind::kind_, (sim_).now(),        \
                           (entity_), (a_), (b_), (value_), (dval_), (detail_));    \
    }                                                                               \
  } while (0)
#else
#define FP_TRACE(...) ((void)0)
#endif
