#pragma once

// Flight-recorder tracing (compile-time gated, runtime leveled).
//
// Configure with -DFLOWPULSE_TRACE=ON (the audit leg of
// tests/run_sanitized.sh builds with it) to compile typed, timestamped
// trace events into every runtime layer: packet drops, PFC pause/resume,
// RTO firings, detector flags, localization verdicts, and mitigation
// actions. In the default build the FP_TRACE macro expands to nothing —
// its arguments are discarded by the preprocessor, so hot paths reference
// no obs symbols and carry zero cost (asserted by the
// trace_zero_cost_symbols test).
//
// The instrumentation core — TraceLevel/EventKind taxonomy, TraceEvent,
// the TraceSink interface, and the FP_TRACE macro itself — lives in
// core/trace.h so that sim (whose event lanes carry the sink pointer) can
// depend on it without inverting the module DAG. This header re-exports
// those names under obs:: and adds what only the observability layer
// needs: the recorders, dump/config types, and env plumbing.
//
// In a trace-enabled build, events flow into the sim::Simulator's
// installed TraceSink. The stock sink is obs::FlightRecorder, a
// bounded ring buffer per simulation: cheap enough to leave always on,
// and when something goes wrong (a detector flag, a mitigation action, an
// audit invariant failure) the last N events are the causal window that
// explains it. exp::Scenario wires one up automatically when the runtime
// level is set (ScenarioConfig.trace or the FLOWPULSE_TRACE env var) and
// snapshots it on every flagged iteration. Exporters in obs/export.h
// render snapshots as chrome://tracing JSON or a text timeline.
//
// Everything in this header is header-only on purpose: instrumented
// layers (net, transport, flowpulse, ctrl) gain no link dependency.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/thread_safety.h"
#include "core/trace.h"

namespace flowpulse::obs {

// Historical spellings: the taxonomy and sink interface moved to
// core/trace.h; every existing obs::X use keeps compiling.
using core::EventKind;
using core::event_kind_name;
using core::kNumEventKinds;
using core::level_of;
using core::TraceEvent;
using core::TraceLevel;
using core::TraceSink;

/// The bounded in-memory flight recorder: a ring buffer of the last
/// `capacity` events. Overflow silently overwrites the oldest event but is
/// observable (dropped()); recording never allocates after construction.
/// One per simulation — parallel trials each own theirs, so recording
/// stays as deterministic as the simulation feeding it.
class FlightRecorder final : public TraceSink {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Events ever emitted at an admitted level (recorded or overwritten).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Events lost to ring wrap-around.
  [[nodiscard]] std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::size_t size() const {
    return total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
  }

  /// Chronological copy of the retained window (oldest first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    const std::size_t start = total_ > ring_.size()
                                  ? static_cast<std::size_t>(total_ % ring_.size())
                                  : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  void clear() { total_ = 0; }

 protected:
  void record(const TraceEvent& e) override {
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = e;
    ++total_;
  }

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;
};

/// The cross-thread sink: a mutex-guarded ring for the cases where several
/// threads must legitimately share ONE recorder — today a harness watching
/// every worker of a parallel trial sweep, tomorrow the independently-
/// clocked event lanes of the sharded core (ROADMAP item 1). Sink
/// *registration* stays single-owner (install on a sim::Simulator before
/// its run starts, per set_trace()'s contract); what this class serializes
/// is emission. The per-simulation default is still FlightRecorder: one
/// lane, no lock, deterministic order. A shared ring is ordered by lock
/// acquisition, so only its counters — not its interleaving — are
/// deterministic; anything that feeds results must keep using per-lane
/// recorders. All shared state is FP_GUARDED_BY(mu_), so an unlocked
/// fast-path "optimization" is a compile error under -Werror=thread-safety.
class ConcurrentRecorder final : public TraceSink {
 public:
  explicit ConcurrentRecorder(std::size_t capacity = FlightRecorder::kDefaultCapacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  /// Events ever emitted at an admitted level (recorded or overwritten).
  [[nodiscard]] std::uint64_t total() const {
    const core::LockGuard lock{mu_};
    return total_;
  }
  [[nodiscard]] std::uint64_t dropped() const {
    const core::LockGuard lock{mu_};
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const {
    const core::LockGuard lock{mu_};
    return ring_.size();
  }

  /// Chronological-by-admission copy of the retained window (oldest first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    const core::LockGuard lock{mu_};
    const std::size_t n =
        total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
    const std::size_t start =
        total_ > ring_.size() ? static_cast<std::size_t>(total_ % ring_.size()) : 0;
    std::vector<TraceEvent> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
  }

  void clear() {
    const core::LockGuard lock{mu_};
    total_ = 0;
  }

 protected:
  void record(const TraceEvent& e) override {
    const core::LockGuard lock{mu_};
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = e;
    ++total_;
  }

 private:
  mutable core::Mutex mu_;
  std::vector<TraceEvent> ring_ FP_GUARDED_BY(mu_);
  std::uint64_t total_ FP_GUARDED_BY(mu_) = 0;
};

/// One automatic flight-recorder dump: the retained event window at the
/// moment something was flagged, plus why it was taken.
struct TraceDump {
  std::string reason;            ///< e.g. "detector-flag leaf3 iter2"
  core::Time at = core::Time::zero();
  std::uint32_t iteration = 0;
  std::uint64_t dropped = 0;     ///< ring overflow before the snapshot
  std::vector<TraceEvent> events;
};

/// Scenario-level tracing knobs (honored only in trace-enabled builds).
struct TraceConfig {
  /// kOff defers to the FLOWPULSE_TRACE environment variable (env_level()).
  TraceLevel level = TraceLevel::kOff;
  std::size_t capacity = FlightRecorder::kDefaultCapacity;
  bool dump_on_alert = true;   ///< snapshot on flagged / mitigated iterations
  std::uint32_t max_dumps = 8; ///< cap on automatic snapshots per run
};

/// Runtime opt-in for trace-enabled builds: FLOWPULSE_TRACE=1|on|events →
/// kEvents, 2|verbose → kVerbose, anything else → kOff.
[[nodiscard]] inline TraceLevel env_level() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup, before
  // any worker thread exists; nothing in the process calls setenv
  const char* s = std::getenv("FLOWPULSE_TRACE");
  if (s == nullptr) return TraceLevel::kOff;
  const std::string v{s};
  if (v == "1" || v == "on" || v == "events") return TraceLevel::kEvents;
  if (v == "2" || v == "verbose") return TraceLevel::kVerbose;
  return TraceLevel::kOff;
}

}  // namespace flowpulse::obs
