#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/units.h"
#include "net/host.h"
#include "net/packet.h"
#include "net/types.h"
#include "sim/audit.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace flowpulse::transport {

/// Transport parameters, mirroring the paper's §6 setup: a simple transport
/// tolerant to arbitrary reordering (RoCE with out-of-order writes), NO
/// congestion control (the fabric is lossless via PFC), and loss recovery
/// through a retransmission timeout (default 5 µs).
struct TransportConfig {
  std::uint32_t mtu_payload = 4096;        ///< payload bytes per segment
  /// Minimum retransmission timeout (the paper's 5 µs). The effective RTO
  /// additionally adapts to measured RTT (srtt + 4·rttvar, TCP-style) so
  /// that PFC backpressure — which legitimately inflates RTT in incast
  /// patterns — does not trigger spurious retransmission storms.
  sim::Time rto = sim::Time::microseconds(5);
  /// Adapt the RTO to measured RTT. Disable to reproduce a fixed-RTO NIC
  /// exactly (at the cost of spurious retransmissions under congestion).
  bool adaptive_rto = true;
  /// Until the first RTT sample, be conservative: floor × this multiplier
  /// (RFC 6298 starts at a full second for the same reason — before any
  /// sample, a timeout firing below the true RTT turns congestion into a
  /// duplicate storm). 100 × 5 µs = 500 µs comfortably covers even incast
  /// queueing at 400 Gbps.
  int initial_rto_multiplier = 100;
  int max_backoff_shift = 6;               ///< RTO for attempt k: rto << min(k, shift)
  std::uint32_t window = 64;               ///< max unacked segments in flight
};

/// Parameters of one message send.
struct MessageSpec {
  net::HostId dst{};
  core::Bytes bytes{};
  net::FlowId flow_id = 0;
  net::Priority priority = net::Priority::kCollective;
};

/// Receiver-side notification of a completely received message.
struct RecvInfo {
  net::HostId src{};
  net::HostId dst{};
  std::uint64_t msg_id = 0;
  net::FlowId flow_id = 0;
  core::Bytes bytes{};
};

struct TransportStats {
  std::uint64_t data_packets_sent = 0;   ///< first transmissions
  std::uint64_t retx_packets_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t duplicate_data_received = 0;
  std::uint64_t messages_sent = 0;       ///< fully acked
  std::uint64_t messages_received = 0;   ///< fully received
};

/// Reliable, reorder-tolerant message transport bound to one host.
///
/// A message of B bytes is segmented into ceil(B / mtu) data packets. The
/// sender keeps at most `window` segments outstanding; each segment's RTO
/// clock starts when the segment actually leaves the NIC (wire time, via
/// the NIC's tx hook), so local queueing does not trigger spurious
/// retransmissions. Receivers accept segments in any order, acknowledge
/// each one individually (selective ACK), and fire the message callback
/// when the last hole fills. Stale RTO firings (segment already acked) are
/// ignored rather than cancelled.
class Transport {
 public:
  using SendCompleteFn = std::function<void(std::uint64_t msg_id)>;
  using RecvHandler = std::function<void(const RecvInfo&)>;

  Transport(sim::Simulator& simulator, net::Host& host, TransportConfig config);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Begin sending; returns the message id. `on_complete` (optional) fires
  /// when every segment has been acknowledged.
  std::uint64_t send_message(const MessageSpec& spec, SendCompleteFn on_complete = nullptr);

  /// Register a handler fired whenever a message addressed to this host
  /// completes. Multiple consumers (e.g. parallel jobs) may register; each
  /// filters by its own message bookkeeping.
  void add_recv_handler(RecvHandler handler) { recv_handlers_.push_back(std::move(handler)); }

  /// Handler for raw probe packets (PacketKind::kProbe) arriving at this
  /// host — used by the Pingmesh-style baseline prober. Probes bypass the
  /// reliable-delivery machinery on purpose: losing them is their signal.
  using ProbeHandler = std::function<void(const net::Packet&)>;
  void set_probe_handler(ProbeHandler handler) { probe_handler_ = std::move(handler); }

  [[nodiscard]] const TransportStats& stats() const { return stats_; }
  [[nodiscard]] net::HostId host_id() const { return host_.id(); }
  [[nodiscard]] const TransportConfig& config() const { return config_; }
  /// Smoothed RTT estimate (zero until the first sample).
  [[nodiscard]] sim::Time srtt() const { return srtt_; }
  /// Effective retransmission timeout: max(config floor, srtt + 4·rttvar).
  [[nodiscard]] sim::Time effective_rto() const;

#if FP_AUDIT_ENABLED
  /// Test-only: re-fire the completion handlers of an already-delivered
  /// message, simulating a double-delivery bug so the negative-invariant
  /// tests can prove the exactly-once check fires.
  void audit_redeliver(net::HostId src, std::uint64_t msg_id);
#endif

 private:
  struct SendState {
    MessageSpec spec;
    std::uint64_t msg_id = 0;
    std::uint32_t total_segments = 0;
    std::uint32_t next_unsent = 0;
    std::uint32_t acked = 0;
    std::uint32_t outstanding = 0;
    std::vector<std::uint8_t> seg_acked;  // bool per segment
    std::vector<std::uint8_t> attempts;   // transmissions so far per segment
    std::vector<sim::Time> wire_time;     // last wire departure per segment
    SendCompleteFn on_complete;
    bool done = false;
  };

  struct RecvState {
    std::uint64_t total_segments = 0;
    std::uint64_t received = 0;
    std::vector<std::uint8_t> got;
    bool complete = false;
#if FP_AUDIT_ENABLED
    std::uint32_t audit_deliveries = 0;  ///< recv-handler firings; must be exactly 1
    net::HostId audit_src{};
    net::FlowId audit_flow = 0;
    core::Bytes audit_bytes{};
#endif
  };

  void pump(SendState& st);
  void transmit_segment(SendState& st, std::uint32_t seq);
  void on_wire(const net::Packet& p);
  void on_rto(std::uint64_t msg_id, std::uint32_t seq, std::uint8_t attempt);
  void on_packet(const net::Packet& p);
  void on_data(const net::Packet& p);
  void on_ack(const net::Packet& p);
  [[nodiscard]] std::uint32_t segment_payload(const SendState& st, std::uint32_t seq) const;
  [[nodiscard]] static std::uint64_t recv_key(net::HostId src, std::uint64_t msg_id) {
    return (static_cast<std::uint64_t>(src.v()) << 40) ^ msg_id;
  }

  sim::Simulator& sim_;
  net::Host& host_;
  TransportConfig config_;
  TransportStats stats_;
  std::uint64_t next_msg_id_ = 1;
  sim::Time srtt_ = sim::Time::zero();
  sim::Time rttvar_ = sim::Time::zero();
  // detlint: ok(unordered): keyed lookup/insert/erase only, never iterated
  // (enforced by detlint's iteration rule), so hash order cannot reach
  // results; kept unordered for the per-segment hot path.
  std::unordered_map<std::uint64_t, SendState> sends_;
  // detlint: ok(unordered): keyed lookup only, never iterated; hash order
  // cannot affect delivery order, which is driven by packet arrival events.
  std::unordered_map<std::uint64_t, RecvState> recvs_;
  std::vector<RecvHandler> recv_handlers_;
  ProbeHandler probe_handler_;
};

}  // namespace flowpulse::transport
