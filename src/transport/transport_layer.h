#pragma once

#include <memory>
#include <vector>

#include "net/host.h"
#include "transport/transport.h"

namespace flowpulse::transport {

/// Convenience bundle: one Transport endpoint per host of a fabric.
/// Works with any fabric exposing `num_hosts()` and `host(HostId)`
/// (2-level FatTree, 3-level ThreeLevelFatTree, ...).
class TransportLayer {
 public:
  template <typename Fabric>
  TransportLayer(sim::Simulator& simulator, Fabric& fabric, TransportConfig config = {}) {
    endpoints_.reserve(fabric.num_hosts());
    for (const net::HostId h : core::ids<net::HostId>(fabric.num_hosts())) {
      endpoints_.push_back(std::make_unique<Transport>(simulator, fabric.host(h), config));
    }
  }

  [[nodiscard]] Transport& at(net::HostId h) { return *endpoints_[h.v()]; }
  [[nodiscard]] std::size_t size() const { return endpoints_.size(); }

  /// Aggregate stats across all endpoints.
  [[nodiscard]] TransportStats total_stats() const {
    TransportStats t{};
    for (const auto& e : endpoints_) {
      const TransportStats& s = e->stats();
      t.data_packets_sent += s.data_packets_sent;
      t.retx_packets_sent += s.retx_packets_sent;
      t.acks_sent += s.acks_sent;
      t.duplicate_data_received += s.duplicate_data_received;
      t.messages_sent += s.messages_sent;
      t.messages_received += s.messages_received;
    }
    return t;
  }

 private:
  std::vector<std::unique_ptr<Transport>> endpoints_;
};

}  // namespace flowpulse::transport
