#include "transport/transport.h"

#include <algorithm>
#include <cassert>

namespace flowpulse::transport {

Transport::Transport(sim::Simulator& simulator, net::Host& host, TransportConfig config)
    : sim_{simulator}, host_{host}, config_{config} {
  host_.set_rx_handler([this](const net::Packet& p) { on_packet(p); });
  host_.nic().set_tx_hook([this](const net::Packet& p, net::EgressPort::TxEvent) {
    // A drop on the host→leaf link still starts the RTO clock: from the
    // sender's perspective the segment went out and was never acked.
    on_wire(p);
  });
}

std::uint64_t Transport::send_message(const MessageSpec& spec, SendCompleteFn on_complete) {
  assert(spec.bytes > core::Bytes{0});
  const std::uint64_t msg_id = next_msg_id_++;
  SendState st;
  st.spec = spec;
  st.msg_id = msg_id;
  st.total_segments = static_cast<std::uint32_t>(
      (spec.bytes.v() + config_.mtu_payload - 1) / config_.mtu_payload);
  st.seg_acked.assign(st.total_segments, 0);
  st.attempts.assign(st.total_segments, 0);
  st.wire_time.assign(st.total_segments, sim::Time::zero());
  st.on_complete = std::move(on_complete);
  auto [it, inserted] = sends_.emplace(msg_id, std::move(st));
  assert(inserted);
  pump(it->second);
  return msg_id;
}

std::uint32_t Transport::segment_payload(const SendState& st, std::uint32_t seq) const {
  const std::uint64_t offset = static_cast<std::uint64_t>(seq) * config_.mtu_payload;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(config_.mtu_payload, st.spec.bytes.v() - offset));
}

void Transport::pump(SendState& st) {
  while (st.outstanding < config_.window && st.next_unsent < st.total_segments) {
    transmit_segment(st, st.next_unsent);
    ++st.next_unsent;
    ++st.outstanding;
    ++stats_.data_packets_sent;
  }
  FP_AUDIT(st.outstanding <= config_.window, "message-accounting",
           "host" + std::to_string(host_.id().v()) + ".transport", st.msg_id, sim_.now().ps(),
           "window overrun: outstanding=" + std::to_string(st.outstanding) + " window=" +
               std::to_string(config_.window));
}

void Transport::transmit_segment(SendState& st, std::uint32_t seq) {
  net::Packet p;
  p.flow_id = st.spec.flow_id;
  p.src = host_.id();
  p.dst = st.spec.dst;
  p.msg_id = st.msg_id;
  p.msg_bytes = st.spec.bytes;
  p.total_segments = st.total_segments;
  p.seq = seq;
  p.size_bytes = core::Bytes{segment_payload(st, seq)} + net::kHeaderBytes;
  p.kind = net::PacketKind::kData;
  p.priority = st.spec.priority;
  p.retx = st.attempts[seq];
  ++st.attempts[seq];
  host_.nic().enqueue(p);
}

sim::Time Transport::effective_rto() const {
  if (!config_.adaptive_rto) return config_.rto;
  if (srtt_ == sim::Time::zero()) return config_.rto * config_.initial_rto_multiplier;
  const sim::Time adaptive = srtt_ + 4 * rttvar_;
  return adaptive > config_.rto ? adaptive : config_.rto;
}

void Transport::on_wire(const net::Packet& p) {
  if (p.kind != net::PacketKind::kData || p.src != host_.id()) return;
  auto it = sends_.find(p.msg_id);
  if (it == sends_.end() || it->second.done || it->second.seg_acked[p.seq]) return;
  it->second.wire_time[p.seq] = sim_.now();
  const int shift = std::min<int>(p.retx, config_.max_backoff_shift);
  const sim::Time timeout = sim::Time::picoseconds(effective_rto().ps() << shift);
  const std::uint8_t attempt = p.retx;
  const std::uint64_t msg_id = p.msg_id;
  const std::uint32_t seq = p.seq;
  sim_.schedule_in(timeout, [this, msg_id, seq, attempt] { on_rto(msg_id, seq, attempt); });
}

void Transport::on_rto(std::uint64_t msg_id, std::uint32_t seq, std::uint8_t attempt) {
  auto it = sends_.find(msg_id);
  if (it == sends_.end()) return;
  SendState& st = it->second;
  if (st.done || st.seg_acked[seq]) return;       // stale timer: already acked
  if (st.attempts[seq] != attempt + 1) return;    // stale timer: newer attempt pending
  ++stats_.retx_packets_sent;
  FP_TRACE(sim_, kRtoFire, "", host_.id().v(), seq, msg_id, static_cast<double>(attempt), "");
  transmit_segment(st, seq);
}

void Transport::on_packet(const net::Packet& p) {
  switch (p.kind) {
    case net::PacketKind::kData:
      on_data(p);
      break;
    case net::PacketKind::kAck:
      on_ack(p);
      break;
    case net::PacketKind::kProbe:
      if (probe_handler_) probe_handler_(p);
      break;
  }
}

void Transport::on_data(const net::Packet& p) {
  // Update receive state first so the ACK can carry a SACK bitmap of the
  // segments below p.seq that have also arrived.
  RecvState& rs = recvs_[recv_key(p.src, p.msg_id)];
  bool duplicate = false;
  if (rs.complete) {
    duplicate = true;
  } else {
    if (rs.got.empty()) {
      rs.total_segments = p.total_segments;
      rs.got.assign(p.total_segments, 0);
    }
    if (rs.got[p.seq]) {
      duplicate = true;
    } else {
      rs.got[p.seq] = 1;
      ++rs.received;
      if (rs.received == rs.total_segments) {
        rs.complete = true;
        rs.got.clear();
        rs.got.shrink_to_fit();
      }
    }
  }
  if (duplicate) ++stats_.duplicate_data_received;

  // Always acknowledge — late retransmits of a completed message must be
  // acked or the sender never finishes.
  net::Packet ack;
  ack.flow_id = p.flow_id;
  ack.src = host_.id();
  ack.dst = p.src;
  ack.msg_id = p.msg_id;
  ack.seq = p.seq;
  ack.size_bytes = net::kControlPacketBytes;
  ack.kind = net::PacketKind::kAck;
  ack.priority = net::Priority::kControl;
  std::uint64_t bitmap = 0;
  for (std::uint32_t i = 1; i <= 64 && i <= p.seq; ++i) {
    if (rs.complete || rs.got[p.seq - i]) bitmap |= 1ull << (i - 1);
  }
  ack.ack_bitmap = bitmap;
  host_.nic().enqueue(ack);
  ++stats_.acks_sent;

  if (rs.complete && !duplicate && rs.received == rs.total_segments) {
    ++stats_.messages_received;
    const RecvInfo info{p.src, host_.id(), p.msg_id, p.flow_id, p.msg_bytes};
#if FP_AUDIT_ENABLED
    rs.audit_src = p.src;
    rs.audit_flow = p.flow_id;
    rs.audit_bytes = p.msg_bytes;
    ++rs.audit_deliveries;
    FP_AUDIT(rs.audit_deliveries == 1, "message-exactly-once",
             "host" + std::to_string(host_.id().v()) + ".transport", p.msg_id, sim_.now().ps(),
             "message from host" + std::to_string(p.src.v()) + " delivered " +
                 std::to_string(rs.audit_deliveries) + " times");
#endif
    for (const RecvHandler& handler : recv_handlers_) handler(info);
  }
}

#if FP_AUDIT_ENABLED
void Transport::audit_redeliver(net::HostId src, std::uint64_t msg_id) {
  auto it = recvs_.find(recv_key(src, msg_id));
  if (it == recvs_.end() || !it->second.complete) return;
  RecvState& rs = it->second;
  ++rs.audit_deliveries;
  FP_AUDIT(rs.audit_deliveries == 1, "message-exactly-once",
           "host" + std::to_string(host_.id().v()) + ".transport", msg_id, sim_.now().ps(),
           "message from host" + std::to_string(src.v()) + " delivered " +
               std::to_string(rs.audit_deliveries) + " times");
  const RecvInfo info{rs.audit_src, host_.id(), msg_id, rs.audit_flow, rs.audit_bytes};
  for (const RecvHandler& handler : recv_handlers_) handler(info);
}
#endif

void Transport::on_ack(const net::Packet& p) {
  auto it = sends_.find(p.msg_id);
  if (it == sends_.end()) return;
  SendState& st = it->second;
  if (st.done) return;

  // RTT sampling with Karn's rule: only an unambiguous (first-attempt,
  // not-yet-acked) direct acknowledgement contributes; RFC 6298 smoothing.
  if (!st.seg_acked[p.seq] && st.attempts[p.seq] == 1 &&
      st.wire_time[p.seq] > sim::Time::zero()) {
    const sim::Time sample = sim_.now() - st.wire_time[p.seq];
    if (srtt_ == sim::Time::zero()) {
      srtt_ = sample;
      rttvar_ = sim::Time::picoseconds(sample.ps() / 2);
    } else {
      const std::int64_t err = sample.ps() - srtt_.ps();
      const std::int64_t abs_err = err < 0 ? -err : err;
      rttvar_ = sim::Time::picoseconds((3 * rttvar_.ps() + abs_err) / 4);
      srtt_ = sim::Time::picoseconds(srtt_.ps() + err / 8);
    }
  }

  auto mark_acked = [&st](std::uint32_t seq) {
    if (st.seg_acked[seq] || st.attempts[seq] == 0) return;
    st.seg_acked[seq] = 1;
    ++st.acked;
    assert(st.outstanding > 0);
    --st.outstanding;
  };
  mark_acked(p.seq);
  // SACK bitmap: segments below p.seq the receiver also holds. This keeps
  // a lost ACK from looking like a lost data segment.
  for (std::uint32_t i = 1; i <= 64 && i <= p.seq; ++i) {
    if (p.ack_bitmap & (1ull << (i - 1))) mark_acked(p.seq - i);
  }

  if (st.acked == st.total_segments) {
    st.done = true;
    FP_AUDIT(st.outstanding == 0 && st.next_unsent == st.total_segments,
             "message-accounting", "host" + std::to_string(host_.id().v()) + ".transport",
             st.msg_id, sim_.now().ps(),
             "completed with outstanding=" + std::to_string(st.outstanding) +
                 " next_unsent=" + std::to_string(st.next_unsent) + " of " +
                 std::to_string(st.total_segments) + " segments");
    ++stats_.messages_sent;
    if (st.on_complete) st.on_complete(st.msg_id);
    return;
  }
  pump(st);
}

}  // namespace flowpulse::transport
