#include "exp/metrics.h"

#include <algorithm>
#include <limits>

namespace flowpulse::exp {

TrialSamples samples_from(const ScenarioResult& result, std::uint32_t skip) {
  TrialSamples s;
  const std::size_t iters =
      std::min(result.per_iter_max_dev.size(), result.iter_fault_active.size());
  for (std::size_t i = skip; i < iters; ++i) {
    s.dev.push_back(result.per_iter_max_dev[i]);
    s.truth.push_back(result.iter_fault_active[i]);
  }
  return s;
}

Rates classify(const std::vector<TrialSamples>& trials, double threshold) {
  Rates r;
  for (const TrialSamples& t : trials) {
    for (std::size_t i = 0; i < t.dev.size(); ++i) {
      const bool flagged = t.dev[i] > threshold;
      const bool faulty = t.truth[i] != 0;
      if (flagged && faulty) ++r.tp;
      if (flagged && !faulty) ++r.fp;
      if (!flagged && faulty) ++r.fn;
      if (!flagged && !faulty) ++r.tn;
    }
  }
  return r;
}

std::vector<RocPoint> roc_sweep(const std::vector<TrialSamples>& trials,
                                const std::vector<double>& thresholds) {
  std::vector<RocPoint> points;
  points.reserve(thresholds.size());
  for (const double t : thresholds) {
    points.push_back(RocPoint{t, classify(trials, t)});
  }
  return points;
}

double noise_floor(const std::vector<TrialSamples>& clean_trials) {
  bool any_clean = false;
  double floor = 0.0;
  for (const TrialSamples& t : clean_trials) {
    for (std::size_t i = 0; i < t.dev.size(); ++i) {
      if (t.truth[i] == 0) {
        any_clean = true;
        floor = std::max(floor, t.dev[i]);
      }
    }
  }
  // Max over nothing is undefined, not 0.0 — see the header comment.
  return any_clean ? floor : std::numeric_limits<double>::quiet_NaN();
}

}  // namespace flowpulse::exp
