#pragma once

#include <string>
#include <vector>

#include "ctrl/controller.h"
#include "exp/scenario.h"
#include "exp/table.h"
#include "flowpulse/detector.h"

namespace flowpulse::exp {

/// Machine-readable exports of run results — what a deployment would ship
/// to the fabric manager / alerting pipeline. Hand-rolled JSON; every
/// free-form string (event reasons, dump labels) goes through
/// obs::json_escape so hostile content cannot break the document.

/// Full run summary: workload, per-iteration deviations with ground truth,
/// transport and fabric counters.
[[nodiscard]] std::string to_json(const ScenarioResult& result);

/// Alert feed: one object per alerted (leaf, port, iteration) with the
/// observation, prediction, deviation and localization verdict.
[[nodiscard]] std::string alerts_to_json(const std::vector<fp::DetectionResult>& results);

/// Per-iteration deviation series as CSV: iteration,max_rel_dev,fault_active.
[[nodiscard]] std::string deviations_to_csv(const ScenarioResult& result);

/// Localization verdict as a stable string ("local" / "remote" / "unknown").
[[nodiscard]] const char* verdict_name(fp::Localization::Verdict v);

/// Mitigation event kind as a stable string ("quarantine" / "restore" /
/// "confirm").
[[nodiscard]] const char* event_kind_name(ctrl::MitigationEvent::Kind k);

/// Quarantine/restore/confirm feed plus recovery milestones as one JSON
/// object — the control-plane audit trail a fabric manager would archive.
/// Milestones that never happened are emitted as null.
[[nodiscard]] std::string mitigation_to_json(const std::vector<ctrl::MitigationEvent>& events,
                                             const ctrl::RecoveryTimeline& timeline);

/// The same feed as an operator-facing table (time, iteration, action,
/// link, reason).
[[nodiscard]] Table mitigation_table(const std::vector<ctrl::MitigationEvent>& events);

/// Write `content` to `path` (overwrites). Returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace flowpulse::exp
