#pragma once

#include <string>
#include <vector>

#include "exp/scenario.h"
#include "flowpulse/detector.h"

namespace flowpulse::exp {

/// Machine-readable exports of run results — what a deployment would ship
/// to the fabric manager / alerting pipeline. Hand-rolled JSON (the values
/// are all numbers and fixed enum strings; no escaping concerns).

/// Full run summary: workload, per-iteration deviations with ground truth,
/// transport and fabric counters.
[[nodiscard]] std::string to_json(const ScenarioResult& result);

/// Alert feed: one object per alerted (leaf, port, iteration) with the
/// observation, prediction, deviation and localization verdict.
[[nodiscard]] std::string alerts_to_json(const std::vector<fp::DetectionResult>& results);

/// Per-iteration deviation series as CSV: iteration,max_rel_dev,fault_active.
[[nodiscard]] std::string deviations_to_csv(const ScenarioResult& result);

/// Localization verdict as a stable string ("local" / "remote" / "unknown").
[[nodiscard]] const char* verdict_name(fp::Localization::Verdict v);

/// Write `content` to `path` (overwrites). Returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace flowpulse::exp
