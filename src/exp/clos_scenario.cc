#include "exp/clos_scenario.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "collective/demand_matrix.h"
#include "collective/schedule.h"
#include "exp/trials.h"

namespace flowpulse::exp {

ClosScenario::ClosScenario(ClosScenarioConfig config) : config_{config} { build(); }

ClosScenario::~ClosScenario() = default;

void ClosScenario::build() {
  // Same deterministic-sharding gate as exp::Scenario: a probabilistic
  // fault draws from the fabric-wide fault RNG in packet order, which no
  // lane partition can reproduce — fall back to serial silently.
  const std::int32_t lanes_requested = config_.lanes >= 0 ? config_.lanes : env_lanes();
  bool deterministic_faults = true;
  for (const ClosScenarioConfig::LeafFault& f : config_.leaf_faults) {
    if (f.spec.kind != net::FaultSpec::Kind::kNone && !f.spec.drops_all()) {
      deterministic_faults = false;
    }
  }
  for (const ClosScenarioConfig::CoreFault& f : config_.core_faults) {
    if (f.spec.kind != net::FaultSpec::Kind::kNone && !f.spec.drops_all()) {
      deterministic_faults = false;
    }
  }
  const bool laned = lanes_requested >= 2 && deterministic_faults;

  lanes_.push_back(std::make_unique<sim::Simulator>(config_.seed));
  if (laned) {
    std::vector<sim::Simulator*> lane_ptrs{lanes_.front().get()};
    for (std::int32_t k = 1; k < lanes_requested; ++k) {
      lanes_.push_back(std::make_unique<sim::Simulator>(
          config_.seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(k))));
      lane_ptrs.push_back(lanes_.back().get());
    }
    fabric_ = std::make_unique<net::ThreeLevelFatTree>(lane_ptrs, config_.fabric);
    lane_runner_ = std::make_unique<sim::LaneRunner>(
        std::vector<sim::EventLane*>(lane_ptrs.begin(), lane_ptrs.end()),
        fabric_->min_cross_lane_latency());
  } else {
    fabric_ = std::make_unique<net::ThreeLevelFatTree>(*lanes_.front(), config_.fabric);
  }

  transports_ = std::make_unique<transport::TransportLayer>(*lanes_.front(), *fabric_,
                                                            config_.transport);
  flowpulse_ = std::make_unique<fp::ThreeLevelFlowPulse>(*fabric_, config_.threshold);
  // Deferred in BOTH modes: serial and laned runs then evaluate the exact
  // same records in the exact same canonical (iteration, row) order at
  // flush() — the bit-identity the equivalence tests pin.
  flowpulse_->set_deferred_evaluation(true);

  collective::CollectiveConfig cc;
  for (const net::HostId h : core::ids<net::HostId>(fabric_->num_hosts())) {
    cc.hosts.push_back(h);
  }
  cc.schedule =
      collective::ring_reduce_scatter(fabric_->num_hosts(), config_.collective_bytes);
  cc.iterations = config_.iterations;
  cc.compute_gap = config_.compute_gap;
  cc.max_jitter = config_.max_jitter;
  runner_ = std::make_unique<collective::CollectiveRunner>(*lanes_.front(), *transports_,
                                                           std::move(cc));

  std::vector<net::HostId> hosts(fabric_->num_hosts(), net::HostId{});
  for (const net::HostId h : core::ids<net::HostId>(fabric_->num_hosts())) hosts[h.v()] = h;
  const auto demand = collective::DemandMatrix::from_schedule(runner_->current_schedule(),
                                                              hosts, fabric_->num_hosts());
  const fp::ThreeLevelAnalyticalModel model{fabric_->info(), config_.transport.mtu_payload,
                                            net::kHeaderBytes};
  flowpulse_->set_prediction(model.predict(demand, fabric_->routing()));

  for (const ClosScenarioConfig::LeafFault& f : config_.leaf_faults) {
    fabric_->set_leaf_link_fault(f.leaf, f.spine_index, f.spec);
  }
  for (const ClosScenarioConfig::CoreFault& f : config_.core_faults) {
    fabric_->set_core_link_fault(f.pod, f.spine_index, f.k, f.spec);
  }
}

ClosScenarioResult ClosScenario::run() {
  // detlint: ok(wall-clock): wall_seconds is throughput reporting only; it
  // never feeds simulation state and clos_report_hash zeroes it.
  const auto wall_start = std::chrono::steady_clock::now();
  runner_->start();
  if (lane_runner_ != nullptr) {
    lane_runner_->run_until(config_.horizon);
  } else {
    lanes_.front()->run_until(config_.horizon);
  }
  flowpulse_->flush();

  ClosScenarioResult r;
  r.laned = lane_runner_ != nullptr;
  r.lanes = static_cast<std::uint32_t>(lanes_.size());
  r.leaf_iteration_max_dev = flowpulse_->leaf_iteration_max_dev();
  r.spine_iteration_max_dev = flowpulse_->spine_iteration_max_dev();
  r.faulty_leaves = flowpulse_->faulty_leaf_results();
  r.faulty_spines = flowpulse_->faulty_spine_results();
  r.fabric_counters = fabric_->total_fabric_counters();
  // Laned lanes settle to a common clock; lane 0 always holds the latest.
  r.sim_end = lanes_.front()->now();
  for (const auto& lane : lanes_) r.sim_end = std::max(r.sim_end, lane->now());
  r.events = lane_runner_ != nullptr ? lane_runner_->events_executed()
                                     : lanes_.front()->events_executed();
  // detlint: ok(wall-clock): end stamp of the reporting-only wall duration.
  r.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 wall_start)
                       .count();
  return r;
}

namespace {

void json_dev_series(std::ostringstream& os, const char* key,
                     const std::vector<double>& devs) {
  os << '"' << key << "\":[";
  for (std::size_t i = 0; i < devs.size(); ++i) {
    if (i) os << ',';
    if (std::isfinite(devs[i])) {
      os << devs[i];
    } else {
      os << "null";
    }
  }
  os << "],";
}

void json_results(std::ostringstream& os, const char* key,
                  const std::vector<fp::DetectionResult>& results, bool comma = true) {
  os << '"' << key << "\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const fp::DetectionResult& d = results[i];
    if (i) os << ',';
    os << "{\"row\":" << d.leaf.v() << ",\"iteration\":" << d.iteration.v() << ",\"alerts\":[";
    for (std::size_t a = 0; a < d.alerts.size(); ++a) {
      const fp::PortAlert& alert = d.alerts[a];
      if (a) os << ',';
      os << "{\"port\":" << alert.uplink.v() << ",\"observed\":" << alert.observed
         << ",\"predicted\":" << alert.predicted << ",\"rel_dev\":";
      if (std::isfinite(alert.rel_dev)) {
        os << alert.rel_dev;
      } else {
        os << "null";
      }
      os << '}';
    }
    os << "]}";
  }
  os << ']';
  if (comma) os << ',';
}

}  // namespace

std::string clos_to_json(const ClosScenarioResult& result) {
  std::ostringstream os;
  os << "{\"laned\":" << (result.laned ? "true" : "false")
     << ",\"sim_end_us\":" << result.sim_end.us() << ",\"events\":" << result.events << ',';
  json_dev_series(os, "leaf_iteration_max_dev", result.leaf_iteration_max_dev);
  json_dev_series(os, "spine_iteration_max_dev", result.spine_iteration_max_dev);
  json_results(os, "faulty_leaves", result.faulty_leaves);
  json_results(os, "faulty_spines", result.faulty_spines);
  os << "\"fabric\":{\"tx_packets\":" << result.fabric_counters.tx_packets.v()
     << ",\"tx_bytes\":" << result.fabric_counters.tx_bytes.v()
     << ",\"dropped_packets\":" << result.fabric_counters.dropped_packets.v()
     << ",\"telemetry_dropped\":" << result.fabric_counters.telemetry_dropped_packets.v()
     << "},\"wall_seconds\":" << result.wall_seconds << '}';
  return os.str();
}

std::uint64_t clos_report_hash(const ClosScenarioResult& result) {
  ClosScenarioResult zeroed = result;
  zeroed.wall_seconds = 0.0;
  // "laned" and lane count are engine knobs, not results: a laned run must
  // hash identically to the serial run it mirrors.
  zeroed.laned = false;
  zeroed.lanes = 1;
  const std::string json = clos_to_json(zeroed);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : json) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t clos_report_hash(const ClosScenarioConfig& config) {
  ClosScenario scenario{config};
  return clos_report_hash(scenario.run());
}

}  // namespace flowpulse::exp
