#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "exp/metrics.h"
#include "exp/scenario.h"

namespace flowpulse::exp {

/// Environment-tunable experiment scale, so the full suite can run on a
/// laptop in minutes yet scale up for higher-confidence numbers:
///   FLOWPULSE_TRIALS  — seeded repetitions per point (default per bench)
///   FLOWPULSE_SCALE   — multiplier on collective sizes (default 1.0)
[[nodiscard]] inline std::uint32_t env_trials(std::uint32_t fallback) {
  if (const char* s = std::getenv("FLOWPULSE_TRIALS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) return static_cast<std::uint32_t>(v);
  }
  return fallback;
}

[[nodiscard]] inline double env_scale(double fallback = 1.0) {
  if (const char* s = std::getenv("FLOWPULSE_SCALE")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0.0) return v;
  }
  return fallback;
}

/// Run `n` seeded repetitions of `config` (seeds base_seed, base_seed+1, …)
/// and collect per-iteration deviation/truth samples, skipping the first
/// `skip` iterations of each run.
[[nodiscard]] inline std::vector<TrialSamples> run_trials(const ScenarioConfig& config,
                                                          std::uint32_t n,
                                                          std::uint32_t skip = 0) {
  std::vector<TrialSamples> all;
  all.reserve(n);
  for (std::uint32_t t = 0; t < n; ++t) {
    ScenarioConfig c = config;
    c.seed = config.seed + t * 7919;  // de-correlate seeds
    Scenario scenario{std::move(c)};
    all.push_back(samples_from(scenario.run(), skip));
  }
  return all;
}

}  // namespace flowpulse::exp
