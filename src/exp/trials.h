#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_safety.h"
#include "exp/metrics.h"
#include "exp/scenario.h"

namespace flowpulse::exp {

/// Environment-tunable experiment scale, so the full suite can run on a
/// laptop in minutes yet scale up for higher-confidence numbers:
///   FLOWPULSE_TRIALS  — seeded repetitions per point (default per bench)
///   FLOWPULSE_SCALE   — multiplier on collective sizes (default 1.0)
///   FLOWPULSE_JOBS    — worker threads for parallel sweeps
///                       (default: hardware_concurrency)
[[nodiscard]] inline std::uint32_t env_trials(std::uint32_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read before the worker pool
  // spawns; nothing in the process calls setenv
  if (const char* s = std::getenv("FLOWPULSE_TRIALS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) return static_cast<std::uint32_t>(v);
  }
  return fallback;
}

[[nodiscard]] inline double env_scale(double fallback = 1.0) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read before the worker pool
  // spawns; nothing in the process calls setenv
  if (const char* s = std::getenv("FLOWPULSE_SCALE")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0.0) return v;
  }
  return fallback;
}

/// Event-lane count for sharded single-scenario runs (ScenarioConfig::lanes
/// == -1 consults this): FLOWPULSE_LANES if set, otherwise the fallback.
/// 0 and 1 both mean serial.
[[nodiscard]] inline std::int32_t env_lanes(std::int32_t fallback = 0) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read before any lane pool
  // spawns; nothing in the process calls setenv
  if (const char* s = std::getenv("FLOWPULSE_LANES")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v >= 0) return static_cast<std::int32_t>(v);
  }
  return fallback;
}

/// Worker-thread count for parallel trial sweeps: FLOWPULSE_JOBS if set,
/// otherwise std::thread::hardware_concurrency() (at least 1).
[[nodiscard]] unsigned env_jobs();

/// Seed of trial `t` in a sweep whose first trial uses `base_seed`.
///
/// The base is pushed through a splitmix64 finalizer before the per-trial
/// stride is added, and the sum is finalized again. The earlier linear
/// schedule (base + t·7919) collided whenever two sweeps' base seeds
/// differed by a multiple of the stride: trial t of a sweep at base b was
/// trial t−k of a sweep at base b + k·7919, so "independent" sweeps partly
/// reran each other's simulations. Mixing the base first starts each
/// sweep's stride walk from an uncorrelated point; the second finalize
/// de-correlates consecutive trials within a sweep. Still THE seed
/// schedule: the serial and parallel runners both call it, which is what
/// makes their outputs bit-identical.
[[nodiscard]] constexpr std::uint64_t trial_seed(std::uint64_t base_seed, std::uint32_t t) {
  std::uint64_t z = base_seed ^ 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  z += (static_cast<std::uint64_t>(t) + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Shared state of one parallel_indexed worker pool, annotated for clang's
/// thread-safety analysis (attributes on function-local variables are
/// ignored, so the protocol lives in a named struct). The protocol:
/// `next` hands out indices, `failed` short-circuits the remaining work,
/// and the first exception is parked under `error_mu` for the caller.
struct WorkerPoolState {
  std::atomic<std::uint32_t> next{0};
  std::atomic<bool> failed{false};
  core::Mutex error_mu;
  std::exception_ptr first_error FP_GUARDED_BY(error_mu);

  /// Park `e` if it is the first failure, and tell every worker to stop.
  void record_error(std::exception_ptr e) FP_EXCLUDES(error_mu) {
    const core::LockGuard lock{error_mu};
    if (!first_error) first_error = e;
    failed.store(true, std::memory_order_relaxed);
  }

  /// The parked exception (null if the run succeeded). Called after every
  /// worker has joined, but takes the lock anyway — it is not on any hot
  /// path, and the analysis should not need a "joined already" waiver.
  [[nodiscard]] std::exception_ptr take_error() FP_EXCLUDES(error_mu) {
    const core::LockGuard lock{error_mu};
    return first_error;
  }
};

/// Deterministic ordered parallel map: evaluates `fn(0) … fn(n-1)` on up to
/// `jobs` worker threads (0 → env_jobs()) and returns the results in index
/// order. Indices are handed out by an atomic counter — no work stealing,
/// no reordering of results — so the output is independent of thread
/// scheduling; `fn` must not touch shared mutable state. The first
/// exception thrown by any invocation is rethrown on the caller's thread.
template <typename T>
[[nodiscard]] std::vector<T> parallel_indexed(std::uint32_t n, unsigned jobs,
                                              const std::function<T(std::uint32_t)>& fn) {
  if (jobs == 0) jobs = env_jobs();
  if (jobs > n) jobs = n;
  std::vector<T> out(n);
  if (jobs <= 1) {
    for (std::uint32_t t = 0; t < n; ++t) out[t] = fn(t);
    return out;
  }
  WorkerPoolState state;
  auto worker = [&] {
    for (;;) {
      const std::uint32_t t = state.next.fetch_add(1, std::memory_order_relaxed);
      if (t >= n || state.failed.load(std::memory_order_relaxed)) return;
      try {
        out[t] = fn(t);
      } catch (...) {
        state.record_error(std::current_exception());
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned j = 0; j < jobs; ++j) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  if (std::exception_ptr e = state.take_error()) std::rethrow_exception(e);
  return out;
}

/// Run `n` seeded repetitions of `config` (seeds trial_seed(config.seed, t))
/// and collect per-iteration deviation/truth samples, skipping the first
/// `skip` iterations of each run.
[[nodiscard]] inline std::vector<TrialSamples> run_trials(const ScenarioConfig& config,
                                                          std::uint32_t n,
                                                          std::uint32_t skip = 0) {
  std::vector<TrialSamples> all;
  all.reserve(n);
  for (std::uint32_t t = 0; t < n; ++t) {
    ScenarioConfig c = config;
    c.seed = trial_seed(config.seed, t);
    Scenario scenario{std::move(c)};
    all.push_back(samples_from(scenario.run(), skip));
  }
  return all;
}

/// run_trials on a thread pool: one self-contained Simulator per trial
/// (Simulator has no global state — see sim/simulator.h), the shared
/// trial_seed() schedule, and results merged in trial order, so the output
/// is bit-identical to run_trials() for every `jobs` value. `jobs` == 0
/// uses env_jobs() (FLOWPULSE_JOBS, default hardware_concurrency).
[[nodiscard]] std::vector<TrialSamples> run_trials_parallel(const ScenarioConfig& config,
                                                            std::uint32_t n,
                                                            std::uint32_t skip = 0,
                                                            unsigned jobs = 0);

}  // namespace flowpulse::exp
