#pragma once

// exp::ClosScenario — the sharded-event-lane headline scenario: a >= 1k-host
// 3-level Clos running a ring collective with two-tier FlowPulse monitoring
// (paper §7 "Network Topology"), runnable serially or laned with results
// bit-identical between the two. The deterministic JSON report + FNV-1a
// hash below are what the laned-equivalence tests and the CI golden pin.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "collective/runner.h"
#include "core/units.h"
#include "flowpulse/three_level_system.h"
#include "net/three_level.h"
#include "sim/lane_runner.h"
#include "sim/simulator.h"
#include "transport/transport_layer.h"

namespace flowpulse::exp {

/// One run of the 3-level Clos scenario. Defaults give the 1024-host
/// headline shape: 16 pods x 8 leaves x 8 pod-spines, 8 hosts per leaf
/// (128 leaves, 128 pod-spines, 64 cores).
struct ClosScenarioConfig {
  net::ThreeLevelConfig fabric{net::ThreeLevelInfo{16, 8, 8, 8}};
  transport::TransportConfig transport{};

  // Workload: Ring-ReduceScatter over every host, rank i on host i.
  core::Bytes collective_bytes{1u << 20};
  std::uint32_t iterations = 2;
  sim::Time compute_gap = sim::Time::microseconds(5);
  sim::Time max_jitter = sim::Time::microseconds(1);

  /// Detection threshold for both monitored tiers.
  double threshold = 0.01;

  /// Silent faults, one struct per monitored link class. The laned engine
  /// cannot shard the fabric-wide fault RNG, so only deterministic kinds
  /// (FaultSpec::drops_all(): disconnect / black-hole) keep the run laned —
  /// a probabilistic spec anywhere silently falls back to serial, exactly
  /// like exp::ScenarioConfig::lanes.
  struct LeafFault {
    net::LeafId leaf{};
    std::uint32_t spine_index = 0;  // detlint: ok(raw-scalar-id): pod-local ordinal, passed through to ThreeLevelFatTree::set_leaf_link_fault's documented raw-index boundary
    net::FaultSpec spec{};
  };
  struct CoreFault {
    std::uint32_t pod = 0;
    std::uint32_t spine_index = 0;  // detlint: ok(raw-scalar-id): pod-local ordinal for ThreeLevelFatTree::set_core_link_fault's documented raw-index boundary
    std::uint32_t k = 0;
    net::FaultSpec spec{};
  };
  std::vector<LeafFault> leaf_faults;
  std::vector<CoreFault> core_faults;

  /// Event-lane count: -1 consults FLOWPULSE_LANES, 0/1 serial, >= 2
  /// sharded (lane 0 hosts; pod p -> lane 1 + (p mod (lanes-1)); core c
  /// likewise — see net::ThreeLevelFatTree's laned constructor).
  std::int32_t lanes = -1;

  std::uint64_t seed = 1;
  sim::Time horizon = sim::Time::seconds(10);
};

struct ClosScenarioResult {
  bool laned = false;          ///< did the run actually shard?
  std::uint32_t lanes = 1;     ///< lane count that executed (1 == serial)
  std::vector<double> leaf_iteration_max_dev;
  std::vector<double> spine_iteration_max_dev;
  std::vector<fp::DetectionResult> faulty_leaves;
  std::vector<fp::DetectionResult> faulty_spines;
  net::LinkCounters fabric_counters{};
  sim::Time sim_end = sim::Time::zero();
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
};

/// Builds and runs one Clos experiment. Like exp::Scenario, the pieces stay
/// accessible between construction and run().
class ClosScenario {
 public:
  explicit ClosScenario(ClosScenarioConfig config);
  ~ClosScenario();

  ClosScenario(const ClosScenario&) = delete;
  ClosScenario& operator=(const ClosScenario&) = delete;

  /// Run to completion and summarize.
  ClosScenarioResult run();

  /// True when this scenario actually runs sharded.
  [[nodiscard]] bool laned() const { return lane_runner_ != nullptr; }
  [[nodiscard]] sim::Simulator& simulator() { return *lanes_.front(); }
  [[nodiscard]] net::ThreeLevelFatTree& fabric() { return *fabric_; }
  [[nodiscard]] fp::ThreeLevelFlowPulse& flowpulse() { return *flowpulse_; }
  [[nodiscard]] const ClosScenarioConfig& config() const { return config_; }

 private:
  void build();

  ClosScenarioConfig config_;
  std::vector<std::unique_ptr<sim::Simulator>> lanes_;  ///< lane 0 first
  std::unique_ptr<sim::LaneRunner> lane_runner_;
  std::unique_ptr<net::ThreeLevelFatTree> fabric_;
  std::unique_ptr<transport::TransportLayer> transports_;
  std::unique_ptr<fp::ThreeLevelFlowPulse> flowpulse_;
  std::unique_ptr<collective::CollectiveRunner> runner_;
};

/// Deterministic JSON report (no wall-clock fields besides wall_seconds).
[[nodiscard]] std::string clos_to_json(const ClosScenarioResult& result);

/// FNV-1a 64-bit over clos_to_json with wall_seconds zeroed — the value the
/// serial-vs-laned equivalence tests and the CI golden compare.
[[nodiscard]] std::uint64_t clos_report_hash(const ClosScenarioResult& result);

/// Convenience: build, run, hash.
[[nodiscard]] std::uint64_t clos_report_hash(const ClosScenarioConfig& config);

}  // namespace flowpulse::exp
