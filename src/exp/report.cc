#include "exp/report.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace flowpulse::exp {
namespace {

void json_number(std::ostringstream& os, const char* key, double v, bool comma = true) {
  // JSON has no inf/nan literals, and both occur here: rel_dev is +inf for
  // a port predicted silent but carrying traffic (every mitigated run's
  // settle iterations), and empty-input rates are NaN. Emit null instead
  // of an unparseable token.
  os << '"' << key << "\":";
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
  if (comma) os << ',';
}

void json_number(std::ostringstream& os, const char* key, std::uint64_t v,
                 bool comma = true) {
  os << '"' << key << "\":" << v;
  if (comma) os << ',';
}

void json_time_or_null(std::ostringstream& os, const char* key, sim::Time t,
                       bool comma = true) {
  os << '"' << key << "\":";
  if (t == sim::Time::max()) {
    os << "null";
  } else {
    os << t.us();
  }
  if (comma) os << ',';
}

void append_mitigation_json(std::ostringstream& os,
                            const std::vector<ctrl::MitigationEvent>& events,
                            const ctrl::RecoveryTimeline& timeline) {
  os << "{";
  json_time_or_null(os, "first_alert_us", timeline.first_alert);
  json_time_or_null(os, "first_quarantine_us", timeline.first_quarantine);
  json_time_or_null(os, "recovered_us", timeline.recovered);
  json_number(os, "first_alert_iteration", std::uint64_t{timeline.first_alert_iteration.v()});
  json_number(os, "first_quarantine_iteration",
              std::uint64_t{timeline.first_quarantine_iteration.v()});
  os << "\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ctrl::MitigationEvent& e = events[i];
    if (i) os << ',';
    os << "{";
    json_number(os, "time_us", e.time.us());
    json_number(os, "iteration", std::uint64_t{e.iteration.v()});
    os << "\"kind\":\"" << event_kind_name(e.kind) << "\",";
    json_number(os, "leaf", std::uint64_t{e.leaf.v()});
    json_number(os, "uplink", std::uint64_t{e.uplink.v()});
    os << "\"reason\":" << obs::json_quote(e.reason) << "}";
  }
  os << "]}";
}

}  // namespace

const char* event_kind_name(ctrl::MitigationEvent::Kind k) {
  switch (k) {
    case ctrl::MitigationEvent::Kind::kQuarantine:
      return "quarantine";
    case ctrl::MitigationEvent::Kind::kRestore:
      return "restore";
    case ctrl::MitigationEvent::Kind::kConfirm:
      return "confirm";
  }
  return "unknown";
}

std::string mitigation_to_json(const std::vector<ctrl::MitigationEvent>& events,
                               const ctrl::RecoveryTimeline& timeline) {
  std::ostringstream os;
  append_mitigation_json(os, events, timeline);
  return os.str();
}

Table mitigation_table(const std::vector<ctrl::MitigationEvent>& events) {
  Table table{{"time_us", "iter", "action", "link", "reason"}};
  for (const ctrl::MitigationEvent& e : events) {
    std::ostringstream link;
    link << "leaf " << e.leaf << " / uplink " << e.uplink;
    table.row({fmt(e.time.us(), 1), std::to_string(e.iteration.v()), event_kind_name(e.kind),
               link.str(), e.reason});
  }
  return table;
}

const char* verdict_name(fp::Localization::Verdict v) {
  switch (v) {
    case fp::Localization::Verdict::kLocalLink:
      return "local";
    case fp::Localization::Verdict::kRemoteLinks:
      return "remote";
    case fp::Localization::Verdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::string to_json(const ScenarioResult& result) {
  std::ostringstream os;
  os << "{";
  json_number(os, "iterations_completed", std::uint64_t{result.iterations_completed});
  os << "\"data_valid\":" << (result.data_valid ? "true" : "false") << ',';
  json_number(os, "events", result.events);
  json_number(os, "sim_end_us", result.sim_end.us());
  json_number(os, "wall_seconds", result.wall_seconds);
  os << "\"transport\":{";
  json_number(os, "data_packets", result.transport_stats.data_packets_sent);
  json_number(os, "retx_packets", result.transport_stats.retx_packets_sent);
  json_number(os, "acks", result.transport_stats.acks_sent);
  json_number(os, "duplicates", result.transport_stats.duplicate_data_received);
  json_number(os, "messages", result.transport_stats.messages_received, false);
  os << "},\"fabric\":{";
  json_number(os, "tx_packets", result.fabric_counters.tx_packets.v());
  json_number(os, "dropped_packets", result.fabric_counters.dropped_packets.v(), false);
  os << "},\"mitigation\":";
  append_mitigation_json(os, result.mitigation_events, result.recovery);
  // Flight-recorder window (null unless the run traced): the counter /
  // histogram registry reduced from the retained events, plus one summary
  // line per automatic dump. Raw events ship via obs::chrome_trace_json,
  // not the run summary.
  os << ",\"trace\":";
  if (result.trace_events.empty() && result.trace_dumps.empty()) {
    os << "null";
  } else {
    os << "{";
    json_number(os, "recorded", std::uint64_t{result.trace_events.size()});
    json_number(os, "ring_dropped", result.trace_dropped);
    os << "\"dumps\":[";
    for (std::size_t i = 0; i < result.trace_dumps.size(); ++i) {
      const obs::TraceDump& d = result.trace_dumps[i];
      if (i) os << ',';
      os << "{\"reason\":" << obs::json_quote(d.reason) << ',';
      json_number(os, "time_us", d.at.us());
      json_number(os, "iteration", std::uint64_t{d.iteration});
      json_number(os, "ring_dropped", d.dropped);
      json_number(os, "events", std::uint64_t{d.events.size()}, false);
      os << "}";
    }
    os << "],\"metrics\":" << obs::TraceMetrics::from_events(result.trace_events).to_json()
       << "}";
  }
  // Fidelity accounting — emitted only when the hybrid engine ran, so pure
  // packet runs (and their pinned golden hashes) are untouched.
  if (result.fidelity.enabled) {
    os << ",\"fidelity\":{\"mode\":\"" << fp::fidelity_mode_name(result.fidelity.mode)
       << "\",";
    json_number(os, "packet_iterations", std::uint64_t{result.fidelity.packet_iterations});
    json_number(os, "flow_iterations", std::uint64_t{result.fidelity.flow_iterations});
    json_number(os, "demotions", std::uint64_t{result.fidelity.demotions});
    json_number(os, "promotions", std::uint64_t{result.fidelity.promotions});
    os << "\"iteration_mode\":[";
    for (std::size_t i = 0; i < result.fidelity.iteration_mode.size(); ++i) {
      if (i) os << ',';
      os << int{result.fidelity.iteration_mode[i]};
    }
    os << "]}";
  }
  os << ",\"iterations\":[";
  for (std::size_t i = 0; i < result.per_iter_max_dev.size(); ++i) {
    if (i) os << ',';
    os << "{";
    json_number(os, "iteration", std::uint64_t{i});
    json_number(os, "max_rel_dev", result.per_iter_max_dev[i]);
    const bool active = i < result.iter_fault_active.size() && result.iter_fault_active[i];
    os << "\"fault_active\":" << (active ? "true" : "false");
    if (i < result.iter_windows.size()) {
      os << ',';
      json_number(os, "start_us", result.iter_windows[i].first.us());
      json_number(os, "end_us", result.iter_windows[i].second.us(), false);
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string alerts_to_json(const std::vector<fp::DetectionResult>& results) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const fp::DetectionResult& r : results) {
    for (const fp::PortAlert& a : r.alerts) {
      if (!first) os << ',';
      first = false;
      os << "{";
      json_number(os, "leaf", std::uint64_t{r.leaf.v()});
      json_number(os, "iteration", std::uint64_t{r.iteration.v()});
      json_number(os, "port", std::uint64_t{a.uplink.v()});
      json_number(os, "observed_bytes", a.observed);
      json_number(os, "predicted_bytes", a.predicted);
      json_number(os, "rel_dev", a.rel_dev);
      os << "\"localization\":\"" << verdict_name(a.localization.verdict) << '"';
      if (!a.localization.suspect_senders.empty()) {
        os << ",\"suspect_senders\":[";
        for (std::size_t i = 0; i < a.localization.suspect_senders.size(); ++i) {
          if (i) os << ',';
          os << a.localization.suspect_senders[i];
        }
        os << ']';
      }
      os << "}";
    }
  }
  os << "]";
  return os.str();
}

std::string deviations_to_csv(const ScenarioResult& result) {
  std::ostringstream os;
  os << "iteration,max_rel_dev,fault_active\n";
  for (std::size_t i = 0; i < result.per_iter_max_dev.size(); ++i) {
    const bool active = i < result.iter_fault_active.size() && result.iter_fault_active[i];
    os << i << ',' << result.per_iter_max_dev[i] << ',' << (active ? 1 : 0) << '\n';
  }
  return os.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace flowpulse::exp
