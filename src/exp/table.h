#pragma once

#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace flowpulse::exp {

/// Minimal fixed-width table printer for bench output — keeps every bench
/// binary's stdout the same shape as the paper's tables/figure series.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_{std::move(headers)} {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        os << "| " << std::setw(static_cast<int>(width[c])) << std::left
           << (c < cells.size() ? cells[c] : "") << ' ';
      }
      os << "|\n";
    };
    line(headers_);
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '|' << std::string(width[c] + 2, '-');
    }
    os << "|\n";
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision. NaN (e.g. a Rates rate with a
/// zero denominator, or a noise floor with no clean samples) renders as
/// "n/a" instead of implementation-defined "nan" spellings.
[[nodiscard]] inline std::string fmt(double v, int precision = 4) {
  if (std::isnan(v)) return "n/a";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// Format a percentage ("n/a" for NaN, like fmt).
[[nodiscard]] inline std::string pct(double v, int precision = 2) {
  if (std::isnan(v)) return "n/a";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v * 100.0 << '%';
  return os.str();
}

}  // namespace flowpulse::exp
