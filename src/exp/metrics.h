#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "exp/scenario.h"

namespace flowpulse::exp {

/// Classification counts over a set of (iteration, deviation, truth)
/// samples at a given threshold. The classifier is the paper's §5.3 rule:
/// an iteration is declared faulty when any port's relative deviation
/// exceeds the threshold.
struct Rates {
  std::uint64_t tp = 0, fp = 0, tn = 0, fn = 0;

  // Zero-denominator rates are undefined, not zero: a sweep with no
  // negative (or no positive) samples must not read as a perfect 0% rate.
  // NaN propagates loudly through downstream math and renders as "n/a" in
  // tables (exp::fmt / exp::pct).
  [[nodiscard]] double fpr() const {
    const std::uint64_t n = fp + tn;
    return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                  : static_cast<double>(fp) / static_cast<double>(n);
  }
  [[nodiscard]] double fnr() const {
    const std::uint64_t n = fn + tp;
    return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                  : static_cast<double>(fn) / static_cast<double>(n);
  }
  [[nodiscard]] double tpr() const { return 1.0 - fnr(); }

  Rates& operator+=(const Rates& o) {
    tp += o.tp;
    fp += o.fp;
    tn += o.tn;
    fn += o.fn;
    return *this;
  }
};

/// Deviation/truth samples of one run, one entry per evaluated iteration.
struct TrialSamples {
  std::vector<double> dev;
  std::vector<std::uint8_t> truth;
};

/// Extract per-iteration samples from a scenario result, skipping the first
/// `skip` iterations (model warm-up / learning phase).
[[nodiscard]] TrialSamples samples_from(const ScenarioResult& result, std::uint32_t skip = 0);

/// Classify all samples at `threshold`.
[[nodiscard]] Rates classify(const std::vector<TrialSamples>& trials, double threshold);

/// One ROC point per threshold.
struct RocPoint {
  double threshold = 0.0;
  Rates rates;
};
[[nodiscard]] std::vector<RocPoint> roc_sweep(const std::vector<TrialSamples>& trials,
                                              const std::vector<double>& thresholds);

/// The largest deviation observed across all clean-trial iterations — the
/// noise floor a calibrated deployment would set its threshold just above
/// (§6: "the threshold is set empirically in a given network when
/// calibrating the system"). NaN when there are no clean samples at all:
/// a floor of 0.0 would silently calibrate the threshold to zero.
[[nodiscard]] double noise_floor(const std::vector<TrialSamples>& clean_trials);

}  // namespace flowpulse::exp
