#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "collective/demand_matrix.h"
#include "core/units.h"
#include "collective/runner.h"
#include "collective/schedule.h"
#include "ctrl/controller.h"
#include "flowpulse/fastforward.h"
#include "flowpulse/fidelity.h"
#include "flowpulse/system.h"
#include "net/fat_tree.h"
#include "obs/trace.h"
#include "sim/lane_runner.h"
#include "sim/simulator.h"
#include "transport/transport_layer.h"

namespace flowpulse::exp {

/// A silent fault to inject during the run.
struct NewFault {
  enum class Where : std::uint8_t { kDownlink, kUplink, kBoth };
  net::LeafId leaf{};
  net::UplinkIndex uplink{};
  Where where = Where::kBoth;
  net::FaultSpec spec{};
};

/// Complete description of one experiment run: fabric, faults, workload,
/// and the FlowPulse deployment. This is the paper's §6 setup in one
/// struct; defaults match the paper's defaults (32 leaves × 16 spines,
/// Ring-AllReduce over one host per leaf, lossless fabric, 5 µs RTO,
/// analytical model, 1% threshold).
struct ScenarioConfig {
  net::FatTreeConfig fabric{};
  transport::TransportConfig transport{};

  // Workload.
  collective::CollectiveKind collective = collective::CollectiveKind::kRingReduceScatter;
  core::Bytes collective_bytes{8ull << 20};
  std::uint32_t iterations = 6;
  sim::Time compute_gap = sim::Time::microseconds(10);
  sim::Time max_jitter = sim::Time::microseconds(1);
  bool validate_data = false;

  /// Optional second, unmeasured job sharing the fabric (paper §5.1 /
  /// §7 "Parallel Jobs"): an untagged ring collective at kBackground
  /// priority over the same hosts, continuously re-iterating until the
  /// measured job finishes. bytes == 0 disables it.
  struct BackgroundJob {
    core::Bytes bytes{};
    net::Priority priority = net::Priority::kBackground;
  };
  BackgroundJob background{};

  // Faults.
  std::vector<std::pair<net::LeafId, net::UplinkIndex>> preexisting;  ///< known, disconnected
  std::vector<NewFault> new_faults;                                   ///< silent

  // FlowPulse deployment.
  fp::SystemConfig flowpulse{};
  /// Iterations the nested prediction run simulates (kSimulation model).
  std::uint32_t sim_model_iterations = 2;

  /// Closed-loop mitigation (ctrl::MitigationController). Only wired for the
  /// fixed-model modes (kAnalytical / kSimulation): re-baselining means
  /// re-running the analytical prediction over the updated RoutingState.
  ctrl::MitigationPolicy mitigation{};

  /// Hybrid-fidelity engine (fp::FidelityPolicy). kPacket (the default)
  /// runs the untouched packet-level path. kHybrid / kFlow fast-forward
  /// healthy iterations analytically; they require a fixed model
  /// (kAnalytical / kSimulation) and no background job — unsupported
  /// scenarios silently fall back to packet fidelity (result.fidelity
  /// reports what actually ran).
  fp::FidelityPolicy fidelity{};

  /// Flight-recorder tracing. Only honored in builds configured with
  /// -DFLOWPULSE_TRACE=ON; trace.level == kOff additionally defers to the
  /// FLOWPULSE_TRACE environment variable (obs::env_level()), so a traced
  /// build can be flipped on per-run without code changes.
  obs::TraceConfig trace{};

  /// Sharded event lanes (conservative-PDES parallel simulation): the
  /// fabric is partitioned across `lanes` Simulators — lane 0 drives hosts,
  /// transport and the collective; leaves and spines round-robin over the
  /// rest — and a sim::LaneRunner executes them in lock-step rounds bounded
  /// by the minimum cross-lane link latency. Results are bit-identical to
  /// the serial engine. -1 (default) consults FLOWPULSE_LANES; 0/1 force
  /// serial; >= 2 shards. Scenarios the laned engine cannot shard
  /// deterministically (probabilistic faults, hybrid fidelity, background
  /// job, mitigation, dynamic model, tracing) silently fall back to serial.
  std::int32_t lanes = -1;

  std::uint64_t seed = 1;
  /// Safety cap on simulated time.
  sim::Time horizon = sim::Time::seconds(10);
};

/// What one run produced.
struct ScenarioResult {
  std::uint32_t iterations_completed = 0;
  bool data_valid = true;

  /// iteration → largest relative deviation any leaf reported.
  std::vector<double> per_iter_max_dev;
  /// iteration → was a new (silent) fault active while it ran?
  std::vector<std::uint8_t> iter_fault_active;
  /// (start, end) of each completed iteration.
  std::vector<std::pair<sim::Time, sim::Time>> iter_windows;

  std::vector<fp::DetectionResult> detections;  ///< every leaf × iteration check
  std::vector<fp::FlowPulseSystem::LearnedOutcome> learned;

  /// Control-plane actions the MitigationController took, in order (empty
  /// when mitigation is disabled), plus its recovery milestones.
  std::vector<ctrl::MitigationEvent> mitigation_events;
  ctrl::RecoveryTimeline recovery{};

  /// What the hybrid engine did (fidelity.enabled == false for pure packet
  /// runs, including fallbacks).
  fp::FidelityStats fidelity{};

  transport::TransportStats transport_stats{};
  net::LinkCounters fabric_counters{};
  sim::Time sim_end = sim::Time::zero();
  std::uint64_t events = 0;
  double wall_seconds = 0.0;

  /// Flight-recorder output. Empty unless the build traces
  /// (-DFLOWPULSE_TRACE=ON) and a runtime level was set.
  std::vector<obs::TraceEvent> trace_events;  ///< final retained window
  std::uint64_t trace_dropped = 0;            ///< ring overflow across the run
  std::vector<obs::TraceDump> trace_dumps;    ///< automatic on-alert snapshots
};

/// Builds and runs one experiment. The pieces stay accessible between
/// construction and run() so benches can customize (e.g. attach a prober
/// or a second background job).
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  /// Run to completion and summarize.
  ScenarioResult run();

  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  /// True when this scenario actually runs sharded (config.lanes resolved
  /// to >= 2 AND the scenario passed the deterministic-sharding gate).
  [[nodiscard]] bool laned() const { return lane_runner_ != nullptr; }
  [[nodiscard]] net::FatTree& fabric() { return *fabric_; }
  [[nodiscard]] transport::TransportLayer& transports() { return *transports_; }
  [[nodiscard]] collective::CollectiveRunner& runner() { return *runner_; }
  [[nodiscard]] fp::FlowPulseSystem& flowpulse() { return *flowpulse_; }
  /// Present iff config.mitigation.enabled and the model is fixed
  /// (kAnalytical / kSimulation).
  [[nodiscard]] ctrl::MitigationController* controller() { return controller_.get(); }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] const collective::CommSchedule& schedule() const { return schedule_; }
  [[nodiscard]] const collective::DemandMatrix& demand() const { return demand_; }

  /// The prediction FlowPulse was armed with (empty for kLearned).
  [[nodiscard]] const fp::PortLoadMap* prediction() const { return prediction_.get(); }

  /// The flight recorder feeding the run, nullptr when tracing is off.
  [[nodiscard]] obs::FlightRecorder* recorder() { return recorder_.get(); }

 private:
  void build();
  [[nodiscard]] fp::PortLoadMap analytical_prediction() const;
  [[nodiscard]] fp::PortLoadMap simulation_prediction() const;
  void apply_new_faults();
  [[nodiscard]] bool fault_active_during(sim::Time start, sim::Time end) const;
  void maybe_dump(const fp::DetectionResult& result);
  void run_hybrid();
  /// A configured silent fault on a link routing still uses is active in
  /// [start, end) — the hybrid engine's fault-guard demotion test.
  [[nodiscard]] bool unquarantined_fault_during(sim::Time start, sim::Time end) const;

  ScenarioConfig config_;
  collective::CommSchedule schedule_;
  collective::DemandMatrix demand_;
  std::unique_ptr<sim::Simulator> sim_;
  /// Extra lanes (lane 1..n-1) of a sharded run; sim_ is always lane 0.
  std::vector<std::unique_ptr<sim::Simulator>> extra_lanes_;
  std::unique_ptr<sim::LaneRunner> lane_runner_;
  std::unique_ptr<net::FatTree> fabric_;
  std::unique_ptr<transport::TransportLayer> transports_;
  std::unique_ptr<collective::CollectiveRunner> runner_;
  std::unique_ptr<collective::CollectiveRunner> background_runner_;
  std::unique_ptr<fp::FlowPulseSystem> flowpulse_;
  std::unique_ptr<ctrl::MitigationController> controller_;
  std::unique_ptr<fp::PortLoadMap> prediction_;
  std::unique_ptr<fp::FastForwardModel> fastforward_;
  bool hybrid_active_ = false;
  fp::FidelityStats fidelity_stats_;
  std::vector<std::pair<sim::Time, sim::Time>> iter_windows_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::vector<obs::TraceDump> trace_dumps_;
  std::size_t traced_mitigations_ = 0;
};

/// The ring placement used throughout the paper's evaluation: one rank per
/// host, rank i on host i (with one host per leaf this makes every leaf a
/// single non-local sender and receiver — the jitter-robust condition §5.1).
[[nodiscard]] std::vector<net::HostId> all_hosts_ring(const net::TopologyInfo& info);

/// Build the schedule for a ScenarioConfig over all hosts of the topology.
[[nodiscard]] collective::CommSchedule make_schedule(collective::CollectiveKind kind,
                                                     const net::TopologyInfo& shape,
                                                     core::Bytes total_bytes);

}  // namespace flowpulse::exp
