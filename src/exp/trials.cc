#include "exp/trials.h"

namespace flowpulse::exp {

unsigned env_jobs() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read before the worker pool
  // spawns; nothing in the process calls setenv
  if (const char* s = std::getenv("FLOWPULSE_JOBS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

std::vector<TrialSamples> run_trials_parallel(const ScenarioConfig& config, std::uint32_t n,
                                              std::uint32_t skip, unsigned jobs) {
  return parallel_indexed<TrialSamples>(n, jobs, [&config, skip](std::uint32_t t) {
    ScenarioConfig c = config;
    c.seed = trial_seed(config.seed, t);
    Scenario scenario{std::move(c)};
    return samples_from(scenario.run(), skip);
  });
}

}  // namespace flowpulse::exp
