#include "exp/scenario.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>

#include "exp/trials.h"
#include "flowpulse/analytical_model.h"
#include "obs/export.h"

namespace flowpulse::exp {
namespace {

// audit::ScopedDumpHook target: when an invariant dies mid-run, write the
// flight recorder's retained window to stderr before the abort / test
// throw, so the causal event trail survives the crash.
void dump_recorder_on_audit_failure(void* ctx, const sim::audit::Violation& v) {
  const auto* recorder = static_cast<const obs::FlightRecorder*>(ctx);
  std::fprintf(stderr,
               "[flowpulse-trace] flight recorder at %s failure (%zu events, %llu lost "
               "to ring wrap):\n",
               v.invariant.c_str(), recorder->size(),
               static_cast<unsigned long long>(recorder->dropped()));
  const std::string timeline = obs::text_timeline(recorder->snapshot());
  std::fputs(timeline.c_str(), stderr);
  std::fflush(stderr);
}

}  // namespace

std::vector<net::HostId> all_hosts_ring(const net::TopologyInfo& info) {
  std::vector<net::HostId> hosts(info.num_hosts(), net::HostId{});
  for (const net::HostId h : core::ids<net::HostId>(info.num_hosts())) hosts[h.v()] = h;
  return hosts;
}

collective::CommSchedule make_schedule(collective::CollectiveKind kind,
                                       const net::TopologyInfo& shape,
                                       core::Bytes total_bytes) {
  using collective::CollectiveKind;
  const std::uint32_t ranks = shape.num_hosts();
  switch (kind) {
    case CollectiveKind::kRingAllReduce:
      return collective::ring_all_reduce(ranks, total_bytes);
    case CollectiveKind::kRingReduceScatter:
      return collective::ring_reduce_scatter(ranks, total_bytes);
    case CollectiveKind::kRingAllGather:
      return collective::ring_all_gather(ranks, total_bytes);
    case CollectiveKind::kAllToAll:
      // total_bytes is interpreted as the whole collective; split per pair.
      return collective::all_to_all(
          ranks, total_bytes / (static_cast<std::uint64_t>(ranks) * (ranks - 1)));
    case CollectiveKind::kHierarchicalRing:
      // One group per leaf; leaders run the inter-leaf ring.
      return collective::hierarchical_ring_all_reduce(shape.leaves, shape.hosts_per_leaf,
                                                      total_bytes);
  }
  return collective::ring_reduce_scatter(ranks, total_bytes);
}

Scenario::Scenario(ScenarioConfig config)
    : config_{std::move(config)},
      schedule_{make_schedule(config_.collective, config_.fabric.shape,
                              config_.collective_bytes)},
      demand_{collective::DemandMatrix::from_schedule(
          schedule_, all_hosts_ring(config_.fabric.shape), config_.fabric.shape.num_hosts())} {
  build();
}

Scenario::~Scenario() = default;

void Scenario::build() {
  config_.fabric.seed = config_.seed;
  sim_ = std::make_unique<sim::Simulator>(config_.seed);
  // Pre-size the event heap from the expected packet population. The
  // steady-state pending set is bounded by transport windows, not total
  // packet count: each in-flight segment holds at most an RTO timer plus a
  // serialization and a propagation event, and earns an ACK with the same
  // footprint. Tiny collectives are capped by their actual segment count.
  const std::uint64_t total_segments =
      (config_.collective_bytes.v() + config_.transport.mtu_payload - 1) /
      config_.transport.mtu_payload;
  const std::uint64_t in_flight =
      std::min<std::uint64_t>(total_segments,
                              static_cast<std::uint64_t>(config_.fabric.shape.num_hosts()) *
                                  config_.transport.window);
  sim_->reserve_events(static_cast<std::size_t>(6 * in_flight + 64));
#if FP_TRACE_ENABLED
  // Tracing is armed before any component exists so even wiring-time and
  // first-iteration events land in the ring. An explicit config level wins;
  // kOff defers to the FLOWPULSE_TRACE environment variable.
  const obs::TraceLevel trace_level = config_.trace.level != obs::TraceLevel::kOff
                                          ? config_.trace.level
                                          : obs::env_level();
  if (trace_level != obs::TraceLevel::kOff) {
    recorder_ = std::make_unique<obs::FlightRecorder>(config_.trace.capacity);
    recorder_->set_level(trace_level);
    sim_->set_trace(recorder_.get());
  }
#endif
  // Sharded event lanes. Only scenarios whose every source of randomness
  // is lane-local (or never consulted) can shard without diverging from
  // the serial engine: probabilistic faults draw from the fabric-wide
  // fault RNG in packet order, which lanes would replay differently, and
  // the stop()-driven engines (hybrid fidelity, background job), eager
  // closed-loop consumers (mitigation, dynamic model) and the
  // simulator-bound flight recorder all assume the single-queue serial
  // loop. Anything else silently falls back to serial, exactly like the
  // hybrid engine's own fallback.
  const std::int32_t lanes_requested = config_.lanes >= 0 ? config_.lanes : env_lanes();
  bool deterministic_faults = true;
  for (const NewFault& f : config_.new_faults) {
    if (f.spec.kind != net::FaultSpec::Kind::kNone && !f.spec.drops_all()) {
      deterministic_faults = false;
    }
  }
  const bool laned = lanes_requested >= 2 &&
                     config_.fidelity.mode == fp::FidelityMode::kPacket &&
                     config_.background.bytes == core::Bytes{0} &&
                     !config_.mitigation.enabled &&
                     config_.flowpulse.model != fp::ModelKind::kDynamic &&
                     recorder_ == nullptr && deterministic_faults;
  if (laned) {
    // Lane 0 keeps the trial seed (host/transport/collective randomness is
    // identical to serial); extra lanes get streams split deterministically
    // from it. In practice the extra-lane streams are never drawn from —
    // switch-side randomness is per-switch or gated out above — but a lane
    // must never be seedless.
    std::vector<sim::Simulator*> lane_ptrs{sim_.get()};
    for (std::int32_t k = 1; k < lanes_requested; ++k) {
      extra_lanes_.push_back(std::make_unique<sim::Simulator>(
          config_.seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(k))));
      lane_ptrs.push_back(extra_lanes_.back().get());
    }
    fabric_ = std::make_unique<net::FatTree>(lane_ptrs, config_.fabric);
    lane_runner_ = std::make_unique<sim::LaneRunner>(
        std::vector<sim::EventLane*>(lane_ptrs.begin(), lane_ptrs.end()),
        fabric_->min_cross_lane_latency());
  } else {
    fabric_ = std::make_unique<net::FatTree>(*sim_, config_.fabric);
  }

  // Known pre-existing failures first: they shape both routing and the
  // prediction.
  for (const auto& [leaf, uplink] : config_.preexisting) {
    fabric_->disconnect_known(leaf, uplink);
  }

  transports_ = std::make_unique<transport::TransportLayer>(*sim_, *fabric_, config_.transport);

  flowpulse_ = std::make_unique<fp::FlowPulseSystem>(*fabric_, config_.flowpulse);
  // Sharded monitors finalize on their own lanes; evaluation is deferred to
  // the post-drain flush and replayed in canonical (iteration, leaf) order.
  if (lane_runner_ != nullptr) flowpulse_->set_deferred_evaluation(true);
  switch (config_.flowpulse.model) {
    case fp::ModelKind::kAnalytical:
      prediction_ = std::make_unique<fp::PortLoadMap>(analytical_prediction());
      flowpulse_->set_prediction(*prediction_);
      break;
    case fp::ModelKind::kSimulation:
      prediction_ = std::make_unique<fp::PortLoadMap>(simulation_prediction());
      flowpulse_->set_prediction(*prediction_);
      break;
    case fp::ModelKind::kLearned:
      break;  // the system learns in-band
  }

  // The hybrid engine needs a fixed model to synthesize against and owns
  // the iteration loop, which the background job's free-running runner is
  // incompatible with; anything else falls back to the packet path.
  hybrid_active_ = config_.fidelity.mode != fp::FidelityMode::kPacket &&
                   prediction_ != nullptr && config_.background.bytes == core::Bytes{0};
  if (hybrid_active_) {
    fp::FastForwardModel::Config ffc;
    ffc.mtu_payload = config_.transport.mtu_payload;
    ffc.header_bytes = net::kHeaderBytes;
    ffc.noise_rel = config_.fidelity.noise_rel;
    ffc.fault_model = config_.fidelity.flow_fault_model;
    ffc.seed = config_.seed ^ 0xf1de11ull;
    fastforward_ = std::make_unique<fp::FastForwardModel>(config_.fabric.shape, ffc);
    std::vector<fp::FastForwardModel::FlowFault> faults;
    for (const NewFault& f : config_.new_faults) {
      fp::FastForwardModel::FlowFault ff;
      ff.leaf = f.leaf;
      ff.uplink = f.uplink;
      ff.uplink_dir = f.where != NewFault::Where::kDownlink;
      ff.downlink_dir = f.where != NewFault::Where::kUplink;
      ff.spec = f.spec;
      faults.push_back(ff);
    }
    fastforward_->set_faults(std::move(faults));
    fastforward_->rebaseline(demand_, fabric_->routing());
  }

  if (config_.mitigation.enabled && prediction_ != nullptr) {
    controller_ = std::make_unique<ctrl::MitigationController>(*sim_, fabric_->routing(),
                                                               config_.mitigation);
    // Re-baseline = re-run the closed-form model over the updated failed
    // set: a quarantined uplink becomes a *known* fault, exactly what
    // d/(s−f) absorbs. The fast-forward synthesis follows the same routing.
    controller_->set_rebaseline([this] {
      *prediction_ = analytical_prediction();
      flowpulse_->set_prediction(*prediction_);
      if (fastforward_) fastforward_->rebaseline(demand_, fabric_->routing());
    });
    controller_->attach(*flowpulse_);
  }

  if (recorder_ != nullptr && config_.trace.dump_on_alert) {
    // Replace the alert hook (controller_->attach installed its own) with a
    // wrapper that runs the controller first: any quarantine the result
    // triggers is already in the ring when the dump snapshots it.
    ctrl::MitigationController* controller = controller_.get();
    flowpulse_->set_alert_hook([this, controller](const fp::DetectionResult& r) {
      if (controller != nullptr) controller->observe(r);
      maybe_dump(r);
    });
  }

  apply_new_faults();

  collective::CollectiveConfig cc;
  cc.hosts = all_hosts_ring(config_.fabric.shape);
  cc.schedule = schedule_;
  cc.iterations = config_.iterations;
  cc.compute_gap = config_.compute_gap;
  cc.max_jitter = config_.max_jitter;
  cc.validate_data = config_.validate_data;
  cc.auto_advance = !hybrid_active_;  // the hybrid loop steps iterations itself
  runner_ = std::make_unique<collective::CollectiveRunner>(*sim_, *transports_, std::move(cc));
  runner_->add_iteration_hook([this](net::IterIndex, sim::Time start, sim::Time end) {
    iter_windows_.emplace_back(start, end);
  });
  if (hybrid_active_) {
    // Manual stepping: halt the event loop the moment the iteration
    // completes. Without this, run_until(horizon) would drain the stale-RTO
    // tail and then clamp the clock all the way to the horizon.
    runner_->add_iteration_hook(
        [this](net::IterIndex, sim::Time, sim::Time) { sim_->stop(); });
  }

  if (config_.background.bytes > core::Bytes{0}) {
    collective::CollectiveConfig bg;
    bg.hosts = all_hosts_ring(config_.fabric.shape);
    bg.schedule = collective::ring_all_reduce(config_.fabric.shape.num_hosts(),
                                              config_.background.bytes);
    // Effectively unbounded: the run ends when the measured job finishes.
    bg.iterations = 1u << 30;
    bg.compute_gap = sim::Time::microseconds(1);
    bg.priority = config_.background.priority;
    bg.job_id = 1;
    bg.tag_flow = false;  // unmeasured
    background_runner_ =
        std::make_unique<collective::CollectiveRunner>(*sim_, *transports_, std::move(bg));
    // Stop the whole simulation shortly after the measured job completes so
    // the background job cannot spin forever.
    runner_->add_iteration_hook([this](net::IterIndex iteration, sim::Time, sim::Time) {
      if (iteration.v() + 1 == config_.iterations) {
        sim_->schedule_in(sim::Time::microseconds(1), [this] { sim_->stop(); });
      }
    });
  }
}

fp::PortLoadMap Scenario::analytical_prediction() const {
  const fp::AnalyticalModel model{config_.fabric.shape, config_.transport.mtu_payload,
                                  net::kHeaderBytes};
  return model.predict(demand_, fabric_->routing());
}

fp::PortLoadMap Scenario::simulation_prediction() const {
  // Nested fault-free-of-NEW-faults run of the same scenario; average the
  // monitors' per-iteration observations into the prediction. This is the
  // paper's "simulation-based model": highest fidelity, costs a simulation
  // before the job (§5.2).
  ScenarioConfig nested = config_;
  nested.new_faults.clear();
  nested.iterations = config_.sim_model_iterations;
  nested.flowpulse.model = fp::ModelKind::kAnalytical;  // prediction unused
  // The model-building run must measure real packets, whatever the outer
  // run's fidelity policy is.
  nested.fidelity = fp::FidelityPolicy{};
  // The nested model-building run stays serial: it is short, and sharding
  // it would nest a lane pool inside a possibly-laned outer run.
  nested.lanes = 0;
  nested.seed = config_.seed ^ 0x51b0a11ull;  // independent randomness
  Scenario inner{std::move(nested)};
  inner.run();

  const net::TopologyInfo& info = config_.fabric.shape;
  fp::PortLoadMap map{info.leaves, info.uplinks_per_leaf()};
  for (const net::LeafId l : core::ids<net::LeafId>(info.leaves)) {
    const auto& history = inner.flowpulse().monitor(l).history();
    if (history.empty()) continue;
    for (const fp::IterationRecord& rec : history) {
      for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(info.uplinks_per_leaf())) {
        fp::PortLoad& load = map.at(l, u);
        load.total += rec.bytes[u.v()];
        for (const net::LeafId s : core::ids<net::LeafId>(info.leaves)) {
          load.by_src_leaf[s.v()] += rec.by_src[u.v()][s.v()];
        }
      }
    }
    const double n = static_cast<double>(history.size());
    for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(info.uplinks_per_leaf())) {
      fp::PortLoad& load = map.at(l, u);
      load.total /= n;
      for (double& v : load.by_src_leaf) v /= n;
    }
  }
  return map;
}

void Scenario::apply_new_faults() {
  for (const NewFault& f : config_.new_faults) {
    switch (f.where) {
      case NewFault::Where::kDownlink:
        fabric_->set_downlink_fault(f.leaf, f.uplink, f.spec);
        break;
      case NewFault::Where::kUplink:
        fabric_->set_uplink_fault(f.leaf, f.uplink, f.spec);
        break;
      case NewFault::Where::kBoth:
        fabric_->set_link_fault(f.leaf, f.uplink, f.spec);
        break;
    }
  }
}

bool Scenario::fault_active_during(sim::Time start, sim::Time end) const {
  for (const NewFault& f : config_.new_faults) {
    if (f.spec.active_during(start, end)) return true;
  }
  return false;
}

bool Scenario::unquarantined_fault_during(sim::Time start, sim::Time end) const {
  for (const NewFault& f : config_.new_faults) {
    // A fault on a link routing already avoids sees no traffic; flow-level
    // synthesis is exact there and packet fidelity buys nothing.
    if (fabric_->routing().known_failed(f.leaf, f.uplink)) continue;
    if (f.spec.active_during(start, end)) return true;
  }
  return false;
}

// The hybrid loop: drive iterations one at a time, choosing per iteration
// between full packet simulation and flow-level fast-forward. Packet
// iterations run the real CollectiveRunner to quiescence and then flush the
// monitors so every leaf's record for iteration k is finalized (and judged)
// before iteration k+1 starts — preserving the controller's in-order
// completion assumption. Flow iterations advance the clock analytically and
// inject synthesized records through FlowPulseSystem::ingest.
void Scenario::run_hybrid() {
  fidelity_stats_ = fp::FidelityStats{};
  fidelity_stats_.enabled = true;
  fidelity_stats_.mode = config_.fidelity.mode;
  const bool flow_only = config_.fidelity.mode == fp::FidelityMode::kFlow;
  const std::uint32_t warmup =
      flow_only ? 0 : std::max<std::uint32_t>(1, config_.fidelity.warmup_iterations);
  const net::TopologyInfo& info = config_.fabric.shape;

  // Iteration-duration estimate for the fast-forward clock: packet-measured
  // EWMA in hybrid mode, analytic in pure flow mode (or the explicit knob).
  sim::Time est = config_.fidelity.flow_iteration_time;
  if (est <= sim::Time::zero()) {
    est = fastforward_->estimate_iteration_time(demand_, config_.fabric.host_link.bandwidth);
  }

  std::uint32_t hold = 0;          // alert-hold hysteresis, in iterations
  std::size_t seen_results = 0;    // results already scanned for alerts
  std::size_t seen_events = 0;     // mitigation events already seen
  bool prev_packet = true;

  for (std::uint32_t iter = 0; iter < config_.iterations; ++iter) {
    if (sim_->now() >= config_.horizon) break;

    bool packet = false;
    if (!flow_only) {
      const sim::Time span = est + config_.compute_gap;
      const sim::Time guard =
          sim::Time::picoseconds(span.ps() * (config_.fidelity.fault_guard_iterations + 1));
      const sim::Time guard_start =
          sim_->now() > guard ? sim_->now() - guard : sim::Time::zero();
      packet = iter < warmup || hold > 0 ||
               (controller_ != nullptr && controller_->fidelity_hold()) ||
               unquarantined_fault_during(guard_start, sim_->now() + guard);
    }
    if (iter > 0 && packet != prev_packet) {
      packet ? ++fidelity_stats_.demotions : ++fidelity_stats_.promotions;
      FP_TRACE(*sim_, kFidelity, "sim", iter, packet ? 1 : 0, 0, 0.0,
               packet ? "demote-to-packet" : "promote-to-flow");
    }
    prev_packet = packet;
    fidelity_stats_.iteration_mode.push_back(packet ? 1 : 0);

    if (packet) {
      ++fidelity_stats_.packet_iterations;
      // The runner only counts iterations it actually ran (flow-mode
      // iterations are invisible to it), so completion is "one more than
      // before", not "iter + 1".
      const std::uint32_t completed_before = runner_->completed_iterations();
      runner_->start_iteration(iter);
      sim_->run_until(config_.horizon);  // the stop hook halts at completion
      if (runner_->completed_iterations() == completed_before) {
        // Horizon hit mid-iteration: the iteration did not complete.
        --fidelity_stats_.packet_iterations;
        fidelity_stats_.iteration_mode.pop_back();
        break;
      }
      // Drain the compute gap BEFORE finalizing: in-flight duplicates,
      // trailing ACKs and stale RTO timers land here, so late data packets
      // fold into this iteration's record exactly as continuous packet mode
      // attributes them (a late duplicate always precedes iter+1's first
      // packet).
      sim_->fast_forward(sim_->now() + config_.compute_gap);
      // Finalize iteration `iter` at every monitor now (packet mode would
      // have waited for iteration iter+1's first packet, which may never be
      // simulated); results flow to the detector/controller here.
      flowpulse_->flush();
      const auto& durations = runner_->iteration_durations();
      if (!durations.empty()) {
        const sim::Time d = durations.back();
        // EWMA (alpha = 1/2) over measured packet iterations.
        est = iter < warmup ? d : sim::Time::picoseconds((est.ps() + d.ps()) / 2);
      }
    } else {
      ++fidelity_stats_.flow_iterations;
      const sim::Time start = sim_->now();
      const sim::Time end = start + est;
      sim_->fast_forward(end);
      for (const net::LeafId l : core::ids<net::LeafId>(info.leaves)) {
        flowpulse_->ingest(fastforward_->synthesize(l, net::IterIndex{iter}, start, end));
      }
      iter_windows_.emplace_back(start, end);
      sim_->fast_forward(end + config_.compute_gap);
    }

    // Hysteresis: any alerted check or controller action demotes the NEXT
    // alert_hold_iterations to packets, so debounce/probation judge real
    // traffic end-to-end.
    bool activity = false;
    const auto& results = flowpulse_->results();
    for (; seen_results < results.size(); ++seen_results) {
      if (results[seen_results].faulty()) activity = true;
    }
    if (controller_ != nullptr && controller_->events().size() > seen_events) {
      seen_events = controller_->events().size();
      activity = true;
    }
    if (activity && !flow_only) {
      hold = config_.fidelity.alert_hold_iterations;
    } else if (hold > 0) {
      --hold;
    }
  }
  flowpulse_->flush();
}

// Snapshot the ring when a (leaf × iteration) check flagged ports or drove
// the controller to act — the retained window is the causal context of the
// alert. One dump per iteration (every leaf reports each iteration), capped
// at trace.max_dumps per run.
void Scenario::maybe_dump(const fp::DetectionResult& result) {
  const std::size_t mitigations = controller_ != nullptr ? controller_->events().size() : 0;
  const bool mitigated = mitigations > traced_mitigations_;
  traced_mitigations_ = mitigations;
  if (!result.faulty() && !mitigated) return;
  if (trace_dumps_.size() >= config_.trace.max_dumps) return;
  if (!trace_dumps_.empty() && trace_dumps_.back().iteration == result.iteration.v()) return;
  obs::TraceDump d;
  d.reason = (mitigated ? "mitigation leaf" : "detector-flag leaf") +
             std::to_string(result.leaf.v()) + " iter" + std::to_string(result.iteration.v());
  d.at = sim_->now();
  d.iteration = result.iteration.v();
  d.dropped = recorder_->dropped();
  d.events = recorder_->snapshot();
  trace_dumps_.push_back(std::move(d));
}

ScenarioResult Scenario::run() {
  // detlint: ok(wall-clock): wall_seconds is throughput reporting only; it
  // never feeds simulation state or results, and steady_clock is monotonic.
  const auto wall_start = std::chrono::steady_clock::now();
  std::optional<sim::audit::ScopedDumpHook> audit_dump;
  if (recorder_ != nullptr) {
    audit_dump.emplace(&dump_recorder_on_audit_failure, recorder_.get());
  }
  if (hybrid_active_) {
    run_hybrid();
  } else if (lane_runner_ != nullptr) {
    runner_->start();
    lane_runner_->run_until(config_.horizon);
    flowpulse_->flush();
  } else {
    runner_->start();
    if (background_runner_) background_runner_->start();
    sim_->run_until(config_.horizon);
    flowpulse_->flush();
  }
  // detlint: ok(wall-clock): end stamp of the reporting-only wall duration.
  const auto wall_end = std::chrono::steady_clock::now();

  ScenarioResult r;
  // Fast-forwarded iterations complete without touching the runner.
  r.iterations_completed =
      hybrid_active_ ? static_cast<std::uint32_t>(fidelity_stats_.iteration_mode.size())
                     : runner_->completed_iterations();
  r.data_valid = runner_->data_valid();
  r.per_iter_max_dev = flowpulse_->per_iteration_max_dev();
  r.detections = flowpulse_->results();
  r.learned = flowpulse_->learned_outcomes();
  // Canonical (iteration, leaf) report order on EVERY path. The serial
  // engine finalizes leaf records in packet-arrival order, which is an
  // engine scheduling detail, not a result; sorting here makes serial and
  // laned reports byte-identical and pins the goldens to the semantic
  // content.
  std::stable_sort(r.detections.begin(), r.detections.end(),
                   [](const fp::DetectionResult& a, const fp::DetectionResult& b) {
                     if (a.iteration.v() != b.iteration.v()) {
                       return a.iteration.v() < b.iteration.v();
                     }
                     return a.leaf.v() < b.leaf.v();
                   });
  std::stable_sort(r.learned.begin(), r.learned.end(),
                   [](const fp::FlowPulseSystem::LearnedOutcome& a,
                      const fp::FlowPulseSystem::LearnedOutcome& b) {
                     if (a.iteration.v() != b.iteration.v()) {
                       return a.iteration.v() < b.iteration.v();
                     }
                     return a.leaf.v() < b.leaf.v();
                   });
  r.iter_windows = iter_windows_;
  r.iter_fault_active.reserve(iter_windows_.size());
  for (const auto& [start, end] : iter_windows_) {
    r.iter_fault_active.push_back(fault_active_during(start, end) ? 1 : 0);
  }
  if (controller_) {
    r.mitigation_events = controller_->events();
    r.recovery = controller_->timeline();
  }
  r.fidelity = fidelity_stats_;
  r.transport_stats = transports_->total_stats();
  r.fabric_counters = fabric_->total_fabric_counters();
  // Report when the workload actually finished, not the safety horizon the
  // clock may have idled to.
  r.sim_end = iter_windows_.empty() ? sim_->now() : iter_windows_.back().second;
  // Laned runs report the sum over lanes, which equals the serial count
  // event for event (each cross-lane message costs exactly the one
  // delivery event its serial schedule_in counterpart would).
  r.events = lane_runner_ != nullptr ? lane_runner_->events_executed() : sim_->events_executed();
  r.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  if (recorder_ != nullptr) {
    r.trace_events = recorder_->snapshot();
    r.trace_dropped = recorder_->dropped();
    r.trace_dumps = trace_dumps_;
  }
  return r;
}

}  // namespace flowpulse::exp
