#pragma once

#include <cstdint>

namespace flowpulse::sim {

/// Deterministic xoshiro256** generator. All randomness in a scenario flows
/// from one root Rng (or children split from it), so a run is reproducible
/// from its seed alone.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double();

  /// True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Derive an independent child generator; deterministic given this
  /// generator's state. Useful to give subsystems their own streams.
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4]{};
};

}  // namespace flowpulse::sim
