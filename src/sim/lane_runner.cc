#include "sim/lane_runner.h"

#include <mutex>
#include <utility>

namespace flowpulse::sim {

// std::condition_variable_any needs a lock object it can release and
// reacquire; std::unique_lock<core::Mutex> carries no capability
// annotations, so each method below is the documented analysis boundary
// (see the struct comment). The runtime locking is exactly what the
// annotations describe: every guarded field is only touched under mu_.

// NOLINTBEGIN(clang-analyzer-*): lock juggling is by cv contract
void LaneRunnerState::publish_round(Time h) FP_NO_THREAD_SAFETY_ANALYSIS {
  {
    const std::lock_guard<core::Mutex> lock{mu};
    horizon = h;
    ++round;
    workers_done = 0;
  }
  cv_start.notify_all();
}

std::uint64_t LaneRunnerState::await_round(std::uint64_t last_seen, bool& shut, Time& h)
    FP_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<core::Mutex> lock{mu};
  cv_start.wait(lock, [&] { return shutdown || round != last_seen; });
  shut = shutdown;
  h = horizon;
  return round;
}

void LaneRunnerState::worker_done() FP_NO_THREAD_SAFETY_ANALYSIS {
  {
    const std::lock_guard<core::Mutex> lock{mu};
    ++workers_done;
  }
  cv_done.notify_one();
}

void LaneRunnerState::await_workers(std::uint32_t count) FP_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<core::Mutex> lock{mu};
  cv_done.wait(lock, [&] { return workers_done >= count; });
}

void LaneRunnerState::request_shutdown() FP_NO_THREAD_SAFETY_ANALYSIS {
  {
    const std::lock_guard<core::Mutex> lock{mu};
    shutdown = true;
  }
  cv_start.notify_all();
}

void LaneRunnerState::record_error(std::exception_ptr e) FP_NO_THREAD_SAFETY_ANALYSIS {
  const std::lock_guard<core::Mutex> lock{mu};
  if (!first_error) first_error = std::move(e);
}

std::exception_ptr LaneRunnerState::take_error() FP_NO_THREAD_SAFETY_ANALYSIS {
  const std::lock_guard<core::Mutex> lock{mu};
  return std::exchange(first_error, nullptr);
}
// NOLINTEND(clang-analyzer-*)

LaneRunner::LaneRunner(std::vector<EventLane*> lanes, Time lookahead, unsigned jobs)
    : lanes_{std::move(lanes)}, lookahead_{lookahead}, jobs_{jobs} {
  const auto n = static_cast<std::uint32_t>(lanes_.size());
  for (std::uint32_t i = 0; i < n; ++i) lanes_[i]->configure_lane(i, n);
  if (jobs_ == 0) jobs_ = n;  // one worker per lane: full contention under tsan
  if (jobs_ > n) jobs_ = n;
  if (n <= 1 || jobs_ <= 1) {
    jobs_ = 1;  // inline rounds, no threads
    return;
  }
  pool_.reserve(jobs_);
  for (unsigned j = 0; j < jobs_; ++j) pool_.emplace_back([this] { worker_loop(); });
}

LaneRunner::~LaneRunner() {
  if (!pool_.empty()) {
    state_.request_shutdown();
    for (std::thread& th : pool_) th.join();
  }
}

std::uint64_t LaneRunner::events_executed() const {
  std::uint64_t total = 0;
  for (const EventLane* lane : lanes_) total += lane->events_executed();
  return total;
}

void LaneRunner::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    bool shut = false;
    Time h = Time::zero();
    seen = state_.await_round(seen, shut, h);
    if (shut) return;
    for (;;) {
      const std::uint32_t i = state_.next_lane.fetch_add(1, std::memory_order_relaxed);
      if (i >= lanes_.size()) break;
      try {
        lanes_[i]->run_window(h);
      } catch (...) {
        state_.record_error(std::current_exception());
      }
    }
    state_.worker_done();
  }
}

void LaneRunner::execute_round(Time horizon) {
  if (pool_.empty()) {
    // Inline serial rounds, lanes in index order — the reference order the
    // parallel path must (and does) reproduce bit-for-bit.
    for (EventLane* lane : lanes_) lane->run_window(horizon);
    return;
  }
  state_.next_lane.store(0, std::memory_order_relaxed);
  state_.publish_round(horizon);
  state_.await_workers(jobs_);
  if (std::exception_ptr e = state_.take_error()) std::rethrow_exception(e);
}

void LaneRunner::run_until(Time deadline) {
  drained_ = false;
  for (;;) {
    for (EventLane* lane : lanes_) lane->stage_inbox();
    Time lb = Time::max();
    for (EventLane* lane : lanes_) {
      const Time b = lane->next_event_bound();
      if (b < lb) lb = b;
    }
    if (lb == Time::max()) {
      drained_ = true;
      break;
    }
    if (lb > deadline) break;
    Time h = lb + lookahead_;
    if (h < lb) h = Time::max();  // saturate on overflow
    if (deadline != Time::max() && h > deadline) {
      // run_window executes strictly-before-h; +1ps includes events exactly
      // at the deadline, matching run_until's inclusive `<= deadline`.
      h = deadline + Time::picoseconds(1);
    }
    execute_round(h);
    ++rounds_;
  }
  for (EventLane* lane : lanes_) lane->settle_to(deadline);
#if FP_AUDIT_ENABLED
  if (drained_) {
    for (EventLane* lane : lanes_) lane->audit_quiesce_now();
  }
#endif
}

}  // namespace flowpulse::sim
