#pragma once

// Historical home of the simulated-time strong type. The class itself
// lives in core/time.h now (core/units.h needs it, and core may not
// depend on sim — the layering rule enforces the module DAG); this
// header keeps the sim::Time spelling every layer uses working.
//
// Note: only the detail:: scalar math is re-exported. There is
// deliberately NO sim::serialization_time(uint64, double) — the
// negcompile snippet raw_serialization_time.cc proves that spelling
// stays unresolvable, so product code must go through the strong-typed
// core::serialization_time(Bytes, GbitsPerSec).

#include "core/time.h"

namespace flowpulse::sim {

using core::Time;

namespace detail {

using core::detail::serialization_time;

}  // namespace detail

}  // namespace flowpulse::sim
