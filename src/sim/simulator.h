#pragma once

#include <cstdint>

#include "obs/trace.h"
#include "sim/audit.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

#if FP_AUDIT_ENABLED
#include <functional>
#include <vector>
#endif

namespace flowpulse::sim {

/// Discrete-event simulation driver: owns the virtual clock, the event
/// queue, and the root random stream. Every simulated component holds a
/// reference to its Simulator; there is no global state, so independent
/// simulations can coexist (the simulation-based load model runs a nested
/// Simulator inside a live experiment).
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_{seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedule `fn` to run `delay` after the current time.
  void schedule_in(Time delay, EventFn fn) {
    FP_AUDIT(delay >= Time::zero(), "event-monotonicity", "simulator", events_executed_,
             now_.ps(), "negative delay " + std::to_string(delay.ps()) + "ps");
    queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  void schedule_at(Time at, EventFn fn) {
    FP_AUDIT(at >= now_, "event-monotonicity", "simulator", events_executed_, now_.ps(),
             "schedule_at " + std::to_string(at.ps()) + "ps is before now");
    queue_.schedule(at, std::move(fn));
  }

  /// Pre-size the event heap for an expected number of simultaneously
  /// pending events (see EventQueue::reserve).
  void reserve_events(std::size_t n) { queue_.reserve(n); }

  /// Run until the event queue drains or `stop()` is called.
  void run();

  /// Run events with time <= `deadline`; the clock ends at
  /// min(deadline, time of last event) unless stopped.
  void run_until(Time deadline);

  /// Hybrid-fidelity fast-forward: advance the clock to `to`, executing any
  /// events due on the way (stale retransmission timers fire as no-ops).
  /// Semantically identical to run_until, but counted separately and traced
  /// (kFidelity) so reports and flight recordings show where simulated time
  /// was synthesized rather than earned event-by-event.
  void fast_forward(Time to);

  /// Stop the run loop after the current event returns.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }
  [[nodiscard]] std::uint64_t fast_forwards() const { return fast_forwards_; }
  [[nodiscard]] std::uint64_t events_scheduled() const { return queue_.scheduled_total(); }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

#if FP_AUDIT_ENABLED
  /// Register an invariant checked whenever the simulation quiesces (the
  /// event queue drains without stop()). Components register at wiring time
  /// and must outlive every subsequent run of this simulator.
  void audit_register_quiesce(std::function<void()> check) {
    audit_quiesce_checks_.push_back(std::move(check));
  }
#endif

#if FP_TRACE_ENABLED
  /// Install (or clear, with nullptr) the flight-recorder sink that FP_TRACE
  /// call sites across all layers emit into. The sink must outlive every
  /// subsequent run of this simulator. Trace-enabled builds only.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] obs::TraceSink* trace() const { return trace_; }
#endif

 private:
#if FP_AUDIT_ENABLED
  void audit_on_quiesce();
  std::vector<std::function<void()>> audit_quiesce_checks_;
#endif
#if FP_TRACE_ENABLED
  obs::TraceSink* trace_ = nullptr;
#endif
  EventQueue queue_;
  Time now_ = Time::zero();
  Rng rng_;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  std::uint64_t fast_forwards_ = 0;
};

}  // namespace flowpulse::sim
