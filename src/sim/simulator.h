#pragma once

#include "sim/event_lane.h"

namespace flowpulse::sim {

/// Discrete-event simulation driver: owns the virtual clock, the event
/// queue, and the root random stream. Every simulated component holds a
/// reference to its Simulator; there is no global state, so independent
/// simulations can coexist (the simulation-based load model runs a nested
/// Simulator inside a live experiment).
///
/// Simulator IS an EventLane (event_lane.h): the serial engine and one
/// shard of a sharded run are the same class, so a single-lane simulation
/// executes exactly the code every prior result was produced on, and a
/// LaneRunner (lane_runner.h) can drive a vector of Simulators as
/// conservatively-synchronized parallel lanes.
class Simulator : public EventLane {
 public:
  using EventLane::EventLane;
};

}  // namespace flowpulse::sim
