#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/time.h"

namespace flowpulse::sim {

/// The per-event unit of work. An allocation-free small-buffer callable:
/// scheduling an event never touches the heap (see inline_fn.h) — the only
/// allocations on the schedule path are the amortized growth of the heap
/// vector itself, which reserve() can eliminate too.
using EventFn = InlineFn;

/// Min-heap of timed events. Events scheduled for the same instant run in
/// insertion order (FIFO), which keeps simulations deterministic.
///
/// There is deliberately no cancellation: components that need revocable
/// timers (e.g. retransmission timeouts) check their own state when the
/// event fires and ignore stale firings. This keeps the hot path a plain
/// binary-heap push/pop.
class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`.
  void schedule(Time at, EventFn fn);

  /// Pre-size the heap storage for `n` simultaneously pending events so the
  /// steady state never regrows the vector mid-run.
  void reserve(std::size_t n) { heap_.reserve(n); }
  [[nodiscard]] std::size_t capacity() const { return heap_.capacity(); }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest event. Must not be called when empty().
  [[nodiscard]] Time next_time() const { return heap_.front().at; }

  struct Event {
    Time at;
    std::uint64_t seq = 0;
    EventFn fn;
  };
  /// Pop and return the earliest event. Must not be called when empty().
  Event pop();

  /// Total events ever scheduled (for throughput accounting).
  [[nodiscard]] std::uint64_t scheduled_total() const { return next_seq_; }

 private:
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    EventFn fn;
  };
  static_assert(sizeof(HeapEntry) <= 64, "heap entry should stay within one cache line");

  // Hand-rolled binary heap so we can move the EventFn out on pop
  // (std::priority_queue::top() is const) and sift with hole moves
  // instead of swaps.
  void sift_down_from(std::size_t i, HeapEntry e);
  [[nodiscard]] bool earlier(const HeapEntry& a, const HeapEntry& b) const {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;  // FIFO among simultaneous events
  }

  std::vector<HeapEntry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace flowpulse::sim
