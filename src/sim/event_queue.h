#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/time.h"

namespace flowpulse::sim {

/// The per-event unit of work. An allocation-free small-buffer callable:
/// scheduling an event never touches the heap (see inline_fn.h) — the only
/// allocations on the schedule path are the amortized growth of the heap
/// vector itself, which reserve() can eliminate too.
using EventFn = InlineFn;

/// Min-heap of timed events ordered by (fire time, schedule time, source
/// lane, per-source seq).
///
/// The provenance fields exist for the sharded-event-lane engine's
/// bit-identity contract. In a serial run every event is scheduled by the
/// one lane (src constant) and seq is assigned in execution order, which is
/// non-decreasing in schedule time — so the full key orders exactly like
/// the classic (fire time, FIFO seq) key and serial behavior is unchanged.
/// In a laned run, a cross-lane message imported via schedule_imported
/// carries the *source* lane's schedule instant and post counter, which
/// slots it among same-fire-time events precisely where the serial engine's
/// global FIFO counter would have: events whose schedulers ran earlier fire
/// first. (Only the sub-picosecond interleave of two *different* lanes
/// scheduling at the same instant is approximated — by source-lane id; see
/// event_lane.h.)
///
/// There is deliberately no cancellation: components that need revocable
/// timers (e.g. retransmission timeouts) check their own state when the
/// event fires and ignore stale firings. This keeps the hot path a plain
/// binary-heap push/pop.
class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`, recorded as scheduled now (the
  /// caller's clock `sched`) by lane `src`. FIFO among fully-equal keys.
  void schedule(Time at, Time sched, std::uint32_t src, EventFn fn);

  /// Import a cross-lane message with its source-side provenance: the
  /// source lane's clock when it posted and its post counter. Bumps the
  /// scheduled_total() accounting but not the local FIFO counter's order
  /// role — ordering against local events comes entirely from the key.
  void schedule_imported(Time at, Time sched, std::uint32_t src, std::uint64_t seq,
                         EventFn fn);

  /// Pre-size the heap storage for `n` simultaneously pending events so the
  /// steady state never regrows the vector mid-run.
  void reserve(std::size_t n) { heap_.reserve(n); }
  [[nodiscard]] std::size_t capacity() const { return heap_.capacity(); }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest event. Must not be called when empty().
  [[nodiscard]] Time next_time() const { return heap_.front().at; }

  struct Event {
    Time at;
    std::uint64_t seq = 0;  ///< packed (src lane, per-source seq) provenance
    EventFn fn;
  };
  /// Pop and return the earliest event. Must not be called when empty().
  Event pop();

  /// Total events ever scheduled (for throughput accounting).
  [[nodiscard]] std::uint64_t scheduled_total() const { return next_seq_; }

  /// Source lane in the top 16 bits, per-source FIFO counter in the low 48
  /// (2.8e14 events per source before wrap — and a wrap could only matter
  /// between two events tied at the same (fire, schedule) picosecond, which
  /// can never be 2^48 schedules apart). Packing both into one word keeps
  /// HeapEntry at one cache line.
  [[nodiscard]] static constexpr std::uint64_t pack_provenance(std::uint32_t src,
                                                               std::uint64_t seq) {
    return (static_cast<std::uint64_t>(src) << 48) | (seq & ((1ull << 48) - 1));
  }

 private:
  struct HeapEntry {
    Time at;
    Time sched;
    std::uint64_t prov;
    EventFn fn;
  };
  static_assert(sizeof(HeapEntry) <= 64, "heap entry should stay within one cache line");

  // Hand-rolled binary heap so we can move the EventFn out on pop
  // (std::priority_queue::top() is const) and sift with hole moves
  // instead of swaps.
  void push(HeapEntry entry);
  void sift_down_from(std::size_t i, HeapEntry e);
  [[nodiscard]] bool earlier(const HeapEntry& a, const HeapEntry& b) const {
    if (a.at != b.at) return a.at < b.at;
    if (a.sched != b.sched) return a.sched < b.sched;  // serial schedule order
    return a.prov < b.prov;  // (src lane, per-source seq): FIFO within a source
  }

  std::vector<HeapEntry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace flowpulse::sim
