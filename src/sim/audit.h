#pragma once

// Runtime invariant auditor (compile-time gated).
//
// Configure with -DFLOWPULSE_AUDIT=ON (the `audit` leg of
// tests/run_sanitized.sh) to compile conservation / monotonicity /
// exactly-once / PFC-liveness checks into every runtime layer. In the
// default build the FP_AUDIT macro expands to nothing, so the hot path
// carries zero cost and no audit state.
//
// A failing check produces a structured diagnostic naming the invariant,
// the entity (port / switch / transport / monitor) and the iteration or
// event index it was caught at, then aborts. Tests install a scoped
// handler that throws audit::ViolationError instead, which is how the
// negative-invariant tests in tests/test_audit.cc assert that each check
// actually fires (and with the right diagnostic).

#include <cstdint>
#include <string>

#if defined(FLOWPULSE_AUDIT) && FLOWPULSE_AUDIT
#define FP_AUDIT_ENABLED 1
#else
#define FP_AUDIT_ENABLED 0
#endif

namespace flowpulse::sim::audit {

/// One failed invariant, fully described.
struct Violation {
  std::string invariant;  ///< stable id, e.g. "link-conservation"
  std::string entity;     ///< which simulated object, e.g. "leaf3.up1"
  std::uint64_t iteration = 0;  ///< collective iteration / event index / msg id
  std::int64_t sim_time_ps = 0;
  std::string detail;     ///< the numbers that disagreed
};

/// Thrown by the scoped test handler so negative tests can catch and
/// inspect the diagnostic instead of dying.
class ViolationError : public std::exception {
 public:
  explicit ViolationError(Violation v) : v_{std::move(v)} {
    what_ = "[flowpulse-audit] invariant=" + v_.invariant + " entity=" + v_.entity;
  }
  [[nodiscard]] const char* what() const noexcept override { return what_.c_str(); }
  [[nodiscard]] const Violation& violation() const { return v_; }

 private:
  Violation v_;
  std::string what_;
};

/// Report a violation: runs the installed handler (tests), else prints the
/// structured diagnostic to stderr and aborts. Never returns normally —
/// either the handler throws or the process dies; continuing past a broken
/// invariant would report garbage results.
[[noreturn]] void fail(Violation v);

using Handler = void (*)(const Violation&);

/// RAII test hook: while alive, fail() calls `handler` (which must throw)
/// instead of aborting. Install/remove only while no simulation is running
/// on another thread.
class ScopedHandler {
 public:
  explicit ScopedHandler(Handler handler);
  ~ScopedHandler();
  ScopedHandler(const ScopedHandler&) = delete;
  ScopedHandler& operator=(const ScopedHandler&) = delete;

 private:
  Handler previous_;
};

using DumpHook = void (*)(void* ctx, const Violation& v);

/// RAII diagnostics hook: while alive, fail() invokes `hook(ctx, v)` before
/// the handler / abort path. exp::Scenario uses this to dump the flight
/// recorder's event window to stderr when an invariant dies mid-run, so the
/// causal trace survives the abort. Install/remove only while no simulation
/// is running on another thread; the hook must not throw.
class ScopedDumpHook {
 public:
  ScopedDumpHook(DumpHook hook, void* ctx);
  ~ScopedDumpHook();
  ScopedDumpHook(const ScopedDumpHook&) = delete;
  ScopedDumpHook& operator=(const ScopedDumpHook&) = delete;

 private:
  DumpHook previous_hook_;
  void* previous_ctx_;
};

}  // namespace flowpulse::sim::audit

// FP_AUDIT(cond, invariant, entity, iteration, sim_time_ps, detail)
//
// `detail` is only evaluated when the condition fails, so building the
// diagnostic string costs nothing on the passing path.
#if FP_AUDIT_ENABLED
#define FP_AUDIT(cond, invariant_, entity_, iteration_, sim_time_ps_, detail_)               \
  do {                                                                                       \
    if (!(cond)) {                                                                           \
      ::flowpulse::sim::audit::fail(::flowpulse::sim::audit::Violation{                      \
          (invariant_), (entity_), static_cast<std::uint64_t>(iteration_),                   \
          static_cast<std::int64_t>(sim_time_ps_), (detail_)});                              \
    }                                                                                        \
  } while (0)
#else
#define FP_AUDIT(cond, invariant_, entity_, iteration_, sim_time_ps_, detail_) ((void)0)
#endif
