#include "sim/audit.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace flowpulse::sim::audit {
namespace {

// Written only by ScopedHandler on the test thread while no simulation
// runs; read on the failure path. A plain pointer keeps the passing path
// free of synchronization (parallel trial workers never touch it unless a
// violation fires, which is already a dead run).
// detlint: ok(mutable-global): test-only hook, installed by ScopedHandler
// before any simulation thread exists and read only on the failure path
Handler g_handler = nullptr;

// Same discipline as g_handler: installed before a run, read only on the
// failure path.
// detlint: ok(mutable-global): test-only hook, same access protocol as g_handler
DumpHook g_dump_hook = nullptr;
// detlint: ok(mutable-global): test-only hook, same access protocol as g_handler
void* g_dump_ctx = nullptr;

}  // namespace

void fail(Violation v) {
  if (g_dump_hook != nullptr) g_dump_hook(g_dump_ctx, v);
  if (g_handler != nullptr) {
    g_handler(v);
    // A test handler that returns instead of throwing is a test bug; fall
    // through to the fatal path rather than resuming a broken simulation.
  }
  std::fprintf(stderr,
               "[flowpulse-audit] invariant=%s entity=%s iteration=%llu t=%lldps detail=%s\n",
               v.invariant.c_str(), v.entity.c_str(),
               static_cast<unsigned long long>(v.iteration),
               static_cast<long long>(v.sim_time_ps), v.detail.c_str());
  std::fflush(stderr);
  std::abort();
}

ScopedHandler::ScopedHandler(Handler handler) : previous_{g_handler} { g_handler = handler; }

ScopedHandler::~ScopedHandler() { g_handler = previous_; }

ScopedDumpHook::ScopedDumpHook(DumpHook hook, void* ctx)
    : previous_hook_{g_dump_hook}, previous_ctx_{g_dump_ctx} {
  g_dump_hook = hook;
  g_dump_ctx = ctx;
}

ScopedDumpHook::~ScopedDumpHook() {
  g_dump_hook = previous_hook_;
  g_dump_ctx = previous_ctx_;
}

}  // namespace flowpulse::sim::audit
