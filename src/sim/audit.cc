#include "sim/audit.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace flowpulse::sim::audit {
namespace {

// Written only by ScopedHandler on the test thread while no simulation
// runs; read on the failure path. A plain pointer keeps the passing path
// free of synchronization (parallel trial workers never touch it unless a
// violation fires, which is already a dead run).
Handler g_handler = nullptr;

}  // namespace

void fail(Violation v) {
  if (g_handler != nullptr) {
    g_handler(v);
    // A test handler that returns instead of throwing is a test bug; fall
    // through to the fatal path rather than resuming a broken simulation.
  }
  std::fprintf(stderr,
               "[flowpulse-audit] invariant=%s entity=%s iteration=%llu t=%lldps detail=%s\n",
               v.invariant.c_str(), v.entity.c_str(),
               static_cast<unsigned long long>(v.iteration),
               static_cast<long long>(v.sim_time_ps), v.detail.c_str());
  std::fflush(stderr);
  std::abort();
}

ScopedHandler::ScopedHandler(Handler handler) : previous_{g_handler} { g_handler = handler; }

ScopedHandler::~ScopedHandler() { g_handler = previous_; }

}  // namespace flowpulse::sim::audit
