#include "sim/simulator.h"

namespace flowpulse::sim {

void Simulator::run() { run_until(Time::max()); }

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  FP_TRACE(*this, kRunStart, "sim", 0, 0, queue_.size(), 0.0, "");
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    EventQueue::Event ev = queue_.pop();
    FP_AUDIT(ev.at >= now_, "event-monotonicity", "simulator", events_executed_, now_.ps(),
             "popped event at " + std::to_string(ev.at.ps()) + "ps behind clock");
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
  }
  if (!stopped_ && deadline != Time::max() && now_ < deadline) now_ = deadline;
  FP_TRACE(*this, kRunStop, "sim", 0, 0, events_executed_, 0.0,
           stopped_ ? "stopped" : "drained");
#if FP_AUDIT_ENABLED
  // Quiesce = the queue drained on its own. A stop() or a deadline exit
  // leaves work in flight, where conservation legitimately has bytes on
  // the wire.
  if (!stopped_ && queue_.empty()) audit_on_quiesce();
#endif
}

void Simulator::fast_forward(Time to) {
  ++fast_forwards_;
  FP_TRACE(*this, kFidelity, "sim", 0, 0, static_cast<std::uint64_t>(to.ps()), 0.0,
           "fast-forward");
  if (to > now_) run_until(to);
}

#if FP_AUDIT_ENABLED
void Simulator::audit_on_quiesce() {
  for (const std::function<void()>& check : audit_quiesce_checks_) check();
}
#endif

}  // namespace flowpulse::sim
