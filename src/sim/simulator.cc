#include "sim/simulator.h"

namespace flowpulse::sim {

void Simulator::run() { run_until(Time::max()); }

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    EventQueue::Event ev = queue_.pop();
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
  }
  if (!stopped_ && deadline != Time::max() && now_ < deadline) now_ = deadline;
}

}  // namespace flowpulse::sim
