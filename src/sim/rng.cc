#include "sim/rng.h"

namespace flowpulse::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64: seed expander recommended by the xoshiro authors.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling; bias is negligible for
  // the bounds used here (< 2^32) but we reject to stay exact.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    const unsigned __int128 m = static_cast<unsigned __int128>(r) * bound;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() { return Rng{next_u64()}; }

}  // namespace flowpulse::sim
