#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace flowpulse::sim {

/// Move-only callable with fixed inline storage and **no heap fallback**.
///
/// The simulator executes one callable per event — at least one per packet
/// hop, millions per collective iteration — so the event unit of work must
/// never allocate. `std::function` heap-allocates any capture larger than
/// its (implementation-defined, typically 16-byte) small buffer;
/// BasicInlineFn instead static-asserts at the call site that the capture
/// fits its fixed buffer, turning an accidental fat capture into a compile
/// error instead of a silent per-event malloc.
///
/// Captures must be nothrow-move-constructible. Trivially-copyable
/// captures (every in-tree event lambda: pointers + integers) move as a
/// plain memcpy with no manager dispatch.
template <std::size_t Capacity>
class BasicInlineFn {
 public:
  static constexpr std::size_t kCapacity = Capacity;
  /// Pointer alignment, not max_align_t: every in-tree capture is pointers
  /// + integers, and the looser alignment is what lets a 24-byte-capacity
  /// InlineFn pack to 40 bytes (24 + two function pointers) instead of
  /// rounding up to 48 — the provenance-keyed HeapEntry needs the room.
  static constexpr std::size_t kAlign = alignof(void*);

  BasicInlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, BasicInlineFn>>>
  BasicInlineFn(F&& f) noexcept {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "event capture exceeds BasicInlineFn capacity — it would heap-allocate "
                  "under std::function; shrink the capture (capture `this` and look "
                  "state up at fire time) or raise the capacity deliberately");
    static_assert(alignof(Fn) <= kAlign, "over-aligned event capture");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event captures must be nothrow-movable (the event heap sifts by move)");
    if constexpr (sizeof(Fn) < kCapacity) {
      // Moves memcpy the whole buffer; keep the tail initialized.
      std::memset(buf_ + sizeof(Fn), 0, kCapacity - sizeof(Fn));
    }
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    if constexpr (!(std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>)) {
      manage_ = &manage_impl<Fn>;
    }
  }

  BasicInlineFn(BasicInlineFn&& o) noexcept { move_from(o); }
  BasicInlineFn& operator=(BasicInlineFn&& o) noexcept {
    if (this != &o) {
      destroy();
      move_from(o);
    }
    return *this;
  }
  BasicInlineFn(const BasicInlineFn&) = delete;
  BasicInlineFn& operator=(const BasicInlineFn&) = delete;
  ~BasicInlineFn() { destroy(); }

  [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

 private:
  enum class Op : unsigned char { kMoveDestroy, kDestroy };

  template <typename Fn>
  static void manage_impl(Op op, void* self, void* other) noexcept {
    switch (op) {
      case Op::kMoveDestroy: {
        Fn* src = static_cast<Fn*>(other);
        ::new (self) Fn(std::move(*src));
        src->~Fn();
        break;
      }
      case Op::kDestroy:
        static_cast<Fn*>(self)->~Fn();
        break;
    }
  }

  void move_from(BasicInlineFn& o) noexcept {
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    if (invoke_ != nullptr) {
      if (manage_ == nullptr) {
        std::memcpy(buf_, o.buf_, kCapacity);
      } else {
        manage_(Op::kMoveDestroy, buf_, o.buf_);
      }
    }
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  void destroy() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(kAlign) unsigned char buf_[kCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Op, void*, void*) = nullptr;
};

/// The event-queue callable. Capacity is 24 bytes: exactly the largest
/// in-tree event capture (`this` plus a handful of ids), and it keeps a
/// heap entry (fire time + schedule time + packed provenance + InlineFn)
/// at exactly one 64-byte cache line. A fatter capture fails to compile —
/// raise this deliberately (and re-measure BM_*Events) if one ever needs
/// more.
using InlineFn = BasicInlineFn<24>;

/// The cross-lane mailbox callable (see event_lane.h). A boundary delivery
/// must carry the whole Packet by value — the source lane's state cannot be
/// dereferenced at the destination lane's fire time — so it needs a fatter
/// buffer: `this` + Packet (~64 B) with headroom. Mailbox messages never
/// enter the event heap directly (they are parked in a per-lane arena and
/// fired through a thin trampoline), so the 64-byte HeapEntry budget is
/// unaffected.
using LaneFn = BasicInlineFn<96>;

}  // namespace flowpulse::sim
