#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace flowpulse::sim {

/// Move-only callable with fixed inline storage and **no heap fallback**.
///
/// The simulator executes one callable per event — at least one per packet
/// hop, millions per collective iteration — so the event unit of work must
/// never allocate. `std::function` heap-allocates any capture larger than
/// its (implementation-defined, typically 16-byte) small buffer; InlineFn
/// instead static-asserts at the call site that the capture fits its
/// fixed buffer, turning an accidental fat capture into a compile error
/// instead of a silent per-event malloc.
///
/// Capacity is 32 bytes: enough for `this` plus a handful of ids (the
/// largest in-tree event capture is 24 bytes), and it keeps a heap entry
/// (time + seq + InlineFn) at exactly one 64-byte cache line.
///
/// Captures must be nothrow-move-constructible. Trivially-copyable
/// captures (every in-tree event lambda: pointers + integers) move as a
/// plain memcpy with no manager dispatch.
class InlineFn {
 public:
  static constexpr std::size_t kCapacity = 32;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineFn>>>
  InlineFn(F&& f) noexcept {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "event capture exceeds InlineFn::kCapacity — it would heap-allocate "
                  "under std::function; shrink the capture (capture `this` and look "
                  "state up at fire time) or raise kCapacity deliberately");
    static_assert(alignof(Fn) <= kAlign, "over-aligned event capture");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event captures must be nothrow-movable (the event heap sifts by move)");
    if constexpr (sizeof(Fn) < kCapacity) {
      // Moves memcpy the whole buffer; keep the tail initialized.
      std::memset(buf_ + sizeof(Fn), 0, kCapacity - sizeof(Fn));
    }
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    if constexpr (!(std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>)) {
      manage_ = &manage_impl<Fn>;
    }
  }

  InlineFn(InlineFn&& o) noexcept { move_from(o); }
  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      destroy();
      move_from(o);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { destroy(); }

  [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

 private:
  enum class Op : unsigned char { kMoveDestroy, kDestroy };

  template <typename Fn>
  static void manage_impl(Op op, void* self, void* other) noexcept {
    switch (op) {
      case Op::kMoveDestroy: {
        Fn* src = static_cast<Fn*>(other);
        ::new (self) Fn(std::move(*src));
        src->~Fn();
        break;
      }
      case Op::kDestroy:
        static_cast<Fn*>(self)->~Fn();
        break;
    }
  }

  void move_from(InlineFn& o) noexcept {
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    if (invoke_ != nullptr) {
      if (manage_ == nullptr) {
        std::memcpy(buf_, o.buf_, kCapacity);
      } else {
        manage_(Op::kMoveDestroy, buf_, o.buf_);
      }
    }
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  void destroy() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(kAlign) unsigned char buf_[kCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Op, void*, void*) = nullptr;
};

}  // namespace flowpulse::sim
