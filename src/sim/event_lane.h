#pragma once

#include <cstdint>
#include <vector>

#include "core/trace.h"
#include "sim/audit.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

#if FP_AUDIT_ENABLED
#include <functional>
#endif

namespace flowpulse::sim {

/// One independently-clocked shard of a discrete-event simulation: an event
/// queue, a virtual clock, and a root random stream. Used two ways:
///
///  * standalone, as the classic serial simulator — `Simulator` (see
///    simulator.h) is exactly an EventLane, so a single-lane simulation is
///    byte-for-byte the engine every prior result was produced on;
///  * as one of N lanes under a `LaneRunner` (lane_runner.h), which drives
///    all lanes in conservative-PDES rounds and lets cross-lane links post
///    timestamped work into a destination lane's mailbox.
///
/// # Cross-lane mailboxes and bit-identity
///
/// A component in lane S that must run code in lane D at time
/// `now + delay` calls `post_remote(dst, delay, fn)`. The message records
///
///   insert_at = S.now()          — when the serial run would have called
///                                  schedule_in (the global insertion instant)
///   fire_at   = S.now() + delay  — when the event executes
///   src_lane  = S's lane id
///   seq       = S's monotonically increasing post counter
///
/// and is written into D's inbox slot reserved for S — one writer per slot,
/// so posting is race-free without locks. Between rounds the coordinator
/// drains every slot straight into D's event heap (stage_inbox), carrying
/// the provenance along.
///
/// Bit-identity with the serial engine comes from the heap's ordering key
/// (see EventQueue): same-fire-time events order by schedule instant, then
/// source lane, then per-source FIFO seq. The serial engine resolves such
/// ties by its global FIFO counter, which is assigned in execution order —
/// and execution order is exactly "schedule instant, then the interleave of
/// same-instant schedulers". The provenance key therefore reproduces the
/// serial order whenever the two schedulers ran at different instants (the
/// overwhelmingly common case, and the reason an earlier merge-at-pop
/// discipline — which gave imported messages a fresh local seq and so lost
/// against older same-fire-time local events — diverged by one packet
/// serialization slot). The one approximation left: two *different* lanes
/// scheduling at the same picosecond toward the same destination order by
/// lane id rather than by the serial interleave; with per-rank start jitter
/// breaking clock symmetry this tie has never been observed in practice,
/// and the laned golden tests would catch it if it appeared.
///
/// Mailbox callables are `LaneFn` (96 B — they carry a whole Packet by
/// value), too fat for the 24-byte heap slot. Merging parks the LaneFn in a
/// per-lane arena (free-list recycled) and schedules a thin
/// {lane, slot} trampoline, keeping the heap entry at one cache line.
class EventLane {
 public:
  explicit EventLane(std::uint64_t seed = 1) : rng_{seed} {}

  EventLane(const EventLane&) = delete;
  EventLane& operator=(const EventLane&) = delete;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedule `fn` to run `delay` after the current time.
  void schedule_in(Time delay, EventFn fn) {
    FP_AUDIT(delay >= Time::zero(), "event-monotonicity", "simulator", events_executed_,
             now_.ps(), "negative delay " + std::to_string(delay.ps()) + "ps");
    queue_.schedule(now_ + delay, now_, lane_id_, std::move(fn));
  }

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  void schedule_at(Time at, EventFn fn) {
    FP_AUDIT(at >= now_, "event-monotonicity", "simulator", events_executed_, now_.ps(),
             "schedule_at " + std::to_string(at.ps()) + "ps is before now");
    queue_.schedule(at, now_, lane_id_, std::move(fn));
  }

  /// Pre-size the event heap for an expected number of simultaneously
  /// pending events (see EventQueue::reserve).
  void reserve_events(std::size_t n) { queue_.reserve(n); }

  /// Run until the event queue drains or `stop()` is called.
  void run();

  /// Run events with time <= `deadline`; the clock ends at
  /// min(deadline, time of last event) unless stopped.
  ///
  /// Stop semantics: a `stop()` issued *before* the call (or left over from
  /// a previous run segment) is honored — the run returns immediately,
  /// executing nothing and leaving the clock untouched. Either way the
  /// pending stop is consumed: after run_until returns, `stopped()` is
  /// false and the next run proceeds normally.
  void run_until(Time deadline);

  /// Hybrid-fidelity fast-forward: advance the clock to `to`, executing any
  /// events due on the way (stale retransmission timers fire as no-ops).
  /// Semantically identical to run_until, but counted separately and traced
  /// (kFidelity) so reports and flight recordings show where simulated time
  /// was synthesized rather than earned event-by-event. A no-op call
  /// (`to <= now()`) does not count as a fast-forward and emits no trace.
  void fast_forward(Time to);

  /// Request that the current (or next) run loop halt after the event in
  /// progress returns. The request is consumed by the run it halts (or by
  /// the next run_until entry, which then executes nothing).
  void stop() { stopped_ = true; }

  /// True while a stop request is pending (set by stop(), consumed by the
  /// next run_until).
  [[nodiscard]] bool stopped() const { return stopped_; }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }
  [[nodiscard]] std::uint64_t fast_forwards() const { return fast_forwards_; }
  [[nodiscard]] std::uint64_t events_scheduled() const { return queue_.scheduled_total(); }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

  // -------------------------------------------------------------------------
  // Lane protocol (driven by LaneRunner; inert in standalone/serial use)
  // -------------------------------------------------------------------------

  /// Declare this lane's identity in an `num_lanes`-lane run and size the
  /// per-source inbox. Must be called on every lane before any post_remote.
  void configure_lane(std::uint32_t lane_id, std::uint32_t num_lanes) {
    lane_id_ = lane_id;
    inbox_.resize(num_lanes);
  }
  [[nodiscard]] std::uint32_t lane_id() const { return lane_id_; }

  /// Post `fn` to run in `dst` at `now() + delay`. Called from this lane's
  /// thread during a round; writes only dst's inbox slot for this lane
  /// (single writer), so no synchronization is needed beyond the round
  /// barrier. `delay` must be >= the runner's lookahead for the horizon
  /// invariant to hold — it is the propagation delay of the boundary link.
  void post_remote(EventLane& dst, Time delay, LaneFn fn) {
    dst.inbox_[lane_id_].push_back(
        LaneMessage{now_, now_ + delay, lane_id_, post_seq_++, std::move(fn)});
  }

  /// Coordinator only (between rounds): merge every inbox slot's messages
  /// into the event heap at their provenance positions (see class comment).
  void stage_inbox();

  /// Earliest instant at which this lane could next execute an event:
  /// the queue head (staged messages are already merged); Time::max() if
  /// idle.
  [[nodiscard]] Time next_event_bound() const;

  /// Execute every event strictly before `horizon`. Never force-advances
  /// the clock and fires no quiesce audits — the coordinator settles clocks
  /// and quiesces after the last round.
  void run_window(Time horizon);

  /// Clock parity with run_until's deadline bump: advance an idle lane's
  /// clock to `deadline` (finite deadlines only).
  void settle_to(Time deadline) {
    if (deadline != Time::max() && now_ < deadline) now_ = deadline;
  }

#if FP_AUDIT_ENABLED
  /// Register an invariant checked whenever the simulation quiesces (the
  /// event queue drains without stop()). Components register at wiring time
  /// and must outlive every subsequent run of this simulator.
  void audit_register_quiesce(std::function<void()> check) {
    audit_quiesce_checks_.push_back(std::move(check));
  }
  /// Coordinator only: fire the quiesce checks after a fully-drained laned
  /// run (the laned analogue of run_until's drain-time quiesce).
  void audit_quiesce_now() { audit_on_quiesce(); }
#endif

#if FP_TRACE_ENABLED
  /// Install (or clear, with nullptr) the flight-recorder sink that FP_TRACE
  /// call sites across all layers emit into. The sink must outlive every
  /// subsequent run of this simulator. Trace-enabled builds only.
  void set_trace(core::TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] core::TraceSink* trace() const { return trace_; }
#endif

 private:
  struct LaneMessage {
    Time insert_at;
    Time fire_at;
    std::uint32_t src_lane;
    std::uint64_t seq;
    LaneFn fn;
  };

  void merge_one(LaneMessage& m);
  void fire_slot(std::uint32_t slot);

#if FP_AUDIT_ENABLED
  void audit_on_quiesce();
  std::vector<std::function<void()>> audit_quiesce_checks_;
#endif
#if FP_TRACE_ENABLED
  core::TraceSink* trace_ = nullptr;
#endif
  EventQueue queue_;
  Time now_ = Time::zero();
  Rng rng_;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  std::uint64_t fast_forwards_ = 0;

  std::uint32_t lane_id_ = 0;
  std::uint64_t post_seq_ = 0;
  /// inbox_[s]: messages posted by lane s since the last stage_inbox().
  std::vector<std::vector<LaneMessage>> inbox_;
  /// Parked LaneFns of merged-but-unfired messages (see class comment).
  std::vector<LaneFn> arena_;
  std::vector<std::uint32_t> arena_free_;
};

}  // namespace flowpulse::sim
