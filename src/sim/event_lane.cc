#include "sim/event_lane.h"

namespace flowpulse::sim {

void EventLane::run() { run_until(Time::max()); }

void EventLane::run_until(Time deadline) {
  // A stop() issued before the run (or between run segments) halts this run
  // before it starts: zero events, clock untouched. The pending request is
  // consumed either way, so the *next* run proceeds.
  if (stopped_) {
    stopped_ = false;
    return;
  }
  FP_TRACE(*this, kRunStart, "sim", 0, 0, queue_.size(), 0.0, "");
  bool halted = false;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    EventQueue::Event ev = queue_.pop();
    FP_AUDIT(ev.at >= now_, "event-monotonicity", "simulator", events_executed_, now_.ps(),
             "popped event at " + std::to_string(ev.at.ps()) + "ps behind clock");
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
    if (stopped_) {
      halted = true;
      stopped_ = false;  // the stop is consumed by the run it halted
      break;
    }
  }
  if (!halted && deadline != Time::max() && now_ < deadline) now_ = deadline;
  FP_TRACE(*this, kRunStop, "sim", 0, 0, events_executed_, 0.0,
           halted ? "stopped" : "drained");
#if FP_AUDIT_ENABLED
  // Quiesce = the queue drained on its own. A stop() or a deadline exit
  // leaves work in flight, where conservation legitimately has bytes on
  // the wire.
  if (!halted && queue_.empty()) audit_on_quiesce();
#endif
}

void EventLane::fast_forward(Time to) {
  if (to <= now_) return;  // nothing to synthesize: not a fast-forward
  ++fast_forwards_;
  FP_TRACE(*this, kFidelity, "sim", 0, 0, static_cast<std::uint64_t>(to.ps()), 0.0,
           "fast-forward");
  run_until(to);
}

void EventLane::stage_inbox() {
  // Merge order across slots is irrelevant: the heap's provenance key
  // (fire_at, insert_at, src_lane, seq) totally orders the messages no
  // matter when they are inserted.
  for (std::vector<LaneMessage>& slot : inbox_) {
    for (LaneMessage& m : slot) merge_one(m);
    slot.clear();
  }
}

Time EventLane::next_event_bound() const {
  return queue_.empty() ? Time::max() : queue_.next_time();
}

void EventLane::merge_one(LaneMessage& m) {
  FP_AUDIT(m.fire_at >= now_, "event-monotonicity", "simulator", events_executed_, now_.ps(),
           "imported event at " + std::to_string(m.fire_at.ps()) + "ps behind clock");
  std::uint32_t slot;
  if (!arena_free_.empty()) {
    slot = arena_free_.back();
    arena_free_.pop_back();
    arena_[slot] = std::move(m.fn);
  } else {
    slot = static_cast<std::uint32_t>(arena_.size());
    arena_.push_back(std::move(m.fn));
  }
  // The trampoline is pointer + index: well under the 24-byte heap slot.
  queue_.schedule_imported(m.fire_at, m.insert_at, m.src_lane, m.seq,
                           [this, slot] { fire_slot(slot); });
}

void EventLane::fire_slot(std::uint32_t slot) {
  LaneFn fn = std::move(arena_[slot]);
  arena_free_.push_back(slot);
  fn();
}

void EventLane::run_window(Time horizon) {
  while (!queue_.empty() && queue_.next_time() < horizon) {
    EventQueue::Event ev = queue_.pop();
    FP_AUDIT(ev.at >= now_, "event-monotonicity", "simulator", events_executed_, now_.ps(),
             "popped event at " + std::to_string(ev.at.ps()) + "ps behind clock");
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
  }
}

#if FP_AUDIT_ENABLED
void EventLane::audit_on_quiesce() {
  for (const std::function<void()>& check : audit_quiesce_checks_) check();
}
#endif

}  // namespace flowpulse::sim
