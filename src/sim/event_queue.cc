#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace flowpulse::sim {

void EventQueue::schedule(Time at, EventFn fn) {
  const std::uint64_t seq = next_seq_++;
  std::size_t i = heap_.size();
  heap_.emplace_back();  // open a hole at the end; default EventFn is empty
  // Hole-based sift-up: shift later parents down into the hole (one move
  // per level instead of a three-move swap), then settle the new entry.
  // The new entry carries the largest seq so far, so among equal times the
  // parent always stays put — comparing times alone is exact.
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!(at < heap_[parent].at)) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = HeapEntry{at, seq, std::move(fn)};
}

EventQueue::Event EventQueue::pop() {
  assert(!heap_.empty());
  Event ev{heap_.front().at, heap_.front().seq, std::move(heap_.front().fn)};
  HeapEntry last = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down_from(0, std::move(last));
  return ev;
}

void EventQueue::sift_down_from(std::size_t i, HeapEntry e) {
  // Hole-based sift-down: pull earlier children up into the hole, then
  // settle `e` where it belongs.
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = 2 * i + 1;
    if (best >= n) break;
    const std::size_t r = best + 1;
    if (r < n && earlier(heap_[r], heap_[best])) best = r;
    if (!earlier(heap_[best], e)) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(e);
}

}  // namespace flowpulse::sim
