#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace flowpulse::sim {

void EventQueue::schedule(Time at, EventFn fn) {
  heap_.push_back(HeapEntry{at, next_seq_++, std::move(fn)});
  sift_up(heap_.size() - 1);
}

EventQueue::Event EventQueue::pop() {
  assert(!heap_.empty());
  Event ev{heap_.front().at, heap_.front().seq, std::move(heap_.front().fn)};
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return ev;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && earlier(heap_[l], heap_[best])) best = l;
    if (r < n && earlier(heap_[r], heap_[best])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace flowpulse::sim
