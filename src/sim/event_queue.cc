#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace flowpulse::sim {

void EventQueue::schedule(Time at, Time sched, std::uint32_t src, EventFn fn) {
  push(HeapEntry{at, sched, pack_provenance(src, next_seq_++), std::move(fn)});
}

void EventQueue::schedule_imported(Time at, Time sched, std::uint32_t src, std::uint64_t seq,
                                   EventFn fn) {
  ++next_seq_;  // accounting parity: an import is one scheduled event
  push(HeapEntry{at, sched, pack_provenance(src, seq), std::move(fn)});
}

void EventQueue::push(HeapEntry entry) {
  std::size_t i = heap_.size();
  heap_.emplace_back();  // open a hole at the end; default EventFn is empty
  // Hole-based sift-up: shift later parents down into the hole (one move
  // per level instead of a three-move swap), then settle the new entry.
  // Full-key comparison: an imported cross-lane entry can carry *earlier*
  // provenance than a same-time entry already in the heap, so comparing
  // times alone is no longer exact the way it was pre-provenance.
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(entry);
}

EventQueue::Event EventQueue::pop() {
  assert(!heap_.empty());
  Event ev{heap_.front().at, heap_.front().prov, std::move(heap_.front().fn)};
  HeapEntry last = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down_from(0, std::move(last));
  return ev;
}

void EventQueue::sift_down_from(std::size_t i, HeapEntry e) {
  // Hole-based sift-down: pull earlier children up into the hole, then
  // settle `e` where it belongs.
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = 2 * i + 1;
    if (best >= n) break;
    const std::size_t r = best + 1;
    if (r < n && earlier(heap_[r], heap_[best])) best = r;
    if (!earlier(heap_[best], e)) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(e);
}

}  // namespace flowpulse::sim
