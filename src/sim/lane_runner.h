#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "core/thread_safety.h"
#include "sim/event_lane.h"

namespace flowpulse::sim {

/// Round protocol shared between a LaneRunner coordinator and its lane
/// workers, annotated for clang's thread-safety analysis (attributes on
/// function-local variables are ignored, so the protocol lives in a named
/// struct — same convention as exp::WorkerPoolState). The coordinator
/// publishes (round, horizon) under `mu`; workers wake on `cv_start`, claim
/// lanes through the `next_lane` atomic, and report completion under `mu`
/// (`cv_done`). All lane-state handoff rides the mu acquire/release chain:
/// publish_round → await_round → run_window writes → worker_done →
/// await_workers.
struct LaneRunnerState {
  core::Mutex mu;
  std::condition_variable_any cv_start;
  std::condition_variable_any cv_done;
  std::uint64_t round FP_GUARDED_BY(mu) = 0;
  Time horizon FP_GUARDED_BY(mu) = Time::zero();
  bool shutdown FP_GUARDED_BY(mu) = false;
  std::uint32_t workers_done FP_GUARDED_BY(mu) = 0;
  std::exception_ptr first_error FP_GUARDED_BY(mu);
  std::atomic<std::uint32_t> next_lane{0};

  // The condition-variable methods release and reacquire `mu` inside
  // std::condition_variable_any::wait, a pattern the capability analysis
  // cannot follow; each is annotated FP_EXCLUDES and implemented with an
  // analysis waiver at the single unique_lock boundary (lane_runner.cc).
  void publish_round(Time h) FP_EXCLUDES(mu);
  [[nodiscard]] std::uint64_t await_round(std::uint64_t last_seen, bool& shut, Time& h)
      FP_EXCLUDES(mu);
  void worker_done() FP_EXCLUDES(mu);
  void await_workers(std::uint32_t count) FP_EXCLUDES(mu);
  void request_shutdown() FP_EXCLUDES(mu);
  void record_error(std::exception_ptr e) FP_EXCLUDES(mu);
  [[nodiscard]] std::exception_ptr take_error() FP_EXCLUDES(mu);
};

/// Conservative-PDES scheduler over a set of EventLanes (classic
/// Chandy–Misra–Bryant with a global horizon): each round it
///
///   1. drains every lane's cross-lane inbox (stage_inbox),
///   2. computes the global lower bound `lb` = min over lanes of the next
///      event time,
///   3. sets the horizon H = lb + lookahead, where `lookahead` is the
///      minimum propagation delay of any cross-lane link, and
///   4. lets every lane execute its events strictly before H in parallel.
///
/// Safety: a message posted during the round fires at
/// send_time + prop_delay >= lb + lookahead = H, so nothing a neighbor does
/// this round can schedule work before H — each lane's window is causally
/// closed. Progress: the lane holding `lb` always executes (or merges) at
/// least the event at `lb` < H, so H strictly increases round over round.
/// Determinism: lane claims hand out whole lanes and each lane's window is
/// single-threaded, so results are independent of worker count and
/// scheduling — bit-identical to running the same lanes serially.
///
/// Worker threads are persistent (a scenario takes thousands of rounds;
/// spawning per round would dominate). `jobs` 0 defaults to one worker per
/// lane so a FLOWPULSE_LANES=8 run exercises 8 real threads regardless of
/// core count (what the tsan leg relies on); jobs<=1 or a single lane runs
/// every round inline with no threads at all.
class LaneRunner {
 public:
  LaneRunner(std::vector<EventLane*> lanes, Time lookahead, unsigned jobs = 0);
  ~LaneRunner();

  LaneRunner(const LaneRunner&) = delete;
  LaneRunner& operator=(const LaneRunner&) = delete;

  /// Drive rounds until every lane is idle or the next event lies past
  /// `deadline`; then settle every lane's clock to the deadline (finite
  /// deadlines), mirroring EventLane::run_until's clock bump. Fires the
  /// lanes' quiesce audits if the run fully drained.
  void run_until(Time deadline);
  void run() { run_until(Time::max()); }

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] bool drained() const { return drained_; }
  /// Sum of events executed across lanes (equals the serial run's count).
  [[nodiscard]] std::uint64_t events_executed() const;

 private:
  void execute_round(Time horizon);
  void worker_loop();

  std::vector<EventLane*> lanes_;
  Time lookahead_;
  unsigned jobs_;
  std::uint64_t rounds_ = 0;
  bool drained_ = false;
  LaneRunnerState state_;
  std::vector<std::thread> pool_;
};

}  // namespace flowpulse::sim
