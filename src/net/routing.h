#pragma once

#include <cstdint>
#include <vector>

#include "net/types.h"

namespace flowpulse::net {

/// Converged control-plane view of *known* link failures, shared by every
/// switch (as a routing protocol / fabric manager would distribute it).
///
/// A known-failed (leaf, uplink) pair removes that uplink ("virtual spine",
/// i.e. spine × parallel-lane) from the valid set of BOTH the affected leaf
/// (it cannot send up that link) and every leaf sending TOWARD the affected
/// leaf (the spine cannot deliver down that lane). This matches the paper's
/// analytical model: a src→dst pair with demand d and f failed spines
/// adjacent to either endpoint spreads d over the remaining (s − f) spines.
///
/// Silent faults are deliberately NOT represented here — the data plane
/// keeps spraying onto them; that is what makes them silent.
class RoutingState {
 public:
  RoutingState(std::uint32_t leaves, std::uint32_t uplinks_per_leaf);

  void set_known_failed(LeafId leaf, UplinkIndex uplink, bool failed = true);
  [[nodiscard]] bool known_failed(LeafId leaf, UplinkIndex uplink) const;

  /// Number of known-failed uplinks adjacent to `leaf`.
  [[nodiscard]] std::uint32_t known_failed_count(LeafId leaf) const;

  /// Valid uplinks for traffic from `src_leaf` toward `dst_leaf`: uplinks
  /// not known-failed at either end. Cached; the reference is invalidated
  /// by the next set_known_failed() call.
  [[nodiscard]] const std::vector<UplinkIndex>& valid_uplinks(LeafId src_leaf,
                                                              LeafId dst_leaf) const;

  [[nodiscard]] std::uint32_t leaves() const { return leaves_; }
  [[nodiscard]] std::uint32_t uplinks_per_leaf() const { return uplinks_; }

 private:
  std::uint32_t leaves_;
  std::uint32_t uplinks_;
  std::vector<bool> failed_;  // leaves_ × uplinks_

  struct CacheEntry {
    std::uint64_t version = ~0ull;
    std::vector<UplinkIndex> uplinks;
  };
  std::uint64_t version_ = 0;
  // detlint: ok(mutable-member): per-instance memoization keyed by
  // version_ — rebuilt deterministically from routing state, never shared
  // across RoutingState objects (each lane owns its fabric and routing)
  mutable std::vector<CacheEntry> cache_;  // leaves_ × leaves_
};

}  // namespace flowpulse::net
