#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/units.h"
#include "net/counters.h"
#include "net/device.h"
#include "net/egress_port.h"
#include "net/routing.h"
#include "net/topology_info.h"
#include "net/types.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace flowpulse::net {

/// Priority Flow Control parameters, applied per (ingress port, priority).
struct PfcConfig {
  bool enabled = true;
  core::Bytes xoff_bytes{128 * 1024};  ///< pause upstream above this
  core::Bytes xon_bytes{96 * 1024};    ///< resume upstream below this
};

#if FP_AUDIT_ENABLED
/// Audit watchdog: a PAUSE asserted continuously toward the same upstream
/// for longer than this is treated as a PFC deadlock. Legitimate pauses
/// resolve in microseconds (draining one xoff worth of bytes at fabric
/// rate); 50 ms of continuous back-pressure means the buffer never drained.
constexpr sim::Time kPfcStuckPauseTimeout = sim::Time::milliseconds(50);
#endif

/// Common switch machinery: ingress-buffer accounting and PFC pause/resume
/// toward upstream egress ports. A packet occupies its ingress-port counter
/// from arrival until it starts serialization on this switch's egress port
/// (hardware decrements on departure from the shared buffer).
class Switch : public Device {
 public:
  void set_upstream(PortIndex in_port, EgressPort* upstream);
  [[nodiscard]] const SwitchCounters& counters() const { return counters_; }
  [[nodiscard]] core::Bytes ingress_bytes(PortIndex port, Priority prio) const {
    return ingress_bytes_[port.v()][priority_index(prio)];
  }
  [[nodiscard]] const std::string& name() const { return name_; }

 protected:
  Switch(sim::Simulator& simulator, std::string name, std::uint32_t num_ports, PfcConfig pfc);

  /// Account an arriving packet and issue PAUSE if the ingress class
  /// crosses XOFF.
  void pfc_on_arrival(const Packet& p, PortIndex in_port);

  /// Release accounting for a departing packet (identified by its
  /// pfc_ingress scratch field) and issue RESUME if below XON.
  void pfc_on_depart(const Packet& p);

  /// Install pfc_on_depart as the depart hook of an owned egress port.
  void hook_depart(EgressPort& port);

  sim::Simulator& sim_;
  SwitchCounters counters_{};

 private:
  void send_pause(PortIndex in_port, Priority prio, bool pause);

  std::string name_;
  PfcConfig pfc_;
  std::vector<std::array<core::Bytes, kNumPriorities>> ingress_bytes_;
  std::vector<std::array<bool, kNumPriorities>> upstream_paused_;
  std::vector<EgressPort*> upstream_;

#if FP_AUDIT_ENABLED
  void audit_verify_ingress_drained() const;
  /// Bumped on every pause *and* resume; a watchdog event compares its
  /// captured epoch so only a pause held continuously past the timeout
  /// trips it.
  std::vector<std::array<std::uint64_t, kNumPriorities>> audit_pause_epoch_;
#endif
};

/// Leaf (top-of-rack) switch. Ports [0, hosts_per_leaf) face hosts; port
/// hosts_per_leaf + u carries uplink u. Upstream traffic is sprayed per
/// packet across the valid uplinks (APS); downstream traffic is delivered
/// to the destination host port — never sprayed, matching the paper's
/// network model.
class LeafSwitch final : public Switch {
 public:
  /// Observer for packets arriving from spines — exactly the vantage point
  /// FlowPulse instruments (§5: leaf ingress ports from spines are late in
  /// the path and uniquely identify the traversed spine).
  using SpineIngressHook = std::function<void(UplinkIndex, const Packet&)>;

  LeafSwitch(sim::Simulator& simulator, LeafId id, const TopologyInfo& info,
             const RoutingState& routing, SprayPolicy spray, PfcConfig pfc,
             LinkParams host_link, LinkParams fabric_link, sim::Rng rng,
             core::Bytes spray_quantum_bytes);

  void receive(Packet p, PortIndex in_port) override;

  [[nodiscard]] EgressPort& host_port(std::uint32_t local_index) {
    return *host_ports_[local_index];
  }
  [[nodiscard]] EgressPort& uplink(UplinkIndex u) { return *uplink_ports_[u.v()]; }
  [[nodiscard]] const EgressPort& uplink(UplinkIndex u) const { return *uplink_ports_[u.v()]; }

  void set_spine_ingress_hook(SpineIngressHook hook) { spine_hook_ = std::move(hook); }
  void set_fault_rng(sim::Rng* rng);

  [[nodiscard]] LeafId id() const { return id_; }
  [[nodiscard]] SprayPolicy spray_policy() const { return spray_; }

 private:
  static constexpr UplinkIndex kNoUplink{0xffffffffu};
  [[nodiscard]] UplinkIndex choose_uplink(const Packet& p, LeafId dst_leaf);

  LeafId id_;
  const TopologyInfo& info_;
  const RoutingState& routing_;
  SprayPolicy spray_;
  sim::Rng rng_;
  /// kAdaptive compares occupancy in grades of this many bytes, as real
  /// adaptive-routing ASICs compare coarse congestion levels rather than
  /// exact byte counts. Sub-grade transients (e.g. one in-flight packet of
  /// another traffic class) therefore cannot steer the spray, which keeps
  /// a prioritized collective's distribution independent of background
  /// phase — the isolation property §5.1 relies on. Genuine congestion
  /// (multi-packet queues) still redirects packets.
  core::Bytes spray_quantum_;

  /// kFlowlet: fixed-size flowlet table (collisions overwrite, as in real
  /// hardware tables) and the idle gap after which a flow may re-route.
  struct FlowletEntry {
    std::uint64_t key = 0;
    UplinkIndex uplink{};
    sim::Time last = sim::Time::zero();
  };
  static constexpr std::size_t kFlowletTableSize = 4096;
  sim::Time flowlet_gap_ = sim::Time::microseconds(10);
  std::vector<FlowletEntry> flowlet_table_;
  /// Byte-deficit tie-break state (kAdaptive), kept per (destination leaf,
  /// traffic class, uplink): among equally-uncongested lanes the switch
  /// picks the one that has carried the fewest bytes for this destination
  /// and class (byte-based round-robin, as WCMP/DLB-style hardware does).
  /// Per-destination state is essential: shared state would let an
  /// interleaved destination mix alias onto fixed lanes, and the ACK stream
  /// would phase-lock the data stream. Byte (rather than packet) deficits
  /// matter too: each message ends in a short tail segment, and a
  /// packet-count round-robin parks those tails on the same lanes whenever
  /// segments-per-message and lane count share a factor, leaving a
  /// deterministic byte imbalance the load model cannot predict.
  std::vector<core::Bytes> sent_bytes_;  // [(dst_leaf * kNumPriorities + prio) * uplinks + u]
  std::vector<std::unique_ptr<EgressPort>> host_ports_;
  std::vector<std::unique_ptr<EgressPort>> uplink_ports_;
  SpineIngressHook spine_hook_;
};

/// Spine switch. Port leaf * parallel + lane connects to that leaf's uplink
/// lane. Downstream forwarding is deterministic: a packet leaves on the
/// same lane it arrived on (virtual-switch semantics for parallel links).
class SpineSwitch final : public Switch {
 public:
  SpineSwitch(sim::Simulator& simulator, SpineId id, const TopologyInfo& info, PfcConfig pfc,
              LinkParams fabric_link);

  void receive(Packet p, PortIndex in_port) override;

  [[nodiscard]] EgressPort& down_port(PortIndex port) { return *down_ports_[port.v()]; }
  [[nodiscard]] const EgressPort& down_port(PortIndex port) const {
    return *down_ports_[port.v()];
  }
  [[nodiscard]] EgressPort& down_port_to(LeafId leaf, std::uint32_t lane) {
    return *down_ports_[leaf.v() * info_.parallel + lane];
  }
  void set_fault_rng(sim::Rng* rng);

  [[nodiscard]] SpineId id() const { return id_; }

 private:
  SpineId id_;
  const TopologyInfo& info_;
  std::vector<std::unique_ptr<EgressPort>> down_ports_;
};

}  // namespace flowpulse::net
