#include "net/egress_port.h"

#include <cassert>
#include <utility>

namespace flowpulse::net {

EgressPort::EgressPort(sim::Simulator& simulator, LinkParams params, std::string name)
    : sim_{simulator}, params_{params}, name_{std::move(name)} {
#if FP_AUDIT_ENABLED
  sim_.audit_register_quiesce([this] { audit_verify_quiescent(); });
#endif
}

void EgressPort::connect(Device* peer, PortIndex peer_port) {
  peer_ = peer;
  peer_port_ = peer_port;
}

std::size_t EgressPort::queued_packets() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

void EgressPort::enqueue(Packet p) {
#if FP_AUDIT_ENABLED
  audit_enqueued_bytes_ += p.size_bytes;
#endif
  const int pi = priority_index(p.priority);
  queued_bytes_[pi] += p.size_bytes;
  queued_bytes_total_ += p.size_bytes;
  queues_[pi].push_back(p);
  try_start();
}

void EgressPort::set_paused(Priority prio, bool paused) {
  paused_[priority_index(prio)] = paused;
  if (!paused) try_start();
}

void EgressPort::try_start() {
  if (transmitting_) return;
  for (int pi = 0; pi < kNumPriorities; ++pi) {
    if (paused_[pi] || queues_[pi].empty()) continue;
    in_flight_ = queues_[pi].front();
    queues_[pi].pop_front();
    queued_bytes_[pi] -= in_flight_.size_bytes;
    queued_bytes_total_ -= in_flight_.size_bytes;
    transmitting_ = true;
    if (depart_hook_) depart_hook_(in_flight_);
      sim_.schedule_in(core::serialization_time(in_flight_.size_bytes, params_.bandwidth),
                     [this] { finish_transmission(); });
    return;
  }
}

void EgressPort::finish_transmission() {
  assert(peer_ != nullptr && "EgressPort used before connect()");
  const Packet pkt = in_flight_;
  transmitting_ = false;

  ++counters_.tx_packets;
  counters_.tx_bytes += pkt.size_bytes;

  bool dropped = false;
  if (fault_.spec().kind != FaultSpec::Kind::kNone) {
    // Fault sampling needs an RNG only for probabilistic faults.
    if (fault_.spec().drops_all()) {
      dropped = fault_.spec().active_at(sim_.now());
    } else {
      assert(fault_rng_ != nullptr && "probabilistic fault requires set_fault_rng()");
      dropped = fault_.should_drop(sim_.now(), *fault_rng_);
    }
  }

  if (dropped) {
    ++counters_.dropped_packets;
    counters_.dropped_bytes += pkt.size_bytes;
    if (fault_.spec().visible_to_counters) ++counters_.telemetry_dropped_packets;
    FP_TRACE(sim_, kPacketDrop, name_.c_str(), pkt.src.v(), pkt.dst.v(), pkt.size_bytes.v(), 0.0,
             fault_.spec().visible_to_counters ? "counted" : "silent");
    if (tx_hook_) tx_hook_(pkt, TxEvent::kDropped);
  } else {
    if (tx_hook_) tx_hook_(pkt, TxEvent::kOnWire);
    if (peer_sim_ != nullptr) {
      // Cross-lane hop: the packet rides the mailbox callable by value (a
      // LaneFn is sized for exactly this), so the destination lane needs
      // nothing from this lane's state at delivery time.
      sim_.post_remote(
          *peer_sim_, params_.prop_delay,
          // fplint: ok(lane-capture): deliver_remote touches only ingress
          // state owned by the destination lane this callable is posted to
          sim::LaneFn{[this, pkt] { deliver_remote(pkt); }});
    } else {
      // The propagation event captures only `this`: packets on the wire live
      // in on_wire_ and, because prop_delay is one constant per link, arrive
      // in the order they were sent — the event always delivers the front.
      on_wire_.push_back(pkt);
      sim_.schedule_in(params_.prop_delay, [this] { deliver_front(); });
    }
  }

  try_start();
}

void EgressPort::deliver_front() {
  assert(!on_wire_.empty());
  const Packet pkt = on_wire_.front();
  on_wire_.pop_front();
  deliver_remote(pkt);
}

// Delivery tail shared by the lane-local path (via deliver_front) and the
// cross-lane mailbox path, where it runs on the peer's lane.
void EgressPort::deliver_remote(const Packet& pkt) {
#if FP_AUDIT_ENABLED
  audit_delivered_bytes_ += pkt.size_bytes;
  ++audit_delivered_packets_;
  // Mirror the PortMonitor's selection filter (kind + collective sentinel)
  // so monitor-vs-switch reconciliation compares like with like.
  if (pkt.kind == PacketKind::kData && flowid::is_collective(pkt.flow_id)) {
    audit_tagged_bytes_by_job_[flowid::job_of(pkt.flow_id)] += pkt.size_bytes;
  }
#endif
  peer_->receive(pkt, peer_port_);
}

#if FP_AUDIT_ENABLED
void EgressPort::audit_verify_quiescent() const {
  FP_AUDIT(!transmitting_ && on_wire_.empty(), "link-conservation", name_,
           counters_.tx_packets.v(), sim_.now().ps(),
           "packets stranded mid-link at quiesce: transmitting=" +
               std::to_string(transmitting_) + " on_wire=" + std::to_string(on_wire_.size()));
  core::Bytes queued{};
  for (const auto& q : queues_) {
    for (const Packet& p : q) queued += p.size_bytes;
  }
  FP_AUDIT(queued == queued_bytes_total_, "link-conservation", name_,
           counters_.tx_packets.v(), sim_.now().ps(),
           "queue ledger mismatch: recount=" + std::to_string(queued.v()) +
               " ledger=" + std::to_string(queued_bytes_total_.v()));
  FP_AUDIT(audit_enqueued_bytes_ == queued_bytes_total_ + counters_.tx_bytes,
           "link-conservation", name_, counters_.tx_packets.v(), sim_.now().ps(),
           "enqueued=" + std::to_string(audit_enqueued_bytes_.v()) + " != queued=" +
               std::to_string(queued_bytes_total_.v()) + " + serialized=" +
               std::to_string(counters_.tx_bytes.v()));
  FP_AUDIT(counters_.tx_bytes == counters_.dropped_bytes + audit_delivered_bytes_,
           "link-conservation", name_, counters_.tx_packets.v(), sim_.now().ps(),
           "serialized=" + std::to_string(counters_.tx_bytes.v()) + " != dropped=" +
               std::to_string(counters_.dropped_bytes.v()) + " + delivered=" +
               std::to_string(audit_delivered_bytes_.v()));
  FP_AUDIT(counters_.tx_packets == counters_.dropped_packets + audit_delivered_packets_,
           "link-conservation", name_, counters_.tx_packets.v(), sim_.now().ps(),
           "serialized pkts=" + std::to_string(counters_.tx_packets.v()) + " != dropped=" +
               std::to_string(counters_.dropped_packets.v()) + " + delivered=" +
               std::to_string(audit_delivered_packets_.v()));
}
#endif

}  // namespace flowpulse::net
