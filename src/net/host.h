#pragma once

#include <functional>
#include <string>

#include "net/device.h"
#include "net/egress_port.h"
#include "net/types.h"
#include "sim/simulator.h"

namespace flowpulse::net {

/// An end host (one GPU + NIC, per the paper's workload model). Owns the
/// egress side of its NIC; the receive side hands packets straight to the
/// registered handler (the transport) — host-side processing is not the
/// bottleneck we study, so reception is instantaneous.
class Host final : public Device {
 public:
  using RxHandler = std::function<void(const Packet&)>;

  Host(sim::Simulator& simulator, HostId id, LinkParams to_leaf)
      : id_{id}, nic_{simulator, to_leaf, "host" + std::to_string(id.v()) + ".nic"} {}

  void receive(Packet p, PortIndex /*in_port*/) override {
    if (rx_) rx_(p);
  }

  [[nodiscard]] EgressPort& nic() { return nic_; }
  void set_rx_handler(RxHandler handler) { rx_ = std::move(handler); }
  [[nodiscard]] HostId id() const { return id_; }

 private:
  HostId id_;
  EgressPort nic_;
  RxHandler rx_;
};

}  // namespace flowpulse::net
