#pragma once

#include <cstdint>

#include "net/types.h"

namespace flowpulse::net {

/// Shape of a 2-level non-blocking fat tree. Hosts are numbered so that
/// hosts [l * hosts_per_leaf, (l+1) * hosts_per_leaf) sit under leaf l.
///
/// `parallel` models parallel leaf↔spine links (paper §7 "Parallel Links"):
/// each physical spine is split into `parallel` virtual spines; an uplink
/// index u identifies (spine u / parallel, lane u % parallel). Packets keep
/// their lane across the spine (virtual-switch semantics), so each lane
/// behaves as an independent spine for spraying, monitoring and prediction.
///
/// These methods are the ONLY sanctioned conversions between the strong
/// index spaces (host → leaf, uplink → spine/lane, uplink → port); ad-hoc
/// arithmetic on raw .v() values elsewhere is what the strong types exist
/// to eliminate.
struct TopologyInfo {
  std::uint32_t leaves = 32;
  std::uint32_t spines = 16;
  std::uint32_t hosts_per_leaf = 1;
  std::uint32_t parallel = 1;

  friend constexpr bool operator==(const TopologyInfo&, const TopologyInfo&) = default;

  [[nodiscard]] constexpr std::uint32_t uplinks_per_leaf() const { return spines * parallel; }
  [[nodiscard]] constexpr std::uint32_t num_hosts() const { return leaves * hosts_per_leaf; }
  [[nodiscard]] constexpr LeafId leaf_of(HostId h) const {
    return LeafId{h.v() / hosts_per_leaf};
  }
  [[nodiscard]] constexpr std::uint32_t local_index(HostId h) const {
    return h.v() % hosts_per_leaf;
  }
  [[nodiscard]] constexpr HostId host_under(LeafId leaf, std::uint32_t local) const {
    return HostId{leaf.v() * hosts_per_leaf + local};
  }
  [[nodiscard]] constexpr SpineId spine_of(UplinkIndex u) const {
    return SpineId{u.v() / parallel};
  }
  [[nodiscard]] constexpr std::uint32_t lane_of(UplinkIndex u) const { return u.v() % parallel; }
  /// Port index of uplink `u` on its spine switch, for a given leaf.
  [[nodiscard]] constexpr PortIndex spine_port(LeafId leaf, UplinkIndex u) const {
    return PortIndex{leaf.v() * parallel + lane_of(u)};
  }
  /// Leaf-switch port carrying uplink `u`.
  [[nodiscard]] constexpr PortIndex leaf_uplink_port(UplinkIndex u) const {
    return PortIndex{hosts_per_leaf + u.v()};
  }
  /// Inverse of leaf_uplink_port: which uplink a leaf port carries.
  [[nodiscard]] constexpr UplinkIndex uplink_of_leaf_port(PortIndex port) const {
    return UplinkIndex{port.v() - hosts_per_leaf};
  }
};

}  // namespace flowpulse::net
