#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "core/units.h"
#include "net/counters.h"
#include "net/device.h"
#include "net/fault.h"
#include "net/packet.h"
#include "net/types.h"
#include "sim/audit.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

#if FP_AUDIT_ENABLED
#include <map>
#endif

namespace flowpulse::net {

/// Physical parameters of one unidirectional link.
struct LinkParams {
  core::GbitsPerSec bandwidth{400.0};
  sim::Time prop_delay = sim::Time::nanoseconds(200);
};

/// An output port plus the unidirectional link it drives.
///
/// Holds one FIFO per priority, serves them in strict priority order
/// (skipping PFC-paused classes), serializes one packet at a time at the
/// link rate, applies the link's fault model when serialization completes,
/// and delivers surviving packets to the peer after the propagation delay.
///
/// PFC pause affects only the *start* of transmissions — an in-flight packet
/// always completes, as on real hardware.
class EgressPort {
 public:
  /// What happened to a packet at this port (for transmit hooks).
  enum class TxEvent : std::uint8_t {
    kOnWire,   ///< finished serialization and survived the fault model
    kDropped,  ///< finished serialization but lost to the link fault
  };
  using TxHook = std::function<void(const Packet&, TxEvent)>;
  using DepartHook = std::function<void(const Packet&)>;

  EgressPort(sim::Simulator& simulator, LinkParams params, std::string name);

  EgressPort(const EgressPort&) = delete;
  EgressPort& operator=(const EgressPort&) = delete;

  /// Attach the receiving device. Must be called before any enqueue().
  void connect(Device* peer, PortIndex peer_port);

  /// Mark this link as crossing an event-lane boundary: the peer device is
  /// owned by `peer_sim` (a different lane than the one driving this port).
  /// Deliveries then ride the lane mailbox (sim::EventLane::post_remote)
  /// with the same propagation delay instead of the local event queue, so
  /// the propagation delay doubles as the conservative lookahead the
  /// LaneRunner counts on. nullptr (the default) keeps delivery lane-local.
  void set_peer_lane(sim::Simulator* peer_sim) { peer_sim_ = peer_sim; }

  /// The simulator (event lane) that drives this port's transmit side.
  /// Lane-aware wiring compares owners to decide whether a hop crosses
  /// lanes (see Switch::send_pause and the laned FatTree constructors).
  [[nodiscard]] sim::Simulator& owner() const { return sim_; }

  /// Queue a packet for transmission; starts transmitting if idle.
  void enqueue(Packet p);

  /// PFC: (un)pause one priority class.
  void set_paused(Priority prio, bool paused);
  [[nodiscard]] bool paused(Priority prio) const { return paused_[priority_index(prio)]; }

  [[nodiscard]] core::Bytes queued_bytes() const { return queued_bytes_total_; }
  [[nodiscard]] core::Bytes queued_bytes(Priority prio) const {
    return queued_bytes_[priority_index(prio)];
  }
  /// Bytes a packet of priority `prio` would wait behind under strict
  /// priority scheduling: everything queued at its own class or above.
  /// This is the occupancy adaptive spraying should compare — lower-class
  /// backlog does not delay the packet, so it must not steer it (paper
  /// §5.1: prioritizing the measured collective isolates its spraying from
  /// background load).
  [[nodiscard]] core::Bytes queued_bytes_at_or_above(Priority prio) const {
    core::Bytes bytes{};
    for (int pi = 0; pi <= priority_index(prio); ++pi) bytes += queued_bytes_[pi];
    return bytes;
  }
  [[nodiscard]] std::size_t queued_packets() const;
  [[nodiscard]] bool busy() const { return transmitting_; }

  void set_fault(FaultSpec fault) { fault_.set_spec(fault); }
  [[nodiscard]] const FaultSpec& fault() const { return fault_.spec(); }
  [[nodiscard]] const FaultModel& fault_model() const { return fault_; }

  /// RNG used for fault sampling; set once at wiring time.
  void set_fault_rng(sim::Rng* rng) { fault_rng_ = rng; }

  /// Observe wire transmissions (used by the transport for RTO timing and
  /// by tests). Fires after serialization, before propagation.
  void set_tx_hook(TxHook hook) { tx_hook_ = std::move(hook); }

  /// Fires when a packet leaves the queues (starts serialization); used by
  /// the owning switch to release PFC ingress accounting.
  void set_depart_hook(DepartHook hook) { depart_hook_ = std::move(hook); }

  [[nodiscard]] const LinkCounters& counters() const { return counters_; }
  [[nodiscard]] const LinkParams& params() const { return params_; }
  [[nodiscard]] const std::string& name() const { return name_; }

#if FP_AUDIT_ENABLED
  /// Byte-conservation invariant, checked automatically at quiesce:
  /// enqueued == queued + serialized, serialized == dropped + delivered,
  /// nothing in flight. Public so tests can force a check mid-run.
  void audit_verify_quiescent() const;
  /// Wire bytes of tagged collective data packets delivered to the peer,
  /// per job — the independent switch-side count the FlowPulse monitors
  /// are reconciled against.
  [[nodiscard]] core::Bytes audit_tagged_bytes(std::uint16_t job) const {
    const auto it = audit_tagged_bytes_by_job_.find(job);
    return it == audit_tagged_bytes_by_job_.end() ? core::Bytes{0} : it->second;
  }
  /// Test-only: corrupt the delivered-byte ledger so the negative-invariant
  /// tests can prove the conservation check fires.
  void audit_tamper_delivered_bytes(std::int64_t delta) {
    audit_delivered_bytes_ = core::Bytes{static_cast<std::uint64_t>(
        static_cast<std::int64_t>(audit_delivered_bytes_.v()) + delta)};
  }
#endif

 private:
  void try_start();
  void finish_transmission();
  void deliver_front();
  void deliver_remote(const Packet& pkt);

  sim::Simulator& sim_;
  LinkParams params_;
  std::string name_;
  Device* peer_ = nullptr;
  PortIndex peer_port_ = kInvalidPort;
  /// Destination lane for cross-lane links; nullptr for lane-local links.
  /// Writes stay partitioned: the owning lane writes queues/counters/
  /// on_wire_, the peer lane (inside deliver_remote) writes only the
  /// delivery-side audit ledgers — no field is touched by both.
  sim::Simulator* peer_sim_ = nullptr;

  std::array<std::deque<Packet>, kNumPriorities> queues_;
  std::array<core::Bytes, kNumPriorities> queued_bytes_{};
  core::Bytes queued_bytes_total_{};
  std::array<bool, kNumPriorities> paused_{};

  bool transmitting_ = false;
  Packet in_flight_{};
  /// Packets serialized and surviving the fault model, ordered by (equal)
  /// remaining propagation time; the propagation event delivers the front.
  std::deque<Packet> on_wire_;

  FaultModel fault_{};
  sim::Rng* fault_rng_ = nullptr;
  LinkCounters counters_{};
  TxHook tx_hook_;
  DepartHook depart_hook_;

#if FP_AUDIT_ENABLED
  core::Bytes audit_enqueued_bytes_{};
  core::Bytes audit_delivered_bytes_{};
  core::Packets audit_delivered_packets_{};
  std::map<std::uint16_t, core::Bytes> audit_tagged_bytes_by_job_;
#endif
};

}  // namespace flowpulse::net
