#include "net/switch.h"

#include <cassert>
#include <limits>
#include <utility>

namespace flowpulse::net {
namespace {

// 64-bit mix (splitmix64 finalizer) for ECMP flow hashing.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t flow_hash(const Packet& p) {
  std::uint64_t h = mix64(p.flow_id ^ 0x9e3779b97f4a7c15ULL);
  h = mix64(h ^ (static_cast<std::uint64_t>(p.src.v()) << 32 | p.dst.v()));
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// Switch (PFC base)
// ---------------------------------------------------------------------------

Switch::Switch(sim::Simulator& simulator, std::string name, std::uint32_t num_ports,
               PfcConfig pfc)
    : sim_{simulator},
      name_{std::move(name)},
      pfc_{pfc},
      ingress_bytes_(num_ports),
      upstream_paused_(num_ports),
      upstream_(num_ports, nullptr) {
#if FP_AUDIT_ENABLED
  audit_pause_epoch_.resize(num_ports);
  sim_.audit_register_quiesce([this] { audit_verify_ingress_drained(); });
#endif
}

void Switch::set_upstream(PortIndex in_port, EgressPort* upstream) {
  assert(in_port.v() < upstream_.size());
  upstream_[in_port.v()] = upstream;
}

void Switch::pfc_on_arrival(const Packet& p, PortIndex in_port) {
  if (!pfc_.enabled) return;
  assert(in_port.v() < ingress_bytes_.size());
  const int pi = priority_index(p.priority);
  auto& bytes = ingress_bytes_[in_port.v()][pi];
  bytes += p.size_bytes;
  if (bytes > pfc_.xoff_bytes && !upstream_paused_[in_port.v()][pi]) {
    upstream_paused_[in_port.v()][pi] = true;
    FP_TRACE(sim_, kPfcPause, name_.c_str(), in_port.v(), static_cast<std::uint32_t>(pi),
             bytes.v(), 0.0, "xoff");
    send_pause(in_port, p.priority, true);
#if FP_AUDIT_ENABLED
    // Deadlock watchdog: if this pause is still continuously asserted when
    // the watchdog fires, the ingress class never drained below XON.
    const std::uint64_t epoch = ++audit_pause_epoch_[in_port.v()][pi];
    sim_.schedule_in(kPfcStuckPauseTimeout, [this, in_port, pi, epoch] {
      FP_AUDIT(!(upstream_paused_[in_port.v()][pi] &&
                 audit_pause_epoch_[in_port.v()][pi] == epoch),
               "pfc-stuck-pause", name_ + ".in" + std::to_string(in_port.v()), pi,
               sim_.now().ps(),
               "PAUSE held continuously for " +
                   std::to_string(kPfcStuckPauseTimeout.us()) + "us; ingress class holds " +
                   std::to_string(ingress_bytes_[in_port.v()][pi].v()) + " bytes");
    });
#endif
  }
}

void Switch::pfc_on_depart(const Packet& p) {
  if (!pfc_.enabled || p.pfc_ingress == kInvalidPort) return;
  assert(p.pfc_ingress.v() < ingress_bytes_.size());
  const int pi = priority_index(p.priority);
  auto& bytes = ingress_bytes_[p.pfc_ingress.v()][pi];
  assert(bytes >= p.size_bytes);
  bytes -= p.size_bytes;
  if (bytes <= pfc_.xon_bytes && upstream_paused_[p.pfc_ingress.v()][pi]) {
    upstream_paused_[p.pfc_ingress.v()][pi] = false;
    FP_TRACE(sim_, kPfcResume, name_.c_str(), p.pfc_ingress.v(),
             static_cast<std::uint32_t>(pi), bytes.v(), 0.0, "xon");
#if FP_AUDIT_ENABLED
    ++audit_pause_epoch_[p.pfc_ingress.v()][pi];  // resume: disarm the watchdog
#endif
    send_pause(p.pfc_ingress, p.priority, false);
  }
}

#if FP_AUDIT_ENABLED
void Switch::audit_verify_ingress_drained() const {
  // At quiesce every arrived packet has departed its egress queue, so the
  // shared-buffer ledger must read zero on every (port, class) — leftover
  // bytes mean a lost or double-counted departure.
  for (std::size_t port = 0; port < ingress_bytes_.size(); ++port) {
    for (int pi = 0; pi < kNumPriorities; ++pi) {
      FP_AUDIT(ingress_bytes_[port][pi].v() == 0, "pfc-buffer-accounting",
               name_ + ".in" + std::to_string(port), pi, sim_.now().ps(),
               std::to_string(ingress_bytes_[port][pi].v()) +
                   " bytes still accounted in the ingress buffer at quiesce");
    }
  }
}
#endif

void Switch::send_pause(PortIndex in_port, Priority prio, bool pause) {
  EgressPort* up = upstream_[in_port.v()];
  if (up == nullptr) return;  // host-facing port with no pausable upstream
  // The PAUSE frame crosses the reverse link; model its propagation delay.
  if (&up->owner() != &sim_) {
    // The upstream port transmits from another event lane: the PAUSE frame
    // is a cross-lane message like any other, carried by the mailbox with
    // the same reverse-link propagation delay.
    sim_.post_remote(
        up->owner(), up->params().prop_delay,
        // fplint: ok(lane-capture): `up` is owned by up->owner(), the very
        // lane this callable is posted to — never dereferenced source-side
        sim::LaneFn{[up, prio, pause] { up->set_paused(prio, pause); }});
    return;
  }
  sim_.schedule_in(up->params().prop_delay, [up, prio, pause] { up->set_paused(prio, pause); });
}

void Switch::hook_depart(EgressPort& port) {
  port.set_depart_hook([this](const Packet& p) { pfc_on_depart(p); });
}

// ---------------------------------------------------------------------------
// LeafSwitch
// ---------------------------------------------------------------------------

LeafSwitch::LeafSwitch(sim::Simulator& simulator, LeafId id, const TopologyInfo& info,
                       const RoutingState& routing, SprayPolicy spray, PfcConfig pfc,
                       LinkParams host_link, LinkParams fabric_link, sim::Rng rng,
                       core::Bytes spray_quantum_bytes)
    : Switch{simulator, "leaf" + std::to_string(id.v()),
             info.hosts_per_leaf + info.uplinks_per_leaf(), pfc},
      id_{id},
      info_{info},
      routing_{routing},
      spray_{spray},
      rng_{rng},
      spray_quantum_{spray_quantum_bytes.v() == 0 ? core::Bytes{1} : spray_quantum_bytes},
      sent_bytes_(static_cast<std::size_t>(info.leaves) * kNumPriorities *
                      info.uplinks_per_leaf(),
                  core::Bytes{}) {
  host_ports_.reserve(info.hosts_per_leaf);
  for (std::uint32_t h = 0; h < info.hosts_per_leaf; ++h) {
    host_ports_.push_back(std::make_unique<EgressPort>(
        simulator, host_link, name() + ".down" + std::to_string(h)));
    hook_depart(*host_ports_.back());
  }
  uplink_ports_.reserve(info.uplinks_per_leaf());
  for (const UplinkIndex u : core::ids<UplinkIndex>(info.uplinks_per_leaf())) {
    uplink_ports_.push_back(std::make_unique<EgressPort>(
        simulator, fabric_link, name() + ".up" + std::to_string(u.v())));
    hook_depart(*uplink_ports_.back());
  }
}

void LeafSwitch::set_fault_rng(sim::Rng* rng) {
  for (auto& p : host_ports_) p->set_fault_rng(rng);
  for (auto& p : uplink_ports_) p->set_fault_rng(rng);
}

void LeafSwitch::receive(Packet p, PortIndex in_port) {
  pfc_on_arrival(p, in_port);
  if (spine_hook_ && in_port.v() >= info_.hosts_per_leaf) {
    spine_hook_(info_.uplink_of_leaf_port(in_port), p);
  }

  const LeafId dst_leaf = info_.leaf_of(p.dst);
  EgressPort* out = nullptr;
  if (dst_leaf == id_) {
    out = host_ports_[info_.local_index(p.dst)].get();
  } else {
    const UplinkIndex u = choose_uplink(p, dst_leaf);
    if (u == kNoUplink) {
      // Network partition toward dst_leaf: count and release the buffer.
      ++counters_.no_route_drops;
      p.pfc_ingress = in_port;
      pfc_on_depart(p);
      return;
    }
    out = uplink_ports_[u.v()].get();
  }
  ++counters_.forwarded_packets;
  p.pfc_ingress = in_port;
  out->enqueue(p);
}

UplinkIndex LeafSwitch::choose_uplink(const Packet& p, LeafId dst_leaf) {
  const std::vector<UplinkIndex>& valid = routing_.valid_uplinks(id_, dst_leaf);
  if (valid.empty()) return kNoUplink;

  switch (spray_) {
    case SprayPolicy::kRandom:
      return valid[rng_.next_below(valid.size())];

    case SprayPolicy::kEcmp:
      return valid[flow_hash(p) % valid.size()];

    case SprayPolicy::kFlowlet: {
      // Let-It-Flow-style flowlet switching: a flow sticks to its lane
      // while packets keep arriving; an idle gap > flowlet_gap_ lets it
      // re-route to the currently least-occupied valid lane.
      if (flowlet_table_.empty()) flowlet_table_.resize(kFlowletTableSize);
      const std::uint64_t key = flow_hash(p);
      FlowletEntry& entry = flowlet_table_[key % kFlowletTableSize];
      const sim::Time now = sim_.now();
      const bool fresh = entry.key != key || now - entry.last > flowlet_gap_;
      if (fresh || routing_.known_failed(id_, entry.uplink)) {
        UplinkIndex pick = valid[0];
        core::Bytes best{std::numeric_limits<std::uint64_t>::max()};
        for (const UplinkIndex u : valid) {
          const core::Bytes occ = uplink_ports_[u.v()]->queued_bytes_at_or_above(p.priority);
          if (occ < best) {
            best = occ;
            pick = u;
          }
        }
        entry.key = key;
        entry.uplink = pick;
      }
      entry.last = now;
      // The sticky uplink might be invalid for this destination (known
      // remote-side failure); fall back to a hash choice over valid lanes.
      for (const UplinkIndex u : valid) {
        if (u == entry.uplink) return u;
      }
      return valid[key % valid.size()];
    }

    case SprayPolicy::kAdaptive: {
      // Least-occupied valid uplink, with round-robin tie-breaking: when a
      // drained fabric leaves all queues equal, successive packets cycle
      // through the lanes, giving the near-perfect balance real APS
      // hardware achieves instead of multinomial sampling noise.
      auto grade = [this, &p](UplinkIndex u) {
        return uplink_ports_[u.v()]->queued_bytes_at_or_above(p.priority) / spray_quantum_;
      };
      core::Bytes* deficit =
          &sent_bytes_[(static_cast<std::size_t>(dst_leaf.v()) * kNumPriorities +
                        priority_index(p.priority)) *
                       info_.uplinks_per_leaf()];
      // Least congestion grade first; among those, least bytes already
      // carried for this (destination, class); port index as final tiebreak.
      UplinkIndex pick = valid[0];
      std::uint64_t best_grade = std::numeric_limits<std::uint64_t>::max();
      core::Bytes best_deficit{std::numeric_limits<std::uint64_t>::max()};
      for (const UplinkIndex u : valid) {
        const std::uint64_t g = grade(u);
        if (g > best_grade) continue;
        if (g < best_grade || deficit[u.v()] < best_deficit) {
          best_grade = g;
          best_deficit = deficit[u.v()];
          pick = u;
        }
      }
      deficit[pick.v()] += p.size_bytes;
      return pick;
    }
  }
  return kNoUplink;
}

// ---------------------------------------------------------------------------
// SpineSwitch
// ---------------------------------------------------------------------------

SpineSwitch::SpineSwitch(sim::Simulator& simulator, SpineId id, const TopologyInfo& info,
                         PfcConfig pfc, LinkParams fabric_link)
    : Switch{simulator, "spine" + std::to_string(id.v()), info.leaves * info.parallel, pfc},
      id_{id},
      info_{info} {
  const std::uint32_t ports = info.leaves * info.parallel;
  down_ports_.reserve(ports);
  for (const PortIndex port : core::ids<PortIndex>(ports)) {
    down_ports_.push_back(std::make_unique<EgressPort>(
        simulator, fabric_link, name() + ".down" + std::to_string(port.v())));
    hook_depart(*down_ports_.back());
  }
}

void SpineSwitch::set_fault_rng(sim::Rng* rng) {
  for (auto& p : down_ports_) p->set_fault_rng(rng);
}

void SpineSwitch::receive(Packet p, PortIndex in_port) {
  pfc_on_arrival(p, in_port);
  // Arrival port encodes (src leaf, lane); keep the lane downstream so each
  // lane behaves as an independent virtual spine.
  const std::uint32_t lane = in_port.v() % info_.parallel;
  const LeafId dst_leaf = info_.leaf_of(p.dst);
  ++counters_.forwarded_packets;
  p.pfc_ingress = in_port;
  down_ports_[dst_leaf.v() * info_.parallel + lane]->enqueue(p);
}

}  // namespace flowpulse::net
