#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "sim/time.h"

namespace flowpulse::net {

/// A fault attached to one unidirectional link.
///
/// kDisconnect and kBlackHole both drop every packet; the difference is
/// administrative: a disconnect is *known* (reflected into RoutingState, as
/// the switch OS removes the link from forwarding), while a black hole is
/// *silent* — e.g. FIB corruption — and routing keeps using the link.
/// kRandomDrop models gray links (elevated BER → corrupted packets dropped
/// at the next switch) at a configurable rate; whether it is known or silent
/// again depends on whether the scenario tells RoutingState about it.
/// kGilbertElliott models *bursty* gray links with the classic two-state
/// Gilbert–Elliott chain: per packet the link moves good↔bad with the given
/// transition probabilities and drops at the state's loss rate — the
/// standard model for BER-driven corruption, which arrives in bursts rather
/// than as independent coin flips.
struct FaultSpec {
  enum class Kind : std::uint8_t {
    kNone,
    kDisconnect,
    kRandomDrop,
    kBlackHole,
    kGilbertElliott,
  };

  Kind kind = Kind::kNone;
  /// Whether the switch OS's error counters register this fault's drops.
  /// This is what makes a fault *silent* (§1): corruption dropped at the
  /// receiver PHY, FIB black holes, or counters corrupted by the fault
  /// itself never show up in telemetry. Physical drops are always counted
  /// in LinkCounters::dropped_* (ground truth for conservation checks);
  /// only the telemetry_dropped_* view respects this flag.
  bool visible_to_counters = false;
  double drop_rate = 0.0;  ///< kRandomDrop rate; kGilbertElliott bad-state rate
  double good_to_bad = 0.0;   ///< kGilbertElliott: P(good→bad) per packet
  double bad_to_good = 0.0;   ///< kGilbertElliott: P(bad→good) per packet
  double good_loss = 0.0;     ///< kGilbertElliott: loss rate in the good state
  sim::Time start = sim::Time::zero();  ///< fault active in [start, end)
  sim::Time end = sim::Time::max();
  /// Periodic link flap: within [start, end) the fault is only active during
  /// the first `flap_on` of every `flap_period`, modelling a cable that
  /// repeatedly degrades and recovers (the case that makes one-shot
  /// quarantine wrong and motivates probation/restore logic in ctrl/).
  /// flap_period == 0 disables flapping (continuously active).
  sim::Time flap_period = sim::Time::zero();
  sim::Time flap_on = sim::Time::zero();

  [[nodiscard]] bool active_at(sim::Time t) const {
    if (kind == Kind::kNone || t < start || t >= end) return false;
    if (flap_period <= sim::Time::zero()) return true;
    return (t - start).ps() % flap_period.ps() < flap_on.ps();
  }

  /// Is the fault active at any instant of [window_start, window_end)?
  /// Ground truth for labelling an iteration as fault-affected.
  [[nodiscard]] bool active_during(sim::Time window_start, sim::Time window_end) const {
    if (kind == Kind::kNone) return false;
    const sim::Time a = window_start < start ? start : window_start;
    const sim::Time b = window_end < end ? window_end : end;
    if (a >= b) return false;
    if (flap_period <= sim::Time::zero()) return true;
    const std::int64_t period = flap_period.ps();
    const std::int64_t phase = (a - start).ps() % period;
    if (phase < flap_on.ps()) return true;  // window opens inside an active burst
    // Otherwise the next burst begins (period - phase) after `a`.
    return (b - a).ps() > period - phase;
  }
  [[nodiscard]] bool drops_all() const {
    return kind == Kind::kDisconnect || kind == Kind::kBlackHole;
  }

  [[nodiscard]] static FaultSpec none() { return {}; }
  [[nodiscard]] static FaultSpec disconnect() {
    FaultSpec f;
    f.kind = Kind::kDisconnect;
    f.visible_to_counters = true;  // a dead port is plainly visible
    return f;
  }
  [[nodiscard]] static FaultSpec black_hole(sim::Time start = sim::Time::zero(),
                                            sim::Time end = sim::Time::max()) {
    FaultSpec f;
    f.kind = Kind::kBlackHole;
    f.start = start;
    f.end = end;
    return f;
  }
  [[nodiscard]] static FaultSpec random_drop(double rate,
                                             sim::Time start = sim::Time::zero(),
                                             sim::Time end = sim::Time::max()) {
    FaultSpec f;
    f.kind = Kind::kRandomDrop;
    f.drop_rate = rate;
    f.start = start;
    f.end = end;
    return f;
  }

  /// Bursty gray link. `mean_burst_packets` sets P(bad→good) = 1/mean;
  /// `bad_fraction` sets P(good→bad) so the chain spends that fraction of
  /// packets in the bad state; `bad_loss` is the loss rate while bad. The
  /// long-run average loss is ≈ bad_fraction × bad_loss.
  [[nodiscard]] static FaultSpec gilbert_elliott(double bad_fraction, double mean_burst_packets,
                                                 double bad_loss = 1.0, double in_good_loss = 0.0,
                                                 sim::Time start = sim::Time::zero(),
                                                 sim::Time end = sim::Time::max()) {
    FaultSpec f;
    f.kind = Kind::kGilbertElliott;
    f.drop_rate = bad_loss;
    f.bad_to_good = mean_burst_packets > 0.0 ? 1.0 / mean_burst_packets : 1.0;
    // Stationary bad fraction = p / (p + r)  →  p = r · frac / (1 − frac).
    f.good_to_bad =
        bad_fraction >= 1.0 ? 1.0 : f.bad_to_good * bad_fraction / (1.0 - bad_fraction);
    f.good_loss = in_good_loss;
    f.start = start;
    f.end = end;
    return f;
  }

  /// Copy of this fault gated by a periodic flap: active during the first
  /// `active` of every `period` (within [start, end)). Composes with every
  /// kind — e.g. `black_hole().with_flap(ms(1), us(200))` is a FIB entry
  /// that corrupts and self-heals repeatedly.
  [[nodiscard]] FaultSpec with_flap(sim::Time period, sim::Time active) const {
    FaultSpec f = *this;
    f.flap_period = period;
    f.flap_on = active;
    return f;
  }
};

/// Per-link fault state machine: wraps the (immutable) FaultSpec with the
/// mutable Gilbert–Elliott channel state. Memoryless kinds pass through.
class FaultModel {
 public:
  void set_spec(const FaultSpec& spec) {
    spec_ = spec;
    ge_bad_ = false;
  }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// Decide whether one packet transmitted at `now` is lost.
  [[nodiscard]] bool should_drop(sim::Time now, sim::Rng& rng) {
    if (!spec_.active_at(now)) return false;
    if (spec_.drops_all()) return true;
    if (spec_.kind == FaultSpec::Kind::kRandomDrop) return rng.bernoulli(spec_.drop_rate);
    // Gilbert–Elliott: advance the chain, then sample the state's loss.
    if (ge_bad_) {
      if (rng.bernoulli(spec_.bad_to_good)) ge_bad_ = false;
    } else {
      if (rng.bernoulli(spec_.good_to_bad)) ge_bad_ = true;
    }
    return rng.bernoulli(ge_bad_ ? spec_.drop_rate : spec_.good_loss);
  }

  [[nodiscard]] bool in_bad_state() const { return ge_bad_; }

 private:
  FaultSpec spec_{};
  bool ge_bad_ = false;
};

}  // namespace flowpulse::net
