#include "net/routing.h"

#include <cassert>

namespace flowpulse::net {

RoutingState::RoutingState(std::uint32_t leaves, std::uint32_t uplinks_per_leaf)
    : leaves_{leaves},
      uplinks_{uplinks_per_leaf},
      failed_(static_cast<std::size_t>(leaves) * uplinks_per_leaf, false),
      cache_(static_cast<std::size_t>(leaves) * leaves) {}

void RoutingState::set_known_failed(LeafId leaf, UplinkIndex uplink, bool failed) {
  assert(leaf.v() < leaves_ && uplink.v() < uplinks_);
  failed_[static_cast<std::size_t>(leaf.v()) * uplinks_ + uplink.v()] = failed;
  ++version_;
}

bool RoutingState::known_failed(LeafId leaf, UplinkIndex uplink) const {
  assert(leaf.v() < leaves_ && uplink.v() < uplinks_);
  return failed_[static_cast<std::size_t>(leaf.v()) * uplinks_ + uplink.v()];
}

std::uint32_t RoutingState::known_failed_count(LeafId leaf) const {
  std::uint32_t n = 0;
  for (const UplinkIndex u : core::ids<UplinkIndex>(uplinks_)) {
    if (known_failed(leaf, u)) ++n;
  }
  return n;
}

const std::vector<UplinkIndex>& RoutingState::valid_uplinks(LeafId src_leaf,
                                                            LeafId dst_leaf) const {
  assert(src_leaf.v() < leaves_ && dst_leaf.v() < leaves_);
  CacheEntry& entry = cache_[static_cast<std::size_t>(src_leaf.v()) * leaves_ + dst_leaf.v()];
  if (entry.version != version_) {
    entry.uplinks.clear();
    for (const UplinkIndex u : core::ids<UplinkIndex>(uplinks_)) {
      if (!known_failed(src_leaf, u) && !known_failed(dst_leaf, u)) {
        entry.uplinks.push_back(u);
      }
    }
    entry.version = version_;
  }
  return entry.uplinks;
}

}  // namespace flowpulse::net
