#pragma once

#include <cstdint>

namespace flowpulse::net {

/// Per-unidirectional-link statistics. `tx_*` counts packets that finished
/// serialization; `dropped_*` the subset lost to the link's fault; the rest
/// were delivered to the peer. Invariant (tested):
///   tx == dropped + delivered.
struct LinkCounters {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  /// The subset of drops the switch OS's error counters actually register
  /// (see FaultSpec::visible_to_counters). Silent faults drop packets
  /// without moving this — which is why counter-polling telemetry misses
  /// them (paper §1/§3).
  std::uint64_t telemetry_dropped_packets = 0;

  [[nodiscard]] std::uint64_t delivered_packets() const { return tx_packets - dropped_packets; }
  [[nodiscard]] std::uint64_t delivered_bytes() const { return tx_bytes - dropped_bytes; }
};

/// Per-switch statistics.
struct SwitchCounters {
  std::uint64_t forwarded_packets = 0;
  std::uint64_t no_route_drops = 0;  ///< no valid uplink toward destination
};

}  // namespace flowpulse::net
