#pragma once

#include "core/units.h"

namespace flowpulse::net {

/// Per-unidirectional-link statistics. `tx_*` counts packets that finished
/// serialization; `dropped_*` the subset lost to the link's fault; the rest
/// were delivered to the peer. Invariant (tested):
///   tx == dropped + delivered.
/// Byte and packet tallies are distinct strong types (core::Bytes /
/// core::Packets): adding one to the other does not compile.
struct LinkCounters {
  core::Packets tx_packets{};
  core::Bytes tx_bytes{};
  core::Packets dropped_packets{};
  core::Bytes dropped_bytes{};
  /// The subset of drops the switch OS's error counters actually register
  /// (see FaultSpec::visible_to_counters). Silent faults drop packets
  /// without moving this — which is why counter-polling telemetry misses
  /// them (paper §1/§3).
  core::Packets telemetry_dropped_packets{};

  [[nodiscard]] core::Packets delivered_packets() const { return tx_packets - dropped_packets; }
  [[nodiscard]] core::Bytes delivered_bytes() const { return tx_bytes - dropped_bytes; }
};

/// Per-switch statistics.
struct SwitchCounters {
  core::Packets forwarded_packets{};
  core::Packets no_route_drops{};  ///< no valid uplink toward destination
};

}  // namespace flowpulse::net
