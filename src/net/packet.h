#pragma once

#include <cstdint>

#include "core/units.h"
#include "net/types.h"

namespace flowpulse::net {

enum class PacketKind : std::uint8_t {
  kData,   ///< transport data segment
  kAck,    ///< transport selective acknowledgement
  kProbe,  ///< baseline prober traffic (Pingmesh-style)
};

/// Per-packet wire header overhead we account for (Eth + IP + UDP + BTH-ish).
inline constexpr core::Bytes kHeaderBytes{64};
/// Size of a pure control packet (ACK / probe) on the wire.
inline constexpr core::Bytes kControlPacketBytes{64};

/// A simulated packet. Payload contents are never modeled — only sizes and
/// identifiers — since every consumer (switch counters, FlowPulse monitors,
/// the transport) operates on volumes and sequence numbers. Collective
/// numerical correctness is validated at the message layer instead.
struct Packet {
  FlowId flow_id = 0;
  HostId src{};
  HostId dst{};
  std::uint64_t msg_id = 0;  ///< unique per (src, message)
  core::Bytes msg_bytes{};       ///< total payload bytes of the message
  std::uint32_t total_segments = 0;  ///< segments the message was split into
  std::uint32_t seq = 0;     ///< segment index within the message
  /// For ACKs: SACK bitmap — bit i set means segment (seq - 1 - i) was also
  /// received. Coalesced acknowledgement state (as RoCE NICs maintain)
  /// makes the transport robust to ACK loss: a lost ACK is covered by the
  /// bitmaps of the following ones instead of forcing a spurious data
  /// retransmission.
  std::uint64_t ack_bitmap = 0;
  core::Bytes size_bytes{};  ///< wire size including kHeaderBytes
  /// Scratch rewritten at each switch hop: ingress port the packet entered
  /// on, used for PFC ingress accounting on departure.
  PortIndex pfc_ingress = kInvalidPort;
  PacketKind kind = PacketKind::kData;
  Priority priority = Priority::kCollective;
  std::uint8_t retx = 0;  ///< retransmission attempt count
};

/// Payload bytes carried by a data packet of the given wire size.
[[nodiscard]] constexpr core::Bytes payload_bytes(const Packet& p) {
  return p.size_bytes > kHeaderBytes ? p.size_bytes - kHeaderBytes : core::Bytes{0};
}

}  // namespace flowpulse::net
