#include "net/three_level.h"

#include <cassert>
#include <limits>
#include <string>

namespace flowpulse::net {
namespace {

/// Congestion-graded, byte-deficit per-packet spray (same discipline as the
/// 2-level leaf, see LeafSwitch): least congestion grade first, then least
/// cumulative bytes carried for this (destination, class).
template <typename Ports>
UplinkIndex pick_byte_deficit(const Ports& ports, const std::vector<UplinkIndex>& candidates,
                              const Packet& p, core::Bytes quantum, core::Bytes* deficit) {
  UplinkIndex pick = candidates[0];
  std::uint64_t best_grade = std::numeric_limits<std::uint64_t>::max();
  core::Bytes best_deficit{std::numeric_limits<std::uint64_t>::max()};
  for (const UplinkIndex u : candidates) {
    const std::uint64_t g = ports[u.v()]->queued_bytes_at_or_above(p.priority) / quantum;
    if (g > best_grade) continue;
    if (g < best_grade || deficit[u.v()] < best_deficit) {
      best_grade = g;
      best_deficit = deficit[u.v()];
      pick = u;
    }
  }
  deficit[pick.v()] += p.size_bytes;
  return pick;
}

std::vector<UplinkIndex> iota_candidates(std::uint32_t n) {
  std::vector<UplinkIndex> v;
  v.reserve(n);
  for (const UplinkIndex u : core::ids<UplinkIndex>(n)) v.push_back(u);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Leaf3Switch
// ---------------------------------------------------------------------------

Leaf3Switch::Leaf3Switch(sim::Simulator& simulator, LeafId id, const ThreeLevelInfo& info,
                         const RoutingState& leaf_spine_routing, PfcConfig pfc,
                         LinkParams host_link, LinkParams fabric_link,
                         core::Bytes spray_quantum)
    : Switch{simulator, "leaf3_" + std::to_string(id.v()),
             info.hosts_per_leaf + info.spines_per_pod, pfc},
      id_{id},
      info_{info},
      routing_{leaf_spine_routing},
      spray_quantum_{spray_quantum.v() == 0 ? core::Bytes{1} : spray_quantum},
      sent_bytes_(static_cast<std::size_t>(info.num_leaves()) * kNumPriorities *
                      info.spines_per_pod,
                  core::Bytes{}) {
  for (std::uint32_t h = 0; h < info.hosts_per_leaf; ++h) {
    host_ports_.push_back(std::make_unique<EgressPort>(
        simulator, host_link, name() + ".down" + std::to_string(h)));
    hook_depart(*host_ports_.back());
  }
  for (std::uint32_t s = 0; s < info.spines_per_pod; ++s) {
    uplink_ports_.push_back(std::make_unique<EgressPort>(
        simulator, fabric_link, name() + ".up" + std::to_string(s)));
    hook_depart(*uplink_ports_.back());
  }
}

void Leaf3Switch::set_fault_rng(sim::Rng* rng) {
  for (auto& p : host_ports_) p->set_fault_rng(rng);
  for (auto& p : uplink_ports_) p->set_fault_rng(rng);
}

void Leaf3Switch::receive(Packet p, PortIndex in_port) {
  pfc_on_arrival(p, in_port);
  if (hook_ && in_port.v() >= info_.hosts_per_leaf) {
    hook_(UplinkIndex{in_port.v() - info_.hosts_per_leaf}, p);
  }

  const LeafId dst_leaf = info_.leaf_of(p.dst);
  EgressPort* out = nullptr;
  if (dst_leaf == id_) {
    out = host_ports_[p.dst.v() % info_.hosts_per_leaf].get();
  } else {
    const auto& valid = routing_.valid_uplinks(id_, dst_leaf);
    if (valid.empty()) {
      ++counters_.no_route_drops;
      p.pfc_ingress = in_port;
      pfc_on_depart(p);
      return;
    }
    core::Bytes* deficit =
        &sent_bytes_[(static_cast<std::size_t>(dst_leaf.v()) * kNumPriorities +
                      priority_index(p.priority)) *
                     info_.spines_per_pod];
    out = uplink_ports_[pick_byte_deficit(uplink_ports_, valid, p, spray_quantum_, deficit)
                            .v()]
              .get();
  }
  ++counters_.forwarded_packets;
  p.pfc_ingress = in_port;
  out->enqueue(p);
}

// ---------------------------------------------------------------------------
// PodSpineSwitch
// ---------------------------------------------------------------------------

PodSpineSwitch::PodSpineSwitch(sim::Simulator& simulator, std::uint32_t pod,
                               std::uint32_t index, const ThreeLevelInfo& info, PfcConfig pfc,
                               LinkParams fabric_link, core::Bytes spray_quantum)
    : Switch{simulator,
             "podspine" + std::to_string(pod) + "_" + std::to_string(index),
             info.leaves_per_pod + info.cores_per_group(), pfc},
      pod_{pod},
      index_{index},
      info_{info},
      spray_quantum_{spray_quantum.v() == 0 ? core::Bytes{1} : spray_quantum},
      sent_bytes_(static_cast<std::size_t>(info.num_leaves()) * kNumPriorities *
                      info.cores_per_group(),
                  core::Bytes{}),
      spray_candidates_{iota_candidates(info.cores_per_group())} {
  for (std::uint32_t l = 0; l < info.leaves_per_pod; ++l) {
    down_ports_.push_back(std::make_unique<EgressPort>(
        simulator, fabric_link, name() + ".down" + std::to_string(l)));
    hook_depart(*down_ports_.back());
  }
  for (std::uint32_t k = 0; k < info.cores_per_group(); ++k) {
    up_ports_.push_back(std::make_unique<EgressPort>(
        simulator, fabric_link, name() + ".up" + std::to_string(k)));
    hook_depart(*up_ports_.back());
  }
}

void PodSpineSwitch::set_fault_rng(sim::Rng* rng) {
  for (auto& p : down_ports_) p->set_fault_rng(rng);
  for (auto& p : up_ports_) p->set_fault_rng(rng);
}

void PodSpineSwitch::receive(Packet p, PortIndex in_port) {
  pfc_on_arrival(p, in_port);
  const bool from_core = in_port.v() >= info_.leaves_per_pod;
  if (hook_ && from_core) hook_(in_port.v() - info_.leaves_per_pod, p);

  const LeafId dst_leaf = info_.leaf_of(p.dst);
  const std::uint32_t dst_pod = info_.pod_of_leaf(dst_leaf);
  EgressPort* out = nullptr;
  if (dst_pod == pod_) {
    out = down_ports_[info_.local_leaf(dst_leaf)].get();
  } else {
    assert(!from_core && "core handed a packet to the wrong pod");
    // Cross-pod: spray over this group's cores. Core-level faults are
    // silent by construction, so every core is a routing candidate
    // (spray_candidates_, precomputed per switch).
    core::Bytes* deficit =
        &sent_bytes_[(static_cast<std::size_t>(dst_leaf.v()) * kNumPriorities +
                      priority_index(p.priority)) *
                     info_.cores_per_group()];
    out = up_ports_[pick_byte_deficit(up_ports_, spray_candidates_, p, spray_quantum_, deficit)
                        .v()]
              .get();
  }
  ++counters_.forwarded_packets;
  p.pfc_ingress = in_port;
  out->enqueue(p);
}

// ---------------------------------------------------------------------------
// CoreSwitch
// ---------------------------------------------------------------------------

CoreSwitch::CoreSwitch(sim::Simulator& simulator, std::uint32_t group, std::uint32_t k,
                       const ThreeLevelInfo& info, PfcConfig pfc, LinkParams fabric_link)
    : Switch{simulator, "core" + std::to_string(group) + "_" + std::to_string(k), info.pods,
             pfc},
      group_{group},
      k_{k},
      info_{info} {
  for (std::uint32_t pod = 0; pod < info.pods; ++pod) {
    down_ports_.push_back(std::make_unique<EgressPort>(
        simulator, fabric_link, name() + ".down" + std::to_string(pod)));
    hook_depart(*down_ports_.back());
  }
}

void CoreSwitch::set_fault_rng(sim::Rng* rng) {
  for (auto& p : down_ports_) p->set_fault_rng(rng);
}

void CoreSwitch::receive(Packet p, PortIndex in_port) {
  pfc_on_arrival(p, in_port);
  const std::uint32_t dst_pod = info_.pod_of_leaf(info_.leaf_of(p.dst));
  ++counters_.forwarded_packets;
  p.pfc_ingress = in_port;
  down_ports_[dst_pod]->enqueue(p);
}

// ---------------------------------------------------------------------------
// ThreeLevelFatTree
// ---------------------------------------------------------------------------

ThreeLevelFatTree::ThreeLevelFatTree(sim::Simulator& simulator, ThreeLevelConfig config)
    : ThreeLevelFatTree{std::vector<sim::Simulator*>{&simulator}, config} {}

ThreeLevelFatTree::ThreeLevelFatTree(std::vector<sim::Simulator*> lanes, ThreeLevelConfig config)
    : sim_{*lanes.front()},
      config_{config},
      routing_{config.shape.num_leaves(), config.shape.spines_per_pod},
      fault_rng_{config.seed ^ 0x3fa017ull},
      lanes_{std::move(lanes)} {
  const ThreeLevelInfo& shape = config_.shape;

  for (const HostId h : core::ids<HostId>(shape.num_hosts())) {
    hosts_.push_back(std::make_unique<Host>(sim_, h, config_.host_link));
  }
  for (const LeafId l : core::ids<LeafId>(shape.num_leaves())) {
    leaves_.push_back(std::make_unique<Leaf3Switch>(
        lane_for_pod(shape.pod_of_leaf(l)), l, config_.shape, routing_, config_.pfc,
        config_.host_link, config_.fabric_link, config_.spray_quantum_bytes));
  }
  for (std::uint32_t pod = 0; pod < shape.pods; ++pod) {
    for (std::uint32_t s = 0; s < shape.spines_per_pod; ++s) {
      pod_spines_.push_back(std::make_unique<PodSpineSwitch>(
          lane_for_pod(pod), pod, s, config_.shape, config_.pfc, config_.fabric_link,
          config_.spray_quantum_bytes));
    }
  }
  for (std::uint32_t group = 0; group < shape.spines_per_pod; ++group) {
    for (std::uint32_t k = 0; k < shape.cores_per_group(); ++k) {
      cores_.push_back(std::make_unique<CoreSwitch>(lane_for_core(shape.core_id(group, k)),
                                                    group, k, config_.shape, config_.pfc,
                                                    config_.fabric_link));
    }
  }

  // Hosts ↔ leaves.
  for (const HostId h : core::ids<HostId>(shape.num_hosts())) {
    const LeafId l = shape.leaf_of(h);
    const std::uint32_t local = h.v() % shape.hosts_per_leaf;
    hosts_[h.v()]->nic().connect(leaves_[l.v()].get(), PortIndex{local});
    leaves_[l.v()]->set_upstream(PortIndex{local}, &hosts_[h.v()]->nic());
    leaves_[l.v()]->host_port(local).connect(hosts_[h.v()].get(), PortIndex{0});
    hosts_[h.v()]->nic().set_fault_rng(&fault_rng_);
    link_lanes(hosts_[h.v()]->nic(), lane_for_pod(shape.pod_of_leaf(l)));
    link_lanes(leaves_[l.v()]->host_port(local), sim_);
  }

  // Leaves ↔ pod-spines (always intra-pod, so never cross-lane).
  for (const LeafId l : core::ids<LeafId>(shape.num_leaves())) {
    const std::uint32_t pod = shape.pod_of_leaf(l);
    const std::uint32_t local = shape.local_leaf(l);
    for (std::uint32_t s = 0; s < shape.spines_per_pod; ++s) {
      PodSpineSwitch& ps = *pod_spines_[shape.pod_spine_id(pod, s)];
      const PortIndex leaf_port{shape.hosts_per_leaf + s};
      leaves_[l.v()]->uplink(s).connect(&ps, PortIndex{local});
      ps.set_upstream(PortIndex{local}, &leaves_[l.v()]->uplink(s));
      ps.down_port(local).connect(leaves_[l.v()].get(), leaf_port);
      leaves_[l.v()]->set_upstream(leaf_port, &ps.down_port(local));
    }
    leaves_[l.v()]->set_fault_rng(&fault_rng_);
  }

  // Pod-spines ↔ cores.
  for (std::uint32_t pod = 0; pod < shape.pods; ++pod) {
    for (std::uint32_t s = 0; s < shape.spines_per_pod; ++s) {
      PodSpineSwitch& ps = *pod_spines_[shape.pod_spine_id(pod, s)];
      for (std::uint32_t k = 0; k < shape.cores_per_group(); ++k) {
        CoreSwitch& c = *cores_[shape.core_id(s, k)];
        const PortIndex ps_port{shape.leaves_per_pod + k};
        ps.core_uplink(k).connect(&c, PortIndex{pod});
        c.set_upstream(PortIndex{pod}, &ps.core_uplink(k));
        c.down_port(pod).connect(&ps, ps_port);
        ps.set_upstream(ps_port, &c.down_port(pod));
        link_lanes(ps.core_uplink(k), lane_for_core(shape.core_id(s, k)));
        link_lanes(c.down_port(pod), lane_for_pod(pod));
      }
      ps.set_fault_rng(&fault_rng_);
    }
  }
  for (auto& c : cores_) c->set_fault_rng(&fault_rng_);
}

sim::Simulator& ThreeLevelFatTree::lane_for_pod(std::uint32_t pod) const {
  if (lanes_.size() <= 1) return sim_;
  const auto groups = static_cast<std::uint32_t>(lanes_.size() - 1);
  return *lanes_[1 + pod % groups];
}

sim::Simulator& ThreeLevelFatTree::lane_for_core(std::uint32_t core_id) const {
  if (lanes_.size() <= 1) return sim_;
  const auto groups = static_cast<std::uint32_t>(lanes_.size() - 1);
  return *lanes_[1 + core_id % groups];
}

void ThreeLevelFatTree::link_lanes(EgressPort& port, sim::Simulator& dst) {
  if (&port.owner() == &dst) return;
  port.set_peer_lane(&dst);
  if (port.params().prop_delay < min_cross_lane_latency_) {
    min_cross_lane_latency_ = port.params().prop_delay;
  }
}

void ThreeLevelFatTree::disconnect_known(LeafId leaf, std::uint32_t spine_index) {
  set_leaf_link_fault(leaf, spine_index, FaultSpec::disconnect());
  routing_.set_known_failed(leaf, UplinkIndex{spine_index});
}

void ThreeLevelFatTree::set_leaf_link_fault(LeafId leaf, std::uint32_t spine_index,
                                            FaultSpec fault) {
  const ThreeLevelInfo& shape = config_.shape;
  leaves_[leaf.v()]->uplink(spine_index).set_fault(fault);
  PodSpineSwitch& ps = *pod_spines_[shape.pod_spine_id(shape.pod_of_leaf(leaf), spine_index)];
  ps.down_port(shape.local_leaf(leaf)).set_fault(fault);
}

void ThreeLevelFatTree::set_core_link_fault(std::uint32_t pod, std::uint32_t spine_index,
                                            std::uint32_t k, FaultSpec fault) {
  pod_spines_[config_.shape.pod_spine_id(pod, spine_index)]->core_uplink(k).set_fault(fault);
  set_core_downlink_fault(pod, spine_index, k, fault);
}

void ThreeLevelFatTree::set_core_downlink_fault(std::uint32_t pod, std::uint32_t spine_index,
                                                std::uint32_t k, FaultSpec fault) {
  cores_[config_.shape.core_id(spine_index, k)]->down_port(pod).set_fault(fault);
}

LinkCounters ThreeLevelFatTree::total_fabric_counters() const {
  LinkCounters total{};
  auto add = [&total](const LinkCounters& c) {
    total.tx_packets += c.tx_packets;
    total.tx_bytes += c.tx_bytes;
    total.dropped_packets += c.dropped_packets;
    total.dropped_bytes += c.dropped_bytes;
  };
  const ThreeLevelInfo& shape = config_.shape;
  for (const auto& h : hosts_) add(h->nic().counters());
  for (const LeafId l : core::ids<LeafId>(shape.num_leaves())) {
    for (std::uint32_t i = 0; i < shape.hosts_per_leaf; ++i) {
      add(leaves_[l.v()]->host_port(i).counters());
    }
    for (std::uint32_t s = 0; s < shape.spines_per_pod; ++s) {
      add(leaves_[l.v()]->uplink(s).counters());
    }
  }
  for (const auto& ps : pod_spines_) {
    for (std::uint32_t l = 0; l < shape.leaves_per_pod; ++l) add(ps->down_port(l).counters());
    for (std::uint32_t k = 0; k < shape.cores_per_group(); ++k) {
      add(ps->core_uplink(k).counters());
    }
  }
  for (const auto& c : cores_) {
    for (std::uint32_t pod = 0; pod < shape.pods; ++pod) add(c->down_port(pod).counters());
  }
  return total;
}

}  // namespace flowpulse::net
