#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/egress_port.h"
#include "net/fault.h"
#include "net/host.h"
#include "net/routing.h"
#include "net/switch.h"
#include "net/topology_info.h"
#include "net/types.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace flowpulse::net {

/// Configuration of a 2-level non-blocking fat tree (paper §6 default:
/// 32 leaves × 16 spines, one host per leaf).
struct FatTreeConfig {
  TopologyInfo shape{};
  LinkParams host_link{core::GbitsPerSec{400.0}, sim::Time::nanoseconds(200)};
  LinkParams fabric_link{core::GbitsPerSec{400.0}, sim::Time::nanoseconds(200)};
  SprayPolicy spray = SprayPolicy::kAdaptive;
  /// Adaptive spraying compares queue occupancy in grades of this many
  /// bytes (coarse congestion levels, as adaptive-routing ASICs do).
  core::Bytes spray_quantum_bytes{8192};
  PfcConfig pfc{};
  std::uint64_t seed = 0x5eed;  ///< seeds spray tie-breaks and fault sampling
};

/// Builds and owns the whole fabric: hosts, leaf and spine switches, and
/// the links between them, plus the shared RoutingState. Provides the fault
/// injection API used by experiments:
///  * disconnect_known(): a *known* pre-existing failure — both directions
///    go dark AND routing stops using the virtual spine (paper: links with
///    pre-existing faults are disconnected).
///  * set_uplink_fault()/set_downlink_fault(): silent faults — the data
///    plane drops packets but routing keeps spraying onto the link.
class FatTree {
 public:
  FatTree(sim::Simulator& simulator, FatTreeConfig config);

  /// Sharded build: `lanes[0]` drives the hosts (and everything the
  /// experiment layer schedules on `simulator()`); leaf l goes to lane
  /// 1 + (l mod (lanes-1)) and spine s to lane 1 + (s mod (lanes-1)), so
  /// every leaf<->spine and host<->leaf hop that lands on a different lane
  /// is wired through the lane mailbox (EgressPort::set_peer_lane). A
  /// one-element vector degenerates to the serial build above.
  FatTree(std::vector<sim::Simulator*> lanes, FatTreeConfig config);

  FatTree(const FatTree&) = delete;
  FatTree& operator=(const FatTree&) = delete;

  [[nodiscard]] const TopologyInfo& info() const { return config_.shape; }
  [[nodiscard]] const FatTreeConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Smallest propagation delay over all cross-lane links — the
  /// conservative lookahead a LaneRunner may use. Time::max() when no link
  /// crosses lanes (single-lane build).
  [[nodiscard]] sim::Time min_cross_lane_latency() const { return min_cross_lane_latency_; }

  [[nodiscard]] Host& host(HostId h) { return *hosts_[h.v()]; }
  [[nodiscard]] LeafSwitch& leaf(LeafId l) { return *leaves_[l.v()]; }
  [[nodiscard]] SpineSwitch& spine(SpineId s) { return *spines_[s.v()]; }
  [[nodiscard]] std::uint32_t num_hosts() const { return config_.shape.num_hosts(); }

  [[nodiscard]] RoutingState& routing() { return routing_; }
  [[nodiscard]] const RoutingState& routing() const { return routing_; }

  /// Silent fault on the leaf→spine direction of uplink u at `leaf`.
  void set_uplink_fault(LeafId leaf, UplinkIndex u, FaultSpec fault);
  /// Silent fault on the spine→leaf direction of uplink u at `leaf`.
  void set_downlink_fault(LeafId leaf, UplinkIndex u, FaultSpec fault);
  /// Silent fault on both directions.
  void set_link_fault(LeafId leaf, UplinkIndex u, FaultSpec fault);
  /// Known pre-existing failure: disconnect both directions and remove the
  /// (leaf, uplink) from routing.
  void disconnect_known(LeafId leaf, UplinkIndex u);

  /// Counters of the spine→leaf direction of uplink u at `leaf` — the links
  /// FlowPulse watches.
  [[nodiscard]] const LinkCounters& downlink_counters(LeafId leaf, UplinkIndex u) const;
  /// Counters of the leaf→spine direction.
  [[nodiscard]] const LinkCounters& uplink_counters(LeafId leaf, UplinkIndex u) const;

  /// Sum of tx/dropped over every link in the fabric (conservation tests).
  [[nodiscard]] LinkCounters total_fabric_counters() const;

#if FP_AUDIT_ENABLED
  /// Tagged collective data bytes `job` delivered on the spine→leaf
  /// direction of uplink u at `leaf` (monitor-vs-switch reconciliation).
  [[nodiscard]] core::Bytes audit_downlink_tagged_bytes(LeafId leaf, UplinkIndex u,
                                                        std::uint16_t job) {
    return downlink(leaf, u).audit_tagged_bytes(job);
  }
#endif

 private:
  [[nodiscard]] EgressPort& downlink(LeafId leaf, UplinkIndex u);
  [[nodiscard]] sim::Simulator& lane_for_leaf(LeafId l) const;
  [[nodiscard]] sim::Simulator& lane_for_spine(SpineId s) const;
  /// Mark `port` cross-lane if its transmit lane differs from `dst`, and
  /// fold its propagation delay into the lookahead bound.
  void link_lanes(EgressPort& port, sim::Simulator& dst);

  sim::Simulator& sim_;
  FatTreeConfig config_;
  RoutingState routing_;
  sim::Rng fault_rng_;
  std::vector<sim::Simulator*> lanes_;
  sim::Time min_cross_lane_latency_ = sim::Time::max();
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<LeafSwitch>> leaves_;
  std::vector<std::unique_ptr<SpineSwitch>> spines_;
};

}  // namespace flowpulse::net
