#include "net/fat_tree.h"

#include <cassert>

namespace flowpulse::net {

FatTree::FatTree(sim::Simulator& simulator, FatTreeConfig config)
    : FatTree{std::vector<sim::Simulator*>{&simulator}, config} {}

FatTree::FatTree(std::vector<sim::Simulator*> lanes, FatTreeConfig config)
    : sim_{*lanes.front()},
      config_{config},
      routing_{config.shape.leaves, config.shape.uplinks_per_leaf()},
      fault_rng_{config.seed ^ 0xfa017ull},
      lanes_{std::move(lanes)} {
  const TopologyInfo& shape = config_.shape;
  // The spray seeder consumes splits in leaf construction order regardless
  // of lane layout, so per-leaf spray streams are identical in every build.
  sim::Rng spray_seeder{config_.seed};

  hosts_.reserve(shape.num_hosts());
  for (const HostId h : core::ids<HostId>(shape.num_hosts())) {
    hosts_.push_back(std::make_unique<Host>(sim_, h, config_.host_link));
  }
  leaves_.reserve(shape.leaves);
  for (const LeafId l : core::ids<LeafId>(shape.leaves)) {
    leaves_.push_back(std::make_unique<LeafSwitch>(lane_for_leaf(l), l, config_.shape, routing_,
                                                   config_.spray, config_.pfc,
                                                   config_.host_link, config_.fabric_link,
                                                   spray_seeder.split(),
                                                   config_.spray_quantum_bytes));
  }
  spines_.reserve(shape.spines);
  for (const SpineId s : core::ids<SpineId>(shape.spines)) {
    spines_.push_back(
        std::make_unique<SpineSwitch>(lane_for_spine(s), s, config_.shape, config_.pfc,
                                      config_.fabric_link));
  }

  // Wire host <-> leaf.
  for (const HostId h : core::ids<HostId>(shape.num_hosts())) {
    const LeafId l = shape.leaf_of(h);
    const std::uint32_t local = shape.local_index(h);
    Host& host = *hosts_[h.v()];
    LeafSwitch& leaf_sw = *leaves_[l.v()];
    host.nic().connect(&leaf_sw, PortIndex{local});
    leaf_sw.set_upstream(PortIndex{local}, &host.nic());  // leaf can PFC-pause the NIC
    leaf_sw.host_port(local).connect(&host, PortIndex{0});
    link_lanes(host.nic(), lane_for_leaf(l));
    link_lanes(leaf_sw.host_port(local), sim_);
  }

  // Wire leaf <-> spine, one link pair per (leaf, uplink).
  for (const LeafId l : core::ids<LeafId>(shape.leaves)) {
    LeafSwitch& leaf_sw = *leaves_[l.v()];
    for (const UplinkIndex u : core::ids<UplinkIndex>(shape.uplinks_per_leaf())) {
      SpineSwitch& spine_sw = *spines_[shape.spine_of(u).v()];
      const PortIndex spine_port = shape.spine_port(l, u);
      const PortIndex leaf_port = shape.leaf_uplink_port(u);
      leaf_sw.uplink(u).connect(&spine_sw, spine_port);
      spine_sw.set_upstream(spine_port, &leaf_sw.uplink(u));
      spine_sw.down_port(spine_port).connect(&leaf_sw, leaf_port);
      leaf_sw.set_upstream(leaf_port, &spine_sw.down_port(spine_port));
      link_lanes(leaf_sw.uplink(u), lane_for_spine(shape.spine_of(u)));
      link_lanes(spine_sw.down_port(spine_port), lane_for_leaf(l));
    }
    leaf_sw.set_fault_rng(&fault_rng_);
  }
  for (const SpineId s : core::ids<SpineId>(shape.spines)) {
    spines_[s.v()]->set_fault_rng(&fault_rng_);
  }
  for (const HostId h : core::ids<HostId>(shape.num_hosts())) {
    hosts_[h.v()]->nic().set_fault_rng(&fault_rng_);
  }
}

sim::Simulator& FatTree::lane_for_leaf(LeafId l) const {
  if (lanes_.size() <= 1) return sim_;
  const auto groups = static_cast<std::uint32_t>(lanes_.size() - 1);
  return *lanes_[1 + l.v() % groups];
}

sim::Simulator& FatTree::lane_for_spine(SpineId s) const {
  if (lanes_.size() <= 1) return sim_;
  const auto groups = static_cast<std::uint32_t>(lanes_.size() - 1);
  return *lanes_[1 + s.v() % groups];
}

void FatTree::link_lanes(EgressPort& port, sim::Simulator& dst) {
  if (&port.owner() == &dst) return;
  port.set_peer_lane(&dst);
  if (port.params().prop_delay < min_cross_lane_latency_) {
    min_cross_lane_latency_ = port.params().prop_delay;
  }
}

EgressPort& FatTree::downlink(LeafId leaf, UplinkIndex u) {
  SpineSwitch& spine_sw = *spines_[config_.shape.spine_of(u).v()];
  return spine_sw.down_port(config_.shape.spine_port(leaf, u));
}

void FatTree::set_uplink_fault(LeafId leaf, UplinkIndex u, FaultSpec fault) {
  leaves_[leaf.v()]->uplink(u).set_fault(fault);
}

void FatTree::set_downlink_fault(LeafId leaf, UplinkIndex u, FaultSpec fault) {
  downlink(leaf, u).set_fault(fault);
}

void FatTree::set_link_fault(LeafId leaf, UplinkIndex u, FaultSpec fault) {
  set_uplink_fault(leaf, u, fault);
  set_downlink_fault(leaf, u, fault);
}

void FatTree::disconnect_known(LeafId leaf, UplinkIndex u) {
  set_link_fault(leaf, u, FaultSpec::disconnect());
  routing_.set_known_failed(leaf, u);
}

const LinkCounters& FatTree::downlink_counters(LeafId leaf, UplinkIndex u) const {
  const SpineSwitch& spine_sw = *spines_[config_.shape.spine_of(u).v()];
  return spine_sw.down_port(config_.shape.spine_port(leaf, u)).counters();
}

const LinkCounters& FatTree::uplink_counters(LeafId leaf, UplinkIndex u) const {
  return leaves_[leaf.v()]->uplink(u).counters();
}

LinkCounters FatTree::total_fabric_counters() const {
  LinkCounters total{};
  auto add = [&total](const LinkCounters& c) {
    total.tx_packets += c.tx_packets;
    total.tx_bytes += c.tx_bytes;
    total.dropped_packets += c.dropped_packets;
    total.dropped_bytes += c.dropped_bytes;
  };
  const TopologyInfo& shape = config_.shape;
  for (const HostId h : core::ids<HostId>(shape.num_hosts())) {
    add(hosts_[h.v()]->nic().counters());
  }
  for (const LeafId l : core::ids<LeafId>(shape.leaves)) {
    for (std::uint32_t i = 0; i < shape.hosts_per_leaf; ++i) {
      add(leaves_[l.v()]->host_port(i).counters());
    }
    for (const UplinkIndex u : core::ids<UplinkIndex>(shape.uplinks_per_leaf())) {
      add(leaves_[l.v()]->uplink(u).counters());
      add(downlink_counters(l, u));
    }
  }
  return total;
}

}  // namespace flowpulse::net
