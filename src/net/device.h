#pragma once

#include "net/packet.h"
#include "net/types.h"

namespace flowpulse::net {

/// Anything a link can deliver packets to: switches and hosts.
class Device {
 public:
  virtual ~Device() = default;

  /// A packet arrives on `in_port` (the receiving device's local index).
  virtual void receive(Packet p, PortIndex in_port) = 0;
};

}  // namespace flowpulse::net
