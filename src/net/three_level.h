#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/egress_port.h"
#include "net/fault.h"
#include "net/host.h"
#include "net/routing.h"
#include "net/switch.h"
#include "net/types.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace flowpulse::net {

/// Shape of a 3-level non-blocking folded Clos (paper §7 "Network
/// Topology"): `pods` pods, each with `leaves_per_pod` leaf switches and
/// `spines_per_pod` pod-spine (aggregation) switches; the core layer is
/// partitioned into `spines_per_pod` groups of `leaves_per_pod` cores —
/// pod-spine s of every pod connects to core group s, giving each
/// cross-pod (src, dst) pair spines_per_pod × leaves_per_pod disjoint
/// paths.
///
/// Hosts are numbered pod-major: host h sits under global leaf
/// h / hosts_per_leaf; global leaf g sits in pod g / leaves_per_pod.
struct ThreeLevelInfo {
  std::uint32_t pods = 4;
  std::uint32_t leaves_per_pod = 4;
  std::uint32_t spines_per_pod = 4;
  std::uint32_t hosts_per_leaf = 1;

  [[nodiscard]] constexpr std::uint32_t cores_per_group() const { return leaves_per_pod; }
  [[nodiscard]] constexpr std::uint32_t num_cores() const {
    return spines_per_pod * cores_per_group();
  }
  [[nodiscard]] constexpr std::uint32_t num_leaves() const { return pods * leaves_per_pod; }
  [[nodiscard]] constexpr std::uint32_t num_pod_spines() const { return pods * spines_per_pod; }
  [[nodiscard]] constexpr std::uint32_t num_hosts() const {
    return num_leaves() * hosts_per_leaf;
  }
  [[nodiscard]] constexpr LeafId leaf_of(HostId h) const {
    return LeafId{h.v() / hosts_per_leaf};
  }
  [[nodiscard]] constexpr std::uint32_t pod_of_leaf(LeafId l) const {
    return l.v() / leaves_per_pod;
  }
  [[nodiscard]] constexpr std::uint32_t local_leaf(LeafId l) const {
    return l.v() % leaves_per_pod;
  }
  /// Global pod-spine id of (pod, spine index).
  [[nodiscard]] constexpr std::uint32_t pod_spine_id(std::uint32_t pod,
                                                     std::uint32_t s) const {
    return pod * spines_per_pod + s;
  }
  /// Global core id of (group = spine index, k within group).
  [[nodiscard]] constexpr std::uint32_t core_id(std::uint32_t group, std::uint32_t k) const {
    return group * cores_per_group() + k;
  }
};

class ThreeLevelFatTree;

/// Leaf switch of the 3-level fabric: hosts below, one uplink per pod-spine
/// of its pod. Upstream spraying uses the same congestion-graded,
/// byte-deficit APS as the 2-level leaf.
class Leaf3Switch final : public Switch {
 public:
  using IngressHook = std::function<void(UplinkIndex, const Packet&)>;

  Leaf3Switch(sim::Simulator& simulator, LeafId id, const ThreeLevelInfo& info,
              const RoutingState& leaf_spine_routing, PfcConfig pfc, LinkParams host_link,
              LinkParams fabric_link, core::Bytes spray_quantum);

  void receive(Packet p, PortIndex in_port) override;

  [[nodiscard]] EgressPort& host_port(std::uint32_t local) { return *host_ports_[local]; }
  [[nodiscard]] EgressPort& uplink(std::uint32_t s) { return *uplink_ports_[s]; }
  void set_spine_ingress_hook(IngressHook hook) { hook_ = std::move(hook); }
  void set_fault_rng(sim::Rng* rng);
  [[nodiscard]] LeafId id() const { return id_; }

 private:
  LeafId id_;
  const ThreeLevelInfo& info_;
  const RoutingState& routing_;  // (global leaf, pod-spine index) known failures
  core::Bytes spray_quantum_;
  std::vector<std::unique_ptr<EgressPort>> host_ports_;
  std::vector<std::unique_ptr<EgressPort>> uplink_ports_;
  std::vector<core::Bytes> sent_bytes_;  // [dst_leaf * prios + prio][spine]
  IngressHook hook_;
};

/// Pod-spine (aggregation) switch: one downlink per leaf of its pod, one
/// uplink per core of its group. Cross-pod traffic is sprayed over the
/// cores (per-packet, byte-deficit); same-pod traffic turns around here.
class PodSpineSwitch final : public Switch {
 public:
  using IngressHook = std::function<void(std::uint32_t /*core k*/, const Packet&)>;

  PodSpineSwitch(sim::Simulator& simulator, std::uint32_t pod, std::uint32_t index,
                 const ThreeLevelInfo& info, PfcConfig pfc, LinkParams fabric_link,
                 core::Bytes spray_quantum);

  void receive(Packet p, PortIndex in_port) override;

  // detlint: ok(raw-scalar-id): pod-local ordinal, not a global id — the
  // documented raw-index face of the three-level API
  [[nodiscard]] EgressPort& down_port(std::uint32_t local_leaf) {
    return *down_ports_[local_leaf];
  }
  [[nodiscard]] EgressPort& core_uplink(std::uint32_t k) { return *up_ports_[k]; }
  /// Tap on packets arriving from cores (FlowPulse at the spine level, §7).
  void set_core_ingress_hook(IngressHook hook) { hook_ = std::move(hook); }
  void set_fault_rng(sim::Rng* rng);

  [[nodiscard]] std::uint32_t pod() const { return pod_; }
  [[nodiscard]] std::uint32_t index() const { return index_; }

 private:
  std::uint32_t pod_;
  std::uint32_t index_;
  const ThreeLevelInfo& info_;
  core::Bytes spray_quantum_;
  std::vector<std::unique_ptr<EgressPort>> down_ports_;  // per local leaf
  std::vector<std::unique_ptr<EgressPort>> up_ports_;    // per core of the group
  std::vector<core::Bytes> sent_bytes_;  // [dst_leaf * prios + prio][core k]
  /// Spray candidates for cross-pod traffic: every core of this group, in
  /// index order, precomputed once. Per-switch (so per-lane) state — this
  /// replaced a function-local `static thread_local` that the mutable-state
  /// lint (detlint mutable-global) and the nm symbol audit now reject:
  /// hidden static scratch is exactly the cross-lane sharing the sharded
  /// event core must not inherit.
  std::vector<UplinkIndex> spray_candidates_;
  IngressHook hook_;
};

/// Core switch of group `group`: one bidirectional port per pod.
class CoreSwitch final : public Switch {
 public:
  CoreSwitch(sim::Simulator& simulator, std::uint32_t group, std::uint32_t k,
             const ThreeLevelInfo& info, PfcConfig pfc, LinkParams fabric_link);

  void receive(Packet p, PortIndex in_port) override;

  [[nodiscard]] EgressPort& down_port(std::uint32_t pod) { return *down_ports_[pod]; }
  void set_fault_rng(sim::Rng* rng);

 private:
  std::uint32_t group_;
  std::uint32_t k_;
  const ThreeLevelInfo& info_;
  std::vector<std::unique_ptr<EgressPort>> down_ports_;  // per pod
};

struct ThreeLevelConfig {
  ThreeLevelInfo shape{};
  LinkParams host_link{core::GbitsPerSec{400.0}, sim::Time::nanoseconds(200)};
  LinkParams fabric_link{core::GbitsPerSec{400.0}, sim::Time::nanoseconds(200)};
  PfcConfig pfc{};
  core::Bytes spray_quantum_bytes{8192};
  std::uint64_t seed = 0x5eed;
};

/// The full 3-level fabric. Fault injection covers both tiers:
///  * leaf↔pod-spine links — disconnect_known() removes the pod-spine
///    *index* from routing for that leaf (which transitively removes the
///    core group for paths through it), mirroring the 2-level semantics;
///  * pod-spine↔core links — silent faults only (set_core_link_fault),
///    matching the paper's focus on detecting what routing does not know.
class ThreeLevelFatTree {
 public:
  ThreeLevelFatTree(sim::Simulator& simulator, ThreeLevelConfig config);

  /// Sharded build: `lanes[0]` drives the hosts; pod p — its leaves AND its
  /// pod-spines, so intra-pod hops stay lane-local — goes to lane
  /// 1 + (p mod (lanes-1)), and core c to lane 1 + (c mod (lanes-1)). Only
  /// host<->leaf, pod-spine<->core, and PFC reverse paths can cross lanes.
  ThreeLevelFatTree(std::vector<sim::Simulator*> lanes, ThreeLevelConfig config);

  ThreeLevelFatTree(const ThreeLevelFatTree&) = delete;
  ThreeLevelFatTree& operator=(const ThreeLevelFatTree&) = delete;

  /// Smallest propagation delay over all cross-lane links (conservative
  /// lookahead); Time::max() in a single-lane build.
  [[nodiscard]] sim::Time min_cross_lane_latency() const { return min_cross_lane_latency_; }

  [[nodiscard]] const ThreeLevelInfo& info() const { return config_.shape; }
  [[nodiscard]] Host& host(HostId h) { return *hosts_[h.v()]; }
  [[nodiscard]] Leaf3Switch& leaf(LeafId l) { return *leaves_[l.v()]; }
  [[nodiscard]] PodSpineSwitch& pod_spine(std::uint32_t pod, std::uint32_t s) {
    return *pod_spines_[config_.shape.pod_spine_id(pod, s)];
  }
  [[nodiscard]] CoreSwitch& core(std::uint32_t group, std::uint32_t k) {
    return *cores_[config_.shape.core_id(group, k)];
  }
  [[nodiscard]] std::uint32_t num_hosts() const { return config_.shape.num_hosts(); }
  [[nodiscard]] RoutingState& routing() { return routing_; }
  [[nodiscard]] const RoutingState& routing() const { return routing_; }

  /// Known pre-existing failure of a leaf↔pod-spine link (both directions
  /// dark + removed from routing).
  void disconnect_known(LeafId leaf, std::uint32_t spine_index);  // detlint: ok(raw-scalar-id): pod-local ordinal — documented raw-index boundary
  /// Silent fault on a leaf↔pod-spine link.
  void set_leaf_link_fault(LeafId leaf, std::uint32_t spine_index, FaultSpec fault);  // detlint: ok(raw-scalar-id): pod-local ordinal — documented raw-index boundary
  /// Silent fault on a pod-spine↔core link (both directions).
  // detlint: ok(raw-scalar-id): pod-local ordinals — documented raw-index boundary
  void set_core_link_fault(std::uint32_t pod, std::uint32_t spine_index, std::uint32_t k,
                           FaultSpec fault);
  /// Silent fault on only the core→pod-spine direction.
  // detlint: ok(raw-scalar-id): pod-local ordinals — documented raw-index boundary
  void set_core_downlink_fault(std::uint32_t pod, std::uint32_t spine_index, std::uint32_t k,
                               FaultSpec fault);

  [[nodiscard]] LinkCounters total_fabric_counters() const;

 private:
  [[nodiscard]] sim::Simulator& lane_for_pod(std::uint32_t pod) const;
  [[nodiscard]] sim::Simulator& lane_for_core(std::uint32_t core_id) const;
  void link_lanes(EgressPort& port, sim::Simulator& dst);

  sim::Simulator& sim_;
  ThreeLevelConfig config_;
  RoutingState routing_;  // (global leaf, pod-spine index)
  sim::Rng fault_rng_;
  std::vector<sim::Simulator*> lanes_;
  sim::Time min_cross_lane_latency_ = sim::Time::max();
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Leaf3Switch>> leaves_;
  std::vector<std::unique_ptr<PodSpineSwitch>> pod_spines_;
  std::vector<std::unique_ptr<CoreSwitch>> cores_;
};

}  // namespace flowpulse::net
