#pragma once

#include <cstdint>

#include "core/strong_id.h"

namespace flowpulse::net {

/// Distinct, explicitly-constructed index types (core::StrongId). Mixing
/// any two — the PR 2 bug class, a sender-leaf index used as a port index —
/// is a compile error; every strong→raw crossing is an explicit .v().

/// Global host (GPU/NIC) index.
struct HostId final : core::StrongId<HostId> {
  using StrongId::StrongId;
};
/// Leaf switch index.
struct LeafId final : core::StrongId<LeafId> {
  using StrongId::StrongId;
};
/// Spine switch index.
struct SpineId final : core::StrongId<SpineId> {
  using StrongId::StrongId;
};
/// Port index local to one device.
struct PortId final : core::StrongId<PortId> {
  using StrongId::StrongId;
};
using PortIndex = PortId;
/// "Virtual spine": spine * parallel + lane. Distinct from PortId — the
/// same uplink has different port numbers at its leaf and its spine
/// (TopologyInfo::leaf_uplink_port / spine_port do the conversions).
struct UplinkIndex final : core::StrongId<UplinkIndex> {
  using StrongId::StrongId;
};
/// Collective training-iteration number (the flow_id-embedded delimiter).
struct IterIndex final : core::StrongId<IterIndex> {
  using StrongId::StrongId;
};

/// One leaf↔spine fabric link, the unit localization blames and mitigation
/// quarantines: (leaf, uplink) packed so LinkId orders by leaf then uplink.
struct LinkId final : core::StrongId<LinkId, std::uint64_t> {
  using StrongId::StrongId;
  [[nodiscard]] static constexpr LinkId of(LeafId leaf, UplinkIndex uplink) {
    return LinkId{(static_cast<std::uint64_t>(leaf.v()) << 32) | uplink.v()};
  }
  [[nodiscard]] constexpr LeafId leaf() const { return LeafId{static_cast<std::uint32_t>(v() >> 32)}; }
  [[nodiscard]] constexpr UplinkIndex uplink() const {
    return UplinkIndex{static_cast<std::uint32_t>(v())};
  }
};

using FlowId = std::uint64_t;

inline constexpr PortIndex kInvalidPort{0xffffffffu};

/// Traffic classes. Lower value = strictly higher scheduling priority.
/// The measured collective runs above background jobs (paper §5.1) so that
/// background load cannot perturb its spraying; tiny control packets (ACKs)
/// run above both.
enum class Priority : std::uint8_t {
  kControl = 0,
  kCollective = 1,
  kBackground = 2,
};
constexpr int kNumPriorities = 3;

[[nodiscard]] constexpr int priority_index(Priority p) { return static_cast<int>(p); }

/// Upstream load-balancing policy at leaf switches.
enum class SprayPolicy : std::uint8_t {
  kAdaptive,  ///< per-packet, least-occupied valid uplink (APS, paper default)
  kRandom,    ///< per-packet, uniform random valid uplink
  kEcmp,      ///< per-flow hash (classical datacenter baseline)
  kFlowlet,   ///< flowlet switching (Let-It-Flow-style): a flow keeps its
              ///< uplink until an idle gap exceeds the flowlet timeout, then
              ///< re-picks the least-occupied lane
};

/// flow_id tagging scheme (paper §5.1): collective packets carry a sentinel
/// in the top bits and the training-iteration number in the low bits, so
/// switches can both select the measured traffic and delimit iterations
/// without any control-plane messaging.
namespace flowid {

constexpr FlowId kSentinelMask = 0xffff000000000000ull;
constexpr FlowId kCollectiveSentinel = 0xc011000000000000ull;
constexpr FlowId kIterationMask = 0x00000000ffffffffull;
// Bits 32..47 distinguish concurrent collectives (e.g. parallel jobs).
constexpr FlowId kJobShift = 32;
constexpr FlowId kJobMask = 0x0000ffff00000000ull;

[[nodiscard]] constexpr FlowId make_collective(IterIndex iteration, std::uint16_t job = 0) {
  return kCollectiveSentinel | (static_cast<FlowId>(job) << kJobShift) | iteration.v();
}
[[nodiscard]] constexpr bool is_collective(FlowId f) {
  return (f & kSentinelMask) == kCollectiveSentinel;
}
[[nodiscard]] constexpr IterIndex iteration_of(FlowId f) {
  return IterIndex{static_cast<std::uint32_t>(f & kIterationMask)};
}
[[nodiscard]] constexpr std::uint16_t job_of(FlowId f) {
  return static_cast<std::uint16_t>((f & kJobMask) >> kJobShift);
}

}  // namespace flowid

}  // namespace flowpulse::net
