#pragma once

#include <cstdint>

namespace flowpulse::net {

using HostId = std::uint32_t;    ///< Global host (GPU/NIC) index.
using LeafId = std::uint32_t;    ///< Leaf switch index.
using SpineId = std::uint32_t;   ///< Spine switch index.
using PortIndex = std::uint32_t; ///< Port index local to one device.
using UplinkIndex = std::uint32_t; ///< "Virtual spine": spine * parallel + lane.
using FlowId = std::uint64_t;

constexpr PortIndex kInvalidPort = 0xffffffffu;

/// Traffic classes. Lower value = strictly higher scheduling priority.
/// The measured collective runs above background jobs (paper §5.1) so that
/// background load cannot perturb its spraying; tiny control packets (ACKs)
/// run above both.
enum class Priority : std::uint8_t {
  kControl = 0,
  kCollective = 1,
  kBackground = 2,
};
constexpr int kNumPriorities = 3;

[[nodiscard]] constexpr int priority_index(Priority p) { return static_cast<int>(p); }

/// Upstream load-balancing policy at leaf switches.
enum class SprayPolicy : std::uint8_t {
  kAdaptive,  ///< per-packet, least-occupied valid uplink (APS, paper default)
  kRandom,    ///< per-packet, uniform random valid uplink
  kEcmp,      ///< per-flow hash (classical datacenter baseline)
  kFlowlet,   ///< flowlet switching (Let-It-Flow-style): a flow keeps its
              ///< uplink until an idle gap exceeds the flowlet timeout, then
              ///< re-picks the least-occupied lane
};

/// flow_id tagging scheme (paper §5.1): collective packets carry a sentinel
/// in the top bits and the training-iteration number in the low bits, so
/// switches can both select the measured traffic and delimit iterations
/// without any control-plane messaging.
namespace flowid {

constexpr FlowId kSentinelMask = 0xffff000000000000ull;
constexpr FlowId kCollectiveSentinel = 0xc011000000000000ull;
constexpr FlowId kIterationMask = 0x00000000ffffffffull;
// Bits 32..47 distinguish concurrent collectives (e.g. parallel jobs).
constexpr FlowId kJobShift = 32;
constexpr FlowId kJobMask = 0x0000ffff00000000ull;

[[nodiscard]] constexpr FlowId make_collective(std::uint32_t iteration, std::uint16_t job = 0) {
  return kCollectiveSentinel | (static_cast<FlowId>(job) << kJobShift) | iteration;
}
[[nodiscard]] constexpr bool is_collective(FlowId f) {
  return (f & kSentinelMask) == kCollectiveSentinel;
}
[[nodiscard]] constexpr std::uint32_t iteration_of(FlowId f) {
  return static_cast<std::uint32_t>(f & kIterationMask);
}
[[nodiscard]] constexpr std::uint16_t job_of(FlowId f) {
  return static_cast<std::uint16_t>((f & kJobMask) >> kJobShift);
}

}  // namespace flowid

}  // namespace flowpulse::net
