#pragma once

#include <cstdint>
#include <vector>

#include "flowpulse/detector.h"
#include "flowpulse/monitor.h"
#include "flowpulse/port_load.h"
#include "net/types.h"

namespace flowpulse::fp {

/// Learning-based load prediction for one leaf (paper §5.2 "Learning").
///
/// The expected per-port load is simply measured over the first
/// `learn_iterations` of the collective. The caveat the paper highlights
/// (Fig. 3): a *transient* fault present during learning poisons the
/// baseline; when it heals, the traffic re-balances more evenly across the
/// ports. The model recognizes that signature — deviating ports move
/// *upward* and the dispersion (coefficient of variation) across active
/// ports shrinks — and re-learns the baseline instead of alerting.
/// A new fault shows the opposite signature (a port drops, dispersion
/// grows) and is reported as an alert.
class LearnedModel {
 public:
  struct Config {
    std::uint32_t learn_iterations = 3;
    double threshold = 0.01;
    /// Re-baseline when dispersion shrinks by at least this factor while
    /// all deviating ports gained traffic.
    double healing_cv_margin = 0.05;
  };

  enum class Phase : std::uint8_t { kLearning, kMonitoring };

  struct Outcome {
    enum class Kind : std::uint8_t {
      kLearning,    ///< sample absorbed into the (re-)baseline
      kOk,          ///< within threshold of the baseline
      kAlert,       ///< deviation consistent with a new fault
      kRebaseline,  ///< deviation consistent with a healed fault; re-learning
    };
    Kind kind = Kind::kOk;
    double max_rel_dev = 0.0;
    std::vector<net::UplinkIndex> deviating_ports;
    /// For kAlert: localization of each deviating port from the learned
    /// per-sender baselines (same Fig. 4 logic as the fixed models).
    std::vector<Localization> localizations;
  };

  LearnedModel(std::uint32_t uplinks, Config config);

  /// Feed one finalized iteration; returns what the model concluded.
  Outcome observe(const IterationRecord& record);

  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] const std::vector<double>& baseline() const { return baseline_; }
  /// Learned per-sender expectation of port `u` (empty before the first
  /// baseline is complete).
  [[nodiscard]] const std::vector<double>& baseline_by_src(net::UplinkIndex u) const {
    return baseline_by_src_[u.v()];
  }
  [[nodiscard]] std::uint32_t rebaseline_count() const { return rebaseline_count_; }

  /// Coefficient of variation across ports with non-zero baseline traffic.
  [[nodiscard]] static double dispersion(const std::vector<double>& loads);

 private:
  void reset_learning();
  void absorb_sample(const IterationRecord& record);

  std::uint32_t uplinks_;
  Config config_;
  Phase phase_ = Phase::kLearning;
  std::uint32_t samples_ = 0;
  std::vector<double> sum_;       // accumulating learning samples
  std::vector<std::vector<double>> sum_by_src_;  // [uplink][src leaf]
  std::vector<double> baseline_;  // per-uplink expected bytes
  std::vector<std::vector<double>> baseline_by_src_;
  double baseline_cv_ = 0.0;
  std::uint32_t rebaseline_count_ = 0;
};

}  // namespace flowpulse::fp
