#pragma once

#include <cstdint>

#include "collective/demand_matrix.h"
#include "core/units.h"
#include "flowpulse/port_load.h"
#include "net/routing.h"
#include "net/topology_info.h"

namespace flowpulse::fp {

/// Analytical per-link load prediction (paper §5.2).
///
/// For each source→destination pair with demand d bytes: in a fault-free
/// network APS spreads it evenly over all s spines; with f *known* failed
/// virtual spines adjacent to either the source or the destination leaf,
/// the remaining (s − f) each carry d / (s − f). Summing the contributions
/// of every pair destined to a leaf yields the expected load on each of
/// that leaf's ingress ports from spines.
///
/// Demands are payload bytes; the prediction is in wire bytes, accounting
/// for MTU segmentation exactly as the transport performs it, so it is
/// directly comparable with switch byte counters.
class AnalyticalModel {
 public:
  AnalyticalModel(const net::TopologyInfo& info, std::uint32_t mtu_payload,
                  core::Bytes header_bytes)
      : info_{info}, mtu_payload_{mtu_payload}, header_bytes_{header_bytes} {}

  /// Wire bytes for a message of `payload` bytes after segmentation.
  [[nodiscard]] double wire_bytes(core::Bytes payload) const {
    if (payload == core::Bytes{0}) return 0.0;
    const std::uint64_t segments = (payload.v() + mtu_payload_ - 1) / mtu_payload_;
    return static_cast<double>(payload.v() + segments * header_bytes_.v());
  }

  /// Predict per-port loads for one iteration of the given demand.
  [[nodiscard]] PortLoadMap predict(const collective::DemandMatrix& demand,
                                    const net::RoutingState& routing) const;

 private:
  net::TopologyInfo info_;
  std::uint32_t mtu_payload_;
  core::Bytes header_bytes_;
};

}  // namespace flowpulse::fp
