#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace flowpulse::fp {

/// Fidelity lattice of the hybrid engine, highest to lowest:
///
///   kPacket  — every iteration is simulated packet-by-packet (the seed
///              behavior; bit-identical to pre-hybrid runs).
///   kHybrid  — healthy iterations are fast-forwarded analytically; the
///              engine demotes to packet fidelity in windows around fault
///              onset, detector alerts, controller probation/verification,
///              and mitigation actions, and re-promotes only after a
///              hysteresis hold.
///   kFlow    — every iteration is fast-forwarded; silent faults are
///              folded into the synthesized counters by a first-order
///              survival model. Cheapest, and sufficient for closed-loop
///              detect→localize→mitigate studies that don't need transport
///              microbehavior.
enum class FidelityMode : std::uint8_t {
  kPacket = 0,
  kHybrid = 1,
  kFlow = 2,
};

[[nodiscard]] constexpr const char* fidelity_mode_name(FidelityMode m) {
  switch (m) {
    case FidelityMode::kPacket:
      return "packet";
    case FidelityMode::kHybrid:
      return "hybrid";
    case FidelityMode::kFlow:
      return "flow";
  }
  return "unknown";
}

/// When the hybrid engine may fast-forward and when it must drop back to
/// packets. Defaults are conservative: they keep every iteration the
/// controller judges during a probation window at packet fidelity.
struct FidelityPolicy {
  FidelityMode mode = FidelityMode::kPacket;

  /// Leading iterations always run at packet fidelity (kHybrid): they prime
  /// the iteration-duration estimate the fast-forward clock uses. Clamped
  /// to >= 1 in kHybrid; kFlow ignores it and estimates analytically.
  std::uint32_t warmup_iterations = 1;

  /// Demote to packets when a configured silent fault is active within this
  /// many iterations of the upcoming window (fault onset/offset edges are
  /// where flow-level synthesis is least faithful).
  std::uint32_t fault_guard_iterations = 1;

  /// Hysteresis: after any detector alert or mitigation action, stay at
  /// packet fidelity for this many iterations before re-promoting. Should
  /// cover debounce + probation of the mitigation policy in use.
  std::uint32_t alert_hold_iterations = 4;

  /// Relative sigma of the deterministic multiplicative noise applied to
  /// synthesized per-port counters, so detector statistics stay honest
  /// (spray imbalance in packet runs is ~0.2% at paper scale). Set to 0
  /// for exact analytical counters.
  double noise_rel = 0.002;

  /// kFlow: fold active silent faults into synthesized counters via the
  /// first-order survival model (FastForwardModel). Disabling it makes
  /// flow mode blind to silent faults (useful to isolate detector noise).
  bool flow_fault_model = true;

  /// kFlow: fixed synthetic iteration duration. zero() = estimate from the
  /// demand matrix and host link rate.
  sim::Time flow_iteration_time = sim::Time::zero();
};

/// What the hybrid engine actually did during a run — the fidelity
/// accounting reported next to the results it produced.
struct FidelityStats {
  bool enabled = false;  ///< mode != kPacket and the scenario supported it
  FidelityMode mode = FidelityMode::kPacket;
  std::uint32_t packet_iterations = 0;
  std::uint32_t flow_iterations = 0;
  std::uint32_t demotions = 0;   ///< flow→packet switches
  std::uint32_t promotions = 0;  ///< packet→flow switches
  /// Per-iteration record: 1 = packet, 0 = fast-forwarded.
  std::vector<std::uint8_t> iteration_mode;
};

}  // namespace flowpulse::fp
