#include "flowpulse/monitor.h"

namespace flowpulse::fp {

void PortMonitor::begin_iteration(net::IterIndex iteration) {
  current_ = iteration;
  accum_ = IterationRecord{};
  accum_.leaf = net::LeafId{id_};
  accum_.iteration = iteration;
  accum_.bytes.assign(ports_, 0.0);
  accum_.by_src.assign(ports_, std::vector<double>(leaves_, 0.0));
}

void PortMonitor::record(net::UplinkIndex port, const net::Packet& p) {
  // Select only the measured collective's data traffic: the sentinel plus
  // job id filters out ACKs, probes and other jobs (§5.1).
  if (p.kind != net::PacketKind::kData) return;
  if (!net::flowid::is_collective(p.flow_id)) return;
  if (net::flowid::job_of(p.flow_id) != job_) return;

  const net::IterIndex iter = net::flowid::iteration_of(p.flow_id);
  if (!current_.has_value()) {
    begin_iteration(iter);
  } else if (iter > *current_) {
    finalize();
    begin_iteration(iter);
  }
  // Packets tagged with an older iteration than the one being accumulated
  // (late duplicates) are counted into the current window — the switch has
  // already closed their iteration and cannot rewrite history.

  accum_.bytes[port.v()] += p.size_bytes.dbl();
  accum_.by_src[port.v()][p.src.v() / hosts_per_leaf_] += p.size_bytes.dbl();
  accum_.packets += 1;
#if FP_AUDIT_ENABLED
  audit_bytes_[port.v()] += p.size_bytes.v();
#endif
}

void PortMonitor::finalize() {
  history_.push_back(accum_);
  if (finalize_hook_) finalize_hook_(history_.back());
  current_.reset();
}

void PortMonitor::flush() {
  if (current_.has_value()) finalize();
}

}  // namespace flowpulse::fp
