#include "flowpulse/system.h"

#include <algorithm>

namespace flowpulse::fp {

FlowPulseSystem::FlowPulseSystem(net::FatTree& fabric, SystemConfig config)
    : FlowPulseSystem(fabric.info(), config) {
  fabric_ = &fabric;
  for (const net::LeafId l : core::ids<net::LeafId>(topo_.leaves)) {
    monitors_[l.v()]->attach(fabric.leaf(l));
  }
}

FlowPulseSystem::FlowPulseSystem(const net::TopologyInfo& topo, SystemConfig config)
    : topo_{topo}, config_{config} {
  monitors_.reserve(topo_.leaves);
  for (const net::LeafId l : core::ids<net::LeafId>(topo_.leaves)) {
    monitors_.push_back(std::make_unique<PortMonitor>(l, topo_, config_.job));
    monitors_.back()->set_finalize_hook([this](const IterationRecord& r) {
      // Deferred (sharded-lane) mode: the monitor just recorded into its
      // per-lane history; evaluation waits for the coordinator's flush().
      if (!deferred_) on_finalized(r);
    });
    if (config_.model == ModelKind::kLearned) {
      learned_.push_back(
          std::make_unique<LearnedModel>(topo_.uplinks_per_leaf(), config_.learned));
    }
    if (config_.detector == DetectorKind::kStreaming) {
      streaming_.push_back(std::make_unique<StreamingDetector>(
          l, topo_.uplinks_per_leaf(), topo_.leaves, config_.streaming));
    }
  }
}

void FlowPulseSystem::set_prediction(PortLoadMap prediction) {
  // Streaming detectors re-seed their EWMA baselines from each installed
  // prediction (arm and every controller re-baseline alike), so a routing
  // change does not register as a deviation.
  for (auto& s : streaming_) s->seed(prediction);
  detector_ = std::make_unique<Detector>(std::move(prediction), config_.threshold);
}

void FlowPulseSystem::on_finalized(const IterationRecord& record) {
#if FP_TRACE_ENABLED
  if (fabric_ != nullptr) {
    // Hoisted out of the macro argument list: simulator() is non-const, and
    // FP_TRACE arguments must stay side-effect-free across build variants
    // (fplint variant-divergence).
    sim::Simulator& trace_sim = fabric_->simulator();
    FP_TRACE(trace_sim, kIteration, "", record.leaf.v(), 0, record.iteration.v(), 0.0,
             "finalized");
  }
#endif
  if (config_.model == ModelKind::kLearned) {
    learned_outcomes_.push_back(LearnedOutcome{record.leaf, record.iteration,
                                               learned_[record.leaf.v()]->observe(record)});
    return;
  }
  if (config_.model == ModelKind::kDynamic) {
    if (provider_) {
      if (const PortLoadMap* prediction = provider_(record.iteration)) {
        results_.push_back(evaluate_record(*prediction, config_.threshold, record));
        trace_result(results_.back());
        if (alert_hook_) alert_hook_(results_.back());
      }
    }
    return;
  }
  if (config_.detector == DetectorKind::kStreaming) {
    results_.push_back(streaming_[record.leaf.v()]->observe(record));
    trace_result(results_.back());
    if (alert_hook_) alert_hook_(results_.back());
    return;
  }
  if (detector_ != nullptr) {
    results_.push_back(detector_->evaluate(record));
    trace_result(results_.back());
    // The hook may swap the detector (re-baseline); evaluation is done.
    if (alert_hook_) alert_hook_(results_.back());
  }
}

// One kDetectorFlag + one kLocalization event per alerted port. Separate
// events on purpose: the flag is the raw deviation signal, the localization
// is the verdict layered on top, and the timeline should show both.
void FlowPulseSystem::trace_result([[maybe_unused]] const DetectionResult& r) {
#if FP_TRACE_ENABLED
  if (fabric_ == nullptr) return;  // tracing is simulator-bound
  constexpr auto verdict_name = [](Localization::Verdict v) {
    switch (v) {
      case Localization::Verdict::kLocalLink:
        return "local-link";
      case Localization::Verdict::kRemoteLinks:
        return "remote-links";
      case Localization::Verdict::kUnknown:
        return "unknown";
    }
    return "unknown";
  };
  sim::Simulator& sim = fabric_->simulator();
  for (const PortAlert& a : r.alerts) {
    FP_TRACE(sim, kDetectorFlag, "", r.leaf.v(), a.uplink.v(), r.iteration.v(), a.rel_dev,
             a.observed < a.predicted ? "shortfall" : "surplus");
    FP_TRACE(sim, kLocalization, "", r.leaf.v(), a.uplink.v(), r.iteration.v(), a.rel_dev,
             verdict_name(a.localization.verdict));
  }
#endif
}

void FlowPulseSystem::flush() {
  for (auto& m : monitors_) m->flush();
  if (deferred_) {
    // Replay every not-yet-evaluated record in canonical (iteration, leaf)
    // order: each monitor's history is already iteration-ordered, and the
    // cross-leaf merge below does not depend on which lane finalized first.
    replayed_.resize(monitors_.size(), 0);
    std::vector<const IterationRecord*> pending;
    for (std::size_t l = 0; l < monitors_.size(); ++l) {
      const auto& history = monitors_[l]->history();
      for (std::size_t i = replayed_[l]; i < history.size(); ++i) {
        pending.push_back(&history[i]);
      }
      replayed_[l] = history.size();
    }
    std::stable_sort(pending.begin(), pending.end(),
                     [](const IterationRecord* a, const IterationRecord* b) {
                       if (a->iteration.v() != b->iteration.v()) {
                         return a->iteration.v() < b->iteration.v();
                       }
                       return a->leaf.v() < b->leaf.v();
                     });
    for (const IterationRecord* r : pending) on_finalized(*r);
  }
#if FP_AUDIT_ENABLED
  // Monitor-vs-switch reconciliation: each monitor's per-port byte ledger
  // must equal the delivering downlink's independent count of tagged
  // collective data bytes for this job — every monitored packet was really
  // delivered, and every delivered tagged packet was monitored. Only
  // meaningful with an attached fabric: the transport-agnostic mode has no
  // switch-side ledger to reconcile against.
  if (fabric_ == nullptr) return;
  const net::TopologyInfo& info = topo_;
  for (const net::LeafId l : core::ids<net::LeafId>(info.leaves)) {
    for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(info.uplinks_per_leaf())) {
      const std::uint64_t monitored = monitors_[l.v()]->audit_bytes(u);
      const std::uint64_t delivered =
          fabric_->audit_downlink_tagged_bytes(l, u, config_.job).v();
      FP_AUDIT(monitored == delivered, "monitor-reconciliation",
               "leaf" + std::to_string(l.v()) + ".up" + std::to_string(u.v()), config_.job, 0,
               "monitor counted " + std::to_string(monitored) +
                   " tagged bytes but the switch delivered " + std::to_string(delivered));
    }
  }
#endif
}

std::vector<double> FlowPulseSystem::per_iteration_max_dev() const {
  std::vector<double> devs;
  auto note = [&devs](net::IterIndex iteration, double dev) {
    if (iteration.v() >= devs.size()) devs.resize(iteration.v() + 1, 0.0);
    devs[iteration.v()] = std::max(devs[iteration.v()], dev);
  };
  for (const DetectionResult& r : results_) note(r.iteration, r.max_rel_dev);
  for (const LearnedOutcome& o : learned_outcomes_) note(o.iteration, o.outcome.max_rel_dev);
  return devs;
}

std::vector<DetectionResult> FlowPulseSystem::faulty_results() const {
  std::vector<DetectionResult> faulty;
  std::copy_if(results_.begin(), results_.end(), std::back_inserter(faulty),
               [](const DetectionResult& r) { return r.faulty(); });
  return faulty;
}

}  // namespace flowpulse::fp
