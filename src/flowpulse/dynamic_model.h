#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "collective/runner.h"
#include "flowpulse/analytical_model.h"
#include "flowpulse/port_load.h"
#include "flowpulse/system.h"
#include "net/routing.h"
#include "net/topology_info.h"

namespace flowpulse::fp {

/// §7 "Beyond reduction collectives": monitoring collectives whose demand
/// matrix changes every iteration (e.g. expert-parallel AlltoAll).
///
/// The tracker recomputes the analytical prediction for each iteration from
/// that iteration's actual schedule (extracted from the collective runner
/// when the iteration completes — in deployment, the communication library
/// would push the demand alongside the flow tags) and serves it to the
/// FlowPulseSystem in kDynamic mode. Leaf monitors finalize iteration i
/// only after iteration i+1's first packet, which is strictly after the
/// runner's end-of-iteration hook, so the prediction is always ready.
class DynamicDemandTracker {
 public:
  DynamicDemandTracker(const net::TopologyInfo& info, const net::RoutingState& routing,
                       std::uint32_t mtu_payload, core::Bytes header_bytes)
      : info_{info}, routing_{routing}, model_{info, mtu_payload, header_bytes} {}

  /// Register the prediction for one iteration from its schedule.
  void record_schedule(net::IterIndex iteration, const collective::CommSchedule& schedule,
                       const std::vector<net::HostId>& rank_to_host) {
    const auto demand =
        collective::DemandMatrix::from_schedule(schedule, rank_to_host, info_.num_hosts());
    predictions_.emplace(iteration, model_.predict(demand, routing_));
  }

  [[nodiscard]] const PortLoadMap* prediction_for(net::IterIndex iteration) const {
    auto it = predictions_.find(iteration);
    return it == predictions_.end() ? nullptr : &it->second;
  }

  /// Wire a runner (whose schedule may regenerate each iteration) to a
  /// FlowPulseSystem configured with ModelKind::kDynamic.
  void attach(collective::CollectiveRunner& runner, FlowPulseSystem& system) {
    runner.add_iteration_hook([this, &runner](net::IterIndex iter, sim::Time, sim::Time) {
      record_schedule(iter, runner.current_schedule(), runner.config().hosts);
    });
    system.set_prediction_provider(
        [this](net::IterIndex iter) { return prediction_for(iter); });
  }

  [[nodiscard]] std::size_t tracked_iterations() const { return predictions_.size(); }

 private:
  net::TopologyInfo info_;
  const net::RoutingState& routing_;
  AnalyticalModel model_;
  // Ordered container: iteration-keyed simulation state stays deterministic
  // even if a future consumer iterates it (detlint bans unordered here).
  std::map<net::IterIndex, PortLoadMap> predictions_;
};

}  // namespace flowpulse::fp
