#include "flowpulse/analytical_model.h"

namespace flowpulse::fp {

PortLoadMap AnalyticalModel::predict(const collective::DemandMatrix& demand,
                                     const net::RoutingState& routing) const {
  PortLoadMap map{info_.leaves, info_.uplinks_per_leaf()};
  const std::uint32_t hosts = demand.hosts();
  for (const net::HostId src : core::ids<net::HostId>(hosts)) {
    const net::LeafId src_leaf = info_.leaf_of(src);
    for (const net::HostId dst : core::ids<net::HostId>(hosts)) {
      const core::Bytes d = demand.at(src, dst);
      if (d == core::Bytes{0}) continue;
      const net::LeafId dst_leaf = info_.leaf_of(dst);
      if (src_leaf == dst_leaf) continue;  // local traffic never reaches spines
      const auto& valid = routing.valid_uplinks(src_leaf, dst_leaf);
      if (valid.empty()) continue;  // partitioned: nothing arrives
      const double share = wire_bytes(d) / static_cast<double>(valid.size());
      for (const net::UplinkIndex u : valid) {
        map.add(dst_leaf, u, src_leaf, share);
      }
    }
  }
  return map;
}

}  // namespace flowpulse::fp
