#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "flowpulse/monitor.h"
#include "flowpulse/port_load.h"
#include "net/types.h"

namespace flowpulse::fp {

/// Where the localizer places a detected fault (paper §5.3, Fig. 4).
struct Localization {
  enum class Verdict : std::uint8_t {
    kLocalLink,    ///< every sender's traffic on the port is short → the
                   ///< local spine→leaf link is at fault
    kRemoteLinks,  ///< only some senders are short → their leaf↔spine links
    kUnknown,      ///< no per-sender signal (e.g. surplus-only deviation)
  };
  Verdict verdict = Verdict::kUnknown;
  /// For kRemoteLinks: the sender leaves whose traffic is missing.
  std::vector<net::LeafId> suspect_senders;
};

/// One port whose observed volume deviated beyond the threshold.
struct PortAlert {
  net::UplinkIndex uplink{};
  double observed = 0.0;
  double predicted = 0.0;
  double rel_dev = 0.0;
  Localization localization;
};

/// Result of checking one finalized iteration at one leaf.
struct DetectionResult {
  net::LeafId leaf{};
  net::IterIndex iteration{};
  double max_rel_dev = 0.0;  ///< across all ports (for threshold sweeps)
  std::vector<PortAlert> alerts;
  [[nodiscard]] bool faulty() const { return !alerts.empty(); }
};

/// Relative deviation between an observation and a prediction. A port
/// predicted silent but carrying traffic deviates infinitely.
[[nodiscard]] inline double relative_deviation(double observed, double predicted) {
  if (predicted <= 0.0) {
    return observed > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return (observed > predicted ? observed - predicted : predicted - observed) / predicted;
}

/// Per-sender comparison on one alerted port: decides local vs remote link.
/// A sender counts as affected when its contribution falls short of its
/// prediction by more than `threshold` (relative).
[[nodiscard]] Localization localize(const IterationRecord& record, const PortLoad& predicted,
                                    net::UplinkIndex uplink, double threshold);

/// Check one finalized iteration against a prediction: any port whose
/// relative deviation exceeds `threshold` raises a localized alert.
[[nodiscard]] DetectionResult evaluate_record(const PortLoadMap& prediction, double threshold,
                                              const IterationRecord& record);

/// Threshold detector (paper §5.3): compares each finalized iteration
/// against the per-port prediction; any port whose relative deviation
/// exceeds the threshold raises an alert, which is then localized.
class Detector {
 public:
  Detector(PortLoadMap prediction, double threshold)
      : prediction_{std::move(prediction)}, threshold_{threshold} {}

  [[nodiscard]] DetectionResult evaluate(const IterationRecord& record) const;

  [[nodiscard]] double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }
  [[nodiscard]] const PortLoadMap& prediction() const { return prediction_; }
  void set_prediction(PortLoadMap p) { prediction_ = std::move(p); }

 private:
  PortLoadMap prediction_;
  double threshold_;
};

}  // namespace flowpulse::fp
