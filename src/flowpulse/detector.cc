#include "flowpulse/detector.h"

#include <algorithm>

namespace flowpulse::fp {

Localization localize(const IterationRecord& record, const PortLoad& predicted,
                      net::UplinkIndex uplink, double threshold) {
  Localization loc;
  std::uint32_t senders_expected = 0;
  std::uint32_t senders_short = 0;
  const std::uint32_t num_src = static_cast<std::uint32_t>(predicted.by_src_leaf.size());
  for (const net::LeafId src : core::ids<net::LeafId>(num_src)) {
    const double pred = predicted.by_src_leaf[src.v()];
    if (pred <= 0.0) continue;
    ++senders_expected;
    const double obs = record.by_src[uplink.v()][src.v()];
    if (pred - obs > threshold * pred) {
      ++senders_short;
      loc.suspect_senders.push_back(src);
    }
  }
  if (senders_expected == 0 || senders_short == 0) {
    loc.verdict = Localization::Verdict::kUnknown;
    loc.suspect_senders.clear();
    return loc;
  }
  // The paper's rule is "all senders short → local link; one sender short →
  // that sender's remote link". With finite per-sender volumes the
  // classification is statistical, so we use robust fractions: a clear
  // majority of senders short blames the shared local link, a clear
  // minority blames the senders' own links, and the ambiguous middle stays
  // unknown rather than misdirecting the operator.
  const double frac =
      static_cast<double>(senders_short) / static_cast<double>(senders_expected);
  if (senders_expected == 1 || frac >= 0.7) {
    loc.verdict = Localization::Verdict::kLocalLink;
    loc.suspect_senders.clear();
  } else if (frac <= 0.5) {
    // Covers the paper's Fig. 4 exactly: two senders, one short → remote.
    loc.verdict = Localization::Verdict::kRemoteLinks;
  } else {
    loc.verdict = Localization::Verdict::kUnknown;
    loc.suspect_senders.clear();
  }
  return loc;
}

DetectionResult evaluate_record(const PortLoadMap& prediction, double threshold,
                                const IterationRecord& record) {
  DetectionResult result;
  result.leaf = record.leaf;
  result.iteration = record.iteration;
  const std::uint32_t uplinks = prediction.uplinks();
  for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(uplinks)) {
    const PortLoad& pred = prediction.at(record.leaf, u);
    const double observed = record.bytes[u.v()];
    const double dev = relative_deviation(observed, pred.total);
    result.max_rel_dev = std::max(result.max_rel_dev, dev);
    if (dev > threshold) {
      PortAlert alert;
      alert.uplink = u;
      alert.observed = observed;
      alert.predicted = pred.total;
      alert.rel_dev = dev;
      alert.localization = localize(record, pred, u, threshold);
      result.alerts.push_back(std::move(alert));
    }
  }
  return result;
}

DetectionResult Detector::evaluate(const IterationRecord& record) const {
  return evaluate_record(prediction_, threshold_, record);
}

}  // namespace flowpulse::fp
