#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "net/switch.h"
#include "net/topology_info.h"
#include "net/types.h"
#include "sim/audit.h"

namespace flowpulse::fp {

/// Everything one monitored switch measured about one collective iteration.
struct IterationRecord {
  net::LeafId leaf{};  ///< monitor id (leaf id, or pod-spine id at level 2)
  net::IterIndex iteration{};
  std::vector<double> bytes;                  ///< per monitored port, wire bytes
  std::vector<std::vector<double>> by_src;    ///< [port][src leaf] wire bytes
  std::uint64_t packets = 0;
};

/// In-switch measurement (paper §5.1): counts the wire bytes of tagged
/// collective data packets arriving on each monitored ingress port,
/// delimiting iterations by the iteration number embedded in flow_id.
/// The previous iteration is finalized when the first packet of the next
/// one appears — the switch is oblivious to stragglers because synchronous
/// training guarantees iteration i's traffic finished before i+1 starts.
///
/// Per-sender byte counts (by source leaf, derivable from the packet source
/// address) feed localization.
///
/// The same monitor deploys at leaf switches (ingress from spines — the
/// paper's design) and, for three-level topologies, at pod spines (ingress
/// from cores — the paper's §7 extension).
class PortMonitor {
 public:
  using FinalizeHook = std::function<void(const IterationRecord&)>;

  /// Leaf-switch deployment on a 2-level fat tree.
  PortMonitor(net::LeafId leaf, const net::TopologyInfo& info, std::uint16_t job = 0)
      : PortMonitor(leaf.v(), info.uplinks_per_leaf(), info.leaves, info.hosts_per_leaf, job) {
  }

  /// Generic deployment: `id` names the monitored switch, `ports` is how
  /// many ingress ports it watches, senders are attributed to leaves via
  /// src_host / hosts_per_leaf over `leaves` leaves.
  PortMonitor(std::uint32_t id, std::uint32_t ports, std::uint32_t leaves,
              std::uint32_t hosts_per_leaf, std::uint16_t job = 0)
      : id_{id}, ports_{ports}, leaves_{leaves}, hosts_per_leaf_{hosts_per_leaf}, job_{job} {
#if FP_AUDIT_ENABLED
    audit_bytes_.assign(ports_, 0);
#endif
  }

  /// Install this monitor on a leaf switch's spine-ingress tap.
  void attach(net::LeafSwitch& sw) {
    sw.set_spine_ingress_hook(
        [this](net::UplinkIndex u, const net::Packet& p) { record(u, p); });
  }

  /// Direct feed (for unit tests, or any switch exposing an ingress tap).
  void record(net::UplinkIndex port, const net::Packet& p);

  /// Finalize the currently accumulating iteration (end of training run).
  void flush();

  void set_finalize_hook(FinalizeHook hook) { finalize_hook_ = std::move(hook); }

  [[nodiscard]] const std::vector<IterationRecord>& history() const { return history_; }
  [[nodiscard]] net::LeafId leaf() const { return net::LeafId{id_}; }
  [[nodiscard]] bool accumulating() const { return current_.has_value(); }

#if FP_AUDIT_ENABLED
  /// Exact wire bytes this monitor counted on `port` across the whole run
  /// (all iterations plus the one still accumulating) — the monitor-side
  /// ledger for monitor-vs-switch reconciliation.
  [[nodiscard]] std::uint64_t audit_bytes(net::UplinkIndex port) const {
    return audit_bytes_[port.v()];
  }
#endif

 private:
  void begin_iteration(net::IterIndex iteration);
  void finalize();

  std::uint32_t id_;
  std::uint32_t ports_;
  std::uint32_t leaves_;
  std::uint32_t hosts_per_leaf_;
  std::uint16_t job_;
  std::optional<net::IterIndex> current_;
  IterationRecord accum_;
  std::vector<IterationRecord> history_;
  FinalizeHook finalize_hook_;
#if FP_AUDIT_ENABLED
  std::vector<std::uint64_t> audit_bytes_;
#endif
};

}  // namespace flowpulse::fp
