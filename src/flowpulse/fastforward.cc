#include "flowpulse/fastforward.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/rng.h"

namespace flowpulse::fp {
namespace {

// splitmix64 finalizer: decorrelates the per-(leaf, iteration) noise streams
// from one another and from every other consumer of the scenario seed.
[[nodiscard]] std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Active picoseconds of a flapping fault in [0, t) past its start.
[[nodiscard]] std::int64_t flap_active_ps(std::int64_t t, std::int64_t period,
                                          std::int64_t on) {
  if (t <= 0) return 0;
  return (t / period) * on + std::min(t % period, on);
}

}  // namespace

FastForwardModel::FastForwardModel(const net::TopologyInfo& info, Config config)
    : info_{info}, config_{config}, baseline_{info.leaves, info.uplinks_per_leaf()} {}

double FastForwardModel::wire_bytes(core::Bytes payload) const {
  if (payload == core::Bytes{0}) return 0.0;
  const std::uint64_t segments =
      (payload.v() + config_.mtu_payload - 1) / config_.mtu_payload;
  return static_cast<double>(payload.v() + segments * config_.header_bytes.v());
}

void FastForwardModel::rebaseline(const collective::DemandMatrix& demand,
                                  const net::RoutingState& routing) {
  routing_ = &routing;
  baseline_ = PortLoadMap{info_.leaves, info_.uplinks_per_leaf()};
  const std::uint32_t hosts = demand.hosts();
  for (const net::HostId src : core::ids<net::HostId>(hosts)) {
    const net::LeafId src_leaf = info_.leaf_of(src);
    for (const net::HostId dst : core::ids<net::HostId>(hosts)) {
      const core::Bytes d = demand.at(src, dst);
      if (d == core::Bytes{0}) continue;
      const net::LeafId dst_leaf = info_.leaf_of(dst);
      if (src_leaf == dst_leaf) continue;
      const auto& valid = routing.valid_uplinks(src_leaf, dst_leaf);
      if (valid.empty()) continue;
      const double share = wire_bytes(d) / static_cast<double>(valid.size());
      for (const net::UplinkIndex u : valid) {
        baseline_.add(dst_leaf, u, src_leaf, share);
      }
    }
  }
}

double FastForwardModel::stationary_drop(const net::FaultSpec& spec) {
  using Kind = net::FaultSpec::Kind;
  switch (spec.kind) {
    case Kind::kNone:
      return 0.0;
    case Kind::kDisconnect:
    case Kind::kBlackHole:
      return 1.0;
    case Kind::kRandomDrop:
      return spec.drop_rate;
    case Kind::kGilbertElliott: {
      const double denom = spec.good_to_bad + spec.bad_to_good;
      const double bad_frac = denom > 0.0 ? spec.good_to_bad / denom : 0.0;
      return bad_frac * spec.drop_rate + (1.0 - bad_frac) * spec.good_loss;
    }
  }
  return 0.0;
}

double FastForwardModel::active_fraction(const net::FaultSpec& spec, sim::Time ws,
                                         sim::Time we) {
  if (spec.kind == net::FaultSpec::Kind::kNone || we <= ws) return 0.0;
  const sim::Time a = ws < spec.start ? spec.start : ws;
  const sim::Time b = we < spec.end ? we : spec.end;
  if (a >= b) return 0.0;
  const double window = static_cast<double>((we - ws).ps());
  if (spec.flap_period <= sim::Time::zero()) {
    return static_cast<double>((b - a).ps()) / window;
  }
  const std::int64_t period = spec.flap_period.ps();
  const std::int64_t on = std::min(spec.flap_on.ps(), period);
  const std::int64_t active = flap_active_ps((b - spec.start).ps(), period, on) -
                              flap_active_ps((a - spec.start).ps(), period, on);
  return static_cast<double>(active) / window;
}

double FastForwardModel::survival(net::LeafId src, net::UplinkIndex u, net::LeafId dst,
                                  sim::Time ws, sim::Time we) const {
  double w = 1.0;
  for (const FlowFault& f : faults_) {
    if (f.uplink != u) continue;
    const bool up = f.uplink_dir && f.leaf == src;
    const bool down = f.downlink_dir && f.leaf == dst;
    if (!up && !down) continue;
    const double p = stationary_drop(f.spec) * active_fraction(f.spec, ws, we);
    if (up) w *= 1.0 - p;
    if (down) w *= 1.0 - p;
  }
  return w;
}

IterationRecord FastForwardModel::synthesize(net::LeafId leaf, net::IterIndex iteration,
                                             sim::Time window_start,
                                             sim::Time window_end) const {
  assert(routing_ != nullptr && "rebaseline() before synthesize()");
  const std::uint32_t uplinks = info_.uplinks_per_leaf();
  IterationRecord rec;
  rec.leaf = leaf;
  rec.iteration = iteration;
  rec.bytes.assign(uplinks, 0.0);
  rec.by_src.assign(uplinks, std::vector<double>(info_.leaves, 0.0));

  for (const net::LeafId src : core::ids<net::LeafId>(info_.leaves)) {
    if (src == leaf) continue;
    if (config_.fault_model) {
      // Attenuate each uplink's share by its survival weight, then re-spray
      // the lost bytes uniformly over the pair's valid uplinks (retransmit
      // resurfacing, first order).
      double lost = 0.0;
      for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(uplinks)) {
        const double share = baseline_.at(leaf, u).by_src_leaf[src.v()];
        if (share <= 0.0) continue;
        const double w = survival(src, u, leaf, window_start, window_end);
        rec.by_src[u.v()][src.v()] = share * w;
        lost += share * (1.0 - w);
      }
      if (lost > 0.0) {
        const auto& valid = routing_->valid_uplinks(src, leaf);
        if (!valid.empty()) {
          const double refill = lost / static_cast<double>(valid.size());
          for (const net::UplinkIndex u : valid) rec.by_src[u.v()][src.v()] += refill;
        }
      }
    } else {
      for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(uplinks)) {
        rec.by_src[u.v()][src.v()] = baseline_.at(leaf, u).by_src_leaf[src.v()];
      }
    }
  }

  if (config_.noise_rel > 0.0) {
    // One deterministic stream per (leaf, iteration); draws happen in fixed
    // (uplink, sender) order so the record is reproducible from the seed.
    sim::Rng rng{mix(config_.seed ^ mix((static_cast<std::uint64_t>(leaf.v()) << 32) |
                                        iteration.v()))};
    for (std::uint32_t u = 0; u < uplinks; ++u) {
      for (std::uint32_t s = 0; s < info_.leaves; ++s) {
        double& v = rec.by_src[u][s];
        if (v <= 0.0) continue;
        // Box–Muller; 1 − U keeps the log argument in (0, 1].
        const double u1 = 1.0 - rng.next_double();
        const double u2 = rng.next_double();
        const double gauss =
            std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.141592653589793 * u2);
        v = std::max(0.0, v * (1.0 + config_.noise_rel * gauss));
      }
    }
  }

  double total_bytes = 0.0;
  for (std::uint32_t u = 0; u < uplinks; ++u) {
    double t = 0.0;
    for (const double v : rec.by_src[u]) t += v;
    rec.bytes[u] = t;
    total_bytes += t;
  }
  const double wire_mtu = static_cast<double>(config_.mtu_payload + config_.header_bytes.v());
  rec.packets = static_cast<std::uint64_t>(total_bytes / wire_mtu + 0.5);
  return rec;
}

sim::Time FastForwardModel::estimate_iteration_time(const collective::DemandMatrix& demand,
                                                    core::GbitsPerSec host_rate) const {
  double busiest = 0.0;
  const std::uint32_t hosts = demand.hosts();
  for (const net::HostId a : core::ids<net::HostId>(hosts)) {
    double tx = 0.0;
    double rx = 0.0;
    for (const net::HostId b : core::ids<net::HostId>(hosts)) {
      tx += wire_bytes(demand.at(a, b));
      rx += wire_bytes(demand.at(b, a));
    }
    busiest = std::max({busiest, tx, rx});
  }
  // Serialization of the busiest endpoint plus 25% pipeline/ACK slack; a
  // floor keeps zero-demand iterations from collapsing the clock.
  const sim::Time serial =
      core::serialization_time(core::Bytes{static_cast<std::uint64_t>(busiest)}, host_rate);
  const sim::Time est = sim::Time::picoseconds(serial.ps() + serial.ps() / 4);
  return est > sim::Time::microseconds(1) ? est : sim::Time::microseconds(1);
}

}  // namespace flowpulse::fp
