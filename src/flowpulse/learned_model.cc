#include "flowpulse/learned_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace flowpulse::fp {

LearnedModel::LearnedModel(std::uint32_t uplinks, Config config)
    : uplinks_{uplinks}, config_{config} {
  reset_learning();
}

void LearnedModel::reset_learning() {
  phase_ = Phase::kLearning;
  samples_ = 0;
  sum_.assign(uplinks_, 0.0);
  sum_by_src_.assign(uplinks_, {});
}

double LearnedModel::dispersion(const std::vector<double>& loads) {
  double mean = 0.0;
  std::uint32_t n = 0;
  for (const double v : loads) {
    if (v > 0.0) {
      mean += v;
      ++n;
    }
  }
  if (n < 2) return 0.0;
  mean /= n;
  double var = 0.0;
  for (const double v : loads) {
    if (v > 0.0) var += (v - mean) * (v - mean);
  }
  var /= n;
  return std::sqrt(var) / mean;
}

void LearnedModel::absorb_sample(const IterationRecord& record) {
  for (std::uint32_t u = 0; u < uplinks_; ++u) {
    sum_[u] += record.bytes[u];
    if (sum_by_src_[u].size() != record.by_src[u].size()) {
      sum_by_src_[u].assign(record.by_src[u].size(), 0.0);
    }
    for (std::size_t s = 0; s < record.by_src[u].size(); ++s) {
      sum_by_src_[u][s] += record.by_src[u][s];
    }
  }
  ++samples_;
  if (samples_ >= config_.learn_iterations) {
    const double n = static_cast<double>(samples_);
    baseline_.assign(uplinks_, 0.0);
    baseline_by_src_.assign(uplinks_, {});
    for (std::uint32_t u = 0; u < uplinks_; ++u) {
      baseline_[u] = sum_[u] / n;
      baseline_by_src_[u] = sum_by_src_[u];
      for (double& v : baseline_by_src_[u]) v /= n;
    }
    baseline_cv_ = dispersion(baseline_);
    phase_ = Phase::kMonitoring;
  }
}

LearnedModel::Outcome LearnedModel::observe(const IterationRecord& record) {
  Outcome out;
  if (phase_ == Phase::kLearning) {
    absorb_sample(record);
    out.kind = Outcome::Kind::kLearning;
    return out;
  }

  for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(uplinks_)) {
    const double dev = relative_deviation(record.bytes[u.v()], baseline_[u.v()]);
    out.max_rel_dev = std::max(out.max_rel_dev, dev);
    if (dev > config_.threshold) out.deviating_ports.push_back(u);
  }

  if (out.deviating_ports.empty()) {
    out.kind = Outcome::Kind::kOk;
    return out;
  }

  // Healing signature (Fig. 3): the load re-balances *more evenly* than the
  // fault-poisoned baseline, and the weakest active port improved — i.e. no
  // new hole appeared. A new fault shows the opposite: a port sinks below
  // anything in the baseline and dispersion grows.
  auto min_active = [](const std::vector<double>& v) {
    double m = std::numeric_limits<double>::infinity();
    for (const double x : v) {
      if (x > 0.0 && x < m) m = x;
    }
    return std::isinf(m) ? 0.0 : m;
  };
  const double cv_now = dispersion(record.bytes);
  const bool weakest_improved =
      min_active(record.bytes) >= min_active(baseline_) * (1.0 - config_.threshold);
  if (weakest_improved && cv_now < baseline_cv_ * (1.0 - config_.healing_cv_margin)) {
    out.kind = Outcome::Kind::kRebaseline;
    ++rebaseline_count_;
    reset_learning();
    // The healed iteration itself is the first sample of the new baseline.
    absorb_sample(record);
    return out;
  }

  out.kind = Outcome::Kind::kAlert;
  // Localize each deviating port against the learned per-sender baseline
  // (same per-sender comparison as the fixed models, Fig. 4).
  for (const net::UplinkIndex u : out.deviating_ports) {
    PortLoad learned_load{static_cast<std::uint32_t>(baseline_by_src_[u.v()].size())};
    learned_load.total = baseline_[u.v()];
    learned_load.by_src_leaf = baseline_by_src_[u.v()];
    out.localizations.push_back(localize(record, learned_load, u, config_.threshold));
  }
  return out;
}

}  // namespace flowpulse::fp
