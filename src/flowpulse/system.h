#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flowpulse/detector.h"
#include "flowpulse/learned_model.h"
#include "flowpulse/monitor.h"
#include "flowpulse/port_load.h"
#include "flowpulse/streaming_detector.h"
#include "net/fat_tree.h"

namespace flowpulse::fp {

/// How the per-link load model is obtained (paper §5.2).
enum class ModelKind : std::uint8_t {
  kAnalytical,  ///< closed-form d/(s−f) from the demand matrix
  kSimulation,  ///< taken from a fault-free(-of-new-faults) simulation run
  kLearned,     ///< measured during the first training iterations
  kDynamic,     ///< per-iteration prediction from a provider callback —
                ///< the §7 extension for collectives whose demand matrix
                ///< changes every iteration (e.g. expert-parallel AlltoAll)
};

/// Which evaluation engine judges finalized iterations (fixed-model modes).
enum class DetectorKind : std::uint8_t {
  kThreshold,  ///< paper's detector: compare against the installed prediction
  kStreaming,  ///< O(1) EWMA/z-score streaming detector (StreamingDetector)
};

struct SystemConfig {
  double threshold = 0.01;  ///< paper's default detection threshold (1%)
  std::uint16_t job = 0;    ///< which tagged collective to measure
  ModelKind model = ModelKind::kAnalytical;
  LearnedModel::Config learned{};
  DetectorKind detector = DetectorKind::kThreshold;
  StreamingConfig streaming{};  ///< kStreaming knobs
};

/// The deployed FlowPulse system: one PortMonitor per leaf switch, each
/// independently comparing its finalized iterations against the model —
/// no inter-switch coordination, exactly as in the paper.
///
/// For kAnalytical / kSimulation, install the prediction with
/// set_prediction() before the run; every finalized iteration is evaluated
/// eagerly and collected in results(). For kLearned, each leaf owns a
/// LearnedModel whose outcomes are collected in learned_outcomes().
///
/// Two deployments share this class:
///  * simulator-attached (FatTree ctor): monitors tap every leaf switch's
///    spine ingress and finalize iterations as simulated packets arrive;
///  * transport-agnostic (TopologyInfo ctor): no fabric, no simulator —
///    finalized IterationRecords arrive solely through ingest(). This is
///    what `flowpulsed` runs: the detection core needs only the minimal
///    topology view (leaf count, uplinks per leaf, spine_of), so any
///    substrate — simulator, wire protocol, replay file — can feed it.
class FlowPulseSystem {
 public:
  FlowPulseSystem(net::FatTree& fabric, SystemConfig config);

  /// Transport-agnostic deployment: detection over a bare topology view.
  /// Monitors exist but are not attached to switches; ingest() is the only
  /// input path, and tracing/audit (simulator-bound) are disabled.
  FlowPulseSystem(const net::TopologyInfo& topo, SystemConfig config);

  /// Install the per-port prediction (fixed-model modes).
  void set_prediction(PortLoadMap prediction);

  /// kDynamic mode: called at evaluation time with the iteration number;
  /// returns that iteration's prediction (nullptr → skip the iteration,
  /// e.g. the demand is not known yet). The pointee must stay alive until
  /// the next finalize.
  using PredictionProvider = std::function<const PortLoadMap*(net::IterIndex iteration)>;
  void set_prediction_provider(PredictionProvider provider) {
    provider_ = std::move(provider);
  }

  /// Observer of every evaluated (leaf × iteration) check, fired eagerly as
  /// monitors finalize iterations mid-run — the subscription point for
  /// closed-loop consumers (ctrl::MitigationController). Fires for clean
  /// results too: probation/debounce logic needs to see iterations that did
  /// NOT alert. Not invoked in kLearned mode (no DetectionResult there).
  /// The hook may re-arm the system via set_prediction() (re-baselining);
  /// the result it received stays valid for the duration of the call.
  using AlertHook = std::function<void(const DetectionResult&)>;
  void set_alert_hook(AlertHook hook) { alert_hook_ = std::move(hook); }

  /// Sharded-lane mode: monitors finalize on their own event lanes, so the
  /// eager per-finalize evaluation path would race on results_ and collect
  /// them in lane-scheduling order. With deferred evaluation on, finalize
  /// hooks do nothing during the run (each monitor only appends to its own
  /// per-lane history) and flush() — called on the coordinator after the
  /// lanes drain — replays every new record through the normal pipeline in
  /// canonical (iteration, leaf) order, independent of lane count.
  void set_deferred_evaluation(bool on) { deferred_ = on; }

  /// Finalize the in-flight iteration at every leaf (end of training run).
  void flush();

  /// Feed one synthesized (or replayed) finalized iteration through the
  /// exact pipeline a PortMonitor finalize takes — evaluation, result
  /// collection, alert hook. The hybrid-fidelity engine injects flow-level
  /// fast-forwarded iterations here; the monitors never see them.
  void ingest(const IterationRecord& record) { on_finalized(record); }

  /// Every evaluated (leaf × iteration) check, in finalize order.
  [[nodiscard]] const std::vector<DetectionResult>& results() const { return results_; }
  /// Drop collected results. Streaming consumers (the daemon's verdict
  /// accumulator subscribes via the alert hook) call this after every
  /// ingest so detection memory stays flat over unbounded counter streams.
  void clear_results() { results_.clear(); }
  /// Learned-model outcomes (kLearned mode), in finalize order.
  struct LearnedOutcome {
    net::LeafId leaf;
    net::IterIndex iteration;
    LearnedModel::Outcome outcome;
  };
  [[nodiscard]] const std::vector<LearnedOutcome>& learned_outcomes() const {
    return learned_outcomes_;
  }

  /// Largest relative deviation seen at iteration `i` across all leaves;
  /// the raw statistic threshold sweeps (ROC) classify on.
  [[nodiscard]] std::vector<double> per_iteration_max_dev() const;

  /// Alerts (ports beyond threshold) across all leaves and iterations.
  [[nodiscard]] std::vector<DetectionResult> faulty_results() const;

  [[nodiscard]] PortMonitor& monitor(net::LeafId leaf) { return *monitors_[leaf.v()]; }
  [[nodiscard]] LearnedModel& learned_model(net::LeafId leaf) { return *learned_[leaf.v()]; }
  [[nodiscard]] const net::TopologyInfo& topology() const { return topo_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] bool has_prediction() const { return detector_ != nullptr; }
  [[nodiscard]] const Detector& detector() const { return *detector_; }
  /// kStreaming only: the per-leaf streaming detector.
  [[nodiscard]] StreamingDetector& streaming_detector(net::LeafId leaf) {
    return *streaming_[leaf.v()];
  }

 private:
  void on_finalized(const IterationRecord& record);
  void trace_result(const DetectionResult& r);

  net::FatTree* fabric_ = nullptr;  ///< null in the transport-agnostic mode
  net::TopologyInfo topo_;
  SystemConfig config_;
  std::vector<std::unique_ptr<PortMonitor>> monitors_;
  std::unique_ptr<Detector> detector_;
  std::vector<std::unique_ptr<StreamingDetector>> streaming_;
  PredictionProvider provider_;
  AlertHook alert_hook_;
  std::vector<std::unique_ptr<LearnedModel>> learned_;
  std::vector<DetectionResult> results_;
  std::vector<LearnedOutcome> learned_outcomes_;
  bool deferred_ = false;
  /// Per-leaf count of history records already replayed by deferred flushes.
  std::vector<std::size_t> replayed_;
};

}  // namespace flowpulse::fp
