#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "flowpulse/detector.h"
#include "flowpulse/monitor.h"
#include "flowpulse/port_load.h"
#include "net/types.h"

namespace flowpulse::fp {

/// Knobs of the closed-state streaming detector.
struct StreamingConfig {
  /// EWMA weight of the newest sample for both mean and variance.
  double alpha = 0.25;
  /// A port alerts when |observed − mean| exceeds this many EWMA sigmas...
  double z_threshold = 4.0;
  /// ...AND this relative deviation (keeps a near-zero variance estimate
  /// from flagging sub-noise wiggles).
  double min_rel_dev = 0.005;
  /// Iterations absorbed before judging, when no prior was seeded.
  std::uint32_t warmup_iterations = 3;
  /// Variance floor, as a fraction of the mean: sigma >= var_floor_rel·mean.
  double var_floor_rel = 1e-3;
};

/// O(1)-state streaming detector: one EWMA mean/variance pair per monitored
/// port plus one EWMA mean per (port, sender) for localization — no history
/// buffers, no per-iteration allocation (asserted by state_bytes() staying
/// constant in tests). The baseline is either seeded from a PortLoadMap
/// prediction (model-driven, alert-ready from iteration 0) or learned
/// in-band over `warmup_iterations` (model-free).
///
/// Judgement happens BEFORE the update, against West's EWMA variance
/// recursion:  diff = x − mean;  incr = α·diff;  mean += incr;
/// var = (1−α)·(var + diff·incr).  A port in kAlert freezes its statistics
/// so a persistent fault cannot poison its own baseline; it re-enters
/// kTrack (and resumes adapting) as soon as an iteration comes back inside
/// the envelope.
class StreamingDetector {
 public:
  StreamingDetector(net::LeafId leaf, std::uint32_t uplinks, std::uint32_t leaves,
                    StreamingConfig config);

  /// Seed every port's mean (and per-sender means) from a model prediction;
  /// variance collapses onto the floor and warmup is skipped. Called on
  /// arm and on every controller re-baseline.
  void seed(const PortLoadMap& prediction);

  /// Forget everything and learn the baseline in-band again.
  void reset();

  /// Judge one finalized iteration, then fold it into the baseline.
  [[nodiscard]] DetectionResult observe(const IterationRecord& record);

  /// Exact bytes of detector state — constant after construction; the O(1)
  /// proof tests pin this across arbitrarily long runs.
  [[nodiscard]] std::size_t state_bytes() const;

  [[nodiscard]] const StreamingConfig& config() const { return config_; }
  [[nodiscard]] net::LeafId leaf() const { return leaf_; }
  /// Current EWMA mean of a port (the "prediction" its alerts carry).
  [[nodiscard]] double mean(net::UplinkIndex u) const { return ports_[u.v()].mean; }
  [[nodiscard]] double variance(net::UplinkIndex u) const { return ports_[u.v()].var; }

 private:
  enum class PortState : std::uint8_t { kWarmup, kTrack, kAlert };

  struct PortStat {
    PortState state = PortState::kWarmup;
    std::uint32_t samples = 0;
    double mean = 0.0;
    double var = 0.0;
  };

  net::LeafId leaf_;
  std::uint32_t uplinks_;
  std::uint32_t leaves_;
  StreamingConfig config_;
  std::vector<PortStat> ports_;       ///< fixed size: uplinks
  std::vector<double> src_mean_;      ///< fixed size: uplinks × leaves
};

}  // namespace flowpulse::fp
