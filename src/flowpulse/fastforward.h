#pragma once

#include <cstdint>
#include <vector>

#include "collective/demand_matrix.h"
#include "core/units.h"
#include "flowpulse/monitor.h"
#include "flowpulse/port_load.h"
#include "net/fault.h"
#include "net/routing.h"
#include "net/topology_info.h"
#include "sim/time.h"

namespace flowpulse::fp {

/// Flow-level fast-forward of one collective iteration: synthesizes the
/// per-port × sender byte counters every PortMonitor would have finalized,
/// without simulating a single packet.
///
/// The healthy baseline is the analytical model's expectation (d/(s−f)
/// spray shares in wire bytes, identical math to AnalyticalModel::predict —
/// EXPERIMENTS.md FIG2 measures it within 0.2% of packet simulation).
/// On top of it:
///
///  * Silent faults (optional, kFlow mode) attenuate each (sender, uplink,
///    receiver) share by a first-order survival weight
///    w = (1 − p_up·duty) · (1 − p_down·duty), where p is the fault kind's
///    stationary drop probability and duty its active fraction of the
///    iteration window (flap-aware). The dropped share is re-sprayed
///    uniformly over the pair's valid uplinks — the reliable transport
///    retransmits lost segments and APS spreads the retransmissions — so
///    the faulty port shows the paper's shortfall and its peers the
///    matching surplus. Second-order effects (retransmit headers, repeated
///    loss) are deliberately ignored; packet mode owns those windows.
///
///  * Deterministic multiplicative noise (seeded per leaf × iteration)
///    models spray imbalance so downstream detector statistics stay
///    honest. Zero noise_rel yields the exact expectation.
///
/// The synthesis is re-baselined whenever routing changes (quarantine /
/// restore), exactly like the detector's prediction.
class FastForwardModel {
 public:
  struct Config {
    std::uint32_t mtu_payload = 4096;
    core::Bytes header_bytes{64};
    double noise_rel = 0.0;
    bool fault_model = false;
    std::uint64_t seed = 1;
  };

  /// One silent fault the flow-level survival model should account for.
  struct FlowFault {
    net::LeafId leaf{};
    net::UplinkIndex uplink{};
    bool uplink_dir = true;    ///< affects traffic the leaf sends up
    bool downlink_dir = true;  ///< affects traffic delivered down to the leaf
    net::FaultSpec spec{};
  };

  FastForwardModel(const net::TopologyInfo& info, Config config);

  void set_faults(std::vector<FlowFault> faults) { faults_ = std::move(faults); }

  /// Recompute the healthy expectation for the current routing state. Must
  /// be called before the first synthesize() and after every routing change;
  /// keeps a reference to `routing` for per-pair re-spray sets.
  void rebaseline(const collective::DemandMatrix& demand, const net::RoutingState& routing);

  /// Synthesize what `leaf`'s PortMonitor would have finalized for the
  /// iteration spanning [window_start, window_end).
  [[nodiscard]] IterationRecord synthesize(net::LeafId leaf, net::IterIndex iteration,
                                           sim::Time window_start,
                                           sim::Time window_end) const;

  /// Analytic iteration-duration estimate: serialization of the busiest
  /// host's wire bytes at `host_rate`, plus pipeline slack. Used by kFlow
  /// mode, where no packet-measured duration exists.
  [[nodiscard]] sim::Time estimate_iteration_time(const collective::DemandMatrix& demand,
                                                  core::GbitsPerSec host_rate) const;

  /// Stationary drop probability of a fault kind (flap/duty excluded).
  [[nodiscard]] static double stationary_drop(const net::FaultSpec& spec);
  /// Fraction of [window_start, window_end) during which `spec` is active.
  [[nodiscard]] static double active_fraction(const net::FaultSpec& spec,
                                              sim::Time window_start, sim::Time window_end);

  [[nodiscard]] const PortLoadMap& baseline() const { return baseline_; }

 private:
  [[nodiscard]] double wire_bytes(core::Bytes payload) const;
  [[nodiscard]] double survival(net::LeafId src, net::UplinkIndex u, net::LeafId dst,
                                sim::Time ws, sim::Time we) const;

  net::TopologyInfo info_;
  Config config_;
  std::vector<FlowFault> faults_;
  PortLoadMap baseline_;
  const net::RoutingState* routing_ = nullptr;
};

}  // namespace flowpulse::fp
