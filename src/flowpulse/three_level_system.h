#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "collective/demand_matrix.h"
#include "flowpulse/detector.h"
#include "flowpulse/monitor.h"
#include "flowpulse/port_load.h"
#include "net/three_level.h"

namespace flowpulse::fp {

/// Per-port load predictions for both monitored tiers of a 3-level fabric.
struct ThreeLevelPrediction {
  /// Rows: global leaves; columns: pod-spine index (ingress from spines).
  PortLoadMap leaf_level;
  /// Rows: global pod-spine ids; columns: core index within the group
  /// (ingress from cores).
  PortLoadMap spine_level;

  ThreeLevelPrediction(std::uint32_t leaves, std::uint32_t spines_per_pod,
                       std::uint32_t pod_spines, std::uint32_t cores_per_group)
      : leaf_level{leaves, spines_per_pod}, spine_level{pod_spines, cores_per_group} {}
};

/// Analytical per-link load model extended to 3 levels (paper §7 "Network
/// Topology"): a cross-pod pair with demand d and v valid pod-spine indices
/// spreads d/v over each index; within an index's core group the pod-spine
/// sprays evenly, so each core→pod-spine port carries d/(v·K). Same-pod
/// traffic turns around at the pod-spine and never reaches cores.
/// Known faults are supported on leaf↔pod-spine links (the RoutingState),
/// which removes the pod-spine index end-to-end — exactly how the fabric
/// routes around them.
class ThreeLevelAnalyticalModel {
 public:
  ThreeLevelAnalyticalModel(const net::ThreeLevelInfo& info, std::uint32_t mtu_payload,
                            core::Bytes header_bytes)
      : info_{info}, mtu_payload_{mtu_payload}, header_bytes_{header_bytes} {}

  [[nodiscard]] ThreeLevelPrediction predict(const collective::DemandMatrix& demand,
                                             const net::RoutingState& routing) const;

 private:
  [[nodiscard]] double wire_bytes(core::Bytes payload) const {
    if (payload == core::Bytes{0}) return 0.0;
    const std::uint64_t segments = (payload.v() + mtu_payload_ - 1) / mtu_payload_;
    return static_cast<double>(payload.v() + segments * header_bytes_.v());
  }

  net::ThreeLevelInfo info_;
  std::uint32_t mtu_payload_;
  core::Bytes header_bytes_;
};

/// FlowPulse deployed at BOTH tiers of a 3-level fabric: every leaf watches
/// its ingress-from-pod-spine ports (localizes leaf↔spine links), and every
/// pod-spine watches its ingress-from-core ports (localizes spine↔core
/// links) — the paper's §7 proposal. Still no coordination: each switch
/// compares its own counters against its own slice of the prediction.
class ThreeLevelFlowPulse {
 public:
  ThreeLevelFlowPulse(net::ThreeLevelFatTree& fabric, double threshold,
                      std::uint16_t job = 0);

  void set_prediction(ThreeLevelPrediction prediction);

  /// Sharded-lane mode: monitors at both tiers finalize on their own lanes,
  /// so the eager evaluate-and-push in the finalize hooks would race across
  /// pod lanes. Deferred, hooks only record into each monitor's lane-local
  /// history; flush() (on the coordinating thread, after the lanes join)
  /// replays every new record in canonical (iteration, row) order.
  void set_deferred_evaluation(bool on) { deferred_ = on; }

  void flush();

  [[nodiscard]] const std::vector<DetectionResult>& leaf_results() const {
    return leaf_results_;
  }
  [[nodiscard]] const std::vector<DetectionResult>& spine_results() const {
    return spine_results_;
  }
  [[nodiscard]] std::vector<DetectionResult> faulty_leaf_results() const;
  [[nodiscard]] std::vector<DetectionResult> faulty_spine_results() const;
  /// Largest deviation per iteration at each tier.
  [[nodiscard]] std::vector<double> leaf_iteration_max_dev() const;
  [[nodiscard]] std::vector<double> spine_iteration_max_dev() const;

  [[nodiscard]] PortMonitor& leaf_monitor(net::LeafId l) { return *leaf_monitors_[l.v()]; }
  // detlint: ok(raw-scalar-id): pod-spine ordinal from
  // ThreeLevelInfo::pod_spine_id — documented raw-index boundary
  [[nodiscard]] PortMonitor& spine_monitor(std::uint32_t pod_spine_id) {
    return *spine_monitors_[pod_spine_id];
  }

 private:
  static std::vector<double> max_dev_series(const std::vector<DetectionResult>& results);
  /// Replay each monitor's not-yet-evaluated history through `evaluate`
  /// in (iteration, monitor) order; advances `replayed` cursors.
  void replay_tier(const std::vector<std::unique_ptr<PortMonitor>>& monitors,
                   std::vector<std::size_t>& replayed, const PortLoadMap& prediction,
                   std::vector<DetectionResult>& results);

  net::ThreeLevelFatTree& fabric_;
  double threshold_;
  std::vector<std::unique_ptr<PortMonitor>> leaf_monitors_;
  std::vector<std::unique_ptr<PortMonitor>> spine_monitors_;
  std::unique_ptr<ThreeLevelPrediction> prediction_;
  std::vector<DetectionResult> leaf_results_;
  std::vector<DetectionResult> spine_results_;
  bool deferred_ = false;
  std::vector<std::size_t> replayed_leaf_;
  std::vector<std::size_t> replayed_spine_;
};

}  // namespace flowpulse::fp
