#pragma once

#include <cstdint>
#include <vector>

#include "net/types.h"

namespace flowpulse::fp {

/// Expected (or observed) traffic on one leaf ingress port from a spine
/// during one collective iteration: total wire bytes plus the breakdown by
/// sending leaf, which is what localization (§5.3, Fig. 4) compares.
struct PortLoad {
  double total = 0.0;
  std::vector<double> by_src_leaf;  ///< indexed by sender LeafId

  explicit PortLoad(std::uint32_t leaves = 0) : by_src_leaf(leaves, 0.0) {}
};

/// Per-link load model output: one PortLoad per (leaf, uplink) — i.e. per
/// spine→leaf downstream port in the fabric (virtual spines included).
class PortLoadMap {
 public:
  PortLoadMap(std::uint32_t leaves, std::uint32_t uplinks)
      : leaves_{leaves},
        uplinks_{uplinks},
        loads_(static_cast<std::size_t>(leaves) * uplinks, PortLoad{leaves}) {}

  [[nodiscard]] PortLoad& at(net::LeafId leaf, net::UplinkIndex u) {
    return loads_[static_cast<std::size_t>(leaf.v()) * uplinks_ + u.v()];
  }
  [[nodiscard]] const PortLoad& at(net::LeafId leaf, net::UplinkIndex u) const {
    return loads_[static_cast<std::size_t>(leaf.v()) * uplinks_ + u.v()];
  }

  void add(net::LeafId dst_leaf, net::UplinkIndex u, net::LeafId src_leaf, double bytes) {
    PortLoad& load = at(dst_leaf, u);
    load.total += bytes;
    load.by_src_leaf[src_leaf.v()] += bytes;
  }

  [[nodiscard]] std::uint32_t leaves() const { return leaves_; }
  [[nodiscard]] std::uint32_t uplinks() const { return uplinks_; }

  [[nodiscard]] double total() const {
    double t = 0.0;
    for (const PortLoad& l : loads_) t += l.total;
    return t;
  }

 private:
  std::uint32_t leaves_;
  std::uint32_t uplinks_;
  std::vector<PortLoad> loads_;
};

}  // namespace flowpulse::fp
