#include "flowpulse/three_level_system.h"

#include <algorithm>

namespace flowpulse::fp {

ThreeLevelPrediction ThreeLevelAnalyticalModel::predict(
    const collective::DemandMatrix& demand, const net::RoutingState& routing) const {
  ThreeLevelPrediction pred{info_.num_leaves(), info_.spines_per_pod, info_.num_pod_spines(),
                            info_.cores_per_group()};
  const std::uint32_t hosts = demand.hosts();
  for (const net::HostId src : core::ids<net::HostId>(hosts)) {
    const net::LeafId src_leaf = info_.leaf_of(src);
    for (const net::HostId dst : core::ids<net::HostId>(hosts)) {
      const core::Bytes d = demand.at(src, dst);
      if (d == core::Bytes{0}) continue;
      const net::LeafId dst_leaf = info_.leaf_of(dst);
      if (src_leaf == dst_leaf) continue;  // stays under the leaf
      const auto& valid = routing.valid_uplinks(src_leaf, dst_leaf);
      if (valid.empty()) continue;
      const double per_spine = wire_bytes(d) / static_cast<double>(valid.size());
      const std::uint32_t dst_pod = info_.pod_of_leaf(dst_leaf);
      const bool cross_pod = info_.pod_of_leaf(src_leaf) != dst_pod;
      for (const net::UplinkIndex s : valid) {
        pred.leaf_level.add(dst_leaf, s, src_leaf, per_spine);
        if (cross_pod) {
          const double per_core = per_spine / info_.cores_per_group();
          // spine_level rows live in monitor-id space: the global pod-spine
          // id plays the row role LeafId plays at the leaf tier.
          const net::LeafId ps_row{info_.pod_spine_id(dst_pod, s.v())};
          for (std::uint32_t k = 0; k < info_.cores_per_group(); ++k) {
            pred.spine_level.add(ps_row, net::UplinkIndex{k}, src_leaf, per_core);
          }
        }
      }
    }
  }
  return pred;
}

ThreeLevelFlowPulse::ThreeLevelFlowPulse(net::ThreeLevelFatTree& fabric, double threshold,
                                         std::uint16_t job)
    : fabric_{fabric}, threshold_{threshold} {
  const net::ThreeLevelInfo& info = fabric.info();
  for (const net::LeafId l : core::ids<net::LeafId>(info.num_leaves())) {
    leaf_monitors_.push_back(std::make_unique<PortMonitor>(
        l.v(), info.spines_per_pod, info.num_leaves(), info.hosts_per_leaf, job));
    PortMonitor* mon = leaf_monitors_.back().get();
    fabric.leaf(l).set_spine_ingress_hook(
        [mon](net::UplinkIndex u, const net::Packet& p) { mon->record(u, p); });
    mon->set_finalize_hook([this](const IterationRecord& rec) {
      // Deferred (sharded-lane) mode: the record already sits in the
      // monitor's lane-local history; evaluation waits for flush().
      if (deferred_) return;
      if (prediction_) {
        leaf_results_.push_back(evaluate_record(prediction_->leaf_level, threshold_, rec));
      }
    });
  }
  for (std::uint32_t pod = 0; pod < info.pods; ++pod) {
    for (std::uint32_t s = 0; s < info.spines_per_pod; ++s) {
      const std::uint32_t id = info.pod_spine_id(pod, s);
      spine_monitors_.push_back(std::make_unique<PortMonitor>(
          id, info.cores_per_group(), info.num_leaves(), info.hosts_per_leaf, job));
      PortMonitor* mon = spine_monitors_.back().get();
      fabric.pod_spine(pod, s).set_core_ingress_hook(
          [mon](std::uint32_t k, const net::Packet& p) {
            mon->record(net::UplinkIndex{k}, p);
          });
      mon->set_finalize_hook([this](const IterationRecord& rec) {
        if (deferred_) return;
        if (prediction_) {
          spine_results_.push_back(
              evaluate_record(prediction_->spine_level, threshold_, rec));
        }
      });
    }
  }
}

void ThreeLevelFlowPulse::set_prediction(ThreeLevelPrediction prediction) {
  prediction_ = std::make_unique<ThreeLevelPrediction>(std::move(prediction));
}

void ThreeLevelFlowPulse::flush() {
  for (auto& m : leaf_monitors_) m->flush();
  for (auto& m : spine_monitors_) m->flush();
  if (deferred_ && prediction_) {
    replay_tier(leaf_monitors_, replayed_leaf_, prediction_->leaf_level, leaf_results_);
    replay_tier(spine_monitors_, replayed_spine_, prediction_->spine_level, spine_results_);
  }
}

void ThreeLevelFlowPulse::replay_tier(
    const std::vector<std::unique_ptr<PortMonitor>>& monitors,
    std::vector<std::size_t>& replayed, const PortLoadMap& prediction,
    std::vector<DetectionResult>& results) {
  // Canonical (iteration, monitor-row) order: each monitor's history is
  // already iteration-ordered, and this merge does not depend on which lane
  // finalized first — serial and laned runs evaluate identically.
  replayed.resize(monitors.size(), 0);
  std::vector<const IterationRecord*> pending;
  for (std::size_t m = 0; m < monitors.size(); ++m) {
    const auto& history = monitors[m]->history();
    for (std::size_t i = replayed[m]; i < history.size(); ++i) {
      pending.push_back(&history[i]);
    }
    replayed[m] = history.size();
  }
  std::stable_sort(pending.begin(), pending.end(),
                   [](const IterationRecord* a, const IterationRecord* b) {
                     if (a->iteration.v() != b->iteration.v()) {
                       return a->iteration.v() < b->iteration.v();
                     }
                     return a->leaf.v() < b->leaf.v();
                   });
  for (const IterationRecord* r : pending) {
    results.push_back(evaluate_record(prediction, threshold_, *r));
  }
}

std::vector<DetectionResult> ThreeLevelFlowPulse::faulty_leaf_results() const {
  std::vector<DetectionResult> out;
  std::copy_if(leaf_results_.begin(), leaf_results_.end(), std::back_inserter(out),
               [](const DetectionResult& r) { return r.faulty(); });
  return out;
}

std::vector<DetectionResult> ThreeLevelFlowPulse::faulty_spine_results() const {
  std::vector<DetectionResult> out;
  std::copy_if(spine_results_.begin(), spine_results_.end(), std::back_inserter(out),
               [](const DetectionResult& r) { return r.faulty(); });
  return out;
}

std::vector<double> ThreeLevelFlowPulse::max_dev_series(
    const std::vector<DetectionResult>& results) {
  std::vector<double> devs;
  for (const DetectionResult& r : results) {
    if (r.iteration.v() >= devs.size()) devs.resize(r.iteration.v() + 1, 0.0);
    devs[r.iteration.v()] = std::max(devs[r.iteration.v()], r.max_rel_dev);
  }
  return devs;
}

std::vector<double> ThreeLevelFlowPulse::leaf_iteration_max_dev() const {
  return max_dev_series(leaf_results_);
}

std::vector<double> ThreeLevelFlowPulse::spine_iteration_max_dev() const {
  return max_dev_series(spine_results_);
}

}  // namespace flowpulse::fp
