#include "flowpulse/streaming_detector.h"

#include <cmath>
#include <limits>

namespace flowpulse::fp {

StreamingDetector::StreamingDetector(net::LeafId leaf, std::uint32_t uplinks,
                                     std::uint32_t leaves, StreamingConfig config)
    : leaf_{leaf},
      uplinks_{uplinks},
      leaves_{leaves},
      config_{config},
      ports_(uplinks),
      src_mean_(static_cast<std::size_t>(uplinks) * leaves, 0.0) {}

void StreamingDetector::seed(const PortLoadMap& prediction) {
  for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(uplinks_)) {
    const PortLoad& load = prediction.at(leaf_, u);
    PortStat& st = ports_[u.v()];
    st.state = PortState::kTrack;
    st.samples = config_.warmup_iterations;
    st.mean = load.total;
    st.var = 0.0;  // the floor takes over until measured variance exists
    for (const net::LeafId s : core::ids<net::LeafId>(leaves_)) {
      src_mean_[static_cast<std::size_t>(u.v()) * leaves_ + s.v()] = load.by_src_leaf[s.v()];
    }
  }
}

void StreamingDetector::reset() {
  for (PortStat& st : ports_) st = PortStat{};
  for (double& m : src_mean_) m = 0.0;
}

DetectionResult StreamingDetector::observe(const IterationRecord& record) {
  DetectionResult result;
  result.leaf = record.leaf;
  result.iteration = record.iteration;
  for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(uplinks_)) {
    PortStat& st = ports_[u.v()];
    const double x = record.bytes[u.v()];
    double* src = &src_mean_[static_cast<std::size_t>(u.v()) * leaves_];

    if (st.state == PortState::kWarmup) {
      // Learn only; never judge a baseline that doesn't exist yet.
      if (st.samples == 0) {
        st.mean = x;
        for (std::uint32_t s = 0; s < leaves_; ++s) src[s] = record.by_src[u.v()][s];
      } else {
        const double diff = x - st.mean;
        const double incr = config_.alpha * diff;
        st.mean += incr;
        st.var = (1.0 - config_.alpha) * (st.var + diff * incr);
        for (std::uint32_t s = 0; s < leaves_; ++s) {
          src[s] += config_.alpha * (record.by_src[u.v()][s] - src[s]);
        }
      }
      if (++st.samples >= config_.warmup_iterations) st.state = PortState::kTrack;
      continue;
    }

    // Judge against the frozen pre-update statistics.
    const double floor = config_.var_floor_rel * st.mean;
    const double sigma = std::sqrt(std::max(st.var, floor * floor));
    const double diff = x - st.mean;
    const double z = sigma > 0.0 ? diff / sigma
                                 : (diff == 0.0 ? 0.0 : std::numeric_limits<double>::infinity());
    const double rel = relative_deviation(x, st.mean);
    const bool alerted = std::fabs(z) > config_.z_threshold && rel > config_.min_rel_dev;
    if (rel > result.max_rel_dev) result.max_rel_dev = rel;

    if (alerted) {
      st.state = PortState::kAlert;
      PortAlert alert;
      alert.uplink = u;
      alert.observed = x;
      alert.predicted = st.mean;
      alert.rel_dev = rel;
      // Localize against the per-sender EWMA means, reusing the threshold
      // detector's verdict logic so downstream consumers see one taxonomy.
      PortLoad predicted{leaves_};
      predicted.total = st.mean;
      for (std::uint32_t s = 0; s < leaves_; ++s) predicted.by_src_leaf[s] = src[s];
      alert.localization = localize(record, predicted, u, config_.min_rel_dev);
      result.alerts.push_back(std::move(alert));
      // Frozen: a faulty iteration must not drag the baseline toward itself.
      continue;
    }

    st.state = PortState::kTrack;
    const double incr = config_.alpha * diff;
    st.mean += incr;
    st.var = (1.0 - config_.alpha) * (st.var + diff * incr);
    for (std::uint32_t s = 0; s < leaves_; ++s) {
      src[s] += config_.alpha * (record.by_src[u.v()][s] - src[s]);
    }
    ++st.samples;
  }
  return result;
}

std::size_t StreamingDetector::state_bytes() const {
  return sizeof(*this) + ports_.capacity() * sizeof(PortStat) +
         src_mean_.capacity() * sizeof(double);
}

}  // namespace flowpulse::fp
