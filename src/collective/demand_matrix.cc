#include "collective/demand_matrix.h"

#include <cassert>

namespace flowpulse::collective {

DemandMatrix DemandMatrix::from_schedule(const CommSchedule& schedule,
                                         const std::vector<net::HostId>& rank_to_host,
                                         std::uint32_t num_hosts) {
  assert(rank_to_host.size() == schedule.ranks);
  DemandMatrix m{num_hosts};
  for (const Stage& stage : schedule.stages) {
    for (const Send& s : stage.sends) {
      m.add(rank_to_host[s.src_rank], rank_to_host[s.dst_rank], s.bytes);
    }
  }
  return m;
}

core::Bytes DemandMatrix::total() const {
  core::Bytes t{};
  for (const core::Bytes b : bytes_) t += b;
  return t;
}

}  // namespace flowpulse::collective
