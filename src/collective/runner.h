#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "collective/schedule.h"
#include "net/types.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "transport/transport_layer.h"

namespace flowpulse::collective {

/// Configuration of a repeated collective — one "training job".
struct CollectiveConfig {
  std::vector<net::HostId> hosts;  ///< rank → host placement
  CommSchedule schedule;
  /// Optional: regenerate the schedule each iteration (dynamic demand, e.g.
  /// expert-parallel AlltoAll). Overrides `schedule` when set.
  std::function<CommSchedule(std::uint32_t iteration, sim::Rng&)> schedule_generator;
  std::uint32_t iterations = 10;
  /// Simulated compute phase between iterations.
  sim::Time compute_gap = sim::Time::microseconds(5);
  /// Straggler model: each rank delays its iteration start by an
  /// independent uniform draw in [0, max_jitter).
  sim::Time max_jitter = sim::Time::zero();
  net::Priority priority = net::Priority::kCollective;
  std::uint16_t job_id = 0;
  /// Tag packets with the FlowPulse collective sentinel (§5.1). Disable for
  /// unmeasured background jobs.
  bool tag_flow = true;
  /// Run double-precision ring algebra alongside the packets and verify the
  /// reduction result each iteration.
  bool validate_data = false;
  /// Chain iterations automatically: finishing iteration k schedules k+1
  /// after `compute_gap`. The hybrid-fidelity engine disables this and
  /// drives iterations one at a time via start_iteration(), interleaving
  /// packet-simulated iterations with analytically fast-forwarded ones.
  bool auto_advance = true;
};

/// Drives iterations of a collective over the transport layer with the
/// pipelined-ring dependency structure: a rank launches its stage-k sends
/// once every message addressed to it in stages < k has arrived. This
/// reproduces synchronous data-parallel training traffic: identical demand
/// every iteration, delimited by the flow_id iteration tag.
class CollectiveRunner {
 public:
  /// (iteration index, start time, completion time)
  using IterationHook = std::function<void(net::IterIndex, sim::Time, sim::Time)>;

  CollectiveRunner(sim::Simulator& simulator, transport::TransportLayer& transports,
                   CollectiveConfig config);

  /// Schedule iteration 0 to begin now. Call once, before Simulator::run().
  void start();

  /// Manual stepping (auto_advance == false): schedule iteration `iteration`
  /// to begin now. The caller owns the inter-iteration compute gap and must
  /// not start a new iteration while one is running.
  void start_iteration(std::uint32_t iteration);

  /// True while an iteration is in flight (between begin and finish).
  [[nodiscard]] bool running() const { return running_; }

  void add_iteration_hook(IterationHook hook) { iteration_hooks_.push_back(std::move(hook)); }

  [[nodiscard]] bool finished() const { return completed_iterations_ == config_.iterations; }
  [[nodiscard]] std::uint32_t completed_iterations() const { return completed_iterations_; }
  /// Schedule used by the iteration currently running (or the last one).
  [[nodiscard]] const CommSchedule& current_schedule() const { return schedule_; }
  [[nodiscard]] const CollectiveConfig& config() const { return config_; }

  /// False if any validated iteration produced a wrong reduction result.
  [[nodiscard]] bool data_valid() const { return data_valid_; }
  /// Wall-clock (simulated) duration of each completed iteration.
  [[nodiscard]] const std::vector<sim::Time>& iteration_durations() const {
    return iteration_durations_;
  }

 private:
  struct PendingMsg {
    std::uint32_t iteration = 0;
    std::uint32_t stage = 0;
    std::uint32_t dst_rank = 0;
    std::uint32_t chunk = 0;
    double value = 0.0;
  };

  void begin_iteration(std::uint32_t iteration);
  void rank_start(std::uint32_t rank);
  void launch_stage(std::uint32_t rank, std::uint32_t stage);
  void advance(std::uint32_t rank);
  void on_recv(net::HostId at_host, const transport::RecvInfo& info);
  void finish_iteration();
  void validate_iteration();
  [[nodiscard]] net::FlowId flow_id_for(std::uint32_t iteration) const;
  [[nodiscard]] double original_value(std::uint32_t rank, std::uint32_t chunk) const;
  [[nodiscard]] static std::uint64_t msg_key(net::HostId src, std::uint64_t msg_id) {
    return (static_cast<std::uint64_t>(src.v()) << 40) ^ msg_id;
  }

  sim::Simulator& sim_;
  transport::TransportLayer& transports_;
  CollectiveConfig config_;
  sim::Rng rng_;

  CommSchedule schedule_;  // schedule of the current iteration
  std::uint32_t ranks_ = 0;

  std::uint32_t iteration_ = 0;
  std::uint32_t completed_iterations_ = 0;
  sim::Time iteration_start_ = sim::Time::zero();
  bool running_ = false;

  // Per-iteration progress.
  std::vector<std::vector<std::uint32_t>> recv_remaining_;  // [stage][rank]
  std::vector<std::uint32_t> stages_clear_;  // rank → # leading stages fully received
  std::vector<std::uint32_t> next_stage_;    // rank → next stage to launch
  std::uint64_t total_recv_remaining_ = 0;
  // detlint: ok(unordered): keyed emplace/find/erase only, never iterated
  // (enforced by detlint's iteration rule); progress is driven by message
  // arrival order, so hash order cannot reach results. Hot per-message path.
  std::unordered_map<std::uint64_t, PendingMsg> pending_;

  // Data validation (one double per chunk is algebraically equivalent to a
  // full gradient vector for verifying the reduction structure).
  std::vector<std::vector<double>> acc_;  // [rank][chunk]
  bool data_valid_ = true;

  std::vector<IterationHook> iteration_hooks_;
  std::vector<sim::Time> iteration_durations_;
};

}  // namespace flowpulse::collective
