#pragma once

#include <cstdint>
#include <vector>

#include "collective/schedule.h"
#include "core/units.h"
#include "net/types.h"

namespace flowpulse::collective {

/// Per-iteration traffic demand in host space: bytes[src][dst] of collective
/// payload. This is the input to FlowPulse's load prediction (§5.2): for
/// AllReduce the matrix is identical every iteration and can be computed in
/// advance from application knowledge, or measured from the first
/// iterations.
class DemandMatrix {
 public:
  explicit DemandMatrix(std::uint32_t hosts)
      : hosts_{hosts}, bytes_(static_cast<std::size_t>(hosts) * hosts) {}

  /// Accumulate a schedule over the given rank→host placement.
  static DemandMatrix from_schedule(const CommSchedule& schedule,
                                    const std::vector<net::HostId>& rank_to_host,
                                    std::uint32_t num_hosts);

  [[nodiscard]] core::Bytes at(net::HostId src, net::HostId dst) const {
    return bytes_[static_cast<std::size_t>(src.v()) * hosts_ + dst.v()];
  }
  void add(net::HostId src, net::HostId dst, core::Bytes bytes) {
    bytes_[static_cast<std::size_t>(src.v()) * hosts_ + dst.v()] += bytes;
  }

  [[nodiscard]] std::uint32_t hosts() const { return hosts_; }
  [[nodiscard]] core::Bytes total() const;

 private:
  std::uint32_t hosts_;
  std::vector<core::Bytes> bytes_;
};

}  // namespace flowpulse::collective
