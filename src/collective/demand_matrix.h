#pragma once

#include <cstdint>
#include <vector>

#include "collective/schedule.h"
#include "net/types.h"

namespace flowpulse::collective {

/// Per-iteration traffic demand in host space: bytes[src][dst] of collective
/// payload. This is the input to FlowPulse's load prediction (§5.2): for
/// AllReduce the matrix is identical every iteration and can be computed in
/// advance from application knowledge, or measured from the first
/// iterations.
class DemandMatrix {
 public:
  explicit DemandMatrix(std::uint32_t hosts)
      : hosts_{hosts}, bytes_(static_cast<std::size_t>(hosts) * hosts, 0) {}

  /// Accumulate a schedule over the given rank→host placement.
  static DemandMatrix from_schedule(const CommSchedule& schedule,
                                    const std::vector<net::HostId>& rank_to_host,
                                    std::uint32_t num_hosts);

  [[nodiscard]] std::uint64_t at(net::HostId src, net::HostId dst) const {
    return bytes_[static_cast<std::size_t>(src.v()) * hosts_ + dst.v()];
  }
  void add(net::HostId src, net::HostId dst, std::uint64_t bytes) {
    bytes_[static_cast<std::size_t>(src.v()) * hosts_ + dst.v()] += bytes;
  }

  [[nodiscard]] std::uint32_t hosts() const { return hosts_; }
  [[nodiscard]] std::uint64_t total() const;

 private:
  std::uint32_t hosts_;
  std::vector<std::uint64_t> bytes_;
};

}  // namespace flowpulse::collective
