#include "collective/schedule.h"

#include <cassert>

namespace flowpulse::collective {

core::Bytes CommSchedule::stage_recv_bytes(std::uint32_t k, std::uint32_t r) const {
  core::Bytes bytes{};
  for (const Send& s : stages[k].sends) {
    if (s.dst_rank == r) bytes += s.bytes;
  }
  return bytes;
}

core::Bytes CommSchedule::wire_payload_bytes() const {
  core::Bytes bytes{};
  for (const Stage& st : stages) {
    for (const Send& s : st.sends) bytes += s.bytes;
  }
  return bytes;
}

core::Bytes chunk_bytes(core::Bytes total, std::uint32_t n, std::uint32_t c) {
  assert(c < n);
  return total / n + core::Bytes{c < total % core::Bytes{n} ? 1u : 0u};
}

namespace {

// Shared builder for the ring phases. `rs` emits reduce-scatter stages,
// `ag` all-gather stages.
CommSchedule build_ring(std::uint32_t ranks, core::Bytes total_bytes, bool rs, bool ag,
                        std::string name, CollectiveKind kind) {
  assert(ranks >= 2);
  CommSchedule sched;
  sched.name = std::move(name);
  sched.kind = kind;
  sched.ranks = ranks;
  sched.total_bytes = total_bytes;

  auto emit_phase = [&](bool gather_phase) {
    for (std::uint32_t k = 0; k < ranks - 1; ++k) {
      Stage stage;
      stage.reduce = !gather_phase;
      stage.sends.reserve(ranks);
      for (std::uint32_t i = 0; i < ranks; ++i) {
        // RS stage k: rank i forwards chunk (i - k) mod N.
        // AG stage k: rank i forwards chunk (i + 1 - k) mod N.
        const std::uint32_t base = gather_phase ? i + 1 + ranks - k : i + ranks - k;
        const std::uint32_t chunk = base % ranks;
        const core::Bytes bytes = chunk_bytes(total_bytes, ranks, chunk);
        if (bytes == core::Bytes{0}) continue;
        stage.sends.push_back(Send{i, (i + 1) % ranks, bytes, chunk});
      }
      sched.stages.push_back(std::move(stage));
    }
  };

  if (rs) emit_phase(false);
  if (ag) emit_phase(true);
  return sched;
}

}  // namespace

CommSchedule ring_all_reduce(std::uint32_t ranks, core::Bytes total_bytes) {
  return build_ring(ranks, total_bytes, true, true, "ring-allreduce",
                    CollectiveKind::kRingAllReduce);
}

CommSchedule ring_reduce_scatter(std::uint32_t ranks, core::Bytes total_bytes) {
  return build_ring(ranks, total_bytes, true, false, "ring-reduce-scatter",
                    CollectiveKind::kRingReduceScatter);
}

CommSchedule ring_all_gather(std::uint32_t ranks, core::Bytes total_bytes) {
  return build_ring(ranks, total_bytes, false, true, "ring-all-gather",
                    CollectiveKind::kRingAllGather);
}

CommSchedule all_to_all(std::uint32_t ranks, core::Bytes bytes_per_pair) {
  CommSchedule sched;
  sched.name = "all-to-all";
  sched.kind = CollectiveKind::kAllToAll;
  sched.ranks = ranks;
  sched.total_bytes = bytes_per_pair * ranks * (ranks - 1u);
  Stage stage;
  stage.reduce = false;
  stage.sends.reserve(static_cast<std::size_t>(ranks) * (ranks - 1));
  // Rotated destination order (rank i starts at i+1): every destination
  // receives from exactly one sender at a time, avoiding the synchronized
  // incast a naive ascending order creates — the same staggering real
  // AlltoAll implementations use.
  for (std::uint32_t i = 0; i < ranks; ++i) {
    for (std::uint32_t k = 1; k < ranks; ++k) {
      const std::uint32_t j = (i + k) % ranks;
      if (bytes_per_pair == core::Bytes{0}) continue;
      stage.sends.push_back(Send{i, j, bytes_per_pair, 0});
    }
  }
  sched.stages.push_back(std::move(stage));
  return sched;
}

CommSchedule all_to_all_random(std::uint32_t ranks, core::Bytes min_bytes,
                               core::Bytes max_bytes, sim::Rng& rng) {
  assert(max_bytes >= min_bytes);
  CommSchedule sched;
  sched.name = "all-to-all-random";
  sched.kind = CollectiveKind::kAllToAll;
  sched.ranks = ranks;
  Stage stage;
  stage.reduce = false;
  for (std::uint32_t i = 0; i < ranks; ++i) {
    for (std::uint32_t k = 1; k < ranks; ++k) {
      const std::uint32_t j = (i + k) % ranks;  // rotated order, see all_to_all()
      const core::Bytes bytes =
          min_bytes + core::Bytes{rng.next_below((max_bytes - min_bytes).v() + 1)};
      if (bytes == core::Bytes{0}) continue;
      stage.sends.push_back(Send{i, j, bytes, 0});
      sched.total_bytes += bytes;
    }
  }
  sched.stages.push_back(std::move(stage));
  return sched;
}

CommSchedule hierarchical_ring_all_reduce(std::uint32_t groups, std::uint32_t group_size,
                                          core::Bytes total_bytes) {
  assert(groups >= 2 && group_size >= 1);
  const std::uint32_t ranks = groups * group_size;
  CommSchedule sched;
  sched.name = "hierarchical-ring-allreduce";
  sched.kind = CollectiveKind::kHierarchicalRing;
  sched.ranks = ranks;
  sched.total_bytes = total_bytes;
  auto leader = [group_size](std::uint32_t g) { return g * group_size; };

  // Phase 1 — local reduce: every member sends its whole contribution to
  // its group leader. Stays under the leaf; never forwarded to spines.
  if (group_size > 1) {
    Stage local_reduce;
    local_reduce.reduce = true;
    for (std::uint32_t g = 0; g < groups; ++g) {
      for (std::uint32_t m = 1; m < group_size; ++m) {
        local_reduce.sends.push_back(Send{leader(g) + m, leader(g), total_bytes, 0});
      }
    }
    sched.stages.push_back(std::move(local_reduce));
  }

  // Phase 2 — Ring-AllReduce over the leaders (the only spine traffic).
  const CommSchedule ring = ring_all_reduce(groups, total_bytes);
  for (const Stage& st : ring.stages) {
    Stage stage;
    stage.reduce = st.reduce;
    stage.sends.reserve(st.sends.size());
    for (const Send& s : st.sends) {
      stage.sends.push_back(Send{leader(s.src_rank), leader(s.dst_rank), s.bytes, s.chunk});
    }
    sched.stages.push_back(std::move(stage));
  }

  // Phase 3 — local broadcast of the full result back to the members.
  if (group_size > 1) {
    Stage local_bcast;
    local_bcast.reduce = false;
    for (std::uint32_t g = 0; g < groups; ++g) {
      for (std::uint32_t m = 1; m < group_size; ++m) {
        local_bcast.sends.push_back(Send{leader(g), leader(g) + m, total_bytes, 0});
      }
    }
    sched.stages.push_back(std::move(local_bcast));
  }
  return sched;
}

}  // namespace flowpulse::collective
