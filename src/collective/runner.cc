#include "collective/runner.h"

#include <cassert>
#include <cmath>

namespace flowpulse::collective {

CollectiveRunner::CollectiveRunner(sim::Simulator& simulator,
                                   transport::TransportLayer& transports,
                                   CollectiveConfig config)
    : sim_{simulator},
      transports_{transports},
      config_{std::move(config)},
      rng_{simulator.rng().split()},
      schedule_{config_.schedule},
      ranks_{static_cast<std::uint32_t>(config_.hosts.size())} {
  assert(!config_.hosts.empty());
  assert(config_.schedule_generator || schedule_.ranks == ranks_);
  // Subscribe to message completions at every participating host.
  for (std::uint32_t r = 0; r < ranks_; ++r) {
    const net::HostId h = config_.hosts[r];
    transports_.at(h).add_recv_handler(
        [this, h](const transport::RecvInfo& info) { on_recv(h, info); });
  }
}

net::FlowId CollectiveRunner::flow_id_for(std::uint32_t iteration) const {
  if (config_.tag_flow) {
    return net::flowid::make_collective(net::IterIndex{iteration}, config_.job_id);
  }
  // Untagged (background) job: any id without the collective sentinel.
  return (static_cast<net::FlowId>(config_.job_id) + 1) << 32 | iteration;
}

double CollectiveRunner::original_value(std::uint32_t rank, std::uint32_t chunk) const {
  // Deterministic, iteration-dependent inputs so cross-iteration mixups are
  // caught by validation.
  return (iteration_ + 1.0) * (rank + 1.0) + 0.001 * chunk;
}

void CollectiveRunner::start() { begin_iteration(0); }

void CollectiveRunner::start_iteration(std::uint32_t iteration) {
  assert(!running_);
  begin_iteration(iteration);
}

void CollectiveRunner::begin_iteration(std::uint32_t iteration) {
  iteration_ = iteration;
  iteration_start_ = sim_.now();
  running_ = true;

  if (config_.schedule_generator) {
    schedule_ = config_.schedule_generator(iteration, rng_);
    assert(schedule_.ranks == ranks_);
  }

  const std::uint32_t stages = static_cast<std::uint32_t>(schedule_.stages.size());
  recv_remaining_.assign(stages, std::vector<std::uint32_t>(ranks_, 0));
  total_recv_remaining_ = 0;
  for (std::uint32_t k = 0; k < stages; ++k) {
    for (const Send& s : schedule_.stages[k].sends) {
      ++recv_remaining_[k][s.dst_rank];
      ++total_recv_remaining_;
    }
  }
  stages_clear_.assign(ranks_, 0);
  next_stage_.assign(ranks_, 0);
  // A rank may have nothing to receive in leading stages; normalize.
  for (std::uint32_t r = 0; r < ranks_; ++r) {
    while (stages_clear_[r] < stages && recv_remaining_[stages_clear_[r]][r] == 0) {
      ++stages_clear_[r];
    }
  }

  if (config_.validate_data) {
    acc_.assign(ranks_, std::vector<double>(ranks_, 0.0));
    for (std::uint32_t r = 0; r < ranks_; ++r) {
      for (std::uint32_t c = 0; c < ranks_; ++c) acc_[r][c] = original_value(r, c);
    }
  }

  for (std::uint32_t r = 0; r < ranks_; ++r) {
    sim::Time jitter = sim::Time::zero();
    if (config_.max_jitter > sim::Time::zero()) {
      jitter = sim::Time::picoseconds(static_cast<std::int64_t>(
          rng_.next_below(static_cast<std::uint64_t>(config_.max_jitter.ps()))));
    }
    sim_.schedule_in(jitter, [this, r, iteration] {
      if (iteration_ == iteration && running_) rank_start(r);
    });
  }

  // Degenerate schedules (no sends at all) complete immediately.
  if (total_recv_remaining_ == 0) finish_iteration();
}

void CollectiveRunner::rank_start(std::uint32_t rank) {
  // Launch every stage that is already unblocked (stage 0, plus any later
  // stage whose inbound traffic is empty).
  advance(rank);
}

void CollectiveRunner::advance(std::uint32_t rank) {
  const std::uint32_t stages = static_cast<std::uint32_t>(schedule_.stages.size());
  while (next_stage_[rank] < stages && next_stage_[rank] <= stages_clear_[rank]) {
    const std::uint32_t k = next_stage_[rank];
    ++next_stage_[rank];
    launch_stage(rank, k);
  }
}

void CollectiveRunner::launch_stage(std::uint32_t rank, std::uint32_t stage) {
  const net::HostId src_host = config_.hosts[rank];
  for (const Send& s : schedule_.stages[stage].sends) {
    if (s.src_rank != rank) continue;
    transport::MessageSpec spec;
    spec.dst = config_.hosts[s.dst_rank];
    spec.bytes = s.bytes;
    spec.flow_id = flow_id_for(iteration_);
    spec.priority = config_.priority;
    const double value = config_.validate_data ? acc_[rank][s.chunk] : 0.0;
    const std::uint64_t msg_id = transports_.at(src_host).send_message(spec);
    pending_.emplace(msg_key(src_host, msg_id),
                     PendingMsg{iteration_, stage, s.dst_rank, s.chunk, value});
  }
}

void CollectiveRunner::on_recv(net::HostId at_host, const transport::RecvInfo& info) {
  (void)at_host;
  auto it = pending_.find(msg_key(info.src, info.msg_id));
  if (it == pending_.end()) return;  // another job's message
  const PendingMsg msg = it->second;
  pending_.erase(it);
  assert(msg.iteration == iteration_);

  const std::uint32_t rank = msg.dst_rank;
  if (config_.validate_data) {
    if (schedule_.stages[msg.stage].reduce) {
      acc_[rank][msg.chunk] += msg.value;
    } else {
      acc_[rank][msg.chunk] = msg.value;
    }
  }

  assert(recv_remaining_[msg.stage][rank] > 0);
  --recv_remaining_[msg.stage][rank];
  --total_recv_remaining_;

  const std::uint32_t stages = static_cast<std::uint32_t>(schedule_.stages.size());
  while (stages_clear_[rank] < stages && recv_remaining_[stages_clear_[rank]][rank] == 0) {
    ++stages_clear_[rank];
  }
  advance(rank);

  if (total_recv_remaining_ == 0) finish_iteration();
}

void CollectiveRunner::validate_iteration() {
  // Expected full reduction of chunk c: sum over ranks of original(r, c).
  for (std::uint32_t c = 0; c < ranks_; ++c) {
    double expect = 0.0;
    for (std::uint32_t r = 0; r < ranks_; ++r) expect += original_value(r, c);
    switch (schedule_.kind) {
      case CollectiveKind::kRingAllReduce:
        for (std::uint32_t r = 0; r < ranks_; ++r) {
          if (std::abs(acc_[r][c] - expect) > 1e-6) data_valid_ = false;
        }
        break;
      case CollectiveKind::kRingReduceScatter: {
        // After N-1 RS stages, rank r owns the full sum of chunk (r+1) mod N.
        const std::uint32_t owner = (c + ranks_ - 1) % ranks_;
        if (std::abs(acc_[owner][c] - expect) > 1e-6) data_valid_ = false;
        break;
      }
      default:
        break;  // all-gather / all-to-all carry no reduction to check
    }
  }
}

void CollectiveRunner::finish_iteration() {
  running_ = false;
  ++completed_iterations_;
  iteration_durations_.push_back(sim_.now() - iteration_start_);
  if (config_.validate_data) validate_iteration();
  for (const IterationHook& hook : iteration_hooks_) {
    hook(net::IterIndex{iteration_}, iteration_start_, sim_.now());
  }

  if (config_.auto_advance && completed_iterations_ < config_.iterations) {
    const std::uint32_t next = iteration_ + 1;
    sim_.schedule_in(config_.compute_gap, [this, next] { begin_iteration(next); });
  }
}

}  // namespace flowpulse::collective
