#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/units.h"
#include "sim/rng.h"

namespace flowpulse::collective {

/// One point-to-point message inside a collective stage, in *rank* space
/// (rank = position in the participant list, mapped to hosts by the runner).
struct Send {
  std::uint32_t src_rank = 0;
  std::uint32_t dst_rank = 0;
  core::Bytes bytes{};
  std::uint32_t chunk = 0;  ///< logical chunk index (for data validation)
};

/// A stage groups sends that become eligible together: a rank launches its
/// stage-k sends once it has received everything addressed to it in stages
/// < k (the pipelined-ring dependency structure).
struct Stage {
  std::vector<Send> sends;
  /// Data semantics for validation: true → receiver accumulates (reduce-
  /// scatter phase), false → receiver overwrites (all-gather phase).
  bool reduce = true;
};

enum class CollectiveKind : std::uint8_t {
  kRingAllReduce,
  kRingReduceScatter,
  kRingAllGather,
  kAllToAll,
  kHierarchicalRing,
};

/// A full communication schedule for one iteration of a collective.
struct CommSchedule {
  std::string name;
  CollectiveKind kind = CollectiveKind::kRingAllReduce;
  std::uint32_t ranks = 0;
  core::Bytes total_bytes{};  ///< collective payload size (B in the paper)
  std::vector<Stage> stages;

  /// Bytes rank `r` expects to receive in stage `k`.
  [[nodiscard]] core::Bytes stage_recv_bytes(std::uint32_t k, std::uint32_t r) const;
  /// Total bytes sent by all ranks over the whole schedule.
  [[nodiscard]] core::Bytes wire_payload_bytes() const;
};

/// Size of chunk `c` when `total` bytes are split into `n` chunks: the first
/// (total % n) chunks carry one extra byte so the sizes sum exactly.
[[nodiscard]] core::Bytes chunk_bytes(core::Bytes total, std::uint32_t n, std::uint32_t c);

/// Ring-AllReduce over `ranks` participants moving `total_bytes`:
/// N−1 reduce-scatter stages followed by N−1 all-gather stages. At stage k,
/// rank i sends chunk (i − k) mod N (RS phase) or (i + 1 − k) mod N (AG
/// phase) of size ≈ total/N to rank (i+1) mod N.
[[nodiscard]] CommSchedule ring_all_reduce(std::uint32_t ranks, core::Bytes total_bytes);

/// Only the N−1 reduce-scatter stages — the "31-stage Ring-AllReduce" shape
/// the paper's evaluation runs on 32 leaves (§6).
[[nodiscard]] CommSchedule ring_reduce_scatter(std::uint32_t ranks, core::Bytes total_bytes);

/// Only the N−1 all-gather stages.
[[nodiscard]] CommSchedule ring_all_gather(std::uint32_t ranks, core::Bytes total_bytes);

/// AlltoAll: a single stage where every rank sends `bytes_per_pair` to every
/// other rank (uniform demand).
[[nodiscard]] CommSchedule all_to_all(std::uint32_t ranks, core::Bytes bytes_per_pair);

/// AlltoAll with a random demand matrix (expert-parallel-style dynamic
/// traffic, paper §7 "Beyond reduction collectives"): each ordered pair
/// draws bytes uniformly in [min_bytes, max_bytes].
[[nodiscard]] CommSchedule all_to_all_random(std::uint32_t ranks, core::Bytes min_bytes,
                                             core::Bytes max_bytes, sim::Rng& rng);

/// Hierarchical (locality-optimized) AllReduce for fabrics with several
/// hosts per leaf — the collective shape the paper's §5.1 locality argument
/// describes: ranks are grouped into `groups` of `group_size` consecutive
/// ranks (one group per leaf); members first reduce onto their group leader
/// (intra-leaf traffic that never reaches the spines), leaders run a
/// Ring-AllReduce among themselves (exactly one non-local sender and
/// receiver per leaf — the jitter-robust condition), and finally broadcast
/// back to their members (again local).
[[nodiscard]] CommSchedule hierarchical_ring_all_reduce(std::uint32_t groups,
                                                        std::uint32_t group_size,
                                                        core::Bytes total_bytes);

}  // namespace flowpulse::collective
