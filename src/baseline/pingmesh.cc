#include "baseline/pingmesh.h"

#include "net/packet.h"

namespace flowpulse::baseline {

PingmeshProber::PingmeshProber(sim::Simulator& simulator, net::FatTree& fabric,
                               transport::TransportLayer& transports, PingmeshConfig config)
    : sim_{simulator}, fabric_{fabric}, config_{config}, rng_{simulator.rng().split()} {
  for (const net::HostId h : core::ids<net::HostId>(fabric.num_hosts())) {
    transports.at(h).set_probe_handler(
        [this](const net::Packet& p) { on_probe_received(p.msg_id); });
  }
}

void PingmeshProber::start(sim::Time horizon) {
  horizon_ = horizon;
  round();
}

void PingmeshProber::round() {
  if (sim_.now() >= horizon_) return;
  const std::uint32_t hosts = fabric_.num_hosts();
  for (const net::HostId src : core::ids<net::HostId>(hosts)) {
    for (std::uint32_t i = 0; i < config_.probes_per_round; ++i) {
      net::HostId dst{static_cast<std::uint32_t>(rng_.next_below(hosts - 1))};
      if (dst >= src) ++dst;  // uniform over peers != src

      net::Packet probe;
      probe.flow_id = 0;  // untagged: never counted by FlowPulse monitors
      probe.src = src;
      probe.dst = dst;
      probe.msg_id = next_probe_id_++;
      probe.size_bytes = config_.probe_bytes;
      probe.kind = net::PacketKind::kProbe;
      probe.priority = config_.priority;

      outstanding_.emplace(probe.msg_id, false);
      ++probes_sent_;
      fabric_.host(src).nic().enqueue(probe);

      const std::uint64_t id = probe.msg_id;
      sim_.schedule_in(config_.timeout, [this, id] { on_probe_timeout(id); });
    }
  }
  sim_.schedule_in(config_.interval, [this] { round(); });
}

void PingmeshProber::on_probe_received(std::uint64_t probe_id) {
  auto it = outstanding_.find(probe_id);
  if (it != outstanding_.end()) it->second = true;
}

void PingmeshProber::on_probe_timeout(std::uint64_t probe_id) {
  auto it = outstanding_.find(probe_id);
  if (it == outstanding_.end()) return;
  if (!it->second) {
    ++probes_lost_;
    if (first_loss_ == sim::Time::max()) first_loss_ = sim_.now();
  }
  outstanding_.erase(it);
}

}  // namespace flowpulse::baseline
