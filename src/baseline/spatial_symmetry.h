#pragma once

#include <cstdint>
#include <vector>

#include "flowpulse/monitor.h"

namespace flowpulse::baseline {

/// The *spatial symmetry* strategy the paper argues against (§1): in a
/// fault-free non-blocking fabric all of a leaf's ingress-from-spine ports
/// should carry nearly equal load within the SAME iteration, so unequal
/// load indicates a fault. It needs no model at all — but any pre-existing
/// disconnected link permanently breaks the symmetry, so in real networks
/// (where some links are always down awaiting a maintenance window) it
/// raises persistent false alarms. The ABL-BASELINE bench quantifies this.
struct SpatialResult {
  double max_rel_dev = 0.0;  ///< max |port − mean| / mean across all ports
  bool flagged = false;
};

/// Check one iteration's per-port volumes for spatial asymmetry beyond
/// `threshold`. All ports participate in the mean — a silent port (e.g.
/// behind a disconnected link) is precisely what the strategy flags.
[[nodiscard]] SpatialResult spatial_symmetry_check(const fp::IterationRecord& record,
                                                   double threshold);

}  // namespace flowpulse::baseline
