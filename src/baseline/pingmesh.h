#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/units.h"
#include "net/fat_tree.h"
#include "net/types.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "transport/transport_layer.h"

namespace flowpulse::baseline {

/// Pingmesh-style active prober (the path-probing baseline, §3): every
/// `interval`, each host sends small probe packets to `probes_per_round`
/// random peers; a probe not arriving within `timeout` counts as lost.
///
/// The paper's two criticisms are both directly measurable here:
///  1. Overhead — probes inject extra traffic exactly when the fabric is
///     busiest (bytes_injected()).
///  2. Insensitivity — a small probe crossing a p-drop link is lost with
///     probability ≈ p per packet, and under APS the prober cannot even
///     choose which spine it exercises, so localizing a 1–3% gray link
///     takes many rounds (loss_rate(), detection latency in the bench).
struct PingmeshConfig {
  sim::Time interval = sim::Time::microseconds(50);
  std::uint32_t probes_per_round = 4;   ///< destinations per host per round
  sim::Time timeout = sim::Time::microseconds(50);
  core::Bytes probe_bytes{64};          ///< wire size of one probe
  net::Priority priority = net::Priority::kBackground;
};

class PingmeshProber {
 public:
  PingmeshProber(sim::Simulator& simulator, net::FatTree& fabric,
                 transport::TransportLayer& transports, PingmeshConfig config);

  /// Probe rounds run from now until `horizon` (absolute sim time).
  void start(sim::Time horizon);

  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }
  [[nodiscard]] std::uint64_t probes_lost() const { return probes_lost_; }
  [[nodiscard]] core::Bytes bytes_injected() const {
    return config_.probe_bytes * probes_sent_;
  }
  [[nodiscard]] double loss_rate() const {
    return probes_sent_ == 0 ? 0.0
                             : static_cast<double>(probes_lost_) /
                                   static_cast<double>(probes_sent_);
  }
  /// Simulated time of the first observed probe loss, or Time::max().
  [[nodiscard]] sim::Time first_loss_time() const { return first_loss_; }

 private:
  void round();
  void on_probe_received(std::uint64_t probe_id);
  void on_probe_timeout(std::uint64_t probe_id);

  sim::Simulator& sim_;
  net::FatTree& fabric_;
  PingmeshConfig config_;
  sim::Rng rng_;
  sim::Time horizon_ = sim::Time::zero();

  std::uint64_t next_probe_id_ = 1;
  // Ordered container: probe bookkeeping is simulation state (loss counts
  // feed detection-latency results), so iteration order must be stable.
  std::map<std::uint64_t, bool> outstanding_;  // id → received
  std::uint64_t probes_sent_ = 0;
  std::uint64_t probes_lost_ = 0;
  sim::Time first_loss_ = sim::Time::max();
};

}  // namespace flowpulse::baseline
