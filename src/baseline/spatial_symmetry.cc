#include "baseline/spatial_symmetry.h"

#include <algorithm>

namespace flowpulse::baseline {

SpatialResult spatial_symmetry_check(const fp::IterationRecord& record, double threshold) {
  SpatialResult result;
  if (record.bytes.empty()) return result;
  double mean = 0.0;
  for (const double b : record.bytes) mean += b;
  mean /= static_cast<double>(record.bytes.size());
  if (mean <= 0.0) return result;
  for (const double b : record.bytes) {
    const double dev = (b > mean ? b - mean : mean - b) / mean;
    result.max_rel_dev = std::max(result.max_rel_dev, dev);
  }
  result.flagged = result.max_rel_dev > threshold;
  return result;
}

}  // namespace flowpulse::baseline
