#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/fat_tree.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace flowpulse::baseline {

/// Counter-polling baseline (the telemetry pipeline the paper's §1/§3 says
/// silent faults evade): periodically scrape every link's error counters
/// and flag links whose counted drop rate over the window exceeds a
/// threshold.
///
/// Two failure modes are modeled faithfully:
///  1. silent faults never move the error counters
///     (FaultSpec::visible_to_counters == false), so the scraper sees a
///     perfectly healthy fabric while packets die;
///  2. even for visible faults, detection latency is one polling period —
///     centralized collection in a 100k-GPU fabric polls slowly.
struct CounterScraperConfig {
  sim::Time period = sim::Time::microseconds(100);
  double drop_rate_threshold = 0.001;  ///< counted drops / tx over the window
};

class CounterScraper {
 public:
  struct Alarm {
    sim::Time at;
    std::string link;
    double counted_drop_rate = 0.0;
  };

  CounterScraper(sim::Simulator& simulator, net::FatTree& fabric,
                 CounterScraperConfig config)
      : sim_{simulator}, fabric_{fabric}, config_{config} {}

  /// Poll from now until `horizon`.
  void start(sim::Time horizon) {
    horizon_ = horizon;
    const std::size_t links = count_links();
    last_tx_.assign(links, 0);
    last_dropped_.assign(links, 0);
    poll();
  }

  [[nodiscard]] const std::vector<Alarm>& alarms() const { return alarms_; }
  [[nodiscard]] std::uint64_t polls() const { return polls_; }

 private:
  [[nodiscard]] std::size_t count_links() const {
    const net::TopologyInfo& info = fabric_.info();
    return static_cast<std::size_t>(info.leaves) * info.uplinks_per_leaf() * 2;
  }

  void poll() {
    if (sim_.now() >= horizon_) return;
    ++polls_;
    const net::TopologyInfo& info = fabric_.info();
    std::size_t idx = 0;
    for (const net::LeafId l : core::ids<net::LeafId>(info.leaves)) {
      for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(info.uplinks_per_leaf())) {
        // Alarm names label the far end with the *spine*, not the uplink
        // index (they only coincide when parallel == 1).
        // detlint: ok(raw-scalar-id): formatting-only local; the id-space
        // crossing is the explicit spine_of(u).v() on the same line
        const std::uint32_t spine = info.spine_of(u).v();
        check(fabric_.uplink_counters(l, u),
              "up:leaf" + std::to_string(l.v()) + "-spine" + std::to_string(spine), idx++);
        check(fabric_.downlink_counters(l, u),
              "down:spine" + std::to_string(spine) + "-leaf" + std::to_string(l.v()), idx++);
      }
    }
    sim_.schedule_in(config_.period, [this] { poll(); });
  }

  void check(const net::LinkCounters& counters, const std::string& name, std::size_t idx) {
    const std::uint64_t tx = counters.tx_packets.v() - last_tx_[idx];
    const std::uint64_t dropped = counters.telemetry_dropped_packets.v() - last_dropped_[idx];
    last_tx_[idx] = counters.tx_packets.v();
    last_dropped_[idx] = counters.telemetry_dropped_packets.v();
    if (tx == 0) return;
    const double rate = static_cast<double>(dropped) / static_cast<double>(tx);
    if (rate > config_.drop_rate_threshold) {
      alarms_.push_back(Alarm{sim_.now(), name, rate});
    }
  }

  sim::Simulator& sim_;
  net::FatTree& fabric_;
  CounterScraperConfig config_;
  sim::Time horizon_ = sim::Time::zero();
  std::vector<std::uint64_t> last_tx_;
  std::vector<std::uint64_t> last_dropped_;
  std::vector<Alarm> alarms_;
  std::uint64_t polls_ = 0;
};

}  // namespace flowpulse::baseline
