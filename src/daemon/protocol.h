#pragma once

// flowpulsed wire protocol: a thin, RESP-like, length-prefixed binary
// protocol for streaming per-port×flow_id byte counters from leaf switches
// into the online detection plane, and for querying verdicts back out.
//
// Framing (all integers little-endian, fixed width):
//
//   u32 length     payload bytes that follow (1 ≤ length ≤ kMaxFramePayload)
//   u8  opcode     first payload byte (Op)
//   ...            opcode-specific body (length − 1 bytes)
//
// Doubles travel as their raw IEEE-754 bit pattern (u64), so a counter
// stream recorded from a simulation replays BIT-IDENTICALLY: the daemon's
// verdict over a replayed stream equals the in-simulator verdict exactly.
//
// Requests:  HELLO (leaf registration), COUNTERS (one finalized iteration),
//            PREDICT (install/rotate a PortLoadMap baseline), VERDICT,
//            STATS, QUIT, SHUTDOWN.
// Replies:   OK, ERR (code + message), VERDICT_REPLY, STATS_REPLY.
//
// Decoding NEVER trusts the peer: every read is bounds-checked, every
// dimension validated against the announced topology, and any malformed
// frame yields a protocol-error reply — not a crash (the codec-hardening
// tests drive truncated/oversized/hostile inputs through every path).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/units.h"
#include "flowpulse/monitor.h"
#include "flowpulse/port_load.h"
#include "net/topology_info.h"
#include "net/types.h"

namespace flowpulse::daemon {

inline constexpr std::uint32_t kProtoVersion = 1;
/// Frame payloads beyond this are rejected without buffering (a hostile
/// length prefix must not make the daemon allocate gigabytes).
inline constexpr std::uint32_t kMaxFramePayload = 8u << 20;

enum class Op : std::uint8_t {
  // Requests.
  kHello = 0x01,     ///< register a connection as reporter for a leaf range
  kCounters = 0x02,  ///< one finalized iteration's per-port×src byte counters
  kPredict = 0x03,   ///< install/rotate the PortLoadMap baseline
  kVerdict = 0x04,   ///< query this shard's fabric verdict
  kStats = 0x05,     ///< query ingest metrics
  kQuit = 0x06,      ///< close this connection
  kShutdown = 0x07,  ///< stop the daemon (clean event-loop exit)
  // Replies.
  kOk = 0x80,
  kErr = 0x81,
  kVerdictReply = 0x82,
  kStatsReply = 0x83,
};

enum class Err : std::uint16_t {
  kBadFrame = 1,          ///< body truncated / malformed for its opcode
  kBadVersion = 2,        ///< HELLO with an unsupported protocol version
  kNoHello = 3,           ///< COUNTERS/PREDICT before registration
  kTopologyMismatch = 4,  ///< HELLO topology ≠ the daemon's configured fabric
  kUnregisteredLeaf = 5,  ///< COUNTERS for a leaf outside the HELLO range
  kNotOwned = 6,          ///< COUNTERS for a leaf another shard owns
  kBadOpcode = 7,         ///< unknown opcode byte
  kBadDimensions = 8,     ///< ports/senders don't match the topology
  kOversized = 9,         ///< length prefix beyond kMaxFramePayload
};

[[nodiscard]] const char* err_name(Err e);

/// HELLO body: protocol version, the client's view of the fabric shape
/// (must match the daemon's), the monitored job, and the leaf range
/// [first_leaf, first_leaf + leaf_count) this connection reports for.
struct Hello {
  std::uint32_t version = kProtoVersion;
  net::TopologyInfo topo{};
  std::uint16_t job = 0;
  net::LeafId first_leaf{0};
  std::uint32_t leaf_count = 0;

  friend bool operator==(const Hello&, const Hello&) = default;
};

/// STATS_REPLY body: the daemon's ingest metrics and shard identity.
struct StatsSnapshot {
  std::uint64_t frames_in = 0;          ///< complete frames parsed
  std::uint64_t counters_ingested = 0;  ///< COUNTERS accepted into detection
  std::uint64_t counters_rejected = 0;  ///< COUNTERS refused (any Err)
  std::uint64_t predict_installs = 0;
  std::uint64_t verdict_queries = 0;
  std::uint64_t alerts = 0;  ///< faulty (leaf × iteration) results folded
  std::uint64_t errors = 0;  ///< ERR replies sent
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  core::Bytes bytes_in{};
  core::Bytes bytes_out{};
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  net::LeafId owned_first{0};
  std::uint32_t owned_leaves = 0;

  friend bool operator==(const StatsSnapshot&, const StatsSnapshot&) = default;
};

// ---------------------------------------------------------------------------
// Bounds-checked little-endian readers/writers.
// ---------------------------------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  ///< raw IEEE-754 bits — bit-exact round trip
  void bytes(std::string_view s);

  [[nodiscard]] std::vector<std::uint8_t>& buf() { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Cursor over one frame payload. Every getter returns a value and clears
/// ok() on overrun; calls after an overrun return zeros, so decoders can
/// read a whole struct and check ok() once at the end.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_{data} {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool done() const { return ok_ && off_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - off_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Frame encoders. Every encoder returns a COMPLETE frame (length prefix
// included), ready to write to a socket or a stream file.
// ---------------------------------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const Hello& h);
[[nodiscard]] std::vector<std::uint8_t> encode_counters(const fp::IterationRecord& r);
[[nodiscard]] std::vector<std::uint8_t> encode_predict(const fp::PortLoadMap& map);
/// VERDICT / STATS / QUIT / SHUTDOWN / OK — opcode-only frames.
[[nodiscard]] std::vector<std::uint8_t> encode_simple(Op op);
[[nodiscard]] std::vector<std::uint8_t> encode_err(Err code, std::string_view message);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_reply(const StatsSnapshot& s);

/// Wrap an already-built payload (opcode + body) in a length prefix.
[[nodiscard]] std::vector<std::uint8_t> frame_payload(const std::vector<std::uint8_t>& payload);

// ---------------------------------------------------------------------------
// Body decoders. `body` is the payload AFTER the opcode byte. nullopt means
// the body is malformed (truncated, trailing garbage, or absurd dimensions);
// semantic validation against the daemon's topology happens in the engine.
// ---------------------------------------------------------------------------

[[nodiscard]] std::optional<Hello> decode_hello(std::span<const std::uint8_t> body);
[[nodiscard]] std::optional<fp::IterationRecord> decode_counters(
    std::span<const std::uint8_t> body);
[[nodiscard]] std::optional<fp::PortLoadMap> decode_predict(std::span<const std::uint8_t> body);
struct ErrReply {
  Err code = Err::kBadFrame;
  std::string message;
};
[[nodiscard]] std::optional<ErrReply> decode_err(std::span<const std::uint8_t> body);
[[nodiscard]] std::optional<StatsSnapshot> decode_stats_reply(
    std::span<const std::uint8_t> body);

// ---------------------------------------------------------------------------
// Incremental frame scanner: feed() raw socket bytes, pop complete frames
// with next(). Shared by the server's connections, the client, and the
// stream-file loader, so all three agree on framing — and so the hardening
// tests can drive hostile byte streams through the exact production path.
// ---------------------------------------------------------------------------

class FrameAssembler {
 public:
  enum class Status : std::uint8_t {
    kNeedMore,   ///< no complete frame buffered
    kFrame,      ///< `frame` filled with one payload (opcode + body)
    kOversized,  ///< length prefix beyond kMaxFramePayload — unrecoverable
    kEmpty,      ///< zero-length frame — malformed (no opcode byte)
  };

  void feed(std::span<const std::uint8_t> data);
  [[nodiscard]] Status next(std::vector<std::uint8_t>& frame);

  [[nodiscard]] std::size_t buffered() const { return buf_.size() - off_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;
};

}  // namespace flowpulse::daemon
