#pragma once

// DaemonEngine: everything `flowpulsed` does EXCEPT sockets. One frame in,
// one reply out, with all protocol semantics — registration, topology
// validation, shard ownership, counter ingestion into the detection core,
// verdict/stats queries — behind a pure byte-level API. The epoll server
// only shuttles bytes; tests drive this class directly (deterministically,
// no fds), which is what makes codec-hardening and shard-merge tests
// exact rather than probabilistic.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "daemon/protocol.h"
#include "daemon/verdict.h"
#include "flowpulse/system.h"
#include "net/topology_info.h"
#include "net/types.h"

namespace flowpulse::daemon {

struct EngineConfig {
  net::TopologyInfo topo{};
  /// Detection config. The daemon default is the O(1) streaming detector —
  /// constant state per port is what makes per-connection online detection
  /// affordable at thousands of leaves (a PREDICT seeds its baselines).
  fp::SystemConfig system{};
  /// Cluster mode: this daemon owns the deterministic leaf range
  /// [shard_index·L/N, (shard_index+1)·L/N) of an N-shard deployment.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
};

/// Deterministic shard ownership: shard i of n owns leaves
/// [i·leaves/n, (i+1)·leaves/n). Clients and daemons must agree on this
/// split, so it lives here, next to the engine both link.
[[nodiscard]] constexpr std::uint32_t shard_first_leaf(std::uint32_t leaves,
                                                       std::uint32_t shard_index,
                                                       std::uint32_t shard_count) {
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(leaves) * shard_index / shard_count);
}

/// Per-connection protocol state (owned by the transport, passed back in).
struct Session {
  bool registered = false;
  net::LeafId first_leaf{0};
  std::uint32_t leaf_count = 0;
};

/// What the transport should do after handling one frame.
struct EngineReply {
  std::vector<std::uint8_t> bytes;  ///< complete reply frame to send
  bool close = false;               ///< close this connection after flushing
  bool shutdown = false;            ///< stop the daemon after flushing
};

class DaemonEngine {
 public:
  explicit DaemonEngine(const EngineConfig& config);

  /// Handle one complete frame payload (opcode + body).
  [[nodiscard]] EngineReply on_frame(Session& session, std::span<const std::uint8_t> frame);
  /// The connection's byte stream is unrecoverable (oversized length
  /// prefix / zero-length frame): one ERR reply, then close.
  [[nodiscard]] EngineReply on_bad_stream(Err code);

  [[nodiscard]] const net::TopologyInfo& topology() const { return config_.topo; }
  [[nodiscard]] net::LeafId owned_first() const { return owned_first_; }
  [[nodiscard]] std::uint32_t owned_count() const { return owned_count_; }
  [[nodiscard]] bool owns(net::LeafId leaf) const {
    return leaf.v() >= owned_first_.v() && leaf.v() < owned_first_.v() + owned_count_;
  }

  /// This shard's canonical verdict over everything ingested so far.
  [[nodiscard]] FabricVerdict verdict() const { return accumulator_.verdict(); }

  /// Ingest + protocol counters. The transport owns the connection and
  /// byte counts; everything else is maintained by on_frame.
  [[nodiscard]] StatsSnapshot& stats() { return stats_; }
  [[nodiscard]] const fp::FlowPulseSystem& system() const { return *system_; }

 private:
  [[nodiscard]] EngineReply err(Err code, std::string_view message);
  [[nodiscard]] EngineReply handle_hello(Session& session, std::span<const std::uint8_t> body);
  [[nodiscard]] EngineReply handle_counters(Session& session,
                                            std::span<const std::uint8_t> body);
  [[nodiscard]] EngineReply handle_predict(Session& session,
                                           std::span<const std::uint8_t> body);

  EngineConfig config_;
  net::LeafId owned_first_{0};
  std::uint32_t owned_count_ = 0;
  std::unique_ptr<fp::FlowPulseSystem> system_;  ///< transport-agnostic mode
  VerdictAccumulator accumulator_;
  StatsSnapshot stats_;
};

}  // namespace flowpulse::daemon
