#pragma once

// Blocking flowpulsed client: one TCP connection speaking the wire
// protocol, with typed helpers for every request. The load generator, the
// merge client and the socket smoke tests all sit on this; pipelined bulk
// ingest uses send_frames() + drain_replies() so N COUNTERS can be in
// flight per round trip (the redis-benchmark pattern).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "daemon/protocol.h"
#include "daemon/verdict.h"

namespace flowpulse::daemon {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect (blocking). False with *err filled on failure.
  // detlint: ok(raw-scalar-id): TCP port of the daemon, not a fabric PortId
  [[nodiscard]] bool connect_to(const std::string& host, std::uint16_t tcp_port,
                                std::string* err);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Write one complete frame (blocking until fully written).
  [[nodiscard]] bool send_frame(std::span<const std::uint8_t> frame, std::string* err);
  /// Write many frames with one gathering pass (pipelining).
  [[nodiscard]] bool send_frames(std::span<const std::uint8_t> bytes, std::string* err);
  /// Block until one complete reply payload (opcode + body) arrives.
  [[nodiscard]] bool recv_reply(std::vector<std::uint8_t>& payload, std::string* err);

  // Typed round trips: send, block for the reply, expect OK.
  [[nodiscard]] bool hello(const Hello& h, std::string* err);
  [[nodiscard]] bool predict(const fp::PortLoadMap& map, std::string* err);
  [[nodiscard]] bool counters(const fp::IterationRecord& rec, std::string* err);
  [[nodiscard]] std::optional<FabricVerdict> verdict(std::string* err);
  [[nodiscard]] std::optional<StatsSnapshot> stats(std::string* err);
  [[nodiscard]] bool quit(std::string* err);
  [[nodiscard]] bool shutdown_server(std::string* err);

  [[nodiscard]] int fd() const { return fd_; }

 private:
  [[nodiscard]] bool expect_ok(std::string* err);

  int fd_ = -1;
  FrameAssembler in_;
};

}  // namespace flowpulse::daemon
