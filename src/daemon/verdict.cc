#include "daemon/verdict.h"

#include <algorithm>

#include "daemon/protocol.h"

namespace flowpulse::daemon {

namespace {

bool alert_order(const VerdictAlert& a, const VerdictAlert& b) {
  if (a.iteration != b.iteration) return a.iteration < b.iteration;
  if (a.leaf != b.leaf) return a.leaf < b.leaf;
  return a.uplink < b.uplink;
}

}  // namespace

void VerdictAccumulator::fold(const fp::DetectionResult& result) {
  if (!result.faulty()) return;
  ++faulty_results_;
  if (!flagged_ || result.iteration < first_faulty_iteration_) {
    first_faulty_iteration_ = result.iteration;
  }
  flagged_ = true;
  auto implicate = [this](net::LeafId leaf, net::UplinkIndex uplink) {
    const net::LinkId key = net::LinkId::of(leaf, uplink);
    if (std::find(suspect_links_.begin(), suspect_links_.end(), key) ==
        suspect_links_.end()) {
      suspect_links_.push_back(key);
    }
  };
  for (const fp::PortAlert& a : result.alerts) {
    VerdictAlert va;
    va.iteration = result.iteration;
    va.leaf = result.leaf;
    va.uplink = a.uplink;
    va.observed = a.observed;
    va.predicted = a.predicted;
    va.rel_dev = a.rel_dev;
    va.verdict = a.localization.verdict;
    va.suspect_senders = a.localization.suspect_senders;
    alerts_.push_back(std::move(va));
    // Same culprit rule as ctrl::MitigationController::observe: shortfalls
    // implicate a link, surplus is that traffic resurfacing elsewhere.
    if (a.observed >= a.predicted) continue;
    switch (a.localization.verdict) {
      case fp::Localization::Verdict::kLocalLink:
      case fp::Localization::Verdict::kUnknown:
        implicate(result.leaf, a.uplink);
        break;
      case fp::Localization::Verdict::kRemoteLinks:
        for (const net::LeafId sender : a.localization.suspect_senders) {
          implicate(sender, a.uplink);
        }
        break;
    }
  }
}

FabricVerdict VerdictAccumulator::verdict() const {
  FabricVerdict v;
  v.flagged = flagged_;
  v.first_faulty_iteration = first_faulty_iteration_;
  v.suspect_links = suspect_links_;
  std::sort(v.suspect_links.begin(), v.suspect_links.end());
  v.alerts = alerts_;
  std::sort(v.alerts.begin(), v.alerts.end(), alert_order);
  return v;
}

FabricVerdict compute_verdict(const std::vector<fp::DetectionResult>& results) {
  VerdictAccumulator acc;
  for (const fp::DetectionResult& r : results) acc.fold(r);
  return acc.verdict();
}

FabricVerdict merge_verdicts(const std::vector<FabricVerdict>& shards) {
  FabricVerdict merged;
  for (const FabricVerdict& s : shards) {
    if (s.flagged &&
        (!merged.flagged || s.first_faulty_iteration < merged.first_faulty_iteration)) {
      merged.first_faulty_iteration = s.first_faulty_iteration;
    }
    merged.flagged = merged.flagged || s.flagged;
    merged.suspect_links.insert(merged.suspect_links.end(), s.suspect_links.begin(),
                                s.suspect_links.end());
    merged.alerts.insert(merged.alerts.end(), s.alerts.begin(), s.alerts.end());
  }
  std::sort(merged.suspect_links.begin(), merged.suspect_links.end());
  merged.suspect_links.erase(
      std::unique(merged.suspect_links.begin(), merged.suspect_links.end()),
      merged.suspect_links.end());
  std::sort(merged.alerts.begin(), merged.alerts.end(), alert_order);
  return merged;
}

std::vector<std::uint8_t> encode_verdict_reply(const FabricVerdict& v) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Op::kVerdictReply));
  w.u8(v.flagged ? 1 : 0);
  w.u32(v.first_faulty_iteration.v());
  w.u32(static_cast<std::uint32_t>(v.suspect_links.size()));
  for (const net::LinkId link : v.suspect_links) w.u64(link.v());
  w.u32(static_cast<std::uint32_t>(v.alerts.size()));
  for (const VerdictAlert& a : v.alerts) {
    w.u32(a.iteration.v());
    w.u32(a.leaf.v());
    w.u32(a.uplink.v());
    w.f64(a.observed);
    w.f64(a.predicted);
    w.f64(a.rel_dev);
    w.u8(static_cast<std::uint8_t>(a.verdict));
    w.u32(static_cast<std::uint32_t>(a.suspect_senders.size()));
    for (const net::LeafId s : a.suspect_senders) w.u32(s.v());
  }
  return frame_payload(w.buf());
}

std::optional<FabricVerdict> decode_verdict_reply(std::span<const std::uint8_t> body) {
  Reader r{body};
  FabricVerdict v;
  v.flagged = r.u8() != 0;
  v.first_faulty_iteration = net::IterIndex{r.u32()};
  const std::uint32_t nlinks = r.u32();
  if (!r.ok() || static_cast<std::uint64_t>(nlinks) * 8 > r.remaining()) return std::nullopt;
  v.suspect_links.reserve(nlinks);
  for (std::uint32_t i = 0; i < nlinks; ++i) v.suspect_links.emplace_back(r.u64());
  const std::uint32_t nalerts = r.u32();
  // Each alert is at least 41 bytes; reject counts the body cannot hold.
  if (!r.ok() || static_cast<std::uint64_t>(nalerts) * 41 > r.remaining()) return std::nullopt;
  v.alerts.reserve(nalerts);
  for (std::uint32_t i = 0; i < nalerts; ++i) {
    VerdictAlert a;
    a.iteration = net::IterIndex{r.u32()};
    a.leaf = net::LeafId{r.u32()};
    a.uplink = net::UplinkIndex{r.u32()};
    a.observed = r.f64();
    a.predicted = r.f64();
    a.rel_dev = r.f64();
    a.verdict = static_cast<fp::Localization::Verdict>(r.u8());
    const std::uint32_t nsenders = r.u32();
    if (!r.ok() || static_cast<std::uint64_t>(nsenders) * 4 > r.remaining()) {
      return std::nullopt;
    }
    a.suspect_senders.reserve(nsenders);
    for (std::uint32_t s = 0; s < nsenders; ++s) a.suspect_senders.emplace_back(r.u32());
    v.alerts.push_back(std::move(a));
  }
  if (!r.done()) return std::nullopt;
  return v;
}

}  // namespace flowpulse::daemon
