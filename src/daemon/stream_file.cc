#include "daemon/stream_file.h"

#include <algorithm>
#include <fstream>

namespace flowpulse::daemon {

void sort_records(std::vector<fp::IterationRecord>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const fp::IterationRecord& a, const fp::IterationRecord& b) {
                     if (a.iteration.v() != b.iteration.v()) {
                       return a.iteration.v() < b.iteration.v();
                     }
                     return a.leaf.v() < b.leaf.v();
                   });
}

std::vector<std::uint8_t> encode_stream(const CounterStream& stream) {
  std::vector<std::uint8_t> bytes;
  const auto emit = [&bytes](const std::vector<std::uint8_t>& frame) {
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  };
  emit(encode_hello(stream.hello));
  if (stream.prediction.has_value()) emit(encode_predict(*stream.prediction));
  for (const fp::IterationRecord& rec : stream.records) emit(encode_counters(rec));
  return bytes;
}

std::optional<CounterStream> parse_stream(std::span<const std::uint8_t> data,
                                          std::string* err) {
  FrameAssembler assembler;
  assembler.feed(data);

  CounterStream stream;
  bool have_hello = false;
  std::vector<std::uint8_t> frame;
  for (std::size_t index = 0;; ++index) {
    const FrameAssembler::Status st = assembler.next(frame);
    if (st == FrameAssembler::Status::kNeedMore) break;
    if (st != FrameAssembler::Status::kFrame) {
      if (err != nullptr) *err = "malformed frame";
      return std::nullopt;
    }
    const Op op = static_cast<Op>(frame[0]);
    const std::span<const std::uint8_t> body{frame.data() + 1, frame.size() - 1};
    if (index == 0) {
      if (op != Op::kHello) {
        if (err != nullptr) *err = "stream must start with HELLO";
        return std::nullopt;
      }
      auto h = decode_hello(body);
      if (!h.has_value()) {
        if (err != nullptr) *err = "malformed HELLO";
        return std::nullopt;
      }
      stream.hello = *h;
      have_hello = true;
      continue;
    }
    switch (op) {
      case Op::kPredict: {
        auto p = decode_predict(body);
        if (!p.has_value()) {
          if (err != nullptr) *err = "malformed PREDICT";
          return std::nullopt;
        }
        stream.prediction = std::move(*p);
        break;
      }
      case Op::kCounters: {
        auto r = decode_counters(body);
        if (!r.has_value()) {
          if (err != nullptr) *err = "malformed COUNTERS";
          return std::nullopt;
        }
        stream.records.push_back(std::move(*r));
        break;
      }
      default:
        if (err != nullptr) *err = "unexpected opcode";
        return std::nullopt;
    }
  }
  if (!have_hello) {
    if (err != nullptr) *err = "stream holds no frames";
    return std::nullopt;
  }
  if (assembler.buffered() > 0) {
    if (err != nullptr) *err = "trailing garbage at end of stream";
    return std::nullopt;
  }
  return stream;
}

bool write_stream_file(const std::string& path, const CounterStream& stream,
                       std::string* err) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) {
    if (err != nullptr) *err = "cannot open '" + path + "' for writing";
    return false;
  }
  const std::vector<std::uint8_t> bytes = encode_stream(stream);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    if (err != nullptr) *err = "short write to '" + path + "'";
    return false;
  }
  return true;
}

std::optional<CounterStream> read_stream_file(const std::string& path, std::string* err) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    if (err != nullptr) *err = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes;
  char buf[64 * 1024];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    bytes.insert(bytes.end(), buf, buf + in.gcount());
  }
  std::string inner;
  auto stream = parse_stream(bytes, &inner);
  if (!stream.has_value() && err != nullptr) *err = inner + " in '" + path + "'";
  return stream;
}

}  // namespace flowpulse::daemon
