#include "daemon/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace flowpulse::daemon {

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void log_errno(const char* what) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): only the kServerLoop thread
  // logs; the role capability (server.h) proves there is exactly one
  std::fprintf(stderr, "flowpulsed: %s: %s\n", what, std::strerror(errno));
}

}  // namespace

Server::Server(ServerConfig config, DaemonEngine& engine)
    : config_{std::move(config)}, engine_{engine} {}

Server::~Server() {
  // Destruction is a role handoff: run() has returned and its thread has
  // been joined (flowpulsed_main and every test do the join before the
  // Server leaves scope), so the destroying thread is the sole owner.
  const core::ScopedThreadRole role{kServerLoop};
  for (auto& [fd, conn] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool Server::open() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    log_errno("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "flowpulsed: bad bind address '%s'\n", config_.bind_address.c_str());
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    log_errno("bind");
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    log_errno("getsockname");
    return false;
  }
  bound_port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, config_.backlog) != 0 || !set_nonblocking(listen_fd_)) {
    log_errno("listen");
    return false;
  }

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  epoll_fd_ = ::epoll_create1(0);
  if (wake_fd_ < 0 || epoll_fd_ < 0) {
    log_errno("epoll_create1/eventfd");
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    log_errno("epoll_ctl(listen)");
    return false;
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    log_errno("epoll_ctl(wake)");
    return false;
  }

  if (!config_.port_file.empty()) {
    std::ofstream pf{config_.port_file};
    pf << bound_port_ << "\n";
  }
  return true;
}

void Server::request_stop() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  // Async-signal-safe; the loop treats any wake as a stop request.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::update_interest(int fd, const Conn& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn.out_off < conn.out.size() ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) log_errno("accept");
      return;
    }
    if (static_cast<int>(conns_.size()) >= config_.max_connections || !set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, Conn{});
    ++engine_.stats().connections_accepted;
    ++engine_.stats().connections_open;
  }
}

void Server::close_conn(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(fd);
  --engine_.stats().connections_open;
}

bool Server::flush_out(int fd, Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n =
        ::send(fd, conn.out.data() + conn.out_off, conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      engine_.stats().bytes_out += core::Bytes{static_cast<std::uint64_t>(n)};
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    close_conn(fd);
    return false;
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.closing) {
    close_conn(fd);
    return false;
  }
  return true;
}

bool Server::conn_readable(int fd) {
  Conn& conn = conns_.at(fd);
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      engine_.stats().bytes_in += core::Bytes{static_cast<std::uint64_t>(n)};
      conn.in.feed({buf, static_cast<std::size_t>(n)});
      if (n < static_cast<ssize_t>(sizeof(buf))) break;  // likely drained
      continue;
    }
    if (n == 0) {  // peer closed
      close_conn(fd);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(fd);
    return false;
  }

  std::vector<std::uint8_t> frame;
  for (;;) {
    const FrameAssembler::Status st = conn.in.next(frame);
    if (st == FrameAssembler::Status::kNeedMore) break;
    EngineReply reply;
    if (st == FrameAssembler::Status::kFrame) {
      reply = engine_.on_frame(conn.session, frame);
    } else {
      reply = engine_.on_bad_stream(st == FrameAssembler::Status::kOversized
                                        ? Err::kOversized
                                        : Err::kBadFrame);
    }
    conn.out.insert(conn.out.end(), reply.bytes.begin(), reply.bytes.end());
    if (reply.shutdown) stop_requested_ = true;
    if (reply.close || reply.shutdown) {
      conn.closing = true;
      break;  // no frames are processed past a close
    }
  }
  if (!flush_out(fd, conn)) return false;
  update_interest(fd, conn);
  return true;
}

int Server::run() {
  // The calling thread becomes THE event-loop thread for the lifetime of
  // this frame; every FP_REQUIRES(kServerLoop) method below is reachable
  // only from here.
  const core::ScopedThreadRole role{kServerLoop};
  if (epoll_fd_ < 0) return 1;
  epoll_event events[128];
  while (!stop_requested_) {
    const int n = ::epoll_wait(epoll_fd_, events, 128, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      log_errno("epoll_wait");
      return 1;
    }
    bool accept_pending = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        stop_requested_ = true;
        continue;
      }
      if (fd == listen_fd_) {
        // Deferred below: accepting mid-batch can reuse an fd number that
        // close_conn released earlier in this same batch, and a stale queued
        // event for the old fd would then act on the unrelated new
        // connection. No fd enters conns_ until the batch is fully handled.
        accept_pending = true;
        continue;
      }
      if (conns_.find(fd) == conns_.end()) continue;  // closed earlier this round
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(fd);
        continue;
      }
      if ((ev & EPOLLIN) != 0 && !conn_readable(fd)) continue;
      if ((ev & EPOLLOUT) != 0) {
        auto it = conns_.find(fd);
        if (it != conns_.end() && flush_out(fd, it->second)) update_interest(fd, it->second);
      }
    }
    if (accept_pending) accept_ready();
  }
  // Graceful exit: stop accepting, then give pending replies (the OK for
  // the SHUTDOWN itself) a bounded number of flush attempts.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  for (int attempt = 0; attempt < 64 && !conns_.empty(); ++attempt) {
    for (auto it = conns_.begin(); it != conns_.end();) {
      const int fd = it->first;
      Conn& conn = it->second;
      ++it;  // flush_out may erase
      if (conn.out_off >= conn.out.size()) {
        close_conn(fd);
      } else {
        flush_out(fd, conn);
      }
    }
  }
  return 0;
}

}  // namespace flowpulse::daemon
