#include "daemon/engine.h"

#include <string>

namespace flowpulse::daemon {

DaemonEngine::DaemonEngine(const EngineConfig& config) : config_{config} {
  const std::uint32_t leaves = config_.topo.leaves;
  const std::uint32_t first =
      shard_first_leaf(leaves, config_.shard_index, config_.shard_count);
  const std::uint32_t end =
      shard_first_leaf(leaves, config_.shard_index + 1, config_.shard_count);
  owned_first_ = net::LeafId{first};
  owned_count_ = end - first;
  // The detection core over the bare topology view: full-fabric indices so
  // PortLoadMap predictions install unchanged on every shard; only the
  // owned leaf range ever sees counters.
  system_ = std::make_unique<fp::FlowPulseSystem>(config_.topo, config_.system);
  system_->set_alert_hook([this](const fp::DetectionResult& r) {
    accumulator_.fold(r);
    stats_.alerts = accumulator_.faulty_results();
  });
  stats_.shard_index = config_.shard_index;
  stats_.shard_count = config_.shard_count;
  stats_.owned_first = owned_first_;
  stats_.owned_leaves = owned_count_;
}

EngineReply DaemonEngine::err(Err code, std::string_view message) {
  ++stats_.errors;
  EngineReply r;
  r.bytes = encode_err(code, message);
  return r;
}

EngineReply DaemonEngine::on_bad_stream(Err code) {
  EngineReply r = err(code, code == Err::kOversized
                                ? "length prefix beyond kMaxFramePayload"
                                : "zero-length frame");
  r.close = true;  // framing is lost; no way to resynchronize
  return r;
}

EngineReply DaemonEngine::on_frame(Session& session, std::span<const std::uint8_t> frame) {
  ++stats_.frames_in;
  if (frame.empty()) return on_bad_stream(Err::kBadFrame);
  const Op op = static_cast<Op>(frame[0]);
  const std::span<const std::uint8_t> body = frame.subspan(1);
  switch (op) {
    case Op::kHello:
      return handle_hello(session, body);
    case Op::kCounters:
      return handle_counters(session, body);
    case Op::kPredict:
      return handle_predict(session, body);
    case Op::kVerdict: {
      ++stats_.verdict_queries;
      EngineReply r;
      r.bytes = encode_verdict_reply(accumulator_.verdict());
      return r;
    }
    case Op::kStats: {
      EngineReply r;
      r.bytes = encode_stats_reply(stats_);
      return r;
    }
    case Op::kQuit: {
      EngineReply r;
      r.bytes = encode_simple(Op::kOk);
      r.close = true;
      return r;
    }
    case Op::kShutdown: {
      EngineReply r;
      r.bytes = encode_simple(Op::kOk);
      r.shutdown = true;
      return r;
    }
    case Op::kOk:
    case Op::kErr:
    case Op::kVerdictReply:
    case Op::kStatsReply:
      return err(Err::kBadOpcode, "reply opcode in a request");
  }
  return err(Err::kBadOpcode, "unknown opcode " + std::to_string(frame[0]));
}

EngineReply DaemonEngine::handle_hello(Session& session, std::span<const std::uint8_t> body) {
  const std::optional<Hello> h = decode_hello(body);
  if (!h.has_value()) return err(Err::kBadFrame, "malformed HELLO");
  if (h->version != kProtoVersion) {
    return err(Err::kBadVersion,
               "protocol version " + std::to_string(h->version) + ", daemon speaks " +
                   std::to_string(kProtoVersion));
  }
  const net::TopologyInfo& t = config_.topo;
  if (h->topo.leaves != t.leaves || h->topo.spines != t.spines ||
      h->topo.hosts_per_leaf != t.hosts_per_leaf || h->topo.parallel != t.parallel) {
    return err(Err::kTopologyMismatch, "fabric shape differs from the daemon's");
  }
  if (h->job != config_.system.job) {
    return err(Err::kTopologyMismatch, "job id differs from the daemon's");
  }
  if (h->leaf_count == 0 ||
      static_cast<std::uint64_t>(h->first_leaf.v()) + h->leaf_count > t.leaves) {
    return err(Err::kBadDimensions, "leaf range outside the fabric");
  }
  session.registered = true;
  session.first_leaf = h->first_leaf;
  session.leaf_count = h->leaf_count;
  EngineReply r;
  r.bytes = encode_simple(Op::kOk);
  return r;
}

EngineReply DaemonEngine::handle_counters(Session& session,
                                          std::span<const std::uint8_t> body) {
  std::optional<fp::IterationRecord> rec = decode_counters(body);
  if (!rec.has_value()) {
    ++stats_.counters_rejected;
    return err(Err::kBadFrame, "malformed COUNTERS");
  }
  if (!session.registered) {
    ++stats_.counters_rejected;
    return err(Err::kNoHello, "COUNTERS before HELLO");
  }
  const net::TopologyInfo& t = config_.topo;
  if (rec->bytes.size() != t.uplinks_per_leaf() ||
      (!rec->by_src.empty() && rec->by_src.front().size() != t.leaves)) {
    ++stats_.counters_rejected;
    return err(Err::kBadDimensions, "ports/senders do not match the fabric");
  }
  if (rec->leaf.v() >= t.leaves || rec->leaf.v() < session.first_leaf.v() ||
      rec->leaf.v() >= session.first_leaf.v() + session.leaf_count) {
    ++stats_.counters_rejected;
    return err(Err::kUnregisteredLeaf,
               "leaf " + std::to_string(rec->leaf.v()) + " is not in this "
               "connection's registered range");
  }
  if (!owns(rec->leaf)) {
    ++stats_.counters_rejected;
    return err(Err::kNotOwned, "leaf " + std::to_string(rec->leaf.v()) +
                                   " belongs to another shard");
  }
  // The exact pipeline a PortMonitor finalize takes: evaluation, result
  // collection, alert hook (which folds into the verdict accumulator).
  system_->ingest(*rec);
  system_->clear_results();  // folded; keep daemon memory flat
  ++stats_.counters_ingested;
  EngineReply r;
  r.bytes = encode_simple(Op::kOk);
  return r;
}

EngineReply DaemonEngine::handle_predict(Session& session,
                                         std::span<const std::uint8_t> body) {
  std::optional<fp::PortLoadMap> map = decode_predict(body);
  if (!map.has_value()) return err(Err::kBadFrame, "malformed PREDICT");
  if (!session.registered) return err(Err::kNoHello, "PREDICT before HELLO");
  const net::TopologyInfo& t = config_.topo;
  if (map->leaves() != t.leaves || map->uplinks() != t.uplinks_per_leaf()) {
    return err(Err::kBadDimensions, "prediction shape does not match the fabric");
  }
  system_->set_prediction(std::move(*map));
  ++stats_.predict_installs;
  EngineReply r;
  r.bytes = encode_simple(Op::kOk);
  return r;
}

}  // namespace flowpulse::daemon
