#pragma once

// The daemon's verdict plane: fold per-(leaf × iteration) DetectionResults
// into a canonical fabric-level verdict, merge per-shard verdicts, and move
// verdicts over the wire.
//
// Canonical form is what makes sharding deterministic: alerts sort by
// (iteration, leaf, uplink) and suspect links sort by LinkId, so a fabric
// verdict does not depend on ingest interleaving across connections or on
// how leaves were partitioned into shards. Doubles pass through the wire
// bit-exactly, hence M-shard merge == single-shard run, byte for byte.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "flowpulse/detector.h"
#include "net/types.h"

namespace flowpulse::daemon {

/// One alerted port of one finalized iteration, as the verdict plane
/// carries it (the detection-side fields of fp::PortAlert, flattened).
struct VerdictAlert {
  net::IterIndex iteration{};
  net::LeafId leaf{};
  net::UplinkIndex uplink{};
  double observed = 0.0;
  double predicted = 0.0;
  double rel_dev = 0.0;
  fp::Localization::Verdict verdict = fp::Localization::Verdict::kUnknown;
  std::vector<net::LeafId> suspect_senders;

  friend bool operator==(const VerdictAlert&, const VerdictAlert&) = default;
};

/// Fabric-level verdict: was a fault flagged, from which iteration, on
/// which links — plus every contributing port alert in canonical order.
///
/// Suspect links follow the mitigation controller's localization → link
/// rule (src/ctrl): a shortfall alert with a kLocalLink / kUnknown verdict
/// blames (leaf, uplink); kRemoteLinks blames (sender, uplink) for each
/// suspect sender. Surplus alerts name no culprit.
struct FabricVerdict {
  bool flagged = false;
  net::IterIndex first_faulty_iteration{};
  std::vector<net::LinkId> suspect_links;  ///< sorted, deduplicated
  std::vector<VerdictAlert> alerts;        ///< sorted by (iteration, leaf, uplink)

  friend bool operator==(const FabricVerdict&, const FabricVerdict&) = default;
};

/// Incrementally folds DetectionResults into a verdict, O(alerts) state —
/// clean iterations cost nothing, so the daemon's memory stays flat no
/// matter how long the counter stream runs.
class VerdictAccumulator {
 public:
  void fold(const fp::DetectionResult& result);

  /// Canonicalized verdict over everything folded so far.
  [[nodiscard]] FabricVerdict verdict() const;

  [[nodiscard]] std::uint64_t faulty_results() const { return faulty_results_; }

 private:
  bool flagged_ = false;
  net::IterIndex first_faulty_iteration_{};
  std::uint64_t faulty_results_ = 0;
  std::vector<net::LinkId> suspect_links_;  ///< unsorted, deduplicated
  std::vector<VerdictAlert> alerts_;        ///< fold order
};

/// One-shot fold of a whole result list (the in-simulator side of the
/// daemon-vs-simulator equivalence tests).
[[nodiscard]] FabricVerdict compute_verdict(const std::vector<fp::DetectionResult>& results);

/// Combine per-shard verdicts into the fabric verdict. Shards own disjoint
/// leaf ranges, so merging is a pure union + re-canonicalization; the
/// result is bit-identical to a single shard having seen every leaf.
[[nodiscard]] FabricVerdict merge_verdicts(const std::vector<FabricVerdict>& shards);

/// VERDICT_REPLY frame (length prefix included).
[[nodiscard]] std::vector<std::uint8_t> encode_verdict_reply(const FabricVerdict& v);
/// Body decoder (payload after the opcode byte).
[[nodiscard]] std::optional<FabricVerdict> decode_verdict_reply(
    std::span<const std::uint8_t> body);

}  // namespace flowpulse::daemon
