#include "daemon/protocol.h"

#include <cstring>

namespace flowpulse::daemon {

const char* err_name(Err e) {
  switch (e) {
    case Err::kBadFrame:
      return "bad-frame";
    case Err::kBadVersion:
      return "bad-version";
    case Err::kNoHello:
      return "no-hello";
    case Err::kTopologyMismatch:
      return "topology-mismatch";
    case Err::kUnregisteredLeaf:
      return "unregistered-leaf";
    case Err::kNotOwned:
      return "not-owned";
    case Err::kBadOpcode:
      return "bad-opcode";
    case Err::kBadDimensions:
      return "bad-dimensions";
    case Err::kOversized:
      return "oversized";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Writer / Reader
// ---------------------------------------------------------------------------

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::bytes(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t Reader::u8() {
  if (!ok_ || data_.size() - off_ < 1) {
    ok_ = false;
    return 0;
  }
  return data_[off_++];
}

std::uint16_t Reader::u16() {
  if (!ok_ || data_.size() - off_ < 2) {
    ok_ = false;
    return 0;
  }
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[off_++]) << (8 * i);
  return v;
}

std::uint32_t Reader::u32() {
  if (!ok_ || data_.size() - off_ < 4) {
    ok_ = false;
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[off_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  if (!ok_ || data_.size() - off_ < 8) {
    ok_ = false;
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[off_++]) << (8 * i);
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// Encoders
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> frame_payload(const std::vector<std::uint8_t>& payload) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.buf().insert(w.buf().end(), payload.begin(), payload.end());
  return std::move(w.buf());
}

namespace {

std::vector<std::uint8_t> finish(Writer& body) {
  return frame_payload(body.buf());
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const Hello& h) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Op::kHello));
  w.u32(h.version);
  w.u32(h.topo.leaves);
  w.u32(h.topo.spines);
  w.u32(h.topo.hosts_per_leaf);
  w.u32(h.topo.parallel);
  w.u16(h.job);
  w.u32(h.first_leaf.v());
  w.u32(h.leaf_count);
  return finish(w);
}

std::vector<std::uint8_t> encode_counters(const fp::IterationRecord& r) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Op::kCounters));
  w.u32(r.leaf.v());
  w.u32(r.iteration.v());
  w.u64(r.packets);
  w.u32(static_cast<std::uint32_t>(r.bytes.size()));
  const std::uint32_t senders =
      r.by_src.empty() ? 0 : static_cast<std::uint32_t>(r.by_src.front().size());
  w.u32(senders);
  for (std::size_t p = 0; p < r.bytes.size(); ++p) {
    w.f64(r.bytes[p]);
    for (std::uint32_t s = 0; s < senders; ++s) w.f64(r.by_src[p][s]);
  }
  return finish(w);
}

std::vector<std::uint8_t> encode_predict(const fp::PortLoadMap& map) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Op::kPredict));
  w.u32(map.leaves());
  w.u32(map.uplinks());
  for (std::uint32_t l = 0; l < map.leaves(); ++l) {
    for (std::uint32_t u = 0; u < map.uplinks(); ++u) {
      const fp::PortLoad& load = map.at(net::LeafId{l}, net::UplinkIndex{u});
      w.f64(load.total);
      for (std::uint32_t s = 0; s < map.leaves(); ++s) w.f64(load.by_src_leaf[s]);
    }
  }
  return finish(w);
}

std::vector<std::uint8_t> encode_simple(Op op) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  return finish(w);
}

std::vector<std::uint8_t> encode_err(Err code, std::string_view message) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Op::kErr));
  w.u16(static_cast<std::uint16_t>(code));
  const std::string_view m = message.substr(0, 0xffff);
  w.u16(static_cast<std::uint16_t>(m.size()));
  w.bytes(m);
  return finish(w);
}

std::vector<std::uint8_t> encode_stats_reply(const StatsSnapshot& s) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Op::kStatsReply));
  w.u64(s.frames_in);
  w.u64(s.counters_ingested);
  w.u64(s.counters_rejected);
  w.u64(s.predict_installs);
  w.u64(s.verdict_queries);
  w.u64(s.alerts);
  w.u64(s.errors);
  w.u64(s.connections_accepted);
  w.u64(s.connections_open);
  w.u64(s.bytes_in.v());
  w.u64(s.bytes_out.v());
  w.u32(s.shard_index);
  w.u32(s.shard_count);
  w.u32(s.owned_first.v());
  w.u32(s.owned_leaves);
  return finish(w);
}

// ---------------------------------------------------------------------------
// Decoders
// ---------------------------------------------------------------------------

std::optional<Hello> decode_hello(std::span<const std::uint8_t> body) {
  Reader r{body};
  Hello h;
  h.version = r.u32();
  h.topo.leaves = r.u32();
  h.topo.spines = r.u32();
  h.topo.hosts_per_leaf = r.u32();
  h.topo.parallel = r.u32();
  h.job = r.u16();
  h.first_leaf = net::LeafId{r.u32()};
  h.leaf_count = r.u32();
  if (!r.done()) return std::nullopt;
  return h;
}

std::optional<fp::IterationRecord> decode_counters(std::span<const std::uint8_t> body) {
  Reader r{body};
  fp::IterationRecord rec;
  rec.leaf = net::LeafId{r.u32()};
  rec.iteration = net::IterIndex{r.u32()};
  rec.packets = r.u64();
  const std::uint32_t ports = r.u32();
  const std::uint32_t senders = r.u32();
  if (!r.ok()) return std::nullopt;
  // A hostile (ports, senders) pair must not drive a huge allocation: bound
  // each dimension by what a max-size frame could carry, then require the
  // remaining body to be exactly ports × (1 + senders) doubles. The product
  // must be 64-bit throughout — (1 + senders) in uint32 wraps to 0 at
  // senders = 2^32-1 and would let the size check pass on a tiny body.
  constexpr std::uint64_t kMaxDoubles = kMaxFramePayload / 8;
  if (ports > kMaxDoubles || senders > kMaxDoubles) return std::nullopt;
  const std::uint64_t doubles = static_cast<std::uint64_t>(ports) * (1ull + senders);
  if (doubles * 8 != r.remaining()) return std::nullopt;
  rec.bytes.resize(ports);
  rec.by_src.assign(ports, std::vector<double>(senders, 0.0));
  for (std::uint32_t p = 0; p < ports; ++p) {
    rec.bytes[p] = r.f64();
    for (std::uint32_t s = 0; s < senders; ++s) rec.by_src[p][s] = r.f64();
  }
  if (!r.done()) return std::nullopt;
  return rec;
}

std::optional<fp::PortLoadMap> decode_predict(std::span<const std::uint8_t> body) {
  Reader r{body};
  const std::uint32_t leaves = r.u32();
  const std::uint32_t uplinks = r.u32();
  if (!r.ok()) return std::nullopt;
  // Bound the dimensions before multiplying: leaves = uplinks = 2^31 makes
  // leaves·uplinks·(1+leaves)·8 ≡ 0 mod 2^64, which would sail past a pure
  // size check on an empty body and then attempt an enormous PortLoadMap.
  // With both ≤ kMaxDoubles (2^20) the product is < 2^64 and cannot wrap.
  constexpr std::uint64_t kMaxDoubles = kMaxFramePayload / 8;
  if (leaves > kMaxDoubles || uplinks > kMaxDoubles) return std::nullopt;
  const std::uint64_t doubles =
      static_cast<std::uint64_t>(leaves) * uplinks * (1ull + leaves);
  if (doubles * 8 != r.remaining()) return std::nullopt;
  fp::PortLoadMap map{leaves, uplinks};
  for (std::uint32_t l = 0; l < leaves; ++l) {
    for (std::uint32_t u = 0; u < uplinks; ++u) {
      fp::PortLoad& load = map.at(net::LeafId{l}, net::UplinkIndex{u});
      load.total = r.f64();
      for (std::uint32_t s = 0; s < leaves; ++s) load.by_src_leaf[s] = r.f64();
    }
  }
  if (!r.done()) return std::nullopt;
  return map;
}

std::optional<ErrReply> decode_err(std::span<const std::uint8_t> body) {
  Reader r{body};
  ErrReply e;
  e.code = static_cast<Err>(r.u16());
  const std::uint16_t len = r.u16();
  if (!r.ok() || r.remaining() != len) return std::nullopt;
  e.message.reserve(len);
  for (std::uint16_t i = 0; i < len; ++i) e.message.push_back(static_cast<char>(r.u8()));
  if (!r.done()) return std::nullopt;
  return e;
}

std::optional<StatsSnapshot> decode_stats_reply(std::span<const std::uint8_t> body) {
  Reader r{body};
  StatsSnapshot s;
  s.frames_in = r.u64();
  s.counters_ingested = r.u64();
  s.counters_rejected = r.u64();
  s.predict_installs = r.u64();
  s.verdict_queries = r.u64();
  s.alerts = r.u64();
  s.errors = r.u64();
  s.connections_accepted = r.u64();
  s.connections_open = r.u64();
  s.bytes_in = core::Bytes{r.u64()};
  s.bytes_out = core::Bytes{r.u64()};
  s.shard_index = r.u32();
  s.shard_count = r.u32();
  s.owned_first = net::LeafId{r.u32()};
  s.owned_leaves = r.u32();
  if (!r.done()) return std::nullopt;
  return s;
}

// ---------------------------------------------------------------------------
// FrameAssembler
// ---------------------------------------------------------------------------

void FrameAssembler::feed(std::span<const std::uint8_t> data) {
  // Compact lazily: once the consumed prefix dominates, slide it off so the
  // buffer stays bounded by (one frame + one socket read).
  if (off_ > 4096 && off_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

FrameAssembler::Status FrameAssembler::next(std::vector<std::uint8_t>& frame) {
  const std::size_t avail = buf_.size() - off_;
  if (avail < 4) return Status::kNeedMore;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(buf_[off_ + i]) << (8 * i);
  if (len == 0) return Status::kEmpty;
  if (len > kMaxFramePayload) return Status::kOversized;
  if (avail < 4 + static_cast<std::size_t>(len)) return Status::kNeedMore;
  frame.assign(buf_.begin() + static_cast<std::ptrdiff_t>(off_ + 4),
               buf_.begin() + static_cast<std::ptrdiff_t>(off_ + 4 + len));
  off_ += 4 + len;
  return Status::kFrame;
}

}  // namespace flowpulse::daemon
