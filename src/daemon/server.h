#pragma once

// The flowpulsed transport: a single-threaded, level-triggered epoll event
// loop over non-blocking TCP sockets (the redis single-threaded design).
// All protocol semantics live in DaemonEngine; this class only accepts
// connections, assembles frames, and shuttles reply bytes — which is why
// it is small and why the interesting logic is testable without it.
//
// src/daemon is the repo's one sanctioned realtime module (see
// tools/detlint.py): fds, epoll and OS I/O are legitimate here and only
// here — the simulation core stays deterministic.

#include <cstdint>
#include <map>
#include <string>

#include "core/thread_safety.h"
#include "daemon/engine.h"
#include "daemon/protocol.h"

namespace flowpulse::daemon {

/// The event-loop thread role. Everything the epoll loop mutates —
/// connection table, per-connection sessions/buffers, the engine, the stop
/// flag — is single-owner state of whichever thread is inside run() (or,
/// before/after the loop, of the thread that owns the Server object; the
/// handoff points are open()→run() and run()-returned→~Server(), both
/// happens-before via thread creation/join). Guarding that state with this
/// role makes "a second thread reached into the loop" a compile error
/// under -Werror=thread-safety instead of a tsan coin flip. The one
/// deliberately role-free entry point is request_stop(): it only writes
/// the eventfd, which is what makes it safe from signal handlers and
/// other threads.
inline constexpr core::ThreadRole kServerLoop{};

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// TCP listen port; 0 binds an ephemeral port (read it back via port()).
  // detlint: ok(raw-scalar-id): TCP listen port, not a fabric PortId/UplinkIndex
  std::uint16_t port = 7117;
  /// If non-empty, the actual bound port is written here after listen() —
  /// how scripts using --port=0 discover the daemon.
  std::string port_file;
  int backlog = 128;
  int max_connections = 1024;
};

class Server {
 public:
  Server(ServerConfig config, DaemonEngine& engine);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// socket/bind/listen/epoll setup. False (with a message on stderr) on
  /// any syscall failure.
  [[nodiscard]] bool open();

  /// Run the event loop until a SHUTDOWN frame or request_stop(). Returns
  /// 0 on clean shutdown, 1 if open() was never called / failed.
  [[nodiscard]] int run();

  /// Async-signal-safe stop request (writes one byte to an internal
  /// eventfd the loop polls) — the SIGINT/SIGTERM path.
  void request_stop();

  /// The actually-bound TCP port (after open()).
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

 private:
  struct Conn {
    Session session;
    FrameAssembler in;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    bool closing = false;  ///< close once `out` drains
  };

  void accept_ready() FP_REQUIRES(kServerLoop);
  /// False if the connection died and was closed.
  bool conn_readable(int fd) FP_REQUIRES(kServerLoop);
  bool flush_out(int fd, Conn& conn) FP_REQUIRES(kServerLoop);
  void close_conn(int fd) FP_REQUIRES(kServerLoop);
  void update_interest(int fd, const Conn& conn) FP_REQUIRES(kServerLoop);

  ServerConfig config_;
  /// Mutated on every frame (stats, detection state) — loop-owned like the
  /// connection table, even though the reference itself is const.
  DaemonEngine& engine_;
  // The fds and bound port are written once in open() (before any loop
  // thread exists) and only read afterwards, so they stay role-free;
  // request_stop() relies on reading wake_fd_ from arbitrary threads.
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: request_stop() → loop wakeup
  // detlint: ok(raw-scalar-id): TCP listen port, not a fabric PortId/UplinkIndex
  std::uint16_t bound_port_ = 0;
  bool stop_requested_ FP_GUARDED_BY(kServerLoop) = false;
  std::map<int, Conn> conns_ FP_GUARDED_BY(kServerLoop);
};

}  // namespace flowpulse::daemon
