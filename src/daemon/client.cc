#include "daemon/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace flowpulse::daemon {

namespace {

void set_err(std::string* err, const std::string& what) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): client is single-threaded
  // blocking I/O; no other thread can race the static strerror buffer
  if (err != nullptr) *err = what + ": " + std::strerror(errno);
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_{std::exchange(other.fd_, -1)}, in_{std::move(other.in_)} {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    in_ = std::move(other.in_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect_to(const std::string& host, std::uint16_t tcp_port, std::string* err) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    set_err(err, "socket");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(tcp_port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "bad address '" + host + "'";
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_err(err, "connect");
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool Client::send_frames(std::span<const std::uint8_t> bytes, std::string* err) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_err(err, "send");
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::send_frame(std::span<const std::uint8_t> frame, std::string* err) {
  return send_frames(frame, err);
}

bool Client::recv_reply(std::vector<std::uint8_t>& payload, std::string* err) {
  for (;;) {
    const FrameAssembler::Status st = in_.next(payload);
    if (st == FrameAssembler::Status::kFrame) return true;
    if (st != FrameAssembler::Status::kNeedMore) {
      if (err != nullptr) *err = "malformed reply stream from daemon";
      return false;
    }
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.feed({buf, static_cast<std::size_t>(n)});
      continue;
    }
    if (n == 0) {
      if (err != nullptr) *err = "daemon closed the connection";
      return false;
    }
    if (errno == EINTR) continue;
    set_err(err, "recv");
    return false;
  }
}

bool Client::expect_ok(std::string* err) {
  std::vector<std::uint8_t> payload;
  if (!recv_reply(payload, err)) return false;
  if (payload.empty()) {
    if (err != nullptr) *err = "empty reply";
    return false;
  }
  const Op op = static_cast<Op>(payload[0]);
  if (op == Op::kOk) return true;
  if (op == Op::kErr) {
    const auto e = decode_err({payload.data() + 1, payload.size() - 1});
    if (err != nullptr) {
      *err = e.has_value()
                 ? std::string{"daemon error ["} + err_name(e->code) + "]: " + e->message
                 : std::string{"malformed ERR reply"};
    }
    return false;
  }
  if (err != nullptr) *err = "unexpected reply opcode";
  return false;
}

bool Client::hello(const Hello& h, std::string* err) {
  return send_frame(encode_hello(h), err) && expect_ok(err);
}

bool Client::predict(const fp::PortLoadMap& map, std::string* err) {
  return send_frame(encode_predict(map), err) && expect_ok(err);
}

bool Client::counters(const fp::IterationRecord& rec, std::string* err) {
  return send_frame(encode_counters(rec), err) && expect_ok(err);
}

std::optional<FabricVerdict> Client::verdict(std::string* err) {
  if (!send_frame(encode_simple(Op::kVerdict), err)) return std::nullopt;
  std::vector<std::uint8_t> payload;
  if (!recv_reply(payload, err)) return std::nullopt;
  if (payload.empty() || static_cast<Op>(payload[0]) != Op::kVerdictReply) {
    if (err != nullptr) *err = "unexpected reply to VERDICT";
    return std::nullopt;
  }
  auto v = decode_verdict_reply({payload.data() + 1, payload.size() - 1});
  if (!v.has_value() && err != nullptr) *err = "malformed VERDICT reply";
  return v;
}

std::optional<StatsSnapshot> Client::stats(std::string* err) {
  if (!send_frame(encode_simple(Op::kStats), err)) return std::nullopt;
  std::vector<std::uint8_t> payload;
  if (!recv_reply(payload, err)) return std::nullopt;
  if (payload.empty() || static_cast<Op>(payload[0]) != Op::kStatsReply) {
    if (err != nullptr) *err = "unexpected reply to STATS";
    return std::nullopt;
  }
  auto s = decode_stats_reply({payload.data() + 1, payload.size() - 1});
  if (!s.has_value() && err != nullptr) *err = "malformed STATS reply";
  return s;
}

bool Client::quit(std::string* err) {
  return send_frame(encode_simple(Op::kQuit), err) && expect_ok(err);
}

bool Client::shutdown_server(std::string* err) {
  return send_frame(encode_simple(Op::kShutdown), err) && expect_ok(err);
}

}  // namespace flowpulse::daemon
