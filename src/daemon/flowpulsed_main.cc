// flowpulsed: the FlowPulse online detection daemon. Leaf reporters
// connect over TCP, register with HELLO, install a baseline with PREDICT,
// and stream finalized per-iteration counters with COUNTERS; operators
// query VERDICT/STATS and stop the daemon with SHUTDOWN (or SIGINT).
//
//   $ ./flowpulsed --leaves=32 --spines=16 --port=0 --port-file=/tmp/fp.port
//   $ ./flowpulsed --leaves=64 --spines=32 --shard-index=1 --shard-count=4
//
// Run with --help for all flags.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "daemon/engine.h"
#include "daemon/server.h"
#include "flowpulse/detector.h"

using namespace flowpulse;

namespace {

struct DaemonOptions {
  daemon::ServerConfig server{};
  net::TopologyInfo topo{};
  std::uint16_t job = 0;
  std::string detector = "streaming";  // streaming | threshold
  double threshold = 0.01;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  bool help = false;
  bool bad = false;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

template <typename T>
bool parse_num(const char* arg, const char* name, T* out) {
  std::string s;
  if (!parse_flag(arg, name, &s)) return false;
  *out = static_cast<T>(std::strtod(s.c_str(), nullptr));
  return true;
}

DaemonOptions parse(int argc, char** argv) {
  DaemonOptions o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      o.help = true;
    } else if (parse_num(a, "--port", &o.server.port) ||
               parse_flag(a, "--bind", &o.server.bind_address) ||
               parse_flag(a, "--port-file", &o.server.port_file) ||
               parse_num(a, "--max-connections", &o.server.max_connections) ||
               parse_num(a, "--leaves", &o.topo.leaves) ||
               parse_num(a, "--spines", &o.topo.spines) ||
               parse_num(a, "--hosts-per-leaf", &o.topo.hosts_per_leaf) ||
               parse_num(a, "--parallel", &o.topo.parallel) ||
               parse_num(a, "--job", &o.job) || parse_flag(a, "--detector", &o.detector) ||
               parse_num(a, "--threshold", &o.threshold) ||
               parse_num(a, "--shard-index", &o.shard_index) ||
               parse_num(a, "--shard-count", &o.shard_count)) {
      // parsed
    } else {
      std::fprintf(stderr, "flowpulsed: unknown flag '%s' (try --help)\n", a);
      o.bad = true;
    }
  }
  return o;
}

void usage() {
  std::puts(
      "flowpulsed -- FlowPulse online detection daemon\n"
      "  --port=N             TCP listen port (0 = ephemeral; default 7117)\n"
      "  --bind=ADDR          bind address (default 127.0.0.1)\n"
      "  --port-file=PATH     write the bound port here after listen()\n"
      "  --max-connections=N  connection cap (default 1024)\n"
      "  --leaves=N --spines=N --hosts-per-leaf=N --parallel=N\n"
      "                       fabric shape (must match clients' HELLO)\n"
      "  --job=N              monitored job id (default 0)\n"
      "  --detector=KIND      streaming | threshold (default streaming)\n"
      "  --threshold=F        relative-deviation threshold (default 0.01)\n"
      "  --shard-index=I --shard-count=N\n"
      "                       cluster mode: own leaves [I*L/N, (I+1)*L/N)");
}

// detlint: ok(mutable-global): signal-handler bridge — written once in
// main() before signals are installed, read only by on_signal(); POSIX
// signal delivery is the one consumer a member cannot serve
daemon::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  const DaemonOptions o = parse(argc, argv);
  if (o.help) {
    usage();
    return 0;
  }
  if (o.bad) return 2;
  if (o.shard_count == 0 || o.shard_index >= o.shard_count) {
    std::fprintf(stderr, "flowpulsed: --shard-index must be < --shard-count\n");
    return 2;
  }
  if (o.detector != "streaming" && o.detector != "threshold") {
    std::fprintf(stderr, "flowpulsed: --detector must be streaming|threshold\n");
    return 2;
  }

  daemon::EngineConfig engine_config;
  engine_config.topo = o.topo;
  engine_config.system.job = o.job;
  engine_config.system.threshold = o.threshold;
  engine_config.system.detector =
      o.detector == "streaming" ? fp::DetectorKind::kStreaming : fp::DetectorKind::kThreshold;
  engine_config.shard_index = o.shard_index;
  engine_config.shard_count = o.shard_count;

  daemon::DaemonEngine engine{engine_config};
  daemon::Server server{o.server, engine};
  if (!server.open()) return 1;

  g_server = &server;
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::printf("flowpulsed listening on %s:%u (shard %u/%u, leaves [%u,%u), %ux%u fabric, %s)\n",
              o.server.bind_address.c_str(), server.port(), o.shard_index, o.shard_count,
              engine.owned_first().v(), engine.owned_first().v() + engine.owned_count(),
              o.topo.leaves, o.topo.spines, o.detector.c_str());
  std::fflush(stdout);

  const int rc = server.run();
  g_server = nullptr;
  std::printf("flowpulsed: clean shutdown (%llu counters ingested, %llu alerts)\n",
              static_cast<unsigned long long>(engine.stats().counters_ingested),
              static_cast<unsigned long long>(engine.stats().alerts));
  return rc;
}
