#pragma once

// Recorded counter streams: a file of wire frames — one HELLO (topology +
// job, full-fabric leaf range), an optional PREDICT (the baseline the run
// was armed with), then COUNTERS in (iteration, leaf) order. Exactly what
// flows over a flowpulsed connection, so `flowpulse_cli --dump-counters`
// output replays against a live daemon byte-for-byte (fault onsets
// included), and the load generator needs no format of its own.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "daemon/protocol.h"
#include "flowpulse/port_load.h"

namespace flowpulse::daemon {

struct CounterStream {
  Hello hello;  ///< fabric shape + job; leaf range spans the whole fabric
  std::optional<fp::PortLoadMap> prediction;
  std::vector<fp::IterationRecord> records;  ///< (iteration, leaf) order
};

/// The stream's wire bytes: HELLO, optional PREDICT, then COUNTERS frames.
[[nodiscard]] std::vector<std::uint8_t> encode_stream(const CounterStream& stream);

/// Parse wire bytes (the exact content of a stream file). nullopt (with
/// *err) on a malformed frame or an unexpected frame sequence. This is the
/// whole reader — read_stream_file is this plus one file slurp — so the
/// fuzz_stream harness drives the identical code path without a filesystem.
[[nodiscard]] std::optional<CounterStream> parse_stream(std::span<const std::uint8_t> data,
                                                        std::string* err);

/// Serialize to `path` as raw wire frames. False (with *err) on I/O error.
[[nodiscard]] bool write_stream_file(const std::string& path, const CounterStream& stream,
                                     std::string* err);

/// Parse a stream file. nullopt (with *err) on I/O error, malformed frame,
/// or an unexpected frame sequence.
[[nodiscard]] std::optional<CounterStream> read_stream_file(const std::string& path,
                                                            std::string* err);

/// Canonical (iteration, leaf) order for dumped records.
void sort_records(std::vector<fp::IterationRecord>& records);

}  // namespace flowpulse::daemon
