#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "flowpulse/detector.h"
#include "flowpulse/system.h"
#include "net/routing.h"
#include "net/types.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace flowpulse::ctrl {

/// Closed-loop mitigation policy. The detection threshold the controller
/// judges iterations by defaults to the attached detector's (threshold <= 0
/// means "inherit on attach").
///
/// The loop, per suspect (leaf, uplink):
///
///   Healthy --K alerted iters--> quarantine + re-baseline --> Probation
///   Probation --P clean iters--> Confirmed       (fault contained)
///   Probation --K dirty iters--> restore + re-baseline      (misfire:
///                                quarantine cured nothing — false positive)
///   Confirmed --R iters--> trial restore + re-baseline --> RestoreProbation
///   RestoreProbation --P clean iters--> Healthy   (link healed / transient)
///   RestoreProbation --K alerted iters--> re-quarantine      (relapse)
///
/// Relapses beyond `max_strikes` make the quarantine permanent (no more
/// trial restores); misfires beyond `max_strikes` ban the link from further
/// quarantines (churn guard for a threshold set below the noise floor).
struct MitigationPolicy {
  bool enabled = false;
  /// Deviation threshold for probation judgement; <= 0 inherits the
  /// detector's threshold when attach()ed to a FlowPulseSystem.
  double threshold = 0.0;
  /// K: consecutive alerted iterations implicating the same (leaf, uplink)
  /// before the controller acts — debounce against one-iteration blips.
  std::uint32_t debounce_iterations = 2;
  /// Iterations after a routing change whose measurements are discarded:
  /// traffic already sprayed under the old routing contaminates them.
  std::uint32_t settle_iterations = 1;
  /// P: clean iterations that confirm a quarantine (or a restore).
  std::uint32_t probation_iterations = 2;
  /// R: confirmed-quarantine iterations before the controller trial-restores
  /// the link to see whether it healed (flapping cables). 0 = one-shot
  /// quarantine, never probe.
  std::uint32_t restore_probe_after = 0;
  /// Relapse / misfire budget per link before the state is frozen.
  std::uint32_t max_strikes = 3;
  /// Never quarantine a link if doing so would leave its leaf with fewer
  /// healthy uplinks than this (don't let mitigation partition the fabric).
  std::uint32_t min_healthy_uplinks = 1;
  /// Reports expected per iteration before it is judged complete;
  /// 0 = one per leaf (every leaf monitors, the paper's deployment).
  std::uint32_t reports_per_iteration = 0;
};

/// One control-plane action taken by the controller, for the recovery
/// timeline and operator-facing reports.
struct MitigationEvent {
  enum class Kind : std::uint8_t {
    kQuarantine,  ///< uplink pushed into RoutingState as known-failed
    kRestore,     ///< uplink returned to service
    kConfirm,     ///< probation closed clean — current state verified
  };
  Kind kind = Kind::kQuarantine;
  sim::Time time = sim::Time::zero();
  net::IterIndex iteration{};  ///< completed iteration that triggered it
  net::LeafId leaf{};
  net::UplinkIndex uplink{};
  /// Static string: "debounce" / "relapse" (quarantines), "ineffective" /
  /// "probe" (restores), "quarantine" / "restore" / "permanent" (confirms).
  const char* reason = "";
};

/// Recovery milestones of the run's *first* mitigated fault — the
/// time-to-detect / time-to-mitigate / time-to-recover triple the recovery
/// bench reports (times are absolute; subtract the fault onset).
struct RecoveryTimeline {
  sim::Time first_alert = sim::Time::max();       ///< detect
  sim::Time first_quarantine = sim::Time::max();  ///< mitigate
  sim::Time recovered = sim::Time::max();         ///< first clean post-settle iter
  net::IterIndex first_alert_iteration{};
  net::IterIndex first_quarantine_iteration{};
  [[nodiscard]] bool detected() const { return first_alert != sim::Time::max(); }
  [[nodiscard]] bool mitigated() const { return first_quarantine != sim::Time::max(); }
  [[nodiscard]] bool has_recovered() const { return recovered != sim::Time::max(); }
};

/// The fabric controller that closes the paper's loop: FlowPulse detects and
/// localizes a silent fault; this controller then treats it like a *known*
/// fault — exactly what the analytical model d/(s−f) already absorbs.
///
/// It subscribes to per-iteration DetectionResults (FlowPulseSystem alert
/// hook), debounces, quarantines the suspect uplink by pushing it into
/// net::RoutingState mid-run (APS stops spraying onto it at the very next
/// packet), re-baselines the load model by re-running the analytical
/// prediction over the updated failed set, and verifies through probation
/// windows — restoring links whose quarantine proved ineffective (false
/// positives) and trial-restoring confirmed quarantines to catch links that
/// healed (flaps). All actions are appended to an event log.
///
/// Localization → suspect link: a kLocalLink alert at leaf L port u blames
/// (L, u); a kRemoteLinks alert blames (sender, u) for each suspect sender —
/// the sender-side leaf↔spine link of the same virtual spine.
class MitigationController {
 public:
  /// Recompute + install the load model for the current RoutingState. The
  /// controller calls it after every set_known_failed it performs.
  using Rebaseline = std::function<void()>;

  MitigationController(sim::Simulator& sim, net::RoutingState& routing,
                       MitigationPolicy policy);

  void set_rebaseline(Rebaseline fn) { rebaseline_ = std::move(fn); }

  /// Subscribe to `system`'s per-iteration results. Inherits the detection
  /// threshold if the policy left it unset. kLearned systems never fire the
  /// hook, so attaching to one is a no-op by construction.
  void attach(fp::FlowPulseSystem& system);

  /// Feed one evaluated (leaf × iteration) check. Called by the alert hook;
  /// public so tests and custom deployments can drive the state machine
  /// directly.
  void observe(const fp::DetectionResult& result);

  [[nodiscard]] const std::vector<MitigationEvent>& events() const { return events_; }
  [[nodiscard]] const RecoveryTimeline& timeline() const { return timeline_; }
  [[nodiscard]] const MitigationPolicy& policy() const { return policy_; }
  /// Links currently quarantined by this controller (not pre-existing ones).
  [[nodiscard]] std::uint32_t active_quarantines() const;
  [[nodiscard]] bool quarantined(net::LeafId leaf, net::UplinkIndex uplink) const;

  /// True while the controller needs packet-fidelity iterations to make a
  /// sound judgement — the hybrid engine's demotion trigger. Holds while:
  ///  * any link is in a probation window (quarantine or restore being
  ///    verified against real traffic),
  ///  * the settle window after a routing action is still discarding
  ///    iterations (the next judged iteration must be a real one),
  ///  * a confirmed quarantine will trial-restore within the next completed
  ///    iteration (the probe must measure real traffic on the link).
  [[nodiscard]] bool fidelity_hold() const;

 private:
  enum class LinkState : std::uint8_t {
    kHealthy,           ///< in service, counting alert streaks
    kProbation,         ///< quarantined, verifying the alerts stop
    kQuarantined,       ///< quarantine confirmed; may trial-restore later
    kRestoreProbation,  ///< trial-restored, verifying the alerts stay away
  };

  struct LinkCtl {
    LinkState state = LinkState::kHealthy;
    std::uint32_t streak = 0;       ///< consecutive implicated iterations
    std::uint32_t clean = 0;        ///< consecutive clean iterations
    std::uint32_t since_confirm = 0;
    std::uint32_t relapses = 0;     ///< restore probes that failed
    std::uint32_t misfires = 0;     ///< quarantines that cured nothing
  };

  struct IterAgg {
    std::uint32_t reports = 0;
    double max_dev = 0.0;
    std::vector<net::LinkId> suspects;  ///< deduplicated shortfall culprits
  };

  void on_iteration_complete(net::IterIndex iteration, const IterAgg& agg);
  void step_link(net::LinkId key, LinkCtl& ctl, bool implicated, bool iteration_clean,
                 net::IterIndex iteration);
  [[nodiscard]] bool quarantine_allowed(net::LinkId key) const;
  void set_quarantined(net::LinkId key, bool failed, net::IterIndex iteration,
                       MitigationEvent::Kind kind, const char* reason);
  void confirm(net::LinkId key, net::IterIndex iteration, const char* reason);

  sim::Simulator& sim_;
  net::RoutingState& routing_;
  MitigationPolicy policy_;
  Rebaseline rebaseline_;
  std::map<net::LinkId, LinkCtl> links_;
  std::map<net::IterIndex, IterAgg> pending_;  ///< iteration → partial aggregate
  std::vector<MitigationEvent> events_;
  RecoveryTimeline timeline_;
  /// Every routing action contaminates the next iteration(s) fabric-wide:
  /// in-flight traffic was sprayed under the old routing but is judged
  /// against the re-baselined prediction. Iterations <= this are discarded
  /// for ALL links — a per-link window would let one link's action trick
  /// another link's debounce. -1 = nothing skipped yet.
  std::int64_t settle_until_ = -1;
  /// Last iteration index whose reports all arrived; -1 before the first.
  std::int64_t last_completed_ = -1;
};

}  // namespace flowpulse::ctrl
