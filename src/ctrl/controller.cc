#include "ctrl/controller.h"

#include <algorithm>

namespace flowpulse::ctrl {

MitigationController::MitigationController(sim::Simulator& sim, net::RoutingState& routing,
                                           MitigationPolicy policy)
    : sim_{sim}, routing_{routing}, policy_{policy} {}

void MitigationController::attach(fp::FlowPulseSystem& system) {
  if (policy_.threshold <= 0.0) policy_.threshold = system.config().threshold;
  system.set_alert_hook([this](const fp::DetectionResult& r) { observe(r); });
}

void MitigationController::observe(const fp::DetectionResult& result) {
  IterAgg& agg = pending_[result.iteration];
  ++agg.reports;
  agg.max_dev = std::max(agg.max_dev, result.max_rel_dev);
  for (const fp::PortAlert& a : result.alerts) {
    // Shortfall alerts implicate a link; surplus is the shortfall's traffic
    // resurfacing elsewhere (retransmissions) and names no culprit.
    if (a.observed >= a.predicted) continue;
    auto implicate = [&agg](net::LeafId leaf, net::UplinkIndex uplink) {
      const net::LinkId key = net::LinkId::of(leaf, uplink);
      if (std::find(agg.suspects.begin(), agg.suspects.end(), key) == agg.suspects.end()) {
        agg.suspects.push_back(key);
      }
    };
    switch (a.localization.verdict) {
      case fp::Localization::Verdict::kLocalLink:
      case fp::Localization::Verdict::kUnknown:
        implicate(result.leaf, a.uplink);
        break;
      case fp::Localization::Verdict::kRemoteLinks:
        // The missing senders' traffic died on THEIR leaf↔spine link of the
        // same virtual spine (uplink index is global across leaves).
        for (const net::LeafId sender : a.localization.suspect_senders) {
          implicate(sender, a.uplink);
        }
        break;
    }
  }
  const std::uint32_t expected =
      policy_.reports_per_iteration > 0 ? policy_.reports_per_iteration : routing_.leaves();
  if (agg.reports >= expected) {
    // Per-leaf results arrive in iteration order, so completions do too.
    const IterAgg done = std::move(agg);
    pending_.erase(result.iteration);
    on_iteration_complete(result.iteration, done);
  }
}

void MitigationController::on_iteration_complete(net::IterIndex iteration,
                                                 const IterAgg& agg) {
  last_completed_ = static_cast<std::int64_t>(iteration.v());
  const bool clean = agg.max_dev <= policy_.threshold;
  if (!clean && !timeline_.detected()) {
    timeline_.first_alert = sim_.now();
    timeline_.first_alert_iteration = iteration;
  }
  // Contaminated by a routing action — discard for every link (see
  // settle_until_): judging these would read the transition itself as a
  // fault or a recovery.
  if (static_cast<std::int64_t>(iteration.v()) <= settle_until_) return;
  if (timeline_.mitigated() && !timeline_.has_recovered() && clean) {
    timeline_.recovered = sim_.now();
  }
  for (const net::LinkId key : agg.suspects) links_.try_emplace(key);
  for (auto& [key, ctl] : links_) {
    const bool implicated =
        std::find(agg.suspects.begin(), agg.suspects.end(), key) != agg.suspects.end();
    step_link(key, ctl, implicated, clean, iteration);
  }
}

void MitigationController::step_link(net::LinkId key, LinkCtl& ctl, bool implicated,
                                     bool iteration_clean, net::IterIndex iteration) {
  switch (ctl.state) {
    case LinkState::kHealthy:
      if (!implicated) {
        ctl.streak = 0;
        break;
      }
      if (++ctl.streak >= policy_.debounce_iterations &&
          ctl.misfires < policy_.max_strikes && quarantine_allowed(key)) {
        set_quarantined(key, true, iteration, MitigationEvent::Kind::kQuarantine, "debounce");
        if (!timeline_.mitigated()) {
          timeline_.first_quarantine = sim_.now();
          timeline_.first_quarantine_iteration = iteration;
        }
        ctl.state = LinkState::kProbation;
        ctl.streak = 0;
        ctl.clean = 0;
      }
      break;

    case LinkState::kProbation:
      // Quarantined; the link itself carries no traffic anymore, so the
      // verdict rides on the fabric-wide deviation: still hot means the
      // quarantine cured nothing (wrong target / threshold under the noise
      // floor) and the link goes back into service.
      if (iteration_clean) {
        ctl.streak = 0;
        if (++ctl.clean >= policy_.probation_iterations) {
          confirm(key, iteration, "quarantine");
          ctl.state = LinkState::kQuarantined;
          ctl.since_confirm = 0;
        }
      } else {
        ctl.clean = 0;
        if (++ctl.streak >= policy_.debounce_iterations) {
          ++ctl.misfires;
          set_quarantined(key, false, iteration, MitigationEvent::Kind::kRestore,
                          "ineffective");
          ctl.state = LinkState::kHealthy;
          ctl.streak = 0;
        }
      }
      break;

    case LinkState::kQuarantined:
      if (policy_.restore_probe_after == 0 || ctl.relapses >= policy_.max_strikes) break;
      if (++ctl.since_confirm >= policy_.restore_probe_after) {
        set_quarantined(key, false, iteration, MitigationEvent::Kind::kRestore, "probe");
        ctl.state = LinkState::kRestoreProbation;
        ctl.streak = 0;
        ctl.clean = 0;
      }
      break;

    case LinkState::kRestoreProbation:
      if (implicated) {
        ctl.clean = 0;
        if (++ctl.streak >= policy_.debounce_iterations) {
          ++ctl.relapses;
          set_quarantined(key, true, iteration, MitigationEvent::Kind::kQuarantine,
                          "relapse");
          if (ctl.relapses >= policy_.max_strikes) {
            confirm(key, iteration, "permanent");
            ctl.state = LinkState::kQuarantined;
            ctl.since_confirm = 0;
          } else {
            ctl.state = LinkState::kProbation;
          }
          ctl.streak = 0;
          ctl.clean = 0;
        }
      } else {
        ctl.streak = 0;
        if (++ctl.clean >= policy_.probation_iterations) {
          confirm(key, iteration, "restore");
          ctl.state = LinkState::kHealthy;
          ctl.clean = 0;
        }
      }
      break;
  }
}

bool MitigationController::quarantine_allowed(net::LinkId key) const {
  if (routing_.known_failed(key.leaf(), key.uplink())) {
    return false;  // already out of service
  }
  const std::uint32_t healthy =
      routing_.uplinks_per_leaf() - routing_.known_failed_count(key.leaf());
  return healthy > policy_.min_healthy_uplinks;
}

void MitigationController::set_quarantined(net::LinkId key, bool failed,
                                           net::IterIndex iteration,
                                           MitigationEvent::Kind kind, const char* reason) {
  routing_.set_known_failed(key.leaf(), key.uplink(), failed);
  if (rebaseline_) rebaseline_();
  settle_until_ = static_cast<std::int64_t>(iteration.v()) + policy_.settle_iterations;
  events_.push_back({kind, sim_.now(), iteration, key.leaf(), key.uplink(), reason});
  FP_TRACE(sim_, kMitigation, "", key.leaf().v(), key.uplink().v(), iteration.v(),
           static_cast<double>(static_cast<int>(kind)), reason);
}

void MitigationController::confirm(net::LinkId key, net::IterIndex iteration,
                                   const char* reason) {
  events_.push_back({MitigationEvent::Kind::kConfirm, sim_.now(), iteration, key.leaf(),
                     key.uplink(), reason});
  FP_TRACE(sim_, kMitigation, "", key.leaf().v(), key.uplink().v(), iteration.v(),
           static_cast<double>(static_cast<int>(MitigationEvent::Kind::kConfirm)), reason);
}

bool MitigationController::fidelity_hold() const {
  if (last_completed_ <= settle_until_ && settle_until_ >= 0) return true;
  for (const auto& [key, ctl] : links_) {
    switch (ctl.state) {
      case LinkState::kProbation:
      case LinkState::kRestoreProbation:
        return true;
      case LinkState::kQuarantined:
        // Trial restore fires when since_confirm reaches restore_probe_after;
        // the iteration that will be judged right after it must be real.
        if (policy_.restore_probe_after > 0 && ctl.relapses < policy_.max_strikes &&
            ctl.since_confirm + 1 >= policy_.restore_probe_after) {
          return true;
        }
        break;
      case LinkState::kHealthy:
        break;
    }
  }
  return false;
}

std::uint32_t MitigationController::active_quarantines() const {
  std::uint32_t n = 0;
  for (const auto& [key, ctl] : links_) {
    if (ctl.state == LinkState::kProbation || ctl.state == LinkState::kQuarantined) ++n;
  }
  return n;
}

bool MitigationController::quarantined(net::LeafId leaf, net::UplinkIndex uplink) const {
  const auto it = links_.find(net::LinkId::of(leaf, uplink));
  if (it == links_.end()) return false;
  return it->second.state == LinkState::kProbation ||
         it->second.state == LinkState::kQuarantined;
}

}  // namespace flowpulse::ctrl
