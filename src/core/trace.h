#pragma once

// The trace instrumentation core: event taxonomy, sink interface, and the
// FP_TRACE emission macro. Split out of obs/trace.h so that sim — whose
// event lanes carry the sink pointer the macro reads — can depend on it
// without inverting the module DAG (sim may not include obs; the fplint
// layering rule enforces this). The recorders (FlightRecorder,
// ConcurrentRecorder), dump/config types, and env plumbing stay in
// obs/trace.h, which re-exports everything here under the obs:: names all
// instrumented layers use.
//
// Everything is header-only and compile-time gated: in the default build
// FP_TRACE — arguments included — vanishes at preprocessing time, so
// disabled call sites cost nothing and pull in no symbols (asserted by
// the trace_zero_cost_symbols test).

#include <cstddef>
#include <cstdint>

#include "core/time.h"

#if defined(FLOWPULSE_TRACE) && FLOWPULSE_TRACE
#define FP_TRACE_ENABLED 1
#else
#define FP_TRACE_ENABLED 0
#endif

namespace flowpulse::core {

/// Runtime verbosity. kOff keeps even a trace-enabled build silent (the
/// emit path is one pointer test); kEvents records the failure-relevant
/// event kinds; kVerbose adds per-iteration and run-lifecycle markers.
enum class TraceLevel : std::uint8_t {
  kOff = 0,
  kEvents = 1,
  kVerbose = 2,
};

/// Typed trace events. One enumerator per cause the flight recorder can
/// explain; exporters key their naming and pairing rules off this.
enum class EventKind : std::uint8_t {
  kPacketDrop = 0,    ///< net: fault model ate a serialized packet
  kPfcPause = 1,      ///< net: ingress class crossed XOFF, upstream paused
  kPfcResume = 2,     ///< net: ingress class drained below XON
  kRtoFire = 3,       ///< transport: retransmission timer fired
  kDetectorFlag = 4,  ///< flowpulse: port deviation beyond threshold
  kLocalization = 5,  ///< flowpulse: verdict attached to a flagged port
  kMitigation = 6,    ///< ctrl: quarantine / restore / confirm action
  kIteration = 7,     ///< flowpulse: monitor finalized an iteration
  kRunStart = 8,      ///< sim: event loop entered
  kRunStop = 9,       ///< sim: event loop drained / stopped
  kFidelity = 10,     ///< sim: hybrid engine switched fidelity mode
};
constexpr int kNumEventKinds = 11;

/// Verbosity tier an event kind belongs to.
[[nodiscard]] constexpr TraceLevel level_of(EventKind k) {
  switch (k) {
    case EventKind::kIteration:
    case EventKind::kRunStart:
    case EventKind::kRunStop:
      return TraceLevel::kVerbose;
    default:
      return TraceLevel::kEvents;
  }
}

/// Stable lowercase name for exporters and tests.
[[nodiscard]] constexpr const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kPacketDrop:
      return "drop";
    case EventKind::kPfcPause:
      return "pfc_pause";
    case EventKind::kPfcResume:
      return "pfc_resume";
    case EventKind::kRtoFire:
      return "rto";
    case EventKind::kDetectorFlag:
      return "detector_flag";
    case EventKind::kLocalization:
      return "localization";
    case EventKind::kMitigation:
      return "mitigation";
    case EventKind::kIteration:
      return "iteration";
    case EventKind::kRunStart:
      return "run_start";
    case EventKind::kRunStop:
      return "run_stop";
    case EventKind::kFidelity:
      return "fidelity";
  }
  return "unknown";
}

/// One recorded event. Fixed-size POD — recording is a bounded copy into a
/// preallocated ring slot, never an allocation. The per-kind meaning of the
/// generic fields (the event taxonomy) is documented in DESIGN.md
/// "Observability"; `detail` must point at a string with static storage
/// duration (all call sites pass literals or enum-name tables).
struct TraceEvent {
  Time time = Time::zero();
  EventKind kind = EventKind::kPacketDrop;
  std::uint32_t a = 0;       ///< first entity index (leaf / host / in-port)
  std::uint32_t b = 0;       ///< second entity index (uplink / seq / class)
  std::uint64_t value = 0;   ///< bytes / msg id / iteration
  double dval = 0.0;         ///< deviation or other real-valued payload
  const char* detail = "";   ///< static string: reason / verdict / label
  char entity[24] = {};      ///< optional emitter name, bounded copy
};

/// Destination of emitted events. Implementations must make emit() cheap:
/// it sits on simulator hot paths whenever tracing is runtime-enabled.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Level filter, checked by FP_TRACE before building the event.
  [[nodiscard]] bool wants(EventKind k) const { return level_of(k) <= level_; }

  [[nodiscard]] TraceLevel level() const { return level_; }
  void set_level(TraceLevel level) { level_ = level; }

  void emit(EventKind kind, Time t, const char* entity, std::uint32_t a,
            std::uint32_t b, std::uint64_t value, double dval, const char* detail) {
    TraceEvent e;
    e.time = t;
    e.kind = kind;
    e.a = a;
    e.b = b;
    e.value = value;
    e.dval = dval;
    e.detail = detail;
    for (std::size_t i = 0; i + 1 < sizeof(e.entity) && entity[i] != '\0'; ++i) {
      e.entity[i] = entity[i];
    }
    record(e);
  }

 protected:
  virtual void record(const TraceEvent& e) = 0;

 private:
  TraceLevel level_ = TraceLevel::kOff;
};

}  // namespace flowpulse::core

// FP_TRACE(sim, kind, entity, a, b, value, dval, detail)
//
// `sim` is a sim::Simulator (or anything with trace()/now()); `kind` is a
// bare EventKind enumerator name. In the default build the macro —
// arguments included — vanishes at preprocessing time, so disabled call
// sites cost nothing and pull in no symbols. In a trace-enabled build
// the cost is one pointer test when no sink is installed, plus a level
// check when one is.
#if FP_TRACE_ENABLED
#define FP_TRACE(sim_, kind_, entity_, a_, b_, value_, dval_, detail_)              \
  do {                                                                              \
    ::flowpulse::core::TraceSink* fp_trace_sink_ = (sim_).trace();                  \
    if (fp_trace_sink_ != nullptr &&                                                \
        fp_trace_sink_->wants(::flowpulse::core::EventKind::kind_)) {               \
      fp_trace_sink_->emit(::flowpulse::core::EventKind::kind_, (sim_).now(),       \
                           (entity_), (a_), (b_), (value_), (dval_), (detail_));    \
    }                                                                               \
  } while (0)
#else
#define FP_TRACE(...) ((void)0)
#endif
