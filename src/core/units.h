#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

#include "core/time.h"

namespace flowpulse::core {

/// Strong byte count. Only physically meaningful arithmetic compiles:
/// Bytes ± Bytes, Bytes × integer, Bytes / Bytes (a pure ratio), and
/// Bytes / Time → GbitsPerSec. Bytes + Packets is a compile error —
/// exactly the counter mix-up class FlowPulse's per-port attribution
/// cannot afford (the whole signal is byte volume per port per iteration).
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t count) : count_{count} {}

  [[nodiscard]] constexpr std::uint64_t v() const { return count_; }
  /// Lossy crossing into model space (predictions are fractional doubles).
  [[nodiscard]] constexpr double dbl() const { return static_cast<double>(count_); }

  constexpr Bytes& operator+=(Bytes rhs) {
    count_ += rhs.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes rhs) {
    count_ -= rhs.count_;
    return *this;
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes{a.count_ + b.count_}; }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes{a.count_ - b.count_}; }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t k) { return Bytes{a.count_ * k}; }
  friend constexpr Bytes operator*(std::uint64_t k, Bytes a) { return Bytes{a.count_ * k}; }
  friend constexpr Bytes operator/(Bytes a, std::uint64_t k) { return Bytes{a.count_ / k}; }
  /// Dimensionless ratio (e.g. segments = payload / mtu).
  friend constexpr std::uint64_t operator/(Bytes a, Bytes b) { return a.count_ / b.count_; }
  friend constexpr std::uint64_t operator%(Bytes a, Bytes b) { return a.count_ % b.count_; }
  friend constexpr auto operator<=>(Bytes a, Bytes b) = default;

  friend std::ostream& operator<<(std::ostream& os, Bytes b) { return os << b.count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Strong packet count. Deliberately NOT interconvertible with Bytes.
class Packets {
 public:
  constexpr Packets() = default;
  constexpr explicit Packets(std::uint64_t count) : count_{count} {}

  [[nodiscard]] constexpr std::uint64_t v() const { return count_; }
  [[nodiscard]] constexpr double dbl() const { return static_cast<double>(count_); }

  constexpr Packets& operator+=(Packets rhs) {
    count_ += rhs.count_;
    return *this;
  }
  constexpr Packets& operator-=(Packets rhs) {
    count_ -= rhs.count_;
    return *this;
  }
  constexpr Packets& operator++() {
    ++count_;
    return *this;
  }

  friend constexpr Packets operator+(Packets a, Packets b) {
    return Packets{a.count_ + b.count_};
  }
  friend constexpr Packets operator-(Packets a, Packets b) {
    return Packets{a.count_ - b.count_};
  }
  friend constexpr Packets operator*(Packets a, std::uint64_t k) {
    return Packets{a.count_ * k};
  }
  friend constexpr Packets operator*(std::uint64_t k, Packets a) {
    return Packets{a.count_ * k};
  }
  friend constexpr auto operator<=>(Packets a, Packets b) = default;

  friend std::ostream& operator<<(std::ostream& os, Packets p) { return os << p.count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Strong link rate. 1 Gbit/s == 1 bit/ns, so rate and serialization
/// arithmetic against the picosecond core::Time stays exact in the same way
/// the serialization-time math always was.
class GbitsPerSec {
 public:
  constexpr GbitsPerSec() = default;
  constexpr explicit GbitsPerSec(double gbps) : gbps_{gbps} {}

  [[nodiscard]] constexpr double v() const { return gbps_; }

  friend constexpr GbitsPerSec operator*(GbitsPerSec r, double k) {
    return GbitsPerSec{r.gbps_ * k};
  }
  friend constexpr GbitsPerSec operator*(double k, GbitsPerSec r) {
    return GbitsPerSec{r.gbps_ * k};
  }
  friend constexpr double operator/(GbitsPerSec a, GbitsPerSec b) { return a.gbps_ / b.gbps_; }
  friend constexpr auto operator<=>(GbitsPerSec a, GbitsPerSec b) = default;

  friend std::ostream& operator<<(std::ostream& os, GbitsPerSec r) {
    return os << r.gbps_ << "Gbps";
  }

 private:
  double gbps_ = 0.0;
};

/// Average rate of `b` bytes over duration `t`: bits / ns == Gbit/s.
[[nodiscard]] constexpr GbitsPerSec operator/(Bytes b, Time t) {
  return GbitsPerSec{b.dbl() * 8.0 / t.ns()};
}

/// Volume a link of rate `r` moves in `t` (floor to whole bytes).
[[nodiscard]] constexpr Bytes operator*(GbitsPerSec r, Time t) {
  return Bytes{static_cast<std::uint64_t>(r.v() * t.ns() / 8.0)};
}
[[nodiscard]] constexpr Bytes operator*(Time t, GbitsPerSec r) { return r * t; }

/// Time to serialize `b` on a link of rate `r` — the strong-typed face of
/// the raw core::detail::serialization_time math, and the only sanctioned
/// way to reach it.
[[nodiscard]] constexpr Time serialization_time(Bytes b, GbitsPerSec r) {
  // detlint: ok(raw-serialization-time): the unit layer's single blessed
  // call into the raw-scalar detail math
  return detail::serialization_time(b.v(), r.v());
}

}  // namespace flowpulse::core
