#pragma once

#include <cstdint>
#include <limits>
#include <ostream>

namespace flowpulse::core {

/// Simulated time. Strong type over an integer picosecond count so that
/// bandwidth-delay arithmetic at 400 Gbps+ stays exact (1 byte at 400 Gbps
/// serializes in 20 ps). Signed so durations subtract safely.
///
/// Lives in core/ (the bottom of the module DAG) because every layer — the
/// units in core/units.h included — does time arithmetic; sim/time.h
/// re-exports it under the historical sim::Time spelling.
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time picoseconds(std::int64_t ps) { return Time{ps}; }
  [[nodiscard]] static constexpr Time nanoseconds(std::int64_t ns) { return Time{ns * 1'000}; }
  [[nodiscard]] static constexpr Time microseconds(std::int64_t us) { return Time{us * 1'000'000}; }
  [[nodiscard]] static constexpr Time milliseconds(std::int64_t ms) { return Time{ms * 1'000'000'000}; }
  [[nodiscard]] static constexpr Time seconds(std::int64_t s) { return Time{s * 1'000'000'000'000}; }
  [[nodiscard]] static constexpr Time max() { return Time{std::numeric_limits<std::int64_t>::max()}; }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }

  [[nodiscard]] constexpr std::int64_t ps() const { return ps_; }
  [[nodiscard]] constexpr double ns() const { return static_cast<double>(ps_) / 1e3; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ps_) / 1e6; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ps_) / 1e9; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ps_) / 1e12; }

  constexpr Time& operator+=(Time rhs) {
    ps_ += rhs.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ps_ -= rhs.ps_;
    return *this;
  }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ps_ - b.ps_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ps_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ps_ * k}; }
  friend constexpr auto operator<=>(Time a, Time b) = default;

 private:
  constexpr explicit Time(std::int64_t ps) : ps_{ps} {}
  std::int64_t ps_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Time t) { return os << t.ns() << "ns"; }

namespace detail {

/// Raw-scalar core of serialization-time math. NOT for direct use: call
/// core::serialization_time(Bytes, GbitsPerSec) (core/units.h), which is
/// the strong-typed public API — a bare (uint64, double) overload at
/// namespace scope let new code silently bypass the unit layer (enforced
/// by the fplint raw-serialization-time rule and a negcompile snippet).
// detlint: ok(raw-scalar-id): this IS the raw-scalar boundary — the unit
// layer (core/units.h) is its only sanctioned caller
[[nodiscard]] constexpr Time serialization_time(std::uint64_t bytes, double gbps) {
  // ps = bytes * 8 / (gbps * 1e9) * 1e12 = bytes * 8000 / gbps
  return Time::picoseconds(static_cast<std::int64_t>(static_cast<double>(bytes) * 8000.0 / gbps));
}

}  // namespace detail

}  // namespace flowpulse::core
