#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace flowpulse::core {

/// CRTP strong identifier: a distinct, explicitly-constructed wrapper over
/// an integer index. Two ids with different tags never compare, convert, or
/// mix in arithmetic — passing a LeafId where a PortId belongs is a compile
/// error instead of a sanitizer finding (the PR 2 heap-OOB class).
///
/// Design rules:
///  * construction is explicit; the raw value comes back out only through
///    v() — every strong→raw crossing is greppable and intentional;
///  * ordered (operator<=>) so ids key std::map/std::set — the project's
///    determinism lint bans unordered containers, so no std::hash is
///    provided on purpose;
///  * formattable: operator<< prints the bare value, keeping reports
///    bit-identical with the pre-conversion integer output;
///  * ++/-- support natural iteration, and ids<Id>(n) yields the half-open
///    range [Id{0}, Id{n}) for loops over a count.
///
/// Adding a new id is one line (see net/types.h):
///   struct FooId final : core::StrongId<FooId> { using StrongId::StrongId; };
template <class Derived, class Rep = std::uint32_t>
class StrongId {
 public:
  using rep = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_{value} {}

  /// The raw index. Every call site is an intentional strong→raw crossing
  /// (vector subscripts, std::to_string, flattening arithmetic).
  [[nodiscard]] constexpr Rep v() const { return value_; }

  constexpr Derived& operator++() {
    ++value_;
    return self();
  }
  constexpr Derived& operator--() {
    --value_;
    return self();
  }

  friend constexpr bool operator==(const Derived& a, const Derived& b) {
    return a.value_ == b.value_;
  }
  friend constexpr auto operator<=>(const Derived& a, const Derived& b) {
    return a.value_ <=> b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Derived& id) {
    return os << +id.value_;
  }

 private:
  constexpr Derived& self() { return static_cast<Derived&>(*this); }
  Rep value_{};
};

/// Half-open range [Id{0}, Id{n}) — the strong-typed `for (i = 0; i < n;)`.
template <class Id>
class IdRange {
 public:
  class iterator {
   public:
    constexpr explicit iterator(typename Id::rep i) : i_{i} {}
    constexpr Id operator*() const { return Id{i_}; }
    constexpr iterator& operator++() {
      ++i_;
      return *this;
    }
    constexpr bool operator==(const iterator&) const = default;

   private:
    typename Id::rep i_;
  };

  constexpr explicit IdRange(typename Id::rep count) : count_{count} {}
  [[nodiscard]] constexpr iterator begin() const { return iterator{0}; }
  [[nodiscard]] constexpr iterator end() const { return iterator{count_}; }

 private:
  typename Id::rep count_;
};

template <class Id>
[[nodiscard]] constexpr IdRange<Id> ids(typename Id::rep count) {
  return IdRange<Id>{count};
}

}  // namespace flowpulse::core
