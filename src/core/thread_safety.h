#pragma once

// Compile-time race detection: clang thread-safety (capability) annotations
// behind FP_* macros, plus the annotated lock types the rest of the tree
// uses (core::Mutex / core::LockGuard) and a thread-role capability for
// single-owner structures (core::ThreadRole / core::ScopedThreadRole).
//
// Under clang the repo builds with -Wthread-safety -Werror=thread-safety
// (see the root CMakeLists and the CI `thread-safety` leg), so
//
//   * reading or writing an FP_GUARDED_BY member without holding its mutex,
//   * calling an FP_REQUIRES function without the named capability,
//
// are COMPILE ERRORS — the negcompile.guarded_by_unlocked /
// negcompile.requires_unlocked tests prove both diagnostics actually fire.
// Under GCC (which has no capability analysis) every macro expands to
// nothing and core::Mutex degrades to a plain std::mutex wrapper, so the
// annotations are free to apply everywhere.
//
// Conventions (see DESIGN.md "Concurrency safety & fuzzing"):
//   * every mutex is a core::Mutex and is locked through core::LockGuard —
//     std::mutex/std::lock_guard carry no annotations on libstdc++, so a
//     raw one is invisible to the analysis;
//   * data shared across threads is FP_GUARDED_BY its mutex, in a named
//     struct (clang ignores attributes on function-local variables);
//   * structures owned by ONE thread (the flowpulsed event loop) are
//     guarded by a core::ThreadRole capability instead of a lock: members
//     are FP_GUARDED_BY(role), the methods that touch them FP_REQUIRES(role),
//     and the owning thread's entry point holds a core::ScopedThreadRole.
//     The role costs nothing at runtime; it exists so a second thread
//     calling into single-owner state is a compile error, not a tsan find.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FP_THREAD_SAFETY_ENABLED 1
#endif
#endif
#ifndef FP_THREAD_SAFETY_ENABLED
#define FP_THREAD_SAFETY_ENABLED 0
#endif

#if FP_THREAD_SAFETY_ENABLED
#define FP_TS_ATTR(x) __attribute__((x))
#else
#define FP_TS_ATTR(x)
#endif

/// Class attribute: instances are capabilities (mutexes, thread roles).
#define FP_CAPABILITY(name) FP_TS_ATTR(capability(name))
/// Class attribute: RAII objects that acquire on construction, release on
/// destruction (core::LockGuard, core::ScopedThreadRole).
#define FP_SCOPED_CAPABILITY FP_TS_ATTR(scoped_lockable)
/// Member attribute: may only be touched while holding `x`.
#define FP_GUARDED_BY(x) FP_TS_ATTR(guarded_by(x))
/// Member attribute: the pointee may only be touched while holding `x`.
#define FP_PT_GUARDED_BY(x) FP_TS_ATTR(pt_guarded_by(x))
/// Function attribute: caller must hold `...` exclusively.
#define FP_REQUIRES(...) FP_TS_ATTR(requires_capability(__VA_ARGS__))
/// Function attribute: caller must hold `...` at least shared.
#define FP_REQUIRES_SHARED(...) FP_TS_ATTR(requires_shared_capability(__VA_ARGS__))
/// Function attribute: acquires `...` (held on return).
#define FP_ACQUIRE(...) FP_TS_ATTR(acquire_capability(__VA_ARGS__))
/// Function attribute: releases `...` (must be held on entry).
#define FP_RELEASE(...) FP_TS_ATTR(release_capability(__VA_ARGS__))
/// Function attribute: acquires `...` iff the function returns true.
#define FP_TRY_ACQUIRE(...) FP_TS_ATTR(try_acquire_capability(__VA_ARGS__))
/// Function attribute: caller must NOT hold `...` (deadlock guard).
#define FP_EXCLUDES(...) FP_TS_ATTR(locks_excluded(__VA_ARGS__))
/// Function attribute: returns a reference to the capability `x`.
#define FP_RETURN_CAPABILITY(x) FP_TS_ATTR(lock_returned(x))
/// Escape hatch — use only with a comment explaining why the analysis is
/// wrong (e.g. locking a different object's mutex in a merge).
#define FP_NO_THREAD_SAFETY_ANALYSIS FP_TS_ATTR(no_thread_safety_analysis)

#include <mutex>

namespace flowpulse::core {

/// std::mutex with capability annotations. Always lock through LockGuard;
/// lock()/unlock() exist for the rare scope-crossing case and are annotated
/// so misuse is still caught.
class FP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FP_ACQUIRE() { mu_.lock(); }
  void unlock() FP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() FP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated std::lock_guard equivalent over core::Mutex.
class FP_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) FP_ACQUIRE(mu) : mu_{mu} { mu_.lock(); }
  ~LockGuard() FP_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// A zero-size capability standing for "runs on the owning thread". Declare
/// one `inline constexpr ThreadRole kFooLoop{};` per single-owner structure,
/// guard its state with FP_GUARDED_BY(kFooLoop), and hold a ScopedThreadRole
/// in the owning thread's entry point. Purely compile-time: there is
/// nothing to lock, only a proof obligation threaded through signatures.
class FP_CAPABILITY("role") ThreadRole {
 public:
  constexpr ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;
};

/// Asserts (at compile time) that the current scope IS the role's owning
/// thread. Constructing one is the single-owner analogue of taking a lock;
/// the constructor is the place the ownership claim is made, so keep each
/// construction next to a comment saying why the claim holds.
class FP_SCOPED_CAPABILITY ScopedThreadRole {
 public:
  explicit ScopedThreadRole(const ThreadRole& role) FP_ACQUIRE(role) { (void)role; }
  ~ScopedThreadRole() FP_RELEASE() {}
  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;
};

}  // namespace flowpulse::core
