// Collective tests: schedule construction, demand matrices, the runner's
// dependency machinery, data validation of the ring algebra, jitter, and
// iteration tagging.
#include <gtest/gtest.h>

#include <set>

#include "collective/demand_matrix.h"
#include "collective/runner.h"
#include "collective/schedule.h"
#include "exp/scenario.h"
#include "net/fat_tree.h"
#include "sim/simulator.h"
#include "transport/transport_layer.h"

namespace flowpulse::collective {
namespace {

using net::FatTree;
using net::FatTreeConfig;
using net::TopologyInfo;
using sim::Simulator;
using sim::Time;

TEST(ChunkBytes, SplitsExactly) {
  // 10 bytes over 4 chunks: 3,3,2,2.
  EXPECT_EQ(chunk_bytes(core::Bytes{10}, 4, 0), core::Bytes{3});
  EXPECT_EQ(chunk_bytes(core::Bytes{10}, 4, 1), core::Bytes{3});
  EXPECT_EQ(chunk_bytes(core::Bytes{10}, 4, 2), core::Bytes{2});
  EXPECT_EQ(chunk_bytes(core::Bytes{10}, 4, 3), core::Bytes{2});
  core::Bytes sum{};
  for (std::uint32_t c = 0; c < 7; ++c) sum += chunk_bytes(core::Bytes{1000003}, 7, c);
  EXPECT_EQ(sum, core::Bytes{1000003});
}

TEST(RingSchedule, AllReduceShape) {
  const CommSchedule s = ring_all_reduce(8, core::Bytes{8192});
  EXPECT_EQ(s.stages.size(), 14u);  // 2(N-1)
  EXPECT_EQ(s.ranks, 8u);
  for (const Stage& st : s.stages) {
    EXPECT_EQ(st.sends.size(), 8u);  // every rank sends every stage
    for (const Send& snd : st.sends) {
      EXPECT_EQ(snd.dst_rank, (snd.src_rank + 1) % 8);  // ring successor
      EXPECT_EQ(snd.bytes, core::Bytes{1024});
    }
  }
  // First 7 stages reduce, last 7 gather.
  for (std::size_t k = 0; k < 7; ++k) EXPECT_TRUE(s.stages[k].reduce);
  for (std::size_t k = 7; k < 14; ++k) EXPECT_FALSE(s.stages[k].reduce);
}

TEST(RingSchedule, ReduceScatterIs31StagesFor32Ranks) {
  // The paper's §6 workload: a 31-stage Ring-AllReduce on 32 nodes.
  const CommSchedule s = ring_reduce_scatter(32, core::Bytes{32 << 20});
  EXPECT_EQ(s.stages.size(), 31u);
  // Each of the 32 ranks sends one 1-MiB chunk per stage.
  EXPECT_EQ(s.wire_payload_bytes(), core::Bytes{31ull * 32ull * ((32ull << 20) / 32ull)});
}

TEST(RingSchedule, EachRankReceivesEveryChunkOnceInRs) {
  const CommSchedule s = ring_reduce_scatter(6, core::Bytes{6000});
  for (std::uint32_t r = 0; r < 6; ++r) {
    std::set<std::uint32_t> chunks;
    for (const Stage& st : s.stages) {
      for (const Send& snd : st.sends) {
        if (snd.dst_rank == r) EXPECT_TRUE(chunks.insert(snd.chunk).second);
      }
    }
    EXPECT_EQ(chunks.size(), 5u);  // all but its own final chunk
  }
}

TEST(RingSchedule, TinyCollectiveSkipsEmptyChunks) {
  // 3 bytes over 8 ranks: chunks 3..7 are empty and must not emit sends.
  const CommSchedule s = ring_all_reduce(8, core::Bytes{3});
  for (const Stage& st : s.stages) {
    for (const Send& snd : st.sends) EXPECT_GT(snd.bytes, core::Bytes{0});
  }
  EXPECT_EQ(s.wire_payload_bytes(), core::Bytes{3 * 7 * 2});
}

TEST(AllToAll, UniformPairs) {
  const CommSchedule s = all_to_all(5, core::Bytes{100});
  ASSERT_EQ(s.stages.size(), 1u);
  EXPECT_EQ(s.stages[0].sends.size(), 20u);
  EXPECT_EQ(s.total_bytes, core::Bytes{2000});
}

TEST(AllToAll, RandomDemandWithinBounds) {
  sim::Rng rng{5};
  const CommSchedule s = all_to_all_random(4, core::Bytes{50}, core::Bytes{150}, rng);
  for (const Send& snd : s.stages[0].sends) {
    EXPECT_GE(snd.bytes, core::Bytes{50});
    EXPECT_LE(snd.bytes, core::Bytes{150});
  }
}

TEST(HierarchicalRing, ScheduleShape) {
  // 4 groups of 3 ranks: 1 local-reduce stage, 2(4-1) ring stages over the
  // leaders, 1 local-broadcast stage.
  const CommSchedule s = hierarchical_ring_all_reduce(4, 3, core::Bytes{12000});
  EXPECT_EQ(s.kind, CollectiveKind::kHierarchicalRing);
  EXPECT_EQ(s.ranks, 12u);
  ASSERT_EQ(s.stages.size(), 1u + 6u + 1u);
  // Local reduce: 2 members per group send the full payload to the leader.
  EXPECT_EQ(s.stages.front().sends.size(), 8u);
  EXPECT_TRUE(s.stages.front().reduce);
  for (const Send& snd : s.stages.front().sends) {
    EXPECT_EQ(snd.dst_rank % 3, 0u);
    EXPECT_EQ(snd.src_rank / 3, snd.dst_rank / 3);  // same group
    EXPECT_EQ(snd.bytes, core::Bytes{12000});
  }
  // Ring stages run only between leaders (ranks 0, 3, 6, 9).
  for (std::size_t k = 1; k + 1 < s.stages.size(); ++k) {
    for (const Send& snd : s.stages[k].sends) {
      EXPECT_EQ(snd.src_rank % 3, 0u);
      EXPECT_EQ(snd.dst_rank % 3, 0u);
    }
  }
  // Broadcast mirrors the reduce.
  EXPECT_FALSE(s.stages.back().reduce);
  EXPECT_EQ(s.stages.back().sends.size(), 8u);
}

TEST(HierarchicalRing, SingleMemberGroupsDegenerateToPlainRing) {
  const CommSchedule h = hierarchical_ring_all_reduce(4, 1, core::Bytes{8000});
  const CommSchedule r = ring_all_reduce(4, core::Bytes{8000});
  ASSERT_EQ(h.stages.size(), r.stages.size());
  for (std::size_t k = 0; k < h.stages.size(); ++k) {
    EXPECT_EQ(h.stages[k].sends.size(), r.stages[k].sends.size());
  }
}

TEST(HierarchicalRing, LocalPhasesNeverReachSpines) {
  // 4 leaves x 3 hosts: run the hierarchical collective and verify spine
  // traffic equals the leaders' ring only (the §5.1 locality argument).
  net::FatTreeConfig cfg;
  cfg.shape = TopologyInfo{4, 2, 3, 1};
  Simulator sim{5};
  net::FatTree net{sim, cfg};
  transport::TransportLayer transports{sim, net};

  CollectiveConfig cc;
  for (const net::HostId h : core::ids<net::HostId>(12)) cc.hosts.push_back(h);
  cc.schedule = hierarchical_ring_all_reduce(4, 3, core::Bytes{600 * 1024});
  cc.iterations = 2;
  CollectiveRunner runner{sim, transports, std::move(cc)};
  runner.start();
  sim.run();
  EXPECT_TRUE(runner.finished());

  // Spine-visible payload: leaders' full ring = 2(G-1) x G x B/G per iter.
  const std::uint64_t ring_payload = 2ull * 3ull * 4ull * (600 * 1024 / 4);
  std::uint64_t spine_delivered = 0;
  for (const net::LeafId l : core::ids<net::LeafId>(4)) {
    for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(2)) {
      spine_delivered += net.downlink_counters(l, u).delivered_bytes().v();
    }
  }
  // Wire bytes exceed payload only by per-segment headers (~1.6%); local
  // reduce/broadcast (8 x 600 KiB per iteration) must NOT appear.
  const double per_iter = static_cast<double>(spine_delivered) / 2.0;
  EXPECT_GT(per_iter, ring_payload * 1.0);
  EXPECT_LT(per_iter, ring_payload * 1.05);
}

TEST(DemandMatrix, FromRingSchedule) {
  const CommSchedule s = ring_reduce_scatter(4, core::Bytes{4000});
  const std::vector<net::HostId> hosts{net::HostId{0}, net::HostId{1}, net::HostId{2},
                                       net::HostId{3}};
  const DemandMatrix m = DemandMatrix::from_schedule(s, hosts, 4);
  // Each rank sends 3 chunks of 1000 to its successor.
  EXPECT_EQ(m.at(net::HostId{0}, net::HostId{1}), core::Bytes{3000});
  EXPECT_EQ(m.at(net::HostId{3}, net::HostId{0}), core::Bytes{3000});
  EXPECT_EQ(m.at(net::HostId{0}, net::HostId{2}), core::Bytes{0});
  EXPECT_EQ(m.total(), core::Bytes{12000});
}

TEST(DemandMatrix, RespectsPlacement) {
  const CommSchedule s = ring_reduce_scatter(3, core::Bytes{300});
  const std::vector<net::HostId> hosts{net::HostId{5}, net::HostId{2},
                                       net::HostId{7}};  // non-trivial placement
  const DemandMatrix m = DemandMatrix::from_schedule(s, hosts, 8);
  EXPECT_EQ(m.at(net::HostId{5}, net::HostId{2}), core::Bytes{200});
  EXPECT_EQ(m.at(net::HostId{2}, net::HostId{7}), core::Bytes{200});
  EXPECT_EQ(m.at(net::HostId{7}, net::HostId{5}), core::Bytes{200});
  EXPECT_EQ(m.total(), core::Bytes{600});
}

// ---------------------------------------------------------------------------
// Runner integration
// ---------------------------------------------------------------------------

struct Rig {
  explicit Rig(std::uint32_t leaves = 4, std::uint32_t spines = 2, std::uint64_t seed = 1)
      : sim{seed}, net{sim, config(leaves, spines)}, transports{sim, net} {}
  static FatTreeConfig config(std::uint32_t leaves, std::uint32_t spines) {
    FatTreeConfig cfg;
    cfg.shape = TopologyInfo{leaves, spines, 1, 1};
    return cfg;
  }
  Simulator sim;
  FatTree net;
  transport::TransportLayer transports;
};

CollectiveConfig base_config(std::uint32_t ranks, core::Bytes bytes,
                             std::uint32_t iterations) {
  CollectiveConfig cc;
  for (std::uint32_t r = 0; r < ranks; ++r) cc.hosts.push_back(net::HostId{r});
  cc.schedule = ring_all_reduce(ranks, bytes);
  cc.iterations = iterations;
  cc.validate_data = true;
  return cc;
}

TEST(Runner, CompletesAllIterations) {
  Rig rig;
  CollectiveRunner runner{rig.sim, rig.transports, base_config(4, core::Bytes{64 * 1024}, 3)};
  runner.start();
  rig.sim.run();
  EXPECT_TRUE(runner.finished());
  EXPECT_EQ(runner.completed_iterations(), 3u);
  EXPECT_EQ(runner.iteration_durations().size(), 3u);
}

TEST(Runner, AllReduceProducesCorrectSums) {
  Rig rig;
  CollectiveRunner runner{rig.sim, rig.transports, base_config(4, core::Bytes{64 * 1024}, 2)};
  runner.start();
  rig.sim.run();
  EXPECT_TRUE(runner.data_valid());
}

TEST(Runner, ReduceScatterProducesCorrectSums) {
  Rig rig;
  CollectiveConfig cc = base_config(4, core::Bytes{64 * 1024}, 2);
  cc.schedule = ring_reduce_scatter(4, core::Bytes{64 * 1024});
  CollectiveRunner runner{rig.sim, rig.transports, std::move(cc)};
  runner.start();
  rig.sim.run();
  EXPECT_TRUE(runner.finished());
  EXPECT_TRUE(runner.data_valid());
}

TEST(Runner, SurvivesSilentFaultAndStaysCorrect) {
  Rig rig;
  rig.net.set_link_fault(net::LeafId{1}, net::UplinkIndex{0},
                         net::FaultSpec::random_drop(0.1));
  CollectiveRunner runner{rig.sim, rig.transports, base_config(4, core::Bytes{128 * 1024}, 3)};
  runner.start();
  rig.sim.run();
  EXPECT_TRUE(runner.finished());
  EXPECT_TRUE(runner.data_valid());  // transport reliability shields the app
}

TEST(Runner, JitterDelaysButCompletes) {
  Rig rig;
  CollectiveConfig cc = base_config(4, core::Bytes{64 * 1024}, 3);
  cc.max_jitter = Time::microseconds(5);
  CollectiveRunner runner{rig.sim, rig.transports, std::move(cc)};
  runner.start();
  rig.sim.run();
  EXPECT_TRUE(runner.finished());
  EXPECT_TRUE(runner.data_valid());
}

TEST(Runner, TagsPacketsWithIterationFlowId) {
  Rig rig;
  std::set<net::FlowId> seen;
  rig.net.leaf(net::LeafId{1}).set_spine_ingress_hook([&](net::UplinkIndex, const net::Packet& p) {
    if (p.kind == net::PacketKind::kData) seen.insert(p.flow_id);
  });
  CollectiveConfig cc = base_config(4, core::Bytes{32 * 1024}, 3);
  CollectiveRunner runner{rig.sim, rig.transports, std::move(cc)};
  runner.start();
  rig.sim.run();
  ASSERT_EQ(seen.size(), 3u);
  std::uint32_t iter = 0;
  for (const net::FlowId f : seen) {
    EXPECT_TRUE(net::flowid::is_collective(f));
    EXPECT_EQ(net::flowid::iteration_of(f), net::IterIndex{iter++});
  }
}

TEST(Runner, UntaggedJobProducesNoSentinel) {
  Rig rig;
  bool sentinel_seen = false;
  rig.net.leaf(net::LeafId{1}).set_spine_ingress_hook([&](net::UplinkIndex, const net::Packet& p) {
    if (net::flowid::is_collective(p.flow_id)) sentinel_seen = true;
  });
  CollectiveConfig cc = base_config(4, core::Bytes{32 * 1024}, 2);
  cc.tag_flow = false;
  CollectiveRunner runner{rig.sim, rig.transports, std::move(cc)};
  runner.start();
  rig.sim.run();
  EXPECT_TRUE(runner.finished());
  EXPECT_FALSE(sentinel_seen);
}

TEST(Runner, ComputeGapSeparatesIterations) {
  Rig rig;
  CollectiveConfig cc = base_config(4, core::Bytes{32 * 1024}, 2);
  cc.compute_gap = Time::microseconds(100);
  std::vector<Time> starts;
  CollectiveRunner runner{rig.sim, rig.transports, std::move(cc)};
  runner.add_iteration_hook(
      [&](net::IterIndex, Time start, Time) { starts.push_back(start); });
  runner.start();
  rig.sim.run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_GE(starts[1] - starts[0], Time::microseconds(100));
}

TEST(Runner, TwoParallelJobsShareFabric) {
  Rig rig{8, 4};
  // Job A: measured collective on even hosts. Job B: background on odd.
  CollectiveConfig a;
  a.hosts = {net::HostId{0}, net::HostId{2}, net::HostId{4}, net::HostId{6}};
  a.schedule = ring_all_reduce(4, core::Bytes{64 * 1024});
  a.iterations = 2;
  a.validate_data = true;
  a.job_id = 0;
  CollectiveConfig b;
  b.hosts = {net::HostId{1}, net::HostId{3}, net::HostId{5}, net::HostId{7}};
  b.schedule = ring_all_reduce(4, core::Bytes{64 * 1024});
  b.iterations = 2;
  b.validate_data = true;
  b.job_id = 1;
  b.priority = net::Priority::kBackground;
  b.tag_flow = false;
  CollectiveRunner ra{rig.sim, rig.transports, std::move(a)};
  CollectiveRunner rb{rig.sim, rig.transports, std::move(b)};
  ra.start();
  rb.start();
  rig.sim.run();
  EXPECT_TRUE(ra.finished());
  EXPECT_TRUE(rb.finished());
  EXPECT_TRUE(ra.data_valid());
  EXPECT_TRUE(rb.data_valid());
}

TEST(Runner, DynamicScheduleGeneratorRunsEveryIteration) {
  Rig rig;
  CollectiveConfig cc;
  cc.hosts = {net::HostId{0}, net::HostId{1}, net::HostId{2}, net::HostId{3}};
  cc.iterations = 3;
  cc.schedule_generator = [](std::uint32_t, sim::Rng& rng) {
    return all_to_all_random(4, core::Bytes{1024}, core::Bytes{8192}, rng);
  };
  CollectiveRunner runner{rig.sim, rig.transports, std::move(cc)};
  runner.start();
  rig.sim.run();
  EXPECT_TRUE(runner.finished());
}

class RingSizeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RingSizeTest, AllReduceCorrectAcrossRingSizes) {
  const std::uint32_t ranks = GetParam();
  Rig rig{ranks, ranks / 2, 17};
  CollectiveRunner runner{rig.sim, rig.transports, base_config(ranks, core::Bytes{16 * 1024}, 1)};
  runner.start();
  rig.sim.run();
  EXPECT_TRUE(runner.finished());
  EXPECT_TRUE(runner.data_valid());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSizeTest, ::testing::Values(2, 3, 4, 6, 8, 16));

}  // namespace
}  // namespace flowpulse::collective
