#pragma once

// Canned fixed-seed scenario whose report JSON must stay bit-identical
// across refactors that claim to be behavior-preserving (the strong-type
// conversion's correctness proof). The expected hash below was recorded
// from the pre-conversion tree; any change to it must be justified as an
// intentional behavior change in CHANGES.md.

#include <cstdint>
#include <string>
#include <string_view>

#include "exp/report.h"
#include "exp/scenario.h"

namespace flowpulse::testing {

/// FNV-1a 64-bit over the report text. Stable, dependency-free.
[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// 8 leaves x 4 spines, one known-disconnected uplink, one silent gray
/// downlink, mitigation on: exercises detection, localization, quarantine,
/// re-baselining, and every section of exp::to_json.
[[nodiscard]] inline exp::ScenarioConfig golden_scenario_config() {
  exp::ScenarioConfig cfg;
  cfg.fabric.shape.leaves = 8;
  cfg.fabric.shape.spines = 4;
  cfg.fabric.shape.hosts_per_leaf = 1;
  cfg.fabric.shape.parallel = 1;
  cfg.collective_bytes = 1u << 20;
  cfg.iterations = 8;
  cfg.seed = 42;
  cfg.preexisting.emplace_back(net::LeafId{2}, net::UplinkIndex{1});
  exp::NewFault fault;
  fault.leaf = net::LeafId{5};
  fault.uplink = net::UplinkIndex{3};
  fault.where = exp::NewFault::Where::kDownlink;
  fault.spec = net::FaultSpec::random_drop(0.10);
  cfg.new_faults.push_back(fault);
  cfg.mitigation.enabled = true;
  cfg.mitigation.restore_probe_after = 3;
  return cfg;
}

/// Run the golden scenario and hash its JSON report. wall_seconds is the
/// single wall-clock-derived field; zero it so the hash is reproducible.
[[nodiscard]] inline std::uint64_t golden_report_hash() {
  exp::Scenario scenario{golden_scenario_config()};
  exp::ScenarioResult result = scenario.run();
  result.wall_seconds = 0.0;
  const std::string json =
      exp::to_json(result) + exp::alerts_to_json(result.detections) +
      exp::deviations_to_csv(result) +
      exp::mitigation_to_json(result.mitigation_events, result.recovery);
  return fnv1a64(json);
}

}  // namespace flowpulse::testing
