#pragma once

// Canned fixed-seed scenario whose report JSON must stay bit-identical
// across refactors that claim to be behavior-preserving (the strong-type
// conversion's correctness proof). The expected hash below was recorded
// from the pre-conversion tree; any change to it must be justified as an
// intentional behavior change in CHANGES.md.

#include <cstdint>
#include <string>
#include <string_view>

#include "exp/report.h"
#include "exp/scenario.h"

namespace flowpulse::testing {

/// FNV-1a 64-bit over the report text. Stable, dependency-free.
[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// 8 leaves x 4 spines, one known-disconnected uplink, one silent gray
/// downlink, mitigation on: exercises detection, localization, quarantine,
/// re-baselining, and every section of exp::to_json.
[[nodiscard]] inline exp::ScenarioConfig golden_scenario_config() {
  exp::ScenarioConfig cfg;
  cfg.fabric.shape.leaves = 8;
  cfg.fabric.shape.spines = 4;
  cfg.fabric.shape.hosts_per_leaf = 1;
  cfg.fabric.shape.parallel = 1;
  cfg.collective_bytes = core::Bytes{1u << 20};
  cfg.iterations = 8;
  cfg.seed = 42;
  cfg.preexisting.emplace_back(net::LeafId{2}, net::UplinkIndex{1});
  exp::NewFault fault;
  fault.leaf = net::LeafId{5};
  fault.uplink = net::UplinkIndex{3};
  fault.where = exp::NewFault::Where::kDownlink;
  fault.spec = net::FaultSpec::random_drop(0.10);
  cfg.new_faults.push_back(fault);
  cfg.mitigation.enabled = true;
  cfg.mitigation.restore_probe_after = 3;
  return cfg;
}

/// Multi-lane variant: same fabric split into parallel == 2 lanes, so the
/// uplink→(spine, lane) math, PortLoadMap lane indexing, and the
/// counter_scraper spine_of() alarm naming (string-identical to the uplink
/// index only when parallel == 1) are all on the pinned path. Its hash was
/// recorded once AFTER the strong-type conversion — the parallel>1 alarm
/// names intentionally changed there (see CHANGES.md PR 5) — and must stay
/// bit-identical from then on.
[[nodiscard]] inline exp::ScenarioConfig golden_parallel_scenario_config() {
  exp::ScenarioConfig cfg = golden_scenario_config();
  cfg.fabric.shape.parallel = 2;
  // Uplink indices now address (spine u/2, lane u%2); keep one fault per
  // lane parity so both lanes of a physical spine carry pinned traffic.
  cfg.preexisting.clear();
  cfg.preexisting.emplace_back(net::LeafId{2}, net::UplinkIndex{1});
  cfg.new_faults.clear();
  exp::NewFault fault;
  fault.leaf = net::LeafId{5};
  fault.uplink = net::UplinkIndex{6};
  fault.where = exp::NewFault::Where::kDownlink;
  fault.spec = net::FaultSpec::random_drop(0.10);
  cfg.new_faults.push_back(fault);
  return cfg;
}

/// Run a scenario and hash its JSON report. wall_seconds is the single
/// wall-clock-derived field; zero it so the hash is reproducible.
[[nodiscard]] inline std::uint64_t report_hash(const exp::ScenarioConfig& cfg) {
  exp::Scenario scenario{cfg};
  exp::ScenarioResult result = scenario.run();
  result.wall_seconds = 0.0;
  const std::string json =
      exp::to_json(result) + exp::alerts_to_json(result.detections) +
      exp::deviations_to_csv(result) +
      exp::mitigation_to_json(result.mitigation_events, result.recovery);
  return fnv1a64(json);
}

[[nodiscard]] inline std::uint64_t golden_report_hash() {
  return report_hash(golden_scenario_config());
}

[[nodiscard]] inline std::uint64_t golden_parallel_report_hash() {
  return report_hash(golden_parallel_scenario_config());
}

}  // namespace flowpulse::testing
