// Property-style invariants across the stack, mostly parameterized sweeps:
//  * conservation: predicted load sums to the demand's wire bytes
//  * measurement equals delivery: monitor totals == downlink delivered bytes
//  * detection monotonicity across drop rates
//  * determinism under every spray policy
#include <gtest/gtest.h>

#include <cmath>

#include "core/strong_id.h"
#include "exp/metrics.h"
#include "exp/scenario.h"
#include "flowpulse/analytical_model.h"
#include "net/routing.h"

namespace flowpulse::exp {
namespace {

// ---------------------------------------------------------------------------
// Analytical model conservation: summed over all (leaf, port), the predicted
// load equals the wire bytes of every inter-leaf demand — regardless of the
// known-fault pattern (as long as no pair is fully partitioned).
// ---------------------------------------------------------------------------

class ModelConservation : public ::testing::TestWithParam<int> {};

TEST_P(ModelConservation, PredictionSumsToWireBytes) {
  const int faults = GetParam();
  const net::TopologyInfo info{8, 4, 2, 1};
  net::RoutingState routing{8, 4};
  for (int i = 0; i < faults; ++i) {
    routing.set_known_failed(net::LeafId{static_cast<std::uint32_t>((i * 3) % 8)},
                             net::UplinkIndex{static_cast<std::uint32_t>((i * 2 + 1) % 4)});
  }
  collective::DemandMatrix demand{16};
  double expected_wire = 0.0;
  const fp::AnalyticalModel model{info, 4096, core::Bytes{64}};
  sim::Rng rng{static_cast<std::uint64_t>(faults) + 1};
  for (const net::HostId s : core::ids<net::HostId>(16)) {
    for (const net::HostId d : core::ids<net::HostId>(16)) {
      if (s == d) continue;
      const std::uint64_t bytes = 10'000 + rng.next_below(100'000);
      demand.add(s, d, core::Bytes{bytes});
      if (info.leaf_of(s) != info.leaf_of(d)) {
        expected_wire += model.wire_bytes(core::Bytes{bytes});
      }
    }
  }
  const fp::PortLoadMap pred = model.predict(demand, routing);
  EXPECT_NEAR(pred.total(), expected_wire, expected_wire * 1e-12);
  // Per-sender breakdown must sum to the port totals.
  for (const net::LeafId l : core::ids<net::LeafId>(8)) {
    for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(4)) {
      const fp::PortLoad& load = pred.at(l, u);
      double by_src = 0.0;
      for (const double v : load.by_src_leaf) by_src += v;
      EXPECT_NEAR(by_src, load.total, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FaultCounts, ModelConservation, ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------------
// Monitor vs link counters: everything the monitor counts arrived over the
// spine→leaf links; in a clean tagged-only run the totals match exactly.
// ---------------------------------------------------------------------------

TEST(MeasurementIdentity, MonitorTotalsEqualDownlinkDataDelivery) {
  ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{4, 2, 1, 1};
  cfg.collective_bytes = core::Bytes{4ull << 20};
  cfg.iterations = 2;
  Scenario s{cfg};
  s.run();
  for (const net::LeafId l : core::ids<net::LeafId>(4)) {
    double monitored = 0.0;
    for (const fp::IterationRecord& rec : s.flowpulse().monitor(l).history()) {
      for (const double b : rec.bytes) monitored += b;
    }
    // Downlinks also carry ACKs (kControl, 64 B each), which the monitor
    // filters out; subtract them via packet counts.
    double delivered = 0.0;
    for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(2)) {
      const auto& c = s.fabric().downlink_counters(l, u);
      delivered += c.delivered_bytes().dbl();
    }
    EXPECT_LE(monitored, delivered);
    EXPECT_GT(monitored, delivered * 0.95);  // ACK overhead is ~1.5%
  }
}

// ---------------------------------------------------------------------------
// Detection monotonicity: higher drop rates never produce smaller max
// deviations (averaged over iterations), and are detected at least as often.
// ---------------------------------------------------------------------------

TEST(DetectionMonotonicity, DeviationGrowsWithDropRate) {
  double prev_mean = -1.0;
  for (const double rate : {0.01, 0.03, 0.08, 0.2}) {
    ScenarioConfig cfg;
    cfg.fabric.shape = net::TopologyInfo{8, 4, 1, 1};
    cfg.collective_bytes = core::Bytes{8ull << 20};
    cfg.iterations = 3;
    NewFault f;
    f.leaf = net::LeafId{3};
    f.uplink = net::UplinkIndex{2};
    f.where = NewFault::Where::kBoth;
    f.spec = net::FaultSpec::random_drop(rate);
    cfg.new_faults.push_back(f);
    Scenario s{cfg};
    const ScenarioResult r = s.run();
    double mean = 0.0;
    for (const double d : r.per_iter_max_dev) mean += d;
    mean /= static_cast<double>(r.per_iter_max_dev.size());
    EXPECT_GT(mean, prev_mean) << "rate " << rate;
    prev_mean = mean;
  }
}

// ---------------------------------------------------------------------------
// Determinism under every spray policy: identical seeds → identical runs.
// ---------------------------------------------------------------------------

class PolicyDeterminism : public ::testing::TestWithParam<net::SprayPolicy> {};

TEST_P(PolicyDeterminism, SameSeedSameResult) {
  auto run_once = [&] {
    ScenarioConfig cfg;
    cfg.fabric.shape = net::TopologyInfo{4, 2, 1, 1};
    cfg.fabric.spray = GetParam();
    cfg.collective_bytes = core::Bytes{2ull << 20};
    cfg.iterations = 2;
    cfg.seed = 77;
    cfg.new_faults.push_back(NewFault{net::LeafId{1}, net::UplinkIndex{0}, NewFault::Where::kBoth,
                                      net::FaultSpec::random_drop(0.05)});
    Scenario s{cfg};
    return s.run();
  };
  const ScenarioResult a = run_once();
  const ScenarioResult b = run_once();
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.per_iter_max_dev.size(), b.per_iter_max_dev.size());
  for (std::size_t i = 0; i < a.per_iter_max_dev.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.per_iter_max_dev[i], b.per_iter_max_dev[i]);
  }
  EXPECT_EQ(a.transport_stats.retx_packets_sent, b.transport_stats.retx_packets_sent);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyDeterminism,
                         ::testing::Values(net::SprayPolicy::kAdaptive,
                                           net::SprayPolicy::kRandom,
                                           net::SprayPolicy::kEcmp,
                                           net::SprayPolicy::kFlowlet));

// ---------------------------------------------------------------------------
// Detection sweep: every sufficiently-large drop rate is detected at the
// right port, across seeds (parameterized over rate × seed).
// ---------------------------------------------------------------------------

class DetectionSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(DetectionSweep, FaultyPortAlwaysNamed) {
  const auto [rate, seed] = GetParam();
  ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{8, 4, 1, 1};
  cfg.collective_bytes = core::Bytes{8ull << 20};
  cfg.iterations = 3;
  cfg.seed = seed;
  NewFault f;
  f.leaf = net::LeafId{5};
  f.uplink = net::UplinkIndex{1};
  f.where = NewFault::Where::kBoth;
  f.spec = net::FaultSpec::random_drop(rate);
  cfg.new_faults.push_back(f);
  Scenario s{cfg};
  s.run();
  bool named = false;
  for (const fp::DetectionResult& d : s.flowpulse().faulty_results()) {
    for (const fp::PortAlert& a : d.alerts) {
      if (a.uplink == net::UplinkIndex{1} && a.observed < a.predicted) named = true;
    }
  }
  EXPECT_TRUE(named) << "rate " << rate << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RatesAndSeeds, DetectionSweep,
                         ::testing::Combine(::testing::Values(0.04, 0.08, 0.15),
                                            ::testing::Values(1u, 5u, 11u)));

}  // namespace
}  // namespace flowpulse::exp
