// Hybrid-fidelity engine + O(1) streaming detector.
//
// Three contracts are pinned here:
//  * StreamingDetector is closed-state: judging arbitrarily many iterations
//    allocates nothing after construction, its EWMA/z-score math matches a
//    brute-force reference, and an alerting port freezes its baseline.
//  * Hybrid mode is verdict-equivalent to packet mode: same flagged
//    iteration (±1), same localized link, same final mitigation action — on
//    both golden scenarios and a seeded fault sweep.
//  * Fast-forwarded runs are cheap: flow-dominated runs execute an order of
//    magnitude fewer simulator events than packet runs of the same config.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "flowpulse/fastforward.h"
#include "flowpulse/streaming_detector.h"
#include "golden_scenario.h"

namespace flowpulse {
namespace {

using fp::DetectionResult;
using fp::IterationRecord;
using fp::StreamingConfig;
using fp::StreamingDetector;

// ---------------------------------------------------------------------------
// Streaming detector unit tests
// ---------------------------------------------------------------------------

// One-leaf, two-port record with a single remote sender (leaf 1).
IterationRecord make_record(std::uint32_t iteration, double port0, double port1) {
  IterationRecord rec;
  rec.leaf = net::LeafId{0};
  rec.iteration = net::IterIndex{iteration};
  rec.bytes = {port0, port1};
  rec.by_src = {{0.0, port0}, {0.0, port1}};
  return rec;
}

// Deterministic noise in [-1, 1): tiny xorshift, no <random> involvement.
double noise(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return static_cast<double>(state % 20001) / 10000.0 - 1.0;
}

TEST(StreamingDetector, StateIsConstantSizeAcrossLongRuns) {
  StreamingDetector det{net::LeafId{0}, 2, 2, StreamingConfig{}};
  std::uint64_t s = 42;
  // Absorb warmup, then record the state footprint.
  for (std::uint32_t i = 0; i < 5; ++i) {
    (void)det.observe(make_record(i, 1e6 * (1.0 + 0.002 * noise(s)), 1e6));
  }
  const std::size_t frozen = det.state_bytes();
  for (std::uint32_t i = 5; i < 2000; ++i) {
    (void)det.observe(make_record(i, 1e6 * (1.0 + 0.002 * noise(s)), 1e6));
    ASSERT_EQ(det.state_bytes(), frozen) << "state grew at iteration " << i;
  }
}

TEST(StreamingDetector, EwmaMatchesBruteForceReference) {
  StreamingConfig cfg;
  cfg.alpha = 0.25;
  cfg.warmup_iterations = 1;
  StreamingDetector det{net::LeafId{0}, 2, 2, cfg};
  std::uint64_t s = 7;
  std::vector<double> xs;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const double x = 1e6 * (1.0 + 0.001 * noise(s));
    xs.push_back(x);
    (void)det.observe(make_record(i, x, 1e6));
  }
  // Brute-force EWMA mean: full weighted sum over the entire history.
  double ref_mean = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) {
    ref_mean = ref_mean + cfg.alpha * (xs[i] - ref_mean);
  }
  EXPECT_NEAR(det.mean(net::UplinkIndex{0}), ref_mean, 1e-6 * ref_mean);
  // The EWMA variance of iid noise with sigma must land near sigma^2
  // (West's recursion has expectation sigma^2 in steady state). Loose
  // bounds: the estimate is itself noisy.
  const double sigma = 1e6 * 0.001 * std::sqrt(1.0 / 3.0);  // uniform [-1,1] scaled
  const double est_sigma = std::sqrt(det.variance(net::UplinkIndex{0}));
  EXPECT_GT(est_sigma, 0.2 * sigma);
  EXPECT_LT(est_sigma, 5.0 * sigma);
}

TEST(StreamingDetector, FlagsShortfallWhereWindowedReferenceDoes) {
  StreamingConfig cfg;
  StreamingDetector det{net::LeafId{0}, 2, 2, cfg};
  std::uint64_t s = 3;
  std::vector<double> history;
  // Healthy phase: no alerts once warmed up.
  for (std::uint32_t i = 0; i < 30; ++i) {
    const double x = 1e6 * (1.0 + 0.002 * noise(s));
    history.push_back(x);
    const DetectionResult r = det.observe(make_record(i, x, 1e6));
    EXPECT_FALSE(r.faulty()) << "false alert at healthy iteration " << i;
  }
  // 10% shortfall. Brute-force reference: sample mean/std over the healthy
  // window must put the faulty observation beyond the same z threshold.
  const double faulty = 0.9e6;
  double mean = 0.0;
  for (const double x : history) mean += x;
  mean /= static_cast<double>(history.size());
  double var = 0.0;
  for (const double x : history) var += (x - mean) * (x - mean);
  var /= static_cast<double>(history.size());
  const double ref_z = (faulty - mean) / std::sqrt(var);
  ASSERT_LT(ref_z, -cfg.z_threshold) << "reference would not flag this drop";

  const DetectionResult r = det.observe(make_record(30, faulty, 1e6));
  ASSERT_TRUE(r.faulty());
  ASSERT_EQ(r.alerts.size(), 1u);
  EXPECT_EQ(r.alerts[0].uplink, net::UplinkIndex{0});
  EXPECT_LT(r.alerts[0].observed, r.alerts[0].predicted);  // shortfall
  // Sole sender short on the port → local-link verdict.
  EXPECT_EQ(r.alerts[0].localization.verdict, fp::Localization::Verdict::kLocalLink);
}

TEST(StreamingDetector, AlertFreezesBaselineAgainstPoisoning) {
  StreamingDetector det{net::LeafId{0}, 2, 2, StreamingConfig{}};
  std::uint64_t s = 11;
  for (std::uint32_t i = 0; i < 20; ++i) {
    (void)det.observe(make_record(i, 1e6 * (1.0 + 0.002 * noise(s)), 1e6));
  }
  const double healthy_mean = det.mean(net::UplinkIndex{0});
  // A persistent 15% shortfall must keep alerting: an unfrozen EWMA would
  // adapt to the fault within a few iterations and go quiet.
  for (std::uint32_t i = 20; i < 40; ++i) {
    const DetectionResult r = det.observe(make_record(i, 0.85e6, 1e6));
    ASSERT_TRUE(r.faulty()) << "baseline absorbed the fault at iteration " << i;
  }
  EXPECT_NEAR(det.mean(net::UplinkIndex{0}), healthy_mean, 1e-9 * healthy_mean);
}

TEST(StreamingDetector, SeededPredictionAlertsFromIterationZero) {
  fp::PortLoadMap prediction{2, 2};
  prediction.add(net::LeafId{0}, net::UplinkIndex{0}, net::LeafId{1}, 1e6);
  prediction.add(net::LeafId{0}, net::UplinkIndex{1}, net::LeafId{1}, 1e6);
  StreamingDetector det{net::LeafId{0}, 2, 2, StreamingConfig{}};
  det.seed(prediction);
  const DetectionResult r = det.observe(make_record(0, 0.9e6, 1e6));
  ASSERT_TRUE(r.faulty());
  EXPECT_EQ(r.alerts[0].uplink, net::UplinkIndex{0});
}

TEST(FlowPulseSystemStreaming, SelectableDetectorProducesResults) {
  exp::ScenarioConfig cfg = testing::golden_scenario_config();
  cfg.flowpulse.detector = fp::DetectorKind::kStreaming;
  exp::Scenario scenario{cfg};
  const exp::ScenarioResult result = scenario.run();
  EXPECT_EQ(result.iterations_completed, cfg.iterations);
  EXPECT_FALSE(result.detections.empty());
  // The seeded baseline must flag the golden scenario's gray downlink.
  bool flagged = false;
  for (const fp::DetectionResult& r : result.detections) {
    for (const fp::PortAlert& a : r.alerts) {
      flagged |= r.leaf == net::LeafId{5} && a.uplink == net::UplinkIndex{3};
    }
  }
  EXPECT_TRUE(flagged);
}

// ---------------------------------------------------------------------------
// Fast-forward model
// ---------------------------------------------------------------------------

TEST(FastForwardModel, StationaryDropAndDuty) {
  EXPECT_DOUBLE_EQ(fp::FastForwardModel::stationary_drop(net::FaultSpec::disconnect()), 1.0);
  EXPECT_DOUBLE_EQ(fp::FastForwardModel::stationary_drop(net::FaultSpec::random_drop(0.1)),
                   0.1);
  // GE long-run loss ≈ bad_fraction × bad_loss.
  const net::FaultSpec ge = net::FaultSpec::gilbert_elliott(0.2, 100.0, 0.5);
  EXPECT_NEAR(fp::FastForwardModel::stationary_drop(ge), 0.1, 1e-9);

  const net::FaultSpec windowed =
      net::FaultSpec::random_drop(1.0, sim::Time::microseconds(10), sim::Time::microseconds(20));
  EXPECT_DOUBLE_EQ(fp::FastForwardModel::active_fraction(windowed, sim::Time::zero(),
                                                         sim::Time::microseconds(40)),
                   0.25);
  const net::FaultSpec flapping = net::FaultSpec::random_drop(1.0).with_flap(
      sim::Time::microseconds(10), sim::Time::microseconds(5));
  EXPECT_DOUBLE_EQ(fp::FastForwardModel::active_fraction(flapping, sim::Time::zero(),
                                                         sim::Time::microseconds(40)),
                   0.5);
}

TEST(FastForwardModel, NoiselessSynthesisMatchesAnalyticalPrediction) {
  exp::ScenarioConfig cfg = testing::golden_scenario_config();
  cfg.new_faults.clear();
  exp::Scenario scenario{cfg};

  fp::FastForwardModel::Config ffc;
  ffc.mtu_payload = cfg.transport.mtu_payload;
  ffc.header_bytes = net::kHeaderBytes;
  ffc.noise_rel = 0.0;
  fp::FastForwardModel ff{cfg.fabric.shape, ffc};
  ff.rebaseline(scenario.demand(), scenario.fabric().routing());

  const fp::PortLoadMap* prediction = scenario.prediction();
  ASSERT_NE(prediction, nullptr);
  for (const net::LeafId l : core::ids<net::LeafId>(cfg.fabric.shape.leaves)) {
    const IterationRecord rec =
        ff.synthesize(l, net::IterIndex{0}, sim::Time::zero(), sim::Time::microseconds(50));
    for (const net::UplinkIndex u :
         core::ids<net::UplinkIndex>(cfg.fabric.shape.uplinks_per_leaf())) {
      EXPECT_NEAR(rec.bytes[u.v()], prediction->at(l, u).total,
                  1e-6 * (prediction->at(l, u).total + 1.0));
    }
  }
}

TEST(FastForwardModel, NoiseIsDeterministicAndBounded) {
  fp::FastForwardModel::Config ffc;
  ffc.noise_rel = 0.002;
  ffc.seed = 99;
  net::TopologyInfo shape;
  shape.leaves = 4;
  shape.spines = 2;
  net::RoutingState routing{4, 2};
  collective::DemandMatrix demand{4};
  for (std::uint32_t i = 0; i < 4; ++i) {
    demand.add(net::HostId{i}, net::HostId{(i + 1) % 4}, core::Bytes{1u << 20});
  }
  fp::FastForwardModel ff{shape, ffc};
  ff.rebaseline(demand, routing);
  const IterationRecord a =
      ff.synthesize(net::LeafId{1}, net::IterIndex{3}, sim::Time::zero(), sim::Time::max());
  const IterationRecord b =
      ff.synthesize(net::LeafId{1}, net::IterIndex{3}, sim::Time::zero(), sim::Time::max());
  const IterationRecord c =
      ff.synthesize(net::LeafId{1}, net::IterIndex{4}, sim::Time::zero(), sim::Time::max());
  ASSERT_EQ(a.bytes.size(), b.bytes.size());
  double max_rel = 0.0;
  bool differs = false;
  for (std::size_t u = 0; u < a.bytes.size(); ++u) {
    EXPECT_DOUBLE_EQ(a.bytes[u], b.bytes[u]);  // same (leaf, iter) → same draw
    if (a.bytes[u] != c.bytes[u]) differs = true;
    if (a.bytes[u] > 0.0) {
      max_rel = std::max(max_rel, fp::relative_deviation(c.bytes[u], a.bytes[u]));
    }
  }
  EXPECT_TRUE(differs) << "noise must vary across iterations";
  EXPECT_LT(max_rel, 0.02) << "noise must stay well under the detection threshold";
}

// ---------------------------------------------------------------------------
// Hybrid ≡ packet verdict equivalence
// ---------------------------------------------------------------------------

struct Verdict {
  std::int64_t first_faulty_iteration = -1;
  net::LeafId quarantine_leaf{};
  net::UplinkIndex quarantine_uplink{};
  bool quarantined = false;
  ctrl::MitigationEvent::Kind final_kind = ctrl::MitigationEvent::Kind::kQuarantine;
  bool any_event = false;
  std::uint64_t events = 0;
};

Verdict run_verdict(exp::ScenarioConfig cfg, fp::FidelityMode mode) {
  cfg.fidelity.mode = mode;
  exp::Scenario scenario{cfg};
  const exp::ScenarioResult r = scenario.run();
  Verdict v;
  v.events = r.events;
  for (const fp::DetectionResult& d : r.detections) {
    if (d.faulty() && (v.first_faulty_iteration < 0 ||
                       d.iteration.v() < static_cast<std::uint32_t>(v.first_faulty_iteration))) {
      v.first_faulty_iteration = d.iteration.v();
    }
  }
  for (const ctrl::MitigationEvent& e : r.mitigation_events) {
    if (!v.quarantined && e.kind == ctrl::MitigationEvent::Kind::kQuarantine) {
      v.quarantine_leaf = e.leaf;
      v.quarantine_uplink = e.uplink;
      v.quarantined = true;
    }
    v.final_kind = e.kind;
    v.any_event = true;
  }
  return v;
}

void expect_equivalent(const Verdict& packet, const Verdict& hybrid, const char* what) {
  ASSERT_GE(packet.first_faulty_iteration, 0) << what;
  ASSERT_GE(hybrid.first_faulty_iteration, 0) << what;
  EXPECT_LE(std::llabs(packet.first_faulty_iteration - hybrid.first_faulty_iteration), 1)
      << what << ": flagged iterations diverge";
  ASSERT_EQ(packet.quarantined, hybrid.quarantined) << what;
  if (packet.quarantined) {
    EXPECT_EQ(packet.quarantine_leaf, hybrid.quarantine_leaf) << what;
    EXPECT_EQ(packet.quarantine_uplink, hybrid.quarantine_uplink) << what;
  }
  ASSERT_EQ(packet.any_event, hybrid.any_event) << what;
  if (packet.any_event) {
    EXPECT_EQ(static_cast<int>(packet.final_kind), static_cast<int>(hybrid.final_kind))
        << what << ": final mitigation action diverges";
  }
}

TEST(HybridEquivalence, GoldenScenario) {
  const exp::ScenarioConfig cfg = testing::golden_scenario_config();
  expect_equivalent(run_verdict(cfg, fp::FidelityMode::kPacket),
                    run_verdict(cfg, fp::FidelityMode::kHybrid), "golden");
}

TEST(HybridEquivalence, GoldenParallelScenario) {
  const exp::ScenarioConfig cfg = testing::golden_parallel_scenario_config();
  expect_equivalent(run_verdict(cfg, fp::FidelityMode::kPacket),
                    run_verdict(cfg, fp::FidelityMode::kHybrid), "golden-parallel");
}

// ≥20-seed sweep: varying fault link, mid-run onset, hybrid must reproduce
// the packet-mode verdict on every seed.
TEST(HybridEquivalence, SeededFaultSweep) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    exp::ScenarioConfig cfg;
    cfg.fabric.shape.leaves = 8;
    cfg.fabric.shape.spines = 4;
    cfg.fabric.shape.hosts_per_leaf = 1;
    cfg.collective_bytes = core::Bytes{512u << 10};
    cfg.iterations = 10;
    cfg.seed = seed;
    cfg.mitigation.enabled = true;
    exp::NewFault fault;
    fault.leaf = net::LeafId{static_cast<std::uint32_t>(seed % 8)};
    fault.uplink = net::UplinkIndex{static_cast<std::uint32_t>((seed / 8 + seed) % 4)};
    fault.where = exp::NewFault::Where::kDownlink;
    // Onset after a few healthy iterations, so hybrid promotes to flow
    // first and must demote back around the onset.
    fault.spec = net::FaultSpec::random_drop(0.25, sim::Time::microseconds(100));
    cfg.new_faults.push_back(fault);
    const Verdict packet = run_verdict(cfg, fp::FidelityMode::kPacket);
    const Verdict hybrid = run_verdict(cfg, fp::FidelityMode::kHybrid);
    expect_equivalent(packet, hybrid, ("seed " + std::to_string(seed)).c_str());
  }
}

// ---------------------------------------------------------------------------
// Fidelity accounting + speed
// ---------------------------------------------------------------------------

TEST(HybridFidelity, HealthyRunFastForwardsAndSaves10xEvents) {
  exp::ScenarioConfig cfg;
  cfg.fabric.shape.leaves = 8;
  cfg.fabric.shape.spines = 4;
  cfg.collective_bytes = core::Bytes{1u << 20};
  cfg.iterations = 24;
  cfg.seed = 5;

  exp::ScenarioConfig hybrid_cfg = cfg;
  hybrid_cfg.fidelity.mode = fp::FidelityMode::kHybrid;
  exp::Scenario packet{cfg};
  exp::Scenario hybrid{hybrid_cfg};
  const exp::ScenarioResult pr = packet.run();
  const exp::ScenarioResult hr = hybrid.run();

  EXPECT_EQ(pr.iterations_completed, cfg.iterations);
  EXPECT_EQ(hr.iterations_completed, cfg.iterations);
  EXPECT_FALSE(pr.fidelity.enabled);
  ASSERT_TRUE(hr.fidelity.enabled);
  EXPECT_EQ(hr.fidelity.mode, fp::FidelityMode::kHybrid);
  // Healthy run: exactly the warmup iteration at packet fidelity.
  EXPECT_EQ(hr.fidelity.packet_iterations, 1u);
  EXPECT_EQ(hr.fidelity.flow_iterations, cfg.iterations - 1);
  EXPECT_EQ(hr.fidelity.iteration_mode.size(), cfg.iterations);
  // No alerts in either mode, and the event count collapses.
  EXPECT_TRUE(hr.detections.end() ==
              std::find_if(hr.detections.begin(), hr.detections.end(),
                           [](const fp::DetectionResult& d) { return d.faulty(); }));
  EXPECT_LT(hr.events * 10, pr.events) << "fast-forward saved fewer than 10x events";
}

TEST(HybridFidelity, DemotesAroundFaultOnsetAndRepromotes) {
  exp::ScenarioConfig cfg;
  cfg.fabric.shape.leaves = 8;
  cfg.fabric.shape.spines = 4;
  cfg.collective_bytes = core::Bytes{1u << 20};
  cfg.iterations = 20;
  cfg.seed = 7;
  cfg.mitigation.enabled = true;
  exp::NewFault fault;
  fault.leaf = net::LeafId{3};
  fault.uplink = net::UplinkIndex{2};
  fault.where = exp::NewFault::Where::kDownlink;
  fault.spec = net::FaultSpec::random_drop(0.3, sim::Time::microseconds(150));
  cfg.new_faults.push_back(fault);
  cfg.fidelity.mode = fp::FidelityMode::kHybrid;

  exp::Scenario scenario{cfg};
  const exp::ScenarioResult r = scenario.run();
  ASSERT_TRUE(r.fidelity.enabled);
  EXPECT_GE(r.fidelity.demotions, 1u) << "fault onset must demote to packets";
  EXPECT_GE(r.fidelity.promotions, 1u) << "healthy prefix must promote to flow";
  EXPECT_GT(r.fidelity.flow_iterations, 0u);
  EXPECT_GT(r.fidelity.packet_iterations, 0u);
  // The loop still caught and mitigated the fault.
  bool quarantined = false;
  for (const ctrl::MitigationEvent& e : r.mitigation_events) {
    quarantined |= e.kind == ctrl::MitigationEvent::Kind::kQuarantine &&
                   e.leaf == net::LeafId{3} && e.uplink == net::UplinkIndex{2};
  }
  EXPECT_TRUE(quarantined);
}

TEST(FlowFidelity, ClosedLoopDetectsAndMitigatesAnalytically) {
  exp::ScenarioConfig cfg = testing::golden_scenario_config();
  cfg.fidelity.mode = fp::FidelityMode::kFlow;
  const Verdict packet = run_verdict(cfg, fp::FidelityMode::kPacket);
  const Verdict flow = run_verdict(cfg, fp::FidelityMode::kFlow);
  // Flow mode must find and quarantine the same link, entirely without
  // packets; timing may differ by the debounce alignment.
  ASSERT_TRUE(flow.quarantined);
  EXPECT_EQ(flow.quarantine_leaf, packet.quarantine_leaf);
  EXPECT_EQ(flow.quarantine_uplink, packet.quarantine_uplink);
  EXPECT_LT(flow.events * 10, packet.events);

  exp::Scenario scenario{cfg};
  const exp::ScenarioResult r = scenario.run();
  ASSERT_TRUE(r.fidelity.enabled);
  EXPECT_EQ(r.fidelity.mode, fp::FidelityMode::kFlow);
  EXPECT_EQ(r.fidelity.packet_iterations, 0u);
  EXPECT_EQ(r.fidelity.flow_iterations, cfg.iterations);
}

TEST(HybridFidelity, ReportEmitsFidelitySectionOnlyWhenEnabled) {
  exp::ScenarioConfig cfg = testing::golden_scenario_config();
  exp::Scenario packet{cfg};
  exp::ScenarioResult pr = packet.run();
  EXPECT_EQ(exp::to_json(pr).find("\"fidelity\""), std::string::npos);

  cfg.fidelity.mode = fp::FidelityMode::kHybrid;
  exp::Scenario hybrid{cfg};
  exp::ScenarioResult hr = hybrid.run();
  const std::string json = exp::to_json(hr);
  EXPECT_NE(json.find("\"fidelity\":{\"mode\":\"hybrid\""), std::string::npos);
}

// Unsupported configurations must fall back to the untouched packet path.
TEST(HybridFidelity, FallsBackToPacketWhenUnsupported) {
  exp::ScenarioConfig cfg = testing::golden_scenario_config();
  cfg.fidelity.mode = fp::FidelityMode::kHybrid;
  cfg.background.bytes = core::Bytes{1u << 16};  // background job → no hybrid
  exp::Scenario scenario{cfg};
  const exp::ScenarioResult r = scenario.run();
  EXPECT_FALSE(r.fidelity.enabled);
  EXPECT_EQ(r.iterations_completed, cfg.iterations);
}

// The golden hashes are pinned on the packet path; a hybrid-capable build
// must not perturb them (asserted alongside the hash tests, but restated
// here as the hybrid engine's no-regression contract).
TEST(HybridFidelity, PacketModeGoldenHashUnchanged) {
  exp::ScenarioConfig cfg = testing::golden_scenario_config();
  cfg.fidelity.mode = fp::FidelityMode::kPacket;
  EXPECT_EQ(testing::report_hash(cfg), testing::golden_report_hash());
}

}  // namespace
}  // namespace flowpulse
