// Experiment-harness utilities: table printer, env knobs, trial runner,
// schedule dispatch, flow-id helpers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "exp/scenario.h"
#include "exp/table.h"
#include "exp/trials.h"
#include "core/strong_id.h"
#include "net/types.h"

namespace flowpulse::exp {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"a", "long-header"});
  t.row({"xxxxx", "1"});
  t.row({"y", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header + separator + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every line has the same width.
  std::istringstream in{out};
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxxx"), std::string::npos);
}

TEST(Table, ToleratesShortRows) {
  Table t({"a", "b", "c"});
  t.row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| 1 "), std::string::npos);
}

TEST(Fmt, FormatsNumbers) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(pct(0.0123, 1), "1.2%");
  EXPECT_EQ(pct(1.0, 0), "100%");
}

TEST(EnvKnobs, TrialsOverride) {
  unsetenv("FLOWPULSE_TRIALS");
  EXPECT_EQ(env_trials(7), 7u);
  setenv("FLOWPULSE_TRIALS", "3", 1);
  EXPECT_EQ(env_trials(7), 3u);
  setenv("FLOWPULSE_TRIALS", "garbage", 1);
  EXPECT_EQ(env_trials(7), 7u);
  unsetenv("FLOWPULSE_TRIALS");
}

TEST(EnvKnobs, ScaleOverride) {
  unsetenv("FLOWPULSE_SCALE");
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
  setenv("FLOWPULSE_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 2.5);
  setenv("FLOWPULSE_SCALE", "-1", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
  unsetenv("FLOWPULSE_SCALE");
}

TEST(MakeSchedule, DispatchesByKind) {
  const net::TopologyInfo shape{4, 2, 1, 1};
  EXPECT_EQ(make_schedule(collective::CollectiveKind::kRingAllReduce, shape, core::Bytes{4096}).stages.size(),
            6u);
  EXPECT_EQ(
      make_schedule(collective::CollectiveKind::kRingReduceScatter, shape, core::Bytes{4096}).stages.size(),
      3u);
  EXPECT_EQ(
      make_schedule(collective::CollectiveKind::kRingAllGather, shape, core::Bytes{4096}).stages.size(), 3u);
  EXPECT_EQ(make_schedule(collective::CollectiveKind::kAllToAll, shape, core::Bytes{4096}).stages.size(),
            1u);
  const net::TopologyInfo multi{4, 2, 2, 1};
  const auto hier =
      make_schedule(collective::CollectiveKind::kHierarchicalRing, multi, core::Bytes{4096});
  EXPECT_EQ(hier.kind, collective::CollectiveKind::kHierarchicalRing);
  EXPECT_EQ(hier.ranks, 8u);
}

TEST(AllHostsRing, CoversEveryHostInOrder) {
  const net::TopologyInfo shape{4, 2, 2, 1};
  const auto hosts = all_hosts_ring(shape);
  ASSERT_EQ(hosts.size(), 8u);
  for (const net::HostId h : core::ids<net::HostId>(8)) EXPECT_EQ(hosts[h.v()], h);
}

TEST(RunTrials, ProducesRequestedCountWithDistinctSeeds) {
  ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{4, 2, 1, 1};
  cfg.collective_bytes = core::Bytes{1 << 20};
  cfg.iterations = 2;
  const auto trials = run_trials(cfg, 3);
  ASSERT_EQ(trials.size(), 3u);
  for (const TrialSamples& t : trials) EXPECT_EQ(t.dev.size(), 2u);
}

TEST(RunTrials, SkipDropsLeadingIterations) {
  ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{4, 2, 1, 1};
  cfg.collective_bytes = core::Bytes{1 << 20};
  cfg.iterations = 3;
  const auto trials = run_trials(cfg, 1, /*skip=*/2);
  ASSERT_EQ(trials.size(), 1u);
  EXPECT_EQ(trials[0].dev.size(), 1u);
}

TEST(FlowId, RoundTrips) {
  using namespace net::flowid;
  const net::FlowId f = make_collective(net::IterIndex{12345}, 9);
  EXPECT_TRUE(is_collective(f));
  EXPECT_EQ(iteration_of(f), net::IterIndex{12345});
  EXPECT_EQ(job_of(f), 9u);
  EXPECT_FALSE(is_collective(0));
  EXPECT_FALSE(is_collective(0x1234567890abcdefull));
}

}  // namespace
}  // namespace flowpulse::exp
