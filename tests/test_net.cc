// Unit tests for the fabric: egress queuing discipline, PFC, fault models,
// routing with known failures, spray policies, topology wiring.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/strong_id.h"
#include "net/egress_port.h"
#include "net/fat_tree.h"
#include "net/fault.h"
#include "net/routing.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace flowpulse::net {
namespace {

using sim::Simulator;
using sim::Time;

/// Test device that records everything it receives.
class SinkDevice : public Device {
 public:
  void receive(Packet p, PortIndex in_port) override {
    packets.push_back(p);
    ports.push_back(in_port);
    times.push_back(now ? *now : Time::zero());
  }
  std::vector<Packet> packets;
  std::vector<PortIndex> ports;
  std::vector<Time> times;
  const Time* now = nullptr;
};

Packet make_packet(std::uint32_t size, Priority prio = Priority::kCollective) {
  Packet p;
  p.size_bytes = core::Bytes{size};
  p.priority = prio;
  return p;
}

class EgressPortTest : public ::testing::Test {
 protected:
  EgressPortTest() : port_{sim_, LinkParams{core::GbitsPerSec{400.0}, Time::nanoseconds(100)}, "t"} {
    port_.connect(&sink_, PortIndex{7});
    port_.set_fault_rng(&sim_.rng());
  }
  Simulator sim_{1};
  SinkDevice sink_;
  EgressPort port_;
};

TEST_F(EgressPortTest, DeliversAfterSerializationAndPropagation) {
  port_.enqueue(make_packet(4096));
  sim_.run();
  ASSERT_EQ(sink_.packets.size(), 1u);
  EXPECT_EQ(sink_.ports[0], PortIndex{7});
  // 4096 B at 400 Gbps = 81.92 ns serialization + 100 ns propagation.
  EXPECT_EQ(sim_.now().ps(), 81'920 + 100'000);
}

TEST_F(EgressPortTest, SerializesBackToBack) {
  port_.enqueue(make_packet(4096));
  port_.enqueue(make_packet(4096));
  sim_.run();
  ASSERT_EQ(sink_.packets.size(), 2u);
  // Second packet finishes serializing at 2×81.92 ns, arrives +100 ns.
  EXPECT_EQ(sim_.now().ps(), 2 * 81'920 + 100'000);
}

TEST_F(EgressPortTest, StrictPriorityOrder) {
  // While a background packet is in flight, queue one of each class; the
  // control packet must jump ahead of collective, which jumps background.
  port_.enqueue(make_packet(4096, Priority::kBackground));
  port_.enqueue(make_packet(1000, Priority::kBackground));
  port_.enqueue(make_packet(1000, Priority::kCollective));
  port_.enqueue(make_packet(1000, Priority::kControl));
  sim_.run();
  ASSERT_EQ(sink_.packets.size(), 4u);
  EXPECT_EQ(sink_.packets[0].priority, Priority::kBackground);  // in flight first
  EXPECT_EQ(sink_.packets[1].priority, Priority::kControl);
  EXPECT_EQ(sink_.packets[2].priority, Priority::kCollective);
  EXPECT_EQ(sink_.packets[3].priority, Priority::kBackground);
}

TEST_F(EgressPortTest, PauseBlocksClassButNotOthers) {
  port_.set_paused(Priority::kBackground, true);
  port_.enqueue(make_packet(1000, Priority::kBackground));
  port_.enqueue(make_packet(1000, Priority::kCollective));
  sim_.run();
  ASSERT_EQ(sink_.packets.size(), 1u);
  EXPECT_EQ(sink_.packets[0].priority, Priority::kCollective);
  EXPECT_EQ(port_.queued_bytes(Priority::kBackground), core::Bytes{1000});
  port_.set_paused(Priority::kBackground, false);
  sim_.run();
  EXPECT_EQ(sink_.packets.size(), 2u);
}

TEST_F(EgressPortTest, PauseDoesNotAbortInFlightPacket) {
  port_.enqueue(make_packet(4096, Priority::kCollective));
  port_.set_paused(Priority::kCollective, true);  // while serializing
  sim_.run();
  EXPECT_EQ(sink_.packets.size(), 1u);
}

TEST_F(EgressPortTest, CountersTrackTxAndQueue) {
  port_.enqueue(make_packet(1000));
  port_.enqueue(make_packet(2000));
  EXPECT_EQ(port_.queued_bytes(), core::Bytes{2000});  // first already dequeued to wire
  sim_.run();
  EXPECT_EQ(port_.counters().tx_packets, core::Packets{2});
  EXPECT_EQ(port_.counters().tx_bytes, core::Bytes{3000});
  EXPECT_EQ(port_.counters().dropped_packets, core::Packets{0});
  EXPECT_EQ(port_.queued_bytes(), core::Bytes{0});
}

TEST_F(EgressPortTest, DisconnectFaultDropsEverything) {
  port_.set_fault(FaultSpec::disconnect());
  for (int i = 0; i < 10; ++i) port_.enqueue(make_packet(1000));
  sim_.run();
  EXPECT_TRUE(sink_.packets.empty());
  EXPECT_EQ(port_.counters().dropped_packets, core::Packets{10});
  EXPECT_EQ(port_.counters().delivered_packets(), core::Packets{0});
}

TEST_F(EgressPortTest, RandomDropMatchesRate) {
  port_.set_fault(FaultSpec::random_drop(0.1));
  const int n = 20000;
  for (int i = 0; i < n; ++i) port_.enqueue(make_packet(100));
  sim_.run();
  const double rate =
      port_.counters().dropped_packets.dbl() / port_.counters().tx_packets.dbl();
  EXPECT_NEAR(rate, 0.1, 0.01);
  EXPECT_EQ(sink_.packets.size(), port_.counters().delivered_packets().v());
}

TEST_F(EgressPortTest, TransientFaultWindow) {
  // Fault active only within [1us, 2us): packets sent before and after
  // survive, packets inside are dropped.
  port_.set_fault(
      FaultSpec::black_hole(Time::microseconds(1), Time::microseconds(2)));
  // One packet now (finishes ~82ns: before window), one inside the window,
  // one after it.
  port_.enqueue(make_packet(4096));
  sim_.schedule_at(Time::microseconds(1), [this] { port_.enqueue(make_packet(4096)); });
  sim_.schedule_at(Time::microseconds(3), [this] { port_.enqueue(make_packet(4096)); });
  sim_.run();
  EXPECT_EQ(sink_.packets.size(), 2u);
  EXPECT_EQ(port_.counters().dropped_packets, core::Packets{1});
}

TEST_F(EgressPortTest, TxHookSeesWireAndDrops) {
  port_.set_fault(FaultSpec::disconnect());
  int on_wire = 0, dropped = 0;
  port_.set_tx_hook([&](const Packet&, EgressPort::TxEvent ev) {
    if (ev == EgressPort::TxEvent::kOnWire) ++on_wire;
    if (ev == EgressPort::TxEvent::kDropped) ++dropped;
  });
  port_.enqueue(make_packet(100));
  sim_.run();
  EXPECT_EQ(on_wire, 0);
  EXPECT_EQ(dropped, 1);
}

// ---------------------------------------------------------------------------
// FaultSpec
// ---------------------------------------------------------------------------

TEST(FaultSpec, ActivityWindow) {
  const FaultSpec f =
      FaultSpec::random_drop(0.5, Time::microseconds(10), Time::microseconds(20));
  EXPECT_FALSE(f.active_at(Time::microseconds(9)));
  EXPECT_TRUE(f.active_at(Time::microseconds(10)));
  EXPECT_TRUE(f.active_at(Time::microseconds(19)));
  EXPECT_FALSE(f.active_at(Time::microseconds(20)));
}

TEST(FaultSpec, NoneNeverDrops) {
  sim::Rng rng{1};
  FaultModel m;
  m.set_spec(FaultSpec::none());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(m.should_drop(Time::zero(), rng));
}

TEST(FaultModel, GilbertElliottLongRunLossMatches) {
  // 5% of packets in bad state, mean burst 20 packets, 100% loss while bad
  // → long-run loss ≈ 5%.
  sim::Rng rng{7};
  FaultModel m;
  m.set_spec(FaultSpec::gilbert_elliott(0.05, 20.0));
  const int n = 200000;
  int drops = 0;
  for (int i = 0; i < n; ++i) {
    if (m.should_drop(Time::zero(), rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.05, 0.01);
}

TEST(FaultModel, GilbertElliottPartialLossMatchesStationaryProduct) {
  // 20% of packets in the bad state at 50% loss → long-run loss ≈ 10%.
  sim::Rng rng{11};
  FaultModel m;
  m.set_spec(FaultSpec::gilbert_elliott(0.2, 15.0, 0.5));
  const int n = 200000;
  int drops = 0;
  for (int i = 0; i < n; ++i) {
    if (m.should_drop(Time::zero(), rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.2 * 0.5, 0.01);
}

TEST(FaultModel, GilbertElliottMeanBurstLengthMatches) {
  // The bad-state sojourn is geometric with mean 1/P(bad→good); measure it
  // from the chain itself (in_bad_state) so loss sampling can't blur it.
  sim::Rng rng{13};
  FaultModel m;
  m.set_spec(FaultSpec::gilbert_elliott(0.05, 20.0));
  int bursts = 0;
  std::int64_t bad_packets = 0;
  bool prev_bad = false;
  for (int i = 0; i < 400000; ++i) {
    (void)m.should_drop(Time::zero(), rng);
    const bool bad = m.in_bad_state();
    if (bad) {
      ++bad_packets;
      if (!prev_bad) ++bursts;
    }
    prev_bad = bad;
  }
  ASSERT_GT(bursts, 100);  // enough bursts for a stable mean
  const double mean_burst = static_cast<double>(bad_packets) / bursts;
  EXPECT_NEAR(mean_burst, 20.0, 2.0);
}

TEST(FaultModel, GilbertElliottLossesAreBursty) {
  // Compare run-length statistics against an independent-drop link with the
  // same average rate: bursts make consecutive drops far more likely.
  sim::Rng rng{9};
  FaultModel ge;
  ge.set_spec(FaultSpec::gilbert_elliott(0.05, 20.0));
  FaultModel iid;
  iid.set_spec(FaultSpec::random_drop(0.05));
  auto consecutive_pairs = [&rng](FaultModel& m) {
    bool prev = false;
    int pairs = 0;
    for (int i = 0; i < 100000; ++i) {
      const bool d = m.should_drop(Time::zero(), rng);
      if (d && prev) ++pairs;
      prev = d;
    }
    return pairs;
  };
  const int ge_pairs = consecutive_pairs(ge);
  const int iid_pairs = consecutive_pairs(iid);
  EXPECT_GT(ge_pairs, iid_pairs * 5);
}

TEST(FaultSpec, FlapWindowsGateActivity) {
  // Active the first 200 µs of every 1 ms, starting at 10 µs.
  const FaultSpec f = FaultSpec::black_hole(Time::microseconds(10))
                          .with_flap(Time::milliseconds(1), Time::microseconds(200));
  EXPECT_FALSE(f.active_at(Time::microseconds(9)));
  EXPECT_TRUE(f.active_at(Time::microseconds(10)));
  EXPECT_TRUE(f.active_at(Time::microseconds(209)));
  EXPECT_FALSE(f.active_at(Time::microseconds(210)));
  EXPECT_FALSE(f.active_at(Time::microseconds(1009)));
  EXPECT_TRUE(f.active_at(Time::microseconds(1010)));  // second burst
  EXPECT_FALSE(f.active_at(Time::microseconds(1210)));
}

TEST(FaultSpec, ActiveDuringSeesBurstsInsideWindow) {
  const FaultSpec f = FaultSpec::black_hole()
                          .with_flap(Time::milliseconds(1), Time::microseconds(200));
  // Fully inside an idle stretch.
  EXPECT_FALSE(f.active_during(Time::microseconds(300), Time::microseconds(900)));
  // Overlaps the start of the second burst.
  EXPECT_TRUE(f.active_during(Time::microseconds(300), Time::microseconds(1100)));
  // Opens inside a burst.
  EXPECT_TRUE(f.active_during(Time::microseconds(100), Time::microseconds(150)));
  // Clipped by the fault's own [start, end) bounds.
  const FaultSpec g = FaultSpec::black_hole(Time::microseconds(10), Time::microseconds(20))
                          .with_flap(Time::milliseconds(1), Time::microseconds(200));
  EXPECT_FALSE(g.active_during(Time::microseconds(30), Time::microseconds(500)));
  EXPECT_TRUE(g.active_during(Time::zero(), Time::microseconds(15)));
}

TEST_F(EgressPortTest, FlappingFaultDropsOnlyDuringBursts) {
  // Black hole active the first 1 µs of every 3 µs: a packet sent inside a
  // burst dies, packets in the idle stretches and later bursts behave the
  // same way.
  port_.set_fault(FaultSpec::black_hole().with_flap(Time::microseconds(3),
                                                    Time::microseconds(1)));
  port_.enqueue(make_packet(4096));  // t≈0: inside burst 1 → dropped
  sim_.schedule_at(Time::microseconds(2),
                   [this] { port_.enqueue(make_packet(4096)); });  // idle → delivered
  sim_.schedule_at(Time::microseconds(3),
                   [this] { port_.enqueue(make_packet(4096)); });  // burst 2 → dropped
  sim_.schedule_at(Time::microseconds(5),
                   [this] { port_.enqueue(make_packet(4096)); });  // idle → delivered
  sim_.run();
  EXPECT_EQ(sink_.packets.size(), 2u);
  EXPECT_EQ(port_.counters().dropped_packets, core::Packets{2});
}

// ---------------------------------------------------------------------------
// RoutingState
// ---------------------------------------------------------------------------

TEST(RoutingState, AllValidWhenHealthy) {
  RoutingState r{4, 8};
  EXPECT_EQ(r.valid_uplinks(LeafId{0}, LeafId{1}).size(), 8u);
}

TEST(RoutingState, ExcludesFailuresAtBothEnds) {
  RoutingState r{4, 8};
  r.set_known_failed(LeafId{0}, UplinkIndex{3});  // src-side failure
  r.set_known_failed(LeafId{1}, UplinkIndex{5});  // dst-side failure
  const auto& valid = r.valid_uplinks(LeafId{0}, LeafId{1});
  EXPECT_EQ(valid.size(), 6u);
  for (const UplinkIndex u : valid) {
    EXPECT_NE(u, UplinkIndex{3});
    EXPECT_NE(u, UplinkIndex{5});
  }
  // A pair not touching the failed leaves keeps only its own exclusions.
  EXPECT_EQ(r.valid_uplinks(LeafId{2}, LeafId{3}).size(), 8u);
}

TEST(RoutingState, CacheInvalidatedOnUpdate) {
  RoutingState r{2, 4};
  EXPECT_EQ(r.valid_uplinks(LeafId{0}, LeafId{1}).size(), 4u);
  r.set_known_failed(LeafId{0}, UplinkIndex{0});
  EXPECT_EQ(r.valid_uplinks(LeafId{0}, LeafId{1}).size(), 3u);
  r.set_known_failed(LeafId{0}, UplinkIndex{0}, false);
  EXPECT_EQ(r.valid_uplinks(LeafId{0}, LeafId{1}).size(), 4u);
}

TEST(RoutingState, FailedCount) {
  RoutingState r{2, 4};
  r.set_known_failed(LeafId{1}, UplinkIndex{0});
  r.set_known_failed(LeafId{1}, UplinkIndex{2});
  EXPECT_EQ(r.known_failed_count(LeafId{1}), 2u);
  EXPECT_EQ(r.known_failed_count(LeafId{0}), 0u);
}

// ---------------------------------------------------------------------------
// FatTree wiring + forwarding
// ---------------------------------------------------------------------------

FatTreeConfig small_config() {
  FatTreeConfig cfg;
  cfg.shape = TopologyInfo{4, 2, 2, 1};  // 4 leaves × 2 spines, 2 hosts/leaf
  return cfg;
}

TEST(FatTree, TopologyInfoMath) {
  const TopologyInfo info{4, 2, 2, 1};
  EXPECT_EQ(info.num_hosts(), 8u);
  EXPECT_EQ(info.uplinks_per_leaf(), 2u);
  EXPECT_EQ(info.leaf_of(HostId{5}), LeafId{2});
  EXPECT_EQ(info.local_index(HostId{5}), 1u);
  EXPECT_EQ(info.spine_of(UplinkIndex{1}), SpineId{1});
}

TEST(FatTree, TopologyInfoParallelLinks) {
  const TopologyInfo info{4, 2, 1, 2};  // 2 spines × 2 lanes = 4 uplinks
  EXPECT_EQ(info.uplinks_per_leaf(), 4u);
  EXPECT_EQ(info.spine_of(UplinkIndex{0}), SpineId{0});
  EXPECT_EQ(info.spine_of(UplinkIndex{1}), SpineId{0});
  EXPECT_EQ(info.spine_of(UplinkIndex{2}), SpineId{1});
  EXPECT_EQ(info.lane_of(UplinkIndex{3}), 1u);
  EXPECT_EQ(info.spine_port(LeafId{2}, UplinkIndex{3}), PortIndex{5});  // leaf 2, lane 1 → port 2*2+1
}

TEST(FatTree, LocalTrafficStaysUnderLeaf) {
  Simulator sim{1};
  FatTree net{sim, small_config()};
  std::vector<Packet> got;
  net.host(HostId{1}).set_rx_handler([&](const Packet& p) { got.push_back(p); });

  Packet p = make_packet(1000);
  p.src = HostId{0};
  p.dst = HostId{1};  // same leaf as host 0
  net.host(HostId{0}).nic().enqueue(p);
  sim.run();

  ASSERT_EQ(got.size(), 1u);
  for (const SpineId s : core::ids<SpineId>(2)) {
    EXPECT_EQ(net.spine(s).counters().forwarded_packets, core::Packets{0});
  }
}

TEST(FatTree, RemoteTrafficCrossesOneSpine) {
  Simulator sim{1};
  FatTree net{sim, small_config()};
  std::vector<Packet> got;
  net.host(HostId{7}).set_rx_handler([&](const Packet& p) { got.push_back(p); });

  Packet p = make_packet(1000);
  p.src = HostId{0};
  p.dst = HostId{7};  // leaf 3
  net.host(HostId{0}).nic().enqueue(p);
  sim.run();

  ASSERT_EQ(got.size(), 1u);
  const core::Packets spine_fwd = net.spine(SpineId{0}).counters().forwarded_packets +
                                  net.spine(SpineId{1}).counters().forwarded_packets;
  EXPECT_EQ(spine_fwd, core::Packets{1});
}

TEST(FatTree, SprayCoversAllUplinksUnderLoad) {
  Simulator sim{1};
  FatTreeConfig cfg = small_config();
  cfg.spray = SprayPolicy::kAdaptive;
  FatTree net{sim, cfg};
  int got = 0;
  net.host(HostId{7}).set_rx_handler([&](const Packet&) { ++got; });

  for (int i = 0; i < 200; ++i) {
    Packet p = make_packet(1000);
    p.src = HostId{0};
    p.dst = HostId{7};
    p.seq = static_cast<std::uint32_t>(i);
    net.host(HostId{0}).nic().enqueue(p);
  }
  sim.run();
  EXPECT_EQ(got, 200);
  // Adaptive spraying must use both uplinks roughly equally.
  const auto& up0 = net.uplink_counters(LeafId{0}, UplinkIndex{0});
  const auto& up1 = net.uplink_counters(LeafId{0}, UplinkIndex{1});
  EXPECT_NEAR(up0.tx_packets.dbl(), 100.0, 10.0);
  EXPECT_NEAR(up1.tx_packets.dbl(), 100.0, 10.0);
}

TEST(FatTree, RandomSprayApproximatelyUniform) {
  Simulator sim{1};
  FatTreeConfig cfg;
  cfg.shape = TopologyInfo{2, 4, 1, 1};
  cfg.spray = SprayPolicy::kRandom;
  FatTree net{sim, cfg};
  net.host(HostId{1}).set_rx_handler([](const Packet&) {});
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    Packet p = make_packet(500);
    p.src = HostId{0};
    p.dst = HostId{1};
    net.host(HostId{0}).nic().enqueue(p);
  }
  sim.run();
  for (const UplinkIndex u : core::ids<UplinkIndex>(4)) {
    const double frac =
        net.uplink_counters(LeafId{0}, u).tx_packets.dbl() / n;
    EXPECT_NEAR(frac, 0.25, 0.03);
  }
}

TEST(FatTree, EcmpPinsFlowToOneUplink) {
  Simulator sim{1};
  FatTreeConfig cfg;
  cfg.shape = TopologyInfo{2, 4, 1, 1};
  cfg.spray = SprayPolicy::kEcmp;
  FatTree net{sim, cfg};
  net.host(HostId{1}).set_rx_handler([](const Packet&) {});
  for (int i = 0; i < 100; ++i) {
    Packet p = make_packet(500);
    p.src = HostId{0};
    p.dst = HostId{1};
    p.flow_id = 0xabc;  // one flow
    net.host(HostId{0}).nic().enqueue(p);
  }
  sim.run();
  int used = 0;
  for (const UplinkIndex u : core::ids<UplinkIndex>(4)) {
    if (net.uplink_counters(LeafId{0}, u).tx_packets > core::Packets{0}) ++used;
  }
  EXPECT_EQ(used, 1);
}

TEST(FatTree, KnownDisconnectExcludedFromSpray) {
  Simulator sim{1};
  FatTreeConfig cfg = small_config();
  FatTree net{sim, cfg};
  net.disconnect_known(LeafId{0}, UplinkIndex{0});  // leaf 0's uplink to spine 0 is down, known
  net.host(HostId{7}).set_rx_handler([](const Packet&) {});
  for (int i = 0; i < 50; ++i) {
    Packet p = make_packet(500);
    p.src = HostId{0};
    p.dst = HostId{7};
    net.host(HostId{0}).nic().enqueue(p);
  }
  sim.run();
  EXPECT_EQ(net.uplink_counters(LeafId{0}, UplinkIndex{0}).tx_packets, core::Packets{0});
  EXPECT_EQ(net.uplink_counters(LeafId{0}, UplinkIndex{1}).tx_packets, core::Packets{50});
}

TEST(FatTree, DisconnectedDestinationSideAvoided) {
  Simulator sim{1};
  FatTree net{sim, small_config()};
  // Destination leaf 3 lost its link from spine 1 (known): senders must
  // route via spine 0 only.
  net.disconnect_known(LeafId{3}, UplinkIndex{1});
  int got = 0;
  net.host(HostId{7}).set_rx_handler([&](const Packet&) { ++got; });
  for (int i = 0; i < 50; ++i) {
    Packet p = make_packet(500);
    p.src = HostId{0};
    p.dst = HostId{7};
    net.host(HostId{0}).nic().enqueue(p);
  }
  sim.run();
  EXPECT_EQ(got, 50);
  EXPECT_EQ(net.uplink_counters(LeafId{0}, UplinkIndex{1}).tx_packets, core::Packets{0});
}

TEST(FatTree, FullPartitionCountsNoRouteDrops) {
  Simulator sim{1};
  FatTree net{sim, small_config()};
  net.disconnect_known(LeafId{3}, UplinkIndex{0});
  net.disconnect_known(LeafId{3}, UplinkIndex{1});  // leaf 3 unreachable
  Packet p = make_packet(500);
  p.src = HostId{0};
  p.dst = HostId{7};
  net.host(HostId{0}).nic().enqueue(p);
  sim.run();
  EXPECT_EQ(net.leaf(LeafId{0}).counters().no_route_drops, core::Packets{1});
}

TEST(FatTree, SilentFaultStillSprayedOnto) {
  // A black-holed link that routing does NOT know about keeps receiving
  // its share of traffic — the defining property of a silent fault.
  Simulator sim{1};
  FatTree net{sim, small_config()};
  net.set_uplink_fault(LeafId{0}, UplinkIndex{0}, FaultSpec::black_hole());
  int got = 0;
  net.host(HostId{7}).set_rx_handler([&](const Packet&) { ++got; });
  for (int i = 0; i < 100; ++i) {
    Packet p = make_packet(500);
    p.src = HostId{0};
    p.dst = HostId{7};
    net.host(HostId{0}).nic().enqueue(p);
  }
  sim.run();
  EXPECT_GT(net.uplink_counters(LeafId{0}, UplinkIndex{0}).tx_packets,
            core::Packets{20});  // still used
  EXPECT_EQ(net.uplink_counters(LeafId{0}, UplinkIndex{0}).delivered_packets(), core::Packets{0});
  EXPECT_LT(got, 100);
}

TEST(FatTree, ByteConservationWithDrops) {
  Simulator sim{1};
  FatTree net{sim, small_config()};
  net.set_link_fault(LeafId{0}, UplinkIndex{1}, FaultSpec::random_drop(0.3));
  net.host(HostId{6}).set_rx_handler([](const Packet&) {});
  for (int i = 0; i < 500; ++i) {
    Packet p = make_packet(1000);
    p.src = HostId{1};
    p.dst = HostId{6};
    net.host(HostId{1}).nic().enqueue(p);
  }
  sim.run();
  const LinkCounters total = net.total_fabric_counters();
  EXPECT_EQ(total.tx_packets, total.dropped_packets + total.delivered_packets());
  EXPECT_EQ(total.tx_bytes, total.dropped_bytes + total.delivered_bytes());
  EXPECT_GT(total.dropped_packets, core::Packets{0});
}

TEST(FatTree, ParallelLinksKeepLaneAcrossSpine) {
  Simulator sim{1};
  FatTreeConfig cfg;
  cfg.shape = TopologyInfo{2, 2, 1, 2};  // 2 spines × 2 lanes
  FatTree net{sim, cfg};
  int got = 0;
  net.host(HostId{1}).set_rx_handler([&](const Packet&) { ++got; });
  for (int i = 0; i < 400; ++i) {
    Packet p = make_packet(500);
    p.src = HostId{0};
    p.dst = HostId{1};
    net.host(HostId{0}).nic().enqueue(p);
  }
  sim.run();
  EXPECT_EQ(got, 400);
  // Each virtual spine (lane) must carry traffic down to the destination:
  // uplink u at leaf 0 maps to downlink u at leaf 1.
  for (const UplinkIndex u : core::ids<UplinkIndex>(4)) {
    EXPECT_EQ(net.uplink_counters(LeafId{0}, u).tx_packets,
              net.downlink_counters(LeafId{1}, u).tx_packets);
    EXPECT_GT(net.downlink_counters(LeafId{1}, u).tx_packets, core::Packets{50});
  }
}

TEST(FatTree, FlowletSticksWithinGapAndMovesAcrossGaps) {
  Simulator sim{1};
  FatTreeConfig cfg;
  cfg.shape = TopologyInfo{2, 4, 1, 1};
  cfg.spray = SprayPolicy::kFlowlet;
  FatTree net{sim, cfg};
  net.host(HostId{1}).set_rx_handler([](const Packet&) {});

  // Burst 1: 50 back-to-back packets of one flow → one uplink only.
  for (int i = 0; i < 50; ++i) {
    Packet p = make_packet(500);
    p.src = HostId{0};
    p.dst = HostId{1};
    p.flow_id = 0x77;
    net.host(HostId{0}).nic().enqueue(p);
  }
  sim.run();
  int used_first = 0;
  std::vector<core::Packets> counts_first;
  for (const UplinkIndex u : core::ids<UplinkIndex>(4)) {
    counts_first.push_back(net.uplink_counters(LeafId{0}, u).tx_packets);
    if (counts_first.back() > core::Packets{0}) ++used_first;
  }
  EXPECT_EQ(used_first, 1);

  // After an idle gap longer than the flowlet timeout, the flow may land
  // on a different lane (here all queues are equal so it picks lane 0 —
  // the point is it re-evaluates rather than being permanently pinned).
  sim.schedule_in(sim::Time::microseconds(50), [] {});
  sim.run();
  for (int i = 0; i < 50; ++i) {
    Packet p = make_packet(500);
    p.src = HostId{0};
    p.dst = HostId{1};
    p.flow_id = 0x77;
    net.host(HostId{0}).nic().enqueue(p);
  }
  sim.run();
  int used_total = 0;
  for (const UplinkIndex u : core::ids<UplinkIndex>(4)) {
    if (net.uplink_counters(LeafId{0}, u).tx_packets > core::Packets{0}) ++used_total;
  }
  // Still at most 2 lanes ever used: one per flowlet.
  EXPECT_LE(used_total, 2);
}

TEST(FatTree, FlowletDistinctFlowsSpread) {
  Simulator sim{3};
  FatTreeConfig cfg;
  cfg.shape = TopologyInfo{2, 4, 1, 1};
  cfg.spray = SprayPolicy::kFlowlet;
  // Host injects 4x faster than one fabric lane drains, so staying on one
  // lane builds queue and new flowlets get steered to emptier lanes.
  cfg.host_link.bandwidth = core::GbitsPerSec{1600.0};
  FatTree net{sim, cfg};
  net.host(HostId{1}).set_rx_handler([](const Packet&) {});
  for (int i = 0; i < 20; ++i) {
    for (int f = 0; f < 16; ++f) {
      Packet p = make_packet(4096);
      p.src = HostId{0};
      p.dst = HostId{1};
      p.flow_id = 0x100 + static_cast<FlowId>(f);
      net.host(HostId{0}).nic().enqueue(p);
    }
  }
  sim.run();
  int used = 0;
  for (const UplinkIndex u : core::ids<UplinkIndex>(4)) {
    if (net.uplink_counters(LeafId{0}, u).tx_packets > core::Packets{0}) ++used;
  }
  EXPECT_GE(used, 3);
}

TEST(PfcSwitch, BackpressurePausesAndResumes) {
  // Saturate one leaf→host link from two senders long enough to cross the
  // XOFF threshold; PFC must bound the leaf's ingress buffers and no packet
  // may be lost (lossless fabric).
  Simulator sim{1};
  FatTreeConfig cfg = small_config();
  cfg.pfc.xoff_bytes = core::Bytes{16 * 1024};
  cfg.pfc.xon_bytes = core::Bytes{8 * 1024};
  FatTree net{sim, cfg};
  int got = 0;
  net.host(HostId{6}).set_rx_handler([&](const Packet&) { ++got; });
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    for (HostId src : {HostId{0}, HostId{2}}) {  // two different leaves
      Packet p = make_packet(4096 + 64);
      p.src = src;
      p.dst = HostId{6};
      net.host(src).nic().enqueue(p);
    }
  }
  sim.run();
  EXPECT_EQ(got, 2 * n);  // lossless: everything arrives eventually
  const LinkCounters total = net.total_fabric_counters();
  EXPECT_EQ(total.dropped_packets, core::Packets{0});
}

}  // namespace
}  // namespace flowpulse::net
