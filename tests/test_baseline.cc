// Baseline comparators: the spatial-symmetry check and the Pingmesh-style
// prober, both exercised against the fabric.
#include <gtest/gtest.h>

#include "baseline/counter_scraper.h"
#include "baseline/pingmesh.h"
#include "baseline/spatial_symmetry.h"
#include "net/fat_tree.h"
#include "sim/simulator.h"
#include "transport/transport_layer.h"

namespace flowpulse::baseline {
namespace {

using net::FatTree;
using net::FatTreeConfig;
using net::TopologyInfo;
using sim::Simulator;
using sim::Time;

fp::IterationRecord record_of(const std::vector<double>& bytes) {
  fp::IterationRecord r;
  r.bytes = bytes;
  r.by_src.assign(bytes.size(), std::vector<double>(1, 0.0));
  return r;
}

TEST(SpatialSymmetry, EqualLoadPasses) {
  const auto res = spatial_symmetry_check(record_of({1000, 1000, 1000, 1000}), 0.01);
  EXPECT_FALSE(res.flagged);
  EXPECT_DOUBLE_EQ(res.max_rel_dev, 0.0);
}

TEST(SpatialSymmetry, SmallImbalanceWithinThreshold) {
  EXPECT_FALSE(spatial_symmetry_check(record_of({1002, 998, 1000, 1000}), 0.01).flagged);
}

TEST(SpatialSymmetry, DeadPortFlags) {
  // A disconnected link shows as a silent port: guaranteed flag — this is
  // exactly why the strategy cannot live with pre-existing faults.
  const auto res = spatial_symmetry_check(record_of({1333, 1333, 1334, 0}), 0.01);
  EXPECT_TRUE(res.flagged);
  EXPECT_NEAR(res.max_rel_dev, 1.0, 1e-9);
}

TEST(SpatialSymmetry, EmptyAndSilentRecordsPass) {
  EXPECT_FALSE(spatial_symmetry_check(record_of({}), 0.01).flagged);
  EXPECT_FALSE(spatial_symmetry_check(record_of({0, 0, 0}), 0.01).flagged);
}

struct ProbeRig {
  explicit ProbeRig(std::uint64_t seed = 9)
      : sim{seed}, net{sim, config()}, transports{sim, net} {}
  static FatTreeConfig config() {
    FatTreeConfig cfg;
    cfg.shape = TopologyInfo{4, 2, 1, 1};
    return cfg;
  }
  Simulator sim;
  FatTree net;
  transport::TransportLayer transports;
};

TEST(Pingmesh, HealthyFabricLosesNothing) {
  ProbeRig rig;
  PingmeshConfig cfg;
  cfg.interval = Time::microseconds(10);
  cfg.probes_per_round = 2;
  PingmeshProber prober{rig.sim, rig.net, rig.transports, cfg};
  prober.start(Time::microseconds(500));
  rig.sim.run();
  EXPECT_GT(prober.probes_sent(), 100u);
  EXPECT_EQ(prober.probes_lost(), 0u);
  EXPECT_EQ(prober.first_loss_time(), Time::max());
}

TEST(Pingmesh, BlackHoleEventuallyDetected) {
  ProbeRig rig;
  rig.net.set_link_fault(net::LeafId{0}, net::UplinkIndex{0}, net::FaultSpec::black_hole());
  PingmeshConfig cfg;
  cfg.interval = Time::microseconds(10);
  cfg.probes_per_round = 4;
  PingmeshProber prober{rig.sim, rig.net, rig.transports, cfg};
  prober.start(Time::milliseconds(2));
  rig.sim.run();
  EXPECT_GT(prober.probes_lost(), 0u);
  // Both directions of the leaf-0↔spine-0 link are dead: probes with leaf 0
  // as source (1/4 of all) or destination (1/4) die with probability 1/2
  // (the spray picks the dead spine half the time) → ≈ 25% loss.
  EXPECT_NEAR(prober.loss_rate(), 0.25, 0.08);
}

TEST(Pingmesh, LowRateGrayLinkRarelyHit) {
  // The paper's point: small probes are insensitive to low drop rates.
  ProbeRig rig;
  rig.net.set_link_fault(net::LeafId{0}, net::UplinkIndex{0}, net::FaultSpec::random_drop(0.01));
  PingmeshConfig cfg;
  cfg.interval = Time::microseconds(10);
  cfg.probes_per_round = 2;
  PingmeshProber prober{rig.sim, rig.net, rig.transports, cfg};
  prober.start(Time::microseconds(400));
  rig.sim.run();
  // ~40 rounds x 8 probes, ~1/8 of probes cross the faulty direction, 1%
  // loss each: expected hits well under 1 — usually nothing seen at all.
  EXPECT_LT(prober.probes_lost(), 3u);
}

TEST(Pingmesh, AccountsInjectedBytes) {
  ProbeRig rig;
  PingmeshConfig cfg;
  cfg.interval = Time::microseconds(50);
  cfg.probes_per_round = 1;
  cfg.probe_bytes = core::Bytes{64};
  PingmeshProber prober{rig.sim, rig.net, rig.transports, cfg};
  prober.start(Time::microseconds(240));
  rig.sim.run();
  // 5 rounds x 4 hosts x 1 probe = 20 probes of 64 B.
  EXPECT_EQ(prober.probes_sent(), 20u);
  EXPECT_EQ(prober.bytes_injected(), core::Bytes{20u * 64u});
}

// ---------------------------------------------------------------------------
// Counter-polling baseline
// ---------------------------------------------------------------------------

void blast(ProbeRig& rig, net::HostId src, net::HostId dst, int n) {
  rig.net.host(dst).set_rx_handler([](const net::Packet&) {});
  for (int i = 0; i < n; ++i) {
    net::Packet p;
    p.src = src;
    p.dst = dst;
    p.size_bytes = core::Bytes{1000};
    rig.net.host(src).nic().enqueue(p);
  }
}

TEST(CounterScraper, SilentFaultInvisibleToCounters) {
  ProbeRig rig;
  rig.net.set_link_fault(net::LeafId{0}, net::UplinkIndex{0},
                         net::FaultSpec::random_drop(0.10));  // silent
  CounterScraper scraper{rig.sim, rig.net, {}};
  scraper.start(Time::milliseconds(1));
  blast(rig, net::HostId{0}, net::HostId{2}, 2000);
  rig.sim.run();
  // Packets really died...
  EXPECT_GT(rig.net.total_fabric_counters().dropped_packets.v(), 50u);
  // ...but the error counters never moved: no alarm, ever.
  EXPECT_TRUE(scraper.alarms().empty());
  EXPECT_GT(scraper.polls(), 5u);
}

TEST(CounterScraper, VisibleFaultAlarmsWithinOnePeriod) {
  ProbeRig rig;
  net::FaultSpec fault = net::FaultSpec::random_drop(0.10);
  fault.visible_to_counters = true;  // e.g. CRC errors the port does count
  rig.net.set_link_fault(net::LeafId{0}, net::UplinkIndex{0}, fault);
  CounterScraperConfig cfg;
  cfg.period = Time::microseconds(20);
  CounterScraper scraper{rig.sim, rig.net, cfg};
  scraper.start(Time::milliseconds(1));
  blast(rig, net::HostId{0}, net::HostId{2}, 2000);
  rig.sim.run();
  ASSERT_FALSE(scraper.alarms().empty());
  EXPECT_NEAR(scraper.alarms().front().counted_drop_rate, 0.10, 0.06);
  EXPECT_EQ(scraper.alarms().front().link.substr(0, 3), "up:");
}

TEST(CounterScraper, HealthyFabricNeverAlarms) {
  ProbeRig rig;
  CounterScraper scraper{rig.sim, rig.net, {}};
  scraper.start(Time::milliseconds(1));
  blast(rig, net::HostId{1}, net::HostId{3}, 2000);
  rig.sim.run();
  EXPECT_TRUE(scraper.alarms().empty());
}

}  // namespace
}  // namespace flowpulse::baseline
