// FlowPulse core tests: analytical model math, the port monitor's
// iteration delimiting, threshold detection, localization, and the
// learned model's re-baselining state machine.
#include <gtest/gtest.h>

#include <cmath>

#include "collective/demand_matrix.h"
#include "core/strong_id.h"
#include "core/units.h"
#include "flowpulse/analytical_model.h"
#include "flowpulse/detector.h"
#include "flowpulse/learned_model.h"
#include "flowpulse/monitor.h"
#include "flowpulse/port_load.h"
#include "net/routing.h"
#include "net/topology_info.h"

namespace flowpulse::fp {
namespace {

using collective::DemandMatrix;
using net::RoutingState;
using net::TopologyInfo;

// ---------------------------------------------------------------------------
// AnalyticalModel
// ---------------------------------------------------------------------------

class AnalyticalModelTest : public ::testing::Test {
 protected:
  TopologyInfo info{4, 4, 1, 1};  // 4 leaves × 4 spines, 1 host/leaf
  RoutingState routing{4, 4};
  AnalyticalModel model{info, 4096, core::Bytes{64}};
};

TEST_F(AnalyticalModelTest, WireBytesAccountsForSegmentation) {
  EXPECT_DOUBLE_EQ(model.wire_bytes(core::Bytes{0}), 0.0);
  EXPECT_DOUBLE_EQ(model.wire_bytes(core::Bytes{4096}), 4096 + 64);
  EXPECT_DOUBLE_EQ(model.wire_bytes(core::Bytes{4097}), 4097 + 2 * 64);
  EXPECT_DOUBLE_EQ(model.wire_bytes(core::Bytes{8192}), 8192 + 2 * 64);
}

TEST_F(AnalyticalModelTest, FaultFreeSplitsEvenlyAcrossSpines) {
  DemandMatrix d{4};
  d.add(net::HostId{0}, net::HostId{1}, core::Bytes{4096 * 4});  // 4 segments
  const PortLoadMap map = model.predict(d, routing);
  const double wire = 4 * (4096 + 64);
  for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(4)) {
    EXPECT_DOUBLE_EQ(map.at(net::LeafId{1}, u).total, wire / 4);
    EXPECT_DOUBLE_EQ(map.at(net::LeafId{1}, u).by_src_leaf[0], wire / 4);
    // Nothing lands at other leaves.
    EXPECT_DOUBLE_EQ(map.at(net::LeafId{2}, u).total, 0.0);
  }
}

TEST_F(AnalyticalModelTest, KnownFaultRedistributesOverRemaining) {
  // Paper §5.2: d bytes, f failed adjacent spines, s spines → each
  // surviving spine carries d/(s−f).
  routing.set_known_failed(net::LeafId{0}, net::UplinkIndex{2});  // source-side failure
  DemandMatrix d{4};
  d.add(net::HostId{0}, net::HostId{1}, core::Bytes{4096 * 12});
  const PortLoadMap map = model.predict(d, routing);
  const double wire = 12 * (4096 + 64);
  for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(4)) {
    EXPECT_DOUBLE_EQ(map.at(net::LeafId{1}, u).total, u == net::UplinkIndex{2} ? 0.0 : wire / 3);
  }
}

TEST_F(AnalyticalModelTest, DestinationSideFaultAlsoCounts) {
  routing.set_known_failed(net::LeafId{1}, net::UplinkIndex{0});  // destination-side failure
  routing.set_known_failed(net::LeafId{0}, net::UplinkIndex{3});  // plus source-side → s − f = 2
  DemandMatrix d{4};
  d.add(net::HostId{0}, net::HostId{1}, core::Bytes{4096 * 8});
  const PortLoadMap map = model.predict(d, routing);
  const double wire = 8 * (4096 + 64);
  EXPECT_DOUBLE_EQ(map.at(net::LeafId{1}, net::UplinkIndex{0}).total, 0.0);
  EXPECT_DOUBLE_EQ(map.at(net::LeafId{1}, net::UplinkIndex{1}).total, wire / 2);
  EXPECT_DOUBLE_EQ(map.at(net::LeafId{1}, net::UplinkIndex{2}).total, wire / 2);
  EXPECT_DOUBLE_EQ(map.at(net::LeafId{1}, net::UplinkIndex{3}).total, 0.0);
}

TEST_F(AnalyticalModelTest, IntraLeafTrafficNeverReachesSpines) {
  const TopologyInfo two_per{2, 4, 2, 1};
  AnalyticalModel m{two_per, 4096, core::Bytes{64}};
  RoutingState r{2, 4};
  DemandMatrix d{4};
  d.add(net::HostId{0}, net::HostId{1}, core::Bytes{1 << 20});  // hosts 0,1 share leaf 0
  const PortLoadMap map = m.predict(d, r);
  EXPECT_DOUBLE_EQ(map.total(), 0.0);
}

TEST_F(AnalyticalModelTest, MultipleSendersAccumulatePerSender) {
  DemandMatrix d{4};
  d.add(net::HostId{0}, net::HostId{3}, core::Bytes{4096 * 4});
  d.add(net::HostId{1}, net::HostId{3}, core::Bytes{4096 * 8});
  const PortLoadMap map = model.predict(d, routing);
  for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(4)) {
    EXPECT_DOUBLE_EQ(map.at(net::LeafId{3}, u).by_src_leaf[0], 4 * (4096 + 64) / 4.0);
    EXPECT_DOUBLE_EQ(map.at(net::LeafId{3}, u).by_src_leaf[1], 8 * (4096 + 64) / 4.0);
    EXPECT_DOUBLE_EQ(map.at(net::LeafId{3}, u).total,
                     map.at(net::LeafId{3}, u).by_src_leaf[0] + map.at(net::LeafId{3}, u).by_src_leaf[1]);
  }
}

TEST_F(AnalyticalModelTest, PartitionedPairContributesNothing) {
  for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(4)) {
    routing.set_known_failed(net::LeafId{1}, u);
  }
  DemandMatrix d{4};
  d.add(net::HostId{0}, net::HostId{1}, core::Bytes{1 << 20});
  const PortLoadMap map = model.predict(d, routing);
  EXPECT_DOUBLE_EQ(map.total(), 0.0);
}

// ---------------------------------------------------------------------------
// PortMonitor
// ---------------------------------------------------------------------------

net::Packet data_packet(std::uint32_t iter, std::uint32_t src, std::uint32_t size,
                        std::uint16_t job = 0) {
  net::Packet p;
  p.flow_id = net::flowid::make_collective(net::IterIndex{iter}, job);
  p.src = net::HostId{src};
  p.size_bytes = core::Bytes{size};
  p.kind = net::PacketKind::kData;
  return p;
}

class PortMonitorTest : public ::testing::Test {
 protected:
  TopologyInfo info{4, 2, 1, 1};
  PortMonitor mon{net::LeafId{1}, info};
};

TEST_F(PortMonitorTest, CountsTaggedDataBytesPerPort) {
  mon.record(net::UplinkIndex{0}, data_packet(0, 0, 1000));
  mon.record(net::UplinkIndex{1}, data_packet(0, 2, 500));
  mon.record(net::UplinkIndex{0}, data_packet(0, 0, 200));
  mon.flush();
  ASSERT_EQ(mon.history().size(), 1u);
  const IterationRecord& r = mon.history()[0];
  EXPECT_EQ(r.iteration, net::IterIndex{0});
  EXPECT_DOUBLE_EQ(r.bytes[0], 1200.0);
  EXPECT_DOUBLE_EQ(r.bytes[1], 500.0);
  EXPECT_DOUBLE_EQ(r.by_src[0][0], 1200.0);
  EXPECT_DOUBLE_EQ(r.by_src[1][2], 500.0);
}

TEST_F(PortMonitorTest, IgnoresAcksProbesAndUntagged) {
  net::Packet ack = data_packet(0, 0, 64);
  ack.kind = net::PacketKind::kAck;
  mon.record(net::UplinkIndex{0}, ack);
  net::Packet probe = data_packet(0, 0, 64);
  probe.kind = net::PacketKind::kProbe;
  mon.record(net::UplinkIndex{0}, probe);
  net::Packet untagged = data_packet(0, 0, 999);
  untagged.flow_id = 0x1234;
  mon.record(net::UplinkIndex{0}, untagged);
  mon.flush();
  EXPECT_TRUE(mon.history().empty());  // nothing measurable ever arrived
}

TEST_F(PortMonitorTest, IgnoresOtherJobs) {
  mon.record(net::UplinkIndex{0}, data_packet(0, 0, 1000, /*job=*/3));
  mon.flush();
  EXPECT_TRUE(mon.history().empty());

  PortMonitor job3{net::LeafId{1}, info, 3};
  job3.record(net::UplinkIndex{0}, data_packet(0, 0, 1000, 3));
  job3.flush();
  ASSERT_EQ(job3.history().size(), 1u);
}

TEST_F(PortMonitorTest, NextIterationFinalizesPrevious) {
  int finalized = 0;
  mon.set_finalize_hook([&](const IterationRecord&) { ++finalized; });
  mon.record(net::UplinkIndex{0}, data_packet(0, 0, 100));
  EXPECT_EQ(finalized, 0);
  mon.record(net::UplinkIndex{0}, data_packet(1, 0, 100));  // first packet of iteration 1
  EXPECT_EQ(finalized, 1);
  mon.record(net::UplinkIndex{1}, data_packet(1, 0, 300));
  mon.flush();
  EXPECT_EQ(finalized, 2);
  ASSERT_EQ(mon.history().size(), 2u);
  EXPECT_DOUBLE_EQ(mon.history()[1].bytes[1], 300.0);
}

TEST_F(PortMonitorTest, LateStragglerPacketsFoldIntoCurrentWindow) {
  mon.record(net::UplinkIndex{0}, data_packet(0, 0, 100));
  mon.record(net::UplinkIndex{0}, data_packet(1, 0, 100));  // iteration 1 opens
  mon.record(net::UplinkIndex{0}, data_packet(0, 0, 50));   // late duplicate from iteration 0
  mon.flush();
  ASSERT_EQ(mon.history().size(), 2u);
  EXPECT_DOUBLE_EQ(mon.history()[0].bytes[0], 100.0);
  EXPECT_DOUBLE_EQ(mon.history()[1].bytes[0], 150.0);
}

TEST_F(PortMonitorTest, FlushIsIdempotent) {
  mon.record(net::UplinkIndex{0}, data_packet(0, 0, 100));
  mon.flush();
  mon.flush();
  EXPECT_EQ(mon.history().size(), 1u);
}

// ---------------------------------------------------------------------------
// Detector + localization
// ---------------------------------------------------------------------------

TEST(RelativeDeviation, Basics) {
  EXPECT_DOUBLE_EQ(relative_deviation(99.0, 100.0), 0.01);
  EXPECT_DOUBLE_EQ(relative_deviation(101.0, 100.0), 0.01);
  EXPECT_DOUBLE_EQ(relative_deviation(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(relative_deviation(5.0, 0.0)));
}

IterationRecord record_with(std::uint32_t uplinks, std::uint32_t leaves,
                            const std::vector<double>& bytes) {
  IterationRecord r;
  r.leaf = net::LeafId{0};
  r.iteration = net::IterIndex{7};
  r.bytes = bytes;
  r.by_src.assign(uplinks, std::vector<double>(leaves, 0.0));
  return r;
}

TEST(Detector, NoAlertWithinThreshold) {
  PortLoadMap pred{2, 2};
  pred.add(net::LeafId{0}, net::UplinkIndex{0}, net::LeafId{1}, 1000.0);
  pred.add(net::LeafId{0}, net::UplinkIndex{1}, net::LeafId{1}, 1000.0);
  Detector det{pred, 0.01};
  const DetectionResult res = det.evaluate(record_with(2, 2, {995.0, 1005.0}));
  EXPECT_FALSE(res.faulty());
  EXPECT_NEAR(res.max_rel_dev, 0.005, 1e-12);
}

TEST(Detector, AlertBeyondThreshold) {
  PortLoadMap pred{2, 2};
  pred.add(net::LeafId{0}, net::UplinkIndex{0}, net::LeafId{1}, 1000.0);
  pred.add(net::LeafId{0}, net::UplinkIndex{1}, net::LeafId{1}, 1000.0);
  Detector det{pred, 0.01};
  const DetectionResult res = det.evaluate(record_with(2, 2, {960.0, 1000.0}));
  ASSERT_EQ(res.alerts.size(), 1u);
  EXPECT_EQ(res.alerts[0].uplink, net::UplinkIndex{0});
  EXPECT_NEAR(res.alerts[0].rel_dev, 0.04, 1e-12);
  EXPECT_EQ(res.iteration, net::IterIndex{7});
}

TEST(Detector, SurplusTrafficAlsoAlerts) {
  PortLoadMap pred{1, 1};
  pred.add(net::LeafId{0}, net::UplinkIndex{0}, net::LeafId{0}, 1000.0);
  Detector det{pred, 0.01};
  EXPECT_TRUE(det.evaluate(record_with(1, 1, {1100.0})).faulty());
}

TEST(Detector, TrafficOnSilentPortIsInfinitelyDeviant) {
  PortLoadMap pred{2, 2};
  pred.add(net::LeafId{0}, net::UplinkIndex{1}, net::LeafId{1}, 1000.0);  // port 0 predicted silent
  Detector det{pred, 0.01};
  const DetectionResult res = det.evaluate(record_with(2, 2, {50.0, 1000.0}));
  ASSERT_EQ(res.alerts.size(), 1u);
  EXPECT_TRUE(std::isinf(res.alerts[0].rel_dev));
}

TEST(Localize, AllSendersShortMeansLocalLink) {
  PortLoad pred{4};
  pred.by_src_leaf = {0.0, 500.0, 500.0, 0.0};
  pred.total = 1000.0;
  IterationRecord rec = record_with(1, 4, {900.0});
  rec.by_src[0] = {0.0, 450.0, 450.0, 0.0};  // both senders −10%
  const Localization loc = localize(rec, pred, net::UplinkIndex{0}, 0.01);
  EXPECT_EQ(loc.verdict, Localization::Verdict::kLocalLink);
  EXPECT_TRUE(loc.suspect_senders.empty());
}

TEST(Localize, SingleSenderShortMeansRemoteLink) {
  // Fig. 4: L2's port from S1 misses only L1's traffic → remote L1–S1 link.
  PortLoad pred{4};
  pred.by_src_leaf = {0.0, 500.0, 500.0, 0.0};
  pred.total = 1000.0;
  IterationRecord rec = record_with(1, 4, {950.0});
  rec.by_src[0] = {0.0, 450.0, 500.0, 0.0};  // only leaf 1 short
  const Localization loc = localize(rec, pred, net::UplinkIndex{0}, 0.01);
  EXPECT_EQ(loc.verdict, Localization::Verdict::kRemoteLinks);
  ASSERT_EQ(loc.suspect_senders.size(), 1u);
  EXPECT_EQ(loc.suspect_senders[0], net::LeafId{1});
}

TEST(Localize, SurplusOnlyIsUnknown) {
  PortLoad pred{2};
  pred.by_src_leaf = {0.0, 500.0};
  pred.total = 500.0;
  IterationRecord rec = record_with(1, 2, {600.0});
  rec.by_src[0] = {0.0, 600.0};
  EXPECT_EQ(localize(rec, pred, net::UplinkIndex{0}, 0.01).verdict, Localization::Verdict::kUnknown);
}

// ---------------------------------------------------------------------------
// LearnedModel
// ---------------------------------------------------------------------------

IterationRecord uniform_record(std::uint32_t uplinks, double bytes, std::uint32_t iter = 0) {
  IterationRecord r;
  r.iteration = net::IterIndex{iter};
  r.bytes.assign(uplinks, bytes);
  r.by_src.assign(uplinks, std::vector<double>(1, bytes));
  return r;
}

TEST(LearnedModel, LearnsBaselineThenAccepts) {
  LearnedModel m{4, {.learn_iterations = 3, .threshold = 0.01}};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(m.observe(uniform_record(4, 1000.0)).kind,
              LearnedModel::Outcome::Kind::kLearning);
  }
  EXPECT_EQ(m.phase(), LearnedModel::Phase::kMonitoring);
  EXPECT_EQ(m.observe(uniform_record(4, 1004.0)).kind, LearnedModel::Outcome::Kind::kOk);
  EXPECT_DOUBLE_EQ(m.baseline()[0], 1000.0);
}

TEST(LearnedModel, AlertsOnNewFaultSignature) {
  LearnedModel m{4, {.learn_iterations = 2, .threshold = 0.01}};
  m.observe(uniform_record(4, 1000.0));
  m.observe(uniform_record(4, 1000.0));
  IterationRecord faulty = uniform_record(4, 1010.0);  // others pick up retx
  faulty.bytes[2] = 940.0;                             // port 2 drops 6%
  const auto out = m.observe(faulty);
  EXPECT_EQ(out.kind, LearnedModel::Outcome::Kind::kAlert);
  ASSERT_FALSE(out.deviating_ports.empty());
}

TEST(LearnedModel, RebaselinesWhenTransientFaultHeals) {
  // Fig. 3: learn under a fault (port 1 suppressed), then the fault heals:
  // port 1 rises and dispersion shrinks → re-baseline, not alert.
  LearnedModel m{4, {.learn_iterations = 2, .threshold = 0.01}};
  IterationRecord poisoned = uniform_record(4, 1020.0);
  poisoned.bytes[1] = 900.0;
  m.observe(poisoned);
  m.observe(poisoned);
  EXPECT_EQ(m.phase(), LearnedModel::Phase::kMonitoring);

  const IterationRecord healed = uniform_record(4, 1000.0);
  const auto out = m.observe(healed);
  EXPECT_EQ(out.kind, LearnedModel::Outcome::Kind::kRebaseline);
  EXPECT_EQ(m.rebaseline_count(), 1u);

  // After the re-learning window, the healthy load is the new baseline.
  m.observe(healed);
  EXPECT_EQ(m.phase(), LearnedModel::Phase::kMonitoring);
  EXPECT_DOUBLE_EQ(m.baseline()[1], 1000.0);
  EXPECT_EQ(m.observe(uniform_record(4, 1000.0)).kind, LearnedModel::Outcome::Kind::kOk);
}

TEST(LearnedModel, DispersionIgnoresDeadPorts) {
  EXPECT_DOUBLE_EQ(LearnedModel::dispersion({0.0, 100.0, 100.0}), 0.0);
  EXPECT_GT(LearnedModel::dispersion({0.0, 100.0, 200.0}), 0.0);
  EXPECT_DOUBLE_EQ(LearnedModel::dispersion({}), 0.0);
  EXPECT_DOUBLE_EQ(LearnedModel::dispersion({50.0}), 0.0);
}

TEST(LearnedModel, AlertsCarryLocalizationFromLearnedPerSenderBaseline) {
  LearnedModel m{2, {.learn_iterations = 2, .threshold = 0.01}};
  // Two senders (leaves 0 and 1) contribute 600/400 to each port.
  IterationRecord base;
  base.bytes = {1000.0, 1000.0};
  base.by_src = {{600.0, 400.0}, {600.0, 400.0}};
  m.observe(base);
  m.observe(base);
  ASSERT_EQ(m.phase(), LearnedModel::Phase::kMonitoring);
  EXPECT_DOUBLE_EQ(m.baseline_by_src(net::UplinkIndex{0})[0], 600.0);
  EXPECT_DOUBLE_EQ(m.baseline_by_src(net::UplinkIndex{1})[1], 400.0);

  // Port 0 loses ONLY sender 1's traffic → remote verdict naming leaf 1.
  IterationRecord faulty = base;
  faulty.bytes[0] = 920.0;
  faulty.by_src[0] = {600.0, 320.0};
  const auto out = m.observe(faulty);
  ASSERT_EQ(out.kind, LearnedModel::Outcome::Kind::kAlert);
  ASSERT_EQ(out.deviating_ports.size(), 1u);
  ASSERT_EQ(out.localizations.size(), 1u);
  EXPECT_EQ(out.localizations[0].verdict, Localization::Verdict::kRemoteLinks);
  EXPECT_EQ(out.localizations[0].suspect_senders, std::vector<net::LeafId>{net::LeafId{1}});

  // Both senders short → local link verdict.
  IterationRecord local = base;
  local.bytes[1] = 900.0;
  local.by_src[1] = {540.0, 360.0};
  const auto out2 = m.observe(local);
  ASSERT_EQ(out2.kind, LearnedModel::Outcome::Kind::kAlert);
  ASSERT_EQ(out2.localizations.size(), 1u);
  EXPECT_EQ(out2.localizations[0].verdict, Localization::Verdict::kLocalLink);
}

TEST(LearnedModel, NewFaultAfterRebaselineStillAlerts) {
  LearnedModel m{2, {.learn_iterations = 1, .threshold = 0.01}};
  IterationRecord poisoned = uniform_record(2, 1000.0);
  poisoned.bytes[0] = 800.0;
  m.observe(poisoned);                        // baseline (fault present)
  m.observe(uniform_record(2, 1000.0));       // heals → rebaseline sample
  EXPECT_EQ(m.phase(), LearnedModel::Phase::kMonitoring);
  IterationRecord faulty = uniform_record(2, 1000.0);
  faulty.bytes[1] = 900.0;
  EXPECT_EQ(m.observe(faulty).kind, LearnedModel::Outcome::Kind::kAlert);
}

}  // namespace
}  // namespace flowpulse::fp
