// Replays the checked-in fuzz seed corpus (tools/fuzz/corpus/) through the
// same harness functions the libFuzzer binaries call, in the DEFAULT build
// — so every plain `ctest` run re-proves the structured-error-or-valid-
// reply contract over every seed (valid frames of each opcode, truncation
// at every byte, wrapping dimensions, oversized prefixes, recorded
// --dump-counters streams), no clang or libFuzzer required. A corpus input
// that violates an invariant aborts the harness, which fails the test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <span>
#include <vector>

#include "harness.h"

namespace flowpulse::fuzz {
namespace {

std::filesystem::path corpus_root() { return FP_FUZZ_CORPUS_DIR; }

std::vector<std::filesystem::path> corpus_files(const std::string& surface) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator{corpus_root() / surface}) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::uint8_t> slurp(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

void replay(const std::string& surface,
            const std::function<void(std::span<const std::uint8_t>)>& one,
            std::size_t min_inputs) {
  const std::vector<std::filesystem::path> files = corpus_files(surface);
  // A thinned-out corpus is a silent loss of coverage, not a pass.
  ASSERT_GE(files.size(), min_inputs) << "corpus " << surface << " lost seeds";
  for (const auto& file : files) {
    SCOPED_TRACE(file.filename().string());
    const std::vector<std::uint8_t> bytes = slurp(file);
    one(bytes);  // aborts (fails the test) on any violated invariant
  }
}

TEST(FuzzCorpus, CodecSeedsHoldInvariants) { replay("codec", codec_one, 40); }

TEST(FuzzCorpus, EngineSeedsHoldInvariants) { replay("engine", engine_one, 10); }

TEST(FuzzCorpus, StreamSeedsHoldInvariants) { replay("stream", stream_one, 40); }

}  // namespace
}  // namespace flowpulse::fuzz
