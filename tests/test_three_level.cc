// Three-level Clos extension (paper §7): topology wiring, path locality,
// the two-tier analytical model, and FlowPulse monitors at both the leaf
// and pod-spine levels.
#include <gtest/gtest.h>

#include <memory>

#include "collective/runner.h"
#include "core/strong_id.h"
#include "flowpulse/three_level_system.h"
#include "net/three_level.h"
#include "sim/simulator.h"
#include "transport/transport_layer.h"

namespace flowpulse::net {
namespace {

using sim::Simulator;
using sim::Time;

TEST(ThreeLevelInfo, Shape) {
  const ThreeLevelInfo info{4, 4, 2, 1};  // 4 pods × (4 leaves + 2 spines)
  EXPECT_EQ(info.num_leaves(), 16u);
  EXPECT_EQ(info.num_pod_spines(), 8u);
  EXPECT_EQ(info.cores_per_group(), 4u);
  EXPECT_EQ(info.num_cores(), 8u);
  EXPECT_EQ(info.num_hosts(), 16u);
  EXPECT_EQ(info.pod_of_leaf(LeafId{5}), 1u);
  EXPECT_EQ(info.local_leaf(LeafId{5}), 1u);
  EXPECT_EQ(info.pod_spine_id(2, 1), 5u);
  EXPECT_EQ(info.core_id(1, 3), 7u);
}

struct Rig3 {
  explicit Rig3(ThreeLevelInfo shape = {2, 2, 2, 1}, std::uint64_t seed = 1)
      : sim{seed}, net{sim, make_config(shape, seed)} {}
  static ThreeLevelConfig make_config(ThreeLevelInfo shape, std::uint64_t seed) {
    ThreeLevelConfig cfg;
    cfg.shape = shape;
    cfg.seed = seed;
    return cfg;
  }
  Simulator sim;
  ThreeLevelFatTree net;
};

Packet packet_to(HostId src, HostId dst, std::uint32_t size = 1000) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.size_bytes = core::Bytes{size};
  return p;
}

TEST(ThreeLevel, AllPairsReachable) {
  Rig3 rig{{2, 2, 2, 2}};  // 8 hosts
  int got = 0;
  for (const HostId h : core::ids<HostId>(rig.net.num_hosts())) {
    rig.net.host(h).set_rx_handler([&](const Packet&) { ++got; });
  }
  int sent = 0;
  for (const HostId s : core::ids<HostId>(rig.net.num_hosts())) {
    for (const HostId d : core::ids<HostId>(rig.net.num_hosts())) {
      if (s == d) continue;
      rig.net.host(s).nic().enqueue(packet_to(s, d));
      ++sent;
    }
  }
  rig.sim.run();
  EXPECT_EQ(got, sent);
}

TEST(ThreeLevel, SamePodTrafficNeverTouchesCores) {
  Rig3 rig{{2, 2, 2, 1}};
  rig.net.host(HostId{1}).set_rx_handler([](const Packet&) {});
  for (int i = 0; i < 100; ++i) {
    rig.net.host(HostId{0}).nic().enqueue(packet_to(HostId{0}, HostId{1}));  // leaves 0→1, both pod 0
  }
  rig.sim.run();
  for (std::uint32_t g = 0; g < 2; ++g) {
    for (std::uint32_t k = 0; k < 2; ++k) {
      for (std::uint32_t pod = 0; pod < 2; ++pod) {
        EXPECT_EQ(rig.net.core(g, k).down_port(pod).counters().tx_packets, core::Packets{0});
      }
    }
  }
}

TEST(ThreeLevel, CrossPodTrafficSpreadsOverSpinesAndCores) {
  Rig3 rig{{2, 2, 2, 1}};
  rig.net.host(HostId{2}).set_rx_handler([](const Packet&) {});
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    rig.net.host(HostId{0}).nic().enqueue(packet_to(HostId{0}, HostId{2}));  // pod 0 → pod 1
  }
  rig.sim.run();
  // 2 spines × 2 cores = 4 paths; byte-deficit spraying balances them.
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint32_t k = 0; k < 2; ++k) {
      const auto& up = rig.net.pod_spine(0, s).core_uplink(k).counters();
      EXPECT_NEAR(up.tx_packets.dbl(), n / 4.0, n / 16.0);
    }
  }
}

TEST(ThreeLevel, ByteConservation) {
  Rig3 rig{{2, 2, 2, 2}, 5};
  rig.net.set_core_link_fault(0, 1, 0, FaultSpec::random_drop(0.2));
  int got = 0;
  for (const HostId h : core::ids<HostId>(8)) {
    rig.net.host(h).set_rx_handler([&](const Packet&) { ++got; });
  }
  for (int i = 0; i < 200; ++i) {
    rig.net.host(HostId{0}).nic().enqueue(packet_to(HostId{0}, HostId{5}, 900));
    rig.net.host(HostId{3}).nic().enqueue(packet_to(HostId{3}, HostId{6}, 900));
  }
  rig.sim.run();
  const LinkCounters total = rig.net.total_fabric_counters();
  EXPECT_EQ(total.tx_packets, total.dropped_packets + total.delivered_packets());
  EXPECT_GT(total.dropped_packets, core::Packets{0});
}

TEST(ThreeLevel, KnownDisconnectAvoidedEndToEnd) {
  Rig3 rig{{2, 2, 2, 1}};
  // Leaf 2 (pod 1) loses its link to pod-spine index 0: cross-pod traffic
  // to leaf 2 must use spine index 1 (and its core group) exclusively.
  rig.net.disconnect_known(LeafId{2}, 0);
  int got = 0;
  rig.net.host(HostId{2}).set_rx_handler([&](const Packet&) { ++got; });
  for (int i = 0; i < 100; ++i) {
    rig.net.host(HostId{0}).nic().enqueue(packet_to(HostId{0}, HostId{2}));
  }
  rig.sim.run();
  EXPECT_EQ(got, 100);
  EXPECT_EQ(rig.net.leaf(LeafId{0}).uplink(0).counters().tx_packets, core::Packets{0});
  for (std::uint32_t k = 0; k < 2; ++k) {
    EXPECT_EQ(rig.net.core(0, k).down_port(1).counters().tx_packets, core::Packets{0});
  }
}

// ---------------------------------------------------------------------------
// End-to-end with collectives + two-tier FlowPulse
// ---------------------------------------------------------------------------

struct FullRig3 {
  explicit FullRig3(ThreeLevelInfo shape, std::uint64_t bytes, std::uint32_t iterations,
                    std::uint64_t seed = 1)
      : sim{seed},
        net{sim, Rig3::make_config(shape, seed)},
        transports{sim, net},
        fps{net, 0.01} {
    collective::CollectiveConfig cc;
    for (const HostId h : core::ids<HostId>(net.num_hosts())) cc.hosts.push_back(h);
    cc.schedule = collective::ring_reduce_scatter(net.num_hosts(), core::Bytes{bytes});
    cc.iterations = iterations;
    runner = std::make_unique<collective::CollectiveRunner>(sim, transports, std::move(cc));

    std::vector<HostId> hosts(net.num_hosts(), HostId{});
    for (const HostId h : core::ids<HostId>(net.num_hosts())) hosts[h.v()] = h;
    const auto demand = collective::DemandMatrix::from_schedule(
        runner->current_schedule(), hosts, net.num_hosts());
    const fp::ThreeLevelAnalyticalModel model{net.info(), 4096, kHeaderBytes};
    fps.set_prediction(model.predict(demand, net.routing()));
  }

  void run() {
    runner->start();
    sim.run();
    fps.flush();
  }

  Simulator sim;
  ThreeLevelFatTree net;
  transport::TransportLayer transports;
  fp::ThreeLevelFlowPulse fps;
  std::unique_ptr<collective::CollectiveRunner> runner;
};

TEST(ThreeLevelFlowPulse, CleanRunQuietAtBothTiers) {
  FullRig3 rig{{4, 2, 2, 1}, 8ull << 20, 3};
  rig.run();
  EXPECT_TRUE(rig.runner->finished());
  for (const double dev : rig.fps.leaf_iteration_max_dev()) EXPECT_LT(dev, 0.01);
  for (const double dev : rig.fps.spine_iteration_max_dev()) EXPECT_LT(dev, 0.01);
}

TEST(ThreeLevelFlowPulse, LeafLinkFaultSeenAtLeafTier) {
  FullRig3 rig{{4, 2, 2, 1}, 8ull << 20, 3};
  rig.net.set_leaf_link_fault(LeafId{3}, 1, FaultSpec::random_drop(0.05));
  rig.run();
  bool found = false;
  for (const auto& r : rig.fps.faulty_leaf_results()) {
    for (const auto& a : r.alerts) {
      if (r.leaf == LeafId{3} && a.uplink == UplinkIndex{1} &&
          a.observed < a.predicted) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(ThreeLevelFlowPulse, CoreLinkFaultLocalizedAtSpineTier) {
  // A silent core↔pod-spine fault: the pod-spine monitor sees the full drop
  // rate on the corresponding core port, while each leaf port only sees it
  // diluted by 1/cores_per_group — spine-tier monitoring is what makes core
  // links localizable (the paper's §7 argument for two-level deployment).
  FullRig3 rig{{4, 2, 2, 1}, 16ull << 20, 3};
  rig.net.set_core_link_fault(/*pod=*/1, /*spine=*/0, /*k=*/1,
                              FaultSpec::random_drop(0.08));
  rig.run();
  bool spine_found = false;
  for (const auto& r : rig.fps.faulty_spine_results()) {
    for (const auto& a : r.alerts) {
      // pod-spine id 2 = pod 1, index 0; port 1 = core k=1.
      if (r.leaf.v() == rig.net.info().pod_spine_id(1, 0) && a.uplink == UplinkIndex{1} &&
          a.observed < a.predicted) {
        spine_found = true;
      }
    }
  }
  EXPECT_TRUE(spine_found);

  // The spine tier's deviation must dominate the leaf tier's diluted view.
  double leaf_max = 0.0, spine_max = 0.0;
  for (const double d : rig.fps.leaf_iteration_max_dev()) leaf_max = std::max(leaf_max, d);
  for (const double d : rig.fps.spine_iteration_max_dev()) {
    spine_max = std::max(spine_max, d);
  }
  EXPECT_GT(spine_max, leaf_max);
}

}  // namespace
}  // namespace flowpulse::net
