// The parallel trial engine's contract: whatever the job count, a sweep
// produces bit-identical TrialSamples to the serial runner — same seed
// schedule (exp::trial_seed), one self-contained Simulator per trial,
// results merged in trial order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "exp/trials.h"

namespace flowpulse::exp {
namespace {

ScenarioConfig small_fault_scenario() {
  ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{4, 2, 1, 1};
  cfg.collective_bytes = core::Bytes{1 << 20};
  cfg.iterations = 3;
  cfg.seed = 42;
  NewFault f;
  f.leaf = net::LeafId{1};
  f.uplink = net::UplinkIndex{0};
  f.where = NewFault::Where::kBoth;
  f.spec = net::FaultSpec::random_drop(0.05);
  cfg.new_faults.push_back(f);
  return cfg;
}

void expect_bit_identical(const std::vector<TrialSamples>& a,
                          const std::vector<TrialSamples>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].dev.size(), b[t].dev.size()) << "trial " << t;
    ASSERT_EQ(a[t].truth.size(), b[t].truth.size()) << "trial " << t;
    for (std::size_t i = 0; i < a[t].dev.size(); ++i) {
      // Bit-identical, not approximately equal: the parallel engine reruns
      // the exact same deterministic simulation per trial.
      EXPECT_EQ(a[t].dev[i], b[t].dev[i]) << "trial " << t << " iter " << i;
    }
    EXPECT_EQ(a[t].truth, b[t].truth) << "trial " << t;
  }
}

TEST(RunTrialsParallel, BitIdenticalToSerialAcrossJobCounts) {
  const ScenarioConfig cfg = small_fault_scenario();
  const std::uint32_t n = 6;
  const auto serial = run_trials(cfg, n);
  for (const unsigned jobs : {1u, 2u, 4u, 16u}) {
    const auto parallel = run_trials_parallel(cfg, n, /*skip=*/0, jobs);
    expect_bit_identical(serial, parallel);
  }
}

TEST(RunTrialsParallel, SkipMatchesSerialSkip) {
  const ScenarioConfig cfg = small_fault_scenario();
  const auto serial = run_trials(cfg, 3, /*skip=*/1);
  const auto parallel = run_trials_parallel(cfg, 3, /*skip=*/1, /*jobs=*/3);
  expect_bit_identical(serial, parallel);
}

TEST(TrialSeed, IsDeterministicAndConstexpr) {
  // The schedule is a pure function of (base, t), computable at compile time.
  static_assert(trial_seed(1, 0) == trial_seed(1, 0));
  static_assert(trial_seed(1, 0) != trial_seed(1, 1));
  static_assert(trial_seed(1, 0) != trial_seed(2, 0));
  EXPECT_EQ(trial_seed(42, 7), trial_seed(42, 7));
}

TEST(TrialSeed, NoCollisionsAcrossOverlappingSweeps) {
  // The old schedule base + t * 7919 collided whenever two sweeps' bases
  // differed by a multiple of the stride: trial_seed(1, 5) == trial_seed(
  // 1 + 7919, 4), so "independent" experiments replayed each other's
  // trials. The mixed schedule must keep such sweeps fully disjoint.
  std::set<std::uint64_t> seen;
  std::size_t n = 0;
  for (const std::uint64_t base : {1ull, 1ull + 7919, 1ull + 5 * 7919, 42ull, 43ull}) {
    for (std::uint32_t t = 0; t < 64; ++t) {
      seen.insert(trial_seed(base, t));
      ++n;
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(TrialSeed, NeverYieldsDegenerateSeeds) {
  // Raw base seeds 0 and 1 are fine inputs; outputs must be well mixed
  // (never 0, which some PRNG seedings treat as a degenerate state).
  for (std::uint32_t t = 0; t < 256; ++t) {
    EXPECT_NE(trial_seed(0, t), 0u);
    EXPECT_NE(trial_seed(1, t), 0u);
  }
}

TEST(ParallelIndexed, PreservesIndexOrder) {
  const std::vector<int> out =
      parallel_indexed<int>(64, 4, [](std::uint32_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (std::uint32_t i = 0; i < 64; ++i) EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ParallelIndexed, PropagatesWorkerExceptions) {
  EXPECT_THROW(parallel_indexed<int>(8, 4,
                                     [](std::uint32_t i) -> int {
                                       if (i == 5) throw std::runtime_error{"trial 5 failed"};
                                       return static_cast<int>(i);
                                     }),
               std::runtime_error);
}

TEST(EnvJobs, DefaultsToAtLeastOne) { EXPECT_GE(env_jobs(), 1u); }

}  // namespace
}  // namespace flowpulse::exp
