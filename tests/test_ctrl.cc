// Closed-loop mitigation: unit tests drive the controller's state machine
// with synthetic DetectionResults; the end-to-end tests run the full
// detect → localize → quarantine → re-baseline → verify loop on a live
// scenario (the acceptance path for the ctrl/ subsystem).
#include <gtest/gtest.h>

#include "ctrl/controller.h"
#include "exp/scenario.h"
#include "exp/trials.h"
#include "net/routing.h"
#include "sim/simulator.h"

namespace flowpulse::ctrl {
namespace {

// ---------------------------------------------------------------------------
// State machine (synthetic feed)
// ---------------------------------------------------------------------------

fp::DetectionResult clean_result(std::uint32_t leaf, std::uint32_t iteration,
                                 double dev = 0.0) {
  fp::DetectionResult r;
  r.leaf = net::LeafId{leaf};
  r.iteration = net::IterIndex{iteration};
  r.max_rel_dev = dev;
  return r;
}

fp::DetectionResult shortfall_result(std::uint32_t leaf, std::uint32_t iteration,
                                     std::uint32_t uplink, double dev = 0.5) {
  fp::DetectionResult r = clean_result(leaf, iteration, dev);
  fp::PortAlert a;
  a.uplink = net::UplinkIndex{uplink};
  a.observed = 50.0;
  a.predicted = 100.0;
  a.rel_dev = dev;
  a.localization.verdict = fp::Localization::Verdict::kLocalLink;
  r.alerts.push_back(a);
  return r;
}

class ControllerTest : public ::testing::Test {
 protected:
  MitigationController make(MitigationPolicy policy) {
    policy.enabled = true;
    if (policy.threshold <= 0.0) policy.threshold = 0.01;
    // One synthetic report completes an iteration; the aggregation across
    // leaves has its own test below.
    if (policy.reports_per_iteration == 0) policy.reports_per_iteration = 1;
    return MitigationController{sim_, routing_, policy};
  }

  sim::Simulator sim_{1};
  net::RoutingState routing_{4, 4};
};

TEST_F(ControllerTest, DebouncesBeforeQuarantining) {
  MitigationPolicy p;
  p.debounce_iterations = 2;
  MitigationController c = make(p);
  c.observe(shortfall_result(1, 0, 2));
  EXPECT_TRUE(c.events().empty());
  EXPECT_FALSE(routing_.known_failed(net::LeafId{1}, net::UplinkIndex{2}));
  c.observe(shortfall_result(1, 1, 2));
  ASSERT_EQ(c.events().size(), 1u);
  EXPECT_EQ(c.events()[0].kind, MitigationEvent::Kind::kQuarantine);
  EXPECT_EQ(c.events()[0].leaf.v(), 1u);
  EXPECT_EQ(c.events()[0].uplink.v(), 2u);
  EXPECT_STREQ(c.events()[0].reason, "debounce");
  EXPECT_TRUE(routing_.known_failed(net::LeafId{1}, net::UplinkIndex{2}));
  EXPECT_TRUE(c.quarantined(net::LeafId{1}, net::UplinkIndex{2}));
  EXPECT_EQ(c.active_quarantines(), 1u);
}

TEST_F(ControllerTest, OneIterationBlipIsIgnored) {
  MitigationPolicy p;
  p.debounce_iterations = 2;
  MitigationController c = make(p);
  c.observe(shortfall_result(1, 0, 2));
  c.observe(clean_result(1, 1));
  c.observe(shortfall_result(1, 2, 2));
  c.observe(clean_result(1, 3));
  EXPECT_TRUE(c.events().empty());
  EXPECT_FALSE(routing_.known_failed(net::LeafId{1}, net::UplinkIndex{2}));
}

TEST_F(ControllerTest, QuarantineTriggersRebaseline) {
  MitigationPolicy p;
  p.debounce_iterations = 1;
  MitigationController c = make(p);
  int rebaselines = 0;
  c.set_rebaseline([&rebaselines] { ++rebaselines; });
  c.observe(shortfall_result(0, 0, 1));
  EXPECT_EQ(rebaselines, 1);
}

TEST_F(ControllerTest, ProbationConfirmsWhenAlertsStop) {
  MitigationPolicy p;
  p.debounce_iterations = 1;
  p.settle_iterations = 1;
  p.probation_iterations = 2;
  MitigationController c = make(p);
  c.observe(shortfall_result(1, 0, 2));  // quarantine at iteration 0
  c.observe(clean_result(1, 1));         // settle — not judged
  c.observe(clean_result(1, 2));
  c.observe(clean_result(1, 3));         // 2nd clean → confirm
  ASSERT_EQ(c.events().size(), 2u);
  EXPECT_EQ(c.events()[1].kind, MitigationEvent::Kind::kConfirm);
  EXPECT_STREQ(c.events()[1].reason, "quarantine");
  EXPECT_EQ(c.events()[1].iteration.v(), 3u);
  EXPECT_TRUE(routing_.known_failed(net::LeafId{1}, net::UplinkIndex{2}));
}

TEST_F(ControllerTest, IneffectiveQuarantineIsRestored) {
  MitigationPolicy p;
  p.debounce_iterations = 2;
  p.settle_iterations = 1;
  MitigationController c = make(p);
  c.observe(shortfall_result(1, 0, 2));
  c.observe(shortfall_result(1, 1, 2));  // quarantine at iteration 1
  ASSERT_EQ(c.events().size(), 1u);
  // The deviation does not go away (alerts now elsewhere / global noise):
  // iteration 2 is settle, 3 and 4 are dirty → restore.
  c.observe(clean_result(1, 2, 0.5));
  c.observe(clean_result(1, 3, 0.5));
  c.observe(clean_result(1, 4, 0.5));
  ASSERT_EQ(c.events().size(), 2u);
  EXPECT_EQ(c.events()[1].kind, MitigationEvent::Kind::kRestore);
  EXPECT_STREQ(c.events()[1].reason, "ineffective");
  EXPECT_FALSE(routing_.known_failed(net::LeafId{1}, net::UplinkIndex{2}));
  EXPECT_EQ(c.active_quarantines(), 0u);
}

TEST_F(ControllerTest, MisfireBudgetBansRepeatOffender) {
  MitigationPolicy p;
  p.debounce_iterations = 1;
  p.settle_iterations = 0;
  p.probation_iterations = 2;
  p.max_strikes = 1;
  MitigationController c = make(p);
  // Quarantine at 0; dirty at 1 → restore (misfire #1, budget exhausted).
  c.observe(shortfall_result(1, 0, 2));
  c.observe(clean_result(1, 1, 0.5));
  ASSERT_EQ(c.events().size(), 2u);
  // Implicated again: the ban must hold — no further quarantines.
  c.observe(shortfall_result(1, 2, 2));
  c.observe(shortfall_result(1, 3, 2));
  EXPECT_EQ(c.events().size(), 2u);
  EXPECT_FALSE(routing_.known_failed(net::LeafId{1}, net::UplinkIndex{2}));
}

TEST_F(ControllerTest, TrialRestoreConfirmsHealedLink) {
  MitigationPolicy p;
  p.debounce_iterations = 1;
  p.settle_iterations = 1;
  p.probation_iterations = 1;
  p.restore_probe_after = 2;
  MitigationController c = make(p);
  c.observe(shortfall_result(1, 0, 2));  // quarantine at 0
  c.observe(clean_result(1, 1));         // settle
  c.observe(clean_result(1, 2));         // confirm quarantine
  c.observe(clean_result(1, 3));         // confirmed 1
  c.observe(clean_result(1, 4));         // confirmed 2 → probe restore
  c.observe(clean_result(1, 5));         // settle
  c.observe(clean_result(1, 6));         // clean → confirm restore
  const auto& ev = c.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[1].kind, MitigationEvent::Kind::kConfirm);
  EXPECT_EQ(ev[2].kind, MitigationEvent::Kind::kRestore);
  EXPECT_STREQ(ev[2].reason, "probe");
  EXPECT_EQ(ev[3].kind, MitigationEvent::Kind::kConfirm);
  EXPECT_STREQ(ev[3].reason, "restore");
  EXPECT_FALSE(routing_.known_failed(net::LeafId{1}, net::UplinkIndex{2}));
  EXPECT_EQ(c.active_quarantines(), 0u);
}

TEST_F(ControllerTest, RelapseAfterProbeRequarantines) {
  MitigationPolicy p;
  p.debounce_iterations = 1;
  p.settle_iterations = 1;
  p.probation_iterations = 1;
  p.restore_probe_after = 1;
  p.max_strikes = 1;  // first relapse freezes the quarantine
  MitigationController c = make(p);
  c.observe(shortfall_result(1, 0, 2));  // quarantine
  c.observe(clean_result(1, 1));         // settle
  c.observe(clean_result(1, 2));         // confirm quarantine
  c.observe(clean_result(1, 3));         // → probe restore
  c.observe(clean_result(1, 4));         // settle
  c.observe(shortfall_result(1, 5, 2));  // alert returns → relapse
  const auto& ev = c.events();
  ASSERT_EQ(ev.size(), 5u);
  EXPECT_EQ(ev[3].kind, MitigationEvent::Kind::kQuarantine);
  EXPECT_STREQ(ev[3].reason, "relapse");
  EXPECT_EQ(ev[4].kind, MitigationEvent::Kind::kConfirm);
  EXPECT_STREQ(ev[4].reason, "permanent");
  EXPECT_TRUE(routing_.known_failed(net::LeafId{1}, net::UplinkIndex{2}));
  // Permanent: no more probes however long it stays clean.
  for (std::uint32_t i = 6; i < 12; ++i) c.observe(clean_result(1, i));
  EXPECT_EQ(c.events().size(), 5u);
  EXPECT_TRUE(routing_.known_failed(net::LeafId{1}, net::UplinkIndex{2}));
}

TEST_F(ControllerTest, RemoteVerdictBlamesSenderSideLink) {
  MitigationPolicy p;
  p.debounce_iterations = 1;
  MitigationController c = make(p);
  fp::DetectionResult r = clean_result(0, 0, 0.4);
  fp::PortAlert a;
  a.uplink = net::UplinkIndex{3};
  a.observed = 60.0;
  a.predicted = 100.0;
  a.rel_dev = 0.4;
  a.localization.verdict = fp::Localization::Verdict::kRemoteLinks;
  a.localization.suspect_senders = {net::LeafId{2}};
  r.alerts.push_back(a);
  c.observe(r);
  ASSERT_EQ(c.events().size(), 1u);
  EXPECT_EQ(c.events()[0].leaf.v(), 2u);  // the sender's link, not the observer's
  EXPECT_EQ(c.events()[0].uplink.v(), 3u);
  EXPECT_TRUE(routing_.known_failed(net::LeafId{2}, net::UplinkIndex{3}));
}

TEST_F(ControllerTest, SurplusAlertNamesNoSuspect) {
  MitigationPolicy p;
  p.debounce_iterations = 1;
  MitigationController c = make(p);
  fp::DetectionResult r = clean_result(0, 0, 0.4);
  fp::PortAlert a;
  a.uplink = net::UplinkIndex{3};
  a.observed = 140.0;  // surplus: retransmitted traffic resurfacing
  a.predicted = 100.0;
  a.rel_dev = 0.4;
  r.alerts.push_back(a);
  c.observe(r);
  c.observe(r);
  EXPECT_TRUE(c.events().empty());
}

TEST_F(ControllerTest, NeverPartitionsALeaf) {
  MitigationPolicy p;
  p.debounce_iterations = 1;
  p.min_healthy_uplinks = 3;
  MitigationController c = make(p);
  routing_.set_known_failed(net::LeafId{1}, net::UplinkIndex{0});  // pre-existing: 3 healthy uplinks left
  c.observe(shortfall_result(1, 0, 2));
  c.observe(shortfall_result(1, 1, 2));
  EXPECT_TRUE(c.events().empty());
  EXPECT_FALSE(routing_.known_failed(net::LeafId{1}, net::UplinkIndex{2}));
}

TEST_F(ControllerTest, IterationCompletesOnlyWhenEveryLeafReported) {
  MitigationPolicy p;
  p.debounce_iterations = 1;
  p.reports_per_iteration = 0;  // one report per leaf (4 here)
  p.enabled = true;
  p.threshold = 0.01;
  MitigationController c{sim_, routing_, p};
  c.observe(shortfall_result(1, 0, 2));
  c.observe(clean_result(0, 0));
  c.observe(clean_result(2, 0));
  EXPECT_TRUE(c.events().empty());  // 3 of 4 leaves in
  c.observe(clean_result(3, 0));
  EXPECT_EQ(c.events().size(), 1u);
}

TEST_F(ControllerTest, TimelineMilestonesAreOrdered) {
  MitigationPolicy p;
  p.debounce_iterations = 2;
  p.settle_iterations = 1;
  MitigationController c = make(p);
  EXPECT_FALSE(c.timeline().detected());
  sim_.schedule_at(sim::Time::microseconds(10),
                   [&] { c.observe(shortfall_result(1, 0, 2)); });
  sim_.schedule_at(sim::Time::microseconds(20),
                   [&] { c.observe(shortfall_result(1, 1, 2)); });
  sim_.schedule_at(sim::Time::microseconds(30), [&] { c.observe(clean_result(1, 2)); });
  sim_.schedule_at(sim::Time::microseconds(40), [&] { c.observe(clean_result(1, 3)); });
  sim_.run();
  const RecoveryTimeline& t = c.timeline();
  ASSERT_TRUE(t.detected());
  ASSERT_TRUE(t.mitigated());
  ASSERT_TRUE(t.has_recovered());
  EXPECT_EQ(t.first_alert_iteration.v(), 0u);
  EXPECT_EQ(t.first_quarantine_iteration.v(), 1u);
  EXPECT_EQ(t.first_alert, sim::Time::microseconds(10));
  EXPECT_EQ(t.first_quarantine, sim::Time::microseconds(20));
  // Iteration 2 is inside the settle window; recovery lands on iteration 3.
  EXPECT_EQ(t.recovered, sim::Time::microseconds(40));
}

// ---------------------------------------------------------------------------
// End-to-end: the full loop on a live fabric
// ---------------------------------------------------------------------------

exp::ScenarioConfig mitigated_scenario(std::uint64_t seed = 1) {
  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{8, 4, 1, 1};
  cfg.collective = collective::CollectiveKind::kRingReduceScatter;
  cfg.collective_bytes = core::Bytes{8ull << 20};
  cfg.iterations = 12;
  cfg.seed = seed;
  cfg.mitigation.enabled = true;
  cfg.mitigation.debounce_iterations = 2;
  cfg.mitigation.settle_iterations = 1;
  cfg.mitigation.probation_iterations = 2;
  return cfg;
}

TEST(MitigationE2E, QuarantinesBlackHoleAndRecovers) {
  exp::ScenarioConfig cfg = mitigated_scenario();
  exp::NewFault f;
  f.leaf = net::LeafId{5};
  f.uplink = net::UplinkIndex{1};
  f.where = exp::NewFault::Where::kDownlink;
  f.spec = net::FaultSpec::black_hole(sim::Time::microseconds(150));  // mid-run
  cfg.new_faults.push_back(f);
  exp::Scenario s{cfg};
  const exp::ScenarioResult r = s.run();
  EXPECT_EQ(r.iterations_completed, 12u);

  // (a) the controller quarantined the right link.
  ASSERT_FALSE(r.mitigation_events.empty());
  const MitigationEvent& q = r.mitigation_events.front();
  EXPECT_EQ(q.kind, MitigationEvent::Kind::kQuarantine);
  EXPECT_EQ(q.leaf.v(), 5u);
  EXPECT_EQ(q.uplink.v(), 1u);
  EXPECT_TRUE(s.fabric().routing().known_failed(net::LeafId{5}, net::UplinkIndex{1}));

  // (b) with the re-baselined model, post-settle iterations return under
  // the 1% threshold.
  ASSERT_TRUE(r.recovery.mitigated());
  const std::uint32_t judge_from =
      r.recovery.first_quarantine_iteration.v() + cfg.mitigation.settle_iterations + 1;
  ASSERT_LT(judge_from, r.per_iter_max_dev.size());
  for (std::uint32_t i = judge_from; i < r.per_iter_max_dev.size(); ++i) {
    EXPECT_LT(r.per_iter_max_dev[i], 0.01) << "iteration " << i;
  }

  // Milestones exist and are ordered: detect ≤ mitigate < recover.
  ASSERT_TRUE(r.recovery.detected());
  ASSERT_TRUE(r.recovery.has_recovered());
  EXPECT_LE(r.recovery.first_alert, r.recovery.first_quarantine);
  EXPECT_LT(r.recovery.first_quarantine, r.recovery.recovered);
  EXPECT_GE(r.recovery.first_alert, f.spec.start);

  // The probation closed with a confirmation.
  bool confirmed = false;
  for (const MitigationEvent& e : r.mitigation_events) {
    if (e.kind == MitigationEvent::Kind::kConfirm && e.leaf == net::LeafId{5} && e.uplink == net::UplinkIndex{1}) {
      confirmed = true;
    }
  }
  EXPECT_TRUE(confirmed);
}

TEST(MitigationE2E, FalsePositiveQuarantineIsRestored) {
  // No fault at all, threshold far below the spray-quantization noise floor:
  // the detector alerts every iteration, the controller quarantines — and
  // probation must then catch that the quarantine cured nothing and restore
  // the link. AlltoAll supplies the noise: per-(sender, port) quantization
  // of a few packets (ring traffic splits exactly evenly and has none).
  exp::ScenarioConfig cfg = mitigated_scenario();
  cfg.collective = collective::CollectiveKind::kAllToAll;
  cfg.collective_bytes = core::Bytes{24ull << 20};
  cfg.iterations = 10;
  cfg.flowpulse.threshold = 1e-6;
  cfg.mitigation.max_strikes = 1;  // one misfire per link, then banned
  exp::Scenario s{cfg};
  const exp::ScenarioResult r = s.run();
  EXPECT_EQ(r.iterations_completed, 10u);

  ASSERT_FALSE(r.mitigation_events.empty());
  bool restored_same_link = false;
  for (const MitigationEvent& e : r.mitigation_events) {
    if (e.kind != MitigationEvent::Kind::kRestore) continue;
    EXPECT_STREQ(e.reason, "ineffective");
    for (const MitigationEvent& q : r.mitigation_events) {
      if (q.kind == MitigationEvent::Kind::kQuarantine && q.leaf == e.leaf &&
          q.uplink == e.uplink && q.iteration < e.iteration) {
        restored_same_link = true;
      }
    }
  }
  EXPECT_TRUE(restored_same_link);
}

TEST(MitigationE2E, FlappingLinkProbedAndRequarantined) {
  // A link that black-holes for ~3 iterations out of every ~6: one-shot
  // quarantine would be wrong in both directions; the controller must
  // quarantine while it misbehaves and trial-restore when it heals.
  exp::ScenarioConfig cfg = mitigated_scenario();
  cfg.iterations = 18;
  cfg.mitigation.restore_probe_after = 2;
  exp::NewFault f;
  f.leaf = net::LeafId{3};
  f.uplink = net::UplinkIndex{2};
  f.where = exp::NewFault::Where::kDownlink;
  f.spec = net::FaultSpec::black_hole(sim::Time::microseconds(150))
               .with_flap(sim::Time::microseconds(720), sim::Time::microseconds(360));
  cfg.new_faults.push_back(f);
  exp::Scenario s{cfg};
  const exp::ScenarioResult r = s.run();
  EXPECT_EQ(r.iterations_completed, 18u);

  std::uint32_t quarantines = 0, restores = 0;
  for (const MitigationEvent& e : r.mitigation_events) {
    if (e.kind == MitigationEvent::Kind::kQuarantine) {
      EXPECT_EQ(e.leaf.v(), 3u);
      EXPECT_EQ(e.uplink.v(), 2u);
      ++quarantines;
    }
    if (e.kind == MitigationEvent::Kind::kRestore) ++restores;
  }
  EXPECT_GE(quarantines, 1u);
  EXPECT_GE(restores, 1u);  // at least the trial-restore probe fired
  ASSERT_TRUE(r.recovery.detected());
  ASSERT_TRUE(r.recovery.mitigated());
}

TEST(MitigationE2E, ParallelTrialsBitIdenticalWithMitigation) {
  // The controller mutates RoutingState mid-run; that must stay inside the
  // trial's own Simulator so parallel sweeps remain bit-identical.
  exp::ScenarioConfig cfg = mitigated_scenario(7);
  cfg.iterations = 8;
  exp::NewFault f;
  f.leaf = net::LeafId{2};
  f.uplink = net::UplinkIndex{0};
  f.where = exp::NewFault::Where::kDownlink;
  f.spec = net::FaultSpec::black_hole(sim::Time::microseconds(150));
  cfg.new_faults.push_back(f);
  const auto serial = exp::run_trials_parallel(cfg, 4, 0, 1);
  const auto parallel = exp::run_trials_parallel(cfg, 4, 0, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    ASSERT_EQ(serial[t].dev.size(), parallel[t].dev.size());
    for (std::size_t i = 0; i < serial[t].dev.size(); ++i) {
      EXPECT_DOUBLE_EQ(serial[t].dev[i], parallel[t].dev[i]);
    }
  }
}

}  // namespace
}  // namespace flowpulse::ctrl
