// Unit tests for the discrete-event engine: time arithmetic, event
// ordering, determinism of the RNG streams.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace flowpulse::sim {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(Time::nanoseconds(1).ps(), 1'000);
  EXPECT_EQ(Time::microseconds(1).ps(), 1'000'000);
  EXPECT_EQ(Time::milliseconds(1).ps(), 1'000'000'000);
  EXPECT_EQ(Time::seconds(1).ps(), 1'000'000'000'000);
  EXPECT_DOUBLE_EQ(Time::microseconds(3).us(), 3.0);
  EXPECT_DOUBLE_EQ(Time::nanoseconds(1500).us(), 1.5);
}

TEST(Time, Arithmetic) {
  const Time a = Time::nanoseconds(100);
  const Time b = Time::nanoseconds(40);
  EXPECT_EQ((a + b).ps(), 140'000);
  EXPECT_EQ((a - b).ps(), 60'000);
  EXPECT_EQ((a * 3).ps(), 300'000);
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
  Time c = a;
  c += b;
  EXPECT_EQ(c, Time::nanoseconds(140));
}

TEST(Time, SerializationTime) {
  // The raw-scalar math lives behind sim::detail; product code goes
  // through core::serialization_time(Bytes, GbitsPerSec).
  // 4096 bytes at 400 Gbps = 4096*8/400e9 s = 81.92 ns.
  EXPECT_EQ(detail::serialization_time(4096, 400.0).ps(), 81'920);
  // 1 byte at 400 Gbps = 20 ps: stays exact in picoseconds.
  EXPECT_EQ(detail::serialization_time(1, 400.0).ps(), 20);
  EXPECT_EQ(detail::serialization_time(1500, 100.0).ps(), 120'000);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::nanoseconds(30), Time::zero(), 0, [&] { order.push_back(3); });
  q.schedule(Time::nanoseconds(10), Time::zero(), 0, [&] { order.push_back(1); });
  q.schedule(Time::nanoseconds(20), Time::zero(), 0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    q.schedule(Time::nanoseconds(5), Time::zero(), 0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(InlineFn, SimultaneousEventsStayFifoUnderInterleavedPops) {
  // The InlineFn rework replaced swap-based sifting with hole moves; FIFO
  // order among same-time events must survive pops interleaved with
  // schedules (the hot-path pattern: executing one event schedules more).
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::nanoseconds(5), Time::zero(), 0, [&order, i] { order.push_back(i); });
  }
  for (int i = 10; i < 20; ++i) {
    q.pop().fn();  // pop one of the earlier batch...
    q.schedule(Time::nanoseconds(5), Time::zero(), 0, [&order, i] { order.push_back(i); });  // ...schedule a later one
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(InlineFn, MoveTransfersCallableAndEmptiesSource) {
  int fired = 0;
  InlineFn a{[&fired] { ++fired; }};
  EXPECT_TRUE(static_cast<bool>(a));
  InlineFn b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);
  InlineFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(fired, 2);
}

TEST(InlineFn, NonTrivialCapturesDestructAndMoveCorrectly) {
  // A shared_ptr capture exercises the managed (non-memcpy) move/destroy
  // path: the payload must survive heap sifting and be released exactly
  // once when the event has run and the queue drains.
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  int seen = 0;
  {
    EventQueue q;
    q.schedule(Time::nanoseconds(2), Time::zero(), 0, [token, &seen] { seen = *token; });
    // Force sifting around the shared_ptr capture.
    for (int i = 0; i < 8; ++i) q.schedule(Time::nanoseconds(1), Time::zero(), 0, [] {});
    token.reset();
    EXPECT_FALSE(alive.expired());
    while (!q.empty()) q.pop().fn();
  }
  EXPECT_EQ(seen, 7);
  EXPECT_TRUE(alive.expired());
}

TEST(EventQueue, ReservePreallocatesWithoutChangingBehavior) {
  EventQueue q;
  q.reserve(256);
  EXPECT_GE(q.capacity(), 256u);
  EXPECT_TRUE(q.empty());
  int fired = 0;
  for (int i = 0; i < 100; ++i) q.schedule(Time::nanoseconds(100 - i), Time::zero(), 0, [&fired] { ++fired; });
  Time last = Time::zero();
  while (!q.empty()) {
    EventQueue::Event ev = q.pop();
    EXPECT_GE(ev.at, last);
    last = ev.at;
    ev.fn();
  }
  EXPECT_EQ(fired, 100);
}

TEST(EventQueue, PopReturnsEarliest) {
  EventQueue q;
  q.schedule(Time::nanoseconds(50), Time::zero(), 0, [] {});
  q.schedule(Time::nanoseconds(5), Time::zero(), 0, [] {});
  EXPECT_EQ(q.next_time(), Time::nanoseconds(5));
  EXPECT_EQ(q.pop().at, Time::nanoseconds(5));
  EXPECT_EQ(q.pop().at, Time::nanoseconds(50));
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  Time seen = Time::zero();
  sim.schedule_in(Time::microseconds(2), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, Time::microseconds(2));
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Time::nanoseconds(10), [&] {
    ++fired;
    sim.schedule_in(Time::nanoseconds(10), [&] {
      ++fired;
      sim.schedule_in(Time::nanoseconds(10), [&] { ++fired; });
    });
  });
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), Time::nanoseconds(30));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Time::nanoseconds(10), [&] { ++fired; });
  sim.schedule_in(Time::nanoseconds(100), [&] { ++fired; });
  sim.run_until(Time::nanoseconds(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::nanoseconds(50));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopHaltsLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Time::nanoseconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(Time::nanoseconds(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes with the pending event
  EXPECT_EQ(fired, 2);
}

// Regression: run_until used to clear stopped_ unconditionally on entry,
// silently discarding a stop requested before the run started. A pre-run
// stop now consumes the request and returns with nothing executed and the
// clock untouched.
TEST(Simulator, PreRunStopHonored) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Time::nanoseconds(5), [&] { ++fired; });
  sim.stop();
  EXPECT_TRUE(sim.stopped());
  sim.run_until(Time::nanoseconds(100));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), Time::zero());
  EXPECT_EQ(sim.events_executed(), 0u);
  // The stop was consumed: the next run proceeds normally.
  EXPECT_FALSE(sim.stopped());
  sim.run_until(Time::nanoseconds(100));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::nanoseconds(100));
}

// Pins stop semantics across run segments: each stop() halts exactly one
// run call (whether requested mid-run or between runs), and every segment
// resumes from the pending queue.
TEST(Simulator, StopAcrossRunSegments) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(Time::nanoseconds(1), [&] {
    order.push_back(1);
    sim.stop();  // mid-run stop: halts segment 1
  });
  sim.schedule_in(Time::nanoseconds(2), [&] { order.push_back(2); });
  sim.schedule_in(Time::nanoseconds(3), [&] { order.push_back(3); });
  sim.run();  // segment 1: executes event 1, halts
  EXPECT_EQ(order, (std::vector<int>{1}));
  sim.stop();  // pre-run stop: consumes segment 2 before it executes
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  sim.run();  // segment 3: drains the rest
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Time::nanoseconds(3));
}

// Regression: fast_forward(to <= now) used to bump fast_forwards_ (and
// emit a kFidelity trace), inflating the hybrid engine's fidelity
// accounting with no-op jumps. A no-op fast-forward must not count.
TEST(Simulator, NoopFastForwardNotCounted) {
  Simulator sim;
  sim.schedule_in(Time::nanoseconds(10), [] {});
  sim.run();
  EXPECT_EQ(sim.now(), Time::nanoseconds(10));
  EXPECT_EQ(sim.fast_forwards(), 0u);
  sim.fast_forward(Time::nanoseconds(10));  // to == now: no-op
  sim.fast_forward(Time::nanoseconds(5));   // to < now: no-op
  EXPECT_EQ(sim.fast_forwards(), 0u);
  EXPECT_EQ(sim.now(), Time::nanoseconds(10));
  sim.fast_forward(Time::nanoseconds(25));  // real jump: counted
  EXPECT_EQ(sim.fast_forwards(), 1u);
  EXPECT_EQ(sim.now(), Time::nanoseconds(25));
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng{7};
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.next_below(8)];
  for (const int c : counts) {
    EXPECT_GT(c, 800);  // roughly uniform: expect 1000 each
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{9};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng{11};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.015)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.015, 0.002);
}

TEST(Rng, BernoulliEdges) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{21};
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng parent_copy{21};
  (void)parent_copy.next_u64();  // advance past the split draw
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent_copy.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace flowpulse::sim
