// The flowpulsed subsystem, tested without sockets where possible:
//  * codec hardening — every message round-trips bit-exactly, and hostile
//    bytes (truncation, oversized prefixes, unknown opcodes, absurd
//    dimensions, fuzzed frames) yield protocol errors, never crashes;
//  * engine semantics — registration, topology validation, shard
//    ownership, QUIT/SHUTDOWN, driven frame-by-frame and deterministically;
//  * verdict determinism — the same recorded stream through 1, 2 and 4
//    shard engines merges to byte-identical fabric verdicts, and a replayed
//    simulator stream reproduces the in-simulator verdict exactly;
//  * one socket smoke — a real epoll server on an ephemeral port, driven
//    by the blocking client (the only test that touches fds).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.h"
#include "daemon/engine.h"
#include "daemon/protocol.h"
#include "daemon/server.h"
#include "daemon/stream_file.h"
#include "daemon/verdict.h"
#include "exp/scenario.h"

namespace flowpulse::daemon {
namespace {

net::TopologyInfo small_topo() { return net::TopologyInfo{4, 2, 1, 1}; }

Hello small_hello() {
  Hello h;
  h.topo = small_topo();
  h.first_leaf = net::LeafId{0};
  h.leaf_count = 4;
  return h;
}

fp::IterationRecord small_record(std::uint32_t leaf, std::uint32_t iter) {
  const net::TopologyInfo t = small_topo();
  fp::IterationRecord rec;
  rec.leaf = net::LeafId{leaf};
  rec.iteration = net::IterIndex{iter};
  rec.bytes.assign(t.uplinks_per_leaf(), 0.0);
  rec.by_src.assign(t.uplinks_per_leaf(), std::vector<double>(t.leaves, 0.0));
  for (std::uint32_t u = 0; u < t.uplinks_per_leaf(); ++u) {
    for (std::uint32_t src = 0; src < t.leaves; ++src) {
      if (src == leaf) continue;
      // Deliberately awkward doubles: the codec must round-trip raw bits.
      const double v = 1e6 / 3.0 + 0.1 * u + 1e-9 * src;
      rec.by_src[u][src] = v;
      rec.bytes[u] += v;
    }
  }
  rec.packets = 7;
  return rec;
}

/// A baseline that matches small_record() exactly — ingesting those
/// records against it must stay clean.
fp::PortLoadMap matching_prediction() {
  const net::TopologyInfo t = small_topo();
  fp::PortLoadMap map{t.leaves, t.uplinks_per_leaf()};
  for (std::uint32_t l = 0; l < t.leaves; ++l) {
    const fp::IterationRecord rec = small_record(l, 0);
    for (std::uint32_t u = 0; u < t.uplinks_per_leaf(); ++u) {
      for (std::uint32_t src = 0; src < t.leaves; ++src) {
        map.add(net::LeafId{l}, net::UplinkIndex{u}, net::LeafId{src}, rec.by_src[u][src]);
      }
    }
  }
  return map;
}

/// Strip the u32 length prefix off a complete frame.
std::span<const std::uint8_t> payload_of(const std::vector<std::uint8_t>& frame) {
  return {frame.data() + 4, frame.size() - 4};
}

/// Body (everything after the opcode byte) of a complete frame.
std::span<const std::uint8_t> body_of(const std::vector<std::uint8_t>& frame) {
  return {frame.data() + 5, frame.size() - 5};
}

Op reply_op(const EngineReply& r) { return static_cast<Op>(r.bytes[4]); }

Err reply_err(const EngineReply& r) {
  EXPECT_EQ(reply_op(r), Op::kErr);
  const auto e = decode_err({r.bytes.data() + 5, r.bytes.size() - 5});
  EXPECT_TRUE(e.has_value());
  return e.has_value() ? e->code : Err::kBadFrame;
}

// ---------------------------------------------------------------------------
// Codec round trips.
// ---------------------------------------------------------------------------

TEST(DaemonCodec, HelloRoundTripsExactly) {
  Hello h;
  h.topo = net::TopologyInfo{32, 16, 2, 4};
  h.job = 3;
  h.first_leaf = net::LeafId{12};
  h.leaf_count = 5;
  const auto frame = encode_hello(h);
  const auto back = decode_hello(body_of(frame));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);
}

TEST(DaemonCodec, CountersRoundTripBitExact) {
  const fp::IterationRecord rec = small_record(2, 9);
  const auto frame = encode_counters(rec);
  const auto back = decode_counters(body_of(frame));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->leaf, rec.leaf);
  EXPECT_EQ(back->iteration, rec.iteration);
  EXPECT_EQ(back->packets, rec.packets);
  ASSERT_EQ(back->bytes.size(), rec.bytes.size());
  for (std::size_t u = 0; u < rec.bytes.size(); ++u) {
    EXPECT_EQ(back->bytes[u], rec.bytes[u]);  // exact, not near
    ASSERT_EQ(back->by_src[u].size(), rec.by_src[u].size());
    for (std::size_t s = 0; s < rec.by_src[u].size(); ++s) {
      EXPECT_EQ(back->by_src[u][s], rec.by_src[u][s]);
    }
  }
  // Re-encoding the decoded record reproduces the frame byte-for-byte.
  EXPECT_EQ(encode_counters(*back), frame);
}

TEST(DaemonCodec, PredictRoundTripBitExact) {
  fp::PortLoadMap map{4, 2};
  for (std::uint32_t l = 0; l < 4; ++l) {
    for (std::uint32_t u = 0; u < 2; ++u) {
      for (std::uint32_t s = 0; s < 4; ++s) {
        if (s == l) continue;
        map.add(net::LeafId{l}, net::UplinkIndex{u}, net::LeafId{s}, 1.0 / 7.0 + l + u);
      }
    }
  }
  const auto frame = encode_predict(map);
  const auto back = decode_predict(body_of(frame));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(encode_predict(*back), frame);
}

TEST(DaemonCodec, ErrAndStatsRoundTrip) {
  const auto err_frame = encode_err(Err::kNotOwned, "leaf 7 belongs to another shard");
  const auto err_back = decode_err(body_of(err_frame));
  ASSERT_TRUE(err_back.has_value());
  EXPECT_EQ(err_back->code, Err::kNotOwned);
  EXPECT_EQ(err_back->message, "leaf 7 belongs to another shard");

  StatsSnapshot s;
  s.frames_in = 101;
  s.counters_ingested = 90;
  s.counters_rejected = 4;
  s.predict_installs = 2;
  s.verdict_queries = 3;
  s.alerts = 12;
  s.errors = 5;
  s.connections_accepted = 9;
  s.connections_open = 2;
  s.bytes_in = core::Bytes{123456};
  s.bytes_out = core::Bytes{7890};
  s.shard_index = 1;
  s.shard_count = 4;
  s.owned_first = net::LeafId{8};
  s.owned_leaves = 8;
  const auto frame = encode_stats_reply(s);
  const auto back = decode_stats_reply(body_of(frame));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
}

TEST(DaemonCodec, VerdictReplyRoundTripsExactly) {
  FabricVerdict v;
  v.flagged = true;
  v.first_faulty_iteration = net::IterIndex{3};
  v.suspect_links = {net::LinkId::of(net::LeafId{1}, net::UplinkIndex{0}),
                     net::LinkId::of(net::LeafId{12}, net::UplinkIndex{5})};
  VerdictAlert a;
  a.iteration = net::IterIndex{3};
  a.leaf = net::LeafId{12};
  a.uplink = net::UplinkIndex{5};
  a.observed = 0.3 - 0.1;  // not exactly representable: bit-exactness matters
  a.predicted = 1.0 / 3.0;
  a.rel_dev = -0.0401;
  a.verdict = fp::Localization::Verdict::kRemoteLinks;
  a.suspect_senders = {net::LeafId{1}, net::LeafId{3}};
  v.alerts = {a};
  const auto frame = encode_verdict_reply(v);
  const auto back = decode_verdict_reply(body_of(frame));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, v);
}

// ---------------------------------------------------------------------------
// Codec hardening: hostile bytes must produce errors, never crashes.
// ---------------------------------------------------------------------------

TEST(DaemonCodecHardening, TruncatedBodiesAtEveryLengthAreRejected) {
  const std::vector<std::vector<std::uint8_t>> frames = {
      encode_hello(small_hello()),
      encode_counters(small_record(1, 0)),
      encode_predict(fp::PortLoadMap{4, 2}),
      encode_err(Err::kBadFrame, "x"),
      encode_stats_reply(StatsSnapshot{}),
      encode_verdict_reply(FabricVerdict{}),
  };
  for (const auto& frame : frames) {
    const auto body = body_of(frame);
    const Op op = static_cast<Op>(frame[4]);
    for (std::size_t len = 0; len < body.size(); ++len) {
      const std::span<const std::uint8_t> cut{body.data(), len};
      switch (op) {
        case Op::kHello:
          EXPECT_FALSE(decode_hello(cut).has_value()) << "len " << len;
          break;
        case Op::kCounters:
          EXPECT_FALSE(decode_counters(cut).has_value()) << "len " << len;
          break;
        case Op::kPredict:
          EXPECT_FALSE(decode_predict(cut).has_value()) << "len " << len;
          break;
        case Op::kErr:
          EXPECT_FALSE(decode_err(cut).has_value()) << "len " << len;
          break;
        case Op::kStatsReply:
          EXPECT_FALSE(decode_stats_reply(cut).has_value()) << "len " << len;
          break;
        default:
          EXPECT_FALSE(decode_verdict_reply(cut).has_value()) << "len " << len;
          break;
      }
    }
  }
}

TEST(DaemonCodecHardening, TrailingGarbageIsRejected) {
  auto frame = encode_hello(small_hello());
  frame.push_back(0xAA);
  EXPECT_FALSE(decode_hello(body_of(frame)).has_value());
}

TEST(DaemonCodecHardening, CountersWithAbsurdDimensionsRejected) {
  // A hand-built COUNTERS body claiming 2^30 ports but carrying 8 bytes:
  // the decoder must reject from the length mismatch, not allocate.
  Writer w;
  w.u32(1);           // leaf
  w.u32(0);           // iteration
  w.u64(1);           // packets
  w.u32(1u << 30);    // ports (hostile)
  w.u32(4);           // senders per port
  w.f64(1.0);         // nowhere near enough doubles
  EXPECT_FALSE(decode_counters(w.buf()).has_value());
}

TEST(DaemonCodecHardening, CountersWithWrappingSenderCountRejected) {
  // senders = 2^32-1 makes (1 + senders) wrap to 0 in uint32 arithmetic, so
  // a naive size check sees 0 doubles and passes on a header-only body — the
  // decoder would then try to allocate ports × 4-GiB-wide rows.
  Writer w;
  w.u32(1);            // leaf
  w.u32(0);            // iteration
  w.u64(1);            // packets
  w.u32(3);            // ports
  w.u32(0xFFFFFFFFu);  // senders (hostile)
  EXPECT_FALSE(decode_counters(w.buf()).has_value());
}

TEST(DaemonCodecHardening, PredictWithWrappingDimensionsRejected) {
  // leaves = uplinks = 2^31: leaves·uplinks·(1+leaves)·8 ≡ 0 mod 2^64, so a
  // pure size check wraps clean on an empty body and the decoder would
  // attempt an enormous PortLoadMap. Dimensions must be bounded first.
  Writer w;
  w.u32(1u << 31);  // leaves
  w.u32(1u << 31);  // uplinks
  EXPECT_FALSE(decode_predict(w.buf()).has_value());
}

TEST(DaemonCodecHardening, ErrWithOverlongMessageTruncatesConsistently) {
  // The declared u16 length and the emitted bytes must agree even when the
  // message exceeds 65535 chars — decode_err rejects any mismatch.
  const std::string longmsg(100000, 'e');
  const auto frame = encode_err(Err::kBadFrame, longmsg);
  const auto back = decode_err(body_of(frame));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->code, Err::kBadFrame);
  EXPECT_EQ(back->message.size(), 0xffffu);
  EXPECT_EQ(back->message, longmsg.substr(0, 0xffff));
}

TEST(DaemonCodecHardening, AssemblerHandlesByteDribbleAndBatches) {
  const auto f1 = encode_simple(Op::kVerdict);
  const auto f2 = encode_hello(small_hello());
  std::vector<std::uint8_t> wire;
  wire.insert(wire.end(), f1.begin(), f1.end());
  wire.insert(wire.end(), f2.begin(), f2.end());

  FrameAssembler a;
  std::vector<std::uint8_t> frame;
  std::size_t frames_seen = 0;
  for (const std::uint8_t byte : wire) {
    a.feed({&byte, 1});
    while (a.next(frame) == FrameAssembler::Status::kFrame) ++frames_seen;
  }
  EXPECT_EQ(frames_seen, 2u);
  EXPECT_EQ(a.buffered(), 0u);

  // Both frames in one feed() drain as two.
  FrameAssembler b;
  b.feed(wire);
  EXPECT_EQ(b.next(frame), FrameAssembler::Status::kFrame);
  EXPECT_EQ(b.next(frame), FrameAssembler::Status::kFrame);
  EXPECT_EQ(b.next(frame), FrameAssembler::Status::kNeedMore);
}

TEST(DaemonCodecHardening, OversizedAndEmptyFramesAreFatal) {
  FrameAssembler a;
  Writer w;
  w.u32(kMaxFramePayload + 1);
  a.feed(w.buf());
  std::vector<std::uint8_t> frame;
  EXPECT_EQ(a.next(frame), FrameAssembler::Status::kOversized);

  FrameAssembler b;
  Writer z;
  z.u32(0);
  b.feed(z.buf());
  EXPECT_EQ(b.next(frame), FrameAssembler::Status::kEmpty);
}

// ---------------------------------------------------------------------------
// Engine protocol semantics (no sockets).
// ---------------------------------------------------------------------------

EngineConfig small_engine_config(std::uint32_t shard_index = 0,
                                 std::uint32_t shard_count = 1) {
  EngineConfig cfg;
  cfg.topo = small_topo();
  cfg.system.detector = fp::DetectorKind::kStreaming;
  cfg.shard_index = shard_index;
  cfg.shard_count = shard_count;
  return cfg;
}

TEST(DaemonEngineTest, CountersBeforeHelloRejected) {
  DaemonEngine engine{small_engine_config()};
  Session s;
  const auto reply = engine.on_frame(s, payload_of(encode_counters(small_record(0, 0))));
  EXPECT_EQ(reply_err(reply), Err::kNoHello);
  EXPECT_EQ(engine.stats().counters_rejected, 1u);
}

TEST(DaemonEngineTest, HelloValidation) {
  DaemonEngine engine{small_engine_config()};
  Session s;

  Hello bad_version = small_hello();
  bad_version.version = 99;
  EXPECT_EQ(reply_err(engine.on_frame(s, payload_of(encode_hello(bad_version)))),
            Err::kBadVersion);

  Hello bad_topo = small_hello();
  bad_topo.topo.spines = 7;
  EXPECT_EQ(reply_err(engine.on_frame(s, payload_of(encode_hello(bad_topo)))),
            Err::kTopologyMismatch);

  Hello bad_job = small_hello();
  bad_job.job = 9;
  EXPECT_EQ(reply_err(engine.on_frame(s, payload_of(encode_hello(bad_job)))),
            Err::kTopologyMismatch);

  Hello bad_range = small_hello();
  bad_range.first_leaf = net::LeafId{3};
  bad_range.leaf_count = 2;  // [3,5) of a 4-leaf fabric
  EXPECT_EQ(reply_err(engine.on_frame(s, payload_of(encode_hello(bad_range)))),
            Err::kBadDimensions);

  EXPECT_FALSE(s.registered);
  EXPECT_EQ(reply_op(engine.on_frame(s, payload_of(encode_hello(small_hello())))), Op::kOk);
  EXPECT_TRUE(s.registered);
}

TEST(DaemonEngineTest, CountersOutsideSessionRangeRejected) {
  DaemonEngine engine{small_engine_config()};
  Session s;
  Hello h = small_hello();
  h.first_leaf = net::LeafId{1};
  h.leaf_count = 2;  // registers [1,3)
  ASSERT_EQ(reply_op(engine.on_frame(s, payload_of(encode_hello(h)))), Op::kOk);
  EXPECT_EQ(reply_err(engine.on_frame(s, payload_of(encode_counters(small_record(3, 0))))),
            Err::kUnregisteredLeaf);
  EXPECT_EQ(reply_op(engine.on_frame(s, payload_of(encode_counters(small_record(2, 0))))),
            Op::kOk);
}

TEST(DaemonEngineTest, CountersForAnotherShardRejected) {
  DaemonEngine engine{small_engine_config(0, 2)};  // owns leaves [0,2)
  EXPECT_TRUE(engine.owns(net::LeafId{1}));
  EXPECT_FALSE(engine.owns(net::LeafId{2}));
  Session s;
  ASSERT_EQ(reply_op(engine.on_frame(s, payload_of(encode_hello(small_hello())))), Op::kOk);
  EXPECT_EQ(reply_err(engine.on_frame(s, payload_of(encode_counters(small_record(2, 0))))),
            Err::kNotOwned);
}

TEST(DaemonEngineTest, WrongDimensionsRejected) {
  DaemonEngine engine{small_engine_config()};
  Session s;
  ASSERT_EQ(reply_op(engine.on_frame(s, payload_of(encode_hello(small_hello())))), Op::kOk);
  fp::IterationRecord rec = small_record(0, 0);
  rec.bytes.push_back(0.0);  // five ports on a two-uplink fabric
  rec.by_src.emplace_back(4, 0.0);
  EXPECT_EQ(reply_err(engine.on_frame(s, payload_of(encode_counters(rec)))),
            Err::kBadDimensions);
}

TEST(DaemonEngineTest, UnknownAndReplyOpcodesRejected) {
  DaemonEngine engine{small_engine_config()};
  Session s;
  const std::uint8_t unknown[] = {0x7f};
  EXPECT_EQ(reply_err(engine.on_frame(s, unknown)), Err::kBadOpcode);
  const std::uint8_t ok_as_request[] = {0x80};
  EXPECT_EQ(reply_err(engine.on_frame(s, ok_as_request)), Err::kBadOpcode);
}

TEST(DaemonEngineTest, QuitClosesShutdownStops) {
  DaemonEngine engine{small_engine_config()};
  Session s;
  const auto quit = engine.on_frame(s, payload_of(encode_simple(Op::kQuit)));
  EXPECT_EQ(reply_op(quit), Op::kOk);
  EXPECT_TRUE(quit.close);
  EXPECT_FALSE(quit.shutdown);
  const auto shutdown = engine.on_frame(s, payload_of(encode_simple(Op::kShutdown)));
  EXPECT_TRUE(shutdown.shutdown);
  const auto bad = engine.on_bad_stream(Err::kOversized);
  EXPECT_TRUE(bad.close);
  EXPECT_EQ(reply_err(bad), Err::kOversized);
}

TEST(DaemonEngineTest, FuzzedFramesNeverCrashAndAlwaysReply) {
  DaemonEngine engine{small_engine_config()};
  Session s;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;  // deterministic xorshift
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> frame(1 + next() % 96);
    for (auto& byte : frame) byte = static_cast<std::uint8_t>(next());
    const auto reply = engine.on_frame(s, frame);
    ASSERT_GE(reply.bytes.size(), 5u);  // length prefix + opcode, always
  }
}

// ---------------------------------------------------------------------------
// Verdict determinism: simulator equivalence and shard-merge byte identity.
// ---------------------------------------------------------------------------

/// Run a recorded-fault scenario and export its counter stream exactly the
/// way `flowpulse_cli --dump-counters` does.
CounterStream record_fault_stream(exp::Scenario& scenario,
                                  const exp::ScenarioConfig& cfg) {
  CounterStream stream;
  stream.hello.topo = cfg.fabric.shape;
  stream.hello.job = cfg.flowpulse.job;
  stream.hello.first_leaf = net::LeafId{0};
  stream.hello.leaf_count = cfg.fabric.shape.leaves;
  if (scenario.prediction() != nullptr) stream.prediction = *scenario.prediction();
  for (std::uint32_t l = 0; l < cfg.fabric.shape.leaves; ++l) {
    const auto& history = scenario.flowpulse().monitor(net::LeafId{l}).history();
    stream.records.insert(stream.records.end(), history.begin(), history.end());
  }
  sort_records(stream.records);
  return stream;
}

exp::ScenarioConfig fault_scenario_config() {
  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{8, 4, 1, 1};
  cfg.collective_bytes = core::Bytes{8'000'000};
  cfg.iterations = 4;
  cfg.flowpulse.detector = fp::DetectorKind::kStreaming;
  exp::NewFault f;
  f.leaf = net::LeafId{5};
  f.uplink = net::UplinkIndex{2};
  f.where = exp::NewFault::Where::kBoth;
  f.spec = net::FaultSpec::random_drop(0.05);
  cfg.new_faults.push_back(f);
  return cfg;
}

/// Route `stream` through `shard_count` engines over the wire codec and
/// merge the per-shard verdicts — the in-process image of a cluster run.
FabricVerdict run_sharded(const CounterStream& stream, std::uint32_t shard_count,
                          const exp::ScenarioConfig& cfg) {
  std::vector<FabricVerdict> verdicts;
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    EngineConfig ec;
    ec.topo = stream.hello.topo;
    ec.system = cfg.flowpulse;
    ec.shard_index = i;
    ec.shard_count = shard_count;
    DaemonEngine engine{ec};
    Session s;
    EXPECT_EQ(reply_op(engine.on_frame(s, payload_of(encode_hello(stream.hello)))), Op::kOk);
    if (stream.prediction.has_value()) {
      EXPECT_EQ(reply_op(engine.on_frame(s, payload_of(encode_predict(*stream.prediction)))),
                Op::kOk);
    }
    for (const fp::IterationRecord& rec : stream.records) {
      if (!engine.owns(rec.leaf)) continue;
      EXPECT_EQ(reply_op(engine.on_frame(s, payload_of(encode_counters(rec)))), Op::kOk);
    }
    // Query over the wire, as the merge client would.
    const auto reply = engine.on_frame(s, payload_of(encode_simple(Op::kVerdict)));
    EXPECT_EQ(reply_op(reply), Op::kVerdictReply);
    const auto v = decode_verdict_reply({reply.bytes.data() + 5, reply.bytes.size() - 5});
    EXPECT_TRUE(v.has_value());
    verdicts.push_back(v.value_or(FabricVerdict{}));
  }
  return merge_verdicts(verdicts);
}

TEST(DaemonVerdictTest, ReplayedStreamReproducesSimulatorVerdict) {
  const exp::ScenarioConfig cfg = fault_scenario_config();
  exp::Scenario scenario{cfg};
  scenario.run();
  const FabricVerdict in_sim = compute_verdict(scenario.flowpulse().results());
  ASSERT_TRUE(in_sim.flagged);

  const CounterStream stream = record_fault_stream(scenario, cfg);
  const FabricVerdict replayed = run_sharded(stream, 1, cfg);
  EXPECT_EQ(replayed, in_sim);  // doubles and all — bit-exact replay
}

TEST(DaemonVerdictTest, ShardMergeIsByteIdenticalAcross1_2_4Shards) {
  const exp::ScenarioConfig cfg = fault_scenario_config();
  exp::Scenario scenario{cfg};
  scenario.run();
  const CounterStream stream = record_fault_stream(scenario, cfg);

  const FabricVerdict one = run_sharded(stream, 1, cfg);
  const FabricVerdict two = run_sharded(stream, 2, cfg);
  const FabricVerdict four = run_sharded(stream, 4, cfg);
  ASSERT_TRUE(one.flagged);
  EXPECT_EQ(two, one);
  EXPECT_EQ(four, one);
  // Stronger than ==: the encoded wire replies are byte-identical.
  EXPECT_EQ(encode_verdict_reply(two), encode_verdict_reply(one));
  EXPECT_EQ(encode_verdict_reply(four), encode_verdict_reply(one));
}

TEST(DaemonVerdictTest, MergePicksEarliestFaultAcrossShards) {
  FabricVerdict a;
  a.flagged = true;
  a.first_faulty_iteration = net::IterIndex{7};
  a.suspect_links = {net::LinkId::of(net::LeafId{3}, net::UplinkIndex{1})};
  FabricVerdict b;
  b.flagged = true;
  b.first_faulty_iteration = net::IterIndex{2};
  b.suspect_links = {net::LinkId::of(net::LeafId{1}, net::UplinkIndex{0})};
  const FabricVerdict merged = merge_verdicts({a, b, FabricVerdict{}});
  EXPECT_TRUE(merged.flagged);
  EXPECT_EQ(merged.first_faulty_iteration, net::IterIndex{2});
  ASSERT_EQ(merged.suspect_links.size(), 2u);
  EXPECT_LT(merged.suspect_links[0].v(), merged.suspect_links[1].v());  // canonical order
}

TEST(DaemonStreamFile, RoundTripsThroughDisk) {
  CounterStream stream;
  stream.hello = small_hello();
  fp::PortLoadMap map{4, 2};
  map.add(net::LeafId{0}, net::UplinkIndex{1}, net::LeafId{2}, 1.0 / 3.0);
  stream.prediction = map;
  stream.records = {small_record(0, 0), small_record(1, 0), small_record(0, 1)};
  sort_records(stream.records);

  const std::string path = testing::TempDir() + "fp_stream_roundtrip.fpstream";
  std::string err;
  ASSERT_TRUE(write_stream_file(path, stream, &err)) << err;
  const auto back = read_stream_file(path, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->hello, stream.hello);
  ASSERT_TRUE(back->prediction.has_value());
  EXPECT_EQ(encode_predict(*back->prediction), encode_predict(*stream.prediction));
  ASSERT_EQ(back->records.size(), stream.records.size());
  for (std::size_t i = 0; i < stream.records.size(); ++i) {
    EXPECT_EQ(encode_counters(back->records[i]), encode_counters(stream.records[i]));
  }
}

// ---------------------------------------------------------------------------
// Socket smoke: one real epoll server round trip (ephemeral port).
// ---------------------------------------------------------------------------

TEST(DaemonSocketSmoke, FullProtocolOverRealSockets) {
  EngineConfig ec = small_engine_config();
  DaemonEngine engine{ec};
  ServerConfig sc;
  sc.port = 0;  // ephemeral
  Server server{sc, engine};
  ASSERT_TRUE(server.open());
  std::thread loop{[&server] { EXPECT_EQ(server.run(), 0); }};

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect_to("127.0.0.1", server.port(), &err)) << err;
  EXPECT_TRUE(client.hello(small_hello(), &err)) << err;
  EXPECT_TRUE(client.predict(matching_prediction(), &err)) << err;
  EXPECT_TRUE(client.counters(small_record(1, 0), &err)) << err;
  const auto verdict = client.verdict(&err);
  ASSERT_TRUE(verdict.has_value()) << err;
  EXPECT_FALSE(verdict->flagged);
  const auto stats = client.stats(&err);
  ASSERT_TRUE(stats.has_value()) << err;
  EXPECT_EQ(stats->counters_ingested, 1u);
  EXPECT_EQ(stats->predict_installs, 1u);
  EXPECT_TRUE(client.shutdown_server(&err)) << err;
  loop.join();
}

TEST(DaemonSocketSmoke, HostileStreamGetsErrAndClose) {
  EngineConfig ec = small_engine_config();
  DaemonEngine engine{ec};
  ServerConfig sc;
  sc.port = 0;
  Server server{sc, engine};
  ASSERT_TRUE(server.open());
  std::thread loop{[&server] { EXPECT_EQ(server.run(), 0); }};

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect_to("127.0.0.1", server.port(), &err)) << err;
  Writer w;
  w.u32(kMaxFramePayload + 7);  // hostile length prefix
  ASSERT_TRUE(client.send_frames(w.buf(), &err)) << err;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(client.recv_reply(payload, &err)) << err;
  ASSERT_FALSE(payload.empty());
  EXPECT_EQ(static_cast<Op>(payload[0]), Op::kErr);
  const auto e = decode_err({payload.data() + 1, payload.size() - 1});
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->code, Err::kOversized);
  // The daemon then closes the unrecoverable connection.
  EXPECT_FALSE(client.recv_reply(payload, &err));

  server.request_stop();
  loop.join();
}

}  // namespace
}  // namespace flowpulse::daemon
