// core:: type-safety layer: StrongId semantics (ordering, formatting,
// map keys, iteration), quantity arithmetic (Bytes/Packets/GbitsPerSec),
// LinkId packing, and the golden bit-identity proof that the strong-type
// conversion changed no observable output.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <type_traits>

#include "core/strong_id.h"
#include "core/units.h"
#include "golden_scenario.h"
#include "net/types.h"

namespace flowpulse::core {
namespace {

// ---------------------------------------------------------------------------
// StrongId
// ---------------------------------------------------------------------------

TEST(StrongId, DistinctTagsNeverConvert) {
  // The whole point: a LeafId is not a PortId is not a HostId, even though
  // all three wrap uint32_t.
  static_assert(!std::is_convertible_v<net::LeafId, net::PortId>);
  static_assert(!std::is_convertible_v<net::HostId, net::LeafId>);
  static_assert(!std::is_convertible_v<net::UplinkIndex, net::SpineId>);
  static_assert(!std::is_convertible_v<std::uint32_t, net::LeafId>);
  static_assert(!std::is_convertible_v<net::LeafId, std::uint32_t>);
  static_assert(!std::is_constructible_v<net::PortId, net::LeafId>);
}

TEST(StrongId, ExplicitConstructionAndValue) {
  constexpr net::LeafId l{7};
  static_assert(l.v() == 7u);
  EXPECT_EQ(net::LeafId{}.v(), 0u);
}

TEST(StrongId, OrderingAndEquality) {
  EXPECT_EQ(net::HostId{3}, net::HostId{3});
  EXPECT_NE(net::HostId{3}, net::HostId{4});
  EXPECT_LT(net::HostId{3}, net::HostId{4});
  EXPECT_GE(net::HostId{4}, net::HostId{4});
}

TEST(StrongId, IncrementDecrement) {
  net::IterIndex i{5};
  EXPECT_EQ((++i).v(), 6u);
  EXPECT_EQ((--i).v(), 5u);
}

TEST(StrongId, StreamsBareValue) {
  // Formatting must match the pre-conversion integer output exactly — the
  // golden hash below depends on it.
  std::ostringstream os;
  os << net::LeafId{12} << ' ' << net::UplinkIndex{0};
  EXPECT_EQ(os.str(), "12 0");
}

TEST(StrongId, UsableAsOrderedMapKey) {
  // Ordered containers only: the determinism lint bans unordered_*, so
  // StrongId deliberately provides operator<=> and no std::hash.
  std::map<net::LinkId, int> quarantined;
  quarantined[net::LinkId::of(net::LeafId{2}, net::UplinkIndex{1})] = 1;
  quarantined[net::LinkId::of(net::LeafId{1}, net::UplinkIndex{3})] = 2;
  EXPECT_EQ(quarantined.begin()->second, 2);  // leaf 1 sorts before leaf 2

  std::set<net::LeafId> leaves{net::LeafId{4}, net::LeafId{1}, net::LeafId{4}};
  EXPECT_EQ(leaves.size(), 2u);
}

TEST(StrongId, IdsRangeIsHalfOpen) {
  std::vector<net::HostId> seen;
  for (const net::HostId h : ids<net::HostId>(3)) seen.push_back(h);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.front(), net::HostId{0});
  EXPECT_EQ(seen.back(), net::HostId{2});
  for (const net::LeafId l : ids<net::LeafId>(0)) {
    FAIL() << "empty range must not iterate, got " << l;
  }
}

TEST(LinkId, PacksAndUnpacksLeafThenUplink) {
  const net::LinkId link = net::LinkId::of(net::LeafId{12}, net::UplinkIndex{5});
  EXPECT_EQ(link.leaf(), net::LeafId{12});
  EXPECT_EQ(link.uplink(), net::UplinkIndex{5});
  // Orders by leaf first, then uplink — quarantine listings stay sorted the
  // way operators read them.
  EXPECT_LT(net::LinkId::of(net::LeafId{1}, net::UplinkIndex{9}),
            net::LinkId::of(net::LeafId{2}, net::UplinkIndex{0}));
  EXPECT_LT(net::LinkId::of(net::LeafId{2}, net::UplinkIndex{0}),
            net::LinkId::of(net::LeafId{2}, net::UplinkIndex{1}));
}

// ---------------------------------------------------------------------------
// Quantities
// ---------------------------------------------------------------------------

TEST(Bytes, Arithmetic) {
  constexpr Bytes a{4096};
  constexpr Bytes b{64};
  static_assert((a + b).v() == 4160u);
  static_assert((a - b).v() == 4032u);
  static_assert((a * 3).v() == 3u * 4096u);
  static_assert((3 * b).v() == 192u);
  static_assert(a / b == 64u);  // pure ratio, not Bytes
  static_assert(a % b == 0u);
  Bytes acc{100};
  acc += Bytes{20};
  acc -= Bytes{10};
  EXPECT_EQ(acc, Bytes{110});
  EXPECT_DOUBLE_EQ(Bytes{5}.dbl(), 5.0);
}

TEST(Bytes, NotInterconvertibleWithPackets) {
  static_assert(!std::is_convertible_v<Bytes, Packets>);
  static_assert(!std::is_convertible_v<Packets, Bytes>);
  static_assert(!std::is_constructible_v<Bytes, Packets>);
}

TEST(Packets, CountsAndCompares) {
  Packets p{10};
  ++p;
  EXPECT_EQ(p, Packets{11});
  EXPECT_EQ(p - Packets{1}, Packets{10});
  EXPECT_GT(Packets{2}, Packets{1});
}

TEST(GbitsPerSec, RateTimeAlgebra) {
  // 1 Gbit/s == 1 bit/ns: 4096 B over 81.92 ns is 400 Gbit/s.
  constexpr Bytes payload{4096};
  const GbitsPerSec rate = payload / sim::Time::picoseconds(81'920);
  EXPECT_DOUBLE_EQ(rate.v(), 400.0);
  // Round trip: the volume a 400 Gbit/s link moves in that time.
  EXPECT_EQ(GbitsPerSec{400.0} * sim::Time::picoseconds(81'920), payload);
  // And the strong-typed serialization_time matches the raw detail math.
  EXPECT_EQ(serialization_time(payload, GbitsPerSec{400.0}),
            sim::detail::serialization_time(4096, 400.0));
}

// ---------------------------------------------------------------------------
// Golden bit-identity: the conversion's behavior-preservation proof
// ---------------------------------------------------------------------------

TEST(GoldenScenario, ReportBitIdenticalToPreConversionTree) {
  // FNV-1a over every exporter's output for a fixed-seed mitigated run.
  // 8206003594010070324 was recorded on the last all-integer-ID commit; it
  // moved to 18106918244164645694 when reports adopted canonical
  // (iteration, leaf) detection order for the sharded-event-lane engine —
  // an intentional, content-preserving reorder (CHANGES.md PR 9: the same
  // detections, sorted; per-iteration stats unchanged). A mismatch against
  // the new pin means observable behavior changed.
  EXPECT_EQ(testing::golden_report_hash(), 18106918244164645694ull);
}

TEST(GoldenScenario, ParallelLaneReportBitIdentical) {
  // parallel == 2 pins the multi-lane paths the parallel==1 golden cannot
  // reach (uplink→lane math, lane-indexed PortLoadMap, spine_of alarm
  // names). Recorded post-conversion because the alarm-name fix for
  // parallel > 1 was an intentional behavior change (CHANGES.md PR 5);
  // re-pinned from 13062378741350390824 for the canonical (iteration,
  // leaf) report order (CHANGES.md PR 9, same reorder as above).
  EXPECT_EQ(testing::golden_parallel_report_hash(), 904324871756836400ull);

  // The pin is only meaningful if the lane-1 fault was actually detected —
  // an empty report would hash stably too.
  exp::Scenario scenario{testing::golden_parallel_scenario_config()};
  const exp::ScenarioResult result = scenario.run();
  EXPECT_FALSE(result.detections.empty());
}

}  // namespace
}  // namespace flowpulse::core
