// Sharded event lanes: the bit-identity contract. A laned run
// (FLOWPULSE_LANES / config.lanes >= 2) must produce byte-identical
// reports to the serial engine for every lane count — these tests compare
// full report hashes (exp JSON exporters, FNV-1a) across lane counts,
// seeds, and topologies, and pin the >= 1k-host 3-level Clos golden that
// CI's laned-equivalence job re-derives.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "exp/clos_scenario.h"
#include "exp/scenario.h"
#include "golden_scenario.h"
#include "sim/lane_runner.h"

namespace flowpulse {
namespace {

/// Deterministic-fault 2-level scenario: one known-disconnected uplink and
/// one silent black-holed downlink — both drops_all() kinds, so the laned
/// engine accepts it.
exp::ScenarioConfig laneable_config(std::uint32_t leaves, std::uint32_t spines,
                                    std::uint64_t seed) {
  exp::ScenarioConfig cfg;
  cfg.fabric.shape.leaves = leaves;
  cfg.fabric.shape.spines = spines;
  cfg.fabric.shape.hosts_per_leaf = 1;
  cfg.collective_bytes = core::Bytes{256u << 10};
  cfg.iterations = 4;
  cfg.seed = seed;
  cfg.preexisting.emplace_back(net::LeafId{2}, net::UplinkIndex{1});
  exp::NewFault fault;
  fault.leaf = net::LeafId{leaves - 3};
  fault.uplink = net::UplinkIndex{spines - 1};
  fault.where = exp::NewFault::Where::kDownlink;
  fault.spec = net::FaultSpec::black_hole(sim::Time::microseconds(50));
  cfg.new_faults.push_back(fault);
  return cfg;
}

TEST(LanedScenario, BitIdenticalAcrossLaneCountsSeedsAndShapes) {
  // The property the whole tentpole hangs on: for every shape x seed, the
  // laned report hash equals the serial one for lanes in {1, 2, 4, 8}.
  struct Shape {
    std::uint32_t leaves, spines;
  };
  for (const Shape shape : {Shape{8, 4}, Shape{16, 8}}) {
    for (const std::uint64_t seed : {1ull, 7ull}) {
      exp::ScenarioConfig cfg = laneable_config(shape.leaves, shape.spines, seed);
      cfg.lanes = 0;
      const std::uint64_t serial = testing::report_hash(cfg);
      for (const std::int32_t lanes : {1, 2, 4, 8}) {
        cfg.lanes = lanes;
        EXPECT_EQ(testing::report_hash(cfg), serial)
            << shape.leaves << "x" << shape.spines << " seed " << seed << " lanes "
            << lanes;
      }
    }
  }
}

TEST(LanedScenario, RequestedLanesActuallyShard) {
  exp::ScenarioConfig cfg = laneable_config(8, 4, 1);
  cfg.lanes = 4;
  exp::Scenario scenario{cfg};
  EXPECT_TRUE(scenario.laned());
  cfg.lanes = 1;
  exp::Scenario serial{cfg};
  EXPECT_FALSE(serial.laned());
}

TEST(LanedScenario, ProbabilisticFaultFallsBackToSerial) {
  // A random-drop fault draws from the fabric-wide fault RNG in packet
  // order — unshardable. The gate must fall back to serial silently, and
  // the result must equal an explicit serial run.
  exp::ScenarioConfig cfg = laneable_config(8, 4, 1);
  cfg.new_faults[0].spec = net::FaultSpec::random_drop(0.10);
  cfg.lanes = 4;
  exp::Scenario scenario{cfg};
  EXPECT_FALSE(scenario.laned());

  const std::uint64_t laned_request = testing::report_hash(cfg);
  cfg.lanes = 0;
  EXPECT_EQ(testing::report_hash(cfg), laned_request);
}

TEST(LanedScenario, LanedRunDetects) {
  // Equal hashes alone could also mean "both empty": pin that the laned
  // run really detects the black-holed downlink.
  exp::ScenarioConfig cfg = laneable_config(8, 4, 1);
  cfg.lanes = 4;
  exp::Scenario scenario{cfg};
  ASSERT_TRUE(scenario.laned());
  const exp::ScenarioResult result = scenario.run();
  bool faulty = false;
  for (const fp::DetectionResult& d : result.detections) faulty |= d.faulty();
  EXPECT_TRUE(faulty);
  EXPECT_GT(result.events, 0u);
}

/// The headline >= 1k-host scenario the ISSUE pins: 16 pods x 8 leaves x
/// 8 pod-spines x 8 hosts/leaf = 1024 hosts, deterministic silent faults
/// at both monitored tiers. Scaled-down workload (128 KiB, 1 iteration)
/// keeps the three full-fabric runs test-suite friendly while still
/// crossing every lane boundary class (host<->leaf, pod-spine<->core,
/// PFC reverse paths).
exp::ClosScenarioConfig clos_1k_config() {
  exp::ClosScenarioConfig cfg;
  cfg.collective_bytes = core::Bytes{128u << 10};
  cfg.iterations = 1;
  cfg.seed = 42;
  cfg.leaf_faults.push_back(
      {net::LeafId{37}, 2, net::FaultSpec::black_hole(sim::Time::microseconds(5))});
  cfg.core_faults.push_back({3, 1, 2, net::FaultSpec::black_hole()});
  return cfg;
}

TEST(ClosScenario1k, GoldenSerialVsLaned) {
  exp::ClosScenarioConfig cfg = clos_1k_config();
  cfg.lanes = 0;
  const std::uint64_t serial = exp::clos_report_hash(cfg);
  // Golden pin: recorded from the serial engine when the scenario was
  // introduced (CHANGES.md PR 9). The CI laned-equivalence job re-derives
  // it with FLOWPULSE_LANES >= 4. A change here means the 1024-host
  // fabric's event order moved — justify it the way the PR 9 provenance
  // key was justified, or treat it as a determinism regression.
  EXPECT_EQ(serial, 17132852872153006606ull);
  for (const std::int32_t lanes : {4, 8}) {
    cfg.lanes = lanes;
    exp::ClosScenario scenario{cfg};
    EXPECT_TRUE(scenario.laned());
    const exp::ClosScenarioResult result = scenario.run();
    EXPECT_EQ(result.lanes, static_cast<std::uint32_t>(lanes));
    EXPECT_EQ(exp::clos_report_hash(result), serial) << "lanes " << lanes;
  }
}

TEST(ClosScenario1k, ProbabilisticFaultFallsBackToSerial) {
  exp::ClosScenarioConfig cfg = clos_1k_config();
  cfg.core_faults[0].spec = net::FaultSpec::random_drop(0.05);
  cfg.lanes = 4;
  exp::ClosScenario scenario{cfg};
  EXPECT_FALSE(scenario.laned());
}

TEST(LaneRunner, DirectTwoLaneHandoff) {
  // Minimal cross-lane protocol check without a fabric: two lanes ping-pong
  // a counter through post_remote with 100 ns of lookahead.
  sim::Simulator a{1};
  sim::Simulator b{2};
  sim::LaneRunner runner{{&a, &b}, sim::Time::nanoseconds(100)};
  int hops = 0;
  std::function<void(sim::EventLane&, sim::EventLane&)> hop =
      [&](sim::EventLane& from, sim::EventLane& to) {
        ++hops;
        if (hops >= 8) return;
        from.post_remote(to, sim::Time::nanoseconds(100),
                         sim::LaneFn{[&, p = &to, q = &from] { hop(*p, *q); }});
      };
  a.schedule_in(sim::Time::nanoseconds(10), [&] { hop(a, b); });
  runner.run();
  EXPECT_EQ(hops, 8);
  EXPECT_TRUE(runner.drained());
  EXPECT_GE(runner.rounds(), 8u);
  EXPECT_EQ(runner.events_executed(), a.events_executed() + b.events_executed());
}

}  // namespace
}  // namespace flowpulse
