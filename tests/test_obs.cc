// Flight-recorder observability layer: JSON escaping, ring-buffer
// semantics, exporters, the metrics registry, and — in trace-enabled
// builds — end-to-end event capture from a detection scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "json_check.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/time.h"

#if FP_TRACE_ENABLED
#include "core/units.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "net/types.h"
#include "sim/simulator.h"
#endif

namespace flowpulse::obs {
namespace {

// ---------------------------------------------------------------------------
// json_escape
// ---------------------------------------------------------------------------

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("debounce"), "debounce");
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("leaf3.up1 @ 42us"), "leaf3.up1 @ 42us");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"no\""), "say \\\"no\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape("\b\f"), "\\b\\f");
  EXPECT_EQ(json_escape(std::string{"\x01\x1f", 2}), "\\u0001\\u001f");
}

TEST(JsonEscape, QuoteWrapsAndEscapes) {
  EXPECT_EQ(json_quote("x"), "\"x\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_TRUE(testjson::valid_json(json_quote("hostile \"\\\n\t\x02 payload")));
}

// ---------------------------------------------------------------------------
// FlightRecorder ring semantics
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RecordsBelowCapacityWithoutLoss) {
  FlightRecorder rec{8};
  rec.set_level(TraceLevel::kEvents);
  for (std::uint64_t n = 0; n < 5; ++n) {
    rec.emit(EventKind::kPacketDrop, sim::Time::microseconds(static_cast<std::int64_t>(n)),
             "port", 0, 0, n, 0.0, "");
  }
  EXPECT_EQ(rec.total(), 5u);
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  const std::vector<TraceEvent> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (std::uint64_t n = 0; n < 5; ++n) EXPECT_EQ(snap[n].value, n);
}

TEST(FlightRecorder, WrapOverwritesOldestAndCountsDropped) {
  FlightRecorder rec{4};
  rec.set_level(TraceLevel::kEvents);
  for (std::uint64_t n = 0; n < 11; ++n) {
    rec.emit(EventKind::kPacketDrop, sim::Time::microseconds(static_cast<std::int64_t>(n)),
             "", 0, 0, n, 0.0, "");
  }
  EXPECT_EQ(rec.total(), 11u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 7u);
  // The retained window is the most recent events, oldest first.
  const std::vector<TraceEvent> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(snap[i].value, 7 + i);
}

TEST(FlightRecorder, ZeroCapacityClampsToOne) {
  FlightRecorder rec{0};
  rec.set_level(TraceLevel::kEvents);
  EXPECT_EQ(rec.capacity(), 1u);
  rec.emit(EventKind::kRtoFire, sim::Time::zero(), "", 1, 2, 3, 0.0, "");
  rec.emit(EventKind::kRtoFire, sim::Time::zero(), "", 4, 5, 6, 0.0, "");
  ASSERT_EQ(rec.snapshot().size(), 1u);
  EXPECT_EQ(rec.snapshot()[0].a, 4u);
}

// ---------------------------------------------------------------------------
// ConcurrentRecorder: the mutex-guarded sibling for multi-lane sharing
// ---------------------------------------------------------------------------

TEST(ConcurrentRecorder, MatchesFlightRecorderRingSemantics) {
  ConcurrentRecorder rec{4};
  rec.set_level(TraceLevel::kEvents);
  for (std::uint64_t n = 0; n < 11; ++n) {
    rec.emit(EventKind::kPacketDrop, sim::Time::microseconds(static_cast<std::int64_t>(n)),
             "", 0, 0, n, 0.0, "");
  }
  EXPECT_EQ(rec.total(), 11u);
  EXPECT_EQ(rec.dropped(), 7u);
  const std::vector<TraceEvent> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(snap[i].value, 7 + i);
  rec.clear();
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(ConcurrentRecorder, CountsAreExactUnderConcurrentEmit) {
  // Interleaving is nondeterministic; the counters must not be. Every emit
  // is admitted under the lock, so total() is exactly threads × events and
  // the retained window is exactly the capacity — lost updates would show
  // up as a shortfall here (and as a TSan report on the tsan leg).
  constexpr std::uint64_t kThreads = 4;
  constexpr std::uint64_t kEvents = 2000;
  ConcurrentRecorder rec{64};
  rec.set_level(TraceLevel::kEvents);
  std::vector<std::thread> workers;
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, t] {
      for (std::uint64_t n = 0; n < kEvents; ++n) {
        rec.emit(EventKind::kPacketDrop, sim::Time::zero(), "lane",
                 static_cast<std::uint32_t>(t), 0, n, 0.0, "");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(rec.total(), kThreads * kEvents);
  EXPECT_EQ(rec.dropped(), kThreads * kEvents - 64);
  EXPECT_EQ(rec.snapshot().size(), 64u);
}

TEST(FlightRecorder, ClearResetsWindow) {
  FlightRecorder rec{4};
  rec.set_level(TraceLevel::kEvents);
  rec.emit(EventKind::kPacketDrop, sim::Time::zero(), "", 0, 0, 0, 0.0, "");
  rec.clear();
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(FlightRecorder, LevelGatesVerboseKinds) {
  FlightRecorder rec{8};
  rec.set_level(TraceLevel::kEvents);
  // wants() is the macro's filter; verbose kinds are refused at kEvents.
  EXPECT_TRUE(rec.wants(EventKind::kPacketDrop));
  EXPECT_TRUE(rec.wants(EventKind::kMitigation));
  EXPECT_FALSE(rec.wants(EventKind::kIteration));
  EXPECT_FALSE(rec.wants(EventKind::kRunStart));
  rec.set_level(TraceLevel::kVerbose);
  EXPECT_TRUE(rec.wants(EventKind::kIteration));
  rec.set_level(TraceLevel::kOff);
  EXPECT_FALSE(rec.wants(EventKind::kPacketDrop));
}

TEST(FlightRecorder, EntityNameIsBoundedCopy) {
  FlightRecorder rec{2};
  rec.set_level(TraceLevel::kEvents);
  const std::string long_name(100, 'x');
  rec.emit(EventKind::kPacketDrop, sim::Time::zero(), long_name.c_str(), 0, 0, 0, 0.0, "");
  const TraceEvent e = rec.snapshot()[0];
  EXPECT_EQ(std::strlen(e.entity), sizeof(e.entity) - 1);
  EXPECT_EQ(entity_label(e), std::string(sizeof(e.entity) - 1, 'x'));
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

std::vector<TraceEvent> sample_window() {
  std::vector<TraceEvent> events;
  TraceEvent drop;
  drop.time = sim::Time::microseconds(10);
  drop.kind = EventKind::kPacketDrop;
  std::snprintf(drop.entity, sizeof(drop.entity), "%s", "spine0.down5");
  drop.a = 3;
  drop.b = 5;
  drop.value = 4096;
  drop.detail = "silent";
  events.push_back(drop);

  TraceEvent pause;
  pause.time = sim::Time::microseconds(12);
  pause.kind = EventKind::kPfcPause;
  std::snprintf(pause.entity, sizeof(pause.entity), "%s", "leaf1");
  pause.a = 2;
  pause.b = 0;
  pause.value = 150000;
  pause.detail = "xoff";
  events.push_back(pause);

  TraceEvent rto;
  rto.time = sim::Time::microseconds(18);
  rto.kind = EventKind::kRtoFire;
  rto.a = 4;
  rto.b = 7;
  rto.value = 11;
  events.push_back(rto);

  TraceEvent resume = pause;
  resume.time = sim::Time::microseconds(25);
  resume.kind = EventKind::kPfcResume;
  resume.value = 90000;
  resume.detail = "xon";
  events.push_back(resume);

  TraceEvent flag;
  flag.time = sim::Time::microseconds(40);
  flag.kind = EventKind::kDetectorFlag;
  flag.a = 1;
  flag.b = 0;
  flag.value = 2;
  flag.dval = 0.25;
  flag.detail = "shortfall";
  events.push_back(flag);

  TraceEvent mit;
  mit.time = sim::Time::microseconds(41);
  mit.kind = EventKind::kMitigation;
  mit.a = 1;
  mit.b = 0;
  mit.value = 2;
  mit.detail = "debounce";
  events.push_back(mit);
  return events;
}

TEST(ChromeExport, EmitsValidJsonWithAllEvents) {
  const std::string json = chrome_trace_json(sample_window());
  EXPECT_TRUE(testjson::valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"drop\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pfc_pause\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rto\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"detector_flag\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mitigation\""), std::string::npos);
  // Entities become named tracks.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"spine0.down5\""), std::string::npos);
  EXPECT_NE(json.find("\"host4\""), std::string::npos);     // synthesized for RTO
  EXPECT_NE(json.find("\"leaf1.up0\""), std::string::npos); // synthesized for flag
}

TEST(ChromeExport, PairsPfcPauseWithResumeAsDuration) {
  const std::string json = chrome_trace_json(sample_window());
  // The pause becomes an X slice with dur = 25us − 12us; the resume is
  // folded away (no instant event named pfc_resume).
  EXPECT_NE(json.find("\"ph\":\"X\",\"dur\":13"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"name\":\"pfc_resume\""), std::string::npos);
}

TEST(ChromeExport, UnpairedPauseStretchesToWindowEnd) {
  std::vector<TraceEvent> events = sample_window();
  events.erase(events.begin() + 3);  // drop the resume
  const std::string json = chrome_trace_json(events);
  EXPECT_TRUE(testjson::valid_json(json));
  // Window ends at the mitigation event (41us); pause opened at 12us.
  EXPECT_NE(json.find("\"ph\":\"X\",\"dur\":29"), std::string::npos) << json;
}

TEST(ChromeExport, HostileStringsStayValidJson) {
  std::vector<TraceEvent> events = sample_window();
  std::snprintf(events[0].entity, sizeof(events[0].entity), "%s", "ev\"il\\\nport");
  events[0].detail = "quote\" backslash\\ newline\n tab\t control\x01 end";
  const std::string json = chrome_trace_json(events);
  EXPECT_TRUE(testjson::valid_json(json)) << json;
}

TEST(ChromeExport, EmptyWindow) {
  EXPECT_TRUE(testjson::valid_json(chrome_trace_json({})));
}

TEST(TextTimeline, OneLinePerEventWithKindAndEntity) {
  const std::string text = text_timeline(sample_window());
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
  EXPECT_NE(text.find("drop"), std::string::npos);
  EXPECT_NE(text.find("pfc_resume"), std::string::npos);
  EXPECT_NE(text.find("spine0.down5"), std::string::npos);
  EXPECT_NE(text.find("host4"), std::string::npos);
  EXPECT_NE(text.find("debounce"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Histogram, BucketsCountAndSummarize) {
  Histogram h;
  h.add(0.0);
  h.add(0.5);
  h.add(1.0);
  h.add(3.0);
  h.add(1000.0);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 200.9, 1e-9);
  EXPECT_EQ(h.bucket(0), 2u);  // [0, 1)
  EXPECT_EQ(h.bucket(1), 1u);  // [1, 2)
  EXPECT_EQ(h.bucket(2), 1u);  // [2, 4)
  // Median bound: two of five values are < 1, the third lands in [1, 2).
  EXPECT_EQ(h.quantile_bound(0.5), 2.0);
  EXPECT_TRUE(testjson::valid_json(h.to_json()));
}

TEST(Histogram, EmptyIsWellDefined) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile_bound(0.99), 0.0);
  EXPECT_TRUE(testjson::valid_json(h.to_json()));
}

TEST(TraceMetrics, ReplaysWindowIntoRegistry) {
  const TraceMetrics m = TraceMetrics::from_events(sample_window());
  EXPECT_EQ(m.count(EventKind::kPacketDrop), 1u);
  EXPECT_EQ(m.count(EventKind::kPfcPause), 1u);
  EXPECT_EQ(m.count(EventKind::kPfcResume), 1u);
  EXPECT_EQ(m.count(EventKind::kRtoFire), 1u);
  EXPECT_EQ(m.count(EventKind::kDetectorFlag), 1u);
  EXPECT_EQ(m.count(EventKind::kMitigation), 1u);
  EXPECT_EQ(m.retransmits, 1u);
  EXPECT_EQ(m.drop_bytes.count(), 1u);
  EXPECT_EQ(m.drop_bytes.max(), 4096.0);
  // Pause 12us → resume 25us on the same (entity, port, class).
  EXPECT_EQ(m.pause_us.count(), 1u);
  EXPECT_NEAR(m.pause_us.max(), 13.0, 1e-9);
  EXPECT_EQ(m.queue_bytes_at_pause.count(), 1u);
  EXPECT_EQ(m.detector_rel_dev.count(), 1u);
  EXPECT_EQ(m.detector_rel_dev.max(), 0.25);
  const std::string json = m.to_json();
  EXPECT_TRUE(testjson::valid_json(json)) << json;
  EXPECT_NE(json.find("\"drop\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pause_us\":{"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The FP_TRACE macro itself
// ---------------------------------------------------------------------------

#if !FP_TRACE_ENABLED
TEST(TraceMacro, CompiledOutArgumentsAreDiscarded) {
  // In the default build FP_TRACE's argument tokens vanish at preprocessing
  // time: identifiers that exist nowhere must not even be name-resolved.
  // Compiling this test IS the assertion.
  FP_TRACE(no_such_simulator, kNotAKind, totally, undefined, identifiers, in,
           this, scope);
  SUCCEED();
}
#else

TEST(TraceMacro, EmitsThroughSimulatorIntoRecorder) {
  sim::Simulator sim{7};
  FlightRecorder rec{64};
  rec.set_level(TraceLevel::kVerbose);
  sim.set_trace(&rec);
  sim.schedule_in(sim::Time::microseconds(1), [] {});
  sim.run();
  // run_until emits run_start and run_stop markers at kVerbose.
  const std::vector<TraceEvent> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].kind, EventKind::kRunStart);
  EXPECT_EQ(snap[1].kind, EventKind::kRunStop);
  EXPECT_EQ(snap[1].value, 1u);  // events executed
  EXPECT_STREQ(snap[1].detail, "drained");
}

TEST(TraceMacro, NoSinkMeansNoRecording) {
  sim::Simulator sim{7};
  sim.schedule_in(sim::Time::microseconds(1), [] {});
  sim.run();  // must not crash with trace() == nullptr
  SUCCEED();
}

TEST(TraceMacro, OffLevelRecordsNothing) {
  sim::Simulator sim{7};
  FlightRecorder rec{64};  // level defaults to kOff
  sim.set_trace(&rec);
  sim.schedule_in(sim::Time::microseconds(1), [] {});
  sim.run();
  EXPECT_EQ(rec.total(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: a detection scenario fills the flight recorder
// ---------------------------------------------------------------------------

// The trace_detection example's scenario: AllToAll (so incast provokes the
// PFC machinery — ring traffic never queues enough to pause) with a gray
// downlink appearing mid-run, closed-loop mitigation on. Reliably records
// every event kind in the taxonomy.
exp::ScenarioConfig traced_detection_scenario() {
  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{8, 4, 1, 1};
  cfg.collective = collective::CollectiveKind::kAllToAll;
  cfg.collective_bytes = core::Bytes{8ull << 20};
  cfg.iterations = 12;
  cfg.seed = 1;
  cfg.fabric.pfc.xoff_bytes = core::Bytes{9 * 1024};
  cfg.fabric.pfc.xon_bytes = core::Bytes{4 * 1024};
  cfg.flowpulse.threshold = 0.05;  // above AllToAll quantization noise
  cfg.mitigation.enabled = true;
  cfg.mitigation.debounce_iterations = 2;
  cfg.mitigation.settle_iterations = 1;
  cfg.mitigation.probation_iterations = 2;
  exp::NewFault f;
  f.leaf = net::LeafId{5};
  f.uplink = net::UplinkIndex{1};
  f.where = exp::NewFault::Where::kDownlink;
  f.spec = net::FaultSpec::random_drop(0.15, sim::Time::microseconds(150));
  cfg.new_faults.push_back(f);
  cfg.trace.level = TraceLevel::kEvents;
  cfg.trace.capacity = 1 << 16;
  return cfg;
}

TEST(TraceE2E, DetectionScenarioCapturesFullTaxonomy) {
  exp::Scenario s{traced_detection_scenario()};
  const exp::ScenarioResult r = s.run();
  ASSERT_FALSE(r.trace_events.empty());

  std::set<EventKind> kinds;
  for (const TraceEvent& e : r.trace_events) kinds.insert(e.kind);
  EXPECT_TRUE(kinds.count(EventKind::kPacketDrop)) << "black hole must drop packets";
  EXPECT_TRUE(kinds.count(EventKind::kPfcPause)) << "tight xoff must provoke PFC";
  EXPECT_TRUE(kinds.count(EventKind::kRtoFire)) << "drops must fire retransmit timers";
  EXPECT_TRUE(kinds.count(EventKind::kDetectorFlag));
  EXPECT_TRUE(kinds.count(EventKind::kLocalization));
  EXPECT_TRUE(kinds.count(EventKind::kMitigation));

  // Detector flags name the faulted link.
  bool flagged_faulted_link = false;
  for (const TraceEvent& e : r.trace_events) {
    if (e.kind == EventKind::kDetectorFlag && e.a == 5 && e.b == 1) {
      flagged_faulted_link = true;
    }
  }
  EXPECT_TRUE(flagged_faulted_link);

  // Automatic dumps were taken on flagged iterations, capped and deduped.
  ASSERT_FALSE(r.trace_dumps.empty());
  EXPECT_LE(r.trace_dumps.size(), std::size_t{8});
  for (std::size_t i = 1; i < r.trace_dumps.size(); ++i) {
    EXPECT_NE(r.trace_dumps[i].iteration, r.trace_dumps[i - 1].iteration);
  }
  EXPECT_NE(r.trace_dumps.front().reason.find("leaf"), std::string::npos);

  // The Chrome export of the full window is strictly valid JSON.
  const std::string chrome = chrome_trace_json(r.trace_events);
  EXPECT_TRUE(testjson::valid_json(chrome));
  EXPECT_NE(chrome.find("\"name\":\"mitigation\""), std::string::npos);

  // The run-summary JSON embeds the trace section and stays valid.
  const std::string report = exp::to_json(r);
  EXPECT_TRUE(testjson::valid_json(report));
  EXPECT_NE(report.find("\"trace\":{"), std::string::npos);
  EXPECT_NE(report.find("\"metrics\":{"), std::string::npos);
}

TEST(TraceE2E, SameSeedSameTrace) {
  // Tracing must not perturb determinism: two runs record identical windows.
  const exp::ScenarioConfig cfg = traced_detection_scenario();
  exp::Scenario a{cfg};
  exp::Scenario b{cfg};
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_EQ(ra.trace_events.size(), rb.trace_events.size());
  for (std::size_t i = 0; i < ra.trace_events.size(); ++i) {
    EXPECT_EQ(ra.trace_events[i].time.ps(), rb.trace_events[i].time.ps()) << i;
    EXPECT_EQ(ra.trace_events[i].kind, rb.trace_events[i].kind) << i;
    EXPECT_EQ(ra.trace_events[i].value, rb.trace_events[i].value) << i;
  }
}

TEST(TraceE2E, UntracedRunStaysEmpty) {
  exp::ScenarioConfig cfg = traced_detection_scenario();
  cfg.trace.level = TraceLevel::kOff;  // and no FLOWPULSE_TRACE env in tests
  cfg.iterations = 2;
  exp::Scenario s{cfg};
  const exp::ScenarioResult r = s.run();
  EXPECT_TRUE(r.trace_events.empty());
  EXPECT_TRUE(r.trace_dumps.empty());
  EXPECT_NE(exp::to_json(r).find("\"trace\":null"), std::string::npos);
}
#endif  // FP_TRACE_ENABLED

}  // namespace
}  // namespace flowpulse::obs
