// Export/reporting: JSON and CSV serialization of run results and alerts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/report.h"
#include "exp/scenario.h"
#include "json_check.h"

namespace flowpulse::exp {
namespace {

ScenarioResult sample_result() {
  ScenarioResult r;
  r.iterations_completed = 2;
  r.data_valid = true;
  r.per_iter_max_dev = {0.001, 0.034};
  r.iter_fault_active = {0, 1};
  r.iter_windows = {{sim::Time::zero(), sim::Time::microseconds(100)},
                    {sim::Time::microseconds(110), sim::Time::microseconds(220)}};
  r.transport_stats.data_packets_sent = 1000;
  r.transport_stats.retx_packets_sent = 7;
  r.events = 12345;
  return r;
}

std::vector<fp::DetectionResult> sample_alerts() {
  fp::DetectionResult d;
  d.leaf = net::LeafId{12};
  d.iteration = net::IterIndex{1};
  d.max_rel_dev = 0.034;
  fp::PortAlert a;
  a.uplink = net::UplinkIndex{5};
  a.observed = 966000;
  a.predicted = 1000000;
  a.rel_dev = 0.034;
  a.localization.verdict = fp::Localization::Verdict::kRemoteLinks;
  a.localization.suspect_senders = {net::LeafId{3}};
  d.alerts.push_back(a);
  return {d};
}

// Minimal structural JSON validation: balanced braces/brackets outside of
// (our exporter emits no strings with brackets) and expected keys present.
void expect_balanced(const std::string& s) {
  int brace = 0, bracket = 0;
  for (const char c : s) {
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    ASSERT_GE(brace, 0);
    ASSERT_GE(bracket, 0);
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
}

TEST(Report, RunJsonStructure) {
  const std::string json = to_json(sample_result());
  expect_balanced(json);
  EXPECT_NE(json.find("\"iterations_completed\":2"), std::string::npos);
  EXPECT_NE(json.find("\"data_valid\":true"), std::string::npos);
  EXPECT_NE(json.find("\"retx_packets\":7"), std::string::npos);
  EXPECT_NE(json.find("\"fault_active\":true"), std::string::npos);
  EXPECT_NE(json.find("\"fault_active\":false"), std::string::npos);
  EXPECT_NE(json.find("\"max_rel_dev\":0.034"), std::string::npos);
}

TEST(Report, AlertsJson) {
  const std::string json = alerts_to_json(sample_alerts());
  expect_balanced(json);
  EXPECT_NE(json.find("\"leaf\":12"), std::string::npos);
  EXPECT_NE(json.find("\"port\":5"), std::string::npos);
  EXPECT_NE(json.find("\"localization\":\"remote\""), std::string::npos);
  EXPECT_NE(json.find("\"suspect_senders\":[3]"), std::string::npos);
}

TEST(Report, AlertsJsonEmpty) {
  EXPECT_EQ(alerts_to_json({}), "[]");
}

TEST(Report, DeviationsCsv) {
  const std::string csv = deviations_to_csv(sample_result());
  EXPECT_EQ(csv,
            "iteration,max_rel_dev,fault_active\n"
            "0,0.001,0\n"
            "1,0.034,1\n");
}

std::vector<ctrl::MitigationEvent> sample_events() {
  ctrl::MitigationEvent q;
  q.kind = ctrl::MitigationEvent::Kind::kQuarantine;
  q.time = sim::Time::microseconds(340);
  q.iteration = net::IterIndex{2};
  q.leaf = net::LeafId{5};
  q.uplink = net::UplinkIndex{1};
  q.reason = "debounce";
  ctrl::MitigationEvent c;
  c.kind = ctrl::MitigationEvent::Kind::kConfirm;
  c.time = sim::Time::microseconds(700);
  c.iteration = net::IterIndex{5};
  c.leaf = net::LeafId{5};
  c.uplink = net::UplinkIndex{1};
  c.reason = "quarantine";
  return {q, c};
}

TEST(Report, MitigationJsonListsEventsAndTimeline) {
  ctrl::RecoveryTimeline t;
  t.first_alert = sim::Time::microseconds(220);
  t.first_alert_iteration = net::IterIndex{1};
  t.first_quarantine = sim::Time::microseconds(340);
  t.first_quarantine_iteration = net::IterIndex{2};
  // `recovered` left at the never-happened sentinel → null.
  const std::string json = mitigation_to_json(sample_events(), t);
  expect_balanced(json);
  EXPECT_NE(json.find("\"first_alert_us\":220"), std::string::npos);
  EXPECT_NE(json.find("\"first_quarantine_us\":340"), std::string::npos);
  EXPECT_NE(json.find("\"recovered_us\":null"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"quarantine\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"confirm\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"debounce\""), std::string::npos);
  EXPECT_NE(json.find("\"leaf\":5"), std::string::npos);
}

TEST(Report, RunJsonEmbedsMitigation) {
  ScenarioResult r = sample_result();
  r.mitigation_events = sample_events();
  r.recovery.first_quarantine = sim::Time::microseconds(340);
  const std::string json = to_json(r);
  expect_balanced(json);
  EXPECT_NE(json.find("\"mitigation\":{"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"quarantine\""), std::string::npos);
  // Disabled mitigation still yields a well-formed (empty) section.
  const std::string empty = to_json(sample_result());
  expect_balanced(empty);
  EXPECT_NE(empty.find("\"events\":[]"), std::string::npos);
  EXPECT_NE(empty.find("\"first_alert_us\":null"), std::string::npos);
}

TEST(Report, AllJsonOutputsPassStrictParser) {
  // Every emitter, validated by a real RFC 8259 parser rather than brace
  // counting (which hostile string content defeats).
  ScenarioResult r = sample_result();
  r.detections = sample_alerts();
  r.mitigation_events = sample_events();
  EXPECT_TRUE(testjson::valid_json(to_json(r)));
  EXPECT_TRUE(testjson::valid_json(alerts_to_json(sample_alerts())));
  EXPECT_TRUE(testjson::valid_json(alerts_to_json({})));
  EXPECT_TRUE(testjson::valid_json(
      mitigation_to_json(sample_events(), ctrl::RecoveryTimeline{})));
}

TEST(Report, HostileReasonStringsStayValidJson) {
  // Regression: e.reason used to be emitted raw, so a reason containing a
  // quote or backslash produced unparseable run-summary JSON. All reasons
  // now route through obs::json_escape.
  std::vector<ctrl::MitigationEvent> events = sample_events();
  events[0].reason = "say \"no\" \\ and\nbreak\tout\x01";
  events[1].reason = "}{\"][";
  const std::string json = mitigation_to_json(events, ctrl::RecoveryTimeline{});
  EXPECT_TRUE(testjson::valid_json(json)) << json;
  EXPECT_NE(json.find("\\\"no\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);

  ScenarioResult r = sample_result();
  r.mitigation_events = events;
  EXPECT_TRUE(testjson::valid_json(to_json(r)));
}

TEST(Report, MitigationTableRowsMatchEvents) {
  std::ostringstream os;
  mitigation_table(sample_events()).print(os);
  const std::string table = os.str();
  EXPECT_NE(table.find("quarantine"), std::string::npos);
  EXPECT_NE(table.find("confirm"), std::string::npos);
  EXPECT_NE(table.find("leaf 5 / uplink 1"), std::string::npos);
  EXPECT_NE(table.find("debounce"), std::string::npos);
  // Header + separator + one line per event.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 4);
}

TEST(Report, EventKindNames) {
  EXPECT_STREQ(event_kind_name(ctrl::MitigationEvent::Kind::kQuarantine), "quarantine");
  EXPECT_STREQ(event_kind_name(ctrl::MitigationEvent::Kind::kRestore), "restore");
  EXPECT_STREQ(event_kind_name(ctrl::MitigationEvent::Kind::kConfirm), "confirm");
}

TEST(Report, VerdictNames) {
  EXPECT_STREQ(verdict_name(fp::Localization::Verdict::kLocalLink), "local");
  EXPECT_STREQ(verdict_name(fp::Localization::Verdict::kRemoteLinks), "remote");
  EXPECT_STREQ(verdict_name(fp::Localization::Verdict::kUnknown), "unknown");
}

TEST(Report, WriteFileRoundTrip) {
  const std::string path = "/tmp/fp_report_test.json";
  ASSERT_TRUE(write_file(path, "{\"x\":1}"));
  std::ifstream in{path};
  std::string content{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  EXPECT_EQ(content, "{\"x\":1}");
  std::remove(path.c_str());
}

TEST(Report, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(write_file("/nonexistent-dir/x/y.json", "x"));
}

}  // namespace
}  // namespace flowpulse::exp
