// Tests for the runtime invariant auditor (src/sim/audit.h).
//
// Each negative test deliberately breaks one invariant — drops a byte from
// a link ledger, schedules an event into the past, wedges a PFC pause,
// double-delivers a message, invents monitored bytes — and asserts that the
// corresponding check fires with the right structured diagnostic. A final
// end-to-end scenario proves the clean path stays quiet. The whole file
// self-skips in non-audit builds, where FP_AUDIT compiles to nothing.
#include <gtest/gtest.h>

#include <cstdint>

#include "exp/scenario.h"
#include "flowpulse/system.h"
#include "net/fat_tree.h"
#include "net/packet.h"
#include "core/strong_id.h"
#include "core/units.h"
#include "net/types.h"
#include "sim/audit.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "transport/transport_layer.h"

namespace flowpulse {
namespace {

using sim::Simulator;
using sim::Time;
namespace audit = sim::audit;

#if FP_AUDIT_ENABLED

/// Handler installed by every negative test: convert the violation into an
/// exception the test can catch and inspect instead of dying.
[[noreturn]] void throw_violation(const audit::Violation& v) {
  throw audit::ViolationError{audit::Violation{v}};
}

net::FatTreeConfig small_fabric() {
  net::FatTreeConfig cfg;
  cfg.shape = net::TopologyInfo{2, 2, 2, 1};  // 2 leaves × 2 spines, 2 hosts/leaf
  return cfg;
}

net::Packet tagged_packet(std::uint32_t size, std::uint32_t iteration,
                          std::uint16_t job = 0) {
  net::Packet p;
  p.size_bytes = core::Bytes{size};
  p.kind = net::PacketKind::kData;
  p.priority = net::Priority::kCollective;
  p.flow_id = net::flowid::make_collective(net::IterIndex{iteration}, job);
  return p;
}

TEST(Audit, ConservationHoldsOnCleanTraffic) {
  Simulator sim{1};
  net::FatTree net{sim, small_fabric()};
  net::Packet p;
  p.size_bytes = core::Bytes{1000};
  p.src = net::HostId{0};
  p.dst = net::HostId{3};  // crosses a spine: exercises every port class on the path
  net.host(net::HostId{0}).nic().enqueue(p);
  sim.run();  // quiesce checks run automatically; a violation would abort
  SUCCEED();
}

TEST(Audit, DroppedByteFromLinkLedgerFires) {
  Simulator sim{1};
  net::FatTree net{sim, small_fabric()};
  net::Packet p;
  p.size_bytes = core::Bytes{1000};
  p.src = net::HostId{0};
  p.dst = net::HostId{1};
  net.host(net::HostId{0}).nic().enqueue(p);
  sim.run();

  // Lose one delivered byte from the ledger of the egress port that served
  // host 1, then drive the simulation back to quiesce: the automatic
  // conservation check must now find serialized != dropped + delivered.
  net.leaf(net::LeafId{0}).host_port(1).audit_tamper_delivered_bytes(-1);
  const audit::ScopedHandler guard{&throw_violation};
  net.host(net::HostId{0}).nic().enqueue(p);
  try {
    sim.run();
    FAIL() << "byte-conservation violation did not fire at quiesce";
  } catch (const audit::ViolationError& e) {
    EXPECT_EQ(e.violation().invariant, "link-conservation");
    EXPECT_NE(e.violation().entity.find("leaf0"), std::string::npos) << e.what();
  }
}

TEST(Audit, EventScheduledIntoThePastFires) {
  Simulator sim{1};
  bool past_event_ran = false;
  sim.schedule_at(Time::nanoseconds(100), [&] {
    // Now at t=100ns; scheduling behind the clock must trip monotonicity.
    sim.schedule_at(Time::nanoseconds(50), [&] { past_event_ran = true; });
  });
  const audit::ScopedHandler guard{&throw_violation};
  try {
    sim.run();
    FAIL() << "event-monotonicity violation did not fire";
  } catch (const audit::ViolationError& e) {
    EXPECT_EQ(e.violation().invariant, "event-monotonicity");
    EXPECT_EQ(e.violation().sim_time_ps, Time::nanoseconds(100).ps());
  }
  EXPECT_FALSE(past_event_ran);
}

TEST(Audit, StuckPfcPauseFires) {
  // Wedge a host-facing egress port, then flood its leaf until the ingress
  // class crosses XOFF: the switch pauses the sender and — since the
  // wedged port never drains — can never resume it. The watchdog must
  // flag the pause once it has been held past kPfcStuckPauseTimeout.
  net::FatTreeConfig cfg = small_fabric();
  cfg.pfc.xoff_bytes = core::Bytes{4096};
  cfg.pfc.xon_bytes = core::Bytes{2048};
  Simulator sim{1};
  net::FatTree net{sim, cfg};
  net.leaf(net::LeafId{0}).host_port(1).set_paused(net::Priority::kCollective, true);
  for (int i = 0; i < 8; ++i) {
    net::Packet p;
    p.size_bytes = core::Bytes{1000};
    p.src = net::HostId{0};
    p.dst = net::HostId{1};
    net.host(net::HostId{0}).nic().enqueue(p);
  }
  const audit::ScopedHandler guard{&throw_violation};
  try {
    sim.run();
    FAIL() << "pfc-stuck-pause violation did not fire";
  } catch (const audit::ViolationError& e) {
    EXPECT_EQ(e.violation().invariant, "pfc-stuck-pause");
    EXPECT_NE(e.violation().entity.find("leaf0"), std::string::npos) << e.what();
    EXPECT_GE(e.violation().sim_time_ps, net::kPfcStuckPauseTimeout.ps());
  }
}

TEST(Audit, DoubleDeliveredMessageFires) {
  Simulator sim{1};
  net::FatTree net{sim, small_fabric()};
  transport::TransportLayer transports{sim, net};
  transport::MessageSpec spec;
  spec.dst = net::HostId{1};
  spec.bytes = core::Bytes{64 * 1024};
  spec.flow_id = net::flowid::make_collective(net::IterIndex{0});
  const std::uint64_t msg_id = transports.at(net::HostId{0}).send_message(spec);
  sim.run();

  // Re-fire the completion handlers of the already-delivered message, as a
  // buggy retransmission path would: exactly-once must catch delivery #2.
  const audit::ScopedHandler guard{&throw_violation};
  try {
    transports.at(net::HostId{1}).audit_redeliver(net::HostId{0}, msg_id);
    FAIL() << "message-exactly-once violation did not fire";
  } catch (const audit::ViolationError& e) {
    EXPECT_EQ(e.violation().invariant, "message-exactly-once");
    EXPECT_EQ(e.violation().iteration, msg_id);
    EXPECT_NE(e.violation().entity.find("host1"), std::string::npos) << e.what();
  }
}

TEST(Audit, PhantomMonitoredBytesFireReconciliation) {
  Simulator sim{1};
  net::FatTree net{sim, small_fabric()};
  fp::FlowPulseSystem system{net, fp::SystemConfig{}};

  // The monitor claims bytes the fabric never delivered: feed a tagged
  // packet straight into the leaf-0 monitor, bypassing the switch.
  system.monitor(net::LeafId{0}).record(net::UplinkIndex{0},
                                        tagged_packet(1000, /*iteration=*/0));

  const audit::ScopedHandler guard{&throw_violation};
  try {
    system.flush();
    FAIL() << "monitor-reconciliation violation did not fire";
  } catch (const audit::ViolationError& e) {
    EXPECT_EQ(e.violation().invariant, "monitor-reconciliation");
    EXPECT_EQ(e.violation().entity, "leaf0.up0");
  }
}

TEST(Audit, EndToEndScenarioRunsClean) {
  // Full stack under every audit at once — fabric conservation, transport
  // exactly-once, PFC liveness, monitor reconciliation. No handler is
  // installed, so any violation aborts the test binary.
  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{4, 2, 2, 1};
  cfg.collective_bytes = core::Bytes{1u << 20};
  cfg.iterations = 3;
  exp::Scenario scenario{cfg};
  const exp::ScenarioResult r = scenario.run();
  EXPECT_EQ(r.iterations_completed, 3u);
  EXPECT_TRUE(r.data_valid);
}

#else  // !FP_AUDIT_ENABLED

TEST(Audit, DisabledInThisBuild) {
  GTEST_SKIP() << "configure with -DFLOWPULSE_AUDIT=ON to compile the "
                  "runtime invariant auditor (tests/run_sanitized.sh audit)";
}

#endif

}  // namespace
}  // namespace flowpulse
