#!/usr/bin/env bash
# End-to-end smoke for the flowpulsed deployment path, as CI runs it:
#
#   1. simulate a recorded-fault scenario and dump its counter stream in
#      wire format (flowpulse_cli --dump-counters);
#   2. start flowpulsed on an ephemeral port, replay the stream through
#      flowpulse-bench, and assert the daemon reproduces the in-simulator
#      verdict (flagged iteration + localized link) before shutting the
#      daemon down cleanly over the protocol;
#   3. start TWO shard daemons, route the same stream with flowpulse-merge,
#      and assert the merged verdict names the same link.
#
# Usage: tests/daemon_smoke.sh [build-dir]      (default: <repo>/build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
WORK="$(mktemp -d)"
DAEMON_PIDS=()
cleanup() {
  for pid in "${DAEMON_PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

CLI="$BUILD/examples/flowpulse_cli"
DAEMON="$BUILD/src/daemon/flowpulsed"
BENCH="$BUILD/tools/flowpulse-bench"
MERGE="$BUILD/tools/flowpulse-merge"
for bin in "$CLI" "$DAEMON" "$BENCH" "$MERGE"; do
  [ -x "$bin" ] || { echo "daemon_smoke: missing binary $bin (build first)" >&2; exit 1; }
done

# The known fault: leaf 12, uplink 5, 5% drop, present from iteration 0.
FAULT_LEAF=12 FAULT_UPLINK=5
"$CLI" --leaves=32 --spines=16 --bytes=48000000 --iters=4 \
       --fault-leaf=$FAULT_LEAF --fault-spine=$FAULT_UPLINK --drop=0.05 \
       --detector=streaming --dump-counters="$WORK/fault.fpstream" >/dev/null
[ -s "$WORK/fault.fpstream" ] || { echo "daemon_smoke: empty counter dump" >&2; exit 1; }

wait_port_file() {  # path
  for _ in $(seq 1 100); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  echo "daemon_smoke: daemon never wrote $1" >&2
  return 1
}

echo "== single daemon: replay + verdict + clean shutdown =="
"$DAEMON" --port=0 --port-file="$WORK/fp.port" --leaves=32 --spines=16 &
PID=$!
DAEMON_PIDS+=("$PID")
wait_port_file "$WORK/fp.port"
"$BENCH" --port-file="$WORK/fp.port" --stream="$WORK/fault.fpstream" \
         --connections=4 --pipeline=32 \
         --expect-link=$FAULT_LEAF:$FAULT_UPLINK --expect-iter=0 --shutdown
wait "$PID"   # SHUTDOWN must exit the event loop with status 0

echo "== two shards: route, merge, same link =="
"$DAEMON" --port=0 --port-file="$WORK/s0.port" --leaves=32 --spines=16 \
          --shard-index=0 --shard-count=2 &
PID0=$!
"$DAEMON" --port=0 --port-file="$WORK/s1.port" --leaves=32 --spines=16 \
          --shard-index=1 --shard-count=2 &
PID1=$!
DAEMON_PIDS+=("$PID0" "$PID1")
wait_port_file "$WORK/s0.port"
wait_port_file "$WORK/s1.port"
"$MERGE" --stream="$WORK/fault.fpstream" \
         --port-files="$WORK/s0.port,$WORK/s1.port" \
         --expect-link=$FAULT_LEAF:$FAULT_UPLINK --expect-iter=0 --shutdown
wait "$PID0"
wait "$PID1"

echo "daemon_smoke: OK"
