// §7 extension: dynamic demand matrices (AlltoAll whose per-pair bytes
// change every iteration) monitored via per-iteration prediction recompute.
#include <gtest/gtest.h>

#include <algorithm>

#include "collective/runner.h"
#include "exp/scenario.h"
#include "flowpulse/dynamic_model.h"

namespace flowpulse::fp {
namespace {

struct DynamicRig {
  explicit DynamicRig(std::uint64_t seed, std::uint32_t iterations,
                      std::vector<std::pair<net::LeafId, net::UplinkIndex>> preexisting = {},
                      std::vector<exp::NewFault> faults = {}) {
    exp::ScenarioConfig cfg;
    cfg.fabric.shape = net::TopologyInfo{4, 2, 1, 1};
    cfg.collective = collective::CollectiveKind::kAllToAll;
    cfg.collective_bytes = core::Bytes{12ull << 20};  // placeholder; generator overrides
    cfg.iterations = 0;                  // we drive our own runner
    cfg.flowpulse.model = ModelKind::kDynamic;
    cfg.preexisting = std::move(preexisting);
    cfg.new_faults = std::move(faults);
    cfg.seed = seed;
    // Random unequal demands break the rotation staggering, so transient
    // incast queues form; without congestion control (future work, as in
    // the paper §7) a generous RTO floor avoids duplicate storms that
    // would pollute the measured volumes.
    // (500 µs covers even the degraded case where a known disconnect pins
    // all of a leaf's traffic onto one spine and its queue drains slowly.)
    cfg.transport.rto = sim::Time::microseconds(500);
    scenario = std::make_unique<exp::Scenario>(cfg);

    collective::CollectiveConfig cc;
    cc.hosts = {net::HostId{0}, net::HostId{1}, net::HostId{2}, net::HostId{3}};
    cc.iterations = iterations;
    // Per-iteration random demand: 1-3 MiB per ordered pair.
    cc.schedule_generator = [](std::uint32_t, sim::Rng& rng) {
      return collective::all_to_all_random(4, core::Bytes{1ull << 20}, core::Bytes{3ull << 20}, rng);
    };
    runner = std::make_unique<collective::CollectiveRunner>(
        scenario->simulator(), scenario->transports(), std::move(cc));

    tracker = std::make_unique<DynamicDemandTracker>(
        scenario->fabric().info(), scenario->fabric().routing(), 4096, net::kHeaderBytes);
    tracker->attach(*runner, scenario->flowpulse());
  }

  void run() {
    runner->start();
    scenario->simulator().run();
    scenario->flowpulse().flush();
  }

  std::unique_ptr<exp::Scenario> scenario;
  std::unique_ptr<collective::CollectiveRunner> runner;
  std::unique_ptr<DynamicDemandTracker> tracker;
};

TEST(DynamicModel, TracksEveryIteration) {
  DynamicRig rig{7, 3};
  rig.run();
  EXPECT_TRUE(rig.runner->finished());
  EXPECT_EQ(rig.tracker->tracked_iterations(), 3u);
  EXPECT_NE(rig.tracker->prediction_for(net::IterIndex{0}), nullptr);
  EXPECT_EQ(rig.tracker->prediction_for(net::IterIndex{99}), nullptr);
}

TEST(DynamicModel, CleanRunStaysUnderThreshold) {
  DynamicRig rig{11, 3};
  rig.run();
  const auto& results = rig.scenario->flowpulse().results();
  ASSERT_FALSE(results.empty());
  for (const DetectionResult& r : results) {
    EXPECT_LT(r.max_rel_dev, 0.01)
        << "iteration " << r.iteration << " leaf " << r.leaf;
  }
}

TEST(DynamicModel, KnownFaultPlusSelfCongestionSkewsAnalyticalSplit) {
  // Documented limitation (DESIGN.md / EXPERIMENTS.md): with a known
  // disconnect, ALL traffic toward the affected leaf pins to the surviving
  // spines, their queues grade up, and congestion-adaptive spraying
  // compensates by steering OTHER destinations' packets away — equalizing
  // total port load but breaking the analytical model's per-destination
  // even-split assumption. The paper's ring workload never self-congests,
  // so its evaluation does not hit this; a self-congesting AlltoAll does.
  // The per-sender totals remain exact (symmetry holds per sender), only
  // the split across surviving spines shifts.
  DynamicRig rig{13, 3, {{net::LeafId{2}, net::UplinkIndex{1}}}};
  rig.run();
  double worst = 0.0;
  for (const DetectionResult& r : rig.scenario->flowpulse().results()) {
    worst = std::max(worst, r.max_rel_dev);
  }
  // The skew is real and measurable, yet bounded well below a hard fault's
  // signature (a black hole would deviate ~100%).
  EXPECT_GT(worst, 0.01);
  EXPECT_LT(worst, 0.30);
}

TEST(DynamicModel, DetectsSilentFaultUnderChangingDemand) {
  exp::NewFault f;
  f.leaf = net::LeafId{1};
  f.uplink = net::UplinkIndex{0};
  f.where = exp::NewFault::Where::kDownlink;
  f.spec = net::FaultSpec::random_drop(0.05);
  DynamicRig rig{17, 3, {}, {f}};
  rig.run();
  bool flagged = false;
  for (const DetectionResult& r : rig.scenario->flowpulse().results()) {
    for (const PortAlert& a : r.alerts) {
      if (r.leaf == net::LeafId{1} && a.uplink == net::UplinkIndex{0} &&
          a.observed < a.predicted) flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

}  // namespace
}  // namespace flowpulse::fp
