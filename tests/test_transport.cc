// Transport tests: reliable delivery, reordering tolerance, RTO recovery
// under injected loss, windowing, and multi-message behavior.
#include <gtest/gtest.h>

#include <vector>

#include "core/strong_id.h"
#include "net/fat_tree.h"
#include "sim/simulator.h"
#include "transport/transport_layer.h"

namespace flowpulse::transport {
namespace {

using net::FatTree;
using net::FatTreeConfig;
using net::TopologyInfo;
using sim::Simulator;
using sim::Time;

struct Rig {
  explicit Rig(FatTreeConfig cfg = {}, TransportConfig tcfg = {}, std::uint64_t seed = 1)
      : sim{seed}, net{sim, cfg}, transports{sim, net, tcfg} {}
  Simulator sim;
  FatTree net;
  TransportLayer transports;
};

FatTreeConfig tiny() {
  FatTreeConfig cfg;
  cfg.shape = TopologyInfo{4, 2, 1, 1};
  return cfg;
}

TEST(Transport, DeliversSingleSegmentMessage) {
  Rig rig{tiny()};
  std::vector<RecvInfo> got;
  rig.transports.at(net::HostId{3}).add_recv_handler([&](const RecvInfo& i) { got.push_back(i); });
  bool acked = false;
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{3}, core::Bytes{1000}, 0x1, net::Priority::kCollective},
                                    [&](std::uint64_t) { acked = true; });
  rig.sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].src, net::HostId{0});
  EXPECT_EQ(got[0].bytes, core::Bytes{1000});
  EXPECT_EQ(got[0].flow_id, 0x1u);
  EXPECT_TRUE(acked);
}

TEST(Transport, DeliversMultiSegmentMessage) {
  Rig rig{tiny()};
  std::vector<RecvInfo> got;
  rig.transports.at(net::HostId{1}).add_recv_handler([&](const RecvInfo& i) { got.push_back(i); });
  const std::uint64_t bytes = 1 << 20;  // 256 segments at 4 KiB
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{1}, core::Bytes{bytes}, 0x2, net::Priority::kCollective});
  rig.sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].bytes, core::Bytes{bytes});
  const TransportStats& st = rig.transports.at(net::HostId{0}).stats();
  EXPECT_EQ(st.data_packets_sent, 256u);
  EXPECT_EQ(st.retx_packets_sent, 0u);  // lossless fabric: no RTO fires
}

TEST(Transport, SegmentationRoundsUp) {
  Rig rig{tiny()};
  int done = 0;
  rig.transports.at(net::HostId{1}).add_recv_handler([&](const RecvInfo&) { ++done; });
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{1}, core::Bytes{4097}, 0x3, net::Priority::kCollective});
  rig.sim.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(rig.transports.at(net::HostId{0}).stats().data_packets_sent, 2u);
}

TEST(Transport, RecoversFromRandomDrops) {
  Rig rig{tiny()};
  // 20% silent loss on one uplink: spraying hits it half the time.
  rig.net.set_link_fault(net::LeafId{0}, net::UplinkIndex{0}, net::FaultSpec::random_drop(0.2));
  int done = 0;
  rig.transports.at(net::HostId{2}).add_recv_handler([&](const RecvInfo&) { ++done; });
  bool acked = false;
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{2}, core::Bytes{512 * 1024}, 0x4, net::Priority::kCollective},
                                    [&](std::uint64_t) { acked = true; });
  rig.sim.run();
  EXPECT_EQ(done, 1);
  EXPECT_TRUE(acked);
  EXPECT_GT(rig.transports.at(net::HostId{0}).stats().retx_packets_sent, 0u);
}

TEST(Transport, RecoversFromBlackHoleOnOnePath) {
  Rig rig{tiny()};
  rig.net.set_link_fault(net::LeafId{0}, net::UplinkIndex{1}, net::FaultSpec::black_hole());
  int done = 0;
  rig.transports.at(net::HostId{2}).add_recv_handler([&](const RecvInfo&) { ++done; });
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{2}, core::Bytes{256 * 1024}, 0x5, net::Priority::kCollective});
  rig.sim.run();
  EXPECT_EQ(done, 1);  // every segment eventually re-sprayed onto spine 0
}

TEST(Transport, WindowBoundsOutstandingSegments) {
  TransportConfig tcfg;
  tcfg.window = 4;
  Rig rig{tiny(), tcfg};
  int done = 0;
  rig.transports.at(net::HostId{1}).add_recv_handler([&](const RecvInfo&) { ++done; });
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{1}, core::Bytes{64 * 1024}, 0x6, net::Priority::kCollective});
  // Before any ACK returns, at most `window` segments may be queued at the
  // NIC (the first is already serializing).
  EXPECT_LE(rig.net.host(net::HostId{0}).nic().queued_packets(), 4u);
  rig.sim.run();
  EXPECT_EQ(done, 1);
}

TEST(Transport, ManyConcurrentMessagesBetweenManyPairs) {
  Rig rig{tiny()};
  int done = 0;
  for (const net::HostId h : core::ids<net::HostId>(4)) {
    rig.transports.at(h).add_recv_handler([&](const RecvInfo&) { ++done; });
  }
  int expected = 0;
  for (const net::HostId src : core::ids<net::HostId>(4)) {
    for (const net::HostId dst : core::ids<net::HostId>(4)) {
      if (src == dst) continue;
      rig.transports.at(src).send_message(
          MessageSpec{dst, core::Bytes{32 * 1024}, 0x10 + src.v(), net::Priority::kCollective});
      ++expected;
    }
  }
  rig.sim.run();
  EXPECT_EQ(done, expected);
}

TEST(Transport, DuplicateDeliveredOnceDespiteRetransmits) {
  // Force spurious retransmissions with an artificially small fixed RTO;
  // the receiver must still deliver the message exactly once.
  TransportConfig tcfg;
  tcfg.rto = Time::nanoseconds(500);  // below fabric RTT → spurious retx
  tcfg.adaptive_rto = false;
  Rig rig{tiny(), tcfg};
  int done = 0;
  rig.transports.at(net::HostId{2}).add_recv_handler([&](const RecvInfo&) { ++done; });
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{2}, core::Bytes{128 * 1024}, 0x7, net::Priority::kCollective});
  rig.sim.run();
  EXPECT_EQ(done, 1);
  EXPECT_GT(rig.transports.at(net::HostId{0}).stats().retx_packets_sent, 0u);
  EXPECT_GT(rig.transports.at(net::HostId{2}).stats().duplicate_data_received, 0u);
}

TEST(Transport, StatsConsistent) {
  Rig rig{tiny()};
  rig.transports.at(net::HostId{1}).add_recv_handler([](const RecvInfo&) {});
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{1}, core::Bytes{100000}, 0x8, net::Priority::kCollective});
  rig.sim.run();
  const TransportStats total = rig.transports.total_stats();
  EXPECT_EQ(total.messages_sent, 1u);
  EXPECT_EQ(total.messages_received, 1u);
  // Receiver acked every arriving data packet.
  EXPECT_EQ(total.acks_sent, total.data_packets_sent + total.retx_packets_sent -
                                 0u /* lossless: all arrive */);
}

TEST(Transport, CompletionUnderHeavyLossOnAllPaths) {
  // Both uplinks of the source leaf drop 30%: progress is slow but certain.
  Rig rig{tiny()};
  rig.net.set_uplink_fault(net::LeafId{0}, net::UplinkIndex{0}, net::FaultSpec::random_drop(0.3));
  rig.net.set_uplink_fault(net::LeafId{0}, net::UplinkIndex{1}, net::FaultSpec::random_drop(0.3));
  int done = 0;
  rig.transports.at(net::HostId{3}).add_recv_handler([&](const RecvInfo&) { ++done; });
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{3}, core::Bytes{64 * 1024}, 0x9, net::Priority::kCollective});
  rig.sim.run();
  EXPECT_EQ(done, 1);
}

TEST(Transport, AckLossTriggersRetransmitButNoDoubleDelivery) {
  // Drops on the *reverse* direction (downlink toward the sender's leaf)
  // kill ACKs; sender retransmits, receiver dedups.
  Rig rig{tiny()};
  rig.net.set_downlink_fault(net::LeafId{0}, net::UplinkIndex{0}, net::FaultSpec::random_drop(0.5));
  rig.net.set_downlink_fault(net::LeafId{0}, net::UplinkIndex{1}, net::FaultSpec::random_drop(0.5));
  int done = 0;
  rig.transports.at(net::HostId{1}).add_recv_handler([&](const RecvInfo&) { ++done; });
  bool acked = false;
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{1}, core::Bytes{64 * 1024}, 0xa, net::Priority::kCollective},
                                    [&](std::uint64_t) { acked = true; });
  rig.sim.run();
  EXPECT_EQ(done, 1);
  EXPECT_TRUE(acked);
  EXPECT_GT(rig.transports.at(net::HostId{1}).stats().duplicate_data_received, 0u);
}

TEST(Transport, SackBitmapCoversLostAcks) {
  // Drop 30% of everything on the reverse path (ACKs included). With
  // per-packet ACKs alone, each lost ACK would force a duplicate data
  // retransmission; the SACK bitmap carried by later ACKs covers the holes,
  // so duplicates stay far below the ACK loss count.
  Rig rig{tiny()};
  rig.net.set_downlink_fault(net::LeafId{0}, net::UplinkIndex{0}, net::FaultSpec::random_drop(0.3));
  rig.net.set_downlink_fault(net::LeafId{0}, net::UplinkIndex{1}, net::FaultSpec::random_drop(0.3));
  int done = 0;
  rig.transports.at(net::HostId{1}).add_recv_handler([&](const RecvInfo&) { ++done; });
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{1}, core::Bytes{1 << 20}, 0xc, net::Priority::kCollective});
  rig.sim.run();
  EXPECT_EQ(done, 1);
  const auto& stats = rig.transports.at(net::HostId{1}).stats();
  // 256 data segments, ~30% of 256 ACKs lost ≈ 77; without SACK we would
  // see roughly that many duplicates. With SACK only trailing-edge losses
  // (the last segments of the window, with no later ACK to cover them)
  // cause retransmits.
  EXPECT_LT(stats.duplicate_data_received, 20u);
}

TEST(Transport, RttEstimatorConvergesAndBoundsRto) {
  Rig rig{tiny()};
  int done = 0;
  rig.transports.at(net::HostId{3}).add_recv_handler([&](const RecvInfo&) { ++done; });
  EXPECT_EQ(rig.transports.at(net::HostId{0}).srtt(), Time::zero());
  // Before any sample: conservative initial RTO.
  EXPECT_EQ(rig.transports.at(net::HostId{0}).effective_rto(),
            rig.transports.at(net::HostId{0}).config().rto * rig.transports.at(net::HostId{0}).config().initial_rto_multiplier);
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{3}, core::Bytes{256 * 1024}, 0xd, net::Priority::kCollective});
  rig.sim.run();
  EXPECT_EQ(done, 1);
  const Time srtt = rig.transports.at(net::HostId{0}).srtt();
  // Fabric RTT here is a few microseconds; the estimate must be sane.
  EXPECT_GT(srtt, Time::nanoseconds(500));
  EXPECT_LT(srtt, Time::microseconds(50));
  // Effective RTO respects the configured floor.
  EXPECT_GE(rig.transports.at(net::HostId{0}).effective_rto(), rig.transports.at(net::HostId{0}).config().rto);
}

TEST(Transport, FixedRtoModeIgnoresRttSamples) {
  TransportConfig tcfg;
  tcfg.adaptive_rto = false;
  tcfg.rto = Time::microseconds(7);
  Rig rig{tiny(), tcfg};
  rig.transports.at(net::HostId{1}).add_recv_handler([](const RecvInfo&) {});
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{1}, core::Bytes{64 * 1024}, 0xe, net::Priority::kCollective});
  rig.sim.run();
  EXPECT_EQ(rig.transports.at(net::HostId{0}).effective_rto(), Time::microseconds(7));
}

TEST(Transport, GilbertElliottBurstLossRecovered) {
  Rig rig{tiny()};
  rig.net.set_link_fault(net::LeafId{0}, net::UplinkIndex{0}, net::FaultSpec::gilbert_elliott(0.10, 30.0));
  int done = 0;
  rig.transports.at(net::HostId{2}).add_recv_handler([&](const RecvInfo&) { ++done; });
  rig.transports.at(net::HostId{0}).send_message(MessageSpec{net::HostId{2}, core::Bytes{512 * 1024}, 0xf, net::Priority::kCollective});
  rig.sim.run();
  EXPECT_EQ(done, 1);
  EXPECT_GT(rig.transports.at(net::HostId{0}).stats().retx_packets_sent, 0u);
}

class TransportDropRateTest : public ::testing::TestWithParam<double> {};

TEST_P(TransportDropRateTest, AlwaysCompletes) {
  const double rate = GetParam();
  Rig rig{tiny(), {}, static_cast<std::uint64_t>(rate * 1000) + 3};
  rig.net.set_link_fault(net::LeafId{1}, net::UplinkIndex{0}, net::FaultSpec::random_drop(rate));
  int done = 0;
  rig.transports.at(net::HostId{0}).add_recv_handler([&](const RecvInfo&) { ++done; });
  rig.transports.at(net::HostId{1}).send_message(MessageSpec{net::HostId{0}, core::Bytes{128 * 1024}, 0xb, net::Priority::kCollective});
  rig.sim.run();
  EXPECT_EQ(done, 1) << "drop rate " << rate;
}

INSTANTIATE_TEST_SUITE_P(DropSweep, TransportDropRateTest,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.9));

}  // namespace
}  // namespace flowpulse::transport
