#pragma once

// Strict RFC 8259 JSON validity checker for tests. Hand-rolled recursive
// descent over the full grammar — objects, arrays, strings with escape
// sequences, numbers, literals — so serializer tests can assert "a real
// parser accepts this" instead of merely counting braces (which hostile
// string content like `"}{"` defeats).

#include <cctype>
#include <cstddef>
#include <string_view>

namespace flowpulse::testjson {

class Parser {
 public:
  explicit Parser(std::string_view s) : s_{s} {}

  /// Whole input is exactly one JSON value (with surrounding whitespace).
  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  [[nodiscard]] bool done() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }
  bool consume(char c) {
    if (done() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view kw) {
    if (s_.substr(pos_, kw.size()) != kw) return false;
    pos_ += kw.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!done()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control characters are invalid
      if (c == '\\') {
        ++pos_;
        if (done()) return false;
        const char e = s_[pos_];
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' || e == 'n' ||
            e == 'r' || e == 't') {
          ++pos_;
        } else if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (done() || std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else {
          return false;
        }
      } else {
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
    while (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    return true;
  }

  bool number() {
    consume('-');
    if (done()) return false;
    if (peek() == '0') {
      ++pos_;  // leading zero may not be followed by more digits
      if (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0) return false;
    } else if (!digits()) {
      return false;
    }
    if (!done() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool value() {
    if (done()) return false;
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

[[nodiscard]] inline bool valid_json(std::string_view s) { return Parser{s}.valid(); }

}  // namespace flowpulse::testjson
