// End-to-end integration: full fabric + transport + collective + FlowPulse.
// These are the paper's claims as executable checks (on reduced scale so
// the suite stays fast; the bench binaries run paper scale).
#include <gtest/gtest.h>

#include "baseline/spatial_symmetry.h"
#include "exp/metrics.h"
#include "exp/scenario.h"
#include "exp/trials.h"

namespace flowpulse::exp {
namespace {

using collective::CollectiveKind;

/// 8 leaves × 4 spines keeps integration runs fast while preserving the
/// paper's structure (one host per leaf, ring over all hosts).
ScenarioConfig small_scenario(std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{8, 4, 1, 1};
  cfg.collective = CollectiveKind::kRingReduceScatter;
  cfg.collective_bytes = core::Bytes{8ull << 20};
  cfg.iterations = 4;
  cfg.seed = seed;
  return cfg;
}

NewFault downlink_drop(net::LeafId leaf, net::UplinkIndex u, double rate) {
  NewFault f;
  f.leaf = leaf;
  f.uplink = u;
  f.where = NewFault::Where::kDownlink;
  f.spec = net::FaultSpec::random_drop(rate);
  return f;
}

TEST(Scenario, CleanRunHasNoAlerts) {
  Scenario s{small_scenario()};
  const ScenarioResult r = s.run();
  EXPECT_EQ(r.iterations_completed, 4u);
  for (const double dev : r.per_iter_max_dev) {
    EXPECT_LT(dev, 0.01) << "temporal symmetry must hold within the 1% threshold";
  }
  EXPECT_TRUE(s.flowpulse().faulty_results().empty());
}

TEST(Scenario, CleanRunIsDeterministicGivenSeed) {
  Scenario a{small_scenario(42)};
  Scenario b{small_scenario(42)};
  const ScenarioResult ra = a.run();
  const ScenarioResult rb = b.run();
  ASSERT_EQ(ra.per_iter_max_dev.size(), rb.per_iter_max_dev.size());
  for (std::size_t i = 0; i < ra.per_iter_max_dev.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.per_iter_max_dev[i], rb.per_iter_max_dev[i]);
  }
  EXPECT_EQ(ra.events, rb.events);
  EXPECT_EQ(ra.transport_stats.retx_packets_sent, rb.transport_stats.retx_packets_sent);
}

TEST(Scenario, DetectsSilentDownlinkDrop) {
  ScenarioConfig cfg = small_scenario();
  cfg.new_faults.push_back(downlink_drop(net::LeafId{3}, net::UplinkIndex{2}, 0.05));
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  ASSERT_EQ(r.iterations_completed, 4u);
  // Every iteration runs under the fault and must be flagged.
  for (const double dev : r.per_iter_max_dev) EXPECT_GT(dev, 0.01);
  // The alert fires at the right leaf and port.
  bool found = false;
  for (const fp::DetectionResult& d : s.flowpulse().faulty_results()) {
    for (const fp::PortAlert& a : d.alerts) {
      if (d.leaf == net::LeafId{3} && a.uplink == net::UplinkIndex{2} && a.observed < a.predicted) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Scenario, DetectsSilentUplinkDropAtRemoteLeaf) {
  // Ring traffic gives each port a single sender, so local and remote link
  // faults are indistinguishable there (the paper's Fig. 4 needs two
  // senders through the same spine). AlltoAll provides them: a fault on
  // leaf 1's uplink to spine 0 must be blamed on the REMOTE leaf-1 link by
  // every other leaf, which still receives the other senders via spine 0.
  ScenarioConfig cfg = small_scenario();
  cfg.fabric.shape = net::TopologyInfo{4, 2, 1, 1};
  cfg.collective = collective::CollectiveKind::kAllToAll;
  cfg.collective_bytes = core::Bytes{24ull << 20};  // 2 MiB per ordered pair
  cfg.iterations = 2;
  NewFault f = downlink_drop(net::LeafId{1}, net::UplinkIndex{0}, 0.08);
  f.where = NewFault::Where::kUplink;
  cfg.new_faults.push_back(f);
  Scenario s{cfg};
  s.run();
  bool remote_localized = false;
  for (const fp::DetectionResult& d : s.flowpulse().faulty_results()) {
    for (const fp::PortAlert& a : d.alerts) {
      if (d.leaf != net::LeafId{1} && a.uplink == net::UplinkIndex{0} &&
          a.localization.verdict == fp::Localization::Verdict::kRemoteLinks &&
          a.localization.suspect_senders == std::vector<net::LeafId>{net::LeafId{1}}) {
        remote_localized = true;
      }
    }
  }
  EXPECT_TRUE(remote_localized);
}

TEST(Scenario, DetectsBlackHole) {
  ScenarioConfig cfg = small_scenario();
  NewFault f;
  f.leaf = net::LeafId{5};
  f.uplink = net::UplinkIndex{1};
  f.where = NewFault::Where::kBoth;
  f.spec = net::FaultSpec::black_hole();
  cfg.new_faults.push_back(f);
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  EXPECT_EQ(r.iterations_completed, 4u);  // transport routes around it
  for (const double dev : r.per_iter_max_dev) EXPECT_GT(dev, 0.5);
}

TEST(Scenario, LocalizesLocalDownlinkFault) {
  ScenarioConfig cfg = small_scenario();
  cfg.new_faults.push_back(downlink_drop(net::LeafId{6}, net::UplinkIndex{0}, 0.05));
  Scenario s{cfg};
  s.run();
  bool local = false;
  for (const fp::DetectionResult& d : s.flowpulse().faulty_results()) {
    for (const fp::PortAlert& a : d.alerts) {
      if (d.leaf == net::LeafId{6} && a.uplink == net::UplinkIndex{0} &&
          a.localization.verdict == fp::Localization::Verdict::kLocalLink) {
        local = true;
      }
    }
  }
  EXPECT_TRUE(local);
}

TEST(Scenario, PreexistingFaultsDoNotFalseAlarm) {
  // The paper's core argument: the model accounts for known faults, so
  // pre-existing disconnected links cause no alerts.
  ScenarioConfig cfg = small_scenario();
  cfg.preexisting = {{net::LeafId{2}, net::UplinkIndex{1}},
                     {net::LeafId{5}, net::UplinkIndex{3}}};
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  EXPECT_EQ(r.iterations_completed, 4u);
  for (const double dev : r.per_iter_max_dev) EXPECT_LT(dev, 0.01);
}

TEST(Scenario, DetectsNewFaultDespitePreexisting) {
  ScenarioConfig cfg = small_scenario();
  cfg.preexisting = {{net::LeafId{2}, net::UplinkIndex{1}}};
  cfg.new_faults.push_back(downlink_drop(net::LeafId{2}, net::UplinkIndex{3}, 0.06));  // same leaf, other port
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  for (const double dev : r.per_iter_max_dev) EXPECT_GT(dev, 0.01);
  bool found = false;
  for (const fp::DetectionResult& d : s.flowpulse().faulty_results()) {
    for (const fp::PortAlert& a : d.alerts) {
      if (d.leaf == net::LeafId{2} && a.uplink == net::UplinkIndex{3}) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Scenario, SpatialSymmetryBaselineFalseAlarmsOnPreexisting) {
  // Same clean-but-degraded network: FlowPulse stays quiet (previous test),
  // while the spatial-symmetry strategy flags every iteration.
  ScenarioConfig cfg = small_scenario();
  cfg.preexisting = {{net::LeafId{2}, net::UplinkIndex{1}}};
  Scenario s{cfg};
  s.run();
  const auto& history = s.flowpulse().monitor(net::LeafId{2}).history();
  ASSERT_FALSE(history.empty());
  for (const fp::IterationRecord& rec : history) {
    EXPECT_TRUE(baseline::spatial_symmetry_check(rec, 0.01).flagged);
  }
}

TEST(Scenario, SimulationModelPredictsAsWellAsAnalytical) {
  ScenarioConfig cfg = small_scenario();
  cfg.flowpulse.model = fp::ModelKind::kSimulation;
  cfg.preexisting = {{net::LeafId{1}, net::UplinkIndex{2}}};
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  for (const double dev : r.per_iter_max_dev) EXPECT_LT(dev, 0.01);
}

TEST(Scenario, SimulationModelDetectsFault) {
  ScenarioConfig cfg = small_scenario();
  cfg.flowpulse.model = fp::ModelKind::kSimulation;
  cfg.new_faults.push_back(downlink_drop(net::LeafId{1}, net::UplinkIndex{1}, 0.05));
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  for (const double dev : r.per_iter_max_dev) EXPECT_GT(dev, 0.01);
}

TEST(Scenario, LearnedModelDetectsMidRunFault) {
  ScenarioConfig cfg = small_scenario();
  cfg.iterations = 8;
  cfg.flowpulse.model = fp::ModelKind::kLearned;
  cfg.flowpulse.learned.learn_iterations = 3;
  // Fault appears after the learning window (iterations are ~120 µs here).
  NewFault f = downlink_drop(net::LeafId{4}, net::UplinkIndex{2}, 0.05);
  f.spec.start = sim::Time::microseconds(600);
  cfg.new_faults.push_back(f);
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  EXPECT_EQ(r.iterations_completed, 8u);
  bool alerted = false;
  for (const auto& lo : r.learned) {
    if (lo.leaf == net::LeafId{4} && lo.outcome.kind == fp::LearnedModel::Outcome::Kind::kAlert) {
      alerted = true;
    }
  }
  EXPECT_TRUE(alerted);
}

TEST(Scenario, LearnedModelRebaselinesAfterTransientFault) {
  // Fig. 3 end-to-end: fault poisons the learning window, heals, model
  // re-baselines instead of alerting forever.
  ScenarioConfig cfg = small_scenario();
  cfg.iterations = 10;
  cfg.flowpulse.model = fp::ModelKind::kLearned;
  cfg.flowpulse.learned.learn_iterations = 2;
  NewFault f = downlink_drop(net::LeafId{4}, net::UplinkIndex{2}, 0.08);
  f.spec.end = sim::Time::microseconds(300);  // heals after ~2 iterations
  cfg.new_faults.push_back(f);
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  bool rebaselined = false;
  for (const auto& lo : r.learned) {
    if (lo.leaf == net::LeafId{4} &&
        lo.outcome.kind == fp::LearnedModel::Outcome::Kind::kRebaseline) {
      rebaselined = true;
    }
  }
  EXPECT_TRUE(rebaselined);
  // After re-baselining, the healthy iterations must be accepted again.
  bool ok_after = false;
  std::uint32_t rebaseline_iter = 0;
  for (const auto& lo : r.learned) {
    if (lo.leaf == net::LeafId{4} && lo.outcome.kind == fp::LearnedModel::Outcome::Kind::kRebaseline) {
      rebaseline_iter = lo.iteration.v();
    }
  }
  for (const auto& lo : r.learned) {
    if (lo.leaf == net::LeafId{4} && lo.iteration.v() > rebaseline_iter + 2 &&
        lo.outcome.kind == fp::LearnedModel::Outcome::Kind::kOk) {
      ok_after = true;
    }
  }
  EXPECT_TRUE(ok_after);
}

TEST(Scenario, FullRingAllReduceAlsoMonitorable) {
  ScenarioConfig cfg = small_scenario();
  cfg.collective = CollectiveKind::kRingAllReduce;
  cfg.new_faults.push_back(downlink_drop(net::LeafId{0}, net::UplinkIndex{0}, 0.04));
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  EXPECT_EQ(r.iterations_completed, 4u);
  for (const double dev : r.per_iter_max_dev) EXPECT_GT(dev, 0.01);
}

TEST(Scenario, AllToAllMonitorable) {
  ScenarioConfig cfg = small_scenario();
  cfg.collective = CollectiveKind::kAllToAll;
  // Large enough that per-(sender, port) spray quantization (a couple of
  // packets out of ~770 per port) sits well under the 1% threshold — the
  // paper's Fig. 5(c) point that small collectives are noisy, in reverse.
  cfg.collective_bytes = core::Bytes{96ull << 20};
  cfg.iterations = 3;
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  EXPECT_EQ(r.iterations_completed, 3u);
  for (const double dev : r.per_iter_max_dev) EXPECT_LT(dev, 0.01);
}

TEST(Scenario, HierarchicalRingMonitorableWithManyHostsPerLeaf) {
  // 8 leaves x 4 hosts: the locality-optimized collective keeps exactly one
  // non-local sender/receiver per leaf (the leaders' ring), so temporal
  // symmetry and the analytical prediction hold even with 4 hosts per leaf.
  ScenarioConfig cfg = small_scenario();
  cfg.fabric.shape = net::TopologyInfo{8, 4, 4, 1};
  cfg.collective = CollectiveKind::kHierarchicalRing;
  cfg.collective_bytes = core::Bytes{8ull << 20};
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  EXPECT_EQ(r.iterations_completed, 4u);
  for (const double dev : r.per_iter_max_dev) EXPECT_LT(dev, 0.01);
}

TEST(Scenario, HierarchicalRingDetectsSilentFault) {
  ScenarioConfig cfg = small_scenario();
  cfg.fabric.shape = net::TopologyInfo{8, 4, 4, 1};
  cfg.collective = CollectiveKind::kHierarchicalRing;
  cfg.collective_bytes = core::Bytes{8ull << 20};
  cfg.new_faults.push_back(downlink_drop(net::LeafId{3}, net::UplinkIndex{2}, 0.05));
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  bool found = false;
  for (const fp::DetectionResult& d : s.flowpulse().faulty_results()) {
    for (const fp::PortAlert& a : d.alerts) {
      if (d.leaf == net::LeafId{3} && a.uplink == net::UplinkIndex{2} && a.observed < a.predicted) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Scenario, JitterDoesNotBreakTemporalSymmetry) {
  // §4: with one source/destination per leaf, start jitter must not move
  // the per-port volumes (the spraying happens at the sender's leaf).
  ScenarioConfig cfg = small_scenario();
  cfg.max_jitter = sim::Time::microseconds(20);
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  for (const double dev : r.per_iter_max_dev) EXPECT_LT(dev, 0.01);
}

TEST(Scenario, PrioritizedBackgroundJobPreservesSymmetry) {
  // §5.1: a heavy untagged background job at lower priority must not
  // perturb the measured collective's per-port volumes.
  ScenarioConfig cfg = small_scenario();
  cfg.background.bytes = core::Bytes{4ull << 20};
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  EXPECT_EQ(r.iterations_completed, 4u);
  for (const double dev : r.per_iter_max_dev) EXPECT_LT(dev, 0.01);
}

TEST(Scenario, BackgroundJobDoesNotMaskFaultDetection) {
  ScenarioConfig cfg = small_scenario();
  cfg.background.bytes = core::Bytes{4ull << 20};
  cfg.new_faults.push_back(downlink_drop(net::LeafId{3}, net::UplinkIndex{2}, 0.05));
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  EXPECT_EQ(r.iterations_completed, 4u);
  bool found = false;
  for (const fp::DetectionResult& d : s.flowpulse().faulty_results()) {
    for (const fp::PortAlert& a : d.alerts) {
      if (d.leaf == net::LeafId{3} && a.uplink == net::UplinkIndex{2} && a.observed < a.predicted) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Scenario, GroundTruthWindowsMatchFaultSchedule) {
  ScenarioConfig cfg = small_scenario();
  NewFault f = downlink_drop(net::LeafId{3}, net::UplinkIndex{2}, 0.05);
  f.spec.start = sim::Time::milliseconds(100);  // never active
  cfg.new_faults.push_back(f);
  Scenario s{cfg};
  const ScenarioResult r = s.run();
  for (const std::uint8_t active : r.iter_fault_active) EXPECT_EQ(active, 0);
}

TEST(Metrics, ClassifyCountsCorrectly) {
  std::vector<TrialSamples> trials(1);
  trials[0].dev = {0.002, 0.02, 0.005, 0.03};
  trials[0].truth = {0, 0, 1, 1};
  const Rates r = classify(trials, 0.01);
  EXPECT_EQ(r.tn, 1u);
  EXPECT_EQ(r.fp, 1u);
  EXPECT_EQ(r.fn, 1u);
  EXPECT_EQ(r.tp, 1u);
  EXPECT_DOUBLE_EQ(r.fpr(), 0.5);
  EXPECT_DOUBLE_EQ(r.fnr(), 0.5);
}

TEST(Metrics, RocSweepMonotonicInThreshold) {
  std::vector<TrialSamples> trials(1);
  for (int i = 0; i < 100; ++i) {
    trials[0].dev.push_back(0.001 * i);
    trials[0].truth.push_back(i >= 50);
  }
  const auto points = roc_sweep(trials, {0.01, 0.03, 0.08});
  // Raising the threshold can only reduce positives.
  EXPECT_GE(points[0].rates.fp + points[0].rates.tp,
            points[1].rates.fp + points[1].rates.tp);
  EXPECT_GE(points[1].rates.fp + points[1].rates.tp,
            points[2].rates.fp + points[2].rates.tp);
}

TEST(Metrics, NoiseFloorFromCleanTrials) {
  std::vector<TrialSamples> trials(2);
  trials[0].dev = {0.001, 0.004};
  trials[0].truth = {0, 0};
  trials[1].dev = {0.009, 0.002};
  trials[1].truth = {0, 0};
  EXPECT_DOUBLE_EQ(noise_floor(trials), 0.009);
}

}  // namespace
}  // namespace flowpulse::exp
