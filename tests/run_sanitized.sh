#!/usr/bin/env sh
# Correctness-matrix driver: build and run the full test suite in a side
# build directory under one verification mode.
#
#   $ tests/run_sanitized.sh [mode] [extra ctest args...]
#
# Modes:
#   asan   (default) AddressSanitizer + UBSan in build-asan/. Any leak,
#          overflow, or UB aborts the run.
#   tsan   ThreadSanitizer in build-tsan/. After the full suite, reruns the
#          parallel trial-engine tests with FLOWPULSE_JOBS=8 so the
#          worker-pool merge paths race-check under real contention, then
#          the event-lane tests with FLOWPULSE_LANES=8 + FLOWPULSE_JOBS=8
#          so the cross-lane mailbox handoff and the LaneRunner round
#          barrier race-check with every lane on its own thread.
#   audit  FLOWPULSE_AUDIT=ON + FLOWPULSE_TRACE=ON in build-audit/: the
#          runtime invariant auditor (byte conservation, event
#          monotonicity, PFC liveness, exactly-once delivery, monitor
#          reconciliation) checks every test's simulation from the inside,
#          and the flight-recorder instrumentation is compiled in so the
#          obs tests' end-to-end capture paths run and audit failures dump
#          the recorded event window.
#
# A first argument that is not a known mode is passed to ctest (back-compat
# with the old `tests/run_sanitized.sh -R <regex>` usage, which ran asan).
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

mode="asan"
case "${1-}" in
  asan|tsan|audit) mode="$1"; shift ;;
esac

case "${mode}" in
  asan)
    build_dir="${repo_root}/build-asan"
    cmake_flags="-DFLOWPULSE_SANITIZE=ON"
    ;;
  tsan)
    build_dir="${repo_root}/build-tsan"
    cmake_flags="-DFLOWPULSE_SANITIZE=thread"
    ;;
  audit)
    build_dir="${repo_root}/build-audit"
    cmake_flags="-DFLOWPULSE_AUDIT=ON -DFLOWPULSE_TRACE=ON"
    ;;
esac

# Fail loudly and immediately: a report that does not stop the run is a
# report nobody reads.
ASAN_OPTIONS="detect_leaks=1:abort_on_error=1"
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
export ASAN_OPTIONS UBSAN_OPTIONS TSAN_OPTIONS

cmake -B "${build_dir}" -S "${repo_root}" ${cmake_flags}
cmake --build "${build_dir}" -j
cd "${build_dir}"
ctest --output-on-failure -j "$@"

if [ "${mode}" = "tsan" ]; then
  # The trial engine only spawns real worker threads when jobs > 1; force a
  # wide pool so TSan sees the cross-thread result handoff.
  echo "== tsan: parallel trial engine at FLOWPULSE_JOBS=8 =="
  FLOWPULSE_JOBS=8 ctest --output-on-failure \
    -R 'RunTrialsParallel|ParallelIndexed' "$@"
  # LaneRunner defaults to one worker thread per lane, so these tests
  # race-check the mailbox handoff and round barrier under full
  # contention; FLOWPULSE_LANES=8 additionally lanes any scenario that
  # consults the environment (lanes = -1).
  echo "== tsan: event lanes at FLOWPULSE_LANES=8 =="
  FLOWPULSE_LANES=8 ctest --output-on-failure \
    -R 'LanedScenario|LaneRunner|ClosScenario1k' "$@"
fi
