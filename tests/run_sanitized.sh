#!/usr/bin/env sh
# Build and run the full test suite under ASan + UBSan in a side build
# directory (build-asan/). Any leak, overflow, or UB aborts the run.
#
#   $ tests/run_sanitized.sh [extra ctest args...]
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"

cmake -B "${build_dir}" -S "${repo_root}" -DFLOWPULSE_SANITIZE=ON
cmake --build "${build_dir}" -j
cd "${build_dir}"
ctest --output-on-failure -j "$@"
