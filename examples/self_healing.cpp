// self_healing: the closed loop, watched iteration by iteration.
//
// A training job runs on a clean 16x8 fat tree; one iteration in, the
// receive direction of a cable goes gray and silently drops 10% of
// everything a leaf hears from one spine. The transport retransmits around
// it, so the job keeps going — just slower. FlowPulse flags the deviation,
// localizes the link, and the
// MitigationController quarantines it (APS stops spraying onto it),
// re-baselines the load model with the link as a known fault, and verifies
// through probation. Training finishes at full speed on the remaining links,
// no operator in the loop.
//
//   $ ./self_healing
#include <cmath>
#include <iostream>
#include <string>

#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/table.h"

using namespace flowpulse;

int main() {
  std::cout << "FlowPulse self-healing run: 16x8 fat tree, Ring-AllReduce, 24 MB/iter\n"
               "gray downlink (10% drop) appears on leaf 5 / uplink 3 at t=600 us\n\n";

  const sim::Time onset = sim::Time::microseconds(600);

  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{16, 8, 1, 1};
  cfg.collective = collective::CollectiveKind::kRingReduceScatter;
  cfg.collective_bytes = core::Bytes{24'000'000};
  cfg.iterations = 12;
  cfg.seed = 7;

  exp::NewFault f;
  f.leaf = net::LeafId{5};
  f.uplink = net::UplinkIndex{3};
  f.where = exp::NewFault::Where::kDownlink;
  f.spec = net::FaultSpec::random_drop(0.10, onset);
  cfg.new_faults.push_back(f);

  cfg.mitigation.enabled = true;
  cfg.mitigation.debounce_iterations = 2;
  cfg.mitigation.settle_iterations = 1;
  cfg.mitigation.probation_iterations = 2;

  exp::Scenario s{cfg};
  const exp::ScenarioResult r = s.run();

  // Per-iteration timeline: deviation, what the controller did, and how the
  // iteration reads once you know about the quarantine.
  exp::Table table({"iter", "window (us)", "max dev", "controller", "verdict"});
  for (std::size_t i = 0; i < r.per_iter_max_dev.size(); ++i) {
    std::string actions;
    for (const ctrl::MitigationEvent& e : r.mitigation_events) {
      if (e.iteration.v() != i) continue;
      if (!actions.empty()) actions += ", ";
      actions += std::string{exp::event_kind_name(e.kind)} + " (" + e.reason + ")";
    }
    const double dev = r.per_iter_max_dev[i];
    std::string verdict;
    if (dev <= cfg.flowpulse.threshold) {
      verdict = "clean";
    } else if (r.recovery.mitigated() && i > r.recovery.first_quarantine_iteration.v()) {
      // Traffic sprayed under the pre-quarantine routing, judged against the
      // re-baselined model — the deviation is meaningless (the quarantined
      // port predicts zero but in-flight bytes still land on it), and the
      // controller discards the iteration.
      verdict = "settling (discarded)";
    } else {
      verdict = "FAULT";
    }
    const auto& w = r.iter_windows[i];
    table.row({std::to_string(i),
               exp::fmt(w.first.us(), 0) + " - " + exp::fmt(w.second.us(), 0),
               std::isfinite(dev) ? exp::pct(dev, 2) : "n/a",
               actions.empty() ? "-" : actions, verdict});
  }
  table.print();

  std::cout << "\nControl-plane event log:\n";
  exp::mitigation_table(r.mitigation_events).print();

  auto since_onset = [&](sim::Time t) {
    return t == sim::Time::max() ? std::string{"never"} : exp::fmt((t - onset).us(), 0) + " us";
  };
  std::cout << "\nRecovery (measured from fault onset):\n"
            << "  time to detect:   " << since_onset(r.recovery.first_alert) << "\n"
            << "  time to mitigate: " << since_onset(r.recovery.first_quarantine) << "\n"
            << "  time to recover:  " << since_onset(r.recovery.recovered) << "\n";

  std::cout << "\nThe gray link is still broken — but quarantined it carries no traffic,\n"
               "the re-baselined model expects nothing from it, and every iteration after\n"
               "the settle window is back under the 1% threshold. The fault became a\n"
               "known fault, which is exactly the failure mode the fabric already\n"
               "tolerates.\n";
  return 0;
}
