// flowpulse_cli: run an arbitrary FlowPulse scenario from the command line
// and optionally export machine-readable results — the "operator tool"
// packaging of the library.
//
//   $ ./flowpulse_cli --leaves=32 --spines=16 --bytes=48000000 --iters=4 \
//                     --fault-leaf=12 --fault-spine=5 --drop=0.015 \
//                     --json=run.json --alerts=alerts.json --csv=devs.csv
//
// Run with --help for all flags.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "daemon/stream_file.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/table.h"

using namespace flowpulse;

namespace {

struct CliOptions {
  std::uint32_t leaves = 32, spines = 16, hosts_per_leaf = 1, parallel = 1;
  std::uint64_t bytes = 48'000'000;
  std::uint32_t iters = 4;
  std::string collective = "ring";  // ring | allreduce | allgather | alltoall | hier
  std::string model = "analytical";  // analytical | simulation | learned
  std::string spray = "adaptive";    // adaptive | random | ecmp | flowlet
  std::string fidelity = "packet";   // packet | hybrid | flow
  std::string detector = "threshold";  // threshold | streaming
  double threshold = 0.01;
  double drop = 0.0;
  std::uint32_t fault_leaf = 0, fault_spine = 0;
  std::string fault_kind = "drop";  // drop | blackhole | gilbert
  std::uint32_t preexisting = 0;
  std::uint64_t seed = 1;
  double jitter_us = 1.0;
  std::string json_path, alerts_path, csv_path, dump_path;
  bool help = false;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

template <typename T>
bool parse_num(const char* arg, const char* name, T* out) {
  std::string s;
  if (!parse_flag(arg, name, &s)) return false;
  *out = static_cast<T>(std::strtod(s.c_str(), nullptr));
  return true;
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      o.help = true;
    } else if (parse_num(a, "--leaves", &o.leaves) || parse_num(a, "--spines", &o.spines) ||
               parse_num(a, "--hosts-per-leaf", &o.hosts_per_leaf) ||
               parse_num(a, "--parallel", &o.parallel) || parse_num(a, "--bytes", &o.bytes) ||
               parse_num(a, "--iters", &o.iters) ||
               parse_num(a, "--threshold", &o.threshold) || parse_num(a, "--drop", &o.drop) ||
               parse_num(a, "--fault-leaf", &o.fault_leaf) ||
               parse_num(a, "--fault-spine", &o.fault_spine) ||
               parse_num(a, "--preexisting", &o.preexisting) ||
               parse_num(a, "--seed", &o.seed) || parse_num(a, "--jitter-us", &o.jitter_us) ||
               parse_flag(a, "--collective", &o.collective) ||
               parse_flag(a, "--model", &o.model) || parse_flag(a, "--spray", &o.spray) ||
               parse_flag(a, "--fidelity", &o.fidelity) ||
               parse_flag(a, "--detector", &o.detector) ||
               parse_flag(a, "--fault-kind", &o.fault_kind) ||
               parse_flag(a, "--json", &o.json_path) ||
               parse_flag(a, "--alerts", &o.alerts_path) ||
               parse_flag(a, "--csv", &o.csv_path) ||
               parse_flag(a, "--dump-counters", &o.dump_path)) {
      // parsed
    } else {
      std::cerr << "unknown flag: " << a << " (try --help)\n";
      std::exit(2);
    }
  }
  return o;
}

void usage() {
  std::cout <<
      R"(flowpulse_cli — run a FlowPulse fault-detection scenario

topology:   --leaves=N --spines=N --hosts-per-leaf=N --parallel=N
workload:   --collective=ring|allreduce|allgather|alltoall|hier
            --bytes=N --iters=N --jitter-us=F
detection:  --model=analytical|simulation|learned --threshold=F
            --detector=threshold|streaming       (O(1) EWMA z-score detector)
fidelity:   --fidelity=packet|hybrid|flow        (hybrid fast-forwards healthy
            iterations analytically and drops to packets around faults)
faults:     --preexisting=N                      (known disconnected links)
            --fault-leaf=N --fault-spine=N       (silent fault site)
            --drop=F --fault-kind=drop|blackhole|gilbert
output:     --json=FILE --alerts=FILE --csv=FILE
            --dump-counters=FILE                 (finalized counter stream in
            flowpulsed wire format, replayable via flowpulse-bench --stream)
misc:       --seed=N
)";
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions o = parse(argc, argv);
  if (o.help) {
    usage();
    return 0;
  }

  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{o.leaves, o.spines, o.hosts_per_leaf, o.parallel};
  cfg.collective_bytes = core::Bytes{o.bytes};
  cfg.iterations = o.iters;
  cfg.max_jitter = sim::Time::picoseconds(static_cast<std::int64_t>(o.jitter_us * 1e6));
  cfg.flowpulse.threshold = o.threshold;
  cfg.seed = o.seed;

  if (o.collective == "allreduce") {
    cfg.collective = collective::CollectiveKind::kRingAllReduce;
  } else if (o.collective == "allgather") {
    cfg.collective = collective::CollectiveKind::kRingAllGather;
  } else if (o.collective == "alltoall") {
    cfg.collective = collective::CollectiveKind::kAllToAll;
  } else if (o.collective == "hier") {
    cfg.collective = collective::CollectiveKind::kHierarchicalRing;
  } else {
    cfg.collective = collective::CollectiveKind::kRingReduceScatter;
  }

  if (o.model == "simulation") {
    cfg.flowpulse.model = fp::ModelKind::kSimulation;
  } else if (o.model == "learned") {
    cfg.flowpulse.model = fp::ModelKind::kLearned;
  }

  if (o.fidelity == "hybrid") {
    cfg.fidelity.mode = fp::FidelityMode::kHybrid;
  } else if (o.fidelity == "flow") {
    cfg.fidelity.mode = fp::FidelityMode::kFlow;
  }
  if (o.detector == "streaming") {
    cfg.flowpulse.detector = fp::DetectorKind::kStreaming;
  }

  if (o.spray == "random") {
    cfg.fabric.spray = net::SprayPolicy::kRandom;
  } else if (o.spray == "ecmp") {
    cfg.fabric.spray = net::SprayPolicy::kEcmp;
  } else if (o.spray == "flowlet") {
    cfg.fabric.spray = net::SprayPolicy::kFlowlet;
  }

  for (std::uint32_t i = 0; i < o.preexisting; ++i) {
    cfg.preexisting.emplace_back(net::LeafId{(3 + 7 * i) % o.leaves},
                                 net::UplinkIndex{(1 + 3 * i) % (o.spines * o.parallel)});
  }
  if (o.drop > 0.0 || o.fault_kind == "blackhole") {
    exp::NewFault f;
    f.leaf = net::LeafId{o.fault_leaf};
    f.uplink = net::UplinkIndex{o.fault_spine};
    f.where = exp::NewFault::Where::kBoth;
    if (o.fault_kind == "blackhole") {
      f.spec = net::FaultSpec::black_hole();
    } else if (o.fault_kind == "gilbert") {
      f.spec = net::FaultSpec::gilbert_elliott(o.drop, 20.0);
    } else {
      f.spec = net::FaultSpec::random_drop(o.drop);
    }
    cfg.new_faults.push_back(f);
  }

  exp::Scenario scenario{cfg};
  const exp::ScenarioResult result = scenario.run();

  exp::Table table({"iteration", "max port deviation", "verdict"});
  for (std::size_t i = 0; i < result.per_iter_max_dev.size(); ++i) {
    table.row({std::to_string(i), exp::pct(result.per_iter_max_dev[i]),
               result.per_iter_max_dev[i] > o.threshold ? "FAULT" : "ok"});
  }
  table.print();
  std::cout << result.iterations_completed << " iterations, "
            << result.transport_stats.data_packets_sent << " data packets ("
            << result.transport_stats.retx_packets_sent << " retx), " << result.events
            << " events in " << result.wall_seconds << "s\n";
  if (result.fidelity.enabled) {
    std::cout << "fidelity " << fp::fidelity_mode_name(result.fidelity.mode) << ": "
              << result.fidelity.packet_iterations << " packet + "
              << result.fidelity.flow_iterations << " flow iterations ("
              << result.fidelity.demotions << " demotions, " << result.fidelity.promotions
              << " promotions)\n";
  }

  const auto faulty = scenario.flowpulse().faulty_results();
  for (const fp::DetectionResult& d : faulty) {
    for (const fp::PortAlert& a : d.alerts) {
      if (a.observed >= a.predicted) continue;
      std::cout << "ALERT leaf " << d.leaf << " port " << a.uplink << " iteration "
                << d.iteration << ": " << exp::pct(a.rel_dev) << " below prediction ("
                << exp::verdict_name(a.localization.verdict) << ")\n";
    }
  }

  bool io_ok = true;
  if (!o.json_path.empty()) io_ok &= exp::write_file(o.json_path, exp::to_json(result));
  if (!o.alerts_path.empty()) {
    io_ok &= exp::write_file(o.alerts_path, exp::alerts_to_json(faulty));
  }
  if (!o.csv_path.empty()) {
    io_ok &= exp::write_file(o.csv_path, exp::deviations_to_csv(result));
  }
  if (!o.dump_path.empty()) {
    // Export what the leaf switches measured, as the frames a reporter
    // would send flowpulsed — the bridge from simulation to deployment.
    daemon::CounterStream stream;
    stream.hello.topo = cfg.fabric.shape;
    stream.hello.job = cfg.flowpulse.job;
    stream.hello.first_leaf = net::LeafId{0};
    stream.hello.leaf_count = cfg.fabric.shape.leaves;
    if (scenario.prediction() != nullptr) stream.prediction = *scenario.prediction();
    for (std::uint32_t l = 0; l < cfg.fabric.shape.leaves; ++l) {
      const auto& history = scenario.flowpulse().monitor(net::LeafId{l}).history();
      stream.records.insert(stream.records.end(), history.begin(), history.end());
    }
    daemon::sort_records(stream.records);
    std::string dump_err;
    if (!daemon::write_stream_file(o.dump_path, stream, &dump_err)) {
      std::cerr << dump_err << "\n";
      io_ok = false;
    } else {
      std::cout << "dumped " << stream.records.size() << " counter records ("
                << cfg.fabric.shape.leaves << " leaves) to " << o.dump_path << "\n";
    }
  }
  if (!io_ok) {
    std::cerr << "failed to write one of the output files\n";
    return 1;
  }
  return 0;
}
