// parallel_links: FlowPulse on a fabric with parallel leaf↔spine links
// (paper §7 "Parallel Links").
//
// Each leaf connects to each spine with 2 parallel cables. FlowPulse
// treats every lane as an independent *virtual spine*: packets keep their
// lane across the physical spine, each lane gets its own prediction and
// counter, and a single failed lane — which only reduces bandwidth, so the
// job barely notices — is detected and localized like any other link.
//
//   $ ./parallel_links
#include <iostream>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace flowpulse;

int main() {
  std::cout << "FlowPulse with parallel links: 8 leaves x 4 spines x 2 lanes\n"
               "silent fault: 4% drop on lane 1 of the leaf 2 <-> spine 1 pair\n\n";

  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{8, 4, 1, 2};  // parallel = 2 → 8 uplinks
  cfg.collective = collective::CollectiveKind::kRingReduceScatter;
  cfg.collective_bytes = core::Bytes{24'000'000};
  cfg.iterations = 3;

  // Virtual spine index = spine * parallel + lane: spine 1, lane 1 → 3.
  const net::UplinkIndex faulty_lane{1 * 2 + 1};
  exp::NewFault fault;
  fault.leaf = net::LeafId{2};
  fault.uplink = faulty_lane;
  fault.where = exp::NewFault::Where::kBoth;
  fault.spec = net::FaultSpec::random_drop(0.04);
  cfg.new_faults.push_back(fault);

  exp::Scenario scenario{cfg};
  const exp::ScenarioResult result = scenario.run();

  std::cout << "job completed " << result.iterations_completed << "/" << cfg.iterations
            << " iterations (a lane fault only costs bandwidth, not reachability)\n\n";

  // Show leaf 2's per-lane view for the last finalized iteration.
  const auto& history = scenario.flowpulse().monitor(net::LeafId{2}).history();
  if (!history.empty()) {
    const fp::IterationRecord& rec = history.back();
    exp::Table table({"virtual spine (spine.lane)", "observed B", "predicted B", "deviation"});
    for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(8)) {
      const double pred = scenario.prediction()->at(net::LeafId{2}, u).total;
      table.row({std::to_string(scenario.fabric().info().spine_of(u).v()) + "." +
                     std::to_string(scenario.fabric().info().lane_of(u)),
                 exp::fmt(rec.bytes[u.v()], 0), exp::fmt(pred, 0),
                 exp::pct(fp::relative_deviation(rec.bytes[u.v()], pred))});
    }
    table.print();
  }

  bool localized = false;
  for (const fp::DetectionResult& d : scenario.flowpulse().faulty_results()) {
    for (const fp::PortAlert& a : d.alerts) {
      if (d.leaf == net::LeafId{2} && a.uplink == faulty_lane && a.observed < a.predicted) {
        std::cout << "\nalert: leaf 2, spine "
                  << scenario.fabric().info().spine_of(a.uplink) << " lane "
                  << scenario.fabric().info().lane_of(a.uplink) << " — deviation "
                  << exp::pct(a.rel_dev) << ", verdict "
                  << (a.localization.verdict == fp::Localization::Verdict::kLocalLink
                          ? "local link"
                          : "remote/unknown")
                  << "\n";
        localized = true;
        break;
      }
    }
    if (localized) break;
  }
  std::cout << (localized
                    ? "\nThe faulty LANE was singled out — its healthy twin on the same\n"
                      "physical spine shows no deviation, so the operator can disable just\n"
                      "the bad cable.\n"
                    : "\n(no alert at the faulty lane — unexpected)\n");
  return localized ? 0 : 1;
}
