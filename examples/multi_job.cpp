// multi_job: FlowPulse in a shared cluster (paper §5.1 + §7 "Parallel
// Jobs").
//
// Two training jobs share the fabric. Job A (the measured one) runs its
// collective at elevated priority and tags its packets; job B is an
// untagged background job on the other hosts. The demo shows that:
//  1. the monitors count ONLY job A's tagged collective — job B's traffic
//     does not pollute the measurement;
//  2. prioritizing job A isolates its spraying from background load, so
//     temporal symmetry (and the 1% threshold) keeps working;
//  3. a silent fault is still detected and localized while both jobs run.
//
//   $ ./multi_job
#include <iostream>

#include "collective/runner.h"
#include "exp/scenario.h"
#include "exp/table.h"
#include "flowpulse/analytical_model.h"

using namespace flowpulse;

int main() {
  std::cout << "FlowPulse with parallel jobs: 16 leaves x 8 spines, 2 hosts per leaf\n"
               "  job A: hosts 0,2,4,...,30 (measured, high priority, tagged)\n"
               "  job B: hosts 1,3,5,...,31 (background, untagged)\n"
               "  silent fault: 2.5% drop on the leaf 6 <-> spine 2 link\n\n";

  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{16, 8, 2, 1};
  cfg.collective = collective::CollectiveKind::kRingReduceScatter;
  cfg.collective_bytes = core::Bytes{24'000'000};
  cfg.iterations = 4;

  // The Scenario's built-in runner covers ALL hosts; for this demo we build
  // the two jobs by hand on top of the scenario's fabric and transports.
  cfg.iterations = 0;  // disable the built-in runner (we drive our own)
  exp::NewFault fault;
  fault.leaf = net::LeafId{6};
  fault.uplink = net::UplinkIndex{2};
  fault.where = exp::NewFault::Where::kBoth;
  fault.spec = net::FaultSpec::random_drop(0.025);
  cfg.new_faults.push_back(fault);

  exp::Scenario scenario{cfg};

  // Job A: ring over the even hosts — one non-local sender/receiver per
  // leaf, the condition §5.1 needs. Tagged and prioritized.
  collective::CollectiveConfig job_a;
  for (std::uint32_t h = 0; h < 32; h += 2) job_a.hosts.push_back(net::HostId{h});
  job_a.schedule = collective::ring_reduce_scatter(16, core::Bytes{24'000'000});
  job_a.iterations = 4;
  job_a.priority = net::Priority::kCollective;
  job_a.job_id = 0;
  job_a.tag_flow = true;

  // Job B: ring over the odd hosts — lower priority, untagged.
  collective::CollectiveConfig job_b;
  for (std::uint32_t h = 1; h < 32; h += 2) job_b.hosts.push_back(net::HostId{h});
  job_b.schedule = collective::ring_reduce_scatter(16, core::Bytes{16'000'000});
  job_b.iterations = 5;
  job_b.priority = net::Priority::kBackground;
  job_b.job_id = 1;
  job_b.tag_flow = false;

  // Arm the prediction for job A's demand only.
  const auto demand =
      collective::DemandMatrix::from_schedule(job_a.schedule, job_a.hosts, 32);
  const fp::AnalyticalModel model{cfg.fabric.shape, 4096, net::kHeaderBytes};
  scenario.flowpulse().set_prediction(
      model.predict(demand, scenario.fabric().routing()));

  collective::CollectiveRunner runner_a{scenario.simulator(), scenario.transports(),
                                        std::move(job_a)};
  collective::CollectiveRunner runner_b{scenario.simulator(), scenario.transports(),
                                        std::move(job_b)};
  runner_a.start();
  runner_b.start();
  scenario.simulator().run();
  scenario.flowpulse().flush();

  std::cout << "job A finished: " << (runner_a.finished() ? "yes" : "NO")
            << ", job B finished: " << (runner_b.finished() ? "yes" : "NO") << "\n\n";

  exp::Table table({"iteration", "max port deviation", "verdict @1%"});
  const auto devs = scenario.flowpulse().per_iteration_max_dev();
  for (std::size_t i = 0; i < devs.size(); ++i) {
    table.row({std::to_string(i), exp::pct(devs[i]), devs[i] > 0.01 ? "FAULT" : "ok"});
  }
  table.print();

  for (const fp::DetectionResult& d : scenario.flowpulse().faulty_results()) {
    for (const fp::PortAlert& a : d.alerts) {
      if (a.observed >= a.predicted) continue;
      std::cout << "\nfirst deficit alert: leaf " << d.leaf << ", port from spine "
                << scenario.fabric().info().spine_of(a.uplink) << " (deviation "
                << exp::pct(a.rel_dev) << ", "
                << (a.localization.verdict == fp::Localization::Verdict::kLocalLink
                        ? "local link"
                        : "remote/unknown")
                << ")\n";
      std::cout << "\nDespite job B's untagged background traffic sharing every link, the\n"
                   "monitors measured only job A's prioritized collective and still pinned\n"
                   "the silent fault to the right link.\n";
      return 0;
    }
  }
  std::cout << "\n(no deficit alert fired — unexpected; try a higher drop rate)\n";
  return 1;
}
