// silent_fault_hunt: an operator's view of FlowPulse across fault types.
//
// Sweeps the fault taxonomy from §7 — gray links at several severities, a
// FIB black hole, and a transient flap — and prints, for each, whether the
// job survived (the transport masks the fault!), what application slowdown
// it caused, and how FlowPulse detected and localized it. The punchline of
// the paper in one table: silent faults that only show up as training
// slowdowns become attributable link-level alerts.
//
//   $ ./silent_fault_hunt
#include <iostream>
#include <string>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace flowpulse;

namespace {

struct Case {
  std::string name;
  net::FaultSpec spec;
  exp::NewFault::Where where;
};

}  // namespace

int main() {
  std::cout << "FlowPulse silent-fault hunt: 16x8 fat tree, Ring-AllReduce, 24 MB/iter\n\n";

  const net::LeafId leaf{5};
  const net::UplinkIndex port{3};

  exp::ScenarioConfig base;
  base.fabric.shape = net::TopologyInfo{16, 8, 1, 1};
  base.collective = collective::CollectiveKind::kRingReduceScatter;
  base.collective_bytes = core::Bytes{24'000'000};
  base.iterations = 4;

  // Baseline iteration time from a clean run.
  exp::Scenario clean{base};
  const exp::ScenarioResult clean_result = clean.run();
  double clean_iter_us = 0.0;
  for (const auto& w : clean_result.iter_windows) clean_iter_us += (w.second - w.first).us();
  clean_iter_us /= static_cast<double>(clean_result.iter_windows.size());

  const std::vector<Case> cases{
      {"gray link, 1% drop", net::FaultSpec::random_drop(0.01), exp::NewFault::Where::kBoth},
      {"gray link, 3% drop", net::FaultSpec::random_drop(0.03), exp::NewFault::Where::kBoth},
      {"gray link, 10% drop", net::FaultSpec::random_drop(0.10), exp::NewFault::Where::kBoth},
      {"bursty BER (GE, ~3% avg)", net::FaultSpec::gilbert_elliott(0.03, 25.0),
       exp::NewFault::Where::kBoth},
      {"FIB black hole (down dir)", net::FaultSpec::black_hole(),
       exp::NewFault::Where::kDownlink},
      {"transient flap (one iter)",
       net::FaultSpec::random_drop(0.20, sim::Time::microseconds(300),
                                   sim::Time::microseconds(500)),
       exp::NewFault::Where::kBoth},
  };

  exp::Table table({"fault", "job finished", "slowdown", "iters flagged", "retx",
                    "localized"});
  for (const Case& c : cases) {
    exp::ScenarioConfig cfg = base;
    exp::NewFault f;
    f.leaf = leaf;
    f.uplink = port;
    f.where = c.where;
    f.spec = c.spec;
    cfg.new_faults.push_back(f);

    exp::Scenario s{cfg};
    const exp::ScenarioResult r = s.run();

    double iter_us = 0.0;
    for (const auto& w : r.iter_windows) iter_us += (w.second - w.first).us();
    iter_us /= static_cast<double>(r.iter_windows.size());

    std::uint32_t flagged = 0;
    for (const double dev : r.per_iter_max_dev) {
      if (dev > cfg.flowpulse.threshold) ++flagged;
    }
    std::string localized = "-";
    for (const fp::DetectionResult& d : s.flowpulse().faulty_results()) {
      for (const fp::PortAlert& a : d.alerts) {
        if (a.observed < a.predicted &&
            a.localization.verdict != fp::Localization::Verdict::kUnknown) {
          localized = "leaf " + std::to_string(d.leaf.v()) + " / spine " +
                      std::to_string(s.fabric().info().spine_of(a.uplink).v()) +
                      (a.localization.verdict == fp::Localization::Verdict::kLocalLink
                           ? " (local)"
                           : " (remote)");
          break;
        }
      }
      if (localized != "-") break;
    }

    table.row({c.name, r.iterations_completed == base.iterations ? "yes" : "NO",
               exp::fmt(iter_us / clean_iter_us, 2) + "x",
               std::to_string(flagged) + "/" + std::to_string(r.per_iter_max_dev.size()),
               std::to_string(r.transport_stats.retx_packets_sent), localized});
  }
  table.print();

  std::cout << "\nNote how every fault is invisible to the application beyond a slowdown\n"
               "(the transport retransmits around it) — exactly the silent-fault problem —\n"
               "yet each one surfaces as a localized per-port deviation in FlowPulse.\n";
  return 0;
}
