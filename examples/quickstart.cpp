// Quickstart: build the paper's evaluation fabric (32 leaves × 16 spines),
// run a Ring-AllReduce training job with one silently gray link, and watch
// FlowPulse detect and localize it from per-port temporal symmetry alone.
//
//   $ ./quickstart [drop_rate]
#include <cstdlib>
#include <iostream>

#include "exp/scenario.h"
#include "exp/table.h"

using namespace flowpulse;

int main(int argc, char** argv) {
  const double drop_rate = argc > 1 ? std::atof(argv[1]) : 0.03;

  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{32, 16, 1, 1};  // paper §6 default
  cfg.collective = collective::CollectiveKind::kRingReduceScatter;  // 31 stages
  cfg.collective_bytes = core::Bytes{16ull << 20};  // 16 MiB gradients
  cfg.iterations = 4;
  cfg.flowpulse.threshold = 0.01;  // the paper's 1% detection threshold

  // Iteration 0 and 1 run clean; the link from spine 5 down to leaf 12 then
  // silently starts dropping `drop_rate` of its packets.
  exp::NewFault fault;
  fault.leaf = net::LeafId{12};
  fault.uplink = net::UplinkIndex{5};
  fault.where = exp::NewFault::Where::kDownlink;
  fault.spec = net::FaultSpec::random_drop(drop_rate, sim::Time::microseconds(800));
  cfg.new_faults.push_back(fault);

  std::cout << "FlowPulse quickstart: 32x16 fat tree, 31-stage Ring-AllReduce, "
            << cfg.collective_bytes / (1 << 20) << " MiB per iteration\n"
            << "Silent fault: spine 5 -> leaf 12 drops " << drop_rate * 100
            << "% of packets from t=800us\n\n";

  exp::Scenario scenario{cfg};
  const exp::ScenarioResult result = scenario.run();

  exp::Table table({"iteration", "fault active", "max port deviation", "verdict"});
  for (std::size_t i = 0; i < result.per_iter_max_dev.size(); ++i) {
    const bool active = i < result.iter_fault_active.size() && result.iter_fault_active[i];
    const bool flagged = result.per_iter_max_dev[i] > cfg.flowpulse.threshold;
    table.row({std::to_string(i), active ? "yes" : "no",
               exp::pct(result.per_iter_max_dev[i]), flagged ? "FAULT" : "ok"});
  }
  table.print();

  // Show the per-port view and localization of the first alert.
  for (const fp::DetectionResult& det : result.detections) {
    if (!det.faulty()) continue;
    std::cout << "\nFirst alert: leaf " << det.leaf << ", iteration " << det.iteration
              << "\n";
    for (const fp::PortAlert& a : det.alerts) {
      std::cout << "  port from virtual spine " << a.uplink << ": observed "
                << static_cast<std::uint64_t>(a.observed) << " B, predicted "
                << static_cast<std::uint64_t>(a.predicted) << " B (deviation "
                << exp::pct(a.rel_dev) << ")\n";
      switch (a.localization.verdict) {
        case fp::Localization::Verdict::kLocalLink:
          std::cout << "  localization: LOCAL link leaf " << det.leaf << " <-> spine "
                    << scenario.fabric().info().spine_of(a.uplink) << "\n";
          break;
        case fp::Localization::Verdict::kRemoteLinks:
          std::cout << "  localization: REMOTE link(s) at sender leaf(s):";
          for (const net::LeafId l : a.localization.suspect_senders) std::cout << ' ' << l;
          std::cout << "\n";
          break;
        case fp::Localization::Verdict::kUnknown:
          std::cout << "  localization: inconclusive\n";
          break;
      }
    }
    break;
  }

  std::cout << "\nsimulated " << result.sim_end.ms() << " ms of fabric time, "
            << result.events << " events, " << result.transport_stats.data_packets_sent
            << " data packets (" << result.transport_stats.retx_packets_sent
            << " retransmits) in " << result.wall_seconds << " s wall\n";
  return 0;
}
