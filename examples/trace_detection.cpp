// trace_detection: watch a silent fault through the flight recorder.
//
// The same closed-loop story as self_healing — a gray downlink appears
// mid-run, FlowPulse flags it, the controller quarantines — but told from
// the observability layer: every packet drop, PFC pause, RTO firing,
// detector flag, localization verdict, and mitigation action lands in the
// bounded in-memory flight recorder, and the run ends by exporting the
// retained window as chrome://tracing JSON plus a text timeline and the
// counter/histogram registry. The workload is AllToAll so the incast also
// exercises the lossless fabric's PFC machinery (ring traffic never
// queues enough to pause).
//
// Tracing is compile-time gated. Configure with -DFLOWPULSE_TRACE=ON to
// get the full story; in a default build this example prints how to
// enable it and exits — the instrumentation genuinely does not exist in
// the binary (see the trace_zero_cost_symbols test).
//
//   $ ./trace_detection [out.json]
#include <iostream>
#include <string>

#include "exp/report.h"
#include "exp/scenario.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace flowpulse;

int main(int argc, char** argv) {
#if !FP_TRACE_ENABLED
  (void)argc;
  (void)argv;
  std::cout << "trace_detection: this build has tracing compiled out.\n"
               "Reconfigure with -DFLOWPULSE_TRACE=ON to record flight-recorder\n"
               "events (the default build keeps hot paths instrumentation-free).\n";
  return 0;
#else
  const std::string out_path = argc > 1 ? argv[1] : "trace_detection.json";

  std::cout << "FlowPulse traced run: 8x4 fat tree, AllToAll, 8 MB/iter\n"
               "gray downlink (15% drop) on leaf 5 / uplink 1 at t=150 us, mitigation on,\n"
               "flight recorder at level=events\n\n";

  exp::ScenarioConfig cfg;
  cfg.fabric.shape = net::TopologyInfo{8, 4, 1, 1};
  cfg.collective = collective::CollectiveKind::kAllToAll;
  cfg.collective_bytes = core::Bytes{8ull << 20};
  cfg.iterations = 12;
  cfg.seed = 1;
  // Tight PFC thresholds (a couple of packets) so the AllToAll incast
  // shows the lossless fabric's pause machinery in the trace.
  cfg.fabric.pfc.xoff_bytes = core::Bytes{9 * 1024};
  cfg.fabric.pfc.xon_bytes = core::Bytes{4 * 1024};

  exp::NewFault f;
  f.leaf = net::LeafId{5};
  f.uplink = net::UplinkIndex{1};
  f.where = exp::NewFault::Where::kDownlink;
  f.spec = net::FaultSpec::random_drop(0.15, sim::Time::microseconds(150));
  cfg.new_faults.push_back(f);

  // AllToAll carries per-(sender, port) quantization noise; 5% keeps the
  // detector quiet until the gray link's real shortfall shows up.
  cfg.flowpulse.threshold = 0.05;
  cfg.mitigation.enabled = true;
  cfg.mitigation.debounce_iterations = 2;
  cfg.mitigation.settle_iterations = 1;
  cfg.mitigation.probation_iterations = 2;

  cfg.trace.level = obs::TraceLevel::kEvents;
  cfg.trace.capacity = 1 << 16;

  exp::Scenario s{cfg};
  const exp::ScenarioResult r = s.run();

  // The automatic dumps Scenario took the moment something was flagged.
  std::cout << "automatic flight-recorder dumps (" << r.trace_dumps.size() << "):\n";
  for (const obs::TraceDump& d : r.trace_dumps) {
    std::cout << "  @" << d.at.us() << "us  " << d.reason << "  (" << d.events.size()
              << " events retained, " << d.dropped << " lost to ring wrap)\n";
  }

  // The tail of the final retained window, as the text timeline the audit
  // dump hook prints on invariant failure.
  const std::vector<obs::TraceEvent>& window = r.trace_events;
  const std::size_t tail = window.size() < 20 ? 0 : window.size() - 20;
  std::cout << "\nlast " << (window.size() - tail) << " of " << window.size()
            << " recorded events (" << r.trace_dropped << " lost to ring wrap):\n"
            << obs::text_timeline({window.begin() + static_cast<std::ptrdiff_t>(tail),
                                   window.end()});

  // The counter/histogram registry the window reduces to.
  const obs::TraceMetrics m = obs::TraceMetrics::from_events(window);
  std::cout << "\ncounters: drops=" << m.count(obs::EventKind::kPacketDrop)
            << " pfc_pauses=" << m.count(obs::EventKind::kPfcPause)
            << " rto=" << m.retransmits
            << " detector_flags=" << m.count(obs::EventKind::kDetectorFlag)
            << " mitigations=" << m.count(obs::EventKind::kMitigation) << "\n"
            << "pause_us: " << m.pause_us.to_json() << "\n"
            << "drop_bytes: " << m.drop_bytes.to_json() << "\n";

  if (exp::write_file(out_path, obs::chrome_trace_json(window))) {
    std::cout << "\nwrote " << out_path
              << " — load it in chrome://tracing or ui.perfetto.dev: one track\n"
                 "per port/host/link, detector flags and mitigation actions as\n"
                 "instants, PFC pauses as duration slices.\n";
  } else {
    std::cout << "\nfailed to write " << out_path << "\n";
    return 1;
  }
  return 0;
#endif
}
