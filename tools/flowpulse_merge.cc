// flowpulse-merge: cluster-mode client for a sharded flowpulsed
// deployment. Given M daemons (listed in shard order), it routes each
// leaf's counter stream to the shard that owns it (the deterministic
// [i*L/M, (i+1)*L/M) split both sides compute), collects the per-shard
// verdicts, and merges them into the fabric verdict — bit-identical to a
// single daemon having seen every leaf.
//
//   $ ./flowpulse-merge --stream=fault.fpstream --ports=7117,7118
//        --expect-link=12:5
//   $ ./flowpulse-merge --stream=fault.fpstream
//        --port-files=/tmp/s0.port,/tmp/s1.port --shutdown
//
// Run with --help for all flags.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "daemon/client.h"
#include "daemon/engine.h"
#include "daemon/stream_file.h"

using namespace flowpulse;

namespace {

struct MergeOptions {
  std::string host = "127.0.0.1";
  std::vector<std::uint16_t> ports;  ///< in shard order
  std::string stream_path;
  fptool::Expectations expect{};
  bool shutdown = false;
  bool help = false;
  bool bad = false;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

MergeOptions parse(int argc, char** argv) {
  MergeOptions o;
  std::string s;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      o.help = true;
    } else if (std::strcmp(a, "--shutdown") == 0) {
      o.shutdown = true;
    } else if (std::strcmp(a, "--expect-clean") == 0) {
      o.expect.expect_clean = true;
    } else if (parse_flag(a, "--host", &o.host) || parse_flag(a, "--stream", &o.stream_path)) {
      // parsed
    } else if (parse_flag(a, "--ports", &s)) {
      for (const std::string& p : fptool::split_csv(s)) {
        o.ports.push_back(static_cast<std::uint16_t>(std::strtoul(p.c_str(), nullptr, 10)));
      }
    } else if (parse_flag(a, "--port-files", &s)) {
      for (const std::string& f : fptool::split_csv(s)) {
        std::uint16_t port = 0;
        if (!fptool::read_port_file(f, &port)) {
          std::fprintf(stderr, "flowpulse-merge: cannot read port from '%s'\n", f.c_str());
          o.bad = true;
          continue;
        }
        o.ports.push_back(port);
      }
    } else if (parse_flag(a, "--expect-link", &s)) {
      if (!fptool::parse_link(s, &o.expect)) {
        std::fprintf(stderr, "flowpulse-merge: --expect-link wants LEAF:UPLINK\n");
        o.bad = true;
      }
    } else if (parse_flag(a, "--expect-iter", &s)) {
      o.expect.expect_iter = static_cast<std::uint32_t>(std::strtoul(s.c_str(), nullptr, 10));
      o.expect.have_iter = true;
    } else {
      std::fprintf(stderr, "flowpulse-merge: unknown flag '%s' (try --help)\n", a);
      o.bad = true;
    }
  }
  return o;
}

void usage() {
  std::puts(
      "flowpulse-merge -- route a counter stream across flowpulsed shards\n"
      "                   and merge their verdicts\n"
      "  --stream=FILE                 recorded counter stream (required)\n"
      "  --host=ADDR                   daemon host (default 127.0.0.1)\n"
      "  --ports=P0,P1,...             shard ports, in shard order\n"
      "  --port-files=F0,F1,...        or their --port-file paths\n"
      "  --expect-link=L:U / --expect-iter=N / --expect-clean\n"
      "                                verdict correctness checks\n"
      "  --shutdown                    stop every shard after the run");
}

}  // namespace

int main(int argc, char** argv) {
  const MergeOptions o = parse(argc, argv);
  if (o.help) {
    usage();
    return 0;
  }
  if (o.bad) return 2;
  if (o.stream_path.empty() || o.ports.empty()) {
    std::fprintf(stderr, "flowpulse-merge: --stream and --ports/--port-files are required\n");
    return 2;
  }

  std::string err;
  auto stream = daemon::read_stream_file(o.stream_path, &err);
  if (!stream.has_value()) {
    std::fprintf(stderr, "flowpulse-merge: %s\n", err.c_str());
    return 1;
  }
  const std::uint32_t leaves = stream->hello.topo.leaves;
  const auto shards = static_cast<std::uint32_t>(o.ports.size());

  std::vector<daemon::FabricVerdict> verdicts;
  for (std::uint32_t i = 0; i < shards; ++i) {
    const std::uint32_t lo = daemon::shard_first_leaf(leaves, i, shards);
    const std::uint32_t hi = daemon::shard_first_leaf(leaves, i + 1, shards);
    daemon::Client client;
    const auto fail = [&](const std::string& what) {
      std::fprintf(stderr, "flowpulse-merge: shard %u (port %u): %s\n", i, o.ports[i],
                   what.c_str());
      return 1;
    };
    if (!client.connect_to(o.host, o.ports[i], &err)) return fail(err);
    if (!client.hello(stream->hello, &err)) return fail(err);
    if (stream->prediction.has_value() && !client.predict(*stream->prediction, &err)) {
      return fail(err);
    }
    std::uint64_t routed = 0;
    for (const fp::IterationRecord& rec : stream->records) {
      if (rec.leaf.v() < lo || rec.leaf.v() >= hi) continue;
      if (!client.counters(rec, &err)) return fail(err);
      ++routed;
    }
    auto verdict = client.verdict(&err);
    if (!verdict.has_value()) return fail(err);
    if (o.shutdown && !client.shutdown_server(&err)) return fail(err);
    std::printf("shard %u/%u (port %u): leaves [%u,%u), %llu records, %s\n", i, shards,
                o.ports[i], lo, hi, static_cast<unsigned long long>(routed),
                verdict->flagged ? "FLAGGED" : "clean");
    verdicts.push_back(std::move(*verdict));
  }

  const daemon::FabricVerdict merged = daemon::merge_verdicts(verdicts);
  fptool::print_verdict(merged);
  return fptool::check_expectations(merged, o.expect) ? 0 : 1;
}
