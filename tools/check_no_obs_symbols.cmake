# Script-mode check (cmake -P): fail if any of the given static libraries
# references the flowpulse::obs namespace. Run by the trace_zero_cost_symbols
# test against the hot-path libs in default (trace-off) builds, where the
# FP_TRACE macro is required to discard its call sites at preprocessing time
# — instrumentation must be free when it is off.
#
# Usage: cmake -DNM=/usr/bin/nm "-DLIBS=a.a;b.a;..." -P check_no_obs_symbols.cmake

if(NOT DEFINED NM OR NOT DEFINED LIBS)
  message(FATAL_ERROR "usage: cmake -DNM=<nm> -DLIBS=<lib;lib;...> -P check_no_obs_symbols.cmake")
endif()

set(tainted "")
foreach(lib IN LISTS LIBS)
  if(NOT EXISTS "${lib}")
    message(FATAL_ERROR "library not found: ${lib}")
  endif()
  execute_process(COMMAND "${NM}" "${lib}"
    OUTPUT_VARIABLE symbols
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "nm failed on ${lib}: ${err}")
  endif()
  # Itanium mangling of the flowpulse::obs namespace: ...9flowpulse3obs...
  string(FIND "${symbols}" "9flowpulse3obs" hit)
  if(NOT hit EQUAL -1)
    list(APPEND tainted "${lib}")
  endif()
endforeach()

if(tainted)
  message(FATAL_ERROR
    "obs symbols leaked into hot-path libraries in a trace-off build: ${tainted}\n"
    "FP_TRACE call sites must compile to nothing without -DFLOWPULSE_TRACE=ON.")
endif()
message(STATUS "no obs symbols in ${LIBS}")
