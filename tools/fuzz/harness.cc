#include "harness.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "daemon/engine.h"
#include "daemon/protocol.h"
#include "daemon/stream_file.h"
#include "daemon/verdict.h"
#include "net/topology_info.h"

// Not assert(): the replay executables run in RelWithDebInfo (NDEBUG), and
// a violated invariant must abort there too so ctest and libFuzzer both
// catch it.
#define FUZZ_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "FUZZ_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                       \
      std::abort();                                                           \
    }                                                                         \
  } while (false)

namespace flowpulse::fuzz {

namespace {

using daemon::DaemonEngine;
using daemon::EngineConfig;
using daemon::EngineReply;
using daemon::Err;
using daemon::FrameAssembler;
using daemon::Op;
using daemon::Session;

/// The fabric every fuzz engine is configured with — matches the corpus
/// generator and the daemon test helpers (tests/test_daemon.cc small_topo).
net::TopologyInfo fuzz_topo() { return net::TopologyInfo{4, 2, 1, 1}; }

/// Drain an assembler into (status, payload) steps until kNeedMore.
struct Step {
  FrameAssembler::Status status;
  std::vector<std::uint8_t> frame;
};

std::vector<Step> drain(FrameAssembler& assembler) {
  std::vector<Step> steps;
  std::vector<std::uint8_t> frame;
  for (;;) {
    const FrameAssembler::Status st = assembler.next(frame);
    if (st == FrameAssembler::Status::kNeedMore) break;
    steps.push_back({st, frame});
    // Framing errors are unrecoverable by contract: the server replies once
    // and closes, so frames past the first bad status are never observed.
    if (st != FrameAssembler::Status::kFrame) break;
  }
  return steps;
}

/// decode(body) → encode(value) → decode(body') → encode(value') must be a
/// fixed point: the codec's canonical form re-encodes to identical bytes.
/// Compares encodings, not values, so it needs no operator== on the type.
template <typename DecodeFn, typename EncodeFn>
void round_trip(std::span<const std::uint8_t> body, DecodeFn decode, EncodeFn encode) {
  const auto value = decode(body);
  if (!value.has_value()) return;  // malformed body: rejection IS the contract
  const std::vector<std::uint8_t> wire = encode(*value);
  // Complete frame: u32 length prefix + opcode + body.
  FUZZ_CHECK(wire.size() >= 5);
  const std::span<const std::uint8_t> body2{wire.data() + 5, wire.size() - 5};
  const auto value2 = decode(body2);
  FUZZ_CHECK(value2.has_value());
  FUZZ_CHECK(encode(*value2) == wire);
}

/// One reply frame, exactly: parses as a single complete frame with a reply
/// opcode and a decodable body, nothing buffered after it.
void check_reply(const EngineReply& reply) {
  FUZZ_CHECK(!reply.bytes.empty());
  FrameAssembler assembler;
  assembler.feed(reply.bytes);
  std::vector<std::uint8_t> frame;
  FUZZ_CHECK(assembler.next(frame) == FrameAssembler::Status::kFrame);
  FUZZ_CHECK(assembler.buffered() == 0);
  FUZZ_CHECK(assembler.next(frame) == FrameAssembler::Status::kNeedMore);
  assembler.feed(reply.bytes);
  FUZZ_CHECK(assembler.next(frame) == FrameAssembler::Status::kFrame);
  FUZZ_CHECK(!frame.empty());
  const Op op = static_cast<Op>(frame[0]);
  const std::span<const std::uint8_t> body{frame.data() + 1, frame.size() - 1};
  switch (op) {
    case Op::kOk:
      FUZZ_CHECK(body.empty());
      break;
    case Op::kErr:
      FUZZ_CHECK(daemon::decode_err(body).has_value());
      break;
    case Op::kVerdictReply:
      FUZZ_CHECK(daemon::decode_verdict_reply(body).has_value());
      break;
    case Op::kStatsReply:
      FUZZ_CHECK(daemon::decode_stats_reply(body).has_value());
      break;
    default:
      FUZZ_CHECK(false && "engine replied with a non-reply opcode");
  }
}

}  // namespace

void codec_one(std::span<const std::uint8_t> data) {
  // Incremental-feed equivalence: the frame sequence must not depend on how
  // the bytes were chunked (the epoll server feeds whatever recv returned).
  FrameAssembler whole;
  whole.feed(data);
  const std::vector<Step> steps = drain(whole);

  FrameAssembler split;
  const std::size_t cut = data.size() / 2;
  split.feed(data.subspan(0, cut));
  std::vector<Step> split_steps = drain(split);
  split.feed(data.subspan(cut));
  for (Step& s : drain(split)) split_steps.push_back(std::move(s));
  FUZZ_CHECK(split_steps.size() == steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    FUZZ_CHECK(split_steps[i].status == steps[i].status);
    FUZZ_CHECK(split_steps[i].frame == steps[i].frame);
  }

  // Per-opcode decode / re-encode fixed points.
  for (const Step& s : steps) {
    if (s.status != FrameAssembler::Status::kFrame) break;
    FUZZ_CHECK(!s.frame.empty());
    const std::span<const std::uint8_t> body{s.frame.data() + 1, s.frame.size() - 1};
    switch (static_cast<Op>(s.frame[0])) {
      case Op::kHello:
        round_trip(body, daemon::decode_hello,
                   [](const daemon::Hello& h) { return daemon::encode_hello(h); });
        break;
      case Op::kCounters:
        round_trip(body, daemon::decode_counters, [](const fp::IterationRecord& r) {
          return daemon::encode_counters(r);
        });
        break;
      case Op::kPredict:
        round_trip(body, daemon::decode_predict, [](const fp::PortLoadMap& m) {
          return daemon::encode_predict(m);
        });
        break;
      case Op::kErr:
        round_trip(body, daemon::decode_err, [](const daemon::ErrReply& e) {
          return daemon::encode_err(e.code, e.message);
        });
        break;
      case Op::kVerdictReply:
        round_trip(body, daemon::decode_verdict_reply, [](const daemon::FabricVerdict& v) {
          return daemon::encode_verdict_reply(v);
        });
        break;
      case Op::kStatsReply:
        round_trip(body, daemon::decode_stats_reply, [](const daemon::StatsSnapshot& st) {
          return daemon::encode_stats_reply(st);
        });
        break;
      default:
        break;  // opcode-only requests / unknown opcodes: nothing to round-trip
    }
  }
}

void engine_one(std::span<const std::uint8_t> data) {
  EngineConfig config;
  config.topo = fuzz_topo();
  DaemonEngine engine{config};
  Session session;

  // The input is one connection's raw byte stream, handled exactly as
  // Server::conn_readable does: frames through on_frame, the first framing
  // error through on_bad_stream, nothing processed past a close.
  FrameAssembler assembler;
  assembler.feed(data);
  std::vector<std::uint8_t> frame;
  for (;;) {
    const FrameAssembler::Status st = assembler.next(frame);
    if (st == FrameAssembler::Status::kNeedMore) break;
    EngineReply reply;
    if (st == FrameAssembler::Status::kFrame) {
      reply = engine.on_frame(session, frame);
    } else {
      reply = engine.on_bad_stream(st == FrameAssembler::Status::kOversized
                                       ? Err::kOversized
                                       : Err::kBadFrame);
      FUZZ_CHECK(reply.close);
    }
    check_reply(reply);
    if (reply.close || reply.shutdown) break;
  }

  // Whatever the stream did, the engine's verdict plane must stay coherent:
  // the canonical verdict round-trips through its own wire form.
  const daemon::FabricVerdict verdict = engine.verdict();
  const auto wire = daemon::encode_verdict_reply(verdict);
  const auto back =
      daemon::decode_verdict_reply({wire.data() + 5, wire.size() - 5});
  FUZZ_CHECK(back.has_value());
  // Compare re-encodings, not values: hostile counters can plant NaNs in
  // the verdict doubles, and NaN != NaN under operator== — but the wire
  // form is raw IEEE-754 bits, so the round trip must still be bit-exact.
  FUZZ_CHECK(daemon::encode_verdict_reply(*back) == wire);
}

void stream_one(std::span<const std::uint8_t> data) {
  std::string err;
  const std::optional<daemon::CounterStream> stream = daemon::parse_stream(data, &err);
  if (!stream.has_value()) {
    FUZZ_CHECK(!err.empty());  // structured error, never a silent failure
    return;
  }
  // Accepted streams re-encode to a parse/encode fixed point.
  const std::vector<std::uint8_t> wire = daemon::encode_stream(*stream);
  std::string err2;
  const std::optional<daemon::CounterStream> again = daemon::parse_stream(wire, &err2);
  FUZZ_CHECK(again.has_value());
  FUZZ_CHECK(daemon::encode_stream(*again) == wire);
  FUZZ_CHECK(again->hello == stream->hello);
  FUZZ_CHECK(again->records.size() == stream->records.size());
  FUZZ_CHECK(again->prediction.has_value() == stream->prediction.has_value());
}

}  // namespace flowpulse::fuzz
