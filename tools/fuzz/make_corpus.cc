// Deterministic seed-corpus generator: make_fuzz_corpus <corpus-dir> writes
// codec/, engine/ and stream/ seed files. The seeds are lifted from the
// codec-hardening tests (tests/test_daemon.cc): valid frames of every
// opcode, truncation at every byte of a small frame, wrapping dimensions,
// oversized length prefixes, and a recorded `--dump-counters`-format
// stream. Byte-for-byte reproducible — the checked-in corpus under
// tools/fuzz/corpus/ is exactly this tool's output, so `make_fuzz_corpus`
// + `git diff` audits it.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <initializer_list>
#include <fstream>
#include <string>
#include <vector>

#include "daemon/engine.h"
#include "daemon/protocol.h"
#include "daemon/stream_file.h"
#include "daemon/verdict.h"
#include "net/topology_info.h"

namespace flowpulse {
namespace {

using Bytes = std::vector<std::uint8_t>;

/// Must match fuzz_topo() in harness.cc and small_topo() in test_daemon.cc.
net::TopologyInfo small_topo() { return net::TopologyInfo{4, 2, 1, 1}; }

daemon::Hello small_hello() {
  daemon::Hello h;
  h.topo = small_topo();
  h.first_leaf = net::LeafId{0};
  h.leaf_count = 4;
  return h;
}

fp::IterationRecord small_record(std::uint32_t leaf, std::uint32_t iter) {
  const net::TopologyInfo t = small_topo();
  fp::IterationRecord rec;
  rec.leaf = net::LeafId{leaf};
  rec.iteration = net::IterIndex{iter};
  rec.bytes.assign(t.uplinks_per_leaf(), 0.0);
  rec.by_src.assign(t.uplinks_per_leaf(), std::vector<double>(t.leaves, 0.0));
  for (std::uint32_t u = 0; u < t.uplinks_per_leaf(); ++u) {
    for (std::uint32_t src = 0; src < t.leaves; ++src) {
      if (src == leaf) continue;
      const double v = 1e6 / 3.0 + 0.1 * u + 1e-9 * src;
      rec.by_src[u][src] = v;
      rec.bytes[u] += v;
    }
  }
  rec.packets = 7;
  return rec;
}

fp::PortLoadMap matching_prediction() {
  const net::TopologyInfo t = small_topo();
  fp::PortLoadMap map{t.leaves, t.uplinks_per_leaf()};
  for (std::uint32_t l = 0; l < t.leaves; ++l) {
    const fp::IterationRecord rec = small_record(l, 0);
    for (std::uint32_t u = 0; u < t.uplinks_per_leaf(); ++u) {
      for (std::uint32_t src = 0; src < t.leaves; ++src) {
        map.add(net::LeafId{l}, net::UplinkIndex{u}, net::LeafId{src}, rec.by_src[u][src]);
      }
    }
  }
  return map;
}

Bytes concat(std::initializer_list<Bytes> parts) {
  Bytes out;
  for (const Bytes& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

void put_u32(Bytes& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// A raw frame with an arbitrary (possibly lying) length prefix.
Bytes raw_frame(std::uint32_t length, const Bytes& payload) {
  Bytes out;
  put_u32(out, length);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void write_seed(const std::filesystem::path& dir, const std::string& name,
                const Bytes& bytes) {
  std::ofstream out{dir / name, std::ios::binary | std::ios::trunc};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

daemon::CounterStream recorded_stream() {
  daemon::CounterStream stream;
  stream.hello = small_hello();
  stream.prediction = matching_prediction();
  for (std::uint32_t iter = 0; iter < 3; ++iter) {
    for (std::uint32_t leaf = 0; leaf < 4; ++leaf) {
      stream.records.push_back(small_record(leaf, iter));
    }
  }
  return stream;
}

}  // namespace

int run(const std::filesystem::path& root) {
  const auto codec_dir = root / "codec";
  const auto engine_dir = root / "engine";
  const auto stream_dir = root / "stream";
  for (const auto& d : {codec_dir, engine_dir, stream_dir}) {
    std::filesystem::create_directories(d);
  }

  const Bytes hello = daemon::encode_hello(small_hello());
  const Bytes counters = daemon::encode_counters(small_record(1, 0));
  const Bytes predict = daemon::encode_predict(matching_prediction());
  const Bytes verdict_q = daemon::encode_simple(daemon::Op::kVerdict);
  const Bytes stats_q = daemon::encode_simple(daemon::Op::kStats);
  const Bytes quit = daemon::encode_simple(daemon::Op::kQuit);
  const Bytes shutdown = daemon::encode_simple(daemon::Op::kShutdown);
  const Bytes err = daemon::encode_err(daemon::Err::kBadDimensions, "ports mismatch");
  const Bytes verdict_reply = daemon::encode_verdict_reply(daemon::FabricVerdict{});
  daemon::StatsSnapshot stats;
  stats.frames_in = 12;
  stats.counters_ingested = 8;
  const Bytes stats_reply = daemon::encode_stats_reply(stats);

  // --- codec/: one seed per opcode, plus framing-level hostility ----------
  write_seed(codec_dir, "hello", hello);
  write_seed(codec_dir, "counters", counters);
  write_seed(codec_dir, "predict", predict);
  write_seed(codec_dir, "verdict_query", verdict_q);
  write_seed(codec_dir, "stats_query", stats_q);
  write_seed(codec_dir, "err", err);
  write_seed(codec_dir, "verdict_reply", verdict_reply);
  write_seed(codec_dir, "stats_reply", stats_reply);
  write_seed(codec_dir, "back_to_back", concat({hello, predict, counters, quit}));
  // Truncation at every byte of a HELLO frame (the PR 7 hardening sweep).
  for (std::size_t cut = 0; cut < hello.size(); ++cut) {
    char name[32];
    std::snprintf(name, sizeof(name), "hello_trunc_%02zu", cut);
    write_seed(codec_dir, name, Bytes{hello.begin(), hello.begin() + cut});
  }
  write_seed(codec_dir, "zero_length_frame", raw_frame(0, {}));
  write_seed(codec_dir, "oversized_prefix",
             raw_frame(daemon::kMaxFramePayload + 1, {0x01}));
  write_seed(codec_dir, "huge_prefix", raw_frame(0xFFFFFFFFu, {0x01, 0x02}));
  // COUNTERS whose ports×senders product wraps 32 bits (dimension guard).
  {
    Bytes wrap;
    wrap.push_back(static_cast<std::uint8_t>(daemon::Op::kCounters));
    put_u32(wrap, 1);           // leaf
    put_u32(wrap, 0);           // iteration
    put_u32(wrap, 7);           // packets (u64, low half)
    put_u32(wrap, 0);           // packets (high half)
    put_u32(wrap, 0x10000u);    // ports
    put_u32(wrap, 0x10000u);    // senders: 32-bit product would wrap
    write_seed(codec_dir, "counters_wrapping_dims",
               raw_frame(static_cast<std::uint32_t>(wrap.size()), wrap));
  }

  // --- engine/: whole-connection byte streams -----------------------------
  write_seed(engine_dir, "clean_session",
             concat({hello, predict, counters, verdict_q, stats_q, quit}));
  write_seed(engine_dir, "shutdown_session", concat({hello, counters, shutdown}));
  write_seed(engine_dir, "counters_before_hello", concat({counters, verdict_q}));
  write_seed(engine_dir, "double_hello", concat({hello, hello, counters}));
  {
    daemon::Hello bad_version = small_hello();
    bad_version.version = 99;
    write_seed(engine_dir, "bad_version",
               concat({daemon::encode_hello(bad_version), counters}));
  }
  {
    daemon::Hello wrong_topo = small_hello();
    wrong_topo.topo.spines = 7;
    write_seed(engine_dir, "topology_mismatch",
               concat({daemon::encode_hello(wrong_topo)}));
  }
  {
    daemon::Hello narrow = small_hello();
    narrow.first_leaf = net::LeafId{1};
    narrow.leaf_count = 1;
    // COUNTERS for leaf 3, outside the registered [1, 2) range.
    write_seed(engine_dir, "unregistered_leaf",
               concat({daemon::encode_hello(narrow),
                       daemon::encode_counters(small_record(3, 0))}));
  }
  write_seed(engine_dir, "reply_as_request", concat({hello, stats_reply}));
  write_seed(engine_dir, "unknown_opcode",
             raw_frame(1, {0x5A}));
  write_seed(engine_dir, "oversized_then_frames",
             concat({raw_frame(daemon::kMaxFramePayload + 1, {}), hello}));
  write_seed(engine_dir, "truncated_tail",
             concat({hello, Bytes{counters.begin(), counters.begin() + 9}}));

  // --- stream/: --dump-counters files -------------------------------------
  const Bytes recorded = daemon::encode_stream(recorded_stream());
  write_seed(stream_dir, "recorded_dump", recorded);
  {
    daemon::CounterStream bare;
    bare.hello = small_hello();
    write_seed(stream_dir, "hello_only", daemon::encode_stream(bare));
  }
  {
    daemon::CounterStream no_predict;
    no_predict.hello = small_hello();
    no_predict.records.push_back(small_record(0, 0));
    write_seed(stream_dir, "no_predict", daemon::encode_stream(no_predict));
  }
  write_seed(stream_dir, "starts_with_counters", concat({counters, hello}));
  write_seed(stream_dir, "quit_in_stream", concat({hello, quit}));
  write_seed(stream_dir, "trailing_garbage",
             concat({recorded, Bytes{0xDE, 0xAD, 0xBE}}));
  write_seed(stream_dir, "empty", {});
  // Truncation sweep over the prefix of the recorded stream (every byte of
  // the HELLO + the first bytes of the PREDICT frame).
  for (std::size_t cut = 0; cut < hello.size() + 8; ++cut) {
    char name[32];
    std::snprintf(name, sizeof(name), "dump_trunc_%02zu", cut);
    write_seed(stream_dir, name, Bytes{recorded.begin(), recorded.begin() + cut});
  }

  std::printf("make_fuzz_corpus: wrote corpus under %s\n", root.c_str());
  return 0;
}

}  // namespace flowpulse

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_fuzz_corpus <corpus-dir>\n");
    return 2;
  }
  return flowpulse::run(argv[1]);
}
