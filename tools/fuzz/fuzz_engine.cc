#include <cstddef>
#include <cstdint>

#include "harness.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  flowpulse::fuzz::engine_one({data, size});
  return 0;
}
