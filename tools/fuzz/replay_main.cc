// Corpus-replay driver for non-fuzz builds: links against one fuzz_*.cc
// target (they each define LLVMFuzzerTestOneInput) and feeds it every file
// under the directories/files named on the command line. This is what the
// fuzz_* executables become when the toolchain has no libFuzzer (GCC, or
// clang without -DFLOWPULSE_FUZZ=ON): the exact harness still runs against
// the exact checked-in corpus on every ctest invocation.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

bool run_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.c_str());
    return false;
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>{in},
                                  std::istreambuf_iterator<char>{}};
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t ran = 0;
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg{argv[i]};
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator{arg}) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      // Deterministic order regardless of directory enumeration.
      std::sort(files.begin(), files.end());
      for (const auto& f : files) {
        ok = run_file(f) && ok;
        ++ran;
      }
    } else {
      ok = run_file(arg) && ok;
      ++ran;
    }
  }
  if (ran == 0) {
    std::fprintf(stderr, "replay: no corpus inputs given\n");
    return 1;
  }
  std::printf("replay: %zu inputs, all invariants held\n", ran);
  return ok ? 0 : 1;
}
