#pragma once

// Fuzz entry points for the daemon's byte-facing surfaces. Each *_one()
// consumes one arbitrary byte string and asserts the structured-error-or-
// valid-reply contract the production code promises — it must NEVER crash,
// NEVER leave a half-parsed success, and every reply/round-trip must be
// well-formed. The same three functions back:
//   * the libFuzzer harnesses (tools/fuzz/fuzz_*.cc, -DFLOWPULSE_FUZZ=ON),
//   * the plain corpus-replay executables in default builds (replay_main.cc),
//   * the tests/test_fuzz_corpus.cc ctest that replays the checked-in
//     corpus on every test run, clang or not.

#include <cstdint>
#include <span>

namespace flowpulse::fuzz {

/// Frame codec: incremental-feed equivalence of FrameAssembler, plus
/// decode → encode → decode fixed-point round trips for every opcode whose
/// body decodes.
void codec_one(std::span<const std::uint8_t> data);

/// DaemonEngine full-protocol state machine: the input is a raw connection
/// byte stream; every frame (and every unrecoverable framing error) must
/// yield exactly one well-formed reply frame, exactly as the epoll server
/// would produce it.
void engine_one(std::span<const std::uint8_t> data);

/// stream_file reader: parse_stream either fails with a non-empty error or
/// yields a stream whose re-encoding is a parse/encode fixed point.
void stream_one(std::span<const std::uint8_t> data);

}  // namespace flowpulse::fuzz
