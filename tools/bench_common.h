#pragma once

// Shared plumbing for flowpulse-bench and flowpulse-merge: verdict
// printing, --expect-* correctness checks, and port-file discovery.
// Operator-tool code — lives outside src/ on purpose (wall clocks and
// process exit codes are fine here).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "daemon/verdict.h"

namespace fptool {

using namespace flowpulse;

struct Expectations {
  bool expect_clean = false;
  bool have_link = false;
  std::uint32_t expect_leaf = 0;
  std::uint32_t expect_uplink = 0;
  bool have_iter = false;
  std::uint32_t expect_iter = 0;
};

/// Parse "LEAF:UPLINK" (e.g. --expect-link=12:5).
inline bool parse_link(const std::string& s, Expectations* e) {
  const std::size_t colon = s.find(':');
  if (colon == std::string::npos) return false;
  e->expect_leaf = static_cast<std::uint32_t>(std::strtoul(s.c_str(), nullptr, 10));
  e->expect_uplink =
      static_cast<std::uint32_t>(std::strtoul(s.c_str() + colon + 1, nullptr, 10));
  e->have_link = true;
  return true;
}

inline void print_verdict(const daemon::FabricVerdict& v) {
  std::printf("verdict: %s", v.flagged ? "FLAGGED" : "clean");
  if (v.flagged) {
    std::printf(" first_faulty_iteration=%u suspect_links=[", v.first_faulty_iteration.v());
    for (std::size_t i = 0; i < v.suspect_links.size(); ++i) {
      const net::LinkId link = v.suspect_links[i];
      std::printf("%s%u:%u", i == 0 ? "" : ",", link.leaf().v(), link.uplink().v());
    }
    std::printf("] alerts=%zu", v.alerts.size());
  }
  std::printf("\n");
}

/// True if the verdict satisfies every --expect-* flag (messages on stderr
/// otherwise) — the CI smoke test's pass/fail signal.
inline bool check_expectations(const daemon::FabricVerdict& v, const Expectations& e) {
  bool ok = true;
  if (e.expect_clean && v.flagged) {
    std::fprintf(stderr, "FAIL: expected a clean verdict but the fabric was flagged\n");
    ok = false;
  }
  if (e.have_link) {
    if (!v.flagged) {
      std::fprintf(stderr, "FAIL: expected link %u:%u flagged but verdict is clean\n",
                   e.expect_leaf, e.expect_uplink);
      ok = false;
    } else {
      const net::LinkId want =
          net::LinkId::of(net::LeafId{e.expect_leaf}, net::UplinkIndex{e.expect_uplink});
      bool found = false;
      for (const net::LinkId link : v.suspect_links) found = found || link == want;
      if (!found) {
        std::fprintf(stderr, "FAIL: link %u:%u not among the suspect links\n", e.expect_leaf,
                     e.expect_uplink);
        ok = false;
      }
    }
  }
  if (e.have_iter && v.flagged && v.first_faulty_iteration.v() != e.expect_iter) {
    std::fprintf(stderr, "FAIL: first faulty iteration %u, expected %u\n",
                 v.first_faulty_iteration.v(), e.expect_iter);
    ok = false;
  }
  return ok;
}

/// Read a TCP port number from a --port-file written by flowpulsed.
inline bool read_port_file(const std::string& path, std::uint16_t* port) {
  std::ifstream in{path};
  unsigned p = 0;
  if (!(in >> p) || p == 0 || p > 65535) return false;
  *port = static_cast<std::uint16_t>(p);
  return true;
}

/// Split "a,b,c" on commas.
inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace fptool
