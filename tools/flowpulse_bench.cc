// flowpulse-bench: redis-benchmark for flowpulsed. Opens N connections,
// streams a recorded (--stream) or synthetic counter stream with a
// configurable pipeline depth, and reports ingest throughput (iterations/s)
// and per-COUNTERS round-trip latency (p50/p99). With --expect-link /
// --expect-iter it also asserts verdict correctness against a known
// injected fault — the CI smoke test's pass/fail signal.
//
//   $ ./flowpulse-bench --port-file=/tmp/fp.port --stream=fault.fpstream
//        --connections=4 --pipeline=32 --expect-link=12:5 --expect-iter=2
//   $ ./flowpulse-bench --port=7117 --leaves=32 --spines=16 --iters=256
//        --fault-leaf=12 --fault-uplink=5 --drop=0.05 --fault-iter=64
//
// Run with --help for all flags.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "daemon/client.h"
#include "daemon/engine.h"
#include "daemon/stream_file.h"

using namespace flowpulse;

namespace {

struct BenchOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7117;
  std::string port_file;
  std::string stream_path;
  std::uint32_t connections = 4;
  std::uint32_t pipeline = 16;
  // Synthetic stream shape (used when --stream is absent).
  net::TopologyInfo topo{};
  std::uint32_t iters = 64;
  double bytes_per_port = 1.5e6;
  std::uint16_t job = 0;
  std::uint32_t fault_leaf = 0, fault_uplink = 0, fault_iter = 0;
  double drop = 0.0;
  fptool::Expectations expect{};
  bool shutdown = false;
  bool help = false;
  bool bad = false;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

template <typename T>
bool parse_num(const char* arg, const char* name, T* out) {
  std::string s;
  if (!parse_flag(arg, name, &s)) return false;
  *out = static_cast<T>(std::strtod(s.c_str(), nullptr));
  return true;
}

BenchOptions parse(int argc, char** argv) {
  BenchOptions o;
  std::string link;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      o.help = true;
    } else if (std::strcmp(a, "--shutdown") == 0) {
      o.shutdown = true;
    } else if (std::strcmp(a, "--expect-clean") == 0) {
      o.expect.expect_clean = true;
    } else if (parse_flag(a, "--host", &o.host) || parse_num(a, "--port", &o.port) ||
               parse_flag(a, "--port-file", &o.port_file) ||
               parse_flag(a, "--stream", &o.stream_path) ||
               parse_num(a, "--connections", &o.connections) ||
               parse_num(a, "--pipeline", &o.pipeline) ||
               parse_num(a, "--leaves", &o.topo.leaves) ||
               parse_num(a, "--spines", &o.topo.spines) ||
               parse_num(a, "--hosts-per-leaf", &o.topo.hosts_per_leaf) ||
               parse_num(a, "--parallel", &o.topo.parallel) ||
               parse_num(a, "--iters", &o.iters) ||
               parse_num(a, "--bytes-per-port", &o.bytes_per_port) ||
               parse_num(a, "--job", &o.job) || parse_num(a, "--fault-leaf", &o.fault_leaf) ||
               parse_num(a, "--fault-uplink", &o.fault_uplink) ||
               parse_num(a, "--fault-iter", &o.fault_iter) || parse_num(a, "--drop", &o.drop)) {
      // parsed
    } else if (parse_flag(a, "--expect-link", &link)) {
      if (!fptool::parse_link(link, &o.expect)) {
        std::fprintf(stderr, "flowpulse-bench: --expect-link wants LEAF:UPLINK\n");
        o.bad = true;
      }
    } else if (parse_num(a, "--expect-iter", &o.expect.expect_iter)) {
      o.expect.have_iter = true;
    } else {
      std::fprintf(stderr, "flowpulse-bench: unknown flag '%s' (try --help)\n", a);
      o.bad = true;
    }
  }
  return o;
}

void usage() {
  std::puts(
      "flowpulse-bench -- load generator / correctness checker for flowpulsed\n"
      "  --host=ADDR --port=N | --port-file=PATH   daemon to drive\n"
      "  --stream=FILE        replay a recorded counter stream\n"
      "  --connections=N      parallel reporter connections (default 4)\n"
      "  --pipeline=N         COUNTERS in flight per connection (default 16)\n"
      "  synthetic stream (when --stream is absent):\n"
      "    --leaves --spines --hosts-per-leaf --parallel --iters --job\n"
      "    --bytes-per-port=F    per-uplink bytes per iteration\n"
      "    --fault-leaf=L --fault-uplink=U --drop=F --fault-iter=I\n"
      "                          shave F of the bytes on L:U from iter I on\n"
      "  --expect-link=L:U    fail unless L:U is a suspect link\n"
      "  --expect-iter=N      fail unless the first faulty iteration is N\n"
      "  --expect-clean       fail if anything is flagged\n"
      "  --shutdown           stop the daemon after the run");
}

/// Uniform all-to-all baseline + a proportional shortfall on one uplink:
/// the smallest synthetic stream the detector should flag and localize.
daemon::CounterStream synthesize(const BenchOptions& o) {
  daemon::CounterStream stream;
  stream.hello.topo = o.topo;
  stream.hello.job = o.job;
  stream.hello.first_leaf = net::LeafId{0};
  stream.hello.leaf_count = o.topo.leaves;

  const std::uint32_t uplinks = o.topo.uplinks_per_leaf();
  const double per_src =
      o.topo.leaves > 1 ? o.bytes_per_port / (o.topo.leaves - 1) : o.bytes_per_port;
  fp::PortLoadMap predicted{o.topo.leaves, uplinks};
  for (std::uint32_t l = 0; l < o.topo.leaves; ++l) {
    for (std::uint32_t u = 0; u < uplinks; ++u) {
      for (std::uint32_t src = 0; src < o.topo.leaves; ++src) {
        if (src == l) continue;
        predicted.add(net::LeafId{l}, net::UplinkIndex{u}, net::LeafId{src}, per_src);
      }
    }
  }
  stream.prediction = predicted;

  for (std::uint32_t it = 0; it < o.iters; ++it) {
    for (std::uint32_t l = 0; l < o.topo.leaves; ++l) {
      fp::IterationRecord rec;
      rec.leaf = net::LeafId{l};
      rec.iteration = net::IterIndex{it};
      rec.bytes.assign(uplinks, 0.0);
      rec.by_src.assign(uplinks, std::vector<double>(o.topo.leaves, 0.0));
      for (std::uint32_t u = 0; u < uplinks; ++u) {
        const bool faulty =
            o.drop > 0.0 && l == o.fault_leaf && u == o.fault_uplink && it >= o.fault_iter;
        const double scale = faulty ? 1.0 - o.drop : 1.0;
        for (std::uint32_t src = 0; src < o.topo.leaves; ++src) {
          if (src == l) continue;
          rec.by_src[u][src] = per_src * scale;
          rec.bytes[u] += per_src * scale;
        }
      }
      rec.packets = uplinks;
      stream.records.push_back(std::move(rec));
    }
  }
  return stream;
}

struct WorkerResult {
  bool ok = false;
  std::string error;
  std::vector<double> latencies_us;
};

/// One reporter connection: HELLO for its leaf range, then its share of the
/// records with up to `pipeline` COUNTERS in flight (each reply is matched
/// FIFO to its send timestamp — the redis-benchmark measurement).
void run_worker(const BenchOptions& o, const daemon::CounterStream& stream,
                net::LeafId first_leaf, std::uint32_t leaf_count, WorkerResult* result) {
  daemon::Client client;
  std::string err;
  if (!client.connect_to(o.host, o.port, &err)) {
    result->error = err;
    return;
  }
  daemon::Hello hello = stream.hello;
  hello.first_leaf = first_leaf;
  hello.leaf_count = leaf_count;
  if (!client.hello(hello, &err)) {
    result->error = err;
    return;
  }

  std::vector<std::vector<std::uint8_t>> frames;
  for (const fp::IterationRecord& rec : stream.records) {
    if (rec.leaf.v() >= first_leaf.v() && rec.leaf.v() < first_leaf.v() + leaf_count) {
      frames.push_back(daemon::encode_counters(rec));
    }
  }
  result->latencies_us.reserve(frames.size());

  using Clock = std::chrono::steady_clock;
  std::deque<Clock::time_point> inflight;
  std::size_t sent = 0, acked = 0;
  std::vector<std::uint8_t> reply;
  while (acked < frames.size()) {
    while (sent < frames.size() && inflight.size() < o.pipeline) {
      inflight.push_back(Clock::now());
      if (!client.send_frame(frames[sent], &err)) {
        result->error = err;
        return;
      }
      ++sent;
    }
    if (!client.recv_reply(reply, &err)) {
      result->error = err;
      return;
    }
    if (reply.empty() || static_cast<daemon::Op>(reply[0]) != daemon::Op::kOk) {
      const auto e = reply.empty()
                         ? std::nullopt
                         : daemon::decode_err({reply.data() + 1, reply.size() - 1});
      result->error = e.has_value()
                          ? std::string{"daemon rejected COUNTERS ["} +
                                daemon::err_name(e->code) + "]: " + e->message
                          : std::string{"unexpected reply to COUNTERS"};
      return;
    }
    const auto dt = Clock::now() - inflight.front();
    inflight.pop_front();
    result->latencies_us.push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(dt).count());
    ++acked;
  }
  result->ok = true;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  const std::size_t k =
      std::min(v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k), v.end());
  return v[k];
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions o = parse(argc, argv);
  if (o.help) {
    usage();
    return 0;
  }
  if (o.bad) return 2;
  if (!o.port_file.empty() && !fptool::read_port_file(o.port_file, &o.port)) {
    std::fprintf(stderr, "flowpulse-bench: cannot read port from '%s'\n", o.port_file.c_str());
    return 1;
  }
  if (o.connections == 0 || o.pipeline == 0) {
    std::fprintf(stderr, "flowpulse-bench: --connections/--pipeline must be >= 1\n");
    return 2;
  }

  std::string err;
  daemon::CounterStream stream;
  if (!o.stream_path.empty()) {
    auto loaded = daemon::read_stream_file(o.stream_path, &err);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "flowpulse-bench: %s\n", err.c_str());
      return 1;
    }
    stream = std::move(*loaded);
  } else {
    stream = synthesize(o);
  }
  const std::uint32_t leaves = stream.hello.topo.leaves;
  const std::uint32_t connections = std::min(o.connections, leaves);

  // Control connection: install the baseline before any worker reports.
  daemon::Client control;
  if (!control.connect_to(o.host, o.port, &err) || !control.hello(stream.hello, &err)) {
    std::fprintf(stderr, "flowpulse-bench: %s\n", err.c_str());
    return 1;
  }
  if (stream.prediction.has_value() && !control.predict(*stream.prediction, &err)) {
    std::fprintf(stderr, "flowpulse-bench: %s\n", err.c_str());
    return 1;
  }

  // Each connection reports a contiguous leaf chunk, so every leaf's
  // records stay in iteration order no matter how connections interleave.
  std::vector<WorkerResult> results{connections};
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t c = 0; c < connections; ++c) {
    const std::uint32_t lo = daemon::shard_first_leaf(leaves, c, connections);
    const std::uint32_t hi = daemon::shard_first_leaf(leaves, c + 1, connections);
    threads.emplace_back(run_worker, std::cref(o), std::cref(stream), net::LeafId{lo}, hi - lo,
                         &results[c]);
  }
  for (std::thread& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::vector<double> latencies;
  for (const WorkerResult& r : results) {
    if (!r.ok) {
      std::fprintf(stderr, "flowpulse-bench: worker failed: %s\n", r.error.c_str());
      return 1;
    }
    latencies.insert(latencies.end(), r.latencies_us.begin(), r.latencies_us.end());
  }

  const auto verdict = control.verdict(&err);
  if (!verdict.has_value()) {
    std::fprintf(stderr, "flowpulse-bench: %s\n", err.c_str());
    return 1;
  }
  if (o.shutdown && !control.shutdown_server(&err)) {
    std::fprintf(stderr, "flowpulse-bench: %s\n", err.c_str());
    return 1;
  }

  const std::size_t n = latencies.size();
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  std::printf("flowpulse-bench: %zu COUNTERS over %u connections (pipeline %u) in %.3f s\n", n,
              connections, o.pipeline, secs);
  std::printf("  throughput: %.0f iters/s   latency p50: %.1f us   p99: %.1f us\n",
              secs > 0.0 ? static_cast<double>(n) / secs : 0.0, p50, p99);
  fptool::print_verdict(*verdict);
  return fptool::check_expectations(*verdict, o.expect) ? 0 : 1;
}
