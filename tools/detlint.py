#!/usr/bin/env python3
"""Compatibility shim: detlint grew up into fplint (tools/fplint/).

The regex engine that lived here was ported rule-for-rule into
tools/fplint/rules_ported.py; this entry point now forwards to

    python3 tools/fplint --compat-detlint <paths...>

which reproduces the legacy findings, waiver semantics, output format,
and exit statuses byte-for-byte. That is not a promise but a test: the
fplint.parity ctest diffs compat-mode output against a frozen verbatim
copy of the old engine (tools/fplint/tests/legacy_detlint.py) on every
run. For the four scope-aware rules the legacy engine could not express
(lane-capture, variant-divergence, layering, stale-waiver), run fplint
itself.
"""

import subprocess
import sys
from pathlib import Path


def main(argv):
    fplint = Path(__file__).resolve().parent / "fplint"
    return subprocess.call(
        [sys.executable, str(fplint), "--no-cache", "--compat-detlint"]
        + list(argv))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
