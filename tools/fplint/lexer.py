"""A real C++ tokenizer (lexer) for fplint.

Produces a flat token stream with source positions. Unlike the legacy
line-regex view (legacy.py, kept for byte-identical ported rules), this
lexer understands the lexical forms that break line regexes:

  * raw string literals  R"delim( ... )delim"  (any prefix: u8R, LR, ...)
  * digit separators     1'000'000  (not a char literal)
  * multi-line block comments and line-spliced line comments
  * preprocessor lines, including backslash continuations — their tokens
    are flagged `pp=True` so semantic rules can skip macro definitions
  * maximal-munch punctuators (<<=, <=>, ->*, ...)

The stream keeps comments as tokens (rules never need them, but the
fixer and waiver scanner work on raw lines anyway) and never raises:
unterminated literals degrade to a token running to end of file, because
a linter must keep going on code a compiler would reject.
"""

from __future__ import annotations

from typing import List, NamedTuple

# Token kinds.
ID = "id"          # identifiers and keywords
NUM = "num"        # pp-number (includes digit separators, suffixes, 0x..)
STR = "str"        # string literal, including raw strings, with prefix
CHR = "chr"        # character literal, with prefix
PUNCT = "punct"    # operator / punctuator, maximal munch
COMMENT = "comment"  # // ... or /* ... */ (kept for completeness)


class Token(NamedTuple):
    kind: str
    text: str
    line: int   # 1-based line of the token's first character
    col: int    # 0-based column of the token's first character
    pp: bool    # True if the token is part of a preprocessor directive


# Longest-first so maximal munch falls out of ordered matching.
_PUNCTUATORS = [
    "<<=", ">>=", "<=>", "->*", "...",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "=", "<", ">",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}", "#", "\\",
]

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")

# Literal prefixes that may precede " or ' (longest first).
_LITERAL_PREFIXES = ("u8R", "uR", "UR", "LR", "R", "u8", "u", "U", "L")


def tokenize(text: str) -> List[Token]:
    """Tokenize C++ source text into a list of Tokens."""
    toks: List[Token] = []
    i = 0
    n = len(text)
    line = 1
    col = 0
    in_pp = False       # inside a preprocessor directive (incl. continuations)
    at_line_start = True  # only whitespace seen so far on this physical line

    def advance_over(s: str) -> None:
        nonlocal line, col
        for ch in s:
            if ch == "\n":
                line += 1
                col = 0
            else:
                col += 1

    while i < n:
        c = text[i]

        # -- newline bookkeeping ------------------------------------------
        if c == "\n":
            if in_pp:
                # A backslash immediately before the newline continues the
                # directive (the backslash itself was consumed as a PUNCT
                # token below; simpler: peek backwards over whitespace).
                j = i - 1
                while j >= 0 and text[j] in " \t\r":
                    j -= 1
                if j < 0 or text[j] != "\\":
                    in_pp = False
            line += 1
            col = 0
            i += 1
            at_line_start = True
            continue

        if c in " \t\r\f\v":
            col += 1
            i += 1
            continue

        start_line, start_col = line, col

        # -- comments ------------------------------------------------------
        if c == "/" and i + 1 < n:
            nxt = text[i + 1]
            if nxt == "/":
                j = text.find("\n", i)
                if j == -1:
                    j = n
                # Line splice inside a // comment extends it.
                while j < n and text[j - 1] == "\\":
                    k = text.find("\n", j + 1)
                    j = n if k == -1 else k
                tok_text = text[i:j]
                toks.append(Token(COMMENT, tok_text, start_line, start_col, in_pp))
                advance_over(tok_text)
                i = j
                at_line_start = False
                continue
            if nxt == "*":
                j = text.find("*/", i + 2)
                j = n if j == -1 else j + 2
                tok_text = text[i:j]
                toks.append(Token(COMMENT, tok_text, start_line, start_col, in_pp))
                advance_over(tok_text)
                i = j
                at_line_start = False
                continue

        # -- preprocessor start -------------------------------------------
        if c == "#" and at_line_start:
            in_pp = True
            # fall through: '#' is emitted as a punct token flagged pp

        # -- identifiers / literal prefixes -------------------------------
        if c in _IDENT_START:
            j = i
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            word = text[i:j]
            # String/char literal with a prefix? Only if the *entire* word
            # is a known prefix and a quote follows.
            if j < n and text[j] in "\"'" and word in _LITERAL_PREFIXES:
                lit, end = _scan_literal(text, i, j)
                kind = STR if text[j] == '"' else CHR
                toks.append(Token(kind, lit, start_line, start_col, in_pp))
                advance_over(lit)
                i = end
                at_line_start = False
                continue
            toks.append(Token(ID, word, start_line, start_col, in_pp))
            col += j - i
            i = j
            at_line_start = False
            continue

        # -- numbers (pp-number: digits, idents, ', and . with exponents) --
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            j = i + 1
            while j < n:
                ch = text[j]
                if ch in _IDENT_CONT or ch == ".":
                    j += 1
                elif ch == "'" and j + 1 < n and text[j + 1] in _IDENT_CONT:
                    j += 2  # digit separator
                elif ch in "+-" and text[j - 1] in "eEpP":
                    j += 1  # exponent sign
                else:
                    break
            toks.append(Token(NUM, text[i:j], start_line, start_col, in_pp))
            col += j - i
            i = j
            at_line_start = False
            continue

        # -- plain string / char literals ---------------------------------
        if c in "\"'":
            lit, end = _scan_literal(text, i, i)
            kind = STR if c == '"' else CHR
            toks.append(Token(kind, lit, start_line, start_col, in_pp))
            advance_over(lit)
            i = end
            at_line_start = False
            continue

        # -- punctuators ---------------------------------------------------
        for p in _PUNCTUATORS:
            if text.startswith(p, i):
                toks.append(Token(PUNCT, p, start_line, start_col, in_pp))
                col += len(p)
                i += len(p)
                break
        else:
            # Unknown byte: emit as a one-char punct so positions stay sane.
            toks.append(Token(PUNCT, c, start_line, start_col, in_pp))
            col += 1
            i += 1
        at_line_start = False

    return toks


def _scan_literal(text: str, start: int, quote_pos: int) -> "tuple[str, int]":
    """Scan a string/char literal starting at `start` (prefix included);
    the quote character sits at `quote_pos`. Returns (literal_text, end).
    """
    n = len(text)
    quote = text[quote_pos]
    prefix = text[start:quote_pos]
    if quote == '"' and prefix.endswith("R"):
        # Raw string: R"delim( ... )delim"
        j = quote_pos + 1
        k = text.find("(", j)
        if k == -1:
            return text[start:], n
        delim = text[j:k]
        close = ")" + delim + '"'
        e = text.find(close, k + 1)
        if e == -1:
            return text[start:], n
        return text[start:e + len(close)], e + len(close)
    # Ordinary literal with backslash escapes; stops at unescaped newline
    # (ill-formed input — degrade to one-line token).
    j = quote_pos + 1
    while j < n:
        ch = text[j]
        if ch == "\\":
            j += 2
            continue
        if ch == quote:
            return text[start:j + 1], j + 1
        if ch == "\n":
            return text[start:j], j
        j += 1
    return text[start:], n
