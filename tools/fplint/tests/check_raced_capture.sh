#!/usr/bin/env bash
# The lane-capture rule's ground truth: the corpus snippet it flags
# (corpus/lane-capture-race/raced_capture.cc) must exhibit a REAL data
# race. Build it with ThreadSanitizer and assert tsan reports one — if a
# refactor ever makes the snippet race-free, this test fails and the
# corpus expectation must be rethought together with the rule.
#
# Exits 77 (ctest SKIP_RETURN_CODE) when the toolchain cannot produce a
# tsan binary.
set -u
cd "$(dirname "$0")/../../.."

SRC=tools/fplint/tests/corpus/lane-capture-race/raced_capture.cc
CXX=${CXX:-c++}
OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

if ! "$CXX" -std=c++20 -O1 -g -fsanitize=thread -Isrc \
    "$SRC" src/sim/event_lane.cc src/sim/event_queue.cc \
    src/sim/lane_runner.cc src/sim/rng.cc \
    -o "$OUT/raced" -pthread 2> "$OUT/build.log"; then
  echo "SKIP: toolchain cannot build with -fsanitize=thread:" >&2
  tail -5 "$OUT/build.log" >&2
  exit 77
fi

# tsan exits non-zero when it found races; the report text is the oracle.
TSAN_OPTIONS="exitcode=66" "$OUT/raced" > "$OUT/stdout.log" 2> "$OUT/tsan.log"
status=$?

if grep -q "ThreadSanitizer: data race" "$OUT/tsan.log"; then
  echo "OK: tsan confirms the race fplint's lane-capture rule flags"
  echo "  ($(grep -c 'ThreadSanitizer: data race' "$OUT/tsan.log") race report(s), exit $status)"
  exit 0
fi

echo "FAIL: expected a ThreadSanitizer data-race report, got none" >&2
echo "--- stdout ---" >&2; cat "$OUT/stdout.log" >&2
echo "--- tsan ---" >&2; tail -40 "$OUT/tsan.log" >&2
exit 1
