#!/usr/bin/env python3
"""--fix correctness and idempotence.

Builds a throwaway tree containing stale waivers (same-line, comment-above,
dangling-at-EOF) and misformatted-but-valid waivers, runs fix_paths twice,
and asserts:

  1. the first pass removes every stale directive and normalizes the
     sloppy ones, leaving the tree clean under full-mode fplint;
  2. the second pass is a byte-level no-op (idempotence).
"""

import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent))

import engine  # noqa: E402
import fix  # noqa: E402
import legacy  # noqa: E402

FIXTURE = {
    # Stale same-line waiver: the rule does not fire on that line, so the
    # trailing comment is truncated away (the code stays).
    "stale_sameline.h": (
        "#pragma once\n"
        "#include <map>\n"
        "\n"
        "struct A {\n"
        "  std::map<int, int> by_id_;  // detlint: ok(unordered): nope\n"
        "};\n"
    ),
    # Stale comment-above waiver: the whole line vanishes.
    "stale_above.h": (
        "#pragma once\n"
        "#include <map>\n"
        "\n"
        "struct B {\n"
        "  // fplint: ok(pointer-key): int keys only\n"
        "  std::map<int, int> rank_;\n"
        "};\n"
    ),
    # Dangling waiver at EOF: trivially stale, line removed.
    "stale_eof.h": (
        "#pragma once\n"
        "\n"
        "struct C {\n"
        "  int x_ = 0;\n"
        "};\n"
        "// detlint: ok(wall-clock): attaches to nothing\n"
    ),
    # Valid but sloppily formatted waiver: normalized, never removed.
    "sloppy_valid.h": (
        "#pragma once\n"
        "#include <unordered_map>\n"
        "\n"
        "struct D {\n"
        "  //detlint:ok(unordered)   bounded lookup table, never iterated\n"
        "  std::unordered_map<int, int> lut_;\n"
        "};\n"
    ),
}

EXPECT = {
    "stale_sameline.h": (
        "#pragma once\n"
        "#include <map>\n"
        "\n"
        "struct A {\n"
        "  std::map<int, int> by_id_;\n"
        "};\n"
    ),
    "stale_above.h": (
        "#pragma once\n"
        "#include <map>\n"
        "\n"
        "struct B {\n"
        "  std::map<int, int> rank_;\n"
        "};\n"
    ),
    "stale_eof.h": (
        "#pragma once\n"
        "\n"
        "struct C {\n"
        "  int x_ = 0;\n"
        "};\n"
    ),
    "sloppy_valid.h": (
        "#pragma once\n"
        "#include <unordered_map>\n"
        "\n"
        "struct D {\n"
        "  // detlint: ok(unordered): bounded lookup table, never iterated\n"
        "  std::unordered_map<int, int> lut_;\n"
        "};\n"
    ),
}


def lint(paths):
    results = engine.run(paths, engine.FactCache(None))
    return [(disp, line, rule)
            for disp, findings in results for line, rule, _ in findings]


def main() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="fplint-fixtest-") as tmp:
        root = Path(tmp)
        for name, text in FIXTURE.items():
            (root / name).write_text(text)
        paths, err = legacy.collect_paths([str(root)])
        assert err is None, err

        changed, edits = fix.fix_paths(paths, engine.FactCache(None))
        if not changed or edits == 0:
            print("FAIL: first --fix pass made no edits")
            failures += 1
        for name, want in EXPECT.items():
            got = (root / name).read_text()
            if got != want:
                failures += 1
                print("FAIL {}: after fix:\n---got---\n{}---want---\n{}"
                      .format(name, got, want))

        leftovers = lint(paths)
        if leftovers:
            failures += 1
            print("FAIL: findings remain after fix:")
            for disp, line, rule in leftovers:
                print("  {}:{}: {}".format(disp, line, rule))

        before = {name: (root / name).read_text() for name in FIXTURE}
        changed2, edits2 = fix.fix_paths(paths, engine.FactCache(None))
        after = {name: (root / name).read_text() for name in FIXTURE}
        if changed2 or edits2 or before != after:
            failures += 1
            print("FAIL: second --fix pass was not a no-op "
                  "(changed={} edits={})".format(changed2, edits2))

    if failures:
        print("fix_test: {} failure(s)".format(failures))
        return 1
    print("fix_test: OK — fix converges in one pass and is idempotent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
